// Crash-consistency property tests: the paper's core claim is that
// Conventional, Scheduler Flag, Scheduler Chains and Soft Updates all
// preserve metadata integrity across a crash at ANY instant, while No
// Order does not. The simulation is deterministic, so we sweep crash
// points (event counts) across a metadata-heavy workload and fsck every
// resulting image.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

// A metadata-churn workload: creates, writes, removes, re-creates
// (forcing block/inode reuse), renames, and directory add/remove.
Task<void> ChurnWorkload(Machine& m, Proc& p) {
  (void)co_await m.fs().Mkdir(p, "/a");
  (void)co_await m.fs().Mkdir(p, "/b");
  (void)co_await CreateFiles(m, p, "/a", 25, 2 * kBlockSize);
  // Let the syncer push this phase to disk: interesting crash states need
  // the NEXT phase's updates to land against this phase's on-disk state.
  co_await m.engine().Sleep(Sec(4));
  // Free ~half (blocks and inodes become reusable).
  for (int i = 0; i < 25; i += 2) {
    (void)co_await m.fs().Unlink(p, "/a/c" + std::to_string(i));
  }
  co_await m.engine().Sleep(Sec(4));
  // Reuse them in another directory.
  (void)co_await CreateFiles(m, p, "/b", 15, kBlockSize);
  co_await m.engine().Sleep(Sec(4));
  // Rule-1 exercise: renames within and across directories.
  (void)co_await m.fs().Rename(p, "/a/c1", "/a/renamed1");
  (void)co_await m.fs().Rename(p, "/a/c3", "/b/moved3");
  // Fast create/remove pairs (soft updates services these in memory).
  (void)co_await CreateRemoveFiles(m, p, "/b", 10, kBlockSize);
  // Directory churn.
  (void)co_await m.fs().Mkdir(p, "/a/sub");
  (void)co_await m.fs().Rmdir(p, "/a/sub");
}

MachineConfig ConfigFor(Scheme scheme, bool alloc_init) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.alloc_init = alloc_init;
  // A short syncer sweep makes delayed-write flushing happen during the
  // sweep window instead of long after.
  cfg.syncer.sweep_seconds = 3;
  return cfg;
}

std::vector<uint64_t> SweepPoints(uint64_t total_events, int points) {
  std::vector<uint64_t> out;
  for (int i = 1; i <= points; ++i) {
    out.push_back(std::max<uint64_t>(1, total_events * static_cast<uint64_t>(i) /
                                            static_cast<uint64_t>(points + 1)));
  }
  return out;
}

struct SchemeCase {
  Scheme scheme;
  bool alloc_init;
  bool stale_check;  // Scheme guarantees the alloc-init security property.
  const char* name;
};

class CrashSweepTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(CrashSweepTest, IntegrityPreservedAtEveryCrashPoint) {
  const SchemeCase& c = GetParam();
  MachineConfig cfg = ConfigFor(c.scheme, c.alloc_init);
  CrashHarness harness(cfg);
  // Stable storage changes only at write commits: sweeping every write
  // boundary covers EVERY distinct reachable on-disk state of this run.
  uint64_t total_writes = harness.MeasureWrites(ChurnWorkload);
  ASSERT_GT(total_writes, 20u);

  FsckOptions fsck;
  fsck.check_stale_data = c.stale_check;
  int checked = 0;
  // Every 2nd write boundary (+ the first and last): dense enough to pin
  // regressions while keeping the suite fast.
  for (uint64_t w = 1; w <= total_writes; w += (w == 1 ? 1 : 2)) {
    CrashResult result = harness.RunAndCrashAtWrite(ChurnWorkload, w, fsck);
    ++checked;
    for (const auto& v : result.report.violations) {
      ADD_FAILURE() << c.name << " crash@write " << w << "/" << total_writes << " ("
                    << ToSeconds(result.crash_time) << "s): " << ToString(v.type) << ": "
                    << v.detail;
    }
    if (!result.report.Clean()) {
      break;  // One broken point is enough output.
    }
  }
  EXPECT_GE(checked, static_cast<int>(total_writes) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    SafeSchemes, CrashSweepTest,
    ::testing::Values(
        SchemeCase{Scheme::kConventional, false, false, "Conventional"},
        SchemeCase{Scheme::kConventional, true, true, "Conventional+AllocInit"},
        SchemeCase{Scheme::kSchedulerFlag, false, false, "SchedulerFlag"},
        SchemeCase{Scheme::kSchedulerFlag, true, true, "SchedulerFlag+AllocInit"},
        SchemeCase{Scheme::kSchedulerChains, false, false, "SchedulerChains"},
        SchemeCase{Scheme::kSchedulerChains, true, true, "SchedulerChains+AllocInit"},
        SchemeCase{Scheme::kSoftUpdates, true, true, "SoftUpdates"},
        // Journaling images are fsck'd AFTER log replay (the harness
        // replays before checking); the raw image makes no guarantees.
        SchemeCase{Scheme::kJournaling, false, false, "Journaling"},
        SchemeCase{Scheme::kJournaling, true, true, "Journaling+AllocInit"}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string n = info.param.name;
      for (char& ch : n) {
        if (ch == '+') {
          ch = '_';
        }
      }
      return n;
    });

// Command-queueing crash sweep: with --queue-depth > 1 the device holds
// up to depth accepted commands that are NOT yet on media, and completes
// them out of submission order (RPO picks, ordered tags at the Flag and
// Chains ordering boundaries). Crash images are still indexed by write
// commits, so sweeping every write boundary covers exactly those
// "accepted into the device queue but not yet on media" states. Each
// scheme is held to its own recovery model: the four ordered schemes must
// be fsck-clean raw (Flag/Chains via ordered-tag delegation), No Order
// must be repairable, journaling must recover by log replay alone.
struct QueueingCase {
  Scheme scheme;
  uint32_t depth;
  const char* name;
};

class QueueingCrashSweepTest : public ::testing::TestWithParam<QueueingCase> {};

TEST_P(QueueingCrashSweepTest, EveryCrashPointRecoversAtDepth) {
  const QueueingCase& c = GetParam();
  MachineConfig cfg = ConfigFor(c.scheme, false);
  cfg.queue_depth = c.depth;

  // Non-vacuity: the swept run must actually reach multi-command device
  // queue occupancy, otherwise no accepted-but-not-on-media state exists.
  {
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
      co_await mm->Boot(*pp);
      co_await ChurnWorkload(*mm, *pp);
      *flag = true;
    };
    m.engine().Spawn(root(&m, &p, &done), "u");
    m.engine().RunUntil([&] { return done; });
    ASSERT_GE(m.stats().gauge("disk.device_queue").max(), 2)
        << c.name << ": the device queue never held more than one command";
  }

  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(ChurnWorkload);
  ASSERT_GT(total_writes, 20u);
  FsckOptions fsck;
  for (uint64_t w = 1; w <= total_writes; w += (w == 1 ? 1 : 2)) {
    if (c.scheme == Scheme::kNoOrder) {
      DiskImage img = harness.CrashImageAtWrite(ChurnWorkload, w);
      FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
      EXPECT_TRUE(repair.clean_after)
          << c.name << " crash@write " << w << "/" << total_writes << " not repairable";
    } else if (c.scheme == Scheme::kJournaling) {
      DiskImage img = harness.CrashImageAtWrite(ChurnWorkload, w);
      JournalReplayReport replay = JournalRecovery(&img).Run();
      EXPECT_TRUE(replay.journal_present);
      FsckReport check = FsckChecker(&img, fsck).Check();
      for (const auto& v : check.violations) {
        ADD_FAILURE() << c.name << " crash@write " << w << "/" << total_writes << ": "
                      << ToString(v.type) << ": " << v.detail;
      }
    } else {
      CrashResult result = harness.RunAndCrashAtWrite(ChurnWorkload, w, fsck);
      for (const auto& v : result.report.violations) {
        ADD_FAILURE() << c.name << " crash@write " << w << "/" << total_writes << " ("
                      << ToSeconds(result.crash_time) << "s): " << ToString(v.type) << ": "
                      << v.detail;
      }
    }
    if (HasFailure()) {
      break;  // One broken crash point is enough output.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthSweep, QueueingCrashSweepTest,
    ::testing::Values(QueueingCase{Scheme::kSchedulerFlag, 4, "SchedulerFlag@4"},
                      QueueingCase{Scheme::kSchedulerFlag, 16, "SchedulerFlag@16"},
                      QueueingCase{Scheme::kSchedulerChains, 4, "SchedulerChains@4"},
                      QueueingCase{Scheme::kSchedulerChains, 16, "SchedulerChains@16"},
                      QueueingCase{Scheme::kConventional, 16, "Conventional@16"},
                      QueueingCase{Scheme::kSoftUpdates, 16, "SoftUpdates@16"},
                      QueueingCase{Scheme::kNoOrder, 16, "NoOrder@16"},
                      QueueingCase{Scheme::kJournaling, 16, "Journaling@16"}),
    [](const ::testing::TestParamInfo<QueueingCase>& info) {
      std::string n = info.param.name;
      for (char& ch : n) {
        if (ch == '@') {
          ch = '_';
        }
      }
      return n;
    });

// Flag semantics sweep: every semantics level (not just Part) preserves
// integrity; only turning the flag off (Ignore == kNone mode) breaks it.
class FlagSemanticsCrashTest : public ::testing::TestWithParam<FlagSemantics> {};

TEST_P(FlagSemanticsCrashTest, AllFlagSemanticsAreSafe) {
  MachineConfig cfg = ConfigFor(Scheme::kSchedulerFlag, false);
  cfg.flag_semantics = GetParam();
  cfg.reads_bypass = true;
  CrashHarness harness(cfg);
  uint64_t total = harness.MeasureEvents(ChurnWorkload);
  for (uint64_t point : SweepPoints(total, 10)) {
    CrashResult result = harness.RunAndCrash(ChurnWorkload, point);
    for (const auto& v : result.report.violations) {
      ADD_FAILURE() << "crash@" << point << ": " << ToString(v.type) << ": " << v.detail;
    }
    if (!result.report.Clean()) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, FlagSemanticsCrashTest,
                         ::testing::Values(FlagSemantics::kFull, FlagSemantics::kBack,
                                           FlagSemantics::kPart),
                         [](const ::testing::TestParamInfo<FlagSemantics>& info) {
                           switch (info.param) {
                             case FlagSemantics::kFull:
                               return std::string("Full");
                             case FlagSemantics::kBack:
                               return std::string("Back");
                             case FlagSemantics::kPart:
                               return std::string("Part");
                           }
                           return std::string("?");
                         });

// The unsafe baseline: No Order must exhibit at least one integrity
// violation somewhere in the sweep (this is the paper's reason ordering
// exists at all). Deterministic, so no flakiness.
TEST(CrashSweepUnsafeTest, NoOrderLosesIntegritySomewhere) {
  MachineConfig cfg = ConfigFor(Scheme::kNoOrder, false);
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(ChurnWorkload);
  FsckOptions fsck;
  fsck.check_stale_data = true;  // NoOrder also has no alloc-init story.
  int violating_states = 0;
  for (uint64_t w = 1; w <= total_writes; ++w) {
    CrashResult result = harness.RunAndCrashAtWrite(ChurnWorkload, w, fsck);
    if (!result.report.Clean()) {
      ++violating_states;
    }
  }
  EXPECT_GT(violating_states, 0)
      << "No Order survived every reachable crash state; the workload is "
         "too gentle to demonstrate the hazard.";
}

// The "Ignore" datapoint (flagged writes issued, flags disregarded by the
// driver) must be exactly as unsafe as No Order: the flags carry ALL the
// ordering information, so dropping them at the driver loses integrity
// somewhere in the sweep.
TEST(CrashSweepUnsafeTest, IgnoreFlagsLosesIntegritySomewhere) {
  MachineConfig cfg = ConfigFor(Scheme::kSchedulerFlag, false);
  cfg.ignore_flags = true;
  cfg.reads_bypass = true;
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(ChurnWorkload);
  FsckOptions fsck;
  fsck.check_stale_data = true;  // Unordered flushing voids alloc-init too.
  int violating_states = 0;
  for (uint64_t w = 1; w <= total_writes; ++w) {
    CrashResult result = harness.RunAndCrashAtWrite(ChurnWorkload, w, fsck);
    if (!result.report.Clean()) {
      ++violating_states;
    }
  }
  EXPECT_GT(violating_states, 0)
      << "Ignore survived every reachable crash state; the workload is "
         "too gentle to demonstrate the hazard.";
}

// Repair round-trip: every corrupt No Order crash state must come back
// clean from FsckRepairer (corrupt -> repair -> re-check clean). This is
// the paper's operational model for the unsafe schemes: you CAN run
// No Order, you just have to pay for a full repairing fsck after a crash.
TEST(FsckRepairTest, RepairsNoOrderCrashStates) {
  MachineConfig cfg = ConfigFor(Scheme::kNoOrder, false);
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(ChurnWorkload);
  FsckOptions fsck;
  fsck.check_stale_data = true;
  uint64_t stride = std::max<uint64_t>(1, total_writes / 24);
  int corrupt_states = 0;
  for (uint64_t w = 1; w <= total_writes; w += stride) {
    DiskImage img = harness.CrashImageAtWrite(ChurnWorkload, w);
    FsckReport before = FsckChecker(&img, fsck).Check();
    if (before.Clean() && before.fixables.empty()) {
      continue;  // Nothing to repair at this crash point.
    }
    ++corrupt_states;
    FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
    EXPECT_TRUE(repair.clean_after)
        << "crash@write " << w << "/" << total_writes << " not repaired after "
        << repair.passes << " passes (" << repair.TotalFixes() << " fixes)";
    EXPECT_GT(repair.TotalFixes(), 0u) << "crash@write " << w;
    FsckReport after = FsckChecker(&img, fsck).Check();
    for (const auto& v : after.violations) {
      ADD_FAILURE() << "post-repair crash@write " << w << ": " << ToString(v.type) << ": "
                    << v.detail;
    }
    for (const auto& f : after.fixables) {
      ADD_FAILURE() << "post-repair fixable crash@write " << w << ": " << f.detail;
    }
  }
  EXPECT_GT(corrupt_states, 0) << "sweep found nothing to repair";
}

// Repairing an already-clean image must be a no-op.
TEST(FsckRepairTest, CleanImageUntouchedByRepair) {
  MachineConfig cfg = ConfigFor(Scheme::kSoftUpdates, true);
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    co_await ChurnWorkload(*mm, *pp);
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(root(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  DiskImage img = m.CrashNow();
  uint64_t writes_before = img.WriteCount();
  FsckOptions fsck;
  fsck.check_stale_data = true;
  ASSERT_TRUE(FsckChecker(&img, fsck).Check().Clean());
  FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
  EXPECT_TRUE(repair.clean_after);
  EXPECT_EQ(repair.TotalFixes(), 0u);
  EXPECT_EQ(img.WriteCount(), writes_before) << "repair wrote to a clean image";
}

// Chains fallback variant (barrier instead of freed-resource tracking)
// must be equally safe, just slower.
TEST(CrashSweepChainsFallbackTest, BarrierVariantIsSafe) {
  MachineConfig cfg = ConfigFor(Scheme::kSchedulerChains, false);
  cfg.chains_track_freed = false;
  CrashHarness harness(cfg);
  uint64_t total = harness.MeasureEvents(ChurnWorkload);
  for (uint64_t point : SweepPoints(total, 12)) {
    CrashResult result = harness.RunAndCrash(ChurnWorkload, point);
    for (const auto& v : result.report.violations) {
      ADD_FAILURE() << "crash@" << point << ": " << ToString(v.type) << ": " << v.detail;
    }
    if (!result.report.Clean()) {
      break;
    }
  }
}

// Rename rule 1: at no crash point may BOTH the old and the new name be
// missing while the file stays reachable-less. We inspect the raw image.
namespace {

bool ImageHasRootEntry(const DiskImage& image, const std::string& name) {
  BlockData blk;
  image.Read(0, &blk);
  SuperBlock sb;
  memcpy(&sb, blk.data(), sizeof(sb));
  BlockData itable;
  image.Read(sb.ItableBlock(kRootIno), &itable);
  DiskInode root;
  memcpy(&root, itable.data() + sb.ItableOffset(kRootIno), sizeof(root));
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    if (root.direct[i] == 0) {
      continue;
    }
    BlockData dir;
    image.Read(root.direct[i], &dir);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry de;
      memcpy(&de, dir.data() + e * kDirEntrySize, sizeof(de));
      if (de.ino != 0 && de.Name() == name) {
        return true;
      }
    }
  }
  return false;
}

Task<void> RenameWorkload(Machine& m, Proc& p) {
  Result<uint32_t> ino = co_await m.fs().Create(p, "/victim");
  if (ino.Ok()) {
    (void)co_await WriteTagged(m, p, ino.value(), 2 * kBlockSize);
  }
  co_await m.fs().SyncEverything(p);  // Starting state fully on disk.
  (void)co_await m.fs().Rename(p, "/victim", "/renamed");
}

// Event count at which the pre-rename sync has completed (the file is
// durably on disk); rule 1 only binds from there on. Deterministic, so
// one measuring run calibrates the sweep.
uint64_t MeasureSyncedEventCount(const MachineConfig& cfg) {
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool synced = false;
  auto root = [](Machine* m, Proc* p, bool* synced) -> Task<void> {
    co_await m->Boot(*p);
    Result<uint32_t> ino = co_await m->fs().Create(*p, "/victim");
    if (ino.Ok()) {
      (void)co_await WriteTagged(*m, *p, ino.value(), 2 * kBlockSize);
    }
    co_await m->fs().SyncEverything(*p);
    *synced = true;
  };
  m.engine().Spawn(root(&m, &p, &synced), "measure");
  m.engine().RunUntil([&] { return synced; });
  return m.engine().EventsProcessed();
}

// Same calibration in device-write units (for harnesses that sweep write
// boundaries rather than event counts).
uint64_t MeasureSyncedWriteCount(const MachineConfig& cfg) {
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool synced = false;
  auto root = [](Machine* m, Proc* p, bool* synced) -> Task<void> {
    co_await m->Boot(*p);
    Result<uint32_t> ino = co_await m->fs().Create(*p, "/victim");
    if (ino.Ok()) {
      (void)co_await WriteTagged(*m, *p, ino.value(), 2 * kBlockSize);
    }
    co_await m->fs().SyncEverything(*p);
    *synced = true;
  };
  m.engine().Spawn(root(&m, &p, &synced), "measure");
  m.engine().RunUntil([&] { return synced; });
  return m.image().WriteCount();
}

}  // namespace

class RenameRuleOneTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(RenameRuleOneTest, SomeNameAlwaysSurvives) {
  MachineConfig cfg = ConfigFor(GetParam(), false);
  cfg.syncer.sweep_seconds = 2;

  // Re-run with a crash at every point after the initial sync and
  // inspect the raw image.
  CrashHarness harness(cfg);
  uint64_t synced_at = MeasureSyncedEventCount(cfg);
  uint64_t total = harness.MeasureEvents(RenameWorkload);
  ASSERT_GT(total, synced_at);
  std::vector<uint64_t> points;
  for (uint64_t p = synced_at + 1; p <= total; p += std::max<uint64_t>(1, (total - synced_at) / 40)) {
    points.push_back(p);
  }
  for (uint64_t point : points) {
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    auto root = [](Machine* m, Proc* p, bool* done) -> Task<void> {
      co_await m->Boot(*p);
      co_await RenameWorkload(*m, *p);
      *done = true;
    };
    m.engine().Spawn(root(&m, &p, &done), "rename");
    m.engine().RunUntil([&] { return m.engine().EventsProcessed() >= point; });
    DiskImage snap = m.CrashNow();
    bool old_name = ImageHasRootEntry(snap, "victim");
    bool new_name = ImageHasRootEntry(snap, "renamed");
    EXPECT_TRUE(old_name || new_name)
        << "crash@" << point << "/" << total << ": both names lost (rule 1 violated)";
  }
}

INSTANTIATE_TEST_SUITE_P(SafeSchemes, RenameRuleOneTest,
                         ::testing::Values(Scheme::kConventional, Scheme::kSchedulerFlag,
                                           Scheme::kSchedulerChains, Scheme::kSoftUpdates),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return std::string(SchemeName(info.param));
                         });

// Rename crash sweep across ALL schemes (kAllSchemes), each checked
// against its own recovery model: the four ordered schemes must be
// fsck-clean raw; No Order and Async may corrupt but must be repairable
// (Async's extra bounded-staleness contract is proven in
// async_contract_test); journaling must recover by LOG REPLAY ALONE -
// zero fsck repairs at every crash point - and at least one of the two
// names must survive on the replayed image.
class RenameAllSchemesSweepTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(RenameAllSchemesSweepTest, EveryCrashPointRecovers) {
  const Scheme scheme = GetParam();
  MachineConfig cfg = ConfigFor(scheme, false);
  cfg.syncer.sweep_seconds = 2;
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(RenameWorkload);
  ASSERT_GT(total_writes, 0u);
  // Rule 1 (some name survives) only binds once the pre-rename sync has
  // made "/victim" durable; before that, neither name existing is fine.
  const uint64_t synced_writes =
      scheme == Scheme::kJournaling ? MeasureSyncedWriteCount(cfg) : 0;
  FsckOptions fsck;
  for (uint64_t w = 1; w <= total_writes; ++w) {
    DiskImage img = harness.CrashImageAtWrite(RenameWorkload, w);
    if (scheme == Scheme::kJournaling) {
      JournalReplayReport replay = JournalRecovery(&img).Run();
      EXPECT_TRUE(replay.journal_present);
      FsckReport check = FsckChecker(&img, fsck).Check();
      for (const auto& v : check.violations) {
        ADD_FAILURE() << "crash@write " << w << "/" << total_writes << ": " << ToString(v.type)
                      << ": " << v.detail;
      }
      FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
      EXPECT_TRUE(repair.clean_after) << "crash@write " << w;
      EXPECT_EQ(repair.TotalFixes(), 0u)
          << "crash@write " << w << "/" << total_writes << ": replay (of "
          << replay.txns_replayed << " txns) left work for fsck";
      if (w >= synced_writes) {
        EXPECT_TRUE(ImageHasRootEntry(img, "victim") || ImageHasRootEntry(img, "renamed"))
            << "crash@write " << w << ": both names lost after replay (rule 1)";
      }
    } else if (scheme == Scheme::kNoOrder || scheme == Scheme::kAsync) {
      // No integrity guarantee; the operational model is a repairing fsck.
      FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
      EXPECT_TRUE(repair.clean_after) << "crash@write " << w << " not repairable";
    } else {
      FsckReport report = FsckChecker(&img, fsck).Check();
      for (const auto& v : report.violations) {
        ADD_FAILURE() << "crash@write " << w << "/" << total_writes << ": " << ToString(v.type)
                      << ": " << v.detail;
      }
    }
    if (HasFailure()) {
      break;  // One broken crash point is enough output.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RenameAllSchemesSweepTest,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return std::string(SchemeName(info.param));
                         });

}  // namespace
}  // namespace mufs
