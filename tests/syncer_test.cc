// Syncer daemon tests: pass cadence, the two-phase mark-then-write
// accounting (a dirty buffer is written on the pass AFTER it is marked),
// the rotating window fraction, workitem servicing and DrainWork, and
// sticky write-failed buffers that the syncer must skip rather than
// livelock on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/cache/syncer.h"
#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/fault/fault_injector.h"
#include "src/sim/engine.h"

namespace mufs {
namespace {

// Engine + injector + driver + cache wired together (the injector is
// declared before the driver so it outlives it). The syncer daemon is
// constructed per-test so each can pick its own interval.
struct Rig {
  explicit Rig(CacheConfig ccfg = {}, DriverConfig dcfg = {}, FaultConfig fcfg = {})
      : model(DiskGeometry{}), image(DiskGeometry{}.total_blocks), faults(fcfg) {
    dcfg.faults = &faults;
    driver = std::make_unique<DiskDriver>(&engine, &model, &image, dcfg);
    cache = std::make_unique<BufferCache>(&engine, driver.get(), ccfg);
  }
  Engine engine;
  DiskModel model;
  DiskImage image;
  FaultInjector faults;
  std::unique_ptr<DiskDriver> driver;
  std::unique_ptr<BufferCache> cache;

  template <typename F, typename... Args>
  void RunTask(F&& f, Args&&... args) {
    engine.Spawn(f(std::forward<Args>(args)...), "test");
    engine.Run();
  }

  // Dirties block `blkno` with fill byte `fill` via the delayed-write path.
  void DirtyBlock(uint32_t blkno, uint8_t fill) {
    auto body = [](Rig* r, uint32_t blkno, uint8_t fill) -> Task<void> {
      BufRef buf = co_await r->cache->Bget(blkno);
      buf->data().fill(fill);
      r->cache->MarkDirty(*buf);
    };
    RunTask(body, this, blkno, fill);
  }

  // One syncer pass plus the engine time to complete whatever it issued.
  void PassAndSettle(double fraction) {
    cache->SyncerPass(fraction);
    engine.Run();
  }
};

TEST(SyncerTest, PassCadenceMatchesTheInterval) {
  Rig rig;
  SyncerConfig scfg;
  scfg.interval = Sec(1);
  SyncerDaemon syncer(&rig.engine, rig.cache.get(), scfg);
  syncer.Start();
  auto body = [](Rig* r, SyncerDaemon* s) -> Task<void> {
    co_await r->engine.Sleep(Msec(5500));
    // Wakeups at t = 1..5 s: exactly five passes, none early, none extra.
    EXPECT_EQ(s->PassesRun(), 5u);
    s->Stop();
  };
  rig.RunTask(body, &rig, &syncer);
  EXPECT_EQ(syncer.PassesRun(), 5u);
  EXPECT_FALSE(syncer.Running());
}

TEST(SyncerTest, StartIsIdempotent) {
  Rig rig;
  SyncerConfig scfg;
  scfg.interval = Sec(1);
  SyncerDaemon syncer(&rig.engine, rig.cache.get(), scfg);
  syncer.Start();
  syncer.Start();  // Must not spawn a second loop (passes would double).
  auto body = [](Rig* r, SyncerDaemon* s) -> Task<void> {
    co_await r->engine.Sleep(Msec(3500));
    s->Stop();
  };
  rig.RunTask(body, &rig, &syncer);
  EXPECT_EQ(syncer.PassesRun(), 3u);
}

TEST(SyncerTest, DirtyBufferIsWrittenOnThePassAfterItIsMarked) {
  Rig rig;
  rig.DirtyBlock(50, 0xaa);
  EXPECT_EQ(rig.cache->DirtyCount(), 1u);
  EXPECT_EQ(rig.cache->stats().delayed_writes, 1u);

  // Pass 1 only marks: the buffer was not marked on a previous pass, so
  // nothing is written yet.
  rig.PassAndSettle(1.0);
  EXPECT_EQ(rig.cache->stats().write_issues, 0u);
  EXPECT_EQ(rig.cache->DirtyCount(), 1u);

  // Pass 2 writes what pass 1 marked.
  rig.PassAndSettle(1.0);
  EXPECT_EQ(rig.cache->stats().write_issues, 1u);
  EXPECT_EQ(rig.cache->DirtyCount(), 0u);
  BlockData d;
  rig.image.Read(50, &d);
  EXPECT_EQ(d[0], 0xaa);
}

TEST(SyncerTest, RedirtyBetweenPassesStillReachesDisk) {
  Rig rig;
  rig.DirtyBlock(60, 0x01);
  rig.cache->SyncerPass(1.0);  // Marks.
  // Modify again before the write pass: the mark survives, so the write
  // pass flushes the NEW bytes (delayed writes coalesce).
  rig.DirtyBlock(60, 0x02);
  rig.PassAndSettle(1.0);
  EXPECT_EQ(rig.cache->stats().write_issues, 1u);
  BlockData d;
  rig.image.Read(60, &d);
  EXPECT_EQ(d[0], 0x02);
}

TEST(SyncerTest, WindowFractionSpreadsWritebackAcrossPasses) {
  CacheConfig ccfg;
  ccfg.capacity_blocks = 16;  // Roomy: no capacity-pressure flushes.
  Rig rig(ccfg);
  for (uint32_t b = 100; b < 108; ++b) {
    rig.DirtyBlock(b, static_cast<uint8_t>(b));
  }
  EXPECT_EQ(rig.cache->DirtyCount(), 8u);

  // fraction = 1/8 of a 16-buffer cache: 2 buffers marked per pass, so
  // each write pass flushes at most 2 and full coverage takes 4 passes
  // after the initial mark-only one.
  std::vector<uint64_t> issued_per_pass;
  uint64_t prev = 0;
  for (int pass = 0; pass < 6; ++pass) {
    rig.PassAndSettle(0.125);
    uint64_t now = rig.cache->stats().write_issues;
    issued_per_pass.push_back(now - prev);
    prev = now;
  }
  EXPECT_EQ(issued_per_pass,
            (std::vector<uint64_t>{0, 2, 2, 2, 2, 0}));
  EXPECT_EQ(rig.cache->DirtyCount(), 0u);
  for (uint32_t b = 100; b < 108; ++b) {
    BlockData d;
    rig.image.Read(b, &d);
    EXPECT_EQ(d[0], static_cast<uint8_t>(b));
  }
}

TEST(SyncerTest, WorkitemsRunBeforeTheCachePass) {
  Rig rig;
  SyncerConfig scfg;
  scfg.interval = Sec(1);
  SyncerDaemon syncer(&rig.engine, rig.cache.get(), scfg);
  uint64_t passes_seen_by_workitem = 99;
  syncer.EnqueueWork([&]() -> Task<void> {
    // The workitem queue is serviced before the pass counter bumps, so a
    // workitem enqueued before the first wakeup observes zero passes.
    passes_seen_by_workitem = syncer.PassesRun();
    co_return;
  });
  EXPECT_EQ(syncer.PendingWork(), 1u);
  syncer.Start();
  auto body = [](Rig* r, SyncerDaemon* s) -> Task<void> {
    co_await r->engine.Sleep(Msec(1500));
    s->Stop();
  };
  rig.RunTask(body, &rig, &syncer);
  EXPECT_EQ(syncer.WorkitemsRun(), 1u);
  EXPECT_EQ(passes_seen_by_workitem, 0u);
  EXPECT_EQ(syncer.PendingWork(), 0u);
}

TEST(SyncerTest, DrainWorkRunsFollowOnWorkToQuiescence) {
  Rig rig;
  SyncerDaemon syncer(&rig.engine, rig.cache.get());
  // A workitem that enqueues a successor, like inode-free work enqueueing
  // block de-allocation. DrainWork must loop until the queue is empty.
  syncer.EnqueueWork([&]() -> Task<void> {
    syncer.EnqueueWork([]() -> Task<void> { co_return; });
    co_return;
  });
  auto body = [](SyncerDaemon* s) -> Task<void> { co_await s->DrainWork(); };
  rig.RunTask(body, &syncer);
  EXPECT_EQ(syncer.WorkitemsRun(), 2u);
  EXPECT_EQ(syncer.PendingWork(), 0u);
}

TEST(SyncerTest, WorkitemsAreServicedInFifoOrder) {
  Rig rig;
  SyncerDaemon syncer(&rig.engine, rig.cache.get());
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    syncer.EnqueueWork([&order, i]() -> Task<void> {
      order.push_back(i);
      co_return;
    });
  }
  auto body = [](SyncerDaemon* s) -> Task<void> { co_await s->DrainWork(); };
  rig.RunTask(body, &syncer);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SyncerTest, TerminallyFailedBufferIsStickyAndSkipped) {
  DriverConfig dcfg;
  dcfg.max_retries = 1;
  Rig rig({}, dcfg);
  // Both attempts of the first write fail; the script then runs dry, so
  // any LATER write succeeds.
  rig.faults.Script({FaultKind::kTransient, FaultKind::kTransient});
  rig.DirtyBlock(70, 0x5e);

  rig.cache->SyncerPass(1.0);  // Mark.
  rig.PassAndSettle(1.0);      // Write: fails terminally.
  EXPECT_EQ(rig.cache->stats().write_failures, 1u);
  EXPECT_EQ(rig.cache->FailedCount(), 1u);
  // DirtyCount excludes write-failed buffers so drain loops cannot spin.
  EXPECT_EQ(rig.cache->DirtyCount(), 0u);

  // Later passes must skip the poisoned buffer entirely.
  uint64_t issues = rig.cache->stats().write_issues;
  rig.PassAndSettle(1.0);
  rig.PassAndSettle(1.0);
  EXPECT_EQ(rig.cache->stats().write_issues, issues);
  EXPECT_EQ(rig.cache->FailedCount(), 1u);

  // An explicit successful write clears the sticky flag.
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bread(70);
    IoStatus s = co_await r->cache->Bwrite(buf);
    EXPECT_EQ(s, IoStatus::kOk);
  };
  rig.RunTask(body, &rig);
  EXPECT_EQ(rig.cache->FailedCount(), 0u);
  BlockData d;
  rig.image.Read(70, &d);
  EXPECT_EQ(d[0], 0x5e);
}

TEST(SyncerTest, SyncAllAlsoSkipsFailedBuffersInsteadOfLivelocking) {
  DriverConfig dcfg;
  dcfg.max_retries = 1;
  Rig rig({}, dcfg);
  rig.faults.Script({FaultKind::kTransient, FaultKind::kTransient});
  // Non-adjacent blocks: adjacent ones would be concatenated into a
  // single device request and fail (or survive) as a unit.
  rig.DirtyBlock(80, 0x11);   // Will fail terminally.
  rig.DirtyBlock(200, 0x22);  // Will succeed.
  auto body = [](Rig* r) -> Task<void> { co_await r->cache->SyncAll(); };
  rig.RunTask(body, &rig);
  EXPECT_EQ(rig.cache->FailedCount(), 1u);
  EXPECT_EQ(rig.cache->DirtyCount(), 0u);
  BlockData d;
  rig.image.Read(200, &d);
  EXPECT_EQ(d[0], 0x22);
}

}  // namespace
}  // namespace mufs
