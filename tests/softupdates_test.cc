// White-box tests for the soft-updates dependency machinery: undo/redo,
// dependency cancellation, deferred frees, and the workitem path.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/core/softupdates/soft_updates_policy.h"
#include "src/fsck/fsck.h"

namespace mufs {
namespace {

#define CO_ASSERT_TRUE(cond)                            \
  do {                                                  \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    if (!co_assert_ok_) {                               \
      ADD_FAILURE() << "assertion failed: " #cond;      \
      co_return;                                        \
    }                                                   \
  } while (0)

MachineConfig SuConfig() {
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  cfg.alloc_init = true;
  return cfg;
}

SoftUpdatesPolicy& Policy(Machine& m) {
  return static_cast<SoftUpdatesPolicy&>(m.policy());
}

void RunSu(Machine& m, std::function<Task<void>(Machine&, Proc&)> body) {
  Proc p = m.MakeProc("su");
  bool done = false;
  auto root = [](Machine* m, Proc* p, std::function<Task<void>(Machine&, Proc&)> body,
                 bool* done) -> Task<void> {
    co_await m->Boot(*p);
    co_await body(*m, *p);
    *done = true;
  };
  m.engine().Spawn(root(&m, &p, std::move(body), &done), "su-test");
  m.engine().RunUntil([&done] { return done; });
  ASSERT_TRUE(done);
}

// Reads the raw on-disk directory entry ino at (blkno, offset).
uint32_t OnDiskEntryIno(const DiskImage& img, uint32_t blkno, uint32_t offset) {
  BlockData b;
  img.Read(blkno, &b);
  uint32_t ino;
  memcpy(&ino, b.data() + offset, sizeof(ino));
  return ino;
}

TEST(SoftUpdatesTest, CreateRegistersDirAddDependency) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    (void)co_await mm.fs().Create(p, "/f");
  });
  EXPECT_GE(Policy(m).stats().dir_adds, 1u);
  EXPECT_TRUE(Policy(m).HasPendingDeps());
}

TEST(SoftUpdatesTest, DirBlockWriteBeforeInodeIsUndone) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await mm.fs().Create(p, "/early");
    CO_ASSERT_TRUE(ino.Ok());
    // Force the ROOT DIRECTORY block to disk before the inode table
    // block: the entry must be rolled back (ino written as 0).
    InodeRef root = co_await mm.fs().Iget(p, kRootIno);
    uint32_t dir_blk = root->d.direct[0];
    CO_ASSERT_TRUE(dir_blk != 0);
    BufRef dir_buf = co_await mm.cache().Bread(dir_blk);
    co_await mm.cache().Bwrite(dir_buf);

    // On disk: entry slot 0 has a zero ino (undone); in memory the file
    // is still perfectly visible.
    EXPECT_EQ(OnDiskEntryIno(mm.image(), dir_blk, 0), 0u);
    Result<uint32_t> found = co_await mm.fs().Lookup(p, "/early");
    EXPECT_TRUE(found.Ok());
    EXPECT_GE(Policy(mm).stats().undos, 1u);
    EXPECT_GE(Policy(mm).stats().redos, 1u);

    // After a full flush the entry lands with the real ino.
    co_await mm.fs().SyncEverything(p);
    EXPECT_EQ(OnDiskEntryIno(mm.image(), dir_blk, 0), ino.value());
  });
  EXPECT_FALSE(Policy(m).HasPendingDeps());
}

TEST(SoftUpdatesTest, CreateThenRemoveNeedsNoEntryWrites) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    uint64_t writes_before = mm.image().WriteCount();
    for (int i = 0; i < 10; ++i) {
      Result<uint32_t> ino = co_await mm.fs().Create(p, "/tmp" + std::to_string(i));
      CO_ASSERT_TRUE(ino.Ok());
      (void)co_await mm.fs().Unlink(p, "/tmp" + std::to_string(i));
    }
    // The adds and removes cancel: nothing needs to reach the disk.
    EXPECT_EQ(mm.image().WriteCount(), writes_before);
  });
  EXPECT_EQ(Policy(m).stats().cancelled_pairs, 10u);
}

TEST(SoftUpdatesTest, BlockFreeIsDeferredUntilInodeWrite) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await mm.fs().Create(p, "/data");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> data(3 * kBlockSize, 9);
    (void)co_await mm.fs().WriteFile(p, ino.value(), 0, data);
    co_await mm.fs().SyncEverything(p);

    uint64_t freed_before = mm.fs().op_stats().blocks_freed;
    (void)co_await mm.fs().Unlink(p, "/data");
    // The unlink returns with the bitmap untouched: the whole removal is
    // deferred (dirrem) until the cleared entry reaches stable storage,
    // and the block frees defer further until the reset inode does.
    EXPECT_EQ(mm.fs().op_stats().blocks_freed, freed_before);
    EXPECT_GE(Policy(mm).stats().dir_rems, 1u);

    co_await mm.fs().SyncEverything(p);
    EXPECT_GE(Policy(mm).stats().deferred_frees, 1u);
    EXPECT_EQ(mm.fs().op_stats().blocks_freed, freed_before + 3);
  });
}

TEST(SoftUpdatesTest, WorkitemsRunOnSyncerQueue) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await mm.fs().Create(p, "/w");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> data(kBlockSize, 1);
    (void)co_await mm.fs().WriteFile(p, ino.value(), 0, data);
    co_await mm.fs().SyncEverything(p);
    (void)co_await mm.fs().Unlink(p, "/w");
    co_await mm.fs().SyncEverything(p);
  });
  EXPECT_GE(Policy(m).stats().workitems, 1u);
  EXPECT_GE(m.syncer().WorkitemsRun(), 1u);
  EXPECT_FALSE(Policy(m).HasPendingDeps());
}

TEST(SoftUpdatesTest, IndirectBlockUsesSafeCopy) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await mm.fs().Create(p, "/big");
    CO_ASSERT_TRUE(ino.Ok());
    // Write past the direct range so an indirect block is allocated and
    // carries allocindirect dependencies.
    std::vector<uint8_t> data((kNumDirect + 4) * kBlockSize, 5);
    (void)co_await mm.fs().WriteFile(p, ino.value(), 0, data);

    InodeRef ip = co_await mm.fs().Iget(p, ino.value());
    uint32_t indirect = ip->d.indirect;
    CO_ASSERT_TRUE(indirect != 0);
    // Write the indirect block while its data blocks are uninitialized:
    // the on-disk image must get the SAFE COPY (zero pointers), not the
    // live pointers.
    BufRef ibuf = co_await mm.cache().Bread(indirect);
    co_await mm.cache().Bwrite(ibuf);
    BlockData on_disk;
    mm.image().Read(indirect, &on_disk);
    uint32_t slot0;
    memcpy(&slot0, on_disk.data(), sizeof(slot0));
    EXPECT_EQ(slot0, 0u);

    // After the data blocks land, the indirect block carries the real
    // pointers.
    co_await mm.fs().SyncEverything(p);
    mm.image().Read(indirect, &on_disk);
    memcpy(&slot0, on_disk.data(), sizeof(slot0));
    EXPECT_NE(slot0, 0u);
  });
  EXPECT_FALSE(Policy(m).HasPendingDeps());
}

TEST(SoftUpdatesTest, FsckCleanAfterHeavyChurnAndFlush) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    (void)co_await mm.fs().Mkdir(p, "/d");
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 20; ++i) {
        Result<uint32_t> ino =
            co_await mm.fs().Create(p, "/d/f" + std::to_string(round * 100 + i));
        CO_ASSERT_TRUE(ino.Ok());
        std::vector<uint8_t> data((1 + i % 4) * kBlockSize, static_cast<uint8_t>(i));
        (void)co_await mm.fs().WriteFile(p, ino.value(), 0, data);
      }
      for (int i = 0; i < 20; i += 2) {
        (void)co_await mm.fs().Unlink(p, "/d/f" + std::to_string(round * 100 + i));
      }
    }
    co_await mm.fs().SyncEverything(p);
  });
  EXPECT_FALSE(Policy(m).HasPendingDeps());
  DiskImage snap = m.CrashNow();
  FsckReport r = FsckChecker(&snap).Check();
  for (const auto& v : r.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  EXPECT_EQ(r.files_seen, 30u);
}

TEST(SoftUpdatesTest, RenameHoldsRemovalUntilNewEntrySafe) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await mm.fs().Create(p, "/old");
    CO_ASSERT_TRUE(ino.Ok());
    co_await mm.fs().SyncEverything(p);  // "/old" durably on disk.

    (void)co_await mm.fs().Rename(p, "/old", "/new");
    // Write the root dir block NOW: the new entry has a pending addsafe
    // (nlink bump not yet on disk), so it is undone - and rule 1 then
    // requires the old entry's removal to be undone too.
    InodeRef root = co_await mm.fs().Iget(p, kRootIno);
    uint32_t dir_blk = root->d.direct[0];
    BufRef dir_buf = co_await mm.cache().Bread(dir_blk);
    co_await mm.cache().Bwrite(dir_buf);

    // On disk: the OLD entry (slot 0) is still intact, the new one is
    // absent. In memory, only the new name resolves.
    EXPECT_EQ(OnDiskEntryIno(mm.image(), dir_blk, 0), ino.value());
    Result<uint32_t> old_lookup = co_await mm.fs().Lookup(p, "/old");
    EXPECT_FALSE(old_lookup.Ok());
    Result<uint32_t> new_lookup = co_await mm.fs().Lookup(p, "/new");
    EXPECT_TRUE(new_lookup.Ok());

    co_await mm.fs().SyncEverything(p);
    // Final state: old gone, new present on disk.
    EXPECT_EQ(OnDiskEntryIno(mm.image(), dir_blk, 0), 0u);
  });
  EXPECT_FALSE(Policy(m).HasPendingDeps());
}

TEST(SoftUpdatesTest, InodeStaysPinnedWhileDepsPending) {
  Machine m(SuConfig());
  RunSu(m, [](Machine& mm, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await mm.fs().Create(p, "/pinned");
    CO_ASSERT_TRUE(ino.Ok());
    InodeRef ip = mm.fs().IgetCached(ino.value());
    CO_ASSERT_TRUE(ip != nullptr);
    EXPECT_GT(ip->dep_pin, 0);
    co_await mm.fs().SyncEverything(p);
    EXPECT_EQ(ip->dep_pin, 0);
  });
}

}  // namespace
}  // namespace mufs
