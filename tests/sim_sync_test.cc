// Unit tests for simulation synchronization primitives and the CPU model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/sync.h"

namespace mufs {
namespace {

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Engine e;
  CondVar cv(&e);
  int woke = 0;
  auto body = [](CondVar* cv, int* woke) -> Task<void> {
    co_await cv->Await();
    ++*woke;
  };
  for (int i = 0; i < 3; ++i) {
    e.Spawn(body(&cv, &woke), "w");
  }
  e.Schedule(Msec(5), [&] { cv.NotifyAll(); });
  e.Run();
  EXPECT_EQ(woke, 3);
}

TEST(CondVarTest, NotifyOneWakesOldestOnly) {
  Engine e;
  CondVar cv(&e);
  std::vector<int> woke;
  auto body = [](CondVar* cv, std::vector<int>* woke, int i) -> Task<void> {
    co_await cv->Await();
    woke->push_back(i);
  };
  for (int i = 0; i < 3; ++i) {
    e.Spawn(body(&cv, &woke, i), "w");
  }
  e.Schedule(Msec(5), [&] { cv.NotifyOne(); });
  e.Run();
  ASSERT_EQ(woke.size(), 1u);
  EXPECT_EQ(woke[0], 0);
  EXPECT_EQ(cv.WaiterCount(), 2u);
}

TEST(OneShotEventTest, WaitersBeforeAndAfterSet) {
  Engine e;
  OneShotEvent ev(&e);
  std::vector<std::string> log;
  auto early = [&]() -> Task<void> {
    co_await ev.Wait();
    log.push_back("early");
  };
  auto late = [&]() -> Task<void> {
    co_await e.Sleep(Msec(20));
    co_await ev.Wait();  // Already set: passes through.
    log.push_back("late");
  };
  e.Spawn(early(), "early");
  e.Spawn(late(), "late");
  e.Schedule(Msec(10), [&] { ev.Set(); });
  e.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "early");
  EXPECT_EQ(log[1], "late");
}

TEST(MutexTest, MutualExclusionAndFifoOrder) {
  Engine e;
  Mutex m(&e);
  std::vector<int> order;
  auto body = [](Engine* e, Mutex* m, std::vector<int>* order, int i) -> Task<void> {
    co_await e->Sleep(Msec(i));  // Stagger arrival: 0,1,2,3.
    co_await m->Lock();
    order->push_back(i);
    co_await e->Sleep(Msec(10));
    m->Unlock();
  };
  for (int i = 0; i < 4; ++i) {
    e.Spawn(body(&e, &m, &order, i), "p");
  }
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MutexTest, TryLockFailsWhenHeld) {
  Engine e;
  Mutex m(&e);
  EXPECT_TRUE(m.TryLock());
  EXPECT_TRUE(m.Held());
  EXPECT_FALSE(m.TryLock());
  m.Unlock();
  EXPECT_FALSE(m.Held());
}

TEST(MutexTest, LockGuardReleasesOnScopeExit) {
  Engine e;
  Mutex m(&e);
  bool second_got_lock = false;
  auto first = [&]() -> Task<void> {
    {
      LockGuard g = co_await LockGuard::Acquire(&m);
      co_await e.Sleep(Msec(5));
    }
    co_await e.Sleep(Msec(5));
  };
  auto second = [&]() -> Task<void> {
    co_await e.Sleep(Msec(1));
    LockGuard g = co_await LockGuard::Acquire(&m);
    second_got_lock = true;
  };
  e.Spawn(first(), "first");
  e.Spawn(second(), "second");
  e.Run();
  EXPECT_TRUE(second_got_lock);
  EXPECT_FALSE(m.Held());
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine e;
  Semaphore sem(&e, 2);
  int active = 0;
  int max_active = 0;
  auto body = [](Engine* e, Semaphore* sem, int* active, int* max_active) -> Task<void> {
    co_await sem->Acquire();
    ++*active;
    *max_active = std::max(*max_active, *active);
    co_await e->Sleep(Msec(10));
    --*active;
    sem->Release();
  };
  for (int i = 0; i < 5; ++i) {
    e.Spawn(body(&e, &sem, &active, &max_active), "p");
  }
  e.Run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(sem.Count(), 2);
}

TEST(CpuTest, SingleConsumerChargedExactly) {
  Engine e;
  Cpu cpu(&e);
  auto body = [&]() -> Task<void> { co_await cpu.Consume(1, Msec(25)); };
  e.Spawn(body(), "p1");
  e.Run();
  EXPECT_EQ(cpu.Charged(1), Msec(25));
  EXPECT_EQ(e.Now(), Msec(25));
}

TEST(CpuTest, TwoConsumersShareSerially) {
  Engine e;
  Cpu cpu(&e, Msec(1));
  SimTime end1 = 0;
  SimTime end2 = 0;
  auto mk = [&](Pid pid, SimTime* end) -> Task<void> {
    co_await cpu.Consume(pid, Msec(10));
    *end = e.Now();
  };
  e.Spawn(mk(1, &end1), "p1");
  e.Spawn(mk(2, &end2), "p2");
  e.Run();
  EXPECT_EQ(cpu.Charged(1), Msec(10));
  EXPECT_EQ(cpu.Charged(2), Msec(10));
  // Total wall time is the sum (one CPU), and round-robin means both finish
  // near the end rather than one finishing at Msec(10).
  EXPECT_EQ(e.Now(), Msec(20));
  EXPECT_GE(end1, Msec(18));
  EXPECT_GE(end2, Msec(18));
}

TEST(CpuTest, TotalChargedAccumulates) {
  Engine e;
  Cpu cpu(&e);
  auto body = [&](Pid pid) -> Task<void> { co_await cpu.Consume(pid, Msec(5)); };
  e.Spawn(body(1), "p1");
  e.Spawn(body(2), "p2");
  e.Run();
  EXPECT_EQ(cpu.TotalCharged(), Msec(10));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, WeightedIndexRespectsZeroWeight) {
  Rng r(42);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.WeightedIndex(w), 1u);
  }
}

}  // namespace
}  // namespace mufs
