// Scheme sweep under disk fault injection (tier 1): every ordering scheme
// must complete the populate/copy/remove workload — or fail cleanly with
// kIoError — at low fault rates, with no request abandoned by the driver
// and no unrepairable damage on the surviving image. A dense sweep over
// higher rates and more seeds lives in fault_sweep_test.cc (slow label).
#include <gtest/gtest.h>

#include "tests/fault_test_util.h"

namespace mufs {
namespace {

// Sweeps iterate mufs::kAllSchemes (machine.h), so a new scheme joins
// the fault battery automatically.

TEST(FaultInjectionTest, ZeroRateBehavesExactlyAsBefore) {
  TreeSpec tree = SmallFaultTree();
  for (Scheme s : kAllSchemes) {
    SCOPED_TRACE(SchemeName(s));
    FaultRunResult r = RunFaultWorkload(s, 0, 1, tree);
    EXPECT_EQ(r.populate, FsStatus::kOk);
    EXPECT_EQ(r.copy, FsStatus::kOk);
    EXPECT_EQ(r.remove, FsStatus::kOk);
    EXPECT_EQ(r.injected, 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.gave_up, 0u);
    EXPECT_TRUE(r.fsck_clean) << r.fsck_detail;
  }
}

TEST(FaultInjectionTest, AllSchemesCompleteOrFailCleanlyUnderFaults) {
  TreeSpec tree = SmallFaultTree();
  for (Scheme s : kAllSchemes) {
    for (double rate : {1e-4, 1e-3}) {
      SCOPED_TRACE(std::string(SchemeName(s)) + " rate=" + std::to_string(rate));
      FaultRunResult r = RunFaultWorkload(s, rate, 1, tree);
      EXPECT_TRUE(CompleteOrCleanFail(r.populate)) << static_cast<int>(r.populate);
      EXPECT_TRUE(CompleteOrCleanFail(r.copy)) << static_cast<int>(r.copy);
      EXPECT_TRUE(CompleteOrCleanFail(r.remove)) << static_cast<int>(r.remove);
      // The retry/remap path must absorb every fault at these rates.
      EXPECT_EQ(r.gave_up, 0u);
      // Whatever landed must audit clean, or be fully repairable.
      EXPECT_TRUE(r.fsck_clean || r.fsck_repaired_clean) << r.fsck_detail;
    }
  }
}

// The low rates above can legitimately inject zero faults on a small
// workload (~200 requests x 1e-3). The remaining tests use a rate high
// enough that faults certainly occur, so they exercise the real paths.
constexpr double kDenseRate = 0.02;

TEST(FaultInjectionTest, FaultsAreActuallyInjectedAtTheDenseRate) {
  TreeSpec tree = SmallFaultTree();
  FaultRunResult r = RunFaultWorkload(Scheme::kConventional, kDenseRate, 1, tree);
  EXPECT_GT(r.injected, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_TRUE(r.fsck_clean || r.fsck_repaired_clean) << r.fsck_detail;
}

TEST(FaultInjectionTest, SameSeedRunsAreByteIdentical) {
  TreeSpec tree = SmallFaultTree();
  for (Scheme s : {Scheme::kSoftUpdates, Scheme::kJournaling}) {
    SCOPED_TRACE(SchemeName(s));
    // Seed 1 is known to inject faults for both schemes at this rate
    // (the sim is deterministic, so "known" is stable, not flaky).
    FaultRunResult a = RunFaultWorkload(s, kDenseRate, 1, tree);
    FaultRunResult b = RunFaultWorkload(s, kDenseRate, 1, tree);
    EXPECT_GT(a.injected, 0u);  // The determinism claim is non-vacuous.
    EXPECT_EQ(a.stats_json, b.stats_json);
    EXPECT_EQ(a.populate, b.populate);
    EXPECT_EQ(a.copy, b.copy);
    EXPECT_EQ(a.remove, b.remove);
  }
}

// Command queueing (depth > 1) under faults: a retried or remapped
// command sits in the device queue alongside its siblings; the recovery
// path must neither abandon a request nor damage the image beyond what
// the scheme's own recovery model repairs.
TEST(FaultInjectionTest, AllSchemesSurviveFaultsAtQueueDepth) {
  TreeSpec tree = SmallFaultTree();
  for (Scheme s : kAllSchemes) {
    for (uint32_t depth : {4u, 16u}) {
      SCOPED_TRACE(std::string(SchemeName(s)) + " depth=" + std::to_string(depth));
      FaultRunResult r = RunFaultWorkload(s, kDenseRate, 1, tree, depth);
      EXPECT_GT(r.injected, 0u);
      EXPECT_TRUE(CompleteOrCleanFail(r.populate)) << static_cast<int>(r.populate);
      EXPECT_TRUE(CompleteOrCleanFail(r.copy)) << static_cast<int>(r.copy);
      EXPECT_TRUE(CompleteOrCleanFail(r.remove)) << static_cast<int>(r.remove);
      EXPECT_EQ(r.gave_up, 0u);
      EXPECT_TRUE(r.fsck_clean || r.fsck_repaired_clean) << r.fsck_detail;
    }
  }
}

TEST(FaultInjectionTest, QueuedFaultRunsAreByteIdentical) {
  TreeSpec tree = SmallFaultTree();
  FaultRunResult a = RunFaultWorkload(Scheme::kSchedulerFlag, kDenseRate, 1, tree, 16);
  FaultRunResult b = RunFaultWorkload(Scheme::kSchedulerFlag, kDenseRate, 1, tree, 16);
  EXPECT_GT(a.injected, 0u);
  EXPECT_EQ(a.stats_json, b.stats_json);
}

// Silent-damage smoke (tier 1): under the adversarial config the device
// lies - no op may fail, no request is retried for these kinds - and the
// damage the ledger records must be repairable by the scheme's recovery.
// The exhaustive scheme x kind x depth x personality matrix lives in
// scenario_matrix_test.cc (slow label).
TEST(FaultInjectionTest, AdversarialDamageIsRecordedAndRepairable) {
  TreeSpec tree = SmallFaultTree();
  for (Scheme s : {Scheme::kSoftUpdates, Scheme::kJournaling}) {
    SCOPED_TRACE(SchemeName(s));
    FaultRunResult r =
        RunFaultWorkloadWithConfig(s, FaultConfig::Adversarial(0.05, 7), tree);
    // The device reported success everywhere: every op completed.
    EXPECT_EQ(r.populate, FsStatus::kOk);
    EXPECT_EQ(r.copy, FsStatus::kOk);
    EXPECT_EQ(r.remove, FsStatus::kOk);
    EXPECT_EQ(r.gave_up, 0u);
    EXPECT_GT(r.injected, 0u);       // The sweep is non-vacuous...
    EXPECT_FALSE(r.damage.empty());  // ...and the ledger classified it.
    for (const auto& d : r.damage) {
      EXPECT_TRUE(d.kind == FaultKind::kTornWrite || d.kind == FaultKind::kMisdirected);
    }
    EXPECT_TRUE(r.fsck_clean || r.fsck_repaired_clean) << r.fsck_detail;
  }
}

TEST(FaultInjectionTest, AdversarialSameSeedRunsAreByteIdentical) {
  TreeSpec tree = SmallFaultTree();
  FaultConfig fc = FaultConfig::Adversarial(0.05, 7);
  FaultRunResult a = RunFaultWorkloadWithConfig(Scheme::kSoftUpdates, fc, tree);
  FaultRunResult b = RunFaultWorkloadWithConfig(Scheme::kSoftUpdates, fc, tree);
  EXPECT_GT(a.injected, 0u);
  EXPECT_EQ(a.stats_json, b.stats_json);
  ASSERT_EQ(a.damage.size(), b.damage.size());
  for (size_t i = 0; i < a.damage.size(); ++i) {
    EXPECT_EQ(a.damage[i].kind, b.damage[i].kind);
    EXPECT_EQ(a.damage[i].blkno, b.damage[i].blkno);
    EXPECT_EQ(a.damage[i].victim, b.damage[i].victim);
  }
}

TEST(FaultInjectionTest, DifferentSeedsChangeTheFaultSchedule) {
  TreeSpec tree = SmallFaultTree();
  FaultRunResult a = RunFaultWorkload(Scheme::kConventional, kDenseRate, 1, tree);
  FaultRunResult b = RunFaultWorkload(Scheme::kConventional, kDenseRate, 2, tree);
  // Both valid runs; the injected-fault schedule (and hence the stats)
  // should differ. Identical JSON would mean the seed is ignored.
  EXPECT_NE(a.stats_json, b.stats_json);
}

}  // namespace
}  // namespace mufs
