// Unit and property tests for the write-ahead metadata journal: on-disk
// record format round trips, torn-tail discard, checkpoint behaviour on
// tiny logs, end-to-end crash replay, and determinism of the stats dump.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/core/machine.h"
#include "src/fsck/fsck.h"
#include "src/journal/journal_format.h"
#include "src/journal/journal_recovery.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

SuperBlock ReadSuper(const DiskImage& image) {
  BlockData raw;
  image.Read(0, &raw);
  SuperBlock sb;
  std::memcpy(&sb, raw.data(), sizeof(sb));
  return sb;
}

// A non-journaling image has no log to recover.
TEST(JournalRecoveryTest, AbsentOnNonJournalImage) {
  DiskImage img(4096);
  FileSystem::Mkfs(&img, /*total_inodes=*/512, /*journal_blocks=*/0);
  JournalReplayReport report = JournalRecovery(&img).Run();
  EXPECT_FALSE(report.journal_present);
  EXPECT_EQ(report.txns_replayed, 0u);
}

// Hand-craft a log holding one committed transaction followed by a torn
// (descriptor-only) one: recovery must replay exactly the committed txn,
// discard the tail, and restamp the horizon so a second run is a no-op.
TEST(JournalRecoveryTest, ReplaysCommittedAndDiscardsTornTail) {
  DiskImage img(4096);
  FileSystem::Mkfs(&img, /*total_inodes=*/512, /*journal_blocks=*/64);
  const SuperBlock sb = ReadSuper(img);
  ASSERT_EQ(sb.journal_blocks, 64u);
  const uint32_t log_first = sb.journal_start + 1;
  const uint32_t usable = sb.journal_blocks - 1;
  const uint32_t victim = sb.data_start;
  const uint32_t untouched = sb.data_start + 1;

  JournalSuperBlock jsb;
  jsb.log_blocks = usable;
  jsb.start_seq = 1;
  jsb.start_offset = 0;
  BlockData blk{};
  std::memcpy(blk.data(), &jsb, sizeof(jsb));
  img.Write(sb.journal_start, blk, img.LastWriteTime());

  // Committed txn, seq 1: descriptor + payload + commit.
  BlockData payload{};
  payload.fill(0xAB);
  JournalRecordHeader desc;
  desc.kind = static_cast<uint32_t>(JournalRecordKind::kDescriptor);
  desc.seq = 1;
  desc.count = 1;
  blk.fill(0);
  std::memcpy(blk.data(), &desc, sizeof(desc));
  std::memcpy(blk.data() + sizeof(desc), &victim, sizeof(victim));
  img.Write(log_first + 0, blk, img.LastWriteTime());
  img.Write(log_first + 1, payload, img.LastWriteTime());
  JournalCommitRecord commit;
  commit.h.kind = static_cast<uint32_t>(JournalRecordKind::kCommit);
  commit.h.seq = 1;
  commit.h.count = 1;
  commit.checksum =
      JournalChecksumUpdate(JournalChecksumSeed(1), payload.data(), kBlockSize);
  blk.fill(0);
  std::memcpy(blk.data(), &commit, sizeof(commit));
  img.Write(log_first + 2, blk, img.LastWriteTime());

  // Torn txn, seq 2: descriptor + payload, crash before the commit record.
  desc.seq = 2;
  blk.fill(0);
  std::memcpy(blk.data(), &desc, sizeof(desc));
  std::memcpy(blk.data() + sizeof(desc), &untouched, sizeof(untouched));
  img.Write(log_first + 3, blk, img.LastWriteTime());
  BlockData torn_payload{};
  torn_payload.fill(0xCD);
  img.Write(log_first + 4, torn_payload, img.LastWriteTime());

  JournalReplayReport report = JournalRecovery(&img).Run();
  EXPECT_TRUE(report.journal_present);
  EXPECT_EQ(report.txns_replayed, 1u);
  EXPECT_EQ(report.blocks_replayed, 1u);
  EXPECT_TRUE(report.torn_tail);

  BlockData got;
  img.Read(victim, &got);
  EXPECT_EQ(got, payload) << "committed payload not applied to its home block";
  img.Read(untouched, &got);
  EXPECT_NE(got, torn_payload) << "torn transaction must not be applied";

  // Idempotence: the horizon was restamped past the discarded tail, so a
  // second recovery pass finds a logically empty ring.
  JournalReplayReport again = JournalRecovery(&img).Run();
  EXPECT_TRUE(again.journal_present);
  EXPECT_EQ(again.txns_replayed, 0u);
  EXPECT_FALSE(again.torn_tail);

  BlockData jraw;
  img.Read(sb.journal_start, &jraw);
  JournalSuperBlock stamped;
  std::memcpy(&stamped, jraw.data(), sizeof(stamped));
  EXPECT_EQ(stamped.start_seq, 2u) << "horizon must advance past replayed txns";
  EXPECT_EQ(stamped.start_offset, 0u);
}

// A bad checksum (payload corrupted after the commit record landed - or a
// commit record from a stale pass) must not replay.
TEST(JournalRecoveryTest, ChecksumMismatchDiscardsTransaction) {
  DiskImage img(4096);
  FileSystem::Mkfs(&img, /*total_inodes=*/512, /*journal_blocks=*/64);
  const SuperBlock sb = ReadSuper(img);
  const uint32_t log_first = sb.journal_start + 1;

  JournalSuperBlock jsb;
  jsb.log_blocks = sb.journal_blocks - 1;
  jsb.start_seq = 1;
  jsb.start_offset = 0;
  BlockData blk{};
  std::memcpy(blk.data(), &jsb, sizeof(jsb));
  img.Write(sb.journal_start, blk, img.LastWriteTime());

  BlockData payload{};
  payload.fill(0x5A);
  JournalRecordHeader desc;
  desc.kind = static_cast<uint32_t>(JournalRecordKind::kDescriptor);
  desc.seq = 1;
  desc.count = 1;
  const uint32_t victim = sb.data_start;
  blk.fill(0);
  std::memcpy(blk.data(), &desc, sizeof(desc));
  std::memcpy(blk.data() + sizeof(desc), &victim, sizeof(victim));
  img.Write(log_first + 0, blk, img.LastWriteTime());
  img.Write(log_first + 1, payload, img.LastWriteTime());
  JournalCommitRecord commit;
  commit.h.kind = static_cast<uint32_t>(JournalRecordKind::kCommit);
  commit.h.seq = 1;
  commit.h.count = 1;
  commit.checksum = 0xdeadbeef;  // Wrong on purpose.
  blk.fill(0);
  std::memcpy(blk.data(), &commit, sizeof(commit));
  img.Write(log_first + 2, blk, img.LastWriteTime());

  JournalReplayReport report = JournalRecovery(&img).Run();
  EXPECT_EQ(report.txns_replayed, 0u);
  EXPECT_TRUE(report.torn_tail);
  BlockData got;
  img.Read(victim, &got);
  EXPECT_NE(got, payload);
}

// Torn log damage: the commit record (which fits in the block's atomic
// first sector) persisted, but the payload sector tail did not - the
// dangerous half-case of a power cut mid-commit. The checksum over the
// full payload must catch the tear: the transaction is discarded and
// reported as torn, never half-applied.
TEST(JournalRecoveryTest, TornPayloadUnderValidCommitIsDetected) {
  DiskImage img(4096);
  FileSystem::Mkfs(&img, /*total_inodes=*/512, /*journal_blocks=*/64);
  const SuperBlock sb = ReadSuper(img);
  const uint32_t log_first = sb.journal_start + 1;
  const uint32_t victim = sb.data_start;

  JournalSuperBlock jsb;
  jsb.log_blocks = sb.journal_blocks - 1;
  jsb.start_seq = 1;
  jsb.start_offset = 0;
  BlockData blk{};
  std::memcpy(blk.data(), &jsb, sizeof(jsb));
  img.Write(sb.journal_start, blk, img.LastWriteTime());

  BlockData payload{};
  payload.fill(0xAB);
  JournalRecordHeader desc;
  desc.kind = static_cast<uint32_t>(JournalRecordKind::kDescriptor);
  desc.seq = 1;
  desc.count = 1;
  blk.fill(0);
  std::memcpy(blk.data(), &desc, sizeof(desc));
  std::memcpy(blk.data() + sizeof(desc), &victim, sizeof(victim));
  img.Write(log_first + 0, blk, img.LastWriteTime());
  // The payload lands TORN: only the sector prefix persists, the tail
  // stays at its old (zero) content.
  img.WriteTorn(log_first + 1, payload, img.LastWriteTime());
  // The commit record lands whole, its checksum computed over the payload
  // the committer INTENDED to write.
  JournalCommitRecord commit;
  commit.h.kind = static_cast<uint32_t>(JournalRecordKind::kCommit);
  commit.h.seq = 1;
  commit.h.count = 1;
  commit.checksum =
      JournalChecksumUpdate(JournalChecksumSeed(1), payload.data(), kBlockSize);
  blk.fill(0);
  std::memcpy(blk.data(), &commit, sizeof(commit));
  img.Write(log_first + 2, blk, img.LastWriteTime());

  JournalReplayReport report = JournalRecovery(&img).Run();
  EXPECT_TRUE(report.journal_present);
  EXPECT_EQ(report.txns_replayed, 0u);
  EXPECT_TRUE(report.torn_tail) << "torn log damage must be detected and reported";
  BlockData got;
  img.Read(victim, &got);
  EXPECT_NE(got, payload) << "a torn transaction must never be applied";

  // Recovery stays safe under repetition: the horizon did not advance
  // past the tear, so a second run re-detects it and still applies
  // nothing.
  JournalReplayReport again = JournalRecovery(&img).Run();
  EXPECT_EQ(again.txns_replayed, 0u);
  EXPECT_TRUE(again.torn_tail);
  img.Read(victim, &got);
  EXPECT_NE(got, payload);
}

// A fully valid transaction from a PREVIOUS pass of the ring (seq below
// the checkpointed horizon) must not replay: the horizon in the journal
// superblock, not record validity, decides what is live.
TEST(JournalRecoveryTest, ValidButStaleRecordIsNotReplayed) {
  DiskImage img(4096);
  FileSystem::Mkfs(&img, /*total_inodes=*/512, /*journal_blocks=*/64);
  const SuperBlock sb = ReadSuper(img);
  const uint32_t log_first = sb.journal_start + 1;
  const uint32_t victim = sb.data_start;

  // The horizon says the log starts at seq 5; the ring still holds a
  // perfectly well-formed, correctly checksummed txn with seq 1 left over
  // from before the last checkpoint.
  JournalSuperBlock jsb;
  jsb.log_blocks = sb.journal_blocks - 1;
  jsb.start_seq = 5;
  jsb.start_offset = 0;
  BlockData blk{};
  std::memcpy(blk.data(), &jsb, sizeof(jsb));
  img.Write(sb.journal_start, blk, img.LastWriteTime());

  BlockData payload{};
  payload.fill(0xEE);
  JournalRecordHeader desc;
  desc.kind = static_cast<uint32_t>(JournalRecordKind::kDescriptor);
  desc.seq = 1;
  desc.count = 1;
  blk.fill(0);
  std::memcpy(blk.data(), &desc, sizeof(desc));
  std::memcpy(blk.data() + sizeof(desc), &victim, sizeof(victim));
  img.Write(log_first + 0, blk, img.LastWriteTime());
  img.Write(log_first + 1, payload, img.LastWriteTime());
  JournalCommitRecord commit;
  commit.h.kind = static_cast<uint32_t>(JournalRecordKind::kCommit);
  commit.h.seq = 1;
  commit.h.count = 1;
  commit.checksum =
      JournalChecksumUpdate(JournalChecksumSeed(1), payload.data(), kBlockSize);
  blk.fill(0);
  std::memcpy(blk.data(), &commit, sizeof(commit));
  img.Write(log_first + 2, blk, img.LastWriteTime());

  JournalReplayReport report = JournalRecovery(&img).Run();
  EXPECT_TRUE(report.journal_present);
  EXPECT_EQ(report.txns_replayed, 0u) << "stale records are dead, not replayable";
  BlockData got;
  img.Read(victim, &got);
  EXPECT_NE(got, payload);
}

MachineConfig JournalConfigFor(uint32_t log_blocks, SimDuration interval) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kJournaling;
  cfg.journal_log_blocks = log_blocks;
  cfg.journal_commit_interval = interval;
  cfg.syncer.sweep_seconds = 3;
  return cfg;
}

// Sleeps between phases span several group-commit intervals, so the
// committer daemon (not just an explicit flush) commits the updates.
Task<void> JournalChurn(Machine& m, Proc& p) {
  (void)co_await m.fs().Mkdir(p, "/a");
  (void)co_await CreateFiles(m, p, "/a", 20, 2 * kBlockSize);
  co_await m.engine().Sleep(Sec(2));
  for (int i = 0; i < 20; i += 2) {
    (void)co_await m.fs().Unlink(p, "/a/c" + std::to_string(i));
  }
  co_await m.engine().Sleep(Sec(2));
  (void)co_await m.fs().Rename(p, "/a/c1", "/a/renamed1");
  (void)co_await CreateRemoveFiles(m, p, "/a", 8, kBlockSize);
  co_await m.engine().Sleep(Sec(2));
}

// Runs the churn workload to completion WITHOUT a clean shutdown and
// returns the crash snapshot (dirty cache contents lost, log intact).
DiskImage RunAndSnapshot(const MachineConfig& cfg) {
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    co_await JournalChurn(*mm, *pp);
    *flag = true;
  };
  m.engine().Spawn(root(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  return m.CrashNow();
}

// End-to-end: crash after the workload (no shutdown), replay the log,
// and the image must be consistent with ZERO fsck repairs - replay alone
// is the whole recovery story for journaling.
TEST(JournalEndToEndTest, CrashReplayYieldsCleanImageWithZeroRepairs) {
  DiskImage img = RunAndSnapshot(JournalConfigFor(1024, Msec(250)));
  JournalReplayReport report = JournalRecovery(&img).Run();
  EXPECT_TRUE(report.journal_present);
  EXPECT_GT(report.txns_replayed, 0u)
      << "workload should leave committed-but-uncheckpointed txns behind";
  FsckOptions fsck;
  FsckReport check = FsckChecker(&img, fsck).Check();
  for (const auto& v : check.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
  EXPECT_TRUE(repair.clean_after);
  EXPECT_EQ(repair.TotalFixes(), 0u) << "replay must leave nothing for fsck to fix";
}

// Enough distinct-block churn, spread over enough commit intervals, to
// wrap a 32-block ring several times over.
Task<void> HeavyChurn(Machine& m, Proc& p) {
  for (int d = 0; d < 4; ++d) {
    std::string dir = "/d" + std::to_string(d);
    (void)co_await m.fs().Mkdir(p, dir);
    (void)co_await CreateFiles(m, p, dir, 12, kBlockSize);
    co_await m.engine().Sleep(Msec(400));
    for (int i = 0; i < 12; ++i) {
      (void)co_await m.fs().Unlink(p, dir + "/c" + std::to_string(i));
    }
    co_await m.engine().Sleep(Msec(400));
  }
}

// A tiny log forces checkpoints (and usually commit stalls) but must stay
// correct: same zero-repair guarantee as the comfortable configuration.
TEST(JournalEndToEndTest, TinyLogCheckpointsAndStaysConsistent) {
  MachineConfig cfg = JournalConfigFor(/*log_blocks=*/32, Msec(100));
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    co_await HeavyChurn(*mm, *pp);
    *flag = true;
  };
  m.engine().Spawn(root(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  EXPECT_GT(m.stats().counter("journal.checkpoints").value(), 0u)
      << "32-block log should wrap during this workload";
  EXPECT_GT(m.stats().counter("journal.txns").value(), 0u);

  DiskImage img = m.CrashNow();
  (void)JournalRecovery(&img).Run();
  FsckOptions fsck;
  FsckRepairReport repair = FsckRepairer(&img, fsck).Repair();
  EXPECT_TRUE(repair.clean_after);
  EXPECT_EQ(repair.TotalFixes(), 0u);
}

// Longer group-commit intervals batch more operations per transaction.
TEST(JournalEndToEndTest, GroupCommitBatchesUpdates) {
  Machine fast(JournalConfigFor(1024, Msec(50)));
  Machine slow(JournalConfigFor(1024, Sec(4)));
  for (Machine* m : {&fast, &slow}) {
    Proc p = m->MakeProc("u");
    bool done = false;
    auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
      co_await mm->Boot(*pp);
      co_await JournalChurn(*mm, *pp);
      co_await mm->Shutdown(*pp);
      *flag = true;
    };
    m->engine().Spawn(root(m, &p, &done), "u");
    m->engine().RunUntil([&] { return done; });
  }
  uint64_t fast_txns = fast.stats().counter("journal.txns").value();
  uint64_t slow_txns = slow.stats().counter("journal.txns").value();
  ASSERT_GT(fast_txns, 0u);
  ASSERT_GT(slow_txns, 0u);
  EXPECT_LT(slow_txns, fast_txns)
      << "a 4s interval must commit fewer, larger transactions than 50ms";
}

// Boot-time recovery is wired into Machine::Boot: a machine whose image
// carries committed txns replays them and reports the length via stats.
TEST(JournalEndToEndTest, BootReplaysAndCountsTransactions) {
  // First life: crash with committed-but-uncheckpointed txns in the ring.
  MachineConfig cfg = JournalConfigFor(1024, Msec(250));
  DiskImage img = RunAndSnapshot(cfg);
  // Second life: boot a machine on the crashed image.
  MachineConfig cfg2 = cfg;
  cfg2.format = false;
  Machine m(cfg2);
  m.LoadImage(img);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    Result<uint32_t> ino = co_await mm->fs().Create(*pp, "/after-recovery");
    EXPECT_TRUE(ino.Ok());
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(root(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  EXPECT_TRUE(m.last_replay().journal_present);
  EXPECT_GT(m.last_replay().txns_replayed, 0u);
  EXPECT_EQ(m.stats().counter("journal.replay_txns").value(),
            m.last_replay().txns_replayed);
}

// Same seed, same config => byte-identical stats dumps. The journal's
// group commit and checkpointing must not introduce nondeterminism.
TEST(JournalDeterminismTest, SameSeedStatsDumpsAreByteIdentical) {
  std::string dumps[2];
  for (std::string& out : dumps) {
    MachineConfig cfg = JournalConfigFor(256, Msec(500));
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
      co_await mm->Boot(*pp);
      co_await JournalChurn(*mm, *pp);
      co_await mm->Shutdown(*pp);
      *flag = true;
    };
    m.engine().Spawn(root(&m, &p, &done), "u");
    m.engine().RunUntil([&] { return done; });
    out = m.DumpStatsJson();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

}  // namespace
}  // namespace mufs
