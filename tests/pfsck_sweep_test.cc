// Full parallel-fsck equivalence sweep (label: slow, run nightly under
// TSan like fault_sweep_test): every scheme x {1,2,4} disks x a dense
// sample of crash points x threads {2,4,8}. Each cell asserts the
// parallel checker's report is byte-identical to the serial one, and a
// sampled subset additionally repairs the crash image both ways and
// asserts stable-storage byte-identity.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "src/fsck/fsck.h"
#include "src/fsck/pfsck.h"
#include "src/workload/workloads.h"
#include "tests/pfsck_test_util.h"

namespace mufs {
namespace {

struct SweepCase {
  Scheme scheme;
  uint32_t disks;
  std::string name;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (Scheme scheme : kAllSchemes) {
    for (uint32_t disks : {1u, 2u, 4u}) {
      cases.push_back({scheme, disks,
                       std::string(SchemeName(scheme)) + "_" + std::to_string(disks) + "d"});
    }
  }
  return cases;
}

class PfsckSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PfsckSweepTest, ParallelCheckIdenticalAcrossCrashPoints) {
  const SweepCase& c = GetParam();
  MachineConfig cfg;
  cfg.scheme = c.scheme;
  cfg.disks = c.disks;
  cfg.syncer.sweep_seconds = 3;
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(PfsckChurn);
  ASSERT_GT(total_writes, 10u);

  std::vector<uint64_t> points;
  for (int i = 1; i <= 8; ++i) {
    uint64_t w = total_writes * static_cast<uint64_t>(i) / 9;
    if (w > 0 && (points.empty() || points.back() != w)) {
      points.push_back(w);
    }
  }

  for (uint64_t w : points) {
    FsckOptions serial_opts;
    serial_opts.check_stale_data = true;
    CrashResult serial = harness.RunAndCrashAtWrite(PfsckChurn, w, serial_opts);
    for (uint32_t threads : {2u, 4u, 8u}) {
      FsckOptions par_opts = serial_opts;
      par_opts.threads = threads;
      CrashResult parallel = harness.RunAndCrashAtWrite(PfsckChurn, w, par_opts);
      ExpectReportsIdentical(serial.report, parallel.report,
                             c.name + " crash@write " + std::to_string(w) + " threads=" +
                                 std::to_string(threads));
    }
  }

  // Repair sweep on a sampled subset (repair iterates full check passes,
  // so it is the expensive half).
  ShardLayout layout = LayoutOf(cfg);
  for (uint64_t w : {points.front(), points[points.size() / 2], points.back()}) {
    DiskImage crash = harness.CrashImageAtWrite(PfsckChurn, w);
    DiskImage serial_img = crash.Snapshot();
    FsckOptions serial_opts;
    FsckRepairReport serial_merged;
    PfsckRepairSharded(&serial_img, layout, serial_opts, &serial_merged);
    for (uint32_t threads : {2u, 4u, 8u}) {
      DiskImage par_img = crash.Snapshot();
      FsckOptions par_opts;
      par_opts.threads = threads;
      FsckRepairReport par_merged;
      PfsckRepairSharded(&par_img, layout, par_opts, &par_merged);
      std::string context = c.name + " repair@write " + std::to_string(w) + " threads=" +
                            std::to_string(threads);
      ExpectRepairReportsIdentical(serial_merged, par_merged, context);
      ExpectImagesIdentical(serial_img, par_img, context);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PfsckSweepTest, ::testing::ValuesIn(AllCases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace mufs
