// Parallel-fsck equivalence battery (tier 1): for sampled crash points
// across schemes and disk counts, the parallel checker's report and the
// parallel repairer's image must be BYTE-identical to the serial path at
// every thread count - plus handcrafted images that pin the two spots
// where parallelism could legally diverge (cross-partition duplicate
// claims, duplicate-winner choice) and the parallel boot-replay path.
// The full crash-point sweep lives in pfsck_sweep_test.cc (label: slow).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/fs/filesystem.h"
#include "src/fsck/crash_harness.h"
#include "src/fsck/fsck.h"
#include "src/fsck/pfsck.h"
#include "src/workload/workloads.h"
#include "tests/pfsck_test_util.h"

namespace mufs {
namespace {

MachineConfig ConfigFor(Scheme scheme, uint32_t disks) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.disks = disks;
  cfg.syncer.sweep_seconds = 3;
  return cfg;
}

// --- harness-integrated report equivalence ---------------------------

struct EquivCase {
  Scheme scheme;
  uint32_t disks;
  const char* name;
};

class PfsckEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(PfsckEquivalenceTest, ReportsIdenticalAtSampledCrashPoints) {
  const EquivCase& c = GetParam();
  MachineConfig cfg = ConfigFor(c.scheme, c.disks);
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(PfsckChurn);
  ASSERT_GT(total_writes, 10u);
  for (uint64_t w : {total_writes / 4, total_writes / 2, (3 * total_writes) / 4}) {
    if (w == 0) {
      continue;
    }
    FsckOptions serial_opts;
    serial_opts.check_stale_data = true;
    CrashResult serial = harness.RunAndCrashAtWrite(PfsckChurn, w, serial_opts);
    EXPECT_EQ(serial.fsck_stats.threads, 0u);
    for (uint32_t threads : {2u, 4u}) {
      FsckOptions par_opts = serial_opts;
      par_opts.threads = threads;
      // The simulation is deterministic: the re-run reaches the exact
      // same crash image, so only the checker differs.
      CrashResult parallel = harness.RunAndCrashAtWrite(PfsckChurn, w, par_opts);
      std::string context = std::string(c.name) + " crash@write " + std::to_string(w) +
                            " threads=" + std::to_string(threads);
      EXPECT_EQ(parallel.fsck_stats.threads, threads) << context;
      ExpectReportsIdentical(serial.report, parallel.report, context);
      EXPECT_EQ(serial.replay.txns_replayed, parallel.replay.txns_replayed) << context;
      EXPECT_EQ(serial.replay.blocks_replayed, parallel.replay.blocks_replayed) << context;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PfsckEquivalenceTest,
    ::testing::Values(EquivCase{Scheme::kNoOrder, 1, "NoOrder-1d"},
                      EquivCase{Scheme::kNoOrder, 2, "NoOrder-2d"},
                      EquivCase{Scheme::kSoftUpdates, 1, "SoftUpdates-1d"},
                      EquivCase{Scheme::kSoftUpdates, 2, "SoftUpdates-2d"},
                      EquivCase{Scheme::kJournaling, 1, "Journaling-1d"},
                      EquivCase{Scheme::kJournaling, 2, "Journaling-2d"},
                      EquivCase{Scheme::kAsync, 1, "Async-1d"},
                      EquivCase{Scheme::kAsync, 2, "Async-2d"}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

// --- repair equivalence on real crash images -------------------------

TEST(PfsckRepairTest, RepairedImageByteIdenticalSingleDisk) {
  // No Order leaves real damage at most crash points - the repair has
  // actual work to do.
  MachineConfig cfg = ConfigFor(Scheme::kNoOrder, 1);
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(PfsckChurn);
  ASSERT_GT(total_writes, 10u);
  for (uint64_t w : {total_writes / 3, (2 * total_writes) / 3}) {
    DiskImage crash = harness.CrashImageAtWrite(PfsckChurn, w);
    DiskImage serial_img = crash.Snapshot();
    FsckOptions opts;
    FsckRepairReport serial = FsckRepairer(&serial_img, opts).Repair();
    for (uint32_t threads : {2u, 4u, 8u}) {
      DiskImage par_img = crash.Snapshot();
      FsckOptions par_opts;
      par_opts.threads = threads;
      PfsckStats stats;
      FsckRepairReport parallel = PfsckRepair(&par_img, par_opts, &stats);
      std::string context =
          "crash@write " + std::to_string(w) + " threads=" + std::to_string(threads);
      ExpectRepairReportsIdentical(serial, parallel, context);
      ExpectImagesIdentical(serial_img, par_img, context);
    }
  }
}

TEST(PfsckRepairTest, ShardedRepairByteIdentical) {
  MachineConfig cfg = ConfigFor(Scheme::kNoOrder, 2);
  ShardLayout layout = LayoutOf(cfg);
  ASSERT_EQ(layout.num_shards, 2u);
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(PfsckChurn);
  ASSERT_GT(total_writes, 10u);
  DiskImage crash = harness.CrashImageAtWrite(PfsckChurn, total_writes / 2);

  DiskImage serial_img = crash.Snapshot();
  FsckOptions serial_opts;
  FsckRepairReport serial_merged;
  std::vector<FsckRepairReport> serial_reports =
      PfsckRepairSharded(&serial_img, layout, serial_opts, &serial_merged);

  for (uint32_t threads : {2u, 4u}) {
    DiskImage par_img = crash.Snapshot();
    FsckOptions par_opts;
    par_opts.threads = threads;
    FsckRepairReport par_merged;
    PfsckStats stats;
    std::vector<FsckRepairReport> par_reports =
        PfsckRepairSharded(&par_img, layout, par_opts, &par_merged, &stats);
    std::string context = "sharded threads=" + std::to_string(threads);
    ASSERT_EQ(serial_reports.size(), par_reports.size()) << context;
    for (size_t s = 0; s < serial_reports.size(); ++s) {
      ExpectRepairReportsIdentical(serial_reports[s], par_reports[s],
                                   context + " shard " + std::to_string(s));
    }
    ExpectRepairReportsIdentical(serial_merged, par_merged, context);
    ExpectImagesIdentical(serial_img, par_img, context);
    EXPECT_EQ(stats.shard_checks, 2u) << context;
    // A repaired shard must re-check clean through the sharded checker.
    FsckReport after = PfsckCheckSharded(par_img, layout, par_opts);
    EXPECT_TRUE(after.violations.empty()) << context;
    EXPECT_TRUE(after.fixables.empty()) << context;
  }
}

// --- handcrafted images: the spots where parallelism could diverge ---

constexpr uint32_t kBlocks = 4096;

struct Img {
  Img() : image(kBlocks) { FileSystem::Mkfs(&image, 1024); }

  SuperBlock sb() const {
    BlockData b;
    image.Read(0, &b);
    SuperBlock s;
    memcpy(&s, b.data(), sizeof(s));
    return s;
  }

  void WriteInode(uint32_t ino, const DiskInode& d) {
    SuperBlock s = sb();
    BlockData b;
    image.Read(s.ItableBlock(ino), &b);
    memcpy(b.data() + s.ItableOffset(ino), &d, sizeof(d));
    image.Write(s.ItableBlock(ino), b, 0);
  }

  DiskInode ReadInode(uint32_t ino) const {
    SuperBlock s = sb();
    BlockData b;
    image.Read(s.ItableBlock(ino), &b);
    DiskInode d;
    memcpy(&d, b.data() + s.ItableOffset(ino), sizeof(d));
    return d;
  }

  uint32_t MakeFile(uint32_t ino, uint16_t nlink, std::initializer_list<uint32_t> blocks) {
    DiskInode d;
    d.mode = static_cast<uint16_t>(FileType::kRegular);
    d.nlink = nlink;
    d.generation = 1;
    uint32_t i = 0;
    for (uint32_t blk : blocks) {
      d.direct[i++] = blk;
    }
    d.size = static_cast<uint64_t>(i) * kBlockSize;
    WriteInode(ino, d);
    return ino;
  }

  DiskImage image;
};

TEST(PfsckHandcraftedTest, CrossPartitionDuplicateClaimIsAMergeConflict) {
  // Inodes 5 and 900 land in different scan partitions at 4 threads
  // (16 chunks over 1023 inodes); both claim the same data block. The
  // serial checker blames "claimed by ino 5 and ino 900" (lowest ino
  // wins the earlier claim); the parallel merge must reproduce that
  // verbatim AND surface the conflict in its stats.
  Img img;
  SuperBlock sb = img.sb();
  uint32_t shared = sb.data_start + 50;
  img.MakeFile(5, 1, {shared});
  img.MakeFile(900, 1, {shared, sb.data_start + 51});

  FsckReport serial = FsckChecker(&img.image).Check();
  ASSERT_FALSE(serial.violations.empty());
  bool found = false;
  for (const auto& v : serial.violations) {
    if (v.type == FsckViolationType::kDuplicateBlockClaim) {
      EXPECT_EQ(v.detail, "block " + std::to_string(shared) +
                              " claimed by ino 5 and ino 900");
      found = true;
    }
  }
  ASSERT_TRUE(found);

  for (uint32_t threads : {2u, 4u, 8u}) {
    FsckOptions opts;
    opts.threads = threads;
    PfsckStats stats;
    FsckReport parallel = PfsckCheck(&img.image, opts, &stats);
    ExpectReportsIdentical(serial, parallel, "threads=" + std::to_string(threads));
    EXPECT_GE(stats.merge_conflicts, 1u) << "threads=" << threads;
  }
}

TEST(PfsckHandcraftedTest, DuplicateWinnerIsLowestInoInBothPaths) {
  // Satellite: duplicate-block repair must keep the LOWEST-ino claimant,
  // deterministically, serial and parallel alike.
  Img img;
  SuperBlock sb = img.sb();
  uint32_t shared = sb.data_start + 70;
  img.MakeFile(5, 1, {shared});
  img.MakeFile(9, 1, {shared});

  Img par;
  par.MakeFile(5, 1, {shared});
  par.MakeFile(9, 1, {shared});

  FsckRepairReport serial = FsckRepairer(&img.image).Repair();
  FsckOptions opts;
  opts.threads = 4;
  FsckRepairReport parallel = PfsckRepair(&par.image, opts);

  ExpectRepairReportsIdentical(serial, parallel, "lowest-ino winner");
  ExpectImagesIdentical(img.image, par.image, "lowest-ino winner");
  // Orphan clearing frees both files eventually (neither has a dir
  // entry), but the POINTER scrub must have cleared ino 9's pointer,
  // never ino 5's: pointers_cleared counts exactly the loser.
  EXPECT_GE(serial.pointers_cleared, 1u);
}

TEST(PfsckHandcraftedTest, IndirectTreeDuplicateSkipsSubtreeLikeSerial) {
  // An indirect block claimed by a lower inode first: the higher inode
  // loses the claim and the serial checker never walks that subtree.
  // The parallel replay must skip the identical subtree.
  Img img;
  SuperBlock sb = img.sb();
  uint32_t iblk = sb.data_start + 100;
  // ino 5 claims iblk as plain data; ino 800 uses it as its indirect
  // block holding further (claimable) leaf pointers.
  img.MakeFile(5, 1, {iblk});
  DiskInode hi;
  hi.mode = static_cast<uint16_t>(FileType::kRegular);
  hi.nlink = 1;
  hi.generation = 1;
  hi.indirect = iblk;
  hi.size = kBlockSize;
  img.WriteInode(800, hi);
  BlockData leaves;
  leaves.fill(0);
  uint32_t* ptrs = reinterpret_cast<uint32_t*>(leaves.data());
  ptrs[0] = sb.data_start + 101;
  ptrs[1] = sb.data_start + 102;
  img.image.Write(iblk, leaves, 0);

  FsckReport serial = FsckChecker(&img.image).Check();
  // The two leaves were never claimed: ino 800 lost the indirect claim.
  for (uint32_t threads : {2u, 4u}) {
    FsckOptions opts;
    opts.threads = threads;
    FsckReport parallel = PfsckCheck(&img.image, opts);
    ExpectReportsIdentical(serial, parallel,
                           "indirect-dup threads=" + std::to_string(threads));
  }
}

// --- parallel boot-time recovery -------------------------------------

TEST(PfsckBootTest, ParallelShardReplayMatchesSerialBoot) {
  MachineConfig cfg = ConfigFor(Scheme::kJournaling, 2);
  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(PfsckChurn);
  ASSERT_GT(total_writes, 10u);
  DiskImage crash = harness.CrashImageAtWrite(PfsckChurn, total_writes / 2);

  auto boot_with = [&](uint32_t threads) {
    MachineConfig boot_cfg = cfg;
    boot_cfg.format = false;
    boot_cfg.recovery_threads = threads;
    auto m = std::make_unique<Machine>(boot_cfg);
    m->LoadImage(crash);
    Proc p = m->MakeProc("boot");
    bool done = false;
    auto root = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
      co_await mm->Boot(*pp);
      *flag = true;
    };
    m->engine().Spawn(root(m.get(), &p, &done), "boot");
    m->engine().RunUntil([&] { return done; });
    return m;
  };

  auto serial = boot_with(0);
  auto parallel = boot_with(4);
  EXPECT_EQ(serial->last_replay().txns_replayed, parallel->last_replay().txns_replayed);
  EXPECT_EQ(serial->last_replay().blocks_replayed,
            parallel->last_replay().blocks_replayed);
  EXPECT_EQ(serial->last_replay().torn_tail, parallel->last_replay().torn_tail);
  // The recovered stable storage must be byte-identical: parallel replay
  // must not change what the file systems subsequently read.
  std::vector<uint32_t> blocks = serial->image().WrittenBlocks();
  for (uint32_t blkno : blocks) {
    BlockData a;
    BlockData b;
    serial->image().Read(blkno, &a);
    parallel->image().Read(blkno, &b);
    ASSERT_EQ(memcmp(a.data(), b.data(), a.size()), 0) << "block " << blkno;
  }
}

}  // namespace
}  // namespace mufs
