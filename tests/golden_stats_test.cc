// Golden-stats regression test: the full DumpStatsJson output of a fixed
// zero-fault workload (Conventional and Soft Updates, machine seed 42)
// must match the checked-in JSON byte for byte. This pins the whole
// deterministic counter surface — any unintended behaviour change in the
// driver, cache, policies or stats layer shows up as a golden diff.
//
// To regenerate after an INTENTIONAL change:
//   MUFS_REGEN_GOLDEN=1 ./golden_stats_test && git diff tests/golden/
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/workload/workloads.h"

namespace mufs {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(MUFS_GOLDEN_DIR) + "/" + name;
}

bool RegenMode() {
  const char* v = std::getenv("MUFS_REGEN_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// A reduced 2-user copy workload: big enough to exercise every scheme
// mechanism (allocation, directory growth, syncer flushes, ordering),
// small enough to keep tier 1 fast. `disks` > 1 runs it on a striped
// sharded machine; 1 pins the single-disk path (and must produce stats
// byte-identical to a config that never mentions disks at all).
std::string RunGoldenWorkload(Scheme scheme, uint32_t disks = 1) {
  TreeGenOptions opts;
  opts.file_count = 30;
  opts.total_bytes = 300'000;
  opts.dir_count = 6;
  TreeSpec tree = GenerateTree(opts);

  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.disks = disks;
  Machine m(cfg);
  SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
    FsStatus s = co_await PopulateTree(mm, p, tree, "/src");
    EXPECT_EQ(s, FsStatus::kOk);
  };
  UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
    FsStatus s = co_await CopyTree(mm, p, tree, "/src", "/copy" + std::to_string(u));
    EXPECT_EQ(s, FsStatus::kOk);
  };
  RunMeasurement meas = RunMultiUser(m, 2, setup, body);
  return meas.stats_json;
}

void CheckGolden(Scheme scheme, const std::string& file, uint32_t disks = 1) {
  std::string actual = RunGoldenWorkload(scheme, disks);
  ASSERT_FALSE(actual.empty());
  std::string path = GoldenPath(file);
  if (RegenMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with MUFS_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  // Trailing newline is part of the file, not the JSON.
  if (!expected.empty() && expected.back() == '\n') {
    expected.pop_back();
  }
  EXPECT_EQ(actual, expected)
      << "golden stats drifted for " << SchemeName(scheme)
      << "; if the change is intentional, regenerate with MUFS_REGEN_GOLDEN=1";
}

// Same tree and runner shapes for the Async remove/Andrew/Sdet goldens:
// each returns the full DumpStatsJson of one deterministic run.

std::string RunRemoveGoldenWorkload(Scheme scheme) {
  TreeGenOptions opts;
  opts.file_count = 30;
  opts.total_bytes = 300'000;
  opts.dir_count = 6;
  TreeSpec tree = GenerateTree(opts);

  MachineConfig cfg;
  cfg.scheme = scheme;
  Machine m(cfg);
  SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
    for (int u = 0; u < 2; ++u) {
      FsStatus s = co_await PopulateTree(mm, p, tree, "/tree" + std::to_string(u));
      EXPECT_EQ(s, FsStatus::kOk);
    }
  };
  UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
    FsStatus s = co_await RemoveTree(mm, p, tree, "/tree" + std::to_string(u));
    EXPECT_EQ(s, FsStatus::kOk);
  };
  RunMeasurement meas = RunMultiUser(m, 2, setup, body, /*drop_caches_after_setup=*/true);
  return meas.stats_json;
}

std::string RunAndrewGoldenWorkload(Scheme scheme) {
  TreeGenOptions opts;
  opts.file_count = 30;
  opts.total_bytes = 300'000;
  opts.dir_count = 6;
  TreeSpec tree = GenerateTree(opts);

  MachineConfig cfg;
  cfg.scheme = scheme;
  Machine m(cfg);
  SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
    (void)co_await PopulateTree(mm, p, tree, "/andrew-src");
  };
  UserFn body = [&tree](Machine& mm, Proc& p, int) -> Task<void> {
    (void)co_await AndrewBenchmark(mm, p, tree, "/andrew-src", "/andrew-work");
  };
  RunMeasurement meas = RunMultiUser(m, 1, setup, body);
  return meas.stats_json;
}

std::string RunSdetGoldenWorkload(Scheme scheme) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  Machine m(cfg);
  SetupFn setup = [](Machine&, Proc&) -> Task<void> { co_return; };
  UserFn body = [](Machine& mm, Proc& p, int u) -> Task<void> {
    FsStatus s = co_await SdetScript(mm, p, "/script" + std::to_string(u),
                                     /*seed=*/1000 + static_cast<uint64_t>(u),
                                     /*operations=*/120);
    EXPECT_EQ(s, FsStatus::kOk);
  };
  RunMeasurement meas = RunMultiUser(m, 2, setup, body, /*drop_caches_after_setup=*/false);
  return meas.stats_json;
}

void CheckNamedGolden(const std::string& actual, const std::string& file) {
  ASSERT_FALSE(actual.empty());
  std::string path = GoldenPath(file);
  if (RegenMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with MUFS_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  if (!expected.empty() && expected.back() == '\n') {
    expected.pop_back();
  }
  EXPECT_EQ(actual, expected)
      << "golden stats drifted for " << file
      << "; if the change is intentional, regenerate with MUFS_REGEN_GOLDEN=1";
}

TEST(GoldenStatsTest, ConventionalCopyStatsMatchGolden) {
  CheckGolden(Scheme::kConventional, "conventional_copy_seed42.json");
}

TEST(GoldenStatsTest, SoftUpdatesCopyStatsMatchGolden) {
  CheckGolden(Scheme::kSoftUpdates, "soft_updates_copy_seed42.json");
}

// --- Async-scheme goldens: the full zero-fault async.* stats surface
// (visibility/durability ledger depth, horizon lag, barrier accounting)
// pinned byte-for-byte on the paper's four workload families.

TEST(GoldenStatsTest, AsyncCopyStatsMatchGolden) {
  CheckGolden(Scheme::kAsync, "async_copy_seed42.json");
}

TEST(GoldenStatsTest, AsyncRemoveStatsMatchGolden) {
  CheckNamedGolden(RunRemoveGoldenWorkload(Scheme::kAsync), "async_remove_seed42.json");
}

TEST(GoldenStatsTest, AsyncAndrewStatsMatchGolden) {
  CheckNamedGolden(RunAndrewGoldenWorkload(Scheme::kAsync), "async_andrew_seed42.json");
}

TEST(GoldenStatsTest, AsyncSdetStatsMatchGolden) {
  CheckNamedGolden(RunSdetGoldenWorkload(Scheme::kAsync), "async_sdet_seed42.json");
}

// --disks=1 is required to be the EXACT pre-volume machine: the same
// golden bytes as a config that never mentions the flag.
TEST(GoldenStatsTest, ExplicitSingleDiskMatchesSingleDiskGolden) {
  CheckGolden(Scheme::kConventional, "conventional_copy_seed42.json", /*disks=*/1);
}

// The 4-disk striped/sharded machine gets its own golden: pins the
// volume layer, shard routing, per-disk metric naming and the sharded
// DumpStatsJson surface byte-for-byte.
TEST(GoldenStatsTest, ConventionalCopyFourDiskStatsMatchGolden) {
  CheckGolden(Scheme::kConventional, "conventional_copy_4disk_seed42.json", /*disks=*/4);
}

// --- Workload personality goldens: the zero-fault stats surface of each
// personality, pinned byte-for-byte on one representative scheme each so
// the four of them jointly cover most scheme mechanisms.

using PersonalityFn = Task<FsStatus> (*)(Machine&, Proc&, const std::string&, uint64_t,
                                         int, PersonalityOpMix*);

std::string RunPersonalityGolden(Scheme scheme, PersonalityFn fn) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto root = [](Machine* m, Proc* p, PersonalityFn fn, bool* done) -> Task<void> {
    co_await m->Boot(*p);
    FsStatus s = co_await fn(*m, *p, "/w", 42, 120, nullptr);
    EXPECT_EQ(s, FsStatus::kOk);
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(root(&m, &p, fn, &done), "w");
  m.engine().RunUntil([&] { return done; });
  EXPECT_TRUE(done);
  return m.DumpStatsJson();
}

void CheckPersonalityGolden(Scheme scheme, PersonalityFn fn, const std::string& file) {
  std::string actual = RunPersonalityGolden(scheme, fn);
  ASSERT_FALSE(actual.empty());
  std::string path = GoldenPath(file);
  if (RegenMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with MUFS_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  if (!expected.empty() && expected.back() == '\n') {
    expected.pop_back();
  }
  EXPECT_EQ(actual, expected)
      << "golden stats drifted for " << file
      << "; if the change is intentional, regenerate with MUFS_REGEN_GOLDEN=1";
}

TEST(GoldenStatsTest, MailServerStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kSoftUpdates, &MailServerWorkload,
                         "mail_soft_updates_seed42.json");
}

TEST(GoldenStatsTest, BuildFarmStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kConventional, &BuildFarmWorkload,
                         "build_farm_conventional_seed42.json");
}

TEST(GoldenStatsTest, WebAssetSwapStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kSchedulerFlag, &WebAssetSwapWorkload,
                         "web_asset_scheduler_flag_seed42.json");
}

TEST(GoldenStatsTest, CacheCleanupStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kJournaling, &CacheCleanupWorkload,
                         "cache_cleanup_journaling_seed42.json");
}

// All four personalities additionally pinned under Async: the ledger's
// stats must stay deterministic across very different op mixes.

TEST(GoldenStatsTest, MailServerAsyncStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kAsync, &MailServerWorkload, "mail_async_seed42.json");
}

TEST(GoldenStatsTest, BuildFarmAsyncStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kAsync, &BuildFarmWorkload, "build_farm_async_seed42.json");
}

TEST(GoldenStatsTest, WebAssetSwapAsyncStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kAsync, &WebAssetSwapWorkload,
                         "web_asset_async_seed42.json");
}

TEST(GoldenStatsTest, CacheCleanupAsyncStatsMatchGolden) {
  CheckPersonalityGolden(Scheme::kAsync, &CacheCleanupWorkload,
                         "cache_cleanup_async_seed42.json");
}

}  // namespace
}  // namespace mufs
