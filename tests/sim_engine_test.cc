// Unit tests for the discrete-event engine and coroutine task machinery.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace mufs {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.Now(), 0);
  EXPECT_TRUE(e.Idle());
}

TEST(EngineTest, ScheduleAdvancesTime) {
  Engine e;
  SimTime seen = -1;
  e.Schedule(Msec(5), [&] { seen = e.Now(); });
  e.Run();
  EXPECT_EQ(seen, Msec(5));
  EXPECT_EQ(e.Now(), Msec(5));
}

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.Schedule(Msec(3), [&] { order.push_back(3); });
  e.Schedule(Msec(1), [&] { order.push_back(1); });
  e.Schedule(Msec(2), [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.Schedule(Msec(1), [&] { order.push_back(1); });
  e.Schedule(Msec(1), [&] { order.push_back(2); });
  e.Schedule(Msec(1), [&] { order.push_back(3); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  uint64_t id = e.Schedule(Msec(1), [&] { ran = true; });
  e.Cancel(id);
  e.Run();
  EXPECT_FALSE(ran);
}

TEST(EngineTest, RunUntilBoundStopsClock) {
  Engine e;
  int count = 0;
  e.Schedule(Msec(1), [&] { ++count; });
  e.Schedule(Msec(10), [&] { ++count; });
  e.Run(Msec(5));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(e.Now(), Msec(5));
  e.Run();
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, NestedScheduleFromEvent) {
  Engine e;
  SimTime inner = -1;
  e.Schedule(Msec(1), [&] { e.Schedule(Msec(2), [&] { inner = e.Now(); }); });
  e.Run();
  EXPECT_EQ(inner, Msec(3));
}

TEST(ProcessTest, SpawnRunsCoroutine) {
  Engine e;
  bool ran = false;
  auto body = [&]() -> Task<void> {
    ran = true;
    co_return;
  };
  e.Spawn(body(), "t");
  e.Run();
  EXPECT_TRUE(ran);
}

TEST(ProcessTest, SleepAdvancesSimTime) {
  Engine e;
  SimTime woke = -1;
  auto body = [&]() -> Task<void> {
    co_await e.Sleep(Sec(2));
    woke = e.Now();
  };
  e.Spawn(body(), "sleeper");
  e.Run();
  EXPECT_EQ(woke, Sec(2));
}

TEST(ProcessTest, NestedTaskReturnValues) {
  Engine e;
  int got = 0;
  auto inner = [&](int x) -> Task<int> {
    co_await e.Sleep(Msec(1));
    co_return x * 2;
  };
  auto outer = [&]() -> Task<void> {
    int a = co_await inner(21);
    got = a;
  };
  e.Spawn(outer(), "outer");
  e.Run();
  EXPECT_EQ(got, 42);
}

TEST(ProcessTest, DeepNestingDoesNotOverflow) {
  Engine e;
  // 50k-deep synchronous await chain: symmetric transfer must not grow the
  // native stack.
  std::function<Task<int>(int)> rec = [&](int n) -> Task<int> {
    if (n == 0) {
      co_return 0;
    }
    int sub = co_await rec(n - 1);
    co_return sub + 1;
  };
  int got = -1;
  auto outer = [&]() -> Task<void> { got = co_await rec(50000); };
  e.Spawn(outer(), "deep");
  e.Run();
  EXPECT_EQ(got, 50000);
}

TEST(ProcessTest, JoinWaitsForChild) {
  Engine e;
  std::vector<std::string> log;
  auto child = [&]() -> Task<void> {
    co_await e.Sleep(Msec(10));
    log.push_back("child-done");
  };
  auto parent = [&]() -> Task<void> {
    ProcessRef c = e.Spawn(child(), "child");
    log.push_back("spawned");
    co_await c;
    log.push_back("joined");
  };
  e.Spawn(parent(), "parent");
  e.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "spawned");
  EXPECT_EQ(log[1], "child-done");
  EXPECT_EQ(log[2], "joined");
}

TEST(ProcessTest, JoinOnFinishedProcessIsImmediate) {
  Engine e;
  auto child = [&]() -> Task<void> { co_return; };
  ProcessRef c = e.Spawn(child(), "child");
  e.Run();
  EXPECT_TRUE(c.Done());
  bool resumed = false;
  auto parent = [&]() -> Task<void> {
    co_await c;
    resumed = true;
  };
  e.Spawn(parent(), "parent");
  e.Run();
  EXPECT_TRUE(resumed);
}

TEST(ProcessTest, ManyProcessesInterleave) {
  Engine e;
  std::vector<int> completions;
  // Coroutine lambdas must not capture: the lambda object dies before the
  // coroutine body runs. Pass state as parameters instead.
  auto body = [](Engine* eng, std::vector<int>* out, int i) -> Task<void> {
    co_await eng->Sleep(Msec(10 - i));
    out->push_back(i);
  };
  for (int i = 0; i < 8; ++i) {
    e.Spawn(body(&e, &completions, i), "p" + std::to_string(i));
  }
  e.Run();
  ASSERT_EQ(completions.size(), 8u);
  // Earliest wake (largest i) completes first.
  EXPECT_EQ(completions.front(), 7);
  EXPECT_EQ(completions.back(), 0);
}

TEST(ProcessTest, ExceptionPropagatesThroughAwait) {
  Engine e;
  auto thrower = [&]() -> Task<int> {
    co_await e.Sleep(Msec(1));
    throw std::runtime_error("boom");
  };
  bool caught = false;
  auto outer = [&]() -> Task<void> {
    try {
      (void)co_await thrower();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  };
  e.Spawn(outer(), "x");
  e.Run();
  EXPECT_TRUE(caught);
}

TEST(EngineTest, RunUntilPredicate) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    e.Schedule(Msec(i), [&] { ++count; });
  }
  e.RunUntil([&] { return count >= 4; });
  EXPECT_EQ(count, 4);
  EXPECT_EQ(e.Now(), Msec(4));
}

}  // namespace
}  // namespace mufs
