// Driver error-path tests: scripted fault injection, bounded exponential
// backoff, stall timeouts, bad-sector remapping into the spare pool,
// silent-damage (torn / misdirected write) media semantics, and
// preservation of the scheduling disciplines across re-issued requests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tests/fault_test_util.h"

namespace mufs {
namespace {

TEST(DriverRetryTest, TransientErrorRetriesThenSucceeds) {
  FaultRig rig;
  rig.faults.Script({FaultKind::kTransient, FaultKind::kNone});
  uint64_t id = rig.Write(30, 0xab);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);
  EXPECT_EQ(rig.Counter("driver.retries"), 1u);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 0u);
  BlockData d;
  rig.image.Read(30, &d);
  EXPECT_EQ(d[0], 0xab);
  ASSERT_EQ(rig.driver->Traces().size(), 1u);
  EXPECT_EQ(rig.driver->Traces()[0].retries, 1u);
  EXPECT_EQ(rig.driver->Traces()[0].status, IoStatus::kOk);
}

TEST(DriverRetryTest, ExponentialBackoffIsBoundedByCap) {
  DriverConfig cfg;
  cfg.retry_backoff = Msec(20);
  cfg.retry_backoff_cap = Msec(40);
  FaultRig rig({}, cfg);
  // Six failed attempts: backoffs 20, 40, 40, 40, 40, 40 ms (capped), then
  // the seventh attempt succeeds.
  rig.faults.Script({FaultKind::kTransient, FaultKind::kTransient, FaultKind::kTransient,
                     FaultKind::kTransient, FaultKind::kTransient, FaultKind::kTransient,
                     FaultKind::kNone});
  uint64_t id = rig.Write(40, 0x11);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);
  EXPECT_EQ(rig.Counter("driver.retries"), 6u);
  // At least the capped backoff total (220 ms); seven access times add at
  // most ~100 ms more. The uncapped series would be 1260 ms of backoff.
  EXPECT_GE(w.elapsed, Msec(220));
  EXPECT_LT(w.elapsed, Msec(320));
}

TEST(DriverRetryTest, StallTimesOutAndReissues) {
  FaultRig rig;
  rig.faults.Script({FaultKind::kStall, FaultKind::kNone});
  uint64_t id = rig.Write(50, 0x22);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);
  EXPECT_EQ(rig.Counter("driver.timeouts"), 1u);
  EXPECT_EQ(rig.Counter("driver.retries"), 1u);
  // The full timeout elapsed before the re-issue.
  EXPECT_GE(w.elapsed, rig.driver->config().request_timeout);
  BlockData d;
  rig.image.Read(50, &d);
  EXPECT_EQ(d[0], 0x22);
}

TEST(DriverRetryTest, BadSectorIsRemappedIntoSparePool) {
  FaultRig rig;
  rig.faults.MarkBadSector(60);
  uint64_t id = rig.Write(60, 0x33);
  WaitResult w = WaitOn(&rig, id);
  // Two bad-sector failures, then the remap makes the third attempt work.
  EXPECT_EQ(w.status, IoStatus::kOk);
  EXPECT_EQ(rig.Counter("driver.remaps"), 1u);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 0u);
  EXPECT_EQ(rig.driver->SparesUsed(), 1u);
  EXPECT_FALSE(rig.faults.IsBad(60));
  BlockData d;
  rig.image.Read(60, &d);
  EXPECT_EQ(d[0], 0x33);
}

TEST(DriverRetryTest, SparePoolExhaustionFailsTheRequest) {
  DriverConfig cfg;
  cfg.spare_blocks = 0;  // Nothing to remap into.
  cfg.max_retries = 3;
  FaultRig rig({}, cfg);
  BlockData before;
  before.fill(0x44);
  rig.image.Write(70, before, 0);
  rig.faults.MarkBadSector(70);
  uint64_t id = rig.Write(70, 0x55);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kFailed);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 1u);
  EXPECT_EQ(rig.Counter("driver.remaps"), 0u);
  EXPECT_TRUE(rig.faults.IsBad(70));
  // A failed write never reaches the medium.
  BlockData after;
  rig.image.Read(70, &after);
  EXPECT_EQ(after[0], 0x44);
}

TEST(DriverRetryTest, FailedReadLeavesDestinationUntouched) {
  DriverConfig cfg;
  cfg.max_retries = 2;
  FaultRig rig({}, cfg);
  BlockData src;
  src.fill(0x77);
  rig.image.Write(80, src, 0);
  rig.faults.Script({FaultKind::kTransient, FaultKind::kTransient, FaultKind::kTransient});
  BlockData out;
  out.fill(0xee);
  uint64_t id = rig.driver->IssueRead(80, &out);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kFailed);
  EXPECT_EQ(out[0], 0xee);
}

TEST(DriverRetryTest, IsrReceivesFailureStatus) {
  DriverConfig cfg;
  cfg.max_retries = 0;
  FaultRig rig({}, cfg);
  rig.faults.Script({FaultKind::kTransient});
  IoStatus seen = IoStatus::kOk;
  rig.driver->IssueWrite(90, {MakeBlock(1)}, {}, [&](IoStatus s) { seen = s; });
  rig.engine.Run();
  EXPECT_EQ(seen, IoStatus::kFailed);
}

TEST(DriverRetryTest, CLookOrderSurvivesARetriedRequest) {
  FaultRig rig;
  // The first serviced request (lowest block from the scan origin) fails
  // once; C-LOOK must still service ascending with no reordering.
  rig.faults.Script({FaultKind::kTransient});
  rig.Write(500, 1);
  rig.Write(300, 2);
  rig.Write(700, 3);
  rig.Write(100, 4);
  rig.engine.Run();
  std::vector<uint32_t> order;
  uint32_t total_retries = 0;
  for (const auto& t : rig.driver->Traces()) {
    order.push_back(t.blkno);
    total_retries += t.retries;
    EXPECT_EQ(t.status, IoStatus::kOk);
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{100, 300, 500, 700}));
  EXPECT_EQ(total_retries, 1u);
}

TEST(DriverRetryTest, ConcatenatedRequestRetriesAsAWhole) {
  FaultRig rig;
  rig.faults.Script({FaultKind::kTransient, FaultKind::kNone});
  uint64_t a = rig.Write(200, 0x01);
  uint64_t b = rig.Write(201, 0x02);  // Merged into the previous request.
  rig.engine.Run();
  ASSERT_EQ(rig.driver->Traces().size(), 1u);
  EXPECT_EQ(rig.driver->Traces()[0].count, 2u);
  EXPECT_EQ(rig.driver->Traces()[0].retries, 1u);
  EXPECT_EQ(rig.driver->CompletionStatus(a), IoStatus::kOk);
  EXPECT_EQ(rig.driver->CompletionStatus(b), IoStatus::kOk);
  BlockData d;
  rig.image.Read(200, &d);
  EXPECT_EQ(d[0], 0x01);
  rig.image.Read(201, &d);
  EXPECT_EQ(d[0], 0x02);
}

// --- Error paths at queue depth > 1: a fault on one queued command must
// neither drop nor reorder its queue siblings, and the retry/remap
// machinery must behave exactly as at depth 1.

TEST(QueuedRetryTest, TransientErrorKeepsQueueSiblings) {
  DriverConfig cfg;
  cfg.queue_depth = 4;
  FaultRig rig({}, cfg);
  rig.faults.Script({FaultKind::kTransient, FaultKind::kNone});
  uint64_t a = rig.Write(500, 1);
  uint64_t b = rig.Write(300, 2);
  uint64_t c = rig.Write(700, 3);
  uint64_t d = rig.Write(100, 4);
  rig.engine.Run();
  EXPECT_EQ(rig.Counter("driver.retries"), 1u);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 0u);
  ASSERT_EQ(rig.driver->Traces().size(), 4u);
  for (uint64_t id : {a, b, c, d}) {
    EXPECT_EQ(rig.driver->CompletionStatus(id), IoStatus::kOk);
  }
  BlockData blk;
  rig.image.Read(500, &blk);
  EXPECT_EQ(blk[0], 1);
  rig.image.Read(100, &blk);
  EXPECT_EQ(blk[0], 4);
}

TEST(QueuedRetryTest, BadSectorRemapKeepsQueueSiblings) {
  DriverConfig cfg;
  cfg.queue_depth = 4;
  FaultRig rig({}, cfg);
  rig.faults.MarkBadSector(60);
  uint64_t bad = rig.Write(60, 0x33);
  uint64_t s1 = rig.Write(10, 0x01);
  uint64_t s2 = rig.Write(20, 0x02);
  rig.engine.Run();
  EXPECT_EQ(rig.Counter("driver.remaps"), 1u);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 0u);
  for (uint64_t id : {bad, s1, s2}) {
    EXPECT_EQ(rig.driver->CompletionStatus(id), IoStatus::kOk);
  }
  ASSERT_EQ(rig.driver->Traces().size(), 3u);
  BlockData blk;
  rig.image.Read(60, &blk);
  EXPECT_EQ(blk[0], 0x33);
}

TEST(QueuedRetryTest, StallTimeoutKeepsQueueSiblings) {
  DriverConfig cfg;
  cfg.queue_depth = 4;
  FaultRig rig({}, cfg);
  rig.faults.Script({FaultKind::kStall, FaultKind::kNone});
  uint64_t a = rig.Write(110, 0x0a);
  uint64_t b = rig.Write(220, 0x0b);
  rig.engine.Run();
  EXPECT_EQ(rig.Counter("driver.timeouts"), 1u);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 0u);
  EXPECT_EQ(rig.driver->CompletionStatus(a), IoStatus::kOk);
  EXPECT_EQ(rig.driver->CompletionStatus(b), IoStatus::kOk);
}

TEST(QueuedRetryTest, OrderedTagsHoldAcrossARetry) {
  DriverConfig cfg;
  cfg.queue_depth = 4;
  cfg.mode = OrderingMode::kFlag;
  cfg.semantics = FlagSemantics::kPart;
  FaultRig rig({}, cfg);
  // First serviced attempt fails: the retried command must neither let a
  // sibling pass its ordered barrier nor lose its own slot.
  rig.faults.Script({FaultKind::kTransient, FaultKind::kNone});
  rig.Write(500, 1);                  // Simple tag.
  rig.Write(300, 2, OrderingTag{.flag = true, .deps = {}});  // Ordered: a barrier.
  rig.Write(100, 3);                  // Simple, but behind the barrier.
  rig.engine.Run();
  std::vector<uint32_t> order;
  uint32_t retries = 0;
  for (const auto& t : rig.driver->Traces()) {
    order.push_back(t.blkno);
    retries += t.retries;
    EXPECT_EQ(t.status, IoStatus::kOk);
  }
  // RPO would prefer 100 first; the ordered tag at 300 pins acceptance
  // order 500, 300, 100 even though the retry happens mid-queue.
  EXPECT_EQ(order, (std::vector<uint32_t>{500, 300, 100}));
  EXPECT_EQ(retries, 1u);
}

TEST(QueuedRetryTest, ExhaustedRetriesFailOnlyTheFaultedCommand) {
  DriverConfig cfg;
  cfg.queue_depth = 4;
  cfg.max_retries = 1;
  cfg.spare_blocks = 0;
  FaultRig rig({}, cfg);
  rig.faults.MarkBadSector(42);
  uint64_t bad = rig.Write(42, 0xbd);
  uint64_t ok1 = rig.Write(900, 0x01);
  uint64_t ok2 = rig.Write(901, 0x02);  // Merges with ok1.
  rig.engine.Run();
  EXPECT_EQ(rig.driver->CompletionStatus(bad), IoStatus::kFailed);
  EXPECT_EQ(rig.driver->CompletionStatus(ok1), IoStatus::kOk);
  EXPECT_EQ(rig.driver->CompletionStatus(ok2), IoStatus::kOk);
  EXPECT_EQ(rig.Counter("driver.gave_up"), 1u);
  EXPECT_EQ(rig.driver->PendingCount(), 0u);
  EXPECT_EQ(rig.driver->DeviceQueueSize(), 0u);
}

// --- Silent damage: the device reports success but the media transfer
// is torn or misdirected. The driver must not retry (it cannot see the
// lie), the request must complete kOk, and the image must show exactly
// the modelled damage - which the injector's ledger classifies.

TEST(SilentDamageTest, TornWritePersistsOnlyTheSectorPrefix) {
  FaultRig rig;
  BlockData old;
  old.fill(0xaa);
  rig.image.Write(30, old, 0);
  rig.faults.Script({FaultKind::kTornWrite});
  uint64_t id = rig.Write(30, 0x5c);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);  // The device lied: success.
  EXPECT_EQ(rig.Counter("driver.retries"), 0u);
  BlockData d;
  rig.image.Read(30, &d);
  EXPECT_EQ(d[0], 0x5c);
  EXPECT_EQ(d[kTornPersistBytes - 1], 0x5c);
  EXPECT_EQ(d[kTornPersistBytes], 0xaa);  // The tail kept the old content.
  EXPECT_EQ(d[kBlockSize - 1], 0xaa);
  EXPECT_EQ(rig.image.TornWriteCount(), 1u);
  ASSERT_EQ(rig.faults.Damage().size(), 1u);
  EXPECT_EQ(rig.faults.Damage()[0].kind, FaultKind::kTornWrite);
  EXPECT_EQ(rig.faults.Damage()[0].blkno, 30u);
}

TEST(SilentDamageTest, TornMultiBlockTransferDropsTheTail) {
  FaultRig rig;
  rig.faults.Script({FaultKind::kTornWrite});
  uint64_t id = rig.driver->IssueWrite(
      200, {MakeBlock(1), MakeBlock(2), MakeBlock(3), MakeBlock(4)});
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);
  // Blocks [0, count/2) land whole, block count/2 lands torn, the rest of
  // the transfer never reaches the medium.
  BlockData d;
  rig.image.Read(200, &d);
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[kBlockSize - 1], 1);
  rig.image.Read(201, &d);
  EXPECT_EQ(d[0], 2);
  EXPECT_EQ(d[kBlockSize - 1], 2);
  rig.image.Read(202, &d);
  EXPECT_EQ(d[0], 3);
  EXPECT_EQ(d[kBlockSize - 1], 0);  // Torn block: tail stayed (zero) stale.
  EXPECT_FALSE(rig.image.EverWritten(203));
  EXPECT_EQ(rig.image.TornWriteCount(), 1u);
}

TEST(SilentDamageTest, MisdirectedWriteLandsOnTheVictimRange) {
  FaultRig rig;
  BlockData old;
  old.fill(0xbb);
  rig.image.Write(300, old, 0);
  rig.image.Write(301, old, 0);
  rig.faults.Script({FaultKind::kMisdirected});
  uint64_t id = rig.driver->IssueWrite(300, {MakeBlock(0x0c), MakeBlock(0x0d)});
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);
  EXPECT_EQ(rig.Counter("driver.retries"), 0u);
  // The intended range kept its stale content; the slipped range (one
  // transfer length forward) took the payload.
  BlockData d;
  rig.image.Read(300, &d);
  EXPECT_EQ(d[0], 0xbb);
  rig.image.Read(301, &d);
  EXPECT_EQ(d[0], 0xbb);
  rig.image.Read(302, &d);
  EXPECT_EQ(d[0], 0x0c);
  rig.image.Read(303, &d);
  EXPECT_EQ(d[0], 0x0d);
  ASSERT_EQ(rig.faults.Damage().size(), 1u);
  EXPECT_EQ(rig.faults.Damage()[0].kind, FaultKind::kMisdirected);
  EXPECT_EQ(rig.faults.Damage()[0].victim, 302u);
}

TEST(SilentDamageTest, MisdirectVictimNeverHitsTheSuperblock) {
  EXPECT_EQ(FaultInjector::MisdirectVictim(100, 1, 1000), 101u);  // Forward slip.
  EXPECT_EQ(FaultInjector::MisdirectVictim(999, 1, 1000), 998u);  // Backward at the edge.
  EXPECT_EQ(FaultInjector::MisdirectVictim(50, 4, 0), 54u);       // Unknown size: forward.
  EXPECT_EQ(FaultInjector::MisdirectVictim(0, 1, 1), 0u);         // Degenerate: stays put.
}

TEST(SilentDamageTest, ReadsAreImmuneToSilentDamageKinds) {
  FaultRig rig;
  BlockData src;
  src.fill(0x77);
  rig.image.Write(80, src, 0);
  rig.faults.Script({FaultKind::kTornWrite});
  BlockData out;
  uint64_t id = rig.driver->IssueRead(80, &out);
  WaitResult w = WaitOn(&rig, id);
  EXPECT_EQ(w.status, IoStatus::kOk);
  EXPECT_EQ(out[0], 0x77);
  EXPECT_TRUE(rig.faults.Damage().empty());  // Downgraded before recording.
}

TEST(QueuedRetryTest, SilentDamageCompletesQueueSiblingsWithoutRetry) {
  DriverConfig cfg;
  cfg.queue_depth = 4;
  FaultRig rig({}, cfg);
  rig.faults.Script({FaultKind::kTornWrite});
  uint64_t a = rig.Write(500, 1);
  uint64_t b = rig.Write(300, 2);
  uint64_t c = rig.Write(700, 3);
  rig.engine.Run();
  EXPECT_EQ(rig.Counter("driver.retries"), 0u);
  for (uint64_t id : {a, b, c}) {
    EXPECT_EQ(rig.driver->CompletionStatus(id), IoStatus::kOk);
  }
  EXPECT_EQ(rig.image.TornWriteCount(), 1u);
  ASSERT_EQ(rig.faults.Damage().size(), 1u);
}

TEST(DriverRetryTest, SameSeedProducesIdenticalFaultSchedules) {
  auto run = [](std::vector<RequestTrace>* traces, uint64_t* retries) {
    FaultConfig fc = FaultConfig::Uniform(0.2, 99);
    FaultRig rig(fc);
    for (uint32_t i = 0; i < 40; ++i) {
      rig.Write(100 + i * 7, static_cast<uint8_t>(i));
    }
    rig.engine.Run();
    *traces = rig.driver->Traces();
    *retries = rig.Counter("driver.retries");
  };
  std::vector<RequestTrace> t1, t2;
  uint64_t r1 = 0, r2 = 0;
  run(&t1, &r1);
  run(&t2, &r2);
  EXPECT_GT(r1, 0u);  // At 20% the schedule is certainly non-trivial.
  EXPECT_EQ(r1, r2);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].blkno, t2[i].blkno);
    EXPECT_EQ(t1[i].retries, t2[i].retries);
    EXPECT_EQ(t1[i].status, t2[i].status);
    EXPECT_EQ(t1[i].complete_time, t2[i].complete_time);
  }
}

}  // namespace
}  // namespace mufs
