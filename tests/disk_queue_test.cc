// Device command-queue tests: DeviceQueue tag/overlap semantics in
// isolation, plus trace-replay property tests over whole-machine runs at
// queue depth {4, 16}:
//
//   (a) an ORDERED tag is never serviced while any earlier-accepted
//       command is still pending, and nothing is serviced past a pending
//       ordered barrier;
//   (b) SIMPLE-tag reordering actually happens (the property test is not
//       vacuous);
//   (c) depth 1 (the default) exposes none of the queueing surface - no
//       accept events, no queueing metrics - so the pre-queueing golden
//       sidecars (golden_stats_test) keep pinning it byte-for-byte.
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/machine.h"
#include "src/disk/device_queue.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

// ---------------------------------------------------------------------
// DeviceQueue unit tests
// ---------------------------------------------------------------------

TEST(DeviceQueueTest, AcceptAssignsSequencesAndTracksCapacity) {
  DeviceQueue q(2);
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.Full());
  uint64_t a = q.Accept(TagKind::kSimple, true, 10, 1, nullptr);
  uint64_t b = q.Accept(TagKind::kSimple, true, 20, 1, nullptr);
  EXPECT_LT(a, b);
  EXPECT_TRUE(q.Full());
  EXPECT_EQ(q.OldestSeq(), a);
  q.Remove(a);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.OldestSeq(), b);
}

TEST(DeviceQueueTest, OrderedTagIsABidirectionalBarrier) {
  DiskGeometry geom;
  DiskModel model(geom);
  DeviceQueue q(8);
  uint64_t a = q.Accept(TagKind::kSimple, true, 5000, 1, nullptr);
  uint64_t b = q.Accept(TagKind::kOrdered, true, 1, 1, nullptr);
  uint64_t c = q.Accept(TagKind::kSimple, true, 2, 1, nullptr);
  (void)c;
  // b waits for a; c waits for b. Only a is eligible, whatever it costs.
  const DeviceCommand* pick = q.PickNext(model, 0);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->seq, a);
  q.Remove(a);
  // Now the barrier itself runs, still ahead of the cheap simple command.
  pick = q.PickNext(model, 0);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->seq, b);
}

TEST(DeviceQueueTest, OverlappingWritesKeepAcceptanceOrder) {
  DiskGeometry geom;
  DiskModel model(geom);
  DeviceQueue q(8);
  uint64_t a = q.Accept(TagKind::kSimple, true, 9000, 4, nullptr);
  uint64_t b = q.Accept(TagKind::kSimple, true, 9002, 1, nullptr);  // Overlaps a.
  const DeviceCommand* pick = q.PickNext(model, 0);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->seq, a) << "an overlapping later write must not pass the earlier one";
  q.Remove(a);
  pick = q.PickNext(model, 0);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->seq, b);
}

TEST(DeviceQueueTest, PicksByPositioningCostAmongSimpleTags) {
  DiskGeometry geom;
  DiskModel model(geom);  // Head starts at cylinder 0.
  DeviceQueue q(8);
  uint64_t far = q.Accept(TagKind::kSimple, true, geom.total_blocks - 10, 1, nullptr);
  uint64_t near = q.Accept(TagKind::kSimple, true, 1, 1, nullptr);
  (void)far;
  const DeviceCommand* pick = q.PickNext(model, 0);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->seq, near) << "RPO must prefer the request with the cheaper positioning";
}

TEST(DeviceQueueTest, OldestCommandIsAlwaysEligible) {
  DiskGeometry geom;
  DiskModel model(geom);
  DeviceQueue q(8);
  // Worst case: every command ordered. The queue must still drain.
  std::vector<uint64_t> seqs;
  for (int i = 0; i < 8; ++i) {
    seqs.push_back(q.Accept(TagKind::kOrdered, true, 100 * i, 1, nullptr));
  }
  for (uint64_t expect : seqs) {
    const DeviceCommand* pick = q.PickNext(model, 0);
    ASSERT_NE(pick, nullptr);
    EXPECT_EQ(pick->seq, expect);
    q.Remove(pick->seq);
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PickNext(model, 0), nullptr);
}

// ---------------------------------------------------------------------
// Trace replay over whole-machine runs
// ---------------------------------------------------------------------

// Minimal JSONL field access for the deterministic trace schema.
bool IsEvent(const std::string& line, const char* name) {
  return line.find(std::string("\"event\":\"") + name + "\"") != std::string::npos;
}

uint64_t U64Field(const std::string& line, const char* key) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

std::string StrField(const std::string& line, const char* key) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  size_t start = pos + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

struct TracedRun {
  std::vector<std::string> lines;
  uint64_t tag_simple = 0;
  uint64_t tag_ordered = 0;
  uint64_t rpo_picks = 0;
  std::string stats_json;
};

// File churn with enough creates/removes to exercise every ordering
// point, traced, at the given queue depth.
TracedRun RunTraced(Scheme scheme, uint32_t queue_depth) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.queue_depth = queue_depth;
  cfg.collect_stats_trace = true;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    (void)co_await mm->fs().Mkdir(*pp, "/d");
    (void)co_await CreateFiles(*mm, *pp, "/d", 40, 2 * kBlockSize);
    (void)co_await RemoveFiles(*mm, *pp, "/d", 30);
    (void)co_await CreateFiles(*mm, *pp, "/d", 20, kBlockSize);
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(body(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  TracedRun run;
  run.lines = m.stats().trace_lines();
  // Dump before touching the queueing counters: reading one registers it
  // (create-on-first-use), which would pollute the depth-1 surface check.
  run.stats_json = m.DumpStatsJson();
  run.tag_simple = m.stats().counter("disk.tag_simple").value();
  run.tag_ordered = m.stats().counter("disk.tag_ordered").value();
  run.rpo_picks = m.stats().counter("disk.rpo_picks").value();
  return run;
}

struct ReplayResult {
  uint64_t accepts = 0;
  uint64_t services = 0;
  uint64_t simple_reorders = 0;  // Services that passed an earlier simple command.
};

// Replays disk.accept / disk.service / disk.complete and asserts the tag
// ordering invariants at every service event.
ReplayResult ReplayTrace(const std::vector<std::string>& lines) {
  struct Pending {
    uint64_t seq;
    bool ordered;
  };
  std::map<uint64_t, Pending> in_device;  // id -> pending command.
  ReplayResult res;
  for (const std::string& line : lines) {
    if (IsEvent(line, "disk.accept")) {
      uint64_t id = U64Field(line, "id");
      Pending pe;
      pe.seq = U64Field(line, "seq");
      pe.ordered = StrField(line, "tag") == "ordered";
      in_device[id] = pe;
      ++res.accepts;
    } else if (IsEvent(line, "disk.service")) {
      uint64_t id = U64Field(line, "id");
      auto me = in_device.find(id);
      if (me == in_device.end()) {
        continue;  // Depth-1 traces have no accept events.
      }
      ++res.services;
      bool passed_simple = false;
      for (const auto& [oid, other] : in_device) {
        if (oid == id || other.seq >= me->second.seq) {
          continue;
        }
        // `other` was accepted earlier and has not completed.
        EXPECT_FALSE(me->second.ordered)
            << "ordered command id=" << id << " serviced before earlier-accepted id=" << oid;
        EXPECT_FALSE(other.ordered)
            << "command id=" << id << " serviced past pending ordered barrier id=" << oid;
        passed_simple = true;
      }
      if (passed_simple) {
        ++res.simple_reorders;
      }
    } else if (IsEvent(line, "disk.complete")) {
      in_device.erase(U64Field(line, "id"));
    }
  }
  return res;
}

class QueueReplayTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(QueueReplayTest, OrderedTagsAreBarriersInTheServiceOrder) {
  TracedRun run = RunTraced(Scheme::kSchedulerFlag, GetParam());
  ASSERT_GT(run.tag_ordered, 0u) << "flag scheme must issue ordered tags";
  ASSERT_GT(run.tag_simple, 0u) << "reads and data writes must stay simple";
  ReplayResult res = ReplayTrace(run.lines);
  EXPECT_EQ(res.accepts, run.tag_simple + run.tag_ordered);
  EXPECT_GT(res.services, 0u);
}

TEST_P(QueueReplayTest, SimpleTagReorderingActuallyHappens) {
  // No Order issues only simple tags: the device is free to pick by
  // position, so at depth > 1 some command must pass an earlier one -
  // otherwise the barrier test above is vacuous.
  TracedRun run = RunTraced(Scheme::kNoOrder, GetParam());
  EXPECT_EQ(run.tag_ordered, 0u);
  ReplayResult res = ReplayTrace(run.lines);
  EXPECT_GT(res.simple_reorders, 0u) << "no simple-tag command was ever reordered";
  EXPECT_GT(run.rpo_picks, 0u) << "the device never picked anything but the oldest command";
}

TEST_P(QueueReplayTest, ChainsDelegationHoldsUnderReplay) {
  TracedRun run = RunTraced(Scheme::kSchedulerChains, GetParam());
  ASSERT_GT(run.tag_ordered, 0u) << "chains scheme must issue ordered tags";
  ReplayResult res = ReplayTrace(run.lines);
  EXPECT_GT(res.services, 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, QueueReplayTest, ::testing::Values(4u, 16u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "Depth" + std::to_string(info.param);
                         });

TEST(QueueDepthOneTest, ExposesNoQueueingSurface) {
  // Depth 1 must look exactly like the pre-queueing driver: no accept
  // events in the trace and no queueing metrics in the dump, so the
  // golden sidecars (golden_stats_test) pin it byte-for-byte.
  TracedRun run = RunTraced(Scheme::kSchedulerFlag, 1);
  for (const std::string& line : run.lines) {
    EXPECT_FALSE(IsEvent(line, "disk.accept")) << line;
  }
  EXPECT_EQ(run.stats_json.find("disk.tag_simple"), std::string::npos);
  EXPECT_EQ(run.stats_json.find("disk.tag_ordered"), std::string::npos);
  EXPECT_EQ(run.stats_json.find("disk.rpo_picks"), std::string::npos);
  EXPECT_EQ(run.stats_json.find("disk.device_queue"), std::string::npos);
}

TEST(QueueDepthOneTest, DepthOneRunsAreByteIdenticalAcrossRepeats) {
  TracedRun a = RunTraced(Scheme::kSchedulerFlag, 1);
  TracedRun b = RunTraced(Scheme::kSchedulerFlag, 1);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.lines, b.lines);
}

TEST(QueueDeterminismTest, QueueedRunsAreByteIdenticalAcrossRepeats) {
  TracedRun a = RunTraced(Scheme::kSchedulerFlag, 16);
  TracedRun b = RunTraced(Scheme::kSchedulerFlag, 16);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.lines, b.lines);
}

}  // namespace
}  // namespace mufs
