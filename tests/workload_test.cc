// Unit tests for the synthetic tree generator and the multi-user
// workload runner / measurement plumbing.
#include <gtest/gtest.h>

#include <set>

#include "src/fsck/fsck.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

TEST(TreeGenTest, MatchesRequestedAggregates) {
  TreeGenOptions opts;
  TreeSpec tree = GenerateTree(opts);
  EXPECT_EQ(tree.files.size(), opts.file_count);
  EXPECT_EQ(tree.TotalBytes(), opts.total_bytes);
  EXPECT_EQ(tree.directories.size(), opts.dir_count);
}

TEST(TreeGenTest, DeterministicForSameSeed) {
  TreeSpec a = GenerateTree();
  TreeSpec b = GenerateTree();
  ASSERT_EQ(a.files.size(), b.files.size());
  for (size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].path, b.files[i].path);
    EXPECT_EQ(a.files[i].size, b.files[i].size);
  }
}

TEST(TreeGenTest, DifferentSeedsProduceDifferentSizes) {
  TreeGenOptions o1;
  TreeGenOptions o2;
  o2.seed = 777;
  TreeSpec a = GenerateTree(o1);
  TreeSpec b = GenerateTree(o2);
  int different = 0;
  for (size_t i = 0; i < a.files.size(); ++i) {
    if (a.files[i].size != b.files[i].size) {
      ++different;
    }
  }
  EXPECT_GT(different, 100);
}

TEST(TreeGenTest, ParentsPrecedeChildren) {
  TreeSpec tree = GenerateTree();
  std::set<std::string> seen;
  for (const auto& dir : tree.directories) {
    size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      EXPECT_TRUE(seen.contains(dir.substr(0, slash))) << dir;
    }
    seen.insert(dir);
  }
}

TEST(TreeGenTest, FilePathsAreUnique) {
  TreeSpec tree = GenerateTree();
  std::set<std::string> paths;
  for (const auto& f : tree.files) {
    EXPECT_TRUE(paths.insert(f.path).second) << "duplicate " << f.path;
  }
}

TEST(WorkloadTest, PopulateCopyRemoveRoundTrip) {
  TreeGenOptions opts;
  opts.file_count = 40;
  opts.total_bytes = 400'000;
  opts.dir_count = 6;
  TreeSpec tree = GenerateTree(opts);

  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* m, Proc* p, const TreeSpec* tree, bool* done) -> Task<void> {
    co_await m->Boot(*p);
    EXPECT_EQ(co_await PopulateTree(*m, *p, *tree, "/src"), FsStatus::kOk);
    EXPECT_EQ(co_await CopyTree(*m, *p, *tree, "/src", "/dst"), FsStatus::kOk);
    // Every copied file exists with the right size.
    for (const auto& f : tree->files) {
      Result<StatInfo> st = co_await m->fs().Stat(*p, "/dst/" + f.path);
      EXPECT_TRUE(st.Ok()) << f.path;
      if (st.Ok()) {
        EXPECT_EQ(st.value().size, f.size) << f.path;
      }
    }
    EXPECT_EQ(co_await RemoveTree(*m, *p, *tree, "/dst"), FsStatus::kOk);
    Result<uint32_t> gone = co_await m->fs().Lookup(*p, "/dst");
    EXPECT_EQ(gone.status(), FsStatus::kNotFound);
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(body(&m, &p, &tree, &done), "w");
  m.engine().RunUntil([&] { return done; });
  ASSERT_TRUE(done);

  // The surviving /src tree audits clean, including data tags.
  DiskImage snap = m.CrashNow();
  FsckOptions fo;
  fo.check_stale_data = true;
  FsckReport r = FsckChecker(&snap, fo).Check();
  for (const auto& v : r.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  EXPECT_EQ(r.files_seen, tree.files.size());
}

TEST(WorkloadTest, RunMultiUserCollectsPerUserStats) {
  Machine m(MachineConfig{});
  SetupFn setup = [](Machine& mm, Proc& p) -> Task<void> {
    (void)co_await mm.fs().Mkdir(p, "/w");
  };
  UserFn body = [](Machine& mm, Proc& p, int u) -> Task<void> {
    (void)co_await CreateFiles(mm, p, "/w", 5 + u, 1024);
  };
  RunMeasurement meas = RunMultiUser(m, 3, setup, body);
  ASSERT_EQ(meas.users.size(), 3u);
  for (const auto& u : meas.users) {
    EXPECT_GT(u.elapsed, 0);
    EXPECT_GT(u.cpu, 0);
  }
  EXPECT_GT(meas.wall, 0);
  EXPECT_GT(meas.disk_requests, 0u);
  EXPECT_GT(meas.cpu_seconds_total, 0.0);
}

TEST(WorkloadTest, SdetScriptRunsCleanly) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kConventional;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* m, Proc* p, bool* done) -> Task<void> {
    co_await m->Boot(*p);
    EXPECT_EQ(co_await SdetScript(*m, *p, "/s0", 17, 80), FsStatus::kOk);
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(body(&m, &p, &done), "w");
  m.engine().RunUntil([&] { return done; });
  ASSERT_TRUE(done);
  DiskImage snap = m.CrashNow();
  FsckReport r = FsckChecker(&snap).Check();
  for (const auto& v : r.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
}

TEST(WorkloadTest, AndrewPhasesAllPositive) {
  TreeGenOptions opts;
  opts.file_count = 20;
  opts.total_bytes = 200'000;
  opts.dir_count = 4;
  TreeSpec tree = GenerateTree(opts);
  MachineConfig cfg;
  cfg.scheme = Scheme::kNoOrder;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  AndrewTimes times;
  auto body = [](Machine* m, Proc* p, const TreeSpec* tree, AndrewTimes* out,
                 bool* done) -> Task<void> {
    co_await m->Boot(*p);
    (void)co_await PopulateTree(*m, *p, *tree, "/asrc");
    *out = co_await AndrewBenchmark(*m, *p, *tree, "/asrc", "/awork");
    *done = true;
  };
  m.engine().Spawn(body(&m, &p, &tree, &times, &done), "w");
  m.engine().RunUntil([&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_GT(times.make_dir, 0.0);
  EXPECT_GT(times.copy, 0.0);
  EXPECT_GT(times.scan_dir, 0.0);
  EXPECT_GT(times.read_all, 0.0);
  EXPECT_GT(times.compile, times.copy);  // CPU-dominated, as in the paper.
  EXPECT_GT(times.Total(), 0.0);
}

// --- Workload personalities: op-mix invariants and determinism. Each
// personality reports the mix it executed; under a fixed seed that mix
// is a pure function of the seed, and the surviving image audits clean.

using PersonalityFn = Task<FsStatus> (*)(Machine&, Proc&, const std::string&, uint64_t,
                                         int, PersonalityOpMix*);

struct PersonalityCase {
  const char* name;
  PersonalityFn fn;
};

const PersonalityCase kPersonalities[] = {
    {"mail", &MailServerWorkload},
    {"build", &BuildFarmWorkload},
    {"webasset", &WebAssetSwapWorkload},
    {"cachecleanup", &CacheCleanupWorkload},
};

PersonalityOpMix RunPersonality(PersonalityFn fn, uint64_t seed, int ops,
                                bool audit = true) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  PersonalityOpMix mix;
  auto body = [](Machine* m, Proc* p, PersonalityFn fn, uint64_t seed, int ops,
                 PersonalityOpMix* mix, bool* done) -> Task<void> {
    co_await m->Boot(*p);
    EXPECT_EQ(co_await fn(*m, *p, "/w", seed, ops, mix), FsStatus::kOk);
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(body(&m, &p, fn, seed, ops, &mix, &done), "w");
  m.engine().RunUntil([&] { return done; });
  EXPECT_TRUE(done);
  if (audit) {
    DiskImage snap = m.CrashNow();
    FsckReport r = FsckChecker(&snap).Check();
    for (const auto& v : r.violations) {
      ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
    }
  }
  return mix;
}

TEST(PersonalityTest, EachPersonalityRunsCleanAndReportsItsMix) {
  for (const auto& pc : kPersonalities) {
    SCOPED_TRACE(pc.name);
    PersonalityOpMix mix = RunPersonality(pc.fn, 7, 60);
    EXPECT_GT(mix.Total(), 0u);
    EXPECT_GT(mix.creates, 0u);
    EXPECT_GT(mix.unlinks, 0u);
    EXPECT_GT(mix.stats, 0u);
  }
}

TEST(PersonalityTest, MixesMatchEachPersonalitysCharacter) {
  // Mail server renames every delivery through the maildir; the web-asset
  // swap renames on every deploy; the build farm's dependency scans
  // dominate everything else; the cleanup pass removes emptied dirs.
  PersonalityOpMix mail = RunPersonality(&MailServerWorkload, 7, 120, /*audit=*/false);
  EXPECT_GT(mail.renames, 0u);
  EXPECT_GT(mail.appends, 0u);

  PersonalityOpMix web = RunPersonality(&WebAssetSwapWorkload, 7, 120, /*audit=*/false);
  EXPECT_GT(web.renames, 0u);
  EXPECT_GE(web.unlinks, web.renames);  // Every swap unlinks before renaming.

  PersonalityOpMix build = RunPersonality(&BuildFarmWorkload, 7, 60, /*audit=*/false);
  EXPECT_GT(build.stats, build.creates + build.unlinks + build.renames);

  PersonalityOpMix clean = RunPersonality(&CacheCleanupWorkload, 7, 120, /*audit=*/false);
  EXPECT_GT(clean.rmdirs, 0u);
  EXPECT_GT(clean.unlinks, 0u);
}

TEST(PersonalityTest, SameSeedYieldsIdenticalOpMix) {
  for (const auto& pc : kPersonalities) {
    SCOPED_TRACE(pc.name);
    PersonalityOpMix a = RunPersonality(pc.fn, 42, 80, /*audit=*/false);
    PersonalityOpMix b = RunPersonality(pc.fn, 42, 80, /*audit=*/false);
    EXPECT_TRUE(a == b);
  }
}

TEST(PersonalityTest, DifferentSeedsChangeTheOpMix) {
  int changed = 0;
  for (const auto& pc : kPersonalities) {
    PersonalityOpMix a = RunPersonality(pc.fn, 42, 80, /*audit=*/false);
    PersonalityOpMix b = RunPersonality(pc.fn, 43, 80, /*audit=*/false);
    if (!(a == b)) {
      ++changed;
    }
  }
  // The seed must matter for the mix-randomized personalities (the
  // cleanup pass's structure is seed-dependent too, but its mix can
  // coincide; require most to differ).
  EXPECT_GE(changed, 3);
}

}  // namespace
}  // namespace mufs
