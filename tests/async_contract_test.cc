// The Async scheme's contract, checked as crash-sweep properties:
//
//   1. Bounded staleness: an operation that completed more than
//      `staleness_window` of simulated time before the crash survives
//      recovery. Younger ops may be lost, but the image must still
//      repair clean.
//   2. Barrier semantics: a crash immediately after Fsync returns (and
//      at points after it) preserves every pre-barrier metadata update.
//   3. Determinism: the same seed yields a byte-identical stable-storage
//      image and stats dump at queue depths {1,16} and disks {1,4}.
//
// The simulation is deterministic, so crash points are event counts: a
// calibration run records when ops complete (or when the barrier
// returns), and re-runs crash at exactly those moments.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "src/workload/workloads.h"
#include "tests/pfsck_test_util.h"

namespace mufs {
namespace {

bool ImageHasRootEntry(const DiskImage& image, const std::string& name) {
  BlockData blk;
  image.Read(0, &blk);
  SuperBlock sb;
  memcpy(&sb, blk.data(), sizeof(sb));
  BlockData itable;
  image.Read(sb.ItableBlock(kRootIno), &itable);
  DiskInode root;
  memcpy(&root, itable.data() + sb.ItableOffset(kRootIno), sizeof(root));
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    if (root.direct[i] == 0) {
      continue;
    }
    BlockData dir;
    image.Read(root.direct[i], &dir);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry de;
      memcpy(&de, dir.data() + e * kDirEntrySize, sizeof(de));
      if (de.ino != 0 && de.Name() == name) {
        return true;
      }
    }
  }
  return false;
}

// Repairs the image to a clean state (the Async recovery model) and
// returns false only if repair cannot converge.
bool RepairClean(DiskImage* img) {
  FsckOptions fo;
  FsckReport report = FsckChecker(img, fo).Check();
  if (report.Clean()) {
    return true;
  }
  FsckRepairReport fixed = FsckRepairer(img, fo).Repair();
  return fixed.clean_after;
}

MachineConfig AsyncConfigFor(uint32_t queue_depth = 1, uint32_t disks = 1) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kAsync;
  cfg.queue_depth = queue_depth;
  cfg.disks = disks;
  cfg.syncer.sweep_seconds = 3;
  cfg.async_staleness_window = Msec(500);
  return cfg;
}

// --- 1. bounded staleness --------------------------------------------

struct OpRecord {
  std::string name;
  SimTime completed;
};

// Creates root files spaced widely enough that the background flusher
// (staleness/4 cadence) runs many epochs across the run, recording each
// op's completion time. The log holds exactly the completed prefix when
// a re-run is cut short by a crash.
Task<void> StalenessOps(Machine* m, Proc* p, std::vector<OpRecord>* log, bool* done) {
  co_await m->Boot(*p);
  log->clear();
  for (int i = 0; i < 16; ++i) {
    std::string name = "f" + std::to_string(i);
    (void)co_await m->fs().Create(*p, "/" + name);
    log->push_back({name, m->engine().Now()});
    co_await m->engine().Sleep(Msec(150));
  }
  *done = true;
}

TEST(AsyncContractTest, BoundedStalenessAcrossCrashSweep) {
  MachineConfig cfg = AsyncConfigFor();
  const SimDuration staleness = cfg.async_staleness_window;
  std::vector<OpRecord> log;

  // Calibration: full run (workload + settle) bounds the event sweep.
  uint64_t total_events = 0;
  {
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    m.engine().Spawn(StalenessOps(&m, &p, &log, &done), "w");
    m.engine().RunUntil([&] { return done; });
    ASSERT_TRUE(done);
    ASSERT_EQ(log.size(), 16u);
    SimTime settle_until = m.engine().Now() + Sec(3);
    m.engine().RunUntil([&] { return m.engine().Now() >= settle_until; });
    total_events = m.engine().EventsProcessed();
  }

  size_t required_total = 0;
  for (int i = 1; i <= 12; ++i) {
    uint64_t point = total_events * static_cast<uint64_t>(i) / 13;
    SCOPED_TRACE("crash@event " + std::to_string(point));
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    m.engine().Spawn(StalenessOps(&m, &p, &log, &done), "w");
    m.engine().RunUntil([&] { return m.engine().EventsProcessed() >= point; });
    SimTime crash_time = m.engine().Now();
    DiskImage img = m.CrashNow();
    // Whatever the crash left behind must be repairable...
    ASSERT_TRUE(RepairClean(&img)) << "async crash image not repairable";
    // ...and every op older than the staleness window must have survived.
    for (const OpRecord& op : log) {
      if (crash_time - op.completed > staleness) {
        ++required_total;
        EXPECT_TRUE(ImageHasRootEntry(img, op.name))
            << "/" << op.name << " completed " << (crash_time - op.completed)
            << "ns before the crash (> staleness " << staleness << "ns) but was lost";
      }
    }
  }
  // The sweep must actually have exercised the invariant.
  EXPECT_GT(required_total, 0u);
}

// --- 2. barrier semantics --------------------------------------------

// Pre-barrier creates, one Fsync (the Async durability barrier), then
// post-barrier churn that a crash is allowed to lose. Records the event
// count at which Fsync returned (first run only).
Task<void> BarrierOps(Machine* m, Proc* p, uint64_t* events_at_fsync, bool* done) {
  co_await m->Boot(*p);
  for (int i = 0; i < 8; ++i) {
    (void)co_await m->fs().Create(*p, "/pre" + std::to_string(i));
  }
  Result<uint32_t> tag = co_await m->fs().Create(*p, "/pretag");
  if (tag.Ok()) {
    (void)co_await m->fs().Fsync(*p, tag.value());
  }
  if (*events_at_fsync == 0) {
    *events_at_fsync = m->engine().EventsProcessed();
  }
  for (int i = 0; i < 8; ++i) {
    (void)co_await m->fs().Create(*p, "/post" + std::to_string(i));
  }
  *done = true;
}

TEST(AsyncContractTest, CrashAfterFsyncPreservesPreBarrierMetadata) {
  MachineConfig cfg = AsyncConfigFor();

  uint64_t events_at_fsync = 0;
  {
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    m.engine().Spawn(BarrierOps(&m, &p, &events_at_fsync, &done), "w");
    m.engine().RunUntil([&] { return done; });
    ASSERT_TRUE(done);
    ASSERT_GT(events_at_fsync, 0u);
  }

  // Crash exactly when Fsync returned, and at points shortly after
  // (post-barrier churn partially on disk): the pre-barrier files are
  // durable, so they must survive every later crash too.
  for (uint64_t extra : {0u, 100u, 400u}) {
    uint64_t point = events_at_fsync + extra;
    SCOPED_TRACE("crash@event " + std::to_string(point) + " (fsync+" +
                 std::to_string(extra) + ")");
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    uint64_t scratch = 1;  // Non-zero: re-runs must not re-record.
    bool done = false;
    m.engine().Spawn(BarrierOps(&m, &p, &scratch, &done), "w");
    m.engine().RunUntil([&] { return m.engine().EventsProcessed() >= point; });
    DiskImage img = m.CrashNow();
    ASSERT_TRUE(RepairClean(&img)) << "async crash image not repairable";
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(ImageHasRootEntry(img, "pre" + std::to_string(i)))
          << "/pre" << i << " lost although Fsync had returned before the crash";
    }
    EXPECT_TRUE(ImageHasRootEntry(img, "pretag"));
  }
}

// --- 3. determinism --------------------------------------------------

Task<void> ChurnThenShutdown(Machine* m, Proc* p, bool* done) {
  co_await m->Boot(*p);
  co_await PfsckChurn(*m, *p);
  co_await m->Shutdown(*p);
  *done = true;
}

struct RunOutput {
  DiskImage img;
  std::string stats;
};

RunOutput RunAsyncChurn(const MachineConfig& cfg) {
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  m.engine().Spawn(ChurnThenShutdown(&m, &p, &done), "churn");
  m.engine().RunUntil([&] { return done; });
  EXPECT_TRUE(done);
  return {m.CrashNow(), m.DumpStatsJson()};
}

TEST(AsyncContractTest, SameSeedIsByteIdenticalAcrossDepthsAndDisks) {
  for (uint32_t disks : {1u, 4u}) {
    for (uint32_t depth : {1u, 16u}) {
      std::string context =
          "disks=" + std::to_string(disks) + " depth=" + std::to_string(depth);
      SCOPED_TRACE(context);
      MachineConfig cfg = AsyncConfigFor(depth, disks);
      RunOutput a = RunAsyncChurn(cfg);
      RunOutput b = RunAsyncChurn(cfg);
      EXPECT_EQ(a.stats, b.stats) << context;
      ExpectImagesIdentical(a.img, b.img, context);
    }
  }
}

}  // namespace
}  // namespace mufs
