// Dense fault-injection sweep (slow label, nightly CI): every scheme x
// rate x seed combination on a larger tree, with determinism double-runs
// and full fsck repair audits. The fast subset runs in tier 1 as
// fault_injection_test.cc.
#include <gtest/gtest.h>

#include "tests/fault_test_util.h"

namespace mufs {
namespace {

// Sweeps iterate mufs::kAllSchemes (machine.h).

TEST(FaultSweepTest, DenseSchemeRateSeedSweep) {
  TreeSpec tree = MediumFaultTree();
  for (Scheme s : kAllSchemes) {
    for (double rate : {1e-4, 1e-3}) {
      for (uint64_t seed : {1ull, 2ull, 3ull}) {
        SCOPED_TRACE(std::string(SchemeName(s)) + " rate=" + std::to_string(rate) +
                     " seed=" + std::to_string(seed));
        FaultRunResult r = RunFaultWorkload(s, rate, seed, tree);
        EXPECT_TRUE(CompleteOrCleanFail(r.populate)) << static_cast<int>(r.populate);
        EXPECT_TRUE(CompleteOrCleanFail(r.copy)) << static_cast<int>(r.copy);
        EXPECT_TRUE(CompleteOrCleanFail(r.remove)) << static_cast<int>(r.remove);
        EXPECT_EQ(r.gave_up, 0u);
        EXPECT_TRUE(r.fsck_clean || r.fsck_repaired_clean) << r.fsck_detail;
      }
    }
  }
}

TEST(FaultSweepTest, EverySchemeIsDeterministicUnderFaults) {
  TreeSpec tree = MediumFaultTree();
  for (Scheme s : kAllSchemes) {
    SCOPED_TRACE(SchemeName(s));
    FaultRunResult a = RunFaultWorkload(s, 1e-3, 5, tree);
    FaultRunResult b = RunFaultWorkload(s, 1e-3, 5, tree);
    EXPECT_EQ(a.stats_json, b.stats_json);
  }
}

}  // namespace
}  // namespace mufs
