// StatsRegistry semantics (counters, gauges, histograms, trace) and the
// observability layer's central promise: everything is deterministic, so
// two same-seed runs dump byte-identical stats.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/stats/stats_registry.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

TEST(CounterTest, MonotonicAndNamed) {
  StatsRegistry reg;
  Counter& c = reg.counter("disk.reads");
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same counter; new name -> fresh counter.
  EXPECT_EQ(&reg.counter("disk.reads"), &c);
  EXPECT_EQ(reg.counter("disk.writes").value(), 0u);
  EXPECT_EQ(reg.MetricCount(), 2u);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  StatsRegistry reg;
  Gauge& g = reg.gauge("queue_depth");
  g.Set(3);
  g.Add(4);
  g.Add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.Set(-10);
  EXPECT_EQ(g.value(), -10);
  EXPECT_EQ(g.max(), 7) << "high-water mark must not regress";
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  StatsRegistry reg;
  LatencyHistogram& h = reg.histogram("resp", {Usec(100), Usec(200), Usec(400)});
  h.Record(Usec(100));  // Exactly on an edge: first bucket.
  h.Record(Usec(101));  // Just past: second bucket.
  h.Record(Usec(400));  // Last finite bucket.
  h.Record(Usec(401));  // Overflow bucket.
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 edges + overflow.
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), Usec(100) + Usec(101) + Usec(400) + Usec(401));
  EXPECT_EQ(h.min(), Usec(100));
  EXPECT_EQ(h.max(), Usec(401));
}

TEST(HistogramTest, DefaultEdgesAreSortedAndNonEmpty) {
  const auto& edges = LatencyHistogram::DefaultLatencyEdges();
  ASSERT_GT(edges.size(), 4u);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(TraceTest, RecordsFollowJsonlSchema) {
  StatsRegistry reg;
  SimTime now = 0;
  reg.SetClock([&now] { return now; });
  reg.EnableTrace();
  now = 12345;
  reg.Trace("disk.issue", {{"id", uint64_t{7}}, {"dir", "w"}, {"flag", true}});
  ASSERT_EQ(reg.trace_lines().size(), 1u);
  EXPECT_EQ(reg.trace_lines()[0],
            "{\"event\":\"disk.issue\",\"t\":12345,\"id\":7,\"dir\":\"w\",\"flag\":1}");
}

TEST(TraceTest, CapDropsRecordsAndCounts) {
  StatsRegistry reg;
  reg.EnableTrace(/*max_records=*/3);
  for (int i = 0; i < 5; ++i) {
    reg.Trace("e", {{"i", i}});
  }
  EXPECT_EQ(reg.trace_lines().size(), 3u);
  EXPECT_EQ(reg.trace_records_dropped(), 2u);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  StatsRegistry reg;
  EXPECT_FALSE(reg.tracing());
  reg.Trace("e", {{"i", 1}});
  EXPECT_TRUE(reg.trace_lines().empty());
}

TEST(DumpJsonTest, SortedKeysAndStableShape) {
  StatsRegistry reg;
  reg.counter("zeta").Inc(2);
  reg.counter("alpha").Inc(1);
  reg.gauge("g").Set(5);
  reg.histogram("h", {Usec(100)}).Record(Usec(50));
  std::string dump = reg.DumpJson();
  // Lexicographic counter order regardless of registration order.
  EXPECT_LT(dump.find("\"alpha\""), dump.find("\"zeta\""));
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"gauges\""), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\""), std::string::npos);

  // An identical sequence of operations on a fresh registry produces a
  // byte-identical dump.
  StatsRegistry reg2;
  reg2.counter("zeta").Inc(2);
  reg2.counter("alpha").Inc(1);
  reg2.gauge("g").Set(5);
  reg2.histogram("h", {Usec(100)}).Record(Usec(50));
  EXPECT_EQ(dump, reg2.DumpJson());
}

TEST(JsonHelpersTest, EscapeAndDoubleFormatting) {
  std::string out;
  JsonEscape("a\"b\\c\n", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  EXPECT_EQ(JsonDouble(1.0 / 3.0), JsonDouble(1.0 / 3.0));
}

// ---------------------------------------------------------------------
// End-to-end determinism: the acceptance property for the whole layer.
// ---------------------------------------------------------------------

std::string RunInstrumentedWorkload(bool with_trace) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  cfg.collect_stats_trace = with_trace;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    (void)co_await mm->fs().Mkdir(*pp, "/d");
    (void)co_await CreateFiles(*mm, *pp, "/d", 30, 2 * kBlockSize);
    (void)co_await RemoveFiles(*mm, *pp, "/d", 15);
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(body(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  std::string dump = m.DumpStatsJson();
  if (with_trace) {
    // Append the trace so the comparison covers it too.
    for (const std::string& line : m.stats().trace_lines()) {
      dump += '\n';
      dump += line;
    }
  }
  return dump;
}

TEST(DeterminismTest, SameSeedRunsDumpIdenticalStats) {
  std::string first = RunInstrumentedWorkload(/*with_trace=*/false);
  std::string second = RunInstrumentedWorkload(/*with_trace=*/false);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, SameSeedRunsEmitIdenticalTraces) {
  std::string first = RunInstrumentedWorkload(/*with_trace=*/true);
  std::string second = RunInstrumentedWorkload(/*with_trace=*/true);
  EXPECT_EQ(first, second);
}

TEST(MachineStatsTest, WorkloadPopulatesTheCoreMetrics) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kConventional;
  cfg.syncer.sweep_seconds = 1;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    (void)co_await mm->fs().Mkdir(*pp, "/d");
    (void)co_await CreateFiles(*mm, *pp, "/d", 10, kBlockSize);
    co_await mm->engine().Sleep(Sec(2));  // Let the syncer sweep.
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(body(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });

  StatsRegistry& s = m.stats();
  // The acceptance floor: the metrics the paper's tables are built from.
  EXPECT_GT(s.counter("disk.writes").value(), 0u);
  EXPECT_GT(s.counter("disk.busy_ns").value(), 0u);
  EXPECT_GT(s.counter("cache.hits").value(), 0u);
  EXPECT_GT(s.counter("cache.misses").value(), 0u);
  EXPECT_GT(s.counter("cache.sync_writes").value(), 0u)
      << "Conventional must issue synchronous metadata writes";
  EXPECT_GT(s.counter("fs.creates").value(), 0u);
  EXPECT_GT(s.counter("policy.ordering_points").value(), 0u);
  EXPECT_GT(s.counter("syncer.passes").value(), 0u);
  EXPECT_GT(s.histogram("disk.response_ns").count(), 0u);
  EXPECT_GE(s.gauge("disk.queue_depth").max(), 1);
  EXPECT_GE(s.MetricCount(), 8u);

  std::string dump = m.DumpStatsJson();
  EXPECT_NE(dump.find("\"disk.utilization\""), std::string::npos);
  EXPECT_NE(dump.find("\"cache.hit_rate\""), std::string::npos);
  EXPECT_NE(dump.find("\"scheme\":\"Conventional\""), std::string::npos);
}

TEST(MachineStatsTest, SoftUpdatesEmitsRollbackAndOrderingTraces) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  cfg.collect_stats_trace = true;
  cfg.syncer.sweep_seconds = 1;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    (void)co_await mm->fs().Mkdir(*pp, "/d");
    (void)co_await CreateFiles(*mm, *pp, "/d", 20, kBlockSize);
    // Let the add dependencies fully resolve (inode flush, then the dir
    // block rewrite): removing afterwards creates real dir_rem
    // dependencies instead of cancelling in-memory add/rem pairs.
    co_await mm->engine().Sleep(Sec(8));
    (void)co_await RemoveFiles(*mm, *pp, "/d", 20);
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(body(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });

  bool saw_ordering_point = false;
  bool saw_syncer_pass = false;
  bool saw_cache_flush = false;
  for (const std::string& line : m.stats().trace_lines()) {
    saw_ordering_point |= line.find("\"event\":\"policy.ordering_point\"") != std::string::npos;
    saw_syncer_pass |= line.find("\"event\":\"syncer.pass\"") != std::string::npos;
    saw_cache_flush |= line.find("\"event\":\"cache.flush\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_ordering_point);
  EXPECT_TRUE(saw_syncer_pass);
  EXPECT_TRUE(saw_cache_flush);
  EXPECT_GT(m.stats().counter("su.dir_adds").value(), 0u);
  EXPECT_GT(m.stats().counter("su.dir_rems").value(), 0u);
}

}  // namespace
}  // namespace mufs
