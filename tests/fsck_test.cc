// Unit tests for the fsck checker: start from a freshly formatted image
// and inject specific corruptions directly into the raw blocks.
#include <gtest/gtest.h>

#include <cstring>

#include "src/fs/filesystem.h"
#include "src/fsck/fsck.h"

namespace mufs {
namespace {

constexpr uint32_t kBlocks = 4096;

struct Img {
  Img() : image(kBlocks) { FileSystem::Mkfs(&image, 1024); }

  SuperBlock sb() const {
    BlockData b;
    image.Read(0, &b);
    SuperBlock s;
    memcpy(&s, b.data(), sizeof(s));
    return s;
  }

  DiskInode ReadInode(uint32_t ino) const {
    SuperBlock s = sb();
    BlockData b;
    image.Read(s.ItableBlock(ino), &b);
    DiskInode d;
    memcpy(&d, b.data() + s.ItableOffset(ino), sizeof(d));
    return d;
  }

  void WriteInode(uint32_t ino, const DiskInode& d) {
    SuperBlock s = sb();
    BlockData b;
    image.Read(s.ItableBlock(ino), &b);
    memcpy(b.data() + s.ItableOffset(ino), &d, sizeof(d));
    image.Write(s.ItableBlock(ino), b, 0);
  }

  // Adds `name`->ino into the root directory (allocating root's first
  // block at `dir_blk` if needed).
  void AddRootEntry(const std::string& name, uint32_t ino, uint32_t dir_blk) {
    DiskInode root = ReadInode(kRootIno);
    if (root.direct[0] == 0) {
      root.direct[0] = dir_blk;
      root.size = kBlockSize;
      WriteInode(kRootIno, root);
      BlockData z;
      z.fill(0);
      image.Write(dir_blk, z, 0);
    }
    BlockData b;
    image.Read(root.direct[0], &b);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry de;
      memcpy(&de, b.data() + e * kDirEntrySize, sizeof(de));
      if (de.ino == 0) {
        de.ino = ino;
        de.SetName(name);
        de.reserved = 0;
        memcpy(b.data() + e * kDirEntrySize, &de, sizeof(de));
        image.Write(root.direct[0], b, 0);
        return;
      }
    }
    FAIL() << "no free slot";
  }

  // Creates a plausible regular file inode.
  uint32_t MakeFile(uint32_t ino, uint16_t nlink, std::initializer_list<uint32_t> blocks) {
    DiskInode d;
    d.mode = static_cast<uint16_t>(FileType::kRegular);
    d.nlink = nlink;
    d.generation = 1;
    uint32_t i = 0;
    for (uint32_t blk : blocks) {
      d.direct[i++] = blk;
    }
    d.size = static_cast<uint64_t>(i) * kBlockSize;
    WriteInode(ino, d);
    return ino;
  }

  DiskImage image;
};

TEST(FsckTest, FreshImageIsClean) {
  Img img;
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  EXPECT_EQ(r.inodes_in_use, 1u);  // Root.
  EXPECT_EQ(r.dirs_seen, 1u);
}

TEST(FsckTest, BadSuperblockDetected) {
  Img img;
  BlockData b;
  b.fill(0xab);
  img.image.Write(0, b, 0);
  FsckReport r = FsckChecker(&img.image).Check();
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].type, FsckViolationType::kBadSuperblock);
}

TEST(FsckTest, HealthyFileIsClean) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, 1, {sb.data_start + 10});
  img.AddRootEntry("file", 5, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  for (const auto& v : r.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  EXPECT_EQ(r.files_seen, 1u);
}

TEST(FsckTest, DanglingEntryDetected) {
  Img img;
  SuperBlock sb = img.sb();
  img.AddRootEntry("ghost", 7, sb.data_start + 1);  // Ino 7 is free.
  FsckReport r = FsckChecker(&img.image).Check();
  ASSERT_FALSE(r.Clean());
  EXPECT_EQ(r.violations[0].type, FsckViolationType::kDanglingDirEntry);
}

TEST(FsckTest, DuplicateBlockClaimDetected) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t shared = sb.data_start + 20;
  img.MakeFile(5, 1, {shared});
  img.MakeFile(6, 1, {shared});
  img.AddRootEntry("a", 5, sb.data_start + 1);
  img.AddRootEntry("b", 6, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kDuplicateBlockClaim;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, BadBlockPointerDetected) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, 1, {sb.inode_table_start});  // Points into metadata!
  img.AddRootEntry("bad", 5, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kBadBlockPointer;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, LinkCountTooLowDetected) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, /*nlink=*/1, {});
  img.AddRootEntry("one", 5, sb.data_start + 1);
  img.AddRootEntry("two", 5, sb.data_start + 1);  // Two refs, nlink 1.
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kLinkCountTooLow;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, GarbageDirectoryDetected) {
  Img img;
  SuperBlock sb = img.sb();
  // Root points to a block full of binary junk (stale data reused as a
  // directory without initialization).
  DiskInode root = img.ReadInode(kRootIno);
  uint32_t blk = sb.data_start + 3;
  root.direct[0] = blk;
  root.size = kBlockSize;
  img.WriteInode(kRootIno, root);
  BlockData junk;
  for (size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  img.image.Write(blk, junk, 0);
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kGarbageDirectory;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, OrphanedInodeIsFixableNotViolation) {
  Img img;
  img.MakeFile(5, 1, {});  // In use, never referenced.
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  bool found = false;
  for (const auto& f : r.fixables) {
    found |= f.detail.find("orphaned") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, OvercountedNlinkIsFixable) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, /*nlink=*/3, {});
  img.AddRootEntry("over", 5, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  EXPECT_FALSE(r.fixables.empty());
}

TEST(FsckTest, StaleDataDetectedWhenEnabled) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 30;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  // Block holds data tagged for a different inode/generation.
  BlockData foreign;
  foreign.fill(0);
  TagDataBlock(foreign.data(), /*ino=*/99, /*generation=*/7);
  img.image.Write(blk, foreign, 0);

  FsckOptions opt;
  opt.check_stale_data = true;
  FsckReport r = FsckChecker(&img.image, opt).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kStaleDataExposed;
  }
  EXPECT_TRUE(found);

  // And without the option it is not flagged.
  FsckReport r2 = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r2.Clean());
}

TEST(FsckTest, ZeroFilledDataBlockIsNotStale) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 31;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  BlockData zeros;
  zeros.fill(0);
  img.image.Write(blk, zeros, 0);  // Initialized, never written with data.
  FsckOptions opt;
  opt.check_stale_data = true;
  FsckReport r = FsckChecker(&img.image, opt).Check();
  EXPECT_TRUE(r.Clean());
}

TEST(FsckTest, BitmapMismatchesAreFixable) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 40;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  // Neither the inode nor the block is marked in the bitmaps.
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  int bitmap_findings = 0;
  for (const auto& f : r.fixables) {
    if (f.detail.find("bitmap") != std::string::npos) {
      ++bitmap_findings;
    }
  }
  EXPECT_GE(bitmap_findings, 2);
}

}  // namespace
}  // namespace mufs
