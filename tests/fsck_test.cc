// Unit tests for the fsck checker: start from a freshly formatted image
// and inject specific corruptions directly into the raw blocks.
#include <gtest/gtest.h>

#include <cstring>

#include "src/fs/filesystem.h"
#include "src/fsck/fsck.h"

namespace mufs {
namespace {

constexpr uint32_t kBlocks = 4096;

struct Img {
  Img() : image(kBlocks) { FileSystem::Mkfs(&image, 1024); }

  SuperBlock sb() const {
    BlockData b;
    image.Read(0, &b);
    SuperBlock s;
    memcpy(&s, b.data(), sizeof(s));
    return s;
  }

  DiskInode ReadInode(uint32_t ino) const {
    SuperBlock s = sb();
    BlockData b;
    image.Read(s.ItableBlock(ino), &b);
    DiskInode d;
    memcpy(&d, b.data() + s.ItableOffset(ino), sizeof(d));
    return d;
  }

  void WriteInode(uint32_t ino, const DiskInode& d) {
    SuperBlock s = sb();
    BlockData b;
    image.Read(s.ItableBlock(ino), &b);
    memcpy(b.data() + s.ItableOffset(ino), &d, sizeof(d));
    image.Write(s.ItableBlock(ino), b, 0);
  }

  // Adds `name`->ino into directory `dir_ino` (allocating the dir's
  // first block at `dir_blk` if needed).
  void AddDirEntry(uint32_t dir_ino, const std::string& name, uint32_t ino,
                   uint32_t dir_blk) {
    DiskInode dir = ReadInode(dir_ino);
    if (dir.direct[0] == 0) {
      dir.direct[0] = dir_blk;
      dir.size = kBlockSize;
      WriteInode(dir_ino, dir);
      BlockData z;
      z.fill(0);
      image.Write(dir_blk, z, 0);
    }
    BlockData b;
    image.Read(dir.direct[0], &b);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry de;
      memcpy(&de, b.data() + e * kDirEntrySize, sizeof(de));
      if (de.ino == 0) {
        de.ino = ino;
        de.SetName(name);
        de.reserved = 0;
        memcpy(b.data() + e * kDirEntrySize, &de, sizeof(de));
        image.Write(dir.direct[0], b, 0);
        return;
      }
    }
    FAIL() << "no free slot";
  }

  void AddRootEntry(const std::string& name, uint32_t ino, uint32_t dir_blk) {
    AddDirEntry(kRootIno, name, ino, dir_blk);
  }

  // Zeroes the entry for `ino` in directory `dir_ino`'s first block
  // (direct corruption: a crash that lost the entry write).
  void DropDirEntry(uint32_t dir_ino, uint32_t ino) {
    DiskInode dir = ReadInode(dir_ino);
    BlockData b;
    image.Read(dir.direct[0], &b);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      DirEntry de;
      memcpy(&de, b.data() + e * kDirEntrySize, sizeof(de));
      if (de.ino == ino) {
        memset(b.data() + e * kDirEntrySize, 0, kDirEntrySize);
        image.Write(dir.direct[0], b, 0);
        return;
      }
    }
    FAIL() << "entry not found";
  }

  // Creates a plausible directory inode (entries added via AddDirEntry).
  uint32_t MakeDir(uint32_t ino, uint16_t nlink) {
    DiskInode d;
    d.mode = static_cast<uint16_t>(FileType::kDirectory);
    d.nlink = nlink;
    d.generation = 1;
    WriteInode(ino, d);
    return ino;
  }

  // Creates a plausible regular file inode.
  uint32_t MakeFile(uint32_t ino, uint16_t nlink, std::initializer_list<uint32_t> blocks) {
    DiskInode d;
    d.mode = static_cast<uint16_t>(FileType::kRegular);
    d.nlink = nlink;
    d.generation = 1;
    uint32_t i = 0;
    for (uint32_t blk : blocks) {
      d.direct[i++] = blk;
    }
    d.size = static_cast<uint64_t>(i) * kBlockSize;
    WriteInode(ino, d);
    return ino;
  }

  DiskImage image;
};

TEST(FsckTest, FreshImageIsClean) {
  Img img;
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  EXPECT_EQ(r.inodes_in_use, 1u);  // Root.
  EXPECT_EQ(r.dirs_seen, 1u);
}

TEST(FsckTest, BadSuperblockDetected) {
  Img img;
  BlockData b;
  b.fill(0xab);
  img.image.Write(0, b, 0);
  FsckReport r = FsckChecker(&img.image).Check();
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].type, FsckViolationType::kBadSuperblock);
}

TEST(FsckTest, HealthyFileIsClean) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, 1, {sb.data_start + 10});
  img.AddRootEntry("file", 5, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  for (const auto& v : r.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  EXPECT_EQ(r.files_seen, 1u);
}

TEST(FsckTest, DanglingEntryDetected) {
  Img img;
  SuperBlock sb = img.sb();
  img.AddRootEntry("ghost", 7, sb.data_start + 1);  // Ino 7 is free.
  FsckReport r = FsckChecker(&img.image).Check();
  ASSERT_FALSE(r.Clean());
  EXPECT_EQ(r.violations[0].type, FsckViolationType::kDanglingDirEntry);
}

TEST(FsckTest, DuplicateBlockClaimDetected) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t shared = sb.data_start + 20;
  img.MakeFile(5, 1, {shared});
  img.MakeFile(6, 1, {shared});
  img.AddRootEntry("a", 5, sb.data_start + 1);
  img.AddRootEntry("b", 6, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kDuplicateBlockClaim;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, BadBlockPointerDetected) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, 1, {sb.inode_table_start});  // Points into metadata!
  img.AddRootEntry("bad", 5, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kBadBlockPointer;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, LinkCountTooLowDetected) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, /*nlink=*/1, {});
  img.AddRootEntry("one", 5, sb.data_start + 1);
  img.AddRootEntry("two", 5, sb.data_start + 1);  // Two refs, nlink 1.
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kLinkCountTooLow;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, GarbageDirectoryDetected) {
  Img img;
  SuperBlock sb = img.sb();
  // Root points to a block full of binary junk (stale data reused as a
  // directory without initialization).
  DiskInode root = img.ReadInode(kRootIno);
  uint32_t blk = sb.data_start + 3;
  root.direct[0] = blk;
  root.size = kBlockSize;
  img.WriteInode(kRootIno, root);
  BlockData junk;
  for (size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  img.image.Write(blk, junk, 0);
  FsckReport r = FsckChecker(&img.image).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kGarbageDirectory;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, OrphanedInodeIsFixableNotViolation) {
  Img img;
  img.MakeFile(5, 1, {});  // In use, never referenced.
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  bool found = false;
  for (const auto& f : r.fixables) {
    found |= f.detail.find("orphaned") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(FsckTest, OvercountedNlinkIsFixable) {
  Img img;
  SuperBlock sb = img.sb();
  img.MakeFile(5, /*nlink=*/3, {});
  img.AddRootEntry("over", 5, sb.data_start + 1);
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  EXPECT_FALSE(r.fixables.empty());
}

TEST(FsckTest, StaleDataDetectedWhenEnabled) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 30;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  // Block holds data tagged for a different inode/generation.
  BlockData foreign;
  foreign.fill(0);
  TagDataBlock(foreign.data(), /*ino=*/99, /*generation=*/7);
  img.image.Write(blk, foreign, 0);

  FsckOptions opt;
  opt.check_stale_data = true;
  FsckReport r = FsckChecker(&img.image, opt).Check();
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.type == FsckViolationType::kStaleDataExposed;
  }
  EXPECT_TRUE(found);

  // And without the option it is not flagged.
  FsckReport r2 = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r2.Clean());
}

TEST(FsckTest, ZeroFilledDataBlockIsNotStale) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 31;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  BlockData zeros;
  zeros.fill(0);
  img.image.Write(blk, zeros, 0);  // Initialized, never written with data.
  FsckOptions opt;
  opt.check_stale_data = true;
  FsckReport r = FsckChecker(&img.image, opt).Check();
  EXPECT_TRUE(r.Clean());
}

TEST(FsckTest, BitmapMismatchesAreFixable) {
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 40;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  // Neither the inode nor the block is marked in the bitmaps.
  FsckReport r = FsckChecker(&img.image).Check();
  EXPECT_TRUE(r.Clean());
  int bitmap_findings = 0;
  for (const auto& f : r.fixables) {
    if (f.detail.find("bitmap") != std::string::npos) {
      ++bitmap_findings;
    }
  }
  EXPECT_GE(bitmap_findings, 2);
}

// --- repair accounting, convergence, and shard-region stale tags -----

TEST(FsckRepairTest, TotalFixesSumsEveryCategory) {
  // Pure accounting: TotalFixes is the sum of all six fix counters.
  FsckRepairReport r;
  r.dir_entries_cleared = 1;
  r.link_counts_fixed = 2;
  r.inodes_cleared = 3;
  r.pointers_cleared = 4;
  r.data_blocks_scrubbed = 5;
  r.bitmap_bits_fixed = 6;
  EXPECT_EQ(r.TotalFixes(), 21u);
  EXPECT_EQ(FsckRepairReport{}.TotalFixes(), 0u);

  // Integration: an image with one dangling entry, one duplicate
  // pointer and one orphan produces fixes in exactly those categories,
  // and TotalFixes reflects the counter sum.
  Img img;
  SuperBlock sb = img.sb();
  uint32_t shared = sb.data_start + 20;
  img.MakeFile(5, 1, {shared});
  img.AddRootEntry("keep", 5, sb.data_start + 1);
  img.MakeFile(6, 1, {shared, sb.data_start + 21});  // Loses `shared` to ino 5.
  img.AddRootEntry("dup", 6, sb.data_start + 1);
  img.AddRootEntry("gone", 7, sb.data_start + 1);  // Ino 7 is free: dangling.
  img.MakeFile(8, 1, {sb.data_start + 22});        // No entry: orphan.

  FsckRepairReport rep = FsckRepairer(&img.image).Repair();
  EXPECT_TRUE(rep.clean_after);
  EXPECT_EQ(rep.dir_entries_cleared, 1u);
  EXPECT_EQ(rep.pointers_cleared, 1u);
  EXPECT_EQ(rep.inodes_cleared, 1u);
  EXPECT_EQ(rep.TotalFixes(),
            rep.dir_entries_cleared + rep.link_counts_fixed + rep.inodes_cleared +
                rep.pointers_cleared + rep.data_blocks_scrubbed + rep.bitmap_bits_fixed);
  EXPECT_GT(rep.TotalFixes(), 0u);
}

TEST(FsckRepairTest, CascadingOrphanChainConvergesAndStaysConverged) {
  // root -> a(5) -> b(6) -> f(7), then the crash loses root's entry for
  // "a": the whole chain is unreachable. Global reference counting from
  // the directory walk collapses the full cascade in a single pass
  // (every unreachable inode has zero walked refs), and the repair must
  // converge well under the kMaxFsckRepairPasses cap and stay clean.
  Img img;
  SuperBlock sb = img.sb();
  img.MakeDir(5, 2);
  img.MakeDir(6, 2);
  img.MakeFile(7, 1, {sb.data_start + 30});
  img.AddRootEntry("a", 5, sb.data_start + 1);
  img.AddDirEntry(5, "b", 6, sb.data_start + 2);
  img.AddDirEntry(6, "f", 7, sb.data_start + 3);
  // Normalize link counts and bitmaps so the ONLY damage is the lost
  // entry.
  FsckRepairReport normalize = FsckRepairer(&img.image).Repair();
  ASSERT_TRUE(normalize.clean_after);
  img.DropDirEntry(kRootIno, 5);

  FsckRepairReport rep = FsckRepairer(&img.image).Repair();
  EXPECT_TRUE(rep.clean_after);
  EXPECT_EQ(rep.inodes_cleared, 3u);  // The whole a -> b -> f chain.
  EXPECT_EQ(rep.passes, 1);
  EXPECT_LE(rep.passes, kMaxFsckRepairPasses);
  EXPECT_FALSE(img.ReadInode(5).InUse());
  EXPECT_FALSE(img.ReadInode(6).InUse());
  EXPECT_FALSE(img.ReadInode(7).InUse());

  // Idempotence: repairing the repaired image changes nothing.
  FsckRepairReport again = FsckRepairer(&img.image).Repair();
  EXPECT_TRUE(again.clean_after);
  EXPECT_EQ(again.passes, 1);
  EXPECT_EQ(again.TotalFixes(), 0u);
}

TEST(FsckRepairTest, ShardRegionStaleTagsUseGlobalInoBase) {
  // A shard region extracted from a volume tags its data with GLOBAL
  // inode numbers (shard * stride + local). The checker and repairer
  // must agree: with the right tag_ino_base the region is clean; with
  // base 0 the same bytes read as a stale-data exposure and the repairer
  // scrubs them.
  constexpr uint32_t kStride = 1024;  // Pretend this is shard 1 of 2.
  Img img;
  SuperBlock sb = img.sb();
  uint32_t blk = sb.data_start + 33;
  img.MakeFile(5, 1, {blk});
  img.AddRootEntry("f", 5, sb.data_start + 1);
  BlockData data;
  data.fill(0x5a);
  TagDataBlock(data.data(), kStride + 5, img.ReadInode(5).generation);
  img.image.Write(blk, data, 0);

  // Embed the region at shard offset 1 of a two-shard volume and pull
  // it back out, as the crash harness does.
  DiskImage volume(2 * kBlocks);
  for (uint32_t b : img.image.WrittenBlocks()) {
    BlockData content;
    img.image.Read(b, &content);
    volume.Write(kBlocks + b, content, 0);
  }
  DiskImage region = volume.ExtractRegion(kBlocks, kBlocks);

  FsckOptions right;
  right.check_stale_data = true;
  right.tag_ino_base = kStride;
  EXPECT_TRUE(FsckChecker(&region, right).Check().Clean());

  FsckOptions wrong;
  wrong.check_stale_data = true;
  FsckReport flagged = FsckChecker(&region, wrong).Check();
  ASSERT_FALSE(flagged.Clean());
  EXPECT_EQ(flagged.violations[0].type, FsckViolationType::kStaleDataExposed);

  // Repair with the right base leaves the data alone...
  DiskImage keep = region.Snapshot();
  FsckRepairReport kept = FsckRepairer(&keep, right).Repair();
  EXPECT_EQ(kept.data_blocks_scrubbed, 0u);
  BlockData after;
  keep.Read(blk, &after);
  EXPECT_EQ(after[sizeof(DataBlockTag)], 0x5a);
  // ...with base 0 it scrubs the "foreign" block.
  DiskImage scrub = region.Snapshot();
  FsckRepairReport scrubbed = FsckRepairer(&scrub, wrong).Repair();
  EXPECT_GE(scrubbed.data_blocks_scrubbed, 1u);
  scrub.Read(blk, &after);
  EXPECT_EQ(after[sizeof(DataBlockTag)], 0);
}

TEST(FsckRepairTest, DuplicateBlockWinnerIsLowestIno) {
  // Satellite pin: duplicate-claim repair keeps the LOWEST-ino claimant
  // deterministically (ascending table scan), independent of any map
  // iteration order. Both files stay referenced so the loser survives
  // with its pointer cleared rather than being orphan-freed.
  Img img;
  SuperBlock sb = img.sb();
  uint32_t shared = sb.data_start + 60;
  img.MakeFile(5, 1, {shared});
  img.MakeFile(9, 1, {shared});
  img.AddRootEntry("low", 5, sb.data_start + 1);
  img.AddRootEntry("high", 9, sb.data_start + 1);

  FsckRepairReport rep = FsckRepairer(&img.image).Repair();
  EXPECT_TRUE(rep.clean_after);
  EXPECT_EQ(rep.pointers_cleared, 1u);
  EXPECT_EQ(img.ReadInode(5).direct[0], shared) << "winner must be the lowest ino";
  EXPECT_EQ(img.ReadInode(9).direct[0], 0u) << "loser's pointer must be cleared";
}

}  // namespace
}  // namespace mufs
