// Unit tests for the buffer cache, write locking / block copy, and the
// syncer daemon.
#include <gtest/gtest.h>

#include <memory>

#include "src/cache/buffer_cache.h"
#include "src/cache/syncer.h"
#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/sim/engine.h"

namespace mufs {
namespace {

struct Rig {
  explicit Rig(CacheConfig ccfg = {}, DriverConfig dcfg = {})
      : model(DiskGeometry{}), image(DiskGeometry{}.total_blocks) {
    driver = std::make_unique<DiskDriver>(&engine, &model, &image, dcfg);
    cache = std::make_unique<BufferCache>(&engine, driver.get(), ccfg);
  }
  Engine engine;
  DiskModel model;
  DiskImage image;
  std::unique_ptr<DiskDriver> driver;
  std::unique_ptr<BufferCache> cache;

  // Runs a coroutine to completion on the engine.
  template <typename F, typename... Args>
  void RunTask(F&& f, Args&&... args) {
    engine.Spawn(f(std::forward<Args>(args)...), "test");
    engine.Run();
  }
};

TEST(BufferCacheTest, BreadMissReadsFromDisk) {
  Rig rig;
  BlockData src;
  src.fill(0x77);
  rig.image.Write(10, src, 0);
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bread(10);
    EXPECT_EQ(buf->data()[0], 0x77);
    EXPECT_TRUE(buf->valid());
  };
  rig.RunTask(body, &rig);
  EXPECT_EQ(rig.cache->stats().misses, 1u);
}

TEST(BufferCacheTest, SecondBreadIsCacheHit) {
  Rig rig;
  auto body = [](Rig* r) -> Task<void> {
    (void)co_await r->cache->Bread(10);
    uint64_t reads_before = r->driver->TotalRequests();
    (void)co_await r->cache->Bread(10);
    EXPECT_EQ(r->driver->TotalRequests(), reads_before);
  };
  rig.RunTask(body, &rig);
  EXPECT_EQ(rig.cache->stats().hits, 1u);
}

TEST(BufferCacheTest, BgetReturnsZeroedBlockWithoutRead) {
  Rig rig;
  BlockData src;
  src.fill(0xde);
  rig.image.Write(20, src, 0);
  auto body = [](Rig* r) -> Task<void> {
    uint64_t before = r->driver->TotalRequests();
    BufRef buf = co_await r->cache->Bget(20);
    EXPECT_EQ(r->driver->TotalRequests(), before);  // No disk read.
    EXPECT_EQ(buf->data()[0], 0);
  };
  rig.RunTask(body, &rig);
}

TEST(BufferCacheTest, MarkDirtyThenSyncAllPersists) {
  Rig rig;
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(30);
    buf->data()[0] = 0xaa;
    r->cache->MarkDirty(*buf);
    EXPECT_EQ(r->cache->DirtyCount(), 1u);
    co_await r->cache->SyncAll();
    EXPECT_EQ(r->cache->DirtyCount(), 0u);
  };
  rig.RunTask(body, &rig);
  BlockData d;
  rig.image.Read(30, &d);
  EXPECT_EQ(d[0], 0xaa);
}

TEST(BufferCacheTest, BwriteIsSynchronous) {
  Rig rig;
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(40);
    buf->data()[0] = 0x11;
    r->cache->MarkDirty(*buf);
    co_await r->cache->Bwrite(buf);
    // On return the data is on stable storage.
    BlockData d;
    r->image.Read(40, &d);
    EXPECT_EQ(d[0], 0x11);
    EXPECT_FALSE(buf->dirty());
  };
  rig.RunTask(body, &rig);
  EXPECT_EQ(rig.cache->stats().sync_writes, 1u);
}

TEST(BufferCacheTest, WriteLockBlocksSecondUpdater) {
  Rig rig;  // copy_blocks = false: async writes lock the buffer.
  SimTime update_done = 0;
  SimTime io_done = 0;
  auto body = [](Rig* r, SimTime* update_done, SimTime* io_done) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(50);
    buf->data()[0] = 1;
    r->cache->MarkDirty(*buf);
    uint64_t id = co_await r->cache->Bawrite(buf);
    EXPECT_TRUE(buf->io_locked());
    // Second update must wait for the I/O.
    co_await r->cache->BeginUpdate(*buf);
    *update_done = r->engine.Now();
    co_await r->driver->WaitFor(id);
    *io_done = r->engine.Now();
  };
  rig.RunTask(body, &rig, &update_done, &io_done);
  EXPECT_GT(update_done, 0);
  EXPECT_EQ(update_done, io_done);  // Released exactly at completion.
  EXPECT_EQ(rig.cache->stats().write_lock_waits, 1u);
}

TEST(BufferCacheTest, CopyBlocksAvoidsWriteLock) {
  Rig rig{CacheConfig{.copy_blocks = true}};
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(60);
    buf->data()[0] = 1;
    r->cache->MarkDirty(*buf);
    (void)co_await r->cache->Bawrite(buf);
    EXPECT_FALSE(buf->io_locked());
    SimTime before = r->engine.Now();
    co_await r->cache->BeginUpdate(*buf);  // Immediate.
    EXPECT_EQ(r->engine.Now(), before);
  };
  rig.RunTask(body, &rig);
  EXPECT_EQ(rig.cache->stats().block_copies, 1u);
  EXPECT_EQ(rig.cache->stats().write_lock_waits, 0u);
}

TEST(BufferCacheTest, CopyBlocksSnapshotsContentAtIssue) {
  Rig rig{CacheConfig{.copy_blocks = true}};
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(70);
    buf->data()[0] = 1;
    r->cache->MarkDirty(*buf);
    uint64_t id = co_await r->cache->Bawrite(buf);
    buf->data()[0] = 2;  // Modify during flight: must not affect the I/O.
    co_await r->driver->WaitFor(id);
    BlockData d;
    r->image.Read(70, &d);
    EXPECT_EQ(d[0], 1);
  };
  rig.RunTask(body, &rig);
}

TEST(BufferCacheTest, EvictionDropsCleanColdBuffer) {
  Rig rig{CacheConfig{.capacity_blocks = 4}};
  auto body = [](Rig* r) -> Task<void> {
    for (uint32_t b = 0; b < 8; ++b) {
      BufRef buf = co_await r->cache->Bget(1000 + b);
      (void)buf;
    }
    EXPECT_LE(r->cache->CachedCount(), 4u);
  };
  rig.RunTask(body, &rig);
  EXPECT_GE(rig.cache->stats().evictions, 4u);
}

TEST(BufferCacheTest, EvictionWritesBackDirtyBuffer) {
  Rig rig{CacheConfig{.capacity_blocks = 4}};
  auto body = [](Rig* r) -> Task<void> {
    for (uint32_t b = 0; b < 8; ++b) {
      BufRef buf = co_await r->cache->Bget(2000 + b);
      buf->data()[0] = static_cast<uint8_t>(b + 1);
      r->cache->MarkDirty(*buf);
    }
    co_await r->cache->SyncAll();
  };
  rig.RunTask(body, &rig);
  // Every block's data must have survived eviction.
  for (uint32_t b = 0; b < 8; ++b) {
    BlockData d;
    rig.image.Read(2000 + b, &d);
    EXPECT_EQ(d[0], b + 1) << "block " << b;
  }
}

TEST(BufferCacheTest, ZeroBlockIsAllZeroes) {
  Rig rig;
  auto z = rig.cache->ZeroBlock();
  for (uint8_t byte : *z) {
    ASSERT_EQ(byte, 0);
  }
}

TEST(BufferCacheTest, LastWriteRequestTracksDriverId) {
  Rig rig;
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(80);
    buf->data()[0] = 1;
    r->cache->MarkDirty(*buf);
    uint64_t id = co_await r->cache->Bawrite(buf);
    EXPECT_EQ(r->cache->LastWriteRequest(*buf), id);
  };
  rig.RunTask(body, &rig);
}

// A DepHooks that counts invocations and substitutes a marker source.
class CountingHooks : public DepHooks {
 public:
  std::shared_ptr<const BlockData> PrepareWrite(Buf& buf) override {
    (void)buf;
    ++prepares;
    if (!substitute) {
      return nullptr;
    }
    auto alt = std::make_shared<BlockData>();
    alt->fill(0xee);
    return alt;
  }
  void WriteDone(Buf& buf) override {
    (void)buf;
    ++dones;
  }
  void BufferAccessed(Buf& buf) override {
    (void)buf;
    ++accesses;
  }
  int prepares = 0;
  int dones = 0;
  int accesses = 0;
  bool substitute = false;
};

TEST(DepHooksTest, PrepareAndDoneCalledAroundWrite) {
  Rig rig;
  CountingHooks hooks;
  rig.cache->SetDepHooks(&hooks);
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(90);
    buf->data()[0] = 3;
    r->cache->MarkDirty(*buf);
    co_await r->cache->Bwrite(buf);
  };
  rig.RunTask(body, &rig);
  EXPECT_EQ(hooks.prepares, 1);
  EXPECT_EQ(hooks.dones, 1);
  EXPECT_GE(hooks.accesses, 1);
}

TEST(DepHooksTest, SubstituteSourceIsWrittenInsteadOfBuffer) {
  Rig rig;
  CountingHooks hooks;
  hooks.substitute = true;
  rig.cache->SetDepHooks(&hooks);
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(91);
    buf->data()[0] = 3;
    r->cache->MarkDirty(*buf);
    co_await r->cache->Bwrite(buf);
    // With a substitute source the buffer itself is never locked.
    EXPECT_FALSE(buf->io_locked());
  };
  rig.RunTask(body, &rig);
  BlockData d;
  rig.image.Read(91, &d);
  EXPECT_EQ(d[0], 0xee);
}

TEST(DepHooksTest, RolledBackBufferBlocksReaders) {
  Rig rig;
  // Hook that marks the buffer rolled back during writes.
  class RollbackHooks : public DepHooks {
   public:
    std::shared_ptr<const BlockData> PrepareWrite(Buf& buf) override {
      buf.MarkRolledBack();
      return nullptr;
    }
  };
  RollbackHooks hooks;
  rig.cache->SetDepHooks(&hooks);
  SimTime read_ok_at = -1;
  SimTime write_done_at = -1;
  auto body = [](Rig* r, SimTime* read_ok_at, SimTime* write_done_at) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(92);
    buf->data()[0] = 3;
    r->cache->MarkDirty(*buf);
    uint64_t id = co_await r->cache->Bawrite(buf);
    EXPECT_TRUE(buf->rolled_back());
    co_await r->cache->BeginRead(*buf);
    *read_ok_at = r->engine.Now();
    co_await r->driver->WaitFor(id);
    *write_done_at = r->engine.Now();
  };
  rig.RunTask(body, &rig, &read_ok_at, &write_done_at);
  EXPECT_EQ(read_ok_at, write_done_at);
}

TEST(SyncerTest, PassWritesPreviouslyMarkedBuffers) {
  Rig rig;
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(100);
    buf->data()[0] = 9;
    r->cache->MarkDirty(*buf);
    // Pass 1 marks; no writes yet.
    r->cache->SyncerPass(1.0);
    EXPECT_EQ(r->cache->stats().write_issues, 0u);
    // Pass 2 writes what pass 1 marked.
    r->cache->SyncerPass(1.0);
    EXPECT_EQ(r->cache->stats().write_issues, 1u);
    co_await r->driver->Drain();
  };
  rig.RunTask(body, &rig);
  BlockData d;
  rig.image.Read(100, &d);
  EXPECT_EQ(d[0], 9);
}

TEST(SyncerTest, DaemonFlushesDirtyBlockWithinSweep) {
  Rig rig;
  SyncerDaemon syncer(&rig.engine, rig.cache.get(), SyncerConfig{.sweep_seconds = 2});
  syncer.Start();
  auto body = [](Rig* r) -> Task<void> {
    BufRef buf = co_await r->cache->Bget(110);
    buf->data()[0] = 4;
    r->cache->MarkDirty(*buf);
  };
  rig.engine.Spawn(body(&rig), "writer");
  rig.engine.Run(Sec(10));
  syncer.Stop();
  BlockData d;
  rig.image.Read(110, &d);
  EXPECT_EQ(d[0], 4);
  EXPECT_GE(syncer.PassesRun(), 2u);
}

TEST(SyncerTest, WorkitemsRunBeforeNextPass) {
  Rig rig;
  SyncerDaemon syncer(&rig.engine, rig.cache.get());
  syncer.Start();
  int ran = 0;
  syncer.EnqueueWork([&ran]() -> Task<void> {
    ++ran;
    co_return;
  });
  rig.engine.Run(Msec(1500));
  syncer.Stop();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(syncer.WorkitemsRun(), 1u);
}

TEST(SyncerTest, WorkitemCanBlockOnIo) {
  Rig rig;
  SyncerDaemon syncer(&rig.engine, rig.cache.get());
  syncer.Start();
  bool finished = false;
  BufferCache* cache = rig.cache.get();
  syncer.EnqueueWork([cache, &finished]() -> Task<void> {
    BufRef buf = co_await cache->Bget(120);
    buf->data()[0] = 5;
    cache->MarkDirty(*buf);
    co_await cache->Bwrite(buf);
    finished = true;
  });
  rig.engine.Run(Sec(3));
  syncer.Stop();
  EXPECT_TRUE(finished);
}

TEST(SyncerTest, DrainWorkRunsChainedWorkitems) {
  Rig rig;
  SyncerDaemon syncer(&rig.engine, rig.cache.get());
  int stage = 0;
  syncer.EnqueueWork([&]() -> Task<void> {
    stage = 1;
    syncer.EnqueueWork([&]() -> Task<void> {
      stage = 2;
      co_return;
    });
    co_return;
  });
  auto body = [](SyncerDaemon* s) -> Task<void> { co_await s->DrainWork(); };
  rig.engine.Spawn(body(&syncer), "drain");
  rig.engine.Run();
  EXPECT_EQ(stage, 2);
}

}  // namespace
}  // namespace mufs
