// Cross-shard rename crash sweep: the two-shard ordered protocol
// (create-copy in the destination shard, durability barrier, unlink in
// the source shard) must leave every crash point recoverable under
// every scheme and queue depth. Two properties are checked at EVERY
// write boundary of the run:
//
//   1. each shard's file system is consistent under its own recovery
//      model (raw fsck-clean for the ordered schemes, repairable for
//      No Order and Async, clean after log replay for journaling), and
//   2. once the pre-rename state is durable, the file is reachable
//      under at least one of the two names (the protocol's rule-1
//      analogue; the delayed-write schemes promise nothing and are
//      exempt).
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "src/fsck/fsck.h"
#include "src/volume/sharded_fs.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

// Pinned cross-shard pair (asserted to differ mod 2 in volume_test.cc).
constexpr const char* kSrcLeaf = "alpha";
constexpr const char* kDstLeaf = "echo";

Task<void> CrossRenameWorkload(Machine& m, Proc& p) {
  (void)co_await m.vfs().Mkdir(p, "/d");
  Result<uint32_t> ino = co_await m.vfs().Create(p, std::string("/d/") + kSrcLeaf);
  if (ino.Ok()) {
    (void)co_await WriteTagged(m, p, ino.value(), 2 * kBlockSize);
  }
  // Starting state fully durable: the reachability guarantee binds from
  // here on.
  (void)co_await m.vfs().SyncEverything(p);
  (void)co_await m.vfs().Rename(p, std::string("/d/") + kSrcLeaf,
                                std::string("/d/") + kDstLeaf);
}

// Write count at which the pre-rename sync has completed. Deterministic,
// so one measuring run calibrates the whole sweep.
uint64_t MeasureSyncedWriteCount(const MachineConfig& cfg) {
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool synced = false;
  // The same op sequence as CrossRenameWorkload up to (and including)
  // the sync, so the write-count prefix matches the real runs.
  auto prefix = [](Machine* m, Proc* p, bool* synced) -> Task<void> {
    co_await m->Boot(*p);
    (void)co_await m->vfs().Mkdir(*p, "/d");
    Result<uint32_t> ino = co_await m->vfs().Create(*p, std::string("/d/") + kSrcLeaf);
    if (ino.Ok()) {
      (void)co_await WriteTagged(*m, *p, ino.value(), 2 * kBlockSize);
    }
    (void)co_await m->vfs().SyncEverything(*p);
    *synced = true;
  };
  m.engine().Spawn(prefix(&m, &p, &synced), "measure");
  m.engine().RunUntil([&] { return synced; });
  return m.image().WriteCount();
}

// True if `name` is a live entry of root-level directory `dir` in one
// shard's extracted region image (directories are mirrored, so every
// shard region resolves /dir locally).
bool RegionHasEntry(const DiskImage& img, const std::string& dir, const std::string& name) {
  BlockData blk;
  img.Read(0, &blk);
  SuperBlock sb;
  std::memcpy(&sb, blk.data(), sizeof(sb));
  auto find_in = [&img, &sb](uint32_t dino, const std::string& want, uint32_t* out) {
    BlockData itable;
    img.Read(sb.ItableBlock(dino), &itable);
    DiskInode di;
    std::memcpy(&di, itable.data() + sb.ItableOffset(dino), sizeof(di));
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      if (di.direct[i] == 0) {
        continue;
      }
      BlockData db;
      img.Read(di.direct[i], &db);
      for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
        DirEntry de;
        std::memcpy(&de, db.data() + e * kDirEntrySize, sizeof(de));
        if (de.ino != 0 && de.Name() == want) {
          *out = de.ino;
          return true;
        }
      }
    }
    return false;
  };
  uint32_t dino = 0;
  if (!find_in(kRootIno, dir, &dino)) {
    return false;
  }
  uint32_t fino = 0;
  return find_in(dino, name, &fino);
}

struct SweepCase {
  Scheme scheme;
  uint32_t queue_depth;
  const char* name;
};

class CrossShardRenameSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CrossShardRenameSweepTest, EveryCrashPointRecovers) {
  const SweepCase& c = GetParam();
  MachineConfig cfg;
  cfg.scheme = c.scheme;
  cfg.disks = 2;  // Two shards; the pinned leaves land on different ones.
  cfg.queue_depth = c.queue_depth;
  cfg.syncer.sweep_seconds = 2;

  // One machine for addressing (shard bases, ino stride, leaf routing).
  Machine geom(cfg);
  ASSERT_EQ(geom.NumShards(), 2u);
  const size_t s_src = geom.sharded()->ShardOfLeaf(kSrcLeaf);
  const size_t s_dst = geom.sharded()->ShardOfLeaf(kDstLeaf);
  ASSERT_NE(s_src, s_dst) << "leaves no longer cross-shard; re-pin them";

  CrashHarness harness(cfg);
  uint64_t total_writes = harness.MeasureWrites(CrossRenameWorkload);
  ASSERT_GT(total_writes, 5u);
  const uint64_t synced_writes = MeasureSyncedWriteCount(cfg);

  for (uint64_t w = 1; w <= total_writes; ++w) {
    DiskImage img = harness.CrashImageAtWrite(CrossRenameWorkload, w);
    std::vector<DiskImage> regions;
    for (size_t s = 0; s < geom.NumShards(); ++s) {
      if (c.scheme == Scheme::kJournaling) {
        (void)JournalRecovery(&img, geom.ShardBase(s)).Run();
      }
      regions.push_back(img.ExtractRegion(geom.ShardBase(s), geom.ShardBlocks()));
    }
    for (size_t s = 0; s < regions.size(); ++s) {
      FsckOptions opts;
      opts.tag_ino_base = static_cast<uint32_t>(s) * geom.InoStride();
      if (c.scheme == Scheme::kNoOrder || c.scheme == Scheme::kAsync) {
        // No integrity guarantee; the operational model is a repairing
        // fsck per shard.
        FsckRepairReport repair = FsckRepairer(&regions[s], opts).Repair();
        EXPECT_TRUE(repair.clean_after)
            << c.name << " crash@write " << w << ": shard " << s << " not repairable";
      } else {
        FsckReport report = FsckChecker(&regions[s], opts).Check();
        for (const auto& v : report.violations) {
          ADD_FAILURE() << c.name << " crash@write " << w << "/" << total_writes
                        << ": shard " << s << ": " << ToString(v.type) << ": " << v.detail;
        }
      }
    }
    // Delayed-write schemes (No Order, Async) may crash with a
    // destructive half of the rename on disk and the constructive half
    // still in memory, so the some-name-survives rule does not bind.
    if (c.scheme != Scheme::kNoOrder && c.scheme != Scheme::kAsync && w >= synced_writes) {
      EXPECT_TRUE(RegionHasEntry(regions[s_src], "d", kSrcLeaf) ||
                  RegionHasEntry(regions[s_dst], "d", kDstLeaf))
          << c.name << " crash@write " << w << "/" << total_writes
          << ": both names lost across the shard pair";
    }
    if (HasFailure()) {
      break;  // One broken crash point is enough output.
    }
  }
}

std::vector<SweepCase> AllSweepCases() {
  // Deque: stable addresses for the c_str() the cases point at.
  static std::deque<std::string> names;
  std::vector<SweepCase> cases;
  for (Scheme s : kAllSchemes) {
    for (uint32_t qd : {1u, 16u}) {
      names.push_back(std::string(SchemeName(s)) + "_q" + std::to_string(qd));
      cases.push_back({s, qd, names.back().c_str()});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesBothDepths, CrossShardRenameSweepTest,
    ::testing::ValuesIn(AllSweepCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) { return info.param.name; });

}  // namespace
}  // namespace mufs
