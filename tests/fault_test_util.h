// Shared harness for the fault-injection test battery:
//
//   - FaultRig / WaitOn: a bare engine+driver stack with a scripted
//     injector, for driver-level fault-semantics tests;
//   - RunFaultWorkload: runs the populate/copy/remove workload on one
//     Machine under a given scheme and fault rate, then audits the
//     surviving image with fsck.
#ifndef MUFS_TESTS_FAULT_TEST_UTIL_H_
#define MUFS_TESTS_FAULT_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/fault/fault_injector.h"
#include "src/fsck/fsck.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace mufs {

inline std::shared_ptr<const BlockData> MakeBlock(uint8_t fill) {
  auto b = std::make_shared<BlockData>();
  b->fill(fill);
  return b;
}

// Engine + model + image + injector + driver wired together. The injector
// is declared before the driver so it outlives it.
struct FaultRig {
  explicit FaultRig(FaultConfig fault_cfg = {}, DriverConfig cfg = {})
      : model(DiskGeometry{}),
        image(DiskGeometry{}.total_blocks),
        faults(fault_cfg) {
    cfg.faults = &faults;
    driver = std::make_unique<DiskDriver>(&engine, &model, &image, cfg);
  }
  Engine engine;
  DiskModel model;
  DiskImage image;
  FaultInjector faults;
  std::unique_ptr<DiskDriver> driver;

  uint64_t Write(uint32_t blk, uint8_t fill, OrderingTag tag = {}) {
    return driver->IssueWrite(blk, {MakeBlock(fill)}, tag);
  }
  uint64_t Counter(const char* name) { return driver->stats()->counter(name).value(); }
};

// Runs a waiter coroutine to completion and returns the terminal status
// of request `id` plus the simulated time WaitFor took.
struct WaitResult {
  IoStatus status = IoStatus::kOk;
  SimDuration elapsed = 0;
};

inline WaitResult WaitOn(FaultRig* rig, uint64_t id) {
  WaitResult out;
  bool done = false;
  auto body = [](FaultRig* rig, uint64_t id, WaitResult* out, bool* done) -> Task<void> {
    SimTime t0 = rig->engine.Now();
    out->status = co_await rig->driver->WaitFor(id);
    out->elapsed = rig->engine.Now() - t0;
    *done = true;
  };
  rig->engine.Spawn(body(rig, id, &out, &done), "waiter");
  rig->engine.Run();
  EXPECT_TRUE(done);
  return out;
}

struct FaultRunResult {
  FsStatus populate = FsStatus::kOk;
  FsStatus copy = FsStatus::kOk;
  FsStatus remove = FsStatus::kOk;
  uint64_t gave_up = 0;
  uint64_t retries = 0;
  uint64_t injected = 0;
  std::string stats_json;
  std::vector<DamageRecord> damage;  // The injector's silent-damage ledger.
  bool fsck_clean = false;         // Audit passed with no repairs needed.
  bool fsck_repaired_clean = false;  // Repairer brought the image clean.
  uint64_t fsck_fixes = 0;           // Repairs applied (0 when clean).
  uint64_t fsck_passes = 0;          // Repair passes to the fixpoint.
  std::string fsck_detail;
};

// "Complete or fail cleanly": every op either succeeded or reported the
// degradation as an I/O error — never a silent wrong answer.
inline bool CompleteOrCleanFail(FsStatus s) {
  return s == FsStatus::kOk || s == FsStatus::kIoError;
}

inline FaultRunResult RunFaultWorkloadWithConfig(Scheme scheme, const FaultConfig& fault,
                                                 const TreeSpec& tree,
                                                 uint32_t queue_depth = 1) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.queue_depth = queue_depth;
  cfg.fault = fault;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  FaultRunResult r;
  bool done = false;
  auto body = [](Machine* m, Proc* p, const TreeSpec* tree, FaultRunResult* r,
                 bool* done) -> Task<void> {
    co_await m->Boot(*p);
    r->populate = co_await PopulateTree(*m, *p, *tree, "/src");
    r->copy = co_await CopyTree(*m, *p, *tree, "/src", "/dst");
    r->remove = co_await RemoveTree(*m, *p, *tree, "/dst");
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(body(&m, &p, &tree, &r, &done), "w");
  m.engine().RunUntil([&] { return done; });

  r.gave_up = m.stats().counter("driver.gave_up").value();
  r.retries = m.stats().counter("driver.retries").value();
  r.injected = m.stats().counter("fault.injected").value();
  r.stats_json = m.DumpStatsJson();
  if (m.faults() != nullptr) {
    r.damage = m.faults()->Damage();
  }

  DiskImage snap = m.CrashNow();
  FsckOptions fo;
  FsckReport report = FsckChecker(&snap, fo).Check();
  r.fsck_clean = report.Clean();
  if (!r.fsck_clean) {
    for (const auto& v : report.violations) {
      r.fsck_detail += std::string(ToString(v.type)) + ": " + v.detail + "\n";
    }
    FsckRepairReport fixed = FsckRepairer(&snap, fo).Repair();
    r.fsck_repaired_clean = fixed.clean_after;
    r.fsck_fixes = fixed.TotalFixes();
    r.fsck_passes = fixed.passes;
  }
  return r;
}

inline FaultRunResult RunFaultWorkload(Scheme scheme, double rate, uint64_t fault_seed,
                                       const TreeSpec& tree, uint32_t queue_depth = 1) {
  FaultConfig fault;
  if (rate > 0) {
    fault = FaultConfig::Uniform(rate, fault_seed);
  }
  return RunFaultWorkloadWithConfig(scheme, fault, tree, queue_depth);
}

// A small tree keeps the 18-configuration tier-1 sweep fast; the slow
// sweep uses a larger one.
inline TreeSpec SmallFaultTree() {
  TreeGenOptions opts;
  opts.file_count = 24;
  opts.total_bytes = 240'000;
  opts.dir_count = 5;
  return GenerateTree(opts);
}

inline TreeSpec MediumFaultTree() {
  TreeGenOptions opts;
  opts.file_count = 120;
  opts.total_bytes = 1'200'000;
  opts.dir_count = 12;
  return GenerateTree(opts);
}

}  // namespace mufs

#endif  // MUFS_TESTS_FAULT_TEST_UTIL_H_
