// Shared harness for the fault-injection test battery: runs the
// populate/copy/remove workload on one Machine under a given scheme and
// fault rate, then audits the surviving image with fsck.
#ifndef MUFS_TESTS_FAULT_TEST_UTIL_H_
#define MUFS_TESTS_FAULT_TEST_UTIL_H_

#include <string>

#include "src/fsck/fsck.h"
#include "src/workload/workloads.h"

namespace mufs {

struct FaultRunResult {
  FsStatus populate = FsStatus::kOk;
  FsStatus copy = FsStatus::kOk;
  FsStatus remove = FsStatus::kOk;
  uint64_t gave_up = 0;
  uint64_t retries = 0;
  uint64_t injected = 0;
  std::string stats_json;
  bool fsck_clean = false;         // Audit passed with no repairs needed.
  bool fsck_repaired_clean = false;  // Repairer brought the image clean.
  std::string fsck_detail;
};

// "Complete or fail cleanly": every op either succeeded or reported the
// degradation as an I/O error — never a silent wrong answer.
inline bool CompleteOrCleanFail(FsStatus s) {
  return s == FsStatus::kOk || s == FsStatus::kIoError;
}

inline FaultRunResult RunFaultWorkload(Scheme scheme, double rate, uint64_t fault_seed,
                                       const TreeSpec& tree, uint32_t queue_depth = 1) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.queue_depth = queue_depth;
  if (rate > 0) {
    cfg.fault = FaultConfig::Uniform(rate, fault_seed);
  }
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  FaultRunResult r;
  bool done = false;
  auto body = [](Machine* m, Proc* p, const TreeSpec* tree, FaultRunResult* r,
                 bool* done) -> Task<void> {
    co_await m->Boot(*p);
    r->populate = co_await PopulateTree(*m, *p, *tree, "/src");
    r->copy = co_await CopyTree(*m, *p, *tree, "/src", "/dst");
    r->remove = co_await RemoveTree(*m, *p, *tree, "/dst");
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(body(&m, &p, &tree, &r, &done), "w");
  m.engine().RunUntil([&] { return done; });

  r.gave_up = m.stats().counter("driver.gave_up").value();
  r.retries = m.stats().counter("driver.retries").value();
  r.injected = m.stats().counter("fault.injected").value();
  r.stats_json = m.DumpStatsJson();

  DiskImage snap = m.CrashNow();
  FsckOptions fo;
  FsckReport report = FsckChecker(&snap, fo).Check();
  r.fsck_clean = report.Clean();
  if (!r.fsck_clean) {
    for (const auto& v : report.violations) {
      r.fsck_detail += std::string(ToString(v.type)) + ": " + v.detail + "\n";
    }
    FsckRepairReport fixed = FsckRepairer(&snap, fo).Repair();
    r.fsck_repaired_clean = fixed.clean_after;
  }
  return r;
}

// A small tree keeps the 18-configuration tier-1 sweep fast; the slow
// sweep uses a larger one.
inline TreeSpec SmallFaultTree() {
  TreeGenOptions opts;
  opts.file_count = 24;
  opts.total_bytes = 240'000;
  opts.dir_count = 5;
  return GenerateTree(opts);
}

inline TreeSpec MediumFaultTree() {
  TreeGenOptions opts;
  opts.file_count = 120;
  opts.total_bytes = 1'200'000;
  opts.dir_count = 12;
  return GenerateTree(opts);
}

}  // namespace mufs

#endif  // MUFS_TESTS_FAULT_TEST_UTIL_H_
