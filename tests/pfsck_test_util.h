// Shared helpers for the parallel-fsck equivalence battery: a metadata
// churn workload that produces rich crash states (duplicate claims,
// dangling entries, orphans, directory trees), plus comparators that
// assert a parallel FsckReport / repaired image is BYTE-identical to the
// serial one - same findings in the same order with the same detail
// strings, same counters, same stable-storage bytes.
#ifndef MUFS_TESTS_PFSCK_TEST_UTIL_H_
#define MUFS_TESTS_PFSCK_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "src/fsck/fsck.h"
#include "src/fsck/pfsck.h"
#include "src/workload/workloads.h"

namespace mufs {

// Metadata churn with phase boundaries the syncer can flush between:
// creates, partial deletes, reuse in a second directory, renames, a
// create/remove burst and directory churn. Tagged data throughout, so
// check_stale_data sweeps are meaningful. Uses the vfs surface - runs
// unchanged on single-disk and sharded machines.
inline Task<void> PfsckChurn(Machine& m, Proc& p) {
  (void)co_await m.vfs().Mkdir(p, "/a");
  (void)co_await m.vfs().Mkdir(p, "/b");
  (void)co_await m.vfs().Mkdir(p, "/a/deep");
  (void)co_await CreateFiles(m, p, "/a", 12, 2 * kBlockSize);
  (void)co_await CreateFiles(m, p, "/a/deep", 4, kBlockSize);
  co_await m.engine().Sleep(Sec(4));
  for (int i = 0; i < 12; i += 2) {
    (void)co_await m.vfs().Unlink(p, "/a/c" + std::to_string(i));
  }
  co_await m.engine().Sleep(Sec(4));
  (void)co_await CreateFiles(m, p, "/b", 8, kBlockSize);
  co_await m.engine().Sleep(Sec(4));
  (void)co_await m.vfs().Rename(p, "/a/c1", "/a/renamed1");
  (void)co_await m.vfs().Rename(p, "/a/c3", "/b/moved3");
  (void)co_await CreateRemoveFiles(m, p, "/b", 6, kBlockSize);
  (void)co_await m.vfs().Mkdir(p, "/a/sub");
  (void)co_await m.vfs().Rmdir(p, "/a/sub");
}

// Asserts byte-identity of two FsckReports (not just set equality: the
// parallel checker must reproduce the serial ORDER and detail strings).
inline void ExpectReportsIdentical(const FsckReport& serial, const FsckReport& parallel,
                                   const std::string& context) {
  EXPECT_EQ(serial.inodes_in_use, parallel.inodes_in_use) << context;
  EXPECT_EQ(serial.dirs_seen, parallel.dirs_seen) << context;
  EXPECT_EQ(serial.files_seen, parallel.files_seen) << context;
  EXPECT_EQ(serial.blocks_claimed, parallel.blocks_claimed) << context;
  ASSERT_EQ(serial.violations.size(), parallel.violations.size()) << context;
  for (size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].type, parallel.violations[i].type)
        << context << " violation " << i;
    EXPECT_EQ(serial.violations[i].detail, parallel.violations[i].detail)
        << context << " violation " << i;
  }
  ASSERT_EQ(serial.fixables.size(), parallel.fixables.size()) << context;
  for (size_t i = 0; i < serial.fixables.size(); ++i) {
    EXPECT_EQ(serial.fixables[i].detail, parallel.fixables[i].detail)
        << context << " fixable " << i;
  }
}

inline void ExpectRepairReportsIdentical(const FsckRepairReport& serial,
                                         const FsckRepairReport& parallel,
                                         const std::string& context) {
  EXPECT_EQ(serial.passes, parallel.passes) << context;
  EXPECT_EQ(serial.dir_entries_cleared, parallel.dir_entries_cleared) << context;
  EXPECT_EQ(serial.link_counts_fixed, parallel.link_counts_fixed) << context;
  EXPECT_EQ(serial.inodes_cleared, parallel.inodes_cleared) << context;
  EXPECT_EQ(serial.pointers_cleared, parallel.pointers_cleared) << context;
  EXPECT_EQ(serial.data_blocks_scrubbed, parallel.data_blocks_scrubbed) << context;
  EXPECT_EQ(serial.bitmap_bits_fixed, parallel.bitmap_bits_fixed) << context;
  EXPECT_EQ(serial.clean_after, parallel.clean_after) << context;
}

// Strict stable-storage identity: the same set of ever-written blocks
// with the same bytes. (A parallel repair that "merely" converges to the
// same reachable tree but touches different blocks would still fail.)
inline void ExpectImagesIdentical(const DiskImage& a, const DiskImage& b,
                                  const std::string& context) {
  ASSERT_EQ(a.TotalBlocks(), b.TotalBlocks()) << context;
  std::vector<uint32_t> wa = a.WrittenBlocks();
  std::vector<uint32_t> wb = b.WrittenBlocks();
  ASSERT_EQ(wa, wb) << context << ": written-block sets differ";
  for (uint32_t blkno : wa) {
    BlockData da;
    BlockData db;
    a.Read(blkno, &da);
    b.Read(blkno, &db);
    ASSERT_EQ(memcmp(da.data(), db.data(), da.size()), 0)
        << context << ": block " << blkno << " differs";
  }
}

// The shard geometry of a machine configuration, for driving
// PfsckCheckSharded / PfsckRepairSharded directly against crash images.
inline ShardLayout LayoutOf(const MachineConfig& cfg) {
  Machine m(cfg);
  ShardLayout layout;
  layout.num_shards = static_cast<uint32_t>(m.NumShards());
  layout.shard_blocks = m.ShardBlocks();
  layout.ino_stride = m.InoStride();
  return layout;
}

}  // namespace mufs

#endif  // MUFS_TESTS_PFSCK_TEST_UTIL_H_
