// Integration tests for the file system, parameterized over all five
// metadata-update ordering schemes: every test must behave identically
// (semantics don't depend on the ordering discipline).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/fsck/fsck.h"

namespace mufs {
namespace {

// gtest ASSERT_* macros `return`, which is illegal inside a coroutine;
// these co_return instead.
// Arguments are evaluated exactly once (they typically contain co_await).
#define CO_ASSERT_TRUE(cond)                         \
  do {                                               \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    if (!co_assert_ok_) {                            \
      ADD_FAILURE() << "assertion failed: " #cond;   \
      co_return;                                     \
    }                                                \
  } while (0)
#define CO_ASSERT_EQ(a, b)                 \
  do {                                     \
    const auto co_assert_a_ = (a);         \
    const auto co_assert_b_ = (b);         \
    EXPECT_EQ(co_assert_a_, co_assert_b_); \
    if (!(co_assert_a_ == co_assert_b_)) { \
      co_return;                           \
    }                                      \
  } while (0)

using WorkloadFn = std::function<Task<void>(Machine&, Proc&)>;

void RunOnMachine(Machine& m, Proc& proc, WorkloadFn body) {
  bool done = false;
  auto wrap = [](Machine* m, Proc* p, WorkloadFn body, bool* done) -> Task<void> {
    co_await m->Boot(*p);
    co_await body(*m, *p);
    *done = true;
  };
  m.engine().Spawn(wrap(&m, &proc, std::move(body), &done), "test-workload");
  m.engine().RunUntil([&done] { return done; });
  ASSERT_TRUE(done) << "workload did not finish (deadlock?)";
}

class FsTest : public ::testing::TestWithParam<Scheme> {
 protected:
  MachineConfig Cfg() {
    MachineConfig c;
    c.scheme = GetParam();
    return c;
  }
};

TEST_P(FsTest, CreateAndLookup) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/hello.txt");
    CO_ASSERT_TRUE(ino.Ok());
    Result<uint32_t> found = co_await m.fs().Lookup(p, "/hello.txt");
    CO_ASSERT_TRUE(found.Ok());
    EXPECT_EQ(found.value(), ino.value());
    Result<StatInfo> st = co_await m.fs().Stat(p, "/hello.txt");
    CO_ASSERT_TRUE(st.Ok());
    EXPECT_EQ(st.value().type, FileType::kRegular);
    EXPECT_EQ(st.value().nlink, 1);
    EXPECT_EQ(st.value().size, 0u);
  });
}

TEST_P(FsTest, CreateDuplicateFails) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_TRUE((co_await m.fs().Create(p, "/a")).Ok());
    Result<uint32_t> dup = co_await m.fs().Create(p, "/a");
    EXPECT_EQ(dup.status(), FsStatus::kExists);
  });
}

TEST_P(FsTest, LookupMissingFails) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> r = co_await m.fs().Lookup(p, "/nope");
    EXPECT_EQ(r.status(), FsStatus::kNotFound);
  });
}

TEST_P(FsTest, WriteReadRoundTrip) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/data");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> out(10000);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>(i * 13);
    }
    Result<uint64_t> w = co_await m.fs().WriteFile(p, ino.value(), 0, out);
    CO_ASSERT_TRUE(w.Ok());
    EXPECT_EQ(w.value(), out.size());
    std::vector<uint8_t> in(out.size());
    Result<uint64_t> r = co_await m.fs().ReadFile(p, ino.value(), 0, in);
    CO_ASSERT_TRUE(r.Ok());
    EXPECT_EQ(r.value(), out.size());
    EXPECT_EQ(in, out);
  });
}

TEST_P(FsTest, WriteAtOffsetAndHoles) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/sparse");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> chunk(100, 0xab);
    // Write far into the file, leaving a hole.
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 3 * kBlockSize + 7, chunk)).Ok());
    Result<StatInfo> st = co_await m.fs().Stat(p, "/sparse");
    CO_ASSERT_TRUE(st.Ok());
    EXPECT_EQ(st.value().size, 3 * kBlockSize + 7 + 100);
    // The hole reads as zeroes.
    std::vector<uint8_t> in(50);
    Result<uint64_t> r = co_await m.fs().ReadFile(p, ino.value(), kBlockSize, in);
    CO_ASSERT_TRUE(r.Ok());
    for (uint8_t b : in) {
      CO_ASSERT_EQ(b, 0);
    }
    // The data reads back.
    Result<uint64_t> r2 = co_await m.fs().ReadFile(p, ino.value(), 3 * kBlockSize + 7, in);
    CO_ASSERT_TRUE(r2.Ok());
    for (uint8_t b : in) {
      CO_ASSERT_EQ(b, 0xab);
    }
  });
}

TEST_P(FsTest, LargeFileSpansIndirectBlocks) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/big");
    CO_ASSERT_TRUE(ino.Ok());
    // 80 blocks: 12 direct + 68 via the single indirect block.
    std::vector<uint8_t> block(kBlockSize);
    for (uint32_t lbn = 0; lbn < 80; ++lbn) {
      for (size_t i = 0; i < block.size(); ++i) {
        block[i] = static_cast<uint8_t>(lbn + i);
      }
      CO_ASSERT_TRUE(
          (co_await m.fs().WriteFile(p, ino.value(), uint64_t{lbn} * kBlockSize, block)).Ok());
    }
    // Spot-check an indirect-range block.
    std::vector<uint8_t> in(kBlockSize);
    CO_ASSERT_TRUE((co_await m.fs().ReadFile(p, ino.value(), uint64_t{50} * kBlockSize, in)).Ok());
    for (size_t i = 0; i < 100; ++i) {
      CO_ASSERT_EQ(in[i], static_cast<uint8_t>(50 + i));
    }
  });
}

TEST_P(FsTest, DoubleIndirectFile) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/huge");
    CO_ASSERT_TRUE(ino.Ok());
    // One block far in the double-indirect range.
    uint64_t lbn = kNumDirect + kPtrsPerBlock + 5;
    std::vector<uint8_t> block(kBlockSize, 0x5a);
    CO_ASSERT_TRUE(
        (co_await m.fs().WriteFile(p, ino.value(), lbn * kBlockSize, block)).Ok());
    std::vector<uint8_t> in(kBlockSize);
    CO_ASSERT_TRUE((co_await m.fs().ReadFile(p, ino.value(), lbn * kBlockSize, in)).Ok());
    EXPECT_EQ(in[0], 0x5a);
    EXPECT_EQ(in[kBlockSize - 1], 0x5a);
  });
}

TEST_P(FsTest, MkdirAndNestedCreate) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/a"), FsStatus::kOk);
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/a/b"), FsStatus::kOk);
    CO_ASSERT_TRUE((co_await m.fs().Create(p, "/a/b/c.txt")).Ok());
    Result<StatInfo> st = co_await m.fs().Stat(p, "/a/b/c.txt");
    CO_ASSERT_TRUE(st.Ok());
    EXPECT_EQ(st.value().type, FileType::kRegular);
    Result<StatInfo> da = co_await m.fs().Stat(p, "/a");
    CO_ASSERT_TRUE(da.Ok());
    EXPECT_EQ(da.value().nlink, 3);  // Self + ".." of /a/b.
  });
}

TEST_P(FsTest, ReadDirListsEntries) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/d"), FsStatus::kOk);
    for (int i = 0; i < 5; ++i) {
      CO_ASSERT_TRUE((co_await m.fs().Create(p, "/d/f" + std::to_string(i))).Ok());
    }
    Result<std::vector<DirEntryInfo>> entries = co_await m.fs().ReadDir(p, "/d");
    CO_ASSERT_TRUE(entries.Ok());
    EXPECT_EQ(entries.value().size(), 5u);
  });
}

TEST_P(FsTest, DirectoryGrowsPastOneBlock) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/big"), FsStatus::kOk);
    // kDirEntriesPerBlock = 64; create 150 entries -> 3 blocks.
    for (int i = 0; i < 150; ++i) {
      CO_ASSERT_TRUE((co_await m.fs().Create(p, "/big/file" + std::to_string(i))).Ok());
    }
    Result<std::vector<DirEntryInfo>> entries = co_await m.fs().ReadDir(p, "/big");
    CO_ASSERT_TRUE(entries.Ok());
    EXPECT_EQ(entries.value().size(), 150u);
    // And every one resolves.
    Result<uint32_t> r = co_await m.fs().Lookup(p, "/big/file149");
    EXPECT_TRUE(r.Ok());
  });
}

TEST_P(FsTest, UnlinkRemovesEntryAndFreesSpace) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/victim");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> data(3 * kBlockSize, 1);
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 0, data)).Ok());
    uint64_t allocated = m.fs().op_stats().blocks_allocated;
    CO_ASSERT_EQ(co_await m.fs().Unlink(p, "/victim"), FsStatus::kOk);
    EXPECT_EQ((co_await m.fs().Lookup(p, "/victim")).status(), FsStatus::kNotFound);
    // Deferred schemes free the blocks only after protecting writes land:
    // force everything out and verify the space came back.
    co_await m.fs().SyncEverything(p);
    EXPECT_EQ(m.fs().op_stats().blocks_freed, 3u);
    EXPECT_GE(allocated, 3u);
  });
}

TEST_P(FsTest, UnlinkOneOfTwoLinksKeepsFile) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/orig");
    CO_ASSERT_TRUE(ino.Ok());
    CO_ASSERT_EQ(co_await m.fs().Link(p, "/orig", "/alias"), FsStatus::kOk);
    Result<StatInfo> st = co_await m.fs().Stat(p, "/orig");
    CO_ASSERT_TRUE(st.Ok());
    EXPECT_EQ(st.value().nlink, 2);
    CO_ASSERT_EQ(co_await m.fs().Unlink(p, "/orig"), FsStatus::kOk);
    co_await m.fs().SyncEverything(p);
    Result<StatInfo> st2 = co_await m.fs().Stat(p, "/alias");
    CO_ASSERT_TRUE(st2.Ok());
    EXPECT_EQ(st2.value().nlink, 1);
    EXPECT_EQ(st2.value().ino, ino.value());
  });
}

TEST_P(FsTest, RmdirOnlyWhenEmpty) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/d"), FsStatus::kOk);
    CO_ASSERT_TRUE((co_await m.fs().Create(p, "/d/f")).Ok());
    EXPECT_EQ(co_await m.fs().Rmdir(p, "/d"), FsStatus::kNotEmpty);
    CO_ASSERT_EQ(co_await m.fs().Unlink(p, "/d/f"), FsStatus::kOk);
    EXPECT_EQ(co_await m.fs().Rmdir(p, "/d"), FsStatus::kOk);
    co_await m.fs().SyncEverything(p);
    EXPECT_EQ((co_await m.fs().Lookup(p, "/d")).status(), FsStatus::kNotFound);
    Result<StatInfo> root = co_await m.fs().Stat(p, "/");
    CO_ASSERT_TRUE(root.Ok());
    EXPECT_EQ(root.value().nlink, 2);  // Subdir link returned.
  });
}

TEST_P(FsTest, RenameWithinDirectory) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/old");
    CO_ASSERT_TRUE(ino.Ok());
    CO_ASSERT_EQ(co_await m.fs().Rename(p, "/old", "/new"), FsStatus::kOk);
    EXPECT_EQ((co_await m.fs().Lookup(p, "/old")).status(), FsStatus::kNotFound);
    Result<uint32_t> found = co_await m.fs().Lookup(p, "/new");
    CO_ASSERT_TRUE(found.Ok());
    EXPECT_EQ(found.value(), ino.value());
    co_await m.fs().SyncEverything(p);
    Result<StatInfo> st = co_await m.fs().Stat(p, "/new");
    CO_ASSERT_TRUE(st.Ok());
    EXPECT_EQ(st.value().nlink, 1);  // Temporary bump released.
  });
}

TEST_P(FsTest, RenameAcrossDirectories) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/src"), FsStatus::kOk);
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/dst"), FsStatus::kOk);
    Result<uint32_t> ino = co_await m.fs().Create(p, "/src/f");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> data(100, 7);
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 0, data)).Ok());
    CO_ASSERT_EQ(co_await m.fs().Rename(p, "/src/f", "/dst/g"), FsStatus::kOk);
    EXPECT_EQ((co_await m.fs().Lookup(p, "/src/f")).status(), FsStatus::kNotFound);
    Result<uint32_t> moved = co_await m.fs().Lookup(p, "/dst/g");
    CO_ASSERT_TRUE(moved.Ok());
    EXPECT_EQ(moved.value(), ino.value());
    std::vector<uint8_t> in(100);
    CO_ASSERT_TRUE((co_await m.fs().ReadFile(p, moved.value(), 0, in)).Ok());
    EXPECT_EQ(in[0], 7);
  });
}

TEST_P(FsTest, RenameDirectoryUpdatesParentLinks) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/a"), FsStatus::kOk);
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/b"), FsStatus::kOk);
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/a/sub"), FsStatus::kOk);
    CO_ASSERT_EQ(co_await m.fs().Rename(p, "/a/sub", "/b/sub"), FsStatus::kOk);
    co_await m.fs().SyncEverything(p);
    Result<StatInfo> a = co_await m.fs().Stat(p, "/a");
    Result<StatInfo> b = co_await m.fs().Stat(p, "/b");
    CO_ASSERT_TRUE(a.Ok());
    CO_ASSERT_TRUE(b.Ok());
    EXPECT_EQ(a.value().nlink, 2);
    EXPECT_EQ(b.value().nlink, 3);
    EXPECT_TRUE((co_await m.fs().Lookup(p, "/b/sub")).Ok());
  });
}

TEST_P(FsTest, TruncateToZeroFreesBlocks) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/t");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> data(5 * kBlockSize, 9);
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 0, data)).Ok());
    CO_ASSERT_EQ(co_await m.fs().Truncate(p, ino.value(), 0), FsStatus::kOk);
    Result<StatInfo> st = co_await m.fs().Stat(p, "/t");
    CO_ASSERT_TRUE(st.Ok());
    EXPECT_EQ(st.value().size, 0u);
    co_await m.fs().SyncEverything(p);
    EXPECT_EQ(m.fs().op_stats().blocks_freed, 5u);
    // Old contents are gone.
    std::vector<uint8_t> in(10);
    Result<uint64_t> r = co_await m.fs().ReadFile(p, ino.value(), 0, in);
    CO_ASSERT_TRUE(r.Ok());
    EXPECT_EQ(r.value(), 0u);
  });
}

TEST_P(FsTest, PartialTruncateKeepsPrefix) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Create(p, "/pt");
    CO_ASSERT_TRUE(ino.Ok());
    // 20 blocks (into the indirect range), truncate to 2 blocks.
    std::vector<uint8_t> data(20 * kBlockSize);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i / kBlockSize + 1);
    }
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 0, data)).Ok());
    CO_ASSERT_EQ(co_await m.fs().Truncate(p, ino.value(), 2 * kBlockSize), FsStatus::kOk);
    std::vector<uint8_t> in(kBlockSize);
    CO_ASSERT_TRUE((co_await m.fs().ReadFile(p, ino.value(), kBlockSize, in)).Ok());
    EXPECT_EQ(in[0], 2);
    Result<uint64_t> past = co_await m.fs().ReadFile(p, ino.value(), 3 * kBlockSize, in);
    CO_ASSERT_TRUE(past.Ok());
    EXPECT_EQ(past.value(), 0u);
    co_await m.fs().SyncEverything(p);
    // 18 data blocks + the indirect block freed.
    EXPECT_EQ(m.fs().op_stats().blocks_freed, 19u);
  });
}

TEST_P(FsTest, BlocksAreReusedAfterFree) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> a = co_await m.fs().Create(p, "/a");
    CO_ASSERT_TRUE(a.Ok());
    std::vector<uint8_t> data(4 * kBlockSize, 1);
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, a.value(), 0, data)).Ok());
    CO_ASSERT_EQ(co_await m.fs().Unlink(p, "/a"), FsStatus::kOk);
    co_await m.fs().SyncEverything(p);  // Deferred frees complete.
    uint64_t freed = m.fs().op_stats().blocks_freed;
    EXPECT_EQ(freed, 4u);
    // New allocations succeed and round-trip.
    Result<uint32_t> b = co_await m.fs().Create(p, "/b");
    CO_ASSERT_TRUE(b.Ok());
    CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, b.value(), 0, data)).Ok());
    std::vector<uint8_t> in(4 * kBlockSize);
    CO_ASSERT_TRUE((co_await m.fs().ReadFile(p, b.value(), 0, in)).Ok());
    EXPECT_EQ(in[100], 1);
  });
}

TEST_P(FsTest, FsckCleanAfterShutdown) {
  Machine m(Cfg());
  Proc p = m.MakeProc("u");
  RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/d1"), FsStatus::kOk);
    CO_ASSERT_EQ(co_await m.fs().Mkdir(p, "/d1/d2"), FsStatus::kOk);
    for (int i = 0; i < 20; ++i) {
      Result<uint32_t> ino = co_await m.fs().Create(p, "/d1/f" + std::to_string(i));
      CO_ASSERT_TRUE(ino.Ok());
      std::vector<uint8_t> data(1000 + i * 100, static_cast<uint8_t>(i));
      CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 0, data)).Ok());
    }
    for (int i = 0; i < 10; ++i) {
      CO_ASSERT_EQ(co_await m.fs().Unlink(p, "/d1/f" + std::to_string(i)), FsStatus::kOk);
    }
    CO_ASSERT_EQ(co_await m.fs().Rename(p, "/d1/f15", "/d1/d2/moved"), FsStatus::kOk);
    co_await m.Shutdown(p);
  });
  DiskImage snapshot = m.CrashNow();
  FsckChecker checker(&snapshot);
  FsckReport report = checker.Check();
  for (const auto& v : report.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.files_seen, 10u);
  EXPECT_EQ(report.dirs_seen, 3u);  // root, d1, d2.
  // After a clean shutdown even the bitmaps agree.
  EXPECT_TRUE(report.fixables.empty())
      << "first fixable: " << report.fixables.front().detail;
}

TEST_P(FsTest, ImageRemountsAfterShutdown) {
  MachineConfig cfg1;
  cfg1.scheme = GetParam();
  DiskImage saved(cfg1.geometry.total_blocks);
  {
    Machine m(cfg1);
    Proc p = m.MakeProc("u");
    RunOnMachine(m, p, [](Machine& m, Proc& p) -> Task<void> {
      Result<uint32_t> ino = co_await m.fs().Create(p, "/persist");
      CO_ASSERT_TRUE(ino.Ok());
      std::vector<uint8_t> data(2 * kBlockSize, 0x42);
      CO_ASSERT_TRUE((co_await m.fs().WriteFile(p, ino.value(), 0, data)).Ok());
      co_await m.Shutdown(p);
    });
    saved = m.CrashNow();
  }
  // Boot a second machine (same scheme) on the saved image.
  MachineConfig cfg2 = cfg1;
  cfg2.format = false;
  Machine m2(cfg2);
  m2.LoadImage(saved);
  Proc p2 = m2.MakeProc("u2");
  RunOnMachine(m2, p2, [](Machine& m, Proc& p) -> Task<void> {
    Result<uint32_t> ino = co_await m.fs().Lookup(p, "/persist");
    CO_ASSERT_TRUE(ino.Ok());
    std::vector<uint8_t> in(2 * kBlockSize);
    Result<uint64_t> r = co_await m.fs().ReadFile(p, ino.value(), 0, in);
    CO_ASSERT_TRUE(r.Ok());
    EXPECT_EQ(r.value(), in.size());
    EXPECT_EQ(in[0], 0x42);
    EXPECT_EQ(in[in.size() - 1], 0x42);
  });
}

TEST_P(FsTest, ConcurrentUsersInSeparateDirs) {
  Machine m(Cfg());
  Proc boot = m.MakeProc("boot");
  bool booted = false;
  auto boot_task = [](Machine* m, Proc* p, bool* done) -> Task<void> {
    co_await m->Boot(*p);
    *done = true;
  };
  m.engine().Spawn(boot_task(&m, &boot, &booted), "boot");
  m.engine().RunUntil([&] { return booted; });

  constexpr int kUsers = 4;
  std::vector<Proc> procs;
  procs.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    procs.push_back(m.MakeProc("user" + std::to_string(u)));
  }
  int finished = 0;
  auto user_task = [](Machine* m, Proc* p, int u, int* finished) -> Task<void> {
    std::string dir = "/u" + std::to_string(u);
    FsStatus s = co_await m->fs().Mkdir(*p, dir);
    EXPECT_EQ(s, FsStatus::kOk);
    for (int i = 0; i < 25; ++i) {
      Result<uint32_t> ino = co_await m->fs().Create(*p, dir + "/f" + std::to_string(i));
      EXPECT_TRUE(ino.Ok());
      std::vector<uint8_t> data(1024, static_cast<uint8_t>(u));
      EXPECT_TRUE((co_await m->fs().WriteFile(*p, ino.value(), 0, data)).Ok());
    }
    for (int i = 0; i < 25; i += 2) {
      EXPECT_EQ(co_await m->fs().Unlink(*p, dir + "/f" + std::to_string(i)), FsStatus::kOk);
    }
    ++*finished;
  };
  for (int u = 0; u < kUsers; ++u) {
    m.engine().Spawn(user_task(&m, &procs[u], u, &finished), "user");
  }
  m.engine().RunUntil([&] { return finished == kUsers; });
  ASSERT_EQ(finished, kUsers);

  // Flush and audit.
  bool synced = false;
  auto sync_task = [](Machine* m, Proc* p, bool* done) -> Task<void> {
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(sync_task(&m, &boot, &synced), "sync");
  m.engine().RunUntil([&] { return synced; });
  ASSERT_TRUE(synced);

  DiskImage snapshot = m.CrashNow();
  FsckReport report = FsckChecker(&snapshot).Check();
  for (const auto& v : report.violations) {
    ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
  }
  EXPECT_EQ(report.files_seen, kUsers * 12u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FsTest,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return std::string(SchemeName(info.param));
                         });

}  // namespace
}  // namespace mufs
