// Adversarial scenario matrix (slow): every ordering scheme against the
// silent-damage fault kinds (torn writes, misdirected writes), at queue
// depths 1 and 16, across the workload personalities and the classic
// copy workload - plus power-cut sweeps through the protocol windows the
// schemes are most proud of (journal checkpoints, syncer flush bursts)
// and torn mid-write crash sweeps.
//
// The contract asserted everywhere is complete-or-clean-recovery:
//   - no request is ever abandoned by the driver;
//   - whatever the damage did to the image, the scheme's recovery path
//     (journal replay for kJournaling, then fsck repair to a fixpoint)
//     brings it back to a clean audit in a bounded number of passes;
//   - journaling recovers power-cut-during-checkpoint crashes by replay
//     ALONE (zero fsck repairs) - the ring is not reclaimed until the
//     checkpoint fully lands - and torn log damage is detected
//     (torn_tail) rather than half-applied.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "tests/fault_test_util.h"

namespace mufs {
namespace {

// Sweeps iterate mufs::kAllSchemes (machine.h).

FaultConfig TornOnly(double rate, uint64_t seed) {
  FaultConfig f;
  f.torn_write_rate = rate;
  f.seed = seed;
  return f;
}

FaultConfig MisdirectOnly(double rate, uint64_t seed) {
  FaultConfig f;
  f.misdirect_rate = rate;
  f.seed = seed;
  return f;
}

// ---------------------------------------------------------------------
// Cell runner: one machine, one workload body, one fault config; then
// the scheme's own recovery path over the crash snapshot.
// ---------------------------------------------------------------------

using Body = std::function<Task<FsStatus>(Machine&, Proc&)>;

using PersonalityFn = Task<FsStatus> (*)(Machine&, Proc&, const std::string&, uint64_t,
                                         int, PersonalityOpMix*);

struct NamedBody {
  const char* name;
  Body body;
};

Body PersonalityBody(PersonalityFn fn, uint64_t seed, int ops) {
  return [fn, seed, ops](Machine& m, Proc& p) -> Task<FsStatus> {
    co_return co_await fn(m, p, "/w", seed, ops, nullptr);
  };
}

Body CopyBody(const TreeSpec* tree) {
  return [tree](Machine& m, Proc& p) -> Task<FsStatus> {
    FsStatus s = co_await PopulateTree(m, p, *tree, "/src");
    if (s != FsStatus::kOk) {
      co_return s;
    }
    co_return co_await CopyTree(m, p, *tree, "/src", "/dst");
  };
}

std::vector<NamedBody> MatrixWorkloads(const TreeSpec* tree) {
  return {
      {"mail", PersonalityBody(&MailServerWorkload, 11, 80)},
      {"build", PersonalityBody(&BuildFarmWorkload, 11, 40)},
      {"webasset", PersonalityBody(&WebAssetSwapWorkload, 11, 80)},
      {"cachecleanup", PersonalityBody(&CacheCleanupWorkload, 11, 100)},
      {"copy", CopyBody(tree)},
  };
}

struct CellResult {
  FsStatus status = FsStatus::kOk;
  uint64_t gave_up = 0;
  std::vector<DamageRecord> damage;
  JournalReplayReport replay;
  bool clean = false;
  bool repaired_clean = false;
  uint64_t fixes = 0;
  int passes = 0;
  std::string detail;
};

CellResult RunCell(Scheme scheme, const FaultConfig& fault, uint32_t depth,
                   const Body& body) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.queue_depth = depth;
  cfg.fault = fault;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  CellResult r;
  bool done = false;
  auto root = [](Machine* m, Proc* p, const Body* body, CellResult* r,
                 bool* done) -> Task<void> {
    co_await m->Boot(*p);
    r->status = co_await (*body)(*m, *p);
    co_await m->Shutdown(*p);
    *done = true;
  };
  m.engine().Spawn(root(&m, &p, &body, &r, &done), "w");
  m.engine().RunUntil([&] { return done; });

  r.gave_up = m.stats().counter("driver.gave_up").value();
  if (m.faults() != nullptr) {
    r.damage = m.faults()->Damage();
  }
  DiskImage snap = m.CrashNow();
  if (scheme == Scheme::kJournaling) {
    r.replay = JournalRecovery(&snap).Run();
  }
  FsckOptions fo;
  FsckReport report = FsckChecker(&snap, fo).Check();
  r.clean = report.Clean();
  if (!r.clean) {
    for (const auto& v : report.violations) {
      r.detail += std::string(ToString(v.type)) + ": " + v.detail + "\n";
    }
    FsckRepairReport fixed = FsckRepairer(&snap, fo).Repair();
    r.repaired_clean = fixed.clean_after;
    r.fixes = fixed.TotalFixes();
    r.passes = fixed.passes;
  }
  return r;
}

void SweepSilentDamage(const FaultConfig& fault, FaultKind expect_kind) {
  TreeSpec tree = SmallFaultTree();
  std::vector<NamedBody> workloads = MatrixWorkloads(&tree);
  uint64_t total_damage = 0;
  for (Scheme s : kAllSchemes) {
    for (uint32_t depth : {1u, 16u}) {
      for (const NamedBody& wl : workloads) {
        SCOPED_TRACE(std::string(SchemeName(s)) + " depth=" + std::to_string(depth) +
                     " wl=" + wl.name);
        CellResult r = RunCell(s, fault, depth, wl.body);
        // The device lied with kOk everywhere: nothing was abandoned,
        // and the personalities completed (the copy workload may surface
        // damage as a failed op, which is also an acceptable outcome).
        EXPECT_EQ(r.gave_up, 0u);
        if (std::string(wl.name) != "copy") {
          EXPECT_EQ(r.status, FsStatus::kOk);
        }
        // The ledger classified every hit as the configured kind, and a
        // misdirected write never lands on the superblock.
        for (const auto& d : r.damage) {
          EXPECT_EQ(d.kind, expect_kind);
          if (d.kind == FaultKind::kMisdirected) {
            EXPECT_NE(d.victim, 0u);
          }
        }
        total_damage += r.damage.size();
        // Complete-or-clean-recovery: the audit is clean, or repair
        // converges clean in a bounded number of passes.
        EXPECT_TRUE(r.clean || r.repaired_clean) << r.detail;
        if (!r.clean) {
          EXPECT_LE(r.passes, 10);
        }
      }
    }
  }
  EXPECT_GT(total_damage, 0u) << "the sweep never injected damage - vacuous";
}

TEST(ScenarioMatrixTest, TornWritesAcrossSchemesDepthsAndWorkloads) {
  SweepSilentDamage(TornOnly(0.01, 5), FaultKind::kTornWrite);
}

TEST(ScenarioMatrixTest, MisdirectedWritesAcrossSchemesDepthsAndWorkloads) {
  SweepSilentDamage(MisdirectOnly(0.01, 5), FaultKind::kMisdirected);
}

// Determinism of a whole matrix cell: same seed, same cell, identical
// damage ledger and identical recovery outcome.
TEST(ScenarioMatrixTest, MatrixCellsAreDeterministic) {
  TreeSpec tree = SmallFaultTree();
  Body wl = PersonalityBody(&MailServerWorkload, 11, 80);
  CellResult a = RunCell(Scheme::kSoftUpdates, TornOnly(0.01, 5), 16, wl);
  CellResult b = RunCell(Scheme::kSoftUpdates, TornOnly(0.01, 5), 16, wl);
  ASSERT_EQ(a.damage.size(), b.damage.size());
  for (size_t i = 0; i < a.damage.size(); ++i) {
    EXPECT_EQ(a.damage[i].blkno, b.damage[i].blkno);
    EXPECT_EQ(a.damage[i].victim, b.damage[i].victim);
  }
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.fixes, b.fixes);
}

// ---------------------------------------------------------------------
// Power cut during a journal checkpoint. The checkpoint protocol flushes
// the cache, drains the driver and only then restamps the horizon; the
// ring is never reclaimed before the restamp lands. Crashing anywhere
// inside that window must therefore recover by replay ALONE - the fsck
// audit after replay is clean with nothing to repair.
// ---------------------------------------------------------------------

CrashHarness::Workload MailCrashWorkload(uint64_t seed, int ops) {
  return [seed, ops](Machine& m, Proc& p) -> Task<void> {
    (void)co_await MailServerWorkload(m, p, "/mail", seed, ops, nullptr);
  };
}

// Mail alone re-dirties a small working set of metadata blocks, so its
// commit txns dedupe down to a trickle that never wraps even a tiny log.
// Prepending a tree populate spreads the txns across many distinct
// inode/dir/bitmap blocks - real log traffic that forces checkpoints.
CrashHarness::Workload CheckpointCrashWorkload(const TreeSpec* tree, uint64_t seed,
                                               int ops) {
  return [tree, seed, ops](Machine& m, Proc& p) -> Task<void> {
    (void)co_await PopulateTree(m, p, *tree, "/src");
    (void)co_await MailServerWorkload(m, p, "/mail", seed, ops, nullptr);
  };
}

TEST(ScenarioMatrixTest, PowerCutDuringCheckpointRecoversByReplayAlone) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kJournaling;
  cfg.journal_log_blocks = 32;  // Tiny ring: the workload wraps it often.
  cfg.journal_commit_interval = Msec(20);  // Many small txns fill it faster.
  cfg.syncer.sweep_seconds = 3;
  CrashHarness harness(cfg);
  TreeSpec tree = MediumFaultTree();
  CrashHarness::Workload wl = CheckpointCrashWorkload(&tree, 11, 200);

  uint64_t checkpoints = harness.MeasureCounter(wl, "journal.checkpoints");
  ASSERT_GE(checkpoints, 2u) << "workload too small to wrap the tiny log";

  // Walk crash points through the first checkpoint's window (its cache
  // flush, driver drain and horizon restamp), and through a late one.
  for (uint64_t checkpoint : {uint64_t{1}, checkpoints}) {
    for (uint64_t extra : {0u, 1u, 2u, 3u, 5u, 8u, 13u, 21u}) {
      SCOPED_TRACE("checkpoint=" + std::to_string(checkpoint) +
                   " extra_writes=" + std::to_string(extra));
      CrashResult r = harness.RunAndCrashAtCheckpoint(wl, checkpoint, extra);
      EXPECT_TRUE(r.replay.journal_present);
      for (const auto& v : r.report.violations) {
        ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
      }
      EXPECT_TRUE(r.report.Clean())
          << "checkpoint crash must recover by replay alone, with zero repairs";
    }
  }
}

// ---------------------------------------------------------------------
// Power cut during syncer flush windows for the non-journaling schemes:
// the syncer pass is where deferred ordered writes burst out, so these
// are the schemes' own protocol edges. Write-boundary crashes there must
// uphold each scheme's established guarantee: no integrity violations
// for the ordered schemes, repairable-clean for No Order and Async
// (whose crash contract is repair plus the bounded-staleness invariant,
// proven separately in async_contract_test).
// ---------------------------------------------------------------------

TEST(ScenarioMatrixTest, PowerCutDuringSyncerFlushWindows) {
  for (Scheme s : {Scheme::kConventional, Scheme::kSchedulerFlag,
                   Scheme::kSchedulerChains, Scheme::kSoftUpdates, Scheme::kNoOrder,
                   Scheme::kAsync}) {
    MachineConfig cfg;
    cfg.scheme = s;
    CrashHarness harness(cfg);
    CrashHarness::Workload wl = MailCrashWorkload(11, 120);
    for (uint64_t extra : {0u, 2u, 5u, 9u, 14u}) {
      SCOPED_TRACE(std::string(SchemeName(s)) + " extra_writes=" + std::to_string(extra));
      DiskImage img = harness.CrashImageAtCounter(wl, "syncer.passes", 2, extra);
      FsckOptions fo;
      FsckReport report = FsckChecker(&img, fo).Check();
      if (s == Scheme::kNoOrder || s == Scheme::kAsync) {
        if (!report.Clean()) {
          FsckRepairReport fixed = FsckRepairer(&img, fo).Repair();
          EXPECT_TRUE(fixed.clean_after)
              << SchemeName(s) << " flush-window crash not repairable";
        }
      } else {
        for (const auto& v : report.violations) {
          ADD_FAILURE() << ToString(v.type) << ": " << v.detail;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Torn mid-write crash sweeps: the cord is pulled DURING the Nth device
// write, so the crash image holds a half-persisted block. This violates
// the atomic-write-unit assumption every scheme's proof leans on, so the
// contract weakens to complete-or-clean-recovery: replay (journaling)
// plus fsck repair must converge clean at every sampled crash point.
// ---------------------------------------------------------------------

std::vector<uint64_t> SamplePoints(uint64_t total, int want) {
  std::vector<uint64_t> points;
  if (total == 0) {
    return points;
  }
  uint64_t step = std::max<uint64_t>(1, total / static_cast<uint64_t>(want));
  for (uint64_t w = 1; w <= total; w += step) {
    points.push_back(w);
  }
  return points;
}

TEST(ScenarioMatrixTest, TornMidWriteCrashSweepAllSchemes) {
  for (Scheme s : kAllSchemes) {
    MachineConfig cfg;
    cfg.scheme = s;
    if (s == Scheme::kJournaling) {
      cfg.journal_commit_interval = Msec(250);
    }
    CrashHarness harness(cfg);
    CrashHarness::Workload wl = MailCrashWorkload(11, 100);
    uint64_t total_writes = harness.MeasureWrites(wl);
    ASSERT_GT(total_writes, 10u);
    int torn_tails_seen = 0;
    for (uint64_t w : SamplePoints(total_writes, 12)) {
      SCOPED_TRACE(std::string(SchemeName(s)) + " torn@write " + std::to_string(w) + "/" +
                   std::to_string(total_writes));
      DiskImage img = harness.CrashImageAtWriteTorn(wl, w);
      EXPECT_EQ(img.TornWriteCount(), 1u);
      if (s == Scheme::kJournaling) {
        JournalReplayReport replay = JournalRecovery(&img).Run();
        EXPECT_TRUE(replay.journal_present);
        if (replay.torn_tail) {
          ++torn_tails_seen;  // Torn log damage detected, not half-applied.
        }
      }
      FsckOptions fo;
      FsckReport report = FsckChecker(&img, fo).Check();
      if (!report.Clean()) {
        FsckRepairReport fixed = FsckRepairer(&img, fo).Repair();
        EXPECT_TRUE(fixed.clean_after)
            << "torn crash state not repairable; first violation: "
            << (report.violations.empty() ? "?" : report.violations[0].detail);
        EXPECT_LE(fixed.passes, 10);
      }
    }
    if (s == Scheme::kJournaling) {
      // The detection claim must be non-vacuous: somewhere in the sweep
      // the log itself was damaged mid-commit and replay noticed.
      EXPECT_GT(torn_tails_seen, 0)
          << "no torn log tail ever detected across the sweep";
    }
  }
}

// The torn twin of a write-boundary crash differs from the whole-write
// crash image only in the one torn block - a cheap cross-check that the
// arming machinery tears exactly the write it was asked to.
TEST(ScenarioMatrixTest, TornImageDiffersOnlyInTheTornBlock) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  CrashHarness harness(cfg);
  CrashHarness::Workload wl = MailCrashWorkload(11, 60);
  uint64_t total = harness.MeasureWrites(wl);
  ASSERT_GT(total, 20u);
  uint64_t w = total / 2;
  DiskImage whole = harness.CrashImageAtWrite(wl, w);
  DiskImage torn = harness.CrashImageAtWriteTorn(wl, w);
  EXPECT_EQ(whole.TornWriteCount(), 0u);
  EXPECT_EQ(torn.TornWriteCount(), 1u);
  EXPECT_EQ(whole.WriteCount(), torn.WriteCount());
  int blocks_differing = 0;
  for (uint32_t b = 0; b < whole.TotalBlocks(); ++b) {
    if (!whole.EverWritten(b) && !torn.EverWritten(b)) {
      continue;
    }
    BlockData wb, tb;
    whole.Read(b, &wb);
    torn.Read(b, &tb);
    if (wb != tb) {
      ++blocks_differing;
      // The torn block agrees on the sector prefix and differs only in
      // the stale tail.
      EXPECT_TRUE(std::equal(wb.begin(), wb.begin() + kTornPersistBytes, tb.begin()));
    }
  }
  EXPECT_LE(blocks_differing, 1);
}

}  // namespace
}  // namespace mufs
