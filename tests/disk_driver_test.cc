// Unit tests for the disk driver: scheduling, merging, and every ordering
// discipline from the paper's section 3.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/sim/engine.h"

namespace mufs {
namespace {

std::shared_ptr<const BlockData> MakeBlock(uint8_t fill) {
  auto b = std::make_shared<BlockData>();
  b->fill(fill);
  return b;
}

// Small fixture wiring an engine, model, image and driver together.
struct Rig {
  explicit Rig(DriverConfig cfg = {}) : model(DiskGeometry{}), image(DiskGeometry{}.total_blocks) {
    driver = std::make_unique<DiskDriver>(&engine, &model, &image, cfg);
  }
  Engine engine;
  DiskModel model;
  DiskImage image;
  std::unique_ptr<DiskDriver> driver;

  uint64_t Write(uint32_t blk, uint8_t fill, OrderingTag tag = {}) {
    return driver->IssueWrite(blk, {MakeBlock(fill)}, tag);
  }
};

// Completion order of a set of requests, by recording trace order.
std::vector<uint32_t> CompletionBlocks(const Rig& rig) {
  std::vector<uint32_t> out;
  for (const auto& t : rig.driver->Traces()) {
    out.push_back(t.blkno);
  }
  return out;
}

TEST(DriverBasicTest, WriteReachesImage) {
  Rig rig;
  rig.Write(10, 0xab);
  rig.engine.Run();
  BlockData d;
  rig.image.Read(10, &d);
  EXPECT_EQ(d[0], 0xab);
  EXPECT_EQ(rig.driver->TotalRequests(), 1u);
}

TEST(DriverBasicTest, ReadReturnsImageContent) {
  Rig rig;
  BlockData src;
  src.fill(0x5c);
  rig.image.Write(20, src, 0);
  BlockData dst;
  dst.fill(0);
  rig.driver->IssueRead(20, &dst);
  rig.engine.Run();
  EXPECT_EQ(dst[0], 0x5c);
}

TEST(DriverBasicTest, WaitForBlocksUntilComplete) {
  Rig rig;
  bool after_wait = false;
  auto body = [](Rig* rig, bool* after) -> Task<void> {
    uint64_t id = rig->driver->IssueWrite(30, {MakeBlock(1)});
    co_await rig->driver->WaitFor(id);
    EXPECT_TRUE(rig->driver->IsComplete(id));
    *after = true;
  };
  rig.engine.Spawn(body(&rig, &after_wait), "w");
  rig.engine.Run();
  EXPECT_TRUE(after_wait);
}

TEST(DriverBasicTest, WaitForCompletedRequestReturnsImmediately) {
  Rig rig;
  uint64_t id = rig.Write(31, 2);
  rig.engine.Run();
  bool done = false;
  auto body = [](Rig* rig, uint64_t id, bool* done) -> Task<void> {
    co_await rig->driver->WaitFor(id);
    *done = true;
  };
  rig.engine.Spawn(body(&rig, id, &done), "w");
  rig.engine.Run();
  EXPECT_TRUE(done);
}

TEST(DriverBasicTest, IsrRunsAtCompletion) {
  Rig rig;
  int calls = 0;
  rig.driver->IssueWrite(40, {MakeBlock(1)}, {}, [&] { ++calls; });
  rig.engine.Run();
  EXPECT_EQ(calls, 1);
}

TEST(DriverBasicTest, DrainWaitsForEmptyQueue) {
  Rig rig;
  for (int i = 0; i < 5; ++i) {
    rig.Write(100 + static_cast<uint32_t>(i) * 50, 1);
  }
  bool drained = false;
  auto body = [](Rig* rig, bool* drained) -> Task<void> {
    co_await rig->driver->Drain();
    EXPECT_EQ(rig->driver->PendingCount(), 0u);
    *drained = true;
  };
  rig.engine.Spawn(body(&rig, &drained), "drain");
  rig.engine.Run();
  EXPECT_TRUE(drained);
}

TEST(DriverSchedulingTest, CLookOrdersByBlockNumber) {
  Rig rig;
  // Issue far-apart writes in scrambled order within one event tick; the
  // C-LOOK pass should service them in ascending block order.
  rig.Write(5000, 1);
  rig.Write(1000, 2);
  rig.Write(9000, 3);
  rig.Write(3000, 4);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{1000, 3000, 5000, 9000}));
}

TEST(DriverSchedulingTest, SequentialWritesMergeIntoOneRequest) {
  Rig rig;
  rig.Write(200, 1);
  rig.Write(201, 2);
  rig.Write(202, 3);
  rig.engine.Run();
  EXPECT_EQ(rig.driver->MergedRequests(), 2u);
  ASSERT_EQ(rig.driver->Traces().size(), 1u);
  EXPECT_EQ(rig.driver->Traces()[0].count, 3u);
  BlockData d;
  rig.image.Read(202, &d);
  EXPECT_EQ(d[0], 3);
}

TEST(DriverSchedulingTest, MergeRespectsSizeCap) {
  Rig rig;
  for (uint32_t i = 0; i < 20; ++i) {
    rig.Write(300 + i, static_cast<uint8_t>(i));
  }
  rig.engine.Run();
  // 16-block cap: 20 sequential blocks need at least two device requests.
  EXPECT_GE(rig.driver->Traces().size(), 2u);
  for (const auto& t : rig.driver->Traces()) {
    EXPECT_LE(t.count, 16u);
  }
}

TEST(DriverSchedulingTest, FlaggedWritesDoNotMerge) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  rig.Write(400, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(401, 2, OrderingTag{.flag = true, .deps = {}});
  rig.engine.Run();
  EXPECT_EQ(rig.driver->Traces().size(), 2u);
}

TEST(DriverFlagTest, PartHoldsLaterRequestsUntilFlaggedCompletes) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  // Flagged write at a far position, then a near write issued after it.
  // C-LOOK alone would service 100 first; Part semantics forbid it.
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 2);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 100}));
}

TEST(DriverFlagTest, PartAllowsEarlierRequestsToFloat) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  // Non-flagged issued first at far position, then flagged. Part lets the
  // flagged request be serviced before the earlier non-flagged one if the
  // scheduler prefers, and lets the earlier one reorder with later ones.
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 3);
  rig.engine.Run();
  // 200 (flagged) must precede 100 (issued after it). 9000 is free; C-LOOK
  // from origin 0 picks 200 first, then 100... 100 < 200 so after wrap.
  auto blocks = CompletionBlocks(rig);
  ASSERT_EQ(blocks.size(), 3u);
  auto pos = [&](uint32_t b) {
    return std::find(blocks.begin(), blocks.end(), b) - blocks.begin();
  };
  EXPECT_LT(pos(200), pos(100));
}

TEST(DriverFlagTest, FullActsAsBarrierBothDirections) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kFull}};
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 3);
  rig.engine.Run();
  // Full: 9000 (before flag) must complete before 200; 100 after 200.
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{9000, 200, 100}));
}

TEST(DriverFlagTest, BackHoldsLaterBehindFlagAndItsPredecessors) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kBack}};
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 3);
  rig.engine.Run();
  auto blocks = CompletionBlocks(rig);
  auto pos = [&](uint32_t b) {
    return std::find(blocks.begin(), blocks.end(), b) - blocks.begin();
  };
  // 100 (after flag) must follow both 200 and 200's predecessor 9000.
  EXPECT_LT(pos(200), pos(100));
  EXPECT_LT(pos(9000), pos(100));
}

TEST(DriverFlagTest, BackAllowsFlaggedToFloatWithPredecessors) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kBack}};
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.engine.Run();
  // Back (unlike Full) lets the flagged request run before the earlier
  // non-flagged one; C-LOOK prefers 200 from origin 0.
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{200, 9000}));
}

TEST(DriverFlagTest, ReadsWaitBehindBarrierWithoutNr) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag,
                       .semantics = FlagSemantics::kPart,
                       .reads_bypass = false}};
  BlockData out;
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueRead(100, &out);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 100}));
}

TEST(DriverFlagTest, NrLetsNonConflictingReadBypass) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag,
                       .semantics = FlagSemantics::kPart,
                       .reads_bypass = true}};
  BlockData out;
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueRead(100, &out);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{100, 5000}));
}

TEST(DriverFlagTest, NrConflictingReadDoesNotBypass) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag,
                       .semantics = FlagSemantics::kPart,
                       .reads_bypass = true}};
  BlockData out;
  rig.Write(5000, 7, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueRead(5000, &out);  // Same block: must see the write.
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 5000}));
  EXPECT_EQ(out[0], 7);
}

TEST(DriverChainTest, DependentRequestWaitsForDependency) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t first = rig.Write(5000, 1);
  rig.Write(100, 2, OrderingTag{.flag = false, .deps = {first}});
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 100}));
}

TEST(DriverChainTest, IndependentRequestsReorderFreely) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  rig.Write(5000, 1);
  rig.Write(100, 2);  // No deps: C-LOOK takes 100 first.
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{100, 5000}));
}

TEST(DriverChainTest, ChainOfThreeServicesInOrder) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(9000, 1);
  uint64_t b = rig.Write(5000, 2, OrderingTag{.flag = false, .deps = {a}});
  rig.Write(100, 3, OrderingTag{.flag = false, .deps = {b}});
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{9000, 5000, 100}));
}

TEST(DriverChainTest, DependencyOnCompletedRequestIsSatisfied) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(100, 1);
  rig.engine.Run();
  rig.Write(200, 2, OrderingTag{.flag = false, .deps = {a}});
  rig.engine.Run();
  EXPECT_EQ(rig.driver->Traces().size(), 2u);
}

TEST(DriverChainTest, ReadsNeverBlockedByChains) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(9000, 1);
  rig.Write(5000, 2, OrderingTag{.flag = false, .deps = {a}});
  BlockData out;
  rig.driver->IssueRead(100, &out);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig).front(), 100u);
}

TEST(DriverChainTest, DiamondDependencyRespected) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(9000, 1);
  uint64_t b = rig.Write(7000, 2, OrderingTag{.flag = false, .deps = {a}});
  uint64_t c = rig.Write(5000, 3, OrderingTag{.flag = false, .deps = {a}});
  rig.Write(100, 4, OrderingTag{.flag = false, .deps = {b, c}});
  rig.engine.Run();
  auto blocks = CompletionBlocks(rig);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks.front(), 9000u);
  EXPECT_EQ(blocks.back(), 100u);
}

TEST(DriverIgnoreTest, NoneModeIgnoresFlags) {
  Rig rig{DriverConfig{.mode = OrderingMode::kNone}};
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 2);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{100, 5000}));
}

TEST(DriverTraceTest, ResponseTimeDecomposes) {
  Rig rig;
  rig.Write(1000, 1);
  rig.engine.Run();
  const auto& t = rig.driver->Traces().at(0);
  EXPECT_EQ(t.QueueDelay() + t.AccessTime(), t.ResponseTime());
  EXPECT_GT(t.AccessTime(), 0);
}

TEST(DriverTraceTest, HasPendingWriteSeesQueuedRange) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(600, 2);
  EXPECT_TRUE(rig.driver->HasPendingWrite(600));
  EXPECT_FALSE(rig.driver->HasPendingWrite(601));
  rig.engine.Run();
  EXPECT_FALSE(rig.driver->HasPendingWrite(600));
}

}  // namespace
}  // namespace mufs
