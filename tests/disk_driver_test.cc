// Unit tests for the disk driver: scheduling, merging, and every ordering
// discipline from the paper's section 3.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/sim/engine.h"

namespace mufs {
namespace {

std::shared_ptr<const BlockData> MakeBlock(uint8_t fill) {
  auto b = std::make_shared<BlockData>();
  b->fill(fill);
  return b;
}

// Small fixture wiring an engine, model, image and driver together.
struct Rig {
  explicit Rig(DriverConfig cfg = {}) : model(DiskGeometry{}), image(DiskGeometry{}.total_blocks) {
    driver = std::make_unique<DiskDriver>(&engine, &model, &image, cfg);
  }
  Engine engine;
  DiskModel model;
  DiskImage image;
  std::unique_ptr<DiskDriver> driver;

  uint64_t Write(uint32_t blk, uint8_t fill, OrderingTag tag = {}) {
    return driver->IssueWrite(blk, {MakeBlock(fill)}, tag);
  }
};

// Completion order of a set of requests, by recording trace order.
std::vector<uint32_t> CompletionBlocks(const Rig& rig) {
  std::vector<uint32_t> out;
  for (const auto& t : rig.driver->Traces()) {
    out.push_back(t.blkno);
  }
  return out;
}

TEST(DriverBasicTest, WriteReachesImage) {
  Rig rig;
  rig.Write(10, 0xab);
  rig.engine.Run();
  BlockData d;
  rig.image.Read(10, &d);
  EXPECT_EQ(d[0], 0xab);
  EXPECT_EQ(rig.driver->TotalRequests(), 1u);
}

TEST(DriverBasicTest, ReadReturnsImageContent) {
  Rig rig;
  BlockData src;
  src.fill(0x5c);
  rig.image.Write(20, src, 0);
  BlockData dst;
  dst.fill(0);
  rig.driver->IssueRead(20, &dst);
  rig.engine.Run();
  EXPECT_EQ(dst[0], 0x5c);
}

TEST(DriverBasicTest, WaitForBlocksUntilComplete) {
  Rig rig;
  bool after_wait = false;
  auto body = [](Rig* rig, bool* after) -> Task<void> {
    uint64_t id = rig->driver->IssueWrite(30, {MakeBlock(1)});
    co_await rig->driver->WaitFor(id);
    EXPECT_TRUE(rig->driver->IsComplete(id));
    *after = true;
  };
  rig.engine.Spawn(body(&rig, &after_wait), "w");
  rig.engine.Run();
  EXPECT_TRUE(after_wait);
}

TEST(DriverBasicTest, WaitForCompletedRequestReturnsImmediately) {
  Rig rig;
  uint64_t id = rig.Write(31, 2);
  rig.engine.Run();
  bool done = false;
  auto body = [](Rig* rig, uint64_t id, bool* done) -> Task<void> {
    co_await rig->driver->WaitFor(id);
    *done = true;
  };
  rig.engine.Spawn(body(&rig, id, &done), "w");
  rig.engine.Run();
  EXPECT_TRUE(done);
}

TEST(DriverBasicTest, IsrRunsAtCompletion) {
  Rig rig;
  int calls = 0;
  rig.driver->IssueWrite(40, {MakeBlock(1)}, {}, [&](IoStatus) { ++calls; });
  rig.engine.Run();
  EXPECT_EQ(calls, 1);
}

TEST(DriverBasicTest, DrainWaitsForEmptyQueue) {
  Rig rig;
  for (int i = 0; i < 5; ++i) {
    rig.Write(100 + static_cast<uint32_t>(i) * 50, 1);
  }
  bool drained = false;
  auto body = [](Rig* rig, bool* drained) -> Task<void> {
    co_await rig->driver->Drain();
    EXPECT_EQ(rig->driver->PendingCount(), 0u);
    *drained = true;
  };
  rig.engine.Spawn(body(&rig, &drained), "drain");
  rig.engine.Run();
  EXPECT_TRUE(drained);
}

TEST(DriverSchedulingTest, CLookOrdersByBlockNumber) {
  Rig rig;
  // Issue far-apart writes in scrambled order within one event tick; the
  // C-LOOK pass should service them in ascending block order.
  rig.Write(5000, 1);
  rig.Write(1000, 2);
  rig.Write(9000, 3);
  rig.Write(3000, 4);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{1000, 3000, 5000, 9000}));
}

TEST(DriverSchedulingTest, SequentialWritesMergeIntoOneRequest) {
  Rig rig;
  rig.Write(200, 1);
  rig.Write(201, 2);
  rig.Write(202, 3);
  rig.engine.Run();
  EXPECT_EQ(rig.driver->MergedRequests(), 2u);
  ASSERT_EQ(rig.driver->Traces().size(), 1u);
  EXPECT_EQ(rig.driver->Traces()[0].count, 3u);
  BlockData d;
  rig.image.Read(202, &d);
  EXPECT_EQ(d[0], 3);
}

TEST(DriverSchedulingTest, MergeRespectsSizeCap) {
  Rig rig;
  for (uint32_t i = 0; i < 20; ++i) {
    rig.Write(300 + i, static_cast<uint8_t>(i));
  }
  rig.engine.Run();
  // 16-block cap: 20 sequential blocks need at least two device requests.
  EXPECT_GE(rig.driver->Traces().size(), 2u);
  for (const auto& t : rig.driver->Traces()) {
    EXPECT_LE(t.count, 16u);
  }
}

TEST(DriverSchedulingTest, FlaggedWritesDoNotMerge) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  rig.Write(400, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(401, 2, OrderingTag{.flag = true, .deps = {}});
  rig.engine.Run();
  EXPECT_EQ(rig.driver->Traces().size(), 2u);
}

TEST(DriverFlagTest, PartHoldsLaterRequestsUntilFlaggedCompletes) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  // Flagged write at a far position, then a near write issued after it.
  // C-LOOK alone would service 100 first; Part semantics forbid it.
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 2);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 100}));
}

TEST(DriverFlagTest, PartAllowsEarlierRequestsToFloat) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  // Non-flagged issued first at far position, then flagged. Part lets the
  // flagged request be serviced before the earlier non-flagged one if the
  // scheduler prefers, and lets the earlier one reorder with later ones.
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 3);
  rig.engine.Run();
  // 200 (flagged) must precede 100 (issued after it). 9000 is free; C-LOOK
  // from origin 0 picks 200 first, then 100... 100 < 200 so after wrap.
  auto blocks = CompletionBlocks(rig);
  ASSERT_EQ(blocks.size(), 3u);
  auto pos = [&](uint32_t b) {
    return std::find(blocks.begin(), blocks.end(), b) - blocks.begin();
  };
  EXPECT_LT(pos(200), pos(100));
}

TEST(DriverFlagTest, FullActsAsBarrierBothDirections) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kFull}};
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 3);
  rig.engine.Run();
  // Full: 9000 (before flag) must complete before 200; 100 after 200.
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{9000, 200, 100}));
}

TEST(DriverFlagTest, BackHoldsLaterBehindFlagAndItsPredecessors) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kBack}};
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 3);
  rig.engine.Run();
  auto blocks = CompletionBlocks(rig);
  auto pos = [&](uint32_t b) {
    return std::find(blocks.begin(), blocks.end(), b) - blocks.begin();
  };
  // 100 (after flag) must follow both 200 and 200's predecessor 9000.
  EXPECT_LT(pos(200), pos(100));
  EXPECT_LT(pos(9000), pos(100));
}

TEST(DriverFlagTest, BackAllowsFlaggedToFloatWithPredecessors) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kBack}};
  rig.Write(9000, 1);
  rig.Write(200, 2, OrderingTag{.flag = true, .deps = {}});
  rig.engine.Run();
  // Back (unlike Full) lets the flagged request run before the earlier
  // non-flagged one; C-LOOK prefers 200 from origin 0.
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{200, 9000}));
}

TEST(DriverFlagTest, ReadsWaitBehindBarrierWithoutNr) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag,
                       .semantics = FlagSemantics::kPart,
                       .reads_bypass = false}};
  BlockData out;
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueRead(100, &out);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 100}));
}

TEST(DriverFlagTest, NrLetsNonConflictingReadBypass) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag,
                       .semantics = FlagSemantics::kPart,
                       .reads_bypass = true}};
  BlockData out;
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueRead(100, &out);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{100, 5000}));
}

TEST(DriverFlagTest, NrConflictingReadDoesNotBypass) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag,
                       .semantics = FlagSemantics::kPart,
                       .reads_bypass = true}};
  BlockData out;
  rig.Write(5000, 7, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueRead(5000, &out);  // Same block: must see the write.
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 5000}));
  EXPECT_EQ(out[0], 7);
}

TEST(DriverChainTest, DependentRequestWaitsForDependency) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t first = rig.Write(5000, 1);
  rig.Write(100, 2, OrderingTag{.flag = false, .deps = {first}});
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{5000, 100}));
}

TEST(DriverChainTest, IndependentRequestsReorderFreely) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  rig.Write(5000, 1);
  rig.Write(100, 2);  // No deps: C-LOOK takes 100 first.
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{100, 5000}));
}

TEST(DriverChainTest, ChainOfThreeServicesInOrder) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(9000, 1);
  uint64_t b = rig.Write(5000, 2, OrderingTag{.flag = false, .deps = {a}});
  rig.Write(100, 3, OrderingTag{.flag = false, .deps = {b}});
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{9000, 5000, 100}));
}

TEST(DriverChainTest, DependencyOnCompletedRequestIsSatisfied) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(100, 1);
  rig.engine.Run();
  rig.Write(200, 2, OrderingTag{.flag = false, .deps = {a}});
  rig.engine.Run();
  EXPECT_EQ(rig.driver->Traces().size(), 2u);
}

TEST(DriverChainTest, ReadsNeverBlockedByChains) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(9000, 1);
  rig.Write(5000, 2, OrderingTag{.flag = false, .deps = {a}});
  BlockData out;
  rig.driver->IssueRead(100, &out);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig).front(), 100u);
}

TEST(DriverChainTest, DiamondDependencyRespected) {
  Rig rig{DriverConfig{.mode = OrderingMode::kChains}};
  uint64_t a = rig.Write(9000, 1);
  uint64_t b = rig.Write(7000, 2, OrderingTag{.flag = false, .deps = {a}});
  uint64_t c = rig.Write(5000, 3, OrderingTag{.flag = false, .deps = {a}});
  rig.Write(100, 4, OrderingTag{.flag = false, .deps = {b, c}});
  rig.engine.Run();
  auto blocks = CompletionBlocks(rig);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks.front(), 9000u);
  EXPECT_EQ(blocks.back(), 100u);
}

TEST(DriverIgnoreTest, NoneModeIgnoresFlags) {
  Rig rig{DriverConfig{.mode = OrderingMode::kNone}};
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(100, 2);
  rig.engine.Run();
  EXPECT_EQ(CompletionBlocks(rig), (std::vector<uint32_t>{100, 5000}));
}

TEST(DriverTraceTest, ResponseTimeDecomposes) {
  Rig rig;
  rig.Write(1000, 1);
  rig.engine.Run();
  const auto& t = rig.driver->Traces().at(0);
  EXPECT_EQ(t.QueueDelay() + t.AccessTime(), t.ResponseTime());
  EXPECT_GT(t.AccessTime(), 0);
}

// ---------------------------------------------------------------------
// Trace-record property tests: reconstruct driver behaviour from the
// stats registry's JSONL trace and check scheduling invariants over whole
// runs instead of hand-picked completion orders.
// ---------------------------------------------------------------------

// A Rig whose driver shares an external registry with tracing on.
struct TracedRig {
  explicit TracedRig(DriverConfig cfg = {})
      : model(DiskGeometry{}), image(DiskGeometry{}.total_blocks) {
    stats.SetClock([this] { return engine.Now(); });
    stats.EnableTrace();
    cfg.stats = &stats;
    driver = std::make_unique<DiskDriver>(&engine, &model, &image, cfg);
  }
  Engine engine;
  DiskModel model;
  DiskImage image;
  StatsRegistry stats;
  std::unique_ptr<DiskDriver> driver;
};

bool IsEvent(const std::string& line, std::string_view event) {
  return line.find("\"event\":\"" + std::string(event) + "\"") != std::string::npos;
}

int64_t Field(const std::string& line, const std::string& key) {
  size_t pos = line.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(line.c_str() + pos + key.size() + 3);
}

TEST(DriverTracePropertyTest, CLookNeverServicesOutOfSweepOrder) {
  TracedRig rig;  // kNone: every pending request is eligible.
  // Scrambled far-apart single-block writes (no two adjacent, so nothing
  // concatenates) issued in bursts, so picks happen against many
  // different pending sets.
  auto body = [](TracedRig* rig) -> Task<void> {
    constexpr uint32_t kBlocks[] = {9000, 120, 5400, 30,   7700, 2300, 880, 6100,
                                    40,   3500, 9900, 1500, 260,  4800, 710};
    int i = 0;
    for (uint32_t b : kBlocks) {
      rig->driver->IssueWrite(b, {MakeBlock(1)});
      if (++i % 3 == 0) {
        co_await rig->engine.Sleep(Usec(1500));
      }
    }
  };
  rig.engine.Spawn(body(&rig), "issuer");
  rig.engine.Run();

  // Replay the trace: `pending` is exactly the queue content at each
  // service decision (the service record is emitted at pick time, with no
  // suspension in between, so stream order is decision order).
  std::map<int64_t, int64_t> pending;  // id -> blkno.
  int services = 0;
  for (const std::string& line : rig.stats.trace_lines()) {
    if (IsEvent(line, "disk.issue")) {
      pending[Field(line, "id")] = Field(line, "blkno");
    } else if (IsEvent(line, "disk.service")) {
      int64_t id = Field(line, "id");
      int64_t blkno = Field(line, "blkno");
      int64_t origin = Field(line, "origin");
      ASSERT_TRUE(pending.contains(id)) << line;
      pending.erase(id);
      // C-LOOK: nothing pending may lie between the sweep origin and the
      // chosen block (forward), and a wrap pick must mean the forward
      // window was empty AND the pick is the lowest pending block.
      for (const auto& [pid, pblk] : pending) {
        if (blkno >= origin) {
          EXPECT_FALSE(pblk >= origin && pblk < blkno)
              << "pending block " << pblk << " skipped: origin " << origin << " serviced "
              << blkno;
        } else {
          EXPECT_LT(pblk, origin) << "forward candidate " << pblk << " ignored by wrap to "
                                  << blkno << " (origin " << origin << ")";
          EXPECT_GE(pblk, blkno) << "wrap skipped lower block " << pblk;
        }
      }
      ++services;
    }
  }
  EXPECT_EQ(services, 15);
  EXPECT_TRUE(pending.empty());
  EXPECT_EQ(rig.stats.trace_records_dropped(), 0u);
}

TEST(DriverTracePropertyTest, ConcatNeverMergesAcrossFlagBoundary) {
  TracedRig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  // Sequential run with a flagged request in the middle: neither the
  // flagged request nor its successor may concatenate.
  rig.driver->IssueWrite(500, {MakeBlock(1)});
  rig.driver->IssueWrite(501, {MakeBlock(2)}, OrderingTag{.flag = true, .deps = {}});
  rig.driver->IssueWrite(502, {MakeBlock(3)});
  // Control group: a plain sequential pair, which must concatenate.
  rig.driver->IssueWrite(800, {MakeBlock(4)});
  rig.driver->IssueWrite(801, {MakeBlock(5)});
  rig.engine.Run();

  int concats = 0;
  int flagged_services = 0;
  for (const std::string& line : rig.stats.trace_lines()) {
    if (IsEvent(line, "disk.concat")) {
      ++concats;
      EXPECT_EQ(Field(line, "blkno"), 800) << "merged across the flag boundary: " << line;
      EXPECT_EQ(Field(line, "count"), 2);
    } else if (IsEvent(line, "disk.service")) {
      int64_t blkno = Field(line, "blkno");
      if (blkno >= 500 && blkno <= 502) {
        // The flagged run must arrive as three 1-block device requests.
        EXPECT_EQ(Field(line, "count"), 1) << line;
        ++flagged_services;
      }
    }
  }
  EXPECT_EQ(concats, 1);
  EXPECT_EQ(flagged_services, 3);
}

TEST(DriverTracePropertyTest, ConcatNeverMergesOntoChainDependency) {
  TracedRig rig{DriverConfig{.mode = OrderingMode::kChains}};
  // b depends on a; merging them into one device transfer would deadlock,
  // so the sequential pair must stay two requests.
  uint64_t a = rig.driver->IssueWrite(700, {MakeBlock(1)});
  rig.driver->IssueWrite(701, {MakeBlock(2)}, OrderingTag{.flag = false, .deps = {a}});
  // Control group: sequential pair without a dependency between them.
  rig.driver->IssueWrite(900, {MakeBlock(3)});
  rig.driver->IssueWrite(901, {MakeBlock(4)});
  rig.engine.Run();

  int concats = 0;
  int chain_services = 0;
  for (const std::string& line : rig.stats.trace_lines()) {
    if (IsEvent(line, "disk.concat")) {
      ++concats;
      EXPECT_EQ(Field(line, "blkno"), 900) << "merged across a chain dependency: " << line;
    } else if (IsEvent(line, "disk.service")) {
      int64_t blkno = Field(line, "blkno");
      if (blkno == 700 || blkno == 701) {
        EXPECT_EQ(Field(line, "count"), 1) << line;
        ++chain_services;
      }
    }
  }
  EXPECT_EQ(concats, 1);
  EXPECT_EQ(chain_services, 2);
}

TEST(DriverTraceTest, HasPendingWriteSeesQueuedRange) {
  Rig rig{DriverConfig{.mode = OrderingMode::kFlag, .semantics = FlagSemantics::kPart}};
  rig.Write(5000, 1, OrderingTag{.flag = true, .deps = {}});
  rig.Write(600, 2);
  EXPECT_TRUE(rig.driver->HasPendingWrite(600));
  EXPECT_FALSE(rig.driver->HasPendingWrite(601));
  rig.engine.Run();
  EXPECT_FALSE(rig.driver->HasPendingWrite(600));
}

}  // namespace
}  // namespace mufs
