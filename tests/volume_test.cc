// Striped-volume and sharded-machine tests: the address math, the
// multi-disk machine end to end (every scheme), per-disk metric naming,
// seed-reproducibility of a 4-disk run, and the single-disk purity
// guarantee (--disks=1 registers no volume state at all).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/fsck/fsck.h"
#include "src/volume/sharded_fs.h"
#include "src/volume/volume.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

// --- striping math --------------------------------------------------

TEST(VolumeLayoutTest, MapRoundTripsEveryBlock) {
  for (uint32_t disks : {1u, 2u, 3u, 4u, 8u}) {
    for (uint32_t unit : {1u, 4u, 16u, 64u}) {
      VolumeLayout lay;
      lay.disks = disks;
      lay.stripe_unit = unit;
      lay.blocks_per_disk = 256;
      std::vector<int> hits(disks * lay.blocks_per_disk, 0);
      for (uint32_t v = 0; v < lay.TotalBlocks(); ++v) {
        uint32_t disk = 0;
        uint32_t local = 0;
        lay.Map(v, &disk, &local);
        ASSERT_LT(disk, disks);
        ASSERT_LT(local, lay.blocks_per_disk);
        EXPECT_EQ(lay.ToVolume(disk, local), v);
        ++hits[disk * lay.blocks_per_disk + local];
      }
      // The map is a bijection: every (disk, local) hit exactly once.
      for (int h : hits) {
        EXPECT_EQ(h, 1);
      }
    }
  }
}

TEST(VolumeLayoutTest, RunLengthCountsToStripeBoundary) {
  VolumeLayout lay;
  lay.disks = 4;
  lay.stripe_unit = 16;
  lay.blocks_per_disk = 256;
  EXPECT_EQ(lay.RunLength(0), 16u);
  EXPECT_EQ(lay.RunLength(5), 11u);
  EXPECT_EQ(lay.RunLength(15), 1u);
  EXPECT_EQ(lay.RunLength(16), 16u);
}

TEST(VolumeLayoutTest, StripesRotateAcrossDisks) {
  VolumeLayout lay;
  lay.disks = 2;
  lay.stripe_unit = 8;
  lay.blocks_per_disk = 64;
  uint32_t disk = 0;
  uint32_t local = 0;
  lay.Map(0, &disk, &local);
  EXPECT_EQ(disk, 0u);
  EXPECT_EQ(local, 0u);
  lay.Map(8, &disk, &local);  // Next stripe, next disk.
  EXPECT_EQ(disk, 1u);
  EXPECT_EQ(local, 0u);
  lay.Map(16, &disk, &local);  // Wraps back, second chunk of disk 0.
  EXPECT_EQ(disk, 0u);
  EXPECT_EQ(local, 8u);
}

// --- shard routing --------------------------------------------------

// Two leaf names that land in different shards of both a 2-way and a
// 4-way split (also used by shard_rename_test.cc; pinned here so a hash
// change is caught by a fast test).
constexpr const char* kLeafShardA = "alpha";
constexpr const char* kLeafShardB = "echo";

TEST(ShardRoutingTest, PinnedLeavesHashToDifferentShards) {
  EXPECT_NE(ShardedFs::HashLeaf(kLeafShardA) % 2, ShardedFs::HashLeaf(kLeafShardB) % 2);
  EXPECT_NE(ShardedFs::HashLeaf(kLeafShardA) % 4, ShardedFs::HashLeaf(kLeafShardB) % 4);
}

// --- multi-disk machine end to end ----------------------------------

// Small cross-shard workload: a mirrored directory, files salted so they
// spread over shards, contents written tagged and read back, plus a
// cross-shard rename.
Task<void> MultiDiskWorkloadBody(Machine* m, Proc* p, bool* ok) {
  co_await m->Boot(*p);
  FsStatus st = co_await m->vfs().Mkdir(*p, "/d");
  EXPECT_EQ(st, FsStatus::kOk);
  std::vector<uint32_t> inos;
  for (int i = 0; i < 12; ++i) {
    std::string path = "/d/f" + std::to_string(i);
    Result<uint32_t> ino = co_await m->vfs().Create(*p, path);
    EXPECT_TRUE(ino.Ok()) << path;
    if (!ino.Ok()) {
      co_return;
    }
    inos.push_back(ino.value());
    FsStatus ws = co_await WriteTagged(*m, *p, ino.value(), 2 * kBlockSize);
    EXPECT_EQ(ws, FsStatus::kOk);
  }
  // Contents must survive routing: read each file back through the
  // global ino and check the tag carries that same global ino.
  for (uint32_t ino : inos) {
    std::vector<uint8_t> buf(kBlockSize);
    Result<uint64_t> rd = co_await m->vfs().ReadFile(*p, ino, 0, buf);
    EXPECT_TRUE(rd.Ok());
    if (!rd.Ok()) {
      co_return;
    }
    DataBlockTag tag;
    std::memcpy(&tag, buf.data(), sizeof(tag));
    EXPECT_EQ(tag.magic, kDataTagMagic);
    EXPECT_EQ(tag.ino, ino);
  }
  // Cross-shard rename (the pinned leaves differ mod 2 and any shard
  // count from the test matrix keeps them apart or makes the rename a
  // cheap same-shard one; either way the file must follow the name).
  Result<uint32_t> src = co_await m->vfs().Create(*p, std::string("/d/") + kLeafShardA);
  EXPECT_TRUE(src.Ok());
  if (!src.Ok()) {
    co_return;
  }
  FsStatus ws = co_await WriteTagged(*m, *p, src.value(), kBlockSize);
  EXPECT_EQ(ws, FsStatus::kOk);
  st = co_await m->vfs().Rename(*p, std::string("/d/") + kLeafShardA,
                                std::string("/d/") + kLeafShardB);
  EXPECT_EQ(st, FsStatus::kOk);
  Result<uint32_t> moved = co_await m->vfs().Lookup(*p, std::string("/d/") + kLeafShardB);
  EXPECT_TRUE(moved.Ok());
  if (!moved.Ok()) {
    co_return;
  }
  std::vector<uint8_t> buf(kBlockSize);
  Result<uint64_t> rd = co_await m->vfs().ReadFile(*p, moved.value(), 0, buf);
  EXPECT_TRUE(rd.Ok());
  if (!rd.Ok()) {
    co_return;
  }
  DataBlockTag tag;
  std::memcpy(&tag, buf.data(), sizeof(tag));
  EXPECT_EQ(tag.magic, kDataTagMagic);
  EXPECT_EQ(tag.ino, moved.value()) << "migrated data not restamped";
  Result<uint32_t> gone = co_await m->vfs().Lookup(*p, std::string("/d/") + kLeafShardA);
  EXPECT_FALSE(gone.Ok());
  co_await m->Shutdown(*p);
  *ok = true;
}

// An early co_return in the body (a failed EXPECT) must still end the
// run, so completion and success are separate flags.
Task<void> MultiDiskWorkload(Machine* m, Proc* p, bool* done, bool* ok) {
  co_await MultiDiskWorkloadBody(m, p, ok);
  *done = true;
}

void RunMultiDisk(MachineConfig cfg) {
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  bool ok = false;
  m.engine().Spawn(MultiDiskWorkload(&m, &p, &done, &ok), "w");
  m.engine().RunUntil([&] { return done; });
  ASSERT_TRUE(ok);

  EXPECT_TRUE(m.IsMulti());
  EXPECT_EQ(m.NumDisks(), static_cast<size_t>(cfg.disks));
  // Per-disk metric instances exist and the spindles actually turned.
  uint64_t busy = 0;
  for (size_t d = 0; d < m.NumDisks(); ++d) {
    busy += m.stats().counter("disk" + std::to_string(d) + ".busy_ns").value();
  }
  EXPECT_GT(busy, 0u);
  EXPECT_GT(m.stats().counter("volume.writes").value(), 0u);

  // After a clean shutdown every shard's file system is fsck-clean in
  // its own region of the volume image.
  DiskImage snap = m.CrashNow();
  for (size_t s = 0; s < m.NumShards(); ++s) {
    DiskImage region = snap.ExtractRegion(m.ShardBase(s), m.ShardBlocks());
    FsckOptions opts;
    opts.tag_ino_base = static_cast<uint32_t>(s) * m.InoStride();
    FsckReport report = FsckChecker(&region, opts).Check();
    for (const auto& v : report.violations) {
      ADD_FAILURE() << "shard " << s << ": " << ToString(v.type) << ": " << v.detail;
    }
  }
}

class MultiDiskSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(MultiDiskSchemeTest, TwoDiskMachineRunsClean) {
  MachineConfig cfg;
  cfg.scheme = GetParam();
  cfg.disks = 2;
  RunMultiDisk(cfg);
}

TEST_P(MultiDiskSchemeTest, FourDiskFineStripedMachineRunsClean) {
  MachineConfig cfg;
  cfg.scheme = GetParam();
  cfg.disks = 4;
  cfg.stripe_unit = 4;  // Fine interleave: exercises write splitting.
  RunMultiDisk(cfg);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MultiDiskSchemeTest,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return std::string(SchemeName(info.param));
                         });

// The fs stack only issues single-block requests, so the split path is
// exercised at the device surface: a 3-block write at stripe unit 1 must
// fan out into 3 per-disk sub-requests (2 extra = 2 splits) that land on
// both spindles, and complete as one volume request.
TEST(MultiDiskTest, FineStripingSplitsSpanningWrites) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kNoOrder;
  cfg.disks = 2;
  cfg.stripe_unit = 1;  // Every multi-block write crosses a boundary.
  Machine m(cfg);
  ASSERT_TRUE(m.IsMulti());
  const uint64_t splits0 = m.stats().counter("volume.splits").value();
  bool done = false;
  auto spanning = [](Machine* m, bool* done) -> Task<void> {
    std::vector<std::shared_ptr<const BlockData>> data;
    for (int i = 0; i < 3; ++i) {
      data.push_back(std::make_shared<BlockData>());
    }
    uint64_t id = m->volume()->IssueWrite(0, std::move(data));
    IoStatus s = co_await m->volume()->WaitFor(id);
    EXPECT_EQ(s, IoStatus::kOk);
    *done = true;
  };
  m.engine().Spawn(spanning(&m, &done), "w");
  m.engine().RunUntil([&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_EQ(m.stats().counter("volume.splits").value() - splits0, 2u);
  EXPECT_GT(m.stats().counter("disk0.busy_ns").value(), 0u);
  EXPECT_GT(m.stats().counter("disk1.busy_ns").value(), 0u);
}

// --- determinism ----------------------------------------------------

std::string RunFourDiskStats(Scheme scheme) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.disks = 4;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  bool ok = false;
  m.engine().Spawn(MultiDiskWorkload(&m, &p, &done, &ok), "w");
  m.engine().RunUntil([&] { return done; });
  EXPECT_TRUE(ok);
  return m.DumpStatsJson();
}

TEST(MultiDiskTest, FourDiskRunIsSeedReproducible) {
  for (Scheme s : {Scheme::kConventional, Scheme::kJournaling}) {
    std::string a = RunFourDiskStats(s);
    std::string b = RunFourDiskStats(s);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "4-disk " << SchemeName(s) << " run not reproducible";
  }
}

// --- single-disk purity ---------------------------------------------

TEST(MultiDiskTest, SingleDiskRegistersNoVolumeState) {
  MachineConfig cfg;
  cfg.scheme = Scheme::kConventional;
  cfg.disks = 1;  // Explicit, as the bench flag would set it.
  Machine m(cfg);
  EXPECT_FALSE(m.IsMulti());
  EXPECT_EQ(m.NumDisks(), 1u);
  EXPECT_EQ(m.NumShards(), 1u);
  std::string json = m.DumpStatsJson();
  EXPECT_EQ(json.find("volume."), std::string::npos);
  EXPECT_EQ(json.find("disk0."), std::string::npos);
  EXPECT_NE(json.find("disk.busy_ns"), std::string::npos);
}

}  // namespace
}  // namespace mufs
