// Unit tests for the mechanical disk model and the disk image.
#include <gtest/gtest.h>

#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/disk/geometry.h"

namespace mufs {
namespace {

TEST(GeometryTest, DefaultDerivedValues) {
  DiskGeometry g;
  EXPECT_EQ(g.blocks_per_cylinder(), 128u);
  EXPECT_EQ(g.cylinders(), 2048u);
  // One track (8 blocks) per revolution: per-block media time ~1.39 ms.
  EXPECT_NEAR(ToMs(g.transfer_per_block()), 1.389, 0.01);
}

TEST(DiskModelTest, SeekTimeZeroForSameCylinder) {
  DiskModel d{DiskGeometry{}};
  EXPECT_EQ(d.SeekTime(100, 100), 0);
}

TEST(DiskModelTest, SeekTimeMatchesPublishedShape) {
  DiskModel d{DiskGeometry{}};
  // Single cylinder ~2.4 ms, third-stroke ~10-12 ms, full stroke ~18-22 ms.
  EXPECT_NEAR(ToMs(d.SeekTime(0, 1)), 2.4, 0.3);
  EXPECT_NEAR(ToMs(d.SeekTime(0, 682)), 11.0, 1.5);
  EXPECT_NEAR(ToMs(d.SeekTime(0, 2047)), 20.2, 2.0);
}

TEST(DiskModelTest, SeekTimeSymmetric) {
  DiskModel d{DiskGeometry{}};
  EXPECT_EQ(d.SeekTime(10, 500), d.SeekTime(500, 10));
}

TEST(DiskModelTest, SeekTimeMonotoneInDistance) {
  DiskModel d{DiskGeometry{}};
  SimDuration prev = 0;
  for (uint32_t dist = 1; dist < 2048; dist *= 2) {
    SimDuration t = d.SeekTime(0, dist);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DiskModelTest, AccessIncludesOverheadSeekRotationTransfer) {
  DiskGeometry g;
  DiskModel d{g};
  // First access from cylinder 0 to a far block.
  uint32_t blk = 1000 * g.blocks_per_cylinder();
  SimDuration t = d.Access(/*is_write=*/true, blk, 1, 0);
  SimDuration floor = g.command_overhead + d.SeekTime(0, 1000) + g.transfer_per_block();
  EXPECT_GE(t, floor);
  EXPECT_LE(t, floor + g.rotation_time);
  EXPECT_EQ(d.CurrentCylinder(), 1000u);
}

TEST(DiskModelTest, SequentialReadsHitPrefetchCache) {
  DiskGeometry g;
  DiskModel d{g};
  SimTime now = 0;
  SimDuration first = d.Access(false, 100, 1, now);
  now += first;
  EXPECT_TRUE(d.CacheHit(101, 1));
  SimDuration second = d.Access(false, 101, 1, now);
  // Cache hit: just overhead + bus transfer, far below a mechanical access.
  EXPECT_EQ(second, g.command_overhead + g.cache_hit_per_block);
  EXPECT_LT(second, first);
}

TEST(DiskModelTest, PrefetchWindowSlidesWithSequentialReader) {
  DiskGeometry g;
  DiskModel d{g};
  SimTime now = 0;
  now += d.Access(false, 100, 1, now);
  // Stream far past the original prefetch depth; stays cached throughout.
  for (uint32_t b = 101; b < 100 + 3 * g.prefetch_blocks; ++b) {
    ASSERT_TRUE(d.CacheHit(b, 1)) << "block " << b;
    now += d.Access(false, b, 1, now);
  }
}

TEST(DiskModelTest, WriteInvalidatesPrefetchCache) {
  DiskGeometry g;
  DiskModel d{g};
  SimTime now = 0;
  now += d.Access(false, 100, 1, now);
  ASSERT_TRUE(d.CacheHit(101, 1));
  now += d.Access(true, 5000, 1, now);
  EXPECT_FALSE(d.CacheHit(101, 1));
}

TEST(DiskModelTest, NonSequentialReadMissesCache) {
  DiskGeometry g;
  DiskModel d{g};
  SimTime now = 0;
  now += d.Access(false, 100, 1, now);
  EXPECT_FALSE(d.CacheHit(100 + g.prefetch_blocks + 5, 1));
}

TEST(DiskModelTest, RotationalDelayDeterministicInStartTime) {
  DiskGeometry g;
  DiskModel a{g};
  DiskModel b{g};
  EXPECT_EQ(a.Access(true, 77, 1, Msec(3)), b.Access(true, 77, 1, Msec(3)));
}

TEST(DiskModelTest, MultiBlockTransferScalesWithCount) {
  DiskGeometry g;
  DiskModel d1{g};
  DiskModel d8{g};
  SimDuration t1 = d1.Access(true, 64, 1, 0);
  SimDuration t8 = d8.Access(true, 64, 8, 0);
  EXPECT_EQ(t8 - t1, 7 * g.transfer_per_block());
}

TEST(DiskImageTest, UnwrittenBlocksReadZero) {
  DiskImage img(1000);
  BlockData d;
  d.fill(0xff);
  img.Read(42, &d);
  for (uint8_t byte : d) {
    ASSERT_EQ(byte, 0);
  }
  EXPECT_FALSE(img.EverWritten(42));
}

TEST(DiskImageTest, WriteThenReadRoundTrips) {
  DiskImage img(1000);
  BlockData w;
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<uint8_t>(i * 7);
  }
  img.Write(5, w, Msec(1));
  BlockData r;
  img.Read(5, &r);
  EXPECT_EQ(w, r);
  EXPECT_TRUE(img.EverWritten(5));
  EXPECT_EQ(img.WriteCount(), 1u);
  EXPECT_EQ(img.LastWriteTime(), Msec(1));
}

TEST(DiskImageTest, SnapshotIsIndependent) {
  DiskImage img(1000);
  BlockData a;
  a.fill(1);
  img.Write(7, a, 0);
  DiskImage snap = img.Snapshot();
  BlockData b;
  b.fill(2);
  img.Write(7, b, 0);
  BlockData r;
  snap.Read(7, &r);
  EXPECT_EQ(r[0], 1);
  img.Read(7, &r);
  EXPECT_EQ(r[0], 2);
}

}  // namespace
}  // namespace mufs
