// Crash lab: demonstrates WHY metadata update ordering exists.
//
// Runs the same create/remove/rename churn under "No Order" (delayed
// writes, no ordering) and under soft updates, crashing both at the same
// sequence of moments, and shows what fsck finds in each image.
//
//   $ ./build/examples/crash_lab
#include <cstdio>
#include <string>

#include "src/fsck/crash_harness.h"
#include "src/workload/workloads.h"

using namespace mufs;  // NOLINT: example brevity.

namespace {

Task<void> Churn(Machine& m, Proc& p) {
  (void)co_await m.fs().Mkdir(p, "/work");
  (void)co_await CreateFiles(m, p, "/work", 20, 2 * kBlockSize);
  for (int i = 0; i < 20; i += 2) {
    (void)co_await m.fs().Unlink(p, "/work/c" + std::to_string(i));
  }
  (void)co_await m.fs().Mkdir(p, "/work2");
  (void)co_await CreateFiles(m, p, "/work2", 10, kBlockSize);  // Reuse.
  (void)co_await m.fs().Rename(p, "/work/c1", "/work2/moved");
}

void RunLab(Scheme scheme) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.alloc_init = true;
  cfg.syncer.sweep_seconds = 3;
  CrashHarness harness(cfg);
  uint64_t writes = harness.MeasureWrites(Churn);
  FsckOptions fsck;
  fsck.check_stale_data = true;

  int bad_states = 0;
  uint64_t first_bad = 0;
  std::string first_detail;
  for (uint64_t w = 1; w <= writes; ++w) {
    CrashResult r = harness.RunAndCrashAtWrite(Churn, w, fsck);
    if (!r.report.Clean()) {
      ++bad_states;
      if (first_bad == 0) {
        first_bad = w;
        first_detail = std::string(ToString(r.report.violations[0].type)) + ": " +
                       r.report.violations[0].detail;
      }
    }
  }
  printf("%-14s: %3d of %3llu reachable crash states violate integrity",
         std::string(ToString(scheme)).c_str(), bad_states,
         static_cast<unsigned long long>(writes));
  if (bad_states > 0) {
    printf("  (first at write %llu: %s)", static_cast<unsigned long long>(first_bad),
           first_detail.c_str());
  }
  printf("\n");
}

}  // namespace

int main() {
  printf("Sweeping every reachable on-disk state of a churn workload:\n\n");
  RunLab(Scheme::kNoOrder);
  RunLab(Scheme::kConventional);
  RunLab(Scheme::kSoftUpdates);
  printf("\nNo Order trades integrity for speed; the ordered schemes never break.\n");
  return 0;
}
