// Trace explorer: runs a small workload and dumps the per-request I/O
// trace (issue/queue/access/response times) the way the instrumented
// device driver of the paper's section 2 would, then prints summary
// statistics per request type.
//
//   $ ./build/examples/trace_explorer [scheme]
//   scheme: conventional | flag | chains | softupdates | noorder
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/machine.h"
#include "src/workload/workloads.h"

using namespace mufs;  // NOLINT: example brevity.

namespace {

Task<void> Workload(Machine* m, Proc* p, bool* done) {
  co_await m->Boot(*p);
  (void)co_await m->fs().Mkdir(*p, "/t");
  (void)co_await CreateFiles(*m, *p, "/t", 30, 8 * 1024);
  for (int i = 0; i < 30; i += 3) {
    (void)co_await m->fs().Unlink(*p, "/t/c" + std::to_string(i));
  }
  co_await m->Shutdown(*p);
  *done = true;
}

Scheme ParseScheme(const char* arg) {
  if (strcmp(arg, "conventional") == 0) {
    return Scheme::kConventional;
  }
  if (strcmp(arg, "flag") == 0) {
    return Scheme::kSchedulerFlag;
  }
  if (strcmp(arg, "chains") == 0) {
    return Scheme::kSchedulerChains;
  }
  if (strcmp(arg, "noorder") == 0) {
    return Scheme::kNoOrder;
  }
  return Scheme::kSoftUpdates;
}

}  // namespace

int main(int argc, char** argv) {
  MachineConfig cfg;
  cfg.scheme = argc > 1 ? ParseScheme(argv[1]) : Scheme::kSoftUpdates;
  Machine m(cfg);
  Proc proc = m.MakeProc("tracer");
  bool done = false;
  m.engine().Spawn(Workload(&m, &proc, &done), "tracer");
  m.engine().RunUntil([&] { return done; });

  const auto& traces = m.driver().Traces();
  printf("scheme=%s, %zu device requests\n\n", std::string(ToString(cfg.scheme)).c_str(),
         traces.size());
  printf("%-6s %-5s %8s %6s %5s %10s %10s %10s\n", "id", "dir", "blkno", "count", "flag",
         "queue(ms)", "access(ms)", "resp(ms)");
  size_t shown = 0;
  for (const auto& t : traces) {
    if (shown++ >= 40) {
      printf("... (%zu more)\n", traces.size() - 40);
      break;
    }
    printf("%-6llu %-5s %8u %6u %5s %10.2f %10.2f %10.2f\n",
           static_cast<unsigned long long>(t.id), t.dir == IoDir::kRead ? "R" : "W", t.blkno,
           t.count, t.flagged ? "*" : "", ToMs(t.QueueDelay()), ToMs(t.AccessTime()),
           ToMs(t.ResponseTime()));
  }

  double read_access = 0;
  double write_access = 0;
  size_t reads = 0;
  size_t writes = 0;
  for (const auto& t : traces) {
    if (t.dir == IoDir::kRead) {
      read_access += ToMs(t.AccessTime());
      ++reads;
    } else {
      write_access += ToMs(t.AccessTime());
      ++writes;
    }
  }
  printf("\nsummary: %zu reads (avg access %.2f ms), %zu writes (avg access %.2f ms)\n", reads,
         reads ? read_access / static_cast<double>(reads) : 0, writes,
         writes ? write_access / static_cast<double>(writes) : 0);
  printf("cache: %llu hits, %llu misses, %llu delayed writes, %llu write issues\n",
         static_cast<unsigned long long>(m.cache().stats().hits),
         static_cast<unsigned long long>(m.cache().stats().misses),
         static_cast<unsigned long long>(m.cache().stats().delayed_writes),
         static_cast<unsigned long long>(m.cache().stats().write_issues));
  return 0;
}
