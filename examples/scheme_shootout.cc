// Scheme shootout: a compact version of the paper's headline comparison.
// Copies and removes a source tree under all seven ordering schemes and
// prints elapsed times plus the I/O behaviour that explains them.
//
//   $ ./build/examples/scheme_shootout
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

using namespace mufs;  // NOLINT: example brevity.

int main() {
  TreeGenOptions opts;
  opts.file_count = 150;
  opts.total_bytes = 4'000'000;
  TreeSpec tree = GenerateTree(opts);
  const int kUsers = 2;

  printf("%d-user copy + remove of a %zu-file / %.1f MB tree\n\n", kUsers, tree.files.size(),
         static_cast<double>(tree.TotalBytes()) / 1e6);
  printf("%-18s %12s %12s %12s %12s\n", "Scheme", "Copy(s)", "Remove(s)", "CopyReqs",
         "RemoveReqs");
  for (Scheme s : AllSchemes()) {
    MachineConfig cfg = BenchConfig(s);
    RunMeasurement copy = RunCopyBenchmark(cfg, kUsers, tree);
    RunMeasurement remove = RunRemoveBenchmark(cfg, kUsers, tree);
    printf("%-18s %12.1f %12.2f %12llu %12llu\n", std::string(ToString(s)).c_str(),
           copy.ElapsedAvgSeconds(), remove.ElapsedAvgSeconds(),
           static_cast<unsigned long long>(copy.disk_requests),
           static_cast<unsigned long long>(remove.disk_requests));
  }
  printf("\nSoft updates should track No Order closely; Conventional pays a\n");
  printf("synchronous write per ordering point; the scheduler schemes sit between.\n");
  return 0;
}
