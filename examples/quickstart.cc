// Quickstart: build a simulated machine, mount the file system with soft
// updates, do some file work, sync, and fsck the resulting disk image.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/fsck/fsck.h"

using namespace mufs;  // NOLINT: example brevity.

namespace {

Task<void> Demo(Machine* m, Proc* p, bool* done) {
  // Boot mounts the (freshly formatted) file system and starts the
  // syncer daemon.
  co_await m->Boot(*p);

  // Namespace operations look like POSIX, but every call is a coroutine
  // running in simulated time.
  (void)co_await m->fs().Mkdir(*p, "/projects");
  (void)co_await m->fs().Mkdir(*p, "/projects/mufs");

  Result<uint32_t> ino = co_await m->fs().Create(*p, "/projects/mufs/notes.txt");
  if (!ino.Ok()) {
    printf("create failed: %s\n", std::string(ToString(ino.status())).c_str());
    co_return;
  }
  std::string text = "soft updates: delayed writes + fine-grained dependency tracking\n";
  std::vector<uint8_t> bytes(text.begin(), text.end());
  (void)co_await m->fs().WriteFile(*p, ino.value(), 0, bytes);

  // Read it back.
  std::vector<uint8_t> readback(bytes.size());
  Result<uint64_t> r = co_await m->fs().ReadFile(*p, ino.value(), 0, readback);
  printf("read back %llu bytes: %.*s", static_cast<unsigned long long>(r.ValueOr(0)),
         static_cast<int>(readback.size()), reinterpret_cast<char*>(readback.data()));

  // Rename and list.
  (void)co_await m->fs().Rename(*p, "/projects/mufs/notes.txt", "/projects/mufs/README");
  Result<std::vector<DirEntryInfo>> entries = co_await m->fs().ReadDir(*p, "/projects/mufs");
  if (entries.Ok()) {
    printf("/projects/mufs contains:\n");
    for (const auto& e : entries.value()) {
      printf("  ino %-6u %s\n", e.ino, e.name.c_str());
    }
  }

  // How long did all of that take on the simulated 1994 machine?
  printf("simulated time so far: %.3f s, disk requests: %llu\n",
         ToSeconds(m->engine().Now()),
         static_cast<unsigned long long>(m->driver().TotalRequests()));

  // Clean shutdown pushes everything to stable storage.
  co_await m->Shutdown(*p);
  *done = true;
}

}  // namespace

int main() {
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  Machine m(cfg);
  Proc proc = m.MakeProc("demo");
  bool done = false;
  m.engine().Spawn(Demo(&m, &proc, &done), "demo");
  m.engine().RunUntil([&] { return done; });

  // The disk image is plain state: audit it like fsck would after a boot.
  DiskImage image = m.CrashNow();
  FsckReport report = FsckChecker(&image).Check();
  printf("fsck: %zu violations, %zu fixable findings, %u inodes in use\n",
         report.violations.size(), report.fixables.size(), report.inodes_in_use);
  return report.Clean() ? 0 : 1;
}
