// Table 1: scheme comparison using the 4-user copy benchmark.
//
// Columns mirror the paper: elapsed time (average over users), percent of
// No Order, total user CPU time, system-wide disk requests, and average
// I/O response time.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct PaperRow {
  const char* scheme;
  char alloc_init;
  double elapsed, percent, cpu;
  int requests;
  double resp_ms;
};

// The paper's Table 1, for shape comparison.
constexpr PaperRow kPaper[] = {
    {"Conventional", 'N', 390.7, 123.9, 72.8, 36075, 293.3},
    {"Conventional", 'Y', 732.3, 232.3, 82.4, 51419, 140.1},
    {"Scheduler Flag", 'N', 381.3, 120.9, 72.8, 36038, 477.3},
    {"Scheduler Flag", 'Y', 545.7, 173.1, 90.0, 51028, 2297.0},
    {"Scheduler Chains", 'N', 375.1, 119.0, 76.0, 36019, 304.1},
    {"Scheduler Chains", 'Y', 530.6, 168.3, 86.0, 51248, 423.8},
    {"Soft Updates", 'N', 319.8, 101.4, 69.6, 31840, 368.7},
    {"Soft Updates", 'Y', 330.9, 104.9, 80.0, 31880, 262.1},
    {"No Order", 'N', 315.3, 100.0, 68.4, 31574, 304.1},
};

int Main(const BenchArgs& args) {
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Table 1 reproduction: %d-user copy of %zu files / %.1f MB\n", users,
         tree.files.size(), static_cast<double>(tree.TotalBytes()) / 1e6);
  PrintRule();
  printf("%-18s %-5s %12s %10s %10s %10s %12s\n", "Scheme", "Init", "Elapsed(s)", "%NoOrder",
         "CPU(s)", "DiskReqs", "AvgResp(ms)");
  PrintRule();

  struct Row {
    Scheme scheme;
    bool alloc_init;
  };
  std::vector<Row> rows;
  for (Scheme s : AllSchemes()) {
    rows.push_back({s, false});
    if (s != Scheme::kNoOrder) {
      rows.push_back({s, true});
    }
  }

  // Run No Order first to establish the baseline.
  double no_order_elapsed = 0;
  StatsSidecar sidecar("bench_table1_copy", args);
  std::vector<std::pair<Row, RunMeasurement>> results;
  for (const Row& row : rows) {
    MachineConfig cfg = BenchConfig(row.scheme, row.alloc_init);
    ApplyFaultArgs(&cfg, args);
    RunMeasurement meas = RunCopyBenchmark(cfg, users, tree);
    if (row.scheme == Scheme::kNoOrder) {
      no_order_elapsed = meas.ElapsedAvgSeconds();
    }
    sidecar.Append(std::string(SchemeName(row.scheme)) + (row.alloc_init ? "/init" : "/noinit"),
                   meas.stats_json);
    results.emplace_back(row, meas);
  }
  for (const auto& [row, meas] : results) {
    printf("%-18s %-5s %12.1f %10.1f %10.1f %10llu %12.1f\n",
           std::string(SchemeName(row.scheme)).c_str(), row.alloc_init ? "Y" : "N",
           meas.ElapsedAvgSeconds(),
           no_order_elapsed > 0 ? 100.0 * meas.ElapsedAvgSeconds() / no_order_elapsed : 0.0,
           meas.cpu_seconds_total, static_cast<unsigned long long>(meas.disk_requests),
           meas.avg_response_ms);
  }
  PrintRule();
  printf("Paper (NCR 3433 / HP C2447, for shape comparison):\n");
  for (const PaperRow& r : kPaper) {
    printf("%-18s %-5c %12.1f %10.1f %10.1f %10d %12.1f\n", r.scheme, r.alloc_init, r.elapsed,
           r.percent, r.cpu, r.requests, r.resp_ms);
  }
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
