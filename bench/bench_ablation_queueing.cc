// Device command-queueing ablation: tagged queueing (dispatch-until-full,
// device-side RPO picks, ordered tags at scheme ordering boundaries) vs
// the paper's substrate (depth 1, no queueing), swept over queue depth
// {1, 4, 16} for every scheme on the multi-user remove workload.
//
// Expected shape: queueing shrinks the scheduler schemes' ordering
// penalty (the device sees past a barrier's neighbours and picks by
// rotational position instead of C-LOOK), while soft updates and No
// Order - which never constrain the driver - gain only the RPO-vs-C-LOOK
// difference and stay near each other.
#include "bench/bench_common.h"

namespace mufs {
namespace {

int Main(const BenchArgs& args) {
  const int users = args.users;
  const std::vector<uint32_t> depths = {1, 4, 16};
  TreeSpec tree = GenerateTree();
  printf("Command-queueing ablation: queue depth sweep, %d-user remove\n", users);
  PrintRule(78);
  printf("%-18s", "Scheme");
  for (uint32_t d : depths) {
    printf(" %9s%-2u", "qd=", d);
  }
  printf(" %12s\n", "qd16 vs qd1");
  PrintRule(78);
  StatsSidecar sidecar("bench_ablation_queueing", args);
  for (Scheme scheme : AllSchemes()) {
    printf("%-18s", std::string(SchemeName(scheme)).c_str());
    double base = 0;
    double deepest = 0;
    for (uint32_t d : depths) {
      MachineConfig cfg = BenchConfig(scheme);
      ApplyFaultArgs(&cfg, args);
      cfg.queue_depth = d;
      RunMeasurement meas = RunRemoveBenchmark(cfg, users, tree);
      std::string label = std::string(SchemeName(scheme)) + "/qd" + std::to_string(d);
      sidecar.Append(label, meas.stats_json);
      printf(" %11.2f", meas.ElapsedAvgSeconds());
      if (d == depths.front()) {
        base = meas.ElapsedAvgSeconds();
      }
      if (d == depths.back()) {
        deepest = meas.ElapsedAvgSeconds();
      }
    }
    printf(" %11.1f%%\n", base > 0 ? 100.0 * (base - deepest) / base : 0.0);
  }
  PrintRule(78);
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
