// Figure 1: performance impact of the ordering-flag semantics for the
// 4-user copy benchmark. (a) elapsed time, (b) average disk access time.
//
// Variants: Full, Back, Part, Part-NR, Ignore. All use the block-copy
// (-CB) enhancement, as in the paper's figures after section 3.3.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct Variant {
  const char* name;
  Scheme scheme;
  FlagSemantics semantics;
  bool nr;
  bool ignore = false;
};

int Main(const BenchArgs& args) {
  const Variant kVariants[] = {
      {"Full", Scheme::kSchedulerFlag, FlagSemantics::kFull, false},
      {"Back", Scheme::kSchedulerFlag, FlagSemantics::kBack, false},
      {"Part", Scheme::kSchedulerFlag, FlagSemantics::kPart, false},
      {"Part-NR", Scheme::kSchedulerFlag, FlagSemantics::kPart, true},
      {"Ignore", Scheme::kSchedulerFlag, FlagSemantics::kPart, true, true},
  };
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Figure 1 reproduction: ordering-flag semantics, %d-user copy\n", users);
  PrintRule(70);
  printf("%-10s %14s %20s\n", "Flag", "Elapsed(s)", "AvgDiskAccess(ms)");
  PrintRule(70);
  StatsSidecar sidecar("bench_fig1_flag_semantics", args);
  for (const Variant& v : kVariants) {
    MachineConfig cfg = BenchConfig(v.scheme);
    cfg.flag_semantics = v.semantics;
    cfg.reads_bypass = v.nr;
    cfg.ignore_flags = v.ignore;
    RunMeasurement meas = RunCopyBenchmark(cfg, users, tree);
    sidecar.Append(v.name, meas.stats_json);
    printf("%-10s %14.1f %20.2f\n", v.name, meas.ElapsedAvgSeconds(), meas.avg_access_ms);
  }
  PrintRule(70);
  printf("Expected shape (paper fig 1): monotone improvement\n");
  printf("Full > Back > Part > Part-NR > Ignore in elapsed time, and\n");
  printf("decreasing average disk access times with scheduler freedom.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
