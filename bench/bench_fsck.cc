// Parallel fsck/repair benchmark: wall-clock check and repair time over
// deterministic crash images, serial (threads=0) vs the threaded
// pipeline (src/fsck/pfsck.h) at 2/4/8 workers, on single-disk and
// 4-disk sharded volumes.
//
// This is the recovery-time companion to the paper's update-performance
// tables: metadata-update schemes are judged by BOTH steady-state
// throughput and how long the post-crash check takes. The threaded
// checker attacks the second axis without changing the first (threads=0
// is byte-identical to the serial checker, enforced by the pfsck test
// battery; this bench re-asserts report identity on every cell).
//
// Extra flags (on top of bench_common's shared set):
//   --quick            small workload only, fewer timing repetitions
//                      (CI smoke mode).
//   --json-out=PATH    write the perf-trajectory summary (BENCH_fsck.json
//                      schema) to PATH instead of ./BENCH_fsck.json.
#include "bench/bench_common.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/fsck/crash_harness.h"
#include "src/fsck/fsck.h"
#include "src/fsck/pfsck.h"

namespace mufs {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Metadata churn sized by (dirs, files-per-dir): creates, partial
// unlinks, a second create wave and renames, with syncer flushes in
// between so the 2/3-of-run crash image holds a rich mix of settled and
// in-flight metadata.
CrashHarness::Workload Churn(int dirs, int files) {
  return [dirs, files](Machine& m, Proc& p) -> Task<void> {
    for (int d = 0; d < dirs; ++d) {
      std::string dir = "/d" + std::to_string(d);
      (void)co_await m.vfs().Mkdir(p, dir);
      (void)co_await CreateFiles(m, p, dir, files, 2 * kBlockSize);
    }
    co_await m.engine().Sleep(Sec(4));
    for (int d = 0; d < dirs; ++d) {
      std::string dir = "/d" + std::to_string(d);
      for (int i = 0; i < files; i += 3) {
        (void)co_await m.vfs().Unlink(p, dir + "/c" + std::to_string(i));
      }
    }
    co_await m.engine().Sleep(Sec(4));
    for (int d = 0; d < dirs; ++d) {
      std::string dir = "/d" + std::to_string(d);
      (void)co_await CreateFiles(m, p, dir, files / 2, kBlockSize);
      (void)co_await m.vfs().Rename(p, dir + "/c1", dir + "/renamed");
    }
  };
}

ShardLayout LayoutOf(const MachineConfig& cfg) {
  Machine m(cfg);
  ShardLayout layout;
  layout.num_shards = static_cast<uint32_t>(m.NumShards());
  layout.shard_blocks = m.ShardBlocks();
  layout.ino_stride = m.InoStride();
  return layout;
}

bool ReportsMatch(const FsckReport& a, const FsckReport& b) {
  if (a.violations.size() != b.violations.size() || a.fixables.size() != b.fixables.size() ||
      a.inodes_in_use != b.inodes_in_use || a.blocks_claimed != b.blocks_claimed) {
    return false;
  }
  for (size_t i = 0; i < a.violations.size(); ++i) {
    if (a.violations[i].detail != b.violations[i].detail) {
      return false;
    }
  }
  for (size_t i = 0; i < a.fixables.size(); ++i) {
    if (a.fixables[i].detail != b.fixables[i].detail) {
      return false;
    }
  }
  return true;
}

struct Cell {
  std::string config;
  uint32_t disks = 1;
  uint32_t threads = 0;
  uint32_t inodes_in_use = 0;
  size_t findings = 0;
  double check_ms = 0;
  double repair_ms = 0;
  double check_speedup = 1.0;
  double repair_speedup = 1.0;
  PfsckStats stats;
};

int Main(const BenchArgs& args, bool quick, const std::string& json_out) {
  struct Size {
    const char* name;
    int dirs;
    int files;
  };
  std::vector<Size> sizes = {{"small", 4, 30}};
  if (!quick) {
    sizes.push_back({"large", 8, 90});
  }
  const int reps = quick ? 2 : 3;
  const uint32_t kThreads[] = {0, 2, 4, 8};

  const unsigned cores = std::thread::hardware_concurrency();
  printf("Parallel fsck/repair: wall-clock check + repair of crash images (best of %d, "
         "%u core%s)\n",
         reps, cores, cores == 1 ? "" : "s");
  if (cores <= 1) {
    printf("NOTE: single-core host - threaded cells measure overhead only;\n");
    printf("speedup requires as many physical cores as worker threads.\n");
  }
  PrintRule(110);
  printf("%-16s %8s %8s %8s %12s %10s %12s %10s %10s %8s\n", "Config", "Disks", "Threads",
         "Inodes", "Check(ms)", "Speedup", "Repair(ms)", "Speedup", "Conflicts", "Steals");
  PrintRule(110);

  StatsSidecar sidecar("bench_fsck", args);
  std::vector<Cell> cells;
  bool mismatch = false;

  for (const Size& size : sizes) {
    for (uint32_t disks : {1u, 4u}) {
      MachineConfig cfg;
      cfg.scheme = Scheme::kNoOrder;  // Maximum damage => maximum check work.
      cfg.disks = disks;
      cfg.syncer.sweep_seconds = 3;
      CrashHarness harness(cfg);
      CrashHarness::Workload churn = Churn(size.dirs, size.files);
      uint64_t total_writes = harness.MeasureWrites(churn);
      // Crash INSIDE the final flush burst: most metadata has reached the
      // disk (a rich directory tree to walk) but the last few writes are
      // still in flight (real findings to merge).
      uint64_t crash_at = total_writes > 12 ? total_writes - 12 : total_writes * 5 / 6;
      DiskImage crash = harness.CrashImageAtWrite(churn, crash_at);
      ShardLayout layout = LayoutOf(cfg);
      std::string config = std::string(size.name) + "_" + std::to_string(disks) + "d";

      FsckReport serial_report;
      double serial_check_ms = 0;
      double serial_repair_ms = 0;
      for (uint32_t threads : kThreads) {
        FsckOptions opts;
        opts.check_stale_data = true;
        opts.threads = threads;
        Cell cell;
        cell.config = config;
        cell.disks = disks;
        cell.threads = threads;

        FsckReport report;
        double best_check = 0;
        for (int r = 0; r < reps; ++r) {
          PfsckStats stats;
          int64_t t0 = WallNs();
          report = PfsckCheckSharded(crash, layout, opts, &stats);
          double ms = static_cast<double>(WallNs() - t0) / 1e6;
          if (r == 0 || ms < best_check) {
            best_check = ms;
            cell.stats = stats;
          }
        }
        double best_repair = 0;
        for (int r = 0; r < reps; ++r) {
          DiskImage copy = crash.Snapshot();
          int64_t t0 = WallNs();
          FsckRepairReport rep;
          PfsckRepairSharded(&copy, layout, opts, &rep);
          double ms = static_cast<double>(WallNs() - t0) / 1e6;
          if (r == 0 || ms < best_repair) {
            best_repair = ms;
          }
        }

        cell.inodes_in_use = report.inodes_in_use;
        cell.findings = report.violations.size() + report.fixables.size();
        cell.check_ms = best_check;
        cell.repair_ms = best_repair;
        if (threads == 0) {
          serial_report = report;
          serial_check_ms = best_check;
          serial_repair_ms = best_repair;
        } else if (!ReportsMatch(serial_report, report)) {
          fprintf(stderr, "ERROR: %s threads=%u report differs from serial\n",
                  config.c_str(), threads);
          mismatch = true;
        }
        cell.check_speedup = cell.check_ms > 0 ? serial_check_ms / cell.check_ms : 1.0;
        cell.repair_speedup = cell.repair_ms > 0 ? serial_repair_ms / cell.repair_ms : 1.0;
        cells.push_back(cell);

        printf("%-16s %8u %8u %8u %12.3f %9.2fx %12.3f %9.2fx %10llu %8llu\n",
               config.c_str(), disks, threads, cell.inodes_in_use, cell.check_ms,
               cell.check_speedup, cell.repair_ms, cell.repair_speedup,
               static_cast<unsigned long long>(cell.stats.merge_conflicts),
               static_cast<unsigned long long>(cell.stats.work_steals));

        char json[512];
        snprintf(json, sizeof(json),
                 "{\"threads\":%u,\"check_ms\":%.3f,\"repair_ms\":%.3f,"
                 "\"inode_scan_ns\":%lld,\"dir_walk_ns\":%lld,\"merge_ns\":%lld,"
                 "\"audit_ns\":%lld,\"work_steals\":%llu,\"merge_conflicts\":%llu,"
                 "\"shard_checks\":%llu,\"findings\":%zu}",
                 threads, cell.check_ms, cell.repair_ms,
                 static_cast<long long>(cell.stats.inode_scan_ns),
                 static_cast<long long>(cell.stats.dir_walk_ns),
                 static_cast<long long>(cell.stats.merge_ns),
                 static_cast<long long>(cell.stats.audit_ns),
                 static_cast<unsigned long long>(cell.stats.work_steals),
                 static_cast<unsigned long long>(cell.stats.merge_conflicts),
                 static_cast<unsigned long long>(cell.stats.shard_checks), cell.findings);
        sidecar.Append(config + "/t" + std::to_string(threads), json);
      }
    }
  }
  PrintRule(110);
  printf("Expected shape (multi-core hosts): multi-disk volumes check near-linearly\n");
  printf("(one worker per shard region); single-disk images gain from the pipelined\n");
  printf("inode-scan + directory-walk phases. threads=0 is the byte-identical serial\n");
  printf("baseline; every threaded cell is re-checked against its report above.\n");

  // Perf-trajectory summary (consumed by CI as BENCH_fsck.json).
  std::string path = json_out.empty() ? "BENCH_fsck.json" : json_out;
  if (FILE* f = fopen(path.c_str(), "w")) {
    fprintf(f, "{\n  \"bench\": \"bench_fsck\",\n  \"cores\": %u,\n", cores);
    fprintf(f, "  \"unit\": \"ms_wall_clock_best_of_%d\",\n  \"results\": [\n", reps);
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      fprintf(f,
              "    {\"config\": \"%s\", \"disks\": %u, \"threads\": %u, "
              "\"check_ms\": %.3f, \"check_speedup\": %.2f, \"repair_ms\": %.3f, "
              "\"repair_speedup\": %.2f}%s\n",
              c.config.c_str(), c.disks, c.threads, c.check_ms, c.check_speedup,
              c.repair_ms, c.repair_speedup, i + 1 < cells.size() ? "," : "");
    }
    fprintf(f, "  ]\n}\n");
    fclose(f);
    printf("[perf trajectory: %s]\n", path.c_str());
  } else {
    fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }
  return mismatch ? 1 : 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  bool quick = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a.rfind("--json-out=", 0) == 0) {
      json_out = argv[i] + 11;
    }
  }
  return mufs::Main(args, quick, json_out);
}
