// Section 3.3 ablation: the block-copy (-CB) enhancement under scheduler
// chains. The paper reports -CB reduces elapsed time by 26% for 4-user
// copy and 57% for 4-user remove.
#include "bench/bench_common.h"

namespace mufs {
namespace {

int Main(const BenchArgs& args) {
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Section 3.3 ablation: block copy (-CB) with scheduler chains\n");
  PrintRule(76);
  printf("%-12s %-8s %12s %12s %16s\n", "Benchmark", "CB", "Elapsed(s)", "DiskReqs",
         "WriteLockWaits");
  PrintRule(76);
  double copy_on = 0;
  double copy_off = 0;
  double rm_on = 0;
  double rm_off = 0;
  StatsSidecar sidecar("bench_ablation_blockcopy", args);
  for (bool cb : {false, true}) {
    MachineConfig cfg = BenchConfig(Scheme::kSchedulerChains);
    cfg.copy_blocks = cb;
    {
      Machine m(cfg);
      SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
        (void)co_await PopulateTree(mm, p, tree, "/src");
      };
      UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
        (void)co_await CopyTree(mm, p, tree, "/src", "/copy" + std::to_string(u));
      };
      RunMeasurement meas = RunMultiUser(m, users, setup, body);
      sidecar.Append(std::string("copy/") + (cb ? "cb" : "nocb"), meas.stats_json);
      printf("%-12s %-8s %12.1f %12llu %16llu\n", "copy", cb ? "yes" : "no",
             meas.ElapsedAvgSeconds(), static_cast<unsigned long long>(meas.disk_requests),
             static_cast<unsigned long long>(m.cache().stats().write_lock_waits));
      (cb ? copy_on : copy_off) = meas.ElapsedAvgSeconds();
    }
    {
      RunMeasurement meas = RunRemoveBenchmark(cfg, users, tree);
      sidecar.Append(std::string("remove/") + (cb ? "cb" : "nocb"), meas.stats_json);
      printf("%-12s %-8s %12.2f %12llu\n", "remove", cb ? "yes" : "no",
             meas.ElapsedAvgSeconds(), static_cast<unsigned long long>(meas.disk_requests));
      (cb ? rm_on : rm_off) = meas.ElapsedAvgSeconds();
    }
  }
  PrintRule(76);
  if (copy_off > 0 && rm_off > 0) {
    printf("-CB improvement: copy %.0f%% (paper ~26%%), remove %.0f%% (paper ~57%%)\n",
           100.0 * (copy_off - copy_on) / copy_off, 100.0 * (rm_off - rm_on) / rm_off);
  }
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
