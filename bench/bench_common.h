// Shared runners for the paper-reproduction benchmark binaries.
//
// Each bench binary reproduces one table or figure of Ganger & Patt
// (OSDI '94): it configures Machines, runs the workloads, and prints the
// same rows/series the paper reports, with the paper's own numbers
// alongside for shape comparison.
#ifndef MUFS_BENCH_BENCH_COMMON_H_
#define MUFS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/workload/workloads.h"

namespace mufs {

// CLI overrides shared by every bench binary: --users=N scales the
// multi-user workloads, --stats-out=PATH redirects the JSONL sidecar,
// --fault-rate=P / --fault-seed=S enable disk fault injection (uniform
// profile derived from one probability; see FaultConfig::Uniform),
// --queue-depth=N enables device command queueing (1 = the paper's
// substrate, byte-identical stats to the pre-queueing driver),
// --disks=N builds a striped multi-disk volume with sharded metadata
// (1 = the exact single-disk machine) and --stripe-unit=K sets its
// chunk size in blocks (0 keeps the machine default).
// --fsck-threads=N runs boot-time crash recovery (and any harness-side
// fsck) on N worker threads (0 = serial, byte-identical results).
// --staleness-ns=N bounds how long an Async-scheme update may stay
// visible-but-not-durable (0 keeps the machine default).
struct BenchArgs {
  int users = 0;
  std::string stats_out;
  std::string out_dir;  // Directory of the binary; sidecars default here.
  double fault_rate = 0;
  uint64_t fault_seed = 1;
  uint32_t queue_depth = 1;
  uint32_t disks = 1;
  uint32_t stripe_unit = 0;
  uint32_t shards = 0;         // 0 = one shard per disk.
  uint32_t fsck_threads = 0;   // 0 = serial recovery.
  uint64_t staleness_ns = 0;   // 0 = machine default (Async scheme only).
};

// Parses the shared flags, REMOVING recognized arguments from argv so a
// framework (e.g. google-benchmark) can consume whatever remains.
// Unrecognized arguments are left in place. `default_users` seeds
// args.users for benches that take a user count.
inline BenchArgs ParseBenchArgs(int* argc, char** argv, int default_users = 0) {
  BenchArgs args;
  args.users = default_users;
  // Sidecars default next to the binary (i.e. under build/), never the
  // caller's working directory, so repeated runs don't litter the repo.
  std::string_view self = argv[0];
  size_t slash = self.rfind('/');
  if (slash != std::string_view::npos) {
    args.out_dir = std::string(self.substr(0, slash));
  }
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--users=", 0) == 0) {
      int n = std::atoi(argv[i] + 8);
      if (n > 0) {
        args.users = n;
      } else {
        std::fprintf(stderr, "warning: ignoring bad %s\n", argv[i]);
      }
    } else if (a.rfind("--stats-out=", 0) == 0) {
      args.stats_out = argv[i] + 12;
    } else if (a.rfind("--fault-rate=", 0) == 0) {
      args.fault_rate = std::atof(argv[i] + 13);
    } else if (a.rfind("--fault-seed=", 0) == 0) {
      args.fault_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (a.rfind("--queue-depth=", 0) == 0) {
      int n = std::atoi(argv[i] + 14);
      if (n > 0) {
        args.queue_depth = static_cast<uint32_t>(n);
      } else {
        std::fprintf(stderr, "warning: ignoring bad %s\n", argv[i]);
      }
    } else if (a.rfind("--disks=", 0) == 0) {
      int n = std::atoi(argv[i] + 8);
      if (n > 0) {
        args.disks = static_cast<uint32_t>(n);
      } else {
        std::fprintf(stderr, "warning: ignoring bad %s\n", argv[i]);
      }
    } else if (a.rfind("--stripe-unit=", 0) == 0) {
      int n = std::atoi(argv[i] + 14);
      if (n > 0) {
        args.stripe_unit = static_cast<uint32_t>(n);
      } else {
        std::fprintf(stderr, "warning: ignoring bad %s\n", argv[i]);
      }
    } else if (a.rfind("--shards=", 0) == 0) {
      int n = std::atoi(argv[i] + 9);
      if (n > 0) {
        args.shards = static_cast<uint32_t>(n);
      } else {
        std::fprintf(stderr, "warning: ignoring bad %s\n", argv[i]);
      }
    } else if (a.rfind("--fsck-threads=", 0) == 0) {
      int n = std::atoi(argv[i] + 15);
      if (n >= 0) {
        args.fsck_threads = static_cast<uint32_t>(n);
      } else {
        std::fprintf(stderr, "warning: ignoring bad %s\n", argv[i]);
      }
    } else if (a.rfind("--staleness-ns=", 0) == 0) {
      args.staleness_ns = std::strtoull(argv[i] + 15, nullptr, 10);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return args;
}

// Applies --fault-rate/--fault-seed to a machine config (no-op when the
// rate is zero, keeping the zero-fault stats byte-identical).
inline void ApplyFaultArgs(MachineConfig* cfg, const BenchArgs& args) {
  if (args.fault_rate > 0) {
    cfg->fault = FaultConfig::Uniform(args.fault_rate, args.fault_seed);
  }
  cfg->queue_depth = args.queue_depth;  // 1 (the default) is a no-op.
  cfg->disks = args.disks;              // 1 (the default) is a no-op.
  if (args.stripe_unit > 0) {
    cfg->stripe_unit = args.stripe_unit;
  }
  cfg->shards = args.shards;  // 0 (the default) = one shard per disk.
  // 0 (the default) keeps boot-time recovery serial (byte-identical).
  cfg->recovery_threads = args.fsck_threads;
  if (args.staleness_ns > 0) {
    cfg->async_staleness_window = static_cast<SimDuration>(args.staleness_ns);
  }
}

inline MachineConfig BenchConfig(Scheme scheme, bool alloc_init = false) {
  MachineConfig cfg;
  cfg.scheme = scheme;
  cfg.alloc_init = alloc_init;
  // Section 5: the Scheduler Flag data use Part-NR/CB; chains also use
  // the block-copy enhancement.
  cfg.flag_semantics = FlagSemantics::kPart;
  cfg.reads_bypass = true;
  cfg.copy_blocks = true;
  cfg.chains_track_freed = true;
  return cfg;
}

inline const std::vector<Scheme>& AllSchemes() {
  // Derived from the canonical list in machine.h: a new scheme joins
  // every bench table automatically.
  static const std::vector<Scheme> schemes(std::begin(kAllSchemes), std::end(kAllSchemes));
  return schemes;
}

// --- The copy benchmark (section 2): each "user" recursively copies the
// 535-file / 14.3 MB tree from a shared populated source into a private
// destination tree.
inline RunMeasurement RunCopyBenchmark(const MachineConfig& cfg, int users,
                                       const TreeSpec& tree) {
  Machine m(cfg);
  SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
    FsStatus s = co_await PopulateTree(mm, p, tree, "/src");
    (void)s;
  };
  UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
    FsStatus s = co_await CopyTree(mm, p, tree, "/src", "/copy" + std::to_string(u));
    (void)s;
  };
  return RunMultiUser(m, users, setup, body);
}

// --- The remove benchmark: each "user" deletes one freshly copied tree.
inline RunMeasurement RunRemoveBenchmark(const MachineConfig& cfg, int users,
                                         const TreeSpec& tree) {
  Machine m(cfg);
  SetupFn real_setup = [&tree, users](Machine& mm, Proc& p) -> Task<void> {
    for (int u = 0; u < users; ++u) {
      FsStatus s = co_await PopulateTree(mm, p, tree, "/tree" + std::to_string(u));
      (void)s;
    }
  };
  UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
    FsStatus s = co_await RemoveTree(mm, p, tree, "/tree" + std::to_string(u));
    (void)s;
  };
  // The trees were "newly copied", but in the paper's separate-execution
  // methodology the metadata is no longer cached (4 trees of copies exceed
  // the 1994 machine's memory); removal re-reads directories and inodes.
  return RunMultiUser(m, users, real_setup, body, /*drop_caches_after_setup=*/true);
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    putchar('-');
  }
  putchar('\n');
}

// Machine-readable companion to the printed tables: one JSONL record per
// measured machine-run, written to "<bench_name>.stats.jsonl" next to the
// bench binary (i.e. under build/, which is gitignored) unless
// --stats-out overrides the path. Each record is
// {"label":...,"run":<DumpStatsJson>}, so rows map 1:1 onto the paper
// tables/figures the binary prints.
// Deterministic: same build + same seed => byte-identical file.
class StatsSidecar {
 public:
  // args.stats_out (--stats-out) replaces the default path when set.
  StatsSidecar(const std::string& bench_name, const BenchArgs& args)
      : path_(!args.stats_out.empty()
                  ? args.stats_out
                  : (args.out_dir.empty() ? bench_name + ".stats.jsonl"
                                          : args.out_dir + "/" + bench_name + ".stats.jsonl")) {
    f_ = std::fopen(path_.c_str(), "w");
    if (f_ == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    }
  }
  StatsSidecar(const StatsSidecar&) = delete;
  StatsSidecar& operator=(const StatsSidecar&) = delete;
  ~StatsSidecar() {
    if (f_ != nullptr) {
      std::fclose(f_);
      std::printf("[stats sidecar: %s]\n", path_.c_str());
    }
  }

  void Append(const std::string& label, const std::string& stats_json) {
    if (f_ == nullptr || stats_json.empty()) {
      return;
    }
    std::string esc;
    JsonEscape(label, &esc);
    std::fprintf(f_, "{\"label\":\"%s\",\"run\":%s}\n", esc.c_str(), stats_json.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_BENCH_BENCH_COMMON_H_
