// Figure 3: the -NR (read bypass) and -CB (block copy) implementation
// options for the Part flag scheme, 4-user copy benchmark.
// (a) elapsed time (with user CPU portion), (b) average driver response.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct Variant {
  const char* name;
  bool nr;
  bool cb;
};

int Main(const BenchArgs& args) {
  const Variant kVariants[] = {
      {"Part", false, false},
      {"Part-NR", true, false},
      {"Part-CB", false, true},
      {"Part-NR/CB", true, true},
  };
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Figure 3 reproduction: Part flag options, %d-user copy\n", users);
  PrintRule(86);
  printf("%-12s %12s %10s %20s %16s\n", "Variant", "Elapsed(s)", "CPU(s)", "AvgDriverResp(ms)",
         "WriteLockWaits");
  PrintRule(86);
  StatsSidecar sidecar("bench_fig3_copy_options", args);
  for (const Variant& v : kVariants) {
    MachineConfig cfg = BenchConfig(Scheme::kSchedulerFlag);
    cfg.flag_semantics = FlagSemantics::kPart;
    cfg.reads_bypass = v.nr;
    cfg.copy_blocks = v.cb;
    Machine m(cfg);
    SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
      (void)co_await PopulateTree(mm, p, tree, "/src");
    };
    UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
      (void)co_await CopyTree(mm, p, tree, "/src", "/copy" + std::to_string(u));
    };
    RunMeasurement meas = RunMultiUser(m, users, setup, body);
    sidecar.Append(v.name, meas.stats_json);
    printf("%-12s %12.1f %10.1f %20.1f %16llu\n", v.name, meas.ElapsedAvgSeconds(),
           meas.cpu_seconds_total, meas.avg_response_ms,
           static_cast<unsigned long long>(m.cache().stats().write_lock_waits));
  }
  PrintRule(86);
  printf("Expected shape (paper fig 3): Part-NR/CB clearly fastest; omitting either\n");
  printf("option sacrifices much of the benefit (write-lock waits vanish with -CB).\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
