// Figure 5: metadata update throughput (files/second) as a function of
// the number of concurrent "users": (a) 1 KB creates, (b) removes,
// (c) create/remove pairs. 10,000 files split among the users, each in a
// separate directory.
#include "bench/bench_common.h"

namespace mufs {
namespace {

constexpr int kTotalFiles = 10000;

enum class Phase { kCreate, kRemove, kCreateRemove };

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCreate:
      return "create";
    case Phase::kRemove:
      return "remove";
    case Phase::kCreateRemove:
      return "create_remove";
  }
  return "?";
}

double RunPhase(Scheme scheme, Phase phase, int users, int files_per_user,
                const BenchArgs& args, StatsSidecar& sidecar) {
  MachineConfig cfg = BenchConfig(scheme);
  ApplyFaultArgs(&cfg, args);
  Machine m(cfg);
  SetupFn setup = [users, files_per_user, phase](Machine& mm, Proc& p) -> Task<void> {
    for (int u = 0; u < users; ++u) {
      (void)co_await mm.vfs().Mkdir(p, "/u" + std::to_string(u));
    }
    if (phase == Phase::kRemove) {
      // Removes operate on freshly created files.
      for (int u = 0; u < users; ++u) {
        (void)co_await CreateFiles(mm, p, "/u" + std::to_string(u), files_per_user, 1024);
      }
    }
  };
  UserFn body = [phase, files_per_user](Machine& mm, Proc& p, int u) -> Task<void> {
    std::string dir = "/u" + std::to_string(u);
    switch (phase) {
      case Phase::kCreate:
        (void)co_await CreateFiles(mm, p, dir, files_per_user, 1024);
        break;
      case Phase::kRemove:
        (void)co_await RemoveFiles(mm, p, dir, files_per_user);
        break;
      case Phase::kCreateRemove:
        (void)co_await CreateRemoveFiles(mm, p, dir, files_per_user, 1024);
        break;
    }
  };
  // Creates after setup should not start from a cold cache for removes
  // (the paper removes "newly copied" files); keep caches warm.
  RunMeasurement meas = RunMultiUser(m, users, setup, body,
                                     /*drop_caches_after_setup=*/phase != Phase::kRemove);
  sidecar.Append(std::string(PhaseName(phase)) + "/" + std::string(SchemeName(scheme)) + "/" +
                     std::to_string(users) + "u",
                 meas.stats_json);
  double files = static_cast<double>(files_per_user) * users;
  double secs = ToSeconds(meas.wall);
  return secs > 0 ? files / secs : 0;
}

int Main(const BenchArgs& args) {
  // --users=N narrows the sweep to a single user count.
  const std::vector<int> user_counts =
      args.users > 0 ? std::vector<int>{args.users} : std::vector<int>{1, 2, 4, 8};
  const struct {
    Phase phase;
    const char* title;
  } kPhases[] = {
      {Phase::kCreate, "Figure 5a: 1KB file creates (files/second)"},
      {Phase::kRemove, "Figure 5b: 1KB file removes (files/second)"},
      {Phase::kCreateRemove, "Figure 5c: 1KB file create/removes (pairs/second)"},
  };
  StatsSidecar sidecar("bench_fig5_throughput", args);
  for (const auto& ph : kPhases) {
    printf("%s\n", ph.title);
    PrintRule(78);
    printf("%-18s", "Scheme");
    for (int users : user_counts) {
      printf(" %8d-user", users);
    }
    printf("\n");
    PrintRule(78);
    for (Scheme s : AllSchemes()) {
      printf("%-18s", std::string(SchemeName(s)).c_str());
      for (int users : user_counts) {
        double tput = RunPhase(s, ph.phase, users, kTotalFiles / users, args, sidecar);
        printf(" %13.1f", tput);
      }
      printf("\n");
    }
    PrintRule(78);
    printf("\n");
  }
  printf("Expected shape (paper): NoOrder ~= SoftUpdates >> Chains > Flag ~= Conventional;\n");
  printf("create/remove pairs run at memory speed for the delayed-write schemes (5x+).\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  return mufs::Main(args);
}
