// Table 3: the (original) Andrew file system benchmark across the five
// schemes. Five phases: (1) create directories, (2) copy files, (3) stat
// every file, (4) read every byte, (5) compile.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct PaperRow {
  const char* scheme;
  double p1, p2, p3, p4, p5, total;
};

constexpr PaperRow kPaper[] = {
    {"Conventional", 2.49, 4.07, 4.08, 5.91, 295.8, 312.4},
    {"Scheduler Flag", 0.54, 4.45, 4.09, 5.91, 279.1, 294.1},
    {"Scheduler Chains", 0.53, 3.72, 4.09, 5.86, 280.6, 294.8},
    {"Soft Updates", 0.34, 2.77, 4.25, 5.84, 276.3, 289.5},
    {"No Order", 0.37, 2.74, 4.14, 5.84, 276.6, 289.7},
};

int Main(const BenchArgs& args) {
  // The original Andrew tree is ~70 files / ~1.4 MB of sources.
  TreeGenOptions opts;
  opts.file_count = 70;
  opts.total_bytes = 1'400'000;
  opts.dir_count = 10;
  opts.seed = 1988;
  TreeSpec tree = GenerateTree(opts);

  printf("Table 3 reproduction: Andrew benchmark (%zu files, %.1f MB)\n", tree.files.size(),
         static_cast<double>(tree.TotalBytes()) / 1e6);
  PrintRule(96);
  printf("%-18s %9s %9s %9s %9s %9s %9s\n", "Scheme", "MakeDir", "Copy", "ScanDir", "ReadAll",
         "Compile", "Total");
  PrintRule(96);
  StatsSidecar sidecar("bench_table3_andrew", args);
  for (Scheme s : AllSchemes()) {
    MachineConfig cfg = BenchConfig(s, /*alloc_init=*/s == Scheme::kSoftUpdates);
    Machine m(cfg);
    SetupFn setup = [&tree](Machine& mm, Proc& p) -> Task<void> {
      (void)co_await PopulateTree(mm, p, tree, "/andrew-src");
    };
    AndrewTimes times;
    UserFn body = [&tree, &times](Machine& mm, Proc& p, int) -> Task<void> {
      times = co_await AndrewBenchmark(mm, p, tree, "/andrew-src", "/andrew-work");
    };
    RunMeasurement meas = RunMultiUser(m, 1, setup, body);
    sidecar.Append(std::string(SchemeName(s)), meas.stats_json);
    printf("%-18s %9.2f %9.2f %9.2f %9.2f %9.1f %9.1f\n", std::string(SchemeName(s)).c_str(),
           times.make_dir, times.copy, times.scan_dir, times.read_all, times.compile,
           times.Total());
  }
  PrintRule(96);
  printf("Paper:\n");
  for (const PaperRow& r : kPaper) {
    printf("%-18s %9.2f %9.2f %9.2f %9.2f %9.1f %9.1f\n", r.scheme, r.p1, r.p2, r.p3, r.p4,
           r.p5, r.total);
  }
  printf("Expected shape: phases 1-2 discriminate, 3-4 indistinguishable,\n");
  printf("compile dominated by CPU with a 5-7%% edge for non-Conventional schemes.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  // Andrew is inherently single-user; only --stats-out applies.
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/1);
  return mufs::Main(args);
}
