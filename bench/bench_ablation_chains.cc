// Section 3.2 ablation: scheduler chains with freed-resource tracking vs
// the Part-NR-like barrier fallback for de-allocation ordering. The paper
// reports ~16% improvement for the tracking variant on 4-user remove.
#include "bench/bench_common.h"

namespace mufs {
namespace {

int Main(const BenchArgs& args) {
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Section 3.2 ablation: chains de-allocation handling, %d-user remove\n", users);
  PrintRule(64);
  printf("%-28s %12s %12s\n", "Variant", "Elapsed(s)", "DiskReqs");
  PrintRule(64);
  double tracked = 0;
  double barrier = 0;
  StatsSidecar sidecar("bench_ablation_chains", args);
  for (bool track : {false, true}) {
    MachineConfig cfg = BenchConfig(Scheme::kSchedulerChains);
    cfg.chains_track_freed = track;
    RunMeasurement meas = RunRemoveBenchmark(cfg, users, tree);
    sidecar.Append(track ? "tracking" : "barrier", meas.stats_json);
    printf("%-28s %12.2f %12llu\n",
           track ? "freed-resource tracking" : "barrier fallback",
           meas.ElapsedAvgSeconds(), static_cast<unsigned long long>(meas.disk_requests));
    (track ? tracked : barrier) = meas.ElapsedAvgSeconds();
  }
  PrintRule(64);
  if (tracked > 0) {
    printf("Tracking vs barrier improvement: %.1f%% (paper: ~16%%)\n",
           100.0 * (barrier - tracked) / barrier);
  }
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
