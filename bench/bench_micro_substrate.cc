// Substrate micro-benchmarks (google-benchmark): how fast the simulator
// itself runs. These do not reproduce paper results; they keep the
// simulation engine honest (host-side performance regressions make the
// table/figure benches painfully slow).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/machine.h"
#include "src/disk/disk_model.h"
#include "src/workload/workloads.h"

namespace mufs {
namespace {

void BM_DiskModelAccess(benchmark::State& state) {
  DiskModel model{DiskGeometry{}};
  SimTime now = 0;
  uint32_t blk = 0;
  for (auto _ : state) {
    now += model.Access(true, blk, 1, now);
    blk = (blk + 997) % DiskGeometry{}.total_blocks;
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_DiskModelAccess);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.Schedule(Usec(i), [&count] { ++count; });
    }
    state.ResumeTiming();
    engine.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_CoroutineChain(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    int result = 0;
    std::function<Task<int>(int)> rec = [&](int n) -> Task<int> {
      if (n == 0) {
        co_return 0;
      }
      int sub = co_await rec(n - 1);
      co_return sub + 1;
    };
    auto outer = [&]() -> Task<void> { result = co_await rec(1000); };
    engine.Spawn(outer(), "chain");
    engine.Run();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineChain);

void BM_FileCreateSimulated(benchmark::State& state) {
  // Host cost of simulating one create+write+remove under soft updates.
  auto scheme = static_cast<Scheme>(state.range(0));
  for (auto _ : state) {
    MachineConfig cfg;
    cfg.scheme = scheme;
    cfg.collect_traces = false;
    Machine m(cfg);
    Proc p = m.MakeProc("u");
    bool done = false;
    auto body = [](Machine* m, Proc* p, bool* done) -> Task<void> {
      co_await m->Boot(*p);
      (void)co_await m->fs().Mkdir(*p, "/d");
      (void)co_await CreateRemoveFiles(*m, *p, "/d", 50, 1024);
      *done = true;
    };
    m.engine().Spawn(body(&m, &p, &done), "u");
    m.engine().RunUntil([&] { return done; });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_FileCreateSimulated)
    ->Arg(static_cast<int>(Scheme::kConventional))
    ->Arg(static_cast<int>(Scheme::kSoftUpdates))
    ->Arg(static_cast<int>(Scheme::kNoOrder));

// Sidecar companion: the micro-benchmarks measure host time (not
// simulated time), so they cannot emit per-run stats themselves. Run one
// small deterministic simulated workload instead so this binary, like
// every other bench, leaves a machine-readable record behind.
void EmitSidecar(const BenchArgs& args) {
  StatsSidecar sidecar("bench_micro_substrate", args);
  MachineConfig cfg;
  cfg.scheme = Scheme::kSoftUpdates;
  Machine m(cfg);
  Proc p = m.MakeProc("u");
  bool done = false;
  auto body = [](Machine* mm, Proc* pp, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    (void)co_await mm->fs().Mkdir(*pp, "/d");
    (void)co_await CreateRemoveFiles(*mm, *pp, "/d", 50, 1024);
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(body(&m, &p, &done), "u");
  m.engine().RunUntil([&] { return done; });
  sidecar.Append("soft_updates/create_remove_50", m.DumpStatsJson());
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  // Strip the shared mufs flags first; google-benchmark gets the rest.
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mufs::EmitSidecar(args);
  return 0;
}
