// Figure 6: Sdet-like software-development throughput (scripts/hour) as
// a function of script concurrency, across the five schemes.
#include "bench/bench_common.h"

namespace mufs {
namespace {

double RunSdet(Scheme scheme, int concurrency, StatsSidecar& sidecar) {
  MachineConfig cfg = BenchConfig(scheme, /*alloc_init=*/scheme == Scheme::kSoftUpdates);
  Machine m(cfg);
  SetupFn setup = [](Machine&, Proc&) -> Task<void> { co_return; };
  UserFn body = [](Machine& mm, Proc& p, int u) -> Task<void> {
    (void)co_await SdetScript(mm, p, "/script" + std::to_string(u),
                              /*seed=*/1000 + static_cast<uint64_t>(u), /*operations=*/200);
  };
  RunMeasurement meas = RunMultiUser(m, concurrency, setup, body,
                                     /*drop_caches_after_setup=*/false);
  sidecar.Append(std::string(SchemeName(scheme)) + "/" + std::to_string(concurrency) + "c",
                 meas.stats_json);
  double hours = ToSeconds(meas.wall) / 3600.0;
  return hours > 0 ? static_cast<double>(concurrency) / hours : 0;
}

int Main(const BenchArgs& args) {
  // --users=N narrows the sweep to a single concurrency level.
  const std::vector<int> concurrency =
      args.users > 0 ? std::vector<int>{args.users} : std::vector<int>{1, 2, 4, 8};
  printf("Figure 6 reproduction: Sdet throughput (scripts/hour)\n");
  PrintRule(78);
  printf("%-18s", "Scheme");
  for (int c : concurrency) {
    printf(" %8d-conc", c);
  }
  printf("\n");
  PrintRule(78);
  StatsSidecar sidecar("bench_fig6_sdet", args.stats_out);
  for (Scheme s : AllSchemes()) {
    printf("%-18s", std::string(SchemeName(s)).c_str());
    for (int c : concurrency) {
      printf(" %13.1f", RunSdet(s, c, sidecar));
    }
    printf("\n");
  }
  PrintRule(78);
  printf("Expected shape (paper fig 6): Flag 3-5%% over Conventional, Chains ~+1%%,\n");
  printf("No Order 50-70%% over Conventional, Soft Updates within ~2%% of No Order.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  return mufs::Main(args);
}
