// Figure 6: Sdet-like software-development throughput (scripts/hour) as
// a function of script concurrency, across the five schemes - plus the
// multi-disk extension: the same workload swept over striped-volume
// sizes (--disks / --stripe-unit), reporting per-disk utilization
// alongside throughput.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct SdetResult {
  double scripts_per_hour = 0;
  double utilization = 0;                // Aggregate (spindle-time weighted).
  std::vector<double> per_disk_util;     // One entry per member disk.
};

SdetResult RunSdet(Scheme scheme, int concurrency, uint32_t disks, const BenchArgs& args,
                   StatsSidecar& sidecar) {
  MachineConfig cfg = BenchConfig(scheme, /*alloc_init=*/scheme == Scheme::kSoftUpdates);
  ApplyFaultArgs(&cfg, args);
  cfg.disks = disks;
  Machine m(cfg);
  SetupFn setup = [](Machine&, Proc&) -> Task<void> { co_return; };
  UserFn body = [](Machine& mm, Proc& p, int u) -> Task<void> {
    (void)co_await SdetScript(mm, p, "/script" + std::to_string(u),
                              /*seed=*/1000 + static_cast<uint64_t>(u), /*operations=*/200);
  };
  RunMeasurement meas = RunMultiUser(m, concurrency, setup, body,
                                     /*drop_caches_after_setup=*/false);
  sidecar.Append(std::string(SchemeName(scheme)) + "/" + std::to_string(concurrency) + "c/" +
                     std::to_string(disks) + "d",
                 meas.stats_json);
  SdetResult result;
  double hours = ToSeconds(meas.wall) / 3600.0;
  result.scripts_per_hour = hours > 0 ? static_cast<double>(concurrency) / hours : 0;
  SimTime now = m.engine().Now();
  uint64_t busy_total = 0;
  for (size_t d = 0; d < m.NumDisks(); ++d) {
    std::string name =
        m.IsMulti() ? "disk" + std::to_string(d) + ".busy_ns" : std::string("disk.busy_ns");
    uint64_t busy = m.stats().counter(name).value();
    busy_total += busy;
    result.per_disk_util.push_back(now > 0 ? static_cast<double>(busy) /
                                                 static_cast<double>(now)
                                           : 0.0);
  }
  result.utilization =
      now > 0 ? static_cast<double>(busy_total) /
                    (static_cast<double>(now) * static_cast<double>(m.NumDisks()))
              : 0.0;
  return result;
}

int Main(const BenchArgs& args) {
  // --users=N narrows the sweep to a single concurrency level.
  const std::vector<int> concurrency =
      args.users > 0 ? std::vector<int>{args.users} : std::vector<int>{1, 2, 4, 8};
  printf("Figure 6 reproduction: Sdet throughput (scripts/hour)");
  if (args.disks > 1) {
    printf("  [disks=%u]", args.disks);
  }
  printf("\n");
  PrintRule(78);
  printf("%-18s", "Scheme");
  for (int c : concurrency) {
    printf(" %8d-conc", c);
  }
  printf("\n");
  PrintRule(78);
  StatsSidecar sidecar("bench_fig6_sdet", args);
  for (Scheme s : AllSchemes()) {
    printf("%-18s", std::string(SchemeName(s)).c_str());
    for (int c : concurrency) {
      printf(" %13.1f", RunSdet(s, c, args.disks, args, sidecar).scripts_per_hour);
    }
    printf("\n");
  }
  PrintRule(78);
  printf("Expected shape (paper fig 6): Flag 3-5%% over Conventional, Chains ~+1%%,\n");
  printf("No Order 50-70%% over Conventional, Soft Updates within ~2%% of No Order.\n");

  if (args.disks == 1) {
    // Multi-disk scaling sweep (striped volume + sharded metadata): the
    // 8-script workload over growing disk counts. Skipped when --disks
    // pins a single volume size above.
    const int conc = args.users > 0 ? args.users : 8;
    const std::vector<uint32_t> disk_counts = {1, 2, 4, 8};
    printf("\nMulti-disk scaling: Sdet at %d scripts, scripts/hour (per-disk util %%)\n",
           conc);
    PrintRule(78);
    printf("%-18s", "Scheme");
    for (uint32_t d : disk_counts) {
      printf(" %10u-disk", d);
    }
    printf("\n");
    PrintRule(78);
    for (Scheme s : AllSchemes()) {
      printf("%-18s", std::string(SchemeName(s)).c_str());
      for (uint32_t d : disk_counts) {
        SdetResult r = RunSdet(s, conc, d, args, sidecar);
        printf(" %9.1f(%2.0f)", r.scripts_per_hour, 100.0 * r.utilization);
      }
      printf("\n");
    }
    PrintRule(78);
    printf("Throughput should scale with disk count until the workload's "
           "parallelism runs out;\nper-disk utilization (parenthesized) drops "
           "as spindles are added.\n");
  }
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  return mufs::Main(args);
}
