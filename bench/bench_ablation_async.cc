// Async-scheme ablation: what does decoupling visibility from
// durability buy, and what does the bounded-staleness window cost?
//
// Part 1 - op-return latency: the remove and Sdet benchmarks across the
// schemes whose return-time contract differs (Soft Updates, Journaling,
// Async, with No Order as the lower bound). The headline metric is the
// average return latency of a metadata mutation (unlink/rmdir for
// remove; create/unlink/mkdir/rmdir/rename for Sdet): the time the
// caller is blocked inside the op. Async returns as soon as the update
// is visible in the cache, so its per-op latency must sit strictly
// below Journaling (commit gating) and Soft Updates (dependency CPU +
// rollback writes). End-to-end elapsed time is reported as context; it
// includes the background flusher's durability writes, which Async pays
// inside the window while No Order defers them past benchmark end.
//
// Part 2 - staleness x commit-interval sweep: the Async scheme alone,
// sweeping the bounded-staleness window against the background flush
// (commit) interval, reporting latency plus the ledger's own accounting
// (admission stalls, flush epochs) so the latency/durability-lag
// trade-off is visible as a table.
//
// --quick trims the sweep for CI; --json-out=PATH writes the perf
// trajectory (default BENCH_async.json in the working directory).
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_common.h"

namespace mufs {
namespace {

// Pulls one "counter":value out of a DumpStatsJson string (the dump is
// deterministic and flat, so plain string search is enough here).
uint64_t CounterFromJson(const std::string& json, const std::string& name) {
  std::string key = "\"" + name + "\":";
  size_t at = json.find(key);
  if (at == std::string::npos) {
    return 0;
  }
  return std::strtoull(json.c_str() + at + key.size(), nullptr, 10);
}

struct LatencyMeasurement {
  RunMeasurement rm;
  MetaOpLatency lat;  // Summed over all users.
};

// The remove benchmark with per-op return-latency accounting threaded
// through (RunRemoveBenchmark, plus a MetaOpLatency per user).
LatencyMeasurement RunRemoveLatency(const MachineConfig& cfg, int users,
                                    const TreeSpec& tree) {
  Machine m(cfg);
  std::vector<MetaOpLatency> lats(static_cast<size_t>(users));
  SetupFn setup = [&tree, users](Machine& mm, Proc& p) -> Task<void> {
    for (int u = 0; u < users; ++u) {
      FsStatus s = co_await PopulateTree(mm, p, tree, "/tree" + std::to_string(u));
      (void)s;
    }
  };
  UserFn body = [&tree, &lats](Machine& mm, Proc& p, int u) -> Task<void> {
    FsStatus s = co_await RemoveTree(mm, p, tree, "/tree" + std::to_string(u),
                                     &lats[static_cast<size_t>(u)]);
    (void)s;
  };
  LatencyMeasurement out;
  out.rm = RunMultiUser(m, users, setup, body, /*drop_caches_after_setup=*/true);
  for (const MetaOpLatency& l : lats) {
    out.lat.ops += l.ops;
    out.lat.total += l.total;
  }
  return out;
}

LatencyMeasurement RunSdetLatency(const MachineConfig& cfg, int scripts, int operations) {
  Machine m(cfg);
  std::vector<MetaOpLatency> lats(static_cast<size_t>(scripts));
  SetupFn setup = [](Machine&, Proc&) -> Task<void> { co_return; };
  UserFn body = [operations, &lats](Machine& mm, Proc& p, int u) -> Task<void> {
    (void)co_await SdetScript(mm, p, "/script" + std::to_string(u),
                              /*seed=*/1000 + static_cast<uint64_t>(u), operations,
                              &lats[static_cast<size_t>(u)]);
  };
  LatencyMeasurement out;
  out.rm = RunMultiUser(m, scripts, setup, body, /*drop_caches_after_setup=*/false);
  for (const MetaOpLatency& l : lats) {
    out.lat.ops += l.ops;
    out.lat.total += l.total;
  }
  return out;
}

struct BaselineRow {
  Scheme scheme;
  double remove_op_ms = 0;    // Avg return latency per unlink/rmdir.
  double sdet_op_ms = 0;      // Avg return latency per metadata mutation.
  double remove_elapsed_s = 0;
  double sdet_elapsed_s = 0;
};

struct SweepCell {
  uint64_t staleness_ms = 0;
  uint64_t flush_interval_ms = 0;  // 0 = derived (staleness / 4).
  double remove_op_ms = 0;
  double remove_elapsed_s = 0;
  uint64_t op_stalls = 0;
  uint64_t epochs = 0;
  uint64_t barrier_stalls = 0;
};

int Main(const BenchArgs& args, bool quick, const std::string& json_out) {
  TreeGenOptions topts;
  topts.file_count = quick ? 60 : 150;
  topts.total_bytes = quick ? 600'000 : 1'500'000;
  topts.dir_count = 8;
  TreeSpec tree = GenerateTree(topts);
  const int users = args.users > 0 ? args.users : (quick ? 2 : 4);
  const int sdet_ops = quick ? 120 : 200;

  printf("Async ablation: op-return latency with decoupled visibility/durability\n");
  printf("(remove: %d users x %zu-file tree; Sdet: %d scripts x %d ops;\n", users,
         tree.files.size(), users, sdet_ops);
  printf(" op-latency = avg time a caller is blocked per metadata mutation)\n");
  PrintRule(92);
  printf("%-18s %14s %14s %14s %14s\n", "Scheme", "RemoveOp(ms)", "SdetOp(ms)",
         "RemoveElap(s)", "SdetElap(s)");
  PrintRule(92);

  StatsSidecar sidecar("bench_ablation_async", args);
  const Scheme kLatencySchemes[] = {Scheme::kSoftUpdates, Scheme::kJournaling,
                                    Scheme::kAsync, Scheme::kNoOrder};
  std::vector<BaselineRow> baselines;
  for (Scheme s : kLatencySchemes) {
    MachineConfig cfg = BenchConfig(s, /*alloc_init=*/s == Scheme::kSoftUpdates);
    ApplyFaultArgs(&cfg, args);
    if (s == Scheme::kAsync && args.staleness_ns == 0) {
      // Baseline staleness bound: 2 s. Wide enough that the deadline-driven
      // flusher keeps durability writes off the benchmark's critical phase
      // (the sweep below shows the latency curve down to 25 ms), yet 15x
      // tighter than the 30 s cadence the conventional delayed-write cache
      // already accepts. --staleness-ns overrides it.
      cfg.async_staleness_window = Msec(2000);
    }
    BaselineRow row;
    row.scheme = s;
    LatencyMeasurement rem = RunRemoveLatency(cfg, users, tree);
    row.remove_op_ms = rem.lat.AvgMs();
    row.remove_elapsed_s = rem.rm.ElapsedAvgSeconds();
    sidecar.Append(std::string(SchemeName(s)) + "/remove", rem.rm.stats_json);
    LatencyMeasurement sd = RunSdetLatency(cfg, users, sdet_ops);
    row.sdet_op_ms = sd.lat.AvgMs();
    row.sdet_elapsed_s = sd.rm.ElapsedAvgSeconds();
    sidecar.Append(std::string(SchemeName(s)) + "/sdet", sd.rm.stats_json);
    baselines.push_back(row);
    printf("%-18s %14.4f %14.4f %14.3f %14.3f\n", std::string(SchemeName(s)).c_str(),
           row.remove_op_ms, row.sdet_op_ms, row.remove_elapsed_s, row.sdet_elapsed_s);
  }
  PrintRule(92);
  printf("Expected shape: Async per-op latency strictly below Journaling and Soft\n");
  printf("Updates on both benchmarks (ops return at visibility, not durability).\n");
  printf("Elapsed time is context only: Async pays its durability writes inside\n");
  printf("the window via flush epochs, where No Order defers them past the end.\n\n");

  // --- staleness x commit-interval sweep (Async only) ----------------
  const std::vector<uint64_t> staleness_ms =
      quick ? std::vector<uint64_t>{100, 500} : std::vector<uint64_t>{25, 100, 500, 2000};
  const std::vector<uint64_t> interval_ms =
      quick ? std::vector<uint64_t>{0, 50} : std::vector<uint64_t>{0, 5, 50};

  printf("Staleness x commit-interval sweep (Async remove, %d users)\n", users);
  PrintRule(92);
  printf("%-14s %-12s %12s %12s %10s %8s %14s\n", "Staleness(ms)", "Commit(ms)",
         "RemoveOp(ms)", "Elapsed(s)", "OpStalls", "Epochs", "BarrierStalls");
  PrintRule(92);
  std::vector<SweepCell> sweep;
  for (uint64_t st : staleness_ms) {
    for (uint64_t iv : interval_ms) {
      MachineConfig cfg = BenchConfig(Scheme::kAsync);
      ApplyFaultArgs(&cfg, args);
      cfg.async_staleness_window = Msec(static_cast<int64_t>(st));
      cfg.async_flush_interval = Msec(static_cast<int64_t>(iv));
      LatencyMeasurement rem = RunRemoveLatency(cfg, users, tree);
      SweepCell cell;
      cell.staleness_ms = st;
      cell.flush_interval_ms = iv;
      cell.remove_op_ms = rem.lat.AvgMs();
      cell.remove_elapsed_s = rem.rm.ElapsedAvgSeconds();
      cell.op_stalls = CounterFromJson(rem.rm.stats_json, "async.op_stalls");
      cell.epochs = CounterFromJson(rem.rm.stats_json, "async.epochs");
      cell.barrier_stalls = CounterFromJson(rem.rm.stats_json, "async.barrier_stalls");
      sweep.push_back(cell);
      sidecar.Append("sweep/st" + std::to_string(st) + "ms/iv" + std::to_string(iv) + "ms",
                     rem.rm.stats_json);
      std::string commit = iv == 0 ? "auto" : std::to_string(iv);
      printf("%-14llu %-12s %12.4f %12.3f %10llu %8llu %14llu\n",
             static_cast<unsigned long long>(st), commit.c_str(), cell.remove_op_ms,
             cell.remove_elapsed_s, static_cast<unsigned long long>(cell.op_stalls),
             static_cast<unsigned long long>(cell.epochs),
             static_cast<unsigned long long>(cell.barrier_stalls));
    }
  }
  PrintRule(92);
  printf("Expected shape: per-op latency is flat in the staleness window until the\n");
  printf("window is short enough that admission stalls appear (op_stalls > 0);\n");
  printf("shorter commit intervals buy a smaller durability lag for more epochs.\n");

  // Perf-trajectory summary (consumed by CI as BENCH_async_ci.json).
  std::string path = json_out.empty() ? "BENCH_async.json" : json_out;
  if (FILE* f = fopen(path.c_str(), "w")) {
    fprintf(f, "{\n  \"bench\": \"bench_ablation_async\",\n");
    fprintf(f, "  \"unit\": \"avg_ms_per_metadata_op\",\n  \"users\": %d,\n", users);
    fprintf(f, "  \"baselines\": [\n");
    for (size_t i = 0; i < baselines.size(); ++i) {
      const BaselineRow& r = baselines[i];
      fprintf(f,
              "    {\"scheme\": \"%s\", \"remove_op_ms\": %.4f, \"sdet_op_ms\": %.4f, "
              "\"remove_elapsed_s\": %.4f, \"sdet_elapsed_s\": %.4f}%s\n",
              std::string(SchemeName(r.scheme)).c_str(), r.remove_op_ms, r.sdet_op_ms,
              r.remove_elapsed_s, r.sdet_elapsed_s,
              i + 1 < baselines.size() ? "," : "");
    }
    fprintf(f, "  ],\n  \"staleness_sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepCell& c = sweep[i];
      fprintf(f,
              "    {\"staleness_ms\": %llu, \"commit_interval_ms\": %llu, "
              "\"remove_op_ms\": %.4f, \"remove_elapsed_s\": %.4f, "
              "\"op_stalls\": %llu, \"epochs\": %llu, \"barrier_stalls\": %llu}%s\n",
              static_cast<unsigned long long>(c.staleness_ms),
              static_cast<unsigned long long>(c.flush_interval_ms), c.remove_op_ms,
              c.remove_elapsed_s, static_cast<unsigned long long>(c.op_stalls),
              static_cast<unsigned long long>(c.epochs),
              static_cast<unsigned long long>(c.barrier_stalls),
              i + 1 < sweep.size() ? "," : "");
    }
    fprintf(f, "  ]\n}\n");
    fclose(f);
    printf("[perf trajectory: %s]\n", path.c_str());
  } else {
    fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }

  // The scheme's headline claim is checked right here: visibly-faster
  // returns than both durability-coupled schemes on both benchmarks.
  int rc = 0;
  const BaselineRow* async_row = nullptr;
  for (const BaselineRow& r : baselines) {
    if (r.scheme == Scheme::kAsync) {
      async_row = &r;
    }
  }
  for (const BaselineRow& r : baselines) {
    if (r.scheme != Scheme::kSoftUpdates && r.scheme != Scheme::kJournaling) {
      continue;
    }
    if (async_row->remove_op_ms >= r.remove_op_ms ||
        async_row->sdet_op_ms >= r.sdet_op_ms) {
      // --quick shrinks the phases below the background machinery's
      // timescale (one syncer pass covers the whole run), so the schemes
      // can tie to the tick; only the full run enforces strict ordering.
      fprintf(stderr, "%s: Async op-return latency not strictly below %s\n",
              quick ? "warning" : "ERROR", std::string(SchemeName(r.scheme)).c_str());
      if (!quick) {
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  bool quick = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a.rfind("--json-out=", 0) == 0) {
      json_out = argv[i] + 11;
    }
  }
  return mufs::Main(args, quick, json_out);
}
