// Workload-personality benchmark: the four server-style personalities
// (mail delivery, build farm, web-asset swap, cache cleanup) across all
// six schemes. Not a paper table — these extend the paper's copy/remove/
// Sdet workloads with metadata-update mixes dominated by rename, stat
// storms and unlink churn, where the ordering schemes separate the most.
//
// Honors --users=N (operations per personality run, default 200),
// --fault-rate/--fault-seed (uniform fault injection) and --queue-depth.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct Personality {
  const char* name;
  Task<FsStatus> (*fn)(Machine&, Proc&, const std::string&, uint64_t, int,
                       PersonalityOpMix*);
};

const Personality kPersonalities[] = {
    {"mail-server", &MailServerWorkload},
    {"build-farm", &BuildFarmWorkload},
    {"web-asset", &WebAssetSwapWorkload},
    {"cache-clean", &CacheCleanupWorkload},
};

struct PersonalityRun {
  double seconds = 0;
  PersonalityOpMix mix;
};

PersonalityRun RunPersonality(Scheme scheme, const Personality& p, int operations,
                              const BenchArgs& args, StatsSidecar& sidecar) {
  MachineConfig cfg = BenchConfig(scheme, /*alloc_init=*/scheme == Scheme::kSoftUpdates);
  ApplyFaultArgs(&cfg, args);
  Machine m(cfg);
  Proc proc = m.MakeProc("u");
  PersonalityRun run;
  bool done = false;
  auto root = [](Machine* mm, Proc* pp, const Personality* pers, int ops,
                 PersonalityOpMix* mix, bool* flag) -> Task<void> {
    co_await mm->Boot(*pp);
    (void)co_await pers->fn(*mm, *pp, "/w", /*seed=*/42, ops, mix);
    co_await mm->Shutdown(*pp);
    *flag = true;
  };
  m.engine().Spawn(root(&m, &proc, &p, operations, &run.mix, &done), "bench");
  m.engine().RunUntil([&] { return done; });
  run.seconds = ToSeconds(m.engine().Now());
  sidecar.Append(std::string(SchemeName(scheme)) + "/" + p.name, m.DumpStatsJson());
  return run;
}

int Main(const BenchArgs& args) {
  const int operations = args.users > 0 ? args.users : 200;
  printf("Workload personalities: metadata ops/sec by scheme (%d ops each)\n", operations);
  PrintRule(78);
  printf("%-18s", "Scheme");
  for (const Personality& p : kPersonalities) {
    printf(" %12s", p.name);
  }
  printf("\n");
  PrintRule(78);
  StatsSidecar sidecar("bench_personalities", args);
  for (Scheme s : AllSchemes()) {
    printf("%-18s", std::string(SchemeName(s)).c_str());
    for (const Personality& p : kPersonalities) {
      PersonalityRun run = RunPersonality(s, p, operations, args, sidecar);
      double rate = run.seconds > 0 ? static_cast<double>(run.mix.Total()) / run.seconds : 0;
      printf(" %12.1f", rate);
    }
    printf("\n");
  }
  PrintRule(78);
  printf("Expected shape: ordered schemes trail No Order most on the rename- and\n");
  printf("unlink-heavy mixes (mail, web-asset); Soft Updates tracks No Order;\n");
  printf("Journaling pays its log-write tax hardest on the create-heavy mixes.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv);
  return mufs::Main(args);
}
