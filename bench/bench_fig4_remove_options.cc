// Figure 4: the -NR / -CB options for the Part flag scheme on the 4-user
// remove benchmark (differences are larger than for copy).
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct Variant {
  const char* name;
  bool nr;
  bool cb;
};

int Main(const BenchArgs& args) {
  const Variant kVariants[] = {
      {"Part", false, false},
      {"Part-NR", true, false},
      {"Part-CB", false, true},
      {"Part-NR/CB", true, true},
  };
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Figure 4 reproduction: Part flag options, %d-user remove\n", users);
  PrintRule(86);
  printf("%-12s %12s %10s %20s %16s\n", "Variant", "Elapsed(s)", "CPU(s)", "AvgDriverResp(ms)",
         "WriteLockWaits");
  PrintRule(86);
  StatsSidecar sidecar("bench_fig4_remove_options", args);
  for (const Variant& v : kVariants) {
    MachineConfig cfg = BenchConfig(Scheme::kSchedulerFlag);
    cfg.flag_semantics = FlagSemantics::kPart;
    cfg.reads_bypass = v.nr;
    cfg.copy_blocks = v.cb;
    Machine m(cfg);
    SetupFn setup = [&tree, users](Machine& mm, Proc& p) -> Task<void> {
      for (int u = 0; u < users; ++u) {
        (void)co_await PopulateTree(mm, p, tree, "/tree" + std::to_string(u));
      }
    };
    UserFn body = [&tree](Machine& mm, Proc& p, int u) -> Task<void> {
      (void)co_await RemoveTree(mm, p, tree, "/tree" + std::to_string(u));
    };
    RunMeasurement meas = RunMultiUser(m, users, setup, body, /*drop_caches=*/true);
    sidecar.Append(v.name, meas.stats_json);
    printf("%-12s %12.2f %10.2f %20.1f %16llu\n", v.name, meas.ElapsedAvgSeconds(),
           meas.cpu_seconds_total, meas.avg_response_ms,
           static_cast<unsigned long long>(m.cache().stats().write_lock_waits));
  }
  PrintRule(86);
  printf("Expected shape (paper fig 4): same trend as fig 3 but more extreme;\n");
  printf("queueing delays of many seconds for the full option set.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
