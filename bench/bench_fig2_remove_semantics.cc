// Figure 2: ordering-flag semantics for the 1-user remove benchmark.
// (a) user-observed elapsed time, (b) average driver response time.
//
// The paper's counter-intuitive result: with -NR, MORE restrictive flag
// semantics give LOWER user-observed times, because fewer eligible writes
// compete with the user's reads - while driver response times explode to
// seconds as dependent writes queue up.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct Variant {
  const char* name;
  Scheme scheme;
  FlagSemantics semantics;
  bool nr;
  bool ignore = false;
};

int Main(const BenchArgs& args) {
  const Variant kVariants[] = {
      {"Part", Scheme::kSchedulerFlag, FlagSemantics::kPart, false},
      {"Full-NR", Scheme::kSchedulerFlag, FlagSemantics::kFull, true},
      {"Back-NR", Scheme::kSchedulerFlag, FlagSemantics::kBack, true},
      {"Part-NR", Scheme::kSchedulerFlag, FlagSemantics::kPart, true},
      {"Ignore", Scheme::kSchedulerFlag, FlagSemantics::kPart, true, true},
  };
  TreeSpec tree = GenerateTree();
  printf("Figure 2 reproduction: flag semantics, %d-user remove\n", args.users);
  PrintRule(70);
  printf("%-10s %14s %22s\n", "Flag", "Elapsed(s)", "AvgDriverResp(ms)");
  PrintRule(70);
  StatsSidecar sidecar("bench_fig2_remove_semantics", args);
  for (const Variant& v : kVariants) {
    MachineConfig cfg = BenchConfig(v.scheme);
    cfg.flag_semantics = v.semantics;
    cfg.reads_bypass = v.nr;
    cfg.ignore_flags = v.ignore;
    RunMeasurement meas = RunRemoveBenchmark(cfg, args.users, tree);
    sidecar.Append(v.name, meas.stats_json);
    printf("%-10s %14.2f %22.1f\n", v.name, meas.ElapsedAvgSeconds(), meas.avg_response_ms);
  }
  PrintRule(70);
  printf("Expected shape (paper fig 2): with -NR, user-observed elapsed time\n");
  printf("drops sharply (reads bypass the queued ordered writes) while driver\n");
  printf("response times reach seconds; Ignore is fastest on both.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/1);
  return mufs::Main(args);
}
