// Journaling ablation: group-commit interval x log size for the
// metadata-update churn workload (per-user create/remove of 1 KB files).
//
// The two knobs trade off against each other: longer commit intervals
// batch more updates per transaction (fewer log writes per operation)
// but hold more dirty metadata in memory; smaller logs force checkpoint
// stalls, which serialize against the in-place flush of the whole cache.
// A final column reports what crash recovery would have to do at the end
// of the run (committed transactions still in the ring).
#include "bench/bench_common.h"

#include "src/journal/journal_recovery.h"

namespace mufs {
namespace {

uint64_t Metric(Machine& m, const char* name) {
  return m.stats().counter(name).value();
}

int Main(const BenchArgs& args) {
  const uint32_t kLogBlocks[] = {64, 256, 1024};
  const struct {
    SimDuration interval;
    const char* name;
  } kIntervals[] = {
      {Msec(250), "0.25s"},
      {Sec(1), "1s"},
      {Sec(4), "4s"},
  };
  const int users = args.users;
  // Enough churn to span many group-commit intervals and wrap the
  // smaller rings (journaled metadata updates run at memory speed, so a
  // create/remove pair costs well under a millisecond of simulated time).
  const int kFilesPerUser = 1200;

  printf("Journaling ablation: log size x group-commit interval, %d-user create/remove\n",
         users);
  PrintRule(100);
  printf("%-10s %-9s %12s %8s %10s %8s %8s %8s %12s\n", "LogBlocks", "Interval", "Elapsed(s)",
         "Txns", "LogWrites", "Ckpts", "Stalls", "Forced", "ReplayTxns");
  PrintRule(100);

  StatsSidecar sidecar("bench_ablation_journal", args);
  for (uint32_t log_blocks : kLogBlocks) {
    for (const auto& iv : kIntervals) {
      MachineConfig cfg = BenchConfig(Scheme::kJournaling);
      cfg.journal_log_blocks = log_blocks;
      cfg.journal_commit_interval = iv.interval;
      Machine m(cfg);
      SetupFn setup = [users](Machine& mm, Proc& p) -> Task<void> {
        for (int u = 0; u < users; ++u) {
          (void)co_await mm.fs().Mkdir(p, "/u" + std::to_string(u));
        }
      };
      UserFn body = [kFilesPerUser](Machine& mm, Proc& p, int u) -> Task<void> {
        (void)co_await CreateRemoveFiles(mm, p, "/u" + std::to_string(u), kFilesPerUser, 1024);
      };
      RunMeasurement meas = RunMultiUser(m, users, setup, body,
                                         /*drop_caches_after_setup=*/false);
      // What a crash at end-of-run would replay: committed transactions
      // whose in-place checkpoint hasn't happened yet.
      DiskImage snapshot = m.CrashNow();
      JournalReplayReport replay = JournalRecovery(&snapshot).Run();

      std::string label =
          "log" + std::to_string(log_blocks) + "/interval" + iv.name;
      sidecar.Append(label, meas.stats_json);
      printf("%-10u %-9s %12.2f %8llu %10llu %8llu %8llu %8llu %12llu\n", log_blocks, iv.name,
             meas.ElapsedAvgSeconds(),
             static_cast<unsigned long long>(Metric(m, "journal.txns")),
             static_cast<unsigned long long>(Metric(m, "journal.log_writes")),
             static_cast<unsigned long long>(Metric(m, "journal.checkpoints")),
             static_cast<unsigned long long>(Metric(m, "journal.checkpoint_stalls")),
             static_cast<unsigned long long>(Metric(m, "journal.forced_commits")),
             static_cast<unsigned long long>(replay.txns_replayed));
    }
  }
  PrintRule(100);
  printf("Expected shape: longer intervals batch more updates per txn (fewer log\n");
  printf("writes); small logs checkpoint often, stalling commits behind cache flushes.\n");
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/2);
  return mufs::Main(args);
}
