// Table 2: scheme comparison using the 4-user remove benchmark.
#include "bench/bench_common.h"

namespace mufs {
namespace {

struct PaperRow {
  const char* scheme;
  double elapsed, percent, cpu;
  int requests;
  double resp_ms;
};

constexpr PaperRow kPaper[] = {
    {"Conventional", 80.24, 1050.0, 12.68, 4600, 68.02},
    {"Scheduler Flag", 24.97, 326.8, 13.64, 4631, 22173.0},
    {"Scheduler Chains", 31.03, 406.2, 14.80, 4618, 2495.0},
    {"Soft Updates", 6.71, 87.83, 5.64, 391, 73.53},
    {"No Order", 7.64, 100.0, 7.44, 278, 84.03},
};

int Main(const BenchArgs& args) {
  const int users = args.users;
  TreeSpec tree = GenerateTree();
  printf("Table 2 reproduction: %d-user remove of %zu-file trees\n", users,
         tree.files.size());
  PrintRule();
  printf("%-18s %12s %10s %10s %10s %12s\n", "Scheme", "Elapsed(s)", "%NoOrder", "CPU(s)",
         "DiskReqs", "AvgResp(ms)");
  PrintRule();

  double no_order_elapsed = 0;
  StatsSidecar sidecar("bench_table2_remove", args);
  std::vector<std::pair<Scheme, RunMeasurement>> results;
  for (Scheme s : AllSchemes()) {
    MachineConfig cfg = BenchConfig(s);
    ApplyFaultArgs(&cfg, args);
    RunMeasurement meas = RunRemoveBenchmark(cfg, users, tree);
    if (s == Scheme::kNoOrder) {
      no_order_elapsed = meas.ElapsedAvgSeconds();
    }
    sidecar.Append(std::string(SchemeName(s)), meas.stats_json);
    results.emplace_back(s, meas);
  }
  for (const auto& [s, meas] : results) {
    printf("%-18s %12.2f %10.1f %10.2f %10llu %12.1f\n", std::string(SchemeName(s)).c_str(),
           meas.ElapsedAvgSeconds(),
           no_order_elapsed > 0 ? 100.0 * meas.ElapsedAvgSeconds() / no_order_elapsed : 0.0,
           meas.cpu_seconds_total, static_cast<unsigned long long>(meas.disk_requests),
           meas.avg_response_ms);
  }
  PrintRule();
  printf("Paper:\n");
  for (const PaperRow& r : kPaper) {
    printf("%-18s %12.2f %10.1f %10.2f %10d %12.1f\n", r.scheme, r.elapsed, r.percent, r.cpu,
           r.requests, r.resp_ms);
  }
  return 0;
}

}  // namespace
}  // namespace mufs

int main(int argc, char** argv) {
  mufs::BenchArgs args = mufs::ParseBenchArgs(&argc, argv, /*default_users=*/4);
  return mufs::Main(args);
}
