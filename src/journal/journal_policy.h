// JournalPolicy: OrderingPolicy for Scheme::kJournaling.
//
// Instead of ordering individual in-place writes (sync writes, flags,
// chains) or recording per-field dependencies (soft updates), journaling
// satisfies all of the paper's ordering rules with one mechanism: every
// metadata block touched by an operation is captured into the open
// journal transaction, and in-place writes of captured blocks are
// substituted (via DepHooks::PrepareWrite) with the block's last
// *committed* image. Home locations therefore always reflect a prefix of
// committed transactions, and recovery is log replay - never fsck repair.
#ifndef MUFS_SRC_JOURNAL_JOURNAL_POLICY_H_
#define MUFS_SRC_JOURNAL_JOURNAL_POLICY_H_

#include "src/fs/policy.h"
#include "src/journal/journal_manager.h"

namespace mufs {

class JournalPolicy : public OrderingPolicy, public DepHooks {
 public:
  explicit JournalPolicy(JournalManager* jm) : jm_(jm) {}

  std::string_view Name() const override { return "Journaling"; }
  DepHooks* CacheHooks() override { return this; }
  bool WriteThroughInodes() const override { return true; }

  // DepHooks: substitute the committed image for every in-place write of
  // a journal-managed block. Uncommitted updates live only in memory and
  // in the log.
  std::shared_ptr<const BlockData> PrepareWrite(Buf& buf) override;

  // OrderingPolicy hooks.
  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  Task<void> FlushAll(Proc& proc) override;

  bool BlockBusy(uint32_t blkno) const override { return jm_->BlockBusy(blkno); }
  Task<void> OpBegin(Proc& proc) override;
  void OpEnd() override { jm_->OpEnd(); }
  void NoteInodeUpdate(Proc& proc, Inode& ip) override;

 private:
  // Captures the bitmap block covering `index` (bit position within the
  // bitmap region starting at `region_start`) into the open transaction.
  Task<void> CaptureBitmapBlock(uint32_t region_start, uint32_t index);

  JournalManager* jm_;
};

}  // namespace mufs

#endif  // MUFS_SRC_JOURNAL_JOURNAL_POLICY_H_
