#include "src/journal/journal_policy.h"

#include "src/driver/disk_driver.h"
#include "src/fs/filesystem.h"
#include "src/sim/engine.h"

namespace mufs {

std::shared_ptr<const BlockData> JournalPolicy::PrepareWrite(Buf& buf) {
  return jm_->StableImage(buf.blkno());
}

Task<void> JournalPolicy::OpBegin(Proc& proc) {
  (void)proc;
  co_await jm_->OpBegin();
}

void JournalPolicy::NoteInodeUpdate(Proc& proc, Inode& ip) {
  (void)proc;
  if (ip.itable_buf != nullptr) {
    jm_->Capture(ip.itable_buf);
  }
}

Task<void> JournalPolicy::CaptureBitmapBlock(uint32_t region_start, uint32_t index) {
  BufRef bm = co_await fs()->cache()->Bread(region_start + index / kBitsPerBlock);
  if (bm == nullptr) {
    fs()->NoteIoError();  // Bitmap unreadable; the delta misses this commit.
    co_return;
  }
  jm_->Capture(bm);
}

Task<void> JournalPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                                          bool init_required, BlockRole role) {
  NoteOrderingPoint("alloc", "logged");
  if (role != BlockRole::kFileData) {
    // Directory/indirect content is metadata: journaled from birth. Its
    // zero-init rides in the log; no synchronous init write is needed.
    jm_->Capture(data_buf);
  } else if (init_required) {
    // File data is not journaled (data journaling is out of scope), so
    // alloc-init keeps the conventional synchronous zero write.
    BlockDevice* driver = fs()->cache()->driver();
    uint64_t id = driver->IssueWrite(data_buf->blkno(), {fs()->cache()->ZeroBlock()});
    SimTime t0 = fs()->engine()->Now();
    IoStatus init_status = co_await driver->WaitFor(id);
    proc.io_wait += fs()->engine()->Now() - t0;
    if (init_status != IoStatus::kOk) {
      fs()->NoteIoError();  // Stale data may be visible through the new file.
    }
  }
  co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
  if (loc.kind == PtrLoc::Kind::kIndirectSlot) {
    // Inode-resident pointers were captured via NoteInodeUpdate inside
    // CommitBlockPointer; indirect-slot carriers are captured here.
    jm_->Capture(loc.indirect_buf);
  }
  co_await CaptureBitmapBlock(fs()->sb().block_bitmap_start, data_buf->blkno());
}

Task<void> JournalPolicy::SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                                         std::vector<BufRef> updated_indirects) {
  (void)ip;  // Reset inode pointers were captured via NoteInodeUpdate.
  NoteOrderingPoint("block_free", "logged");
  for (BufRef& ibuf : updated_indirects) {
    jm_->Capture(ibuf);
  }
  // Clear the bitmap bits now and capture the affected bitmap blocks, so
  // the frees commit atomically with the pointer resets. Until the
  // transaction is durable the blocks stay allocator-busy: their new
  // content would be written in place, under a committed state in which
  // the old file still owns them (rule 2, log-side).
  jm_->GateFreedBlocks(blocks);
  co_await fs()->FreeBlocksInBitmap(proc, blocks);
  uint32_t last_bm = UINT32_MAX;
  for (uint32_t blkno : blocks) {
    if (blkno / kBitsPerBlock == last_bm) {
      continue;
    }
    last_bm = blkno / kBitsPerBlock;
    co_await CaptureBitmapBlock(fs()->sb().block_bitmap_start, blkno);
  }
}

Task<void> JournalPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                       Inode& target, bool new_inode) {
  (void)dir;
  (void)offset;
  (void)target;  // Captured via NoteInodeUpdate when it was initialized.
  NoteOrderingPoint("link_add", "logged");
  jm_->Capture(dir_buf);
  if (new_inode) {
    co_await CaptureBitmapBlock(fs()->sb().inode_bitmap_start, target.ino);
  }
}

Task<void> JournalPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                          DirEntry old_entry, uint32_t removed_ino,
                                          const RenameContext* rename) {
  (void)dir;
  (void)offset;
  (void)old_entry;
  NoteOrderingPoint("link_remove", "logged");
  if (rename != nullptr) {
    // Rule 1 comes for free: the new entry (captured by SetupLinkAdd) and
    // the cleared old entry commit in the same operation-atomic
    // transaction, so no committed state has the file entryless.
    NoteOrderingPoint("rename_fence", "logged");
  }
  jm_->Capture(dir_buf);
  co_await fs()->ReleaseLink(proc, removed_ino);
}

Task<void> JournalPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  // The cleared inode itself was captured via NoteInodeUpdate (mode reset
  // rides the truncation's inode update).
  NoteOrderingPoint("inode_free", "logged");
  co_await fs()->FreeInodeInBitmap(proc, ip.ino);
  co_await CaptureBitmapBlock(fs()->sb().inode_bitmap_start, ip.ino);
}

Task<void> JournalPolicy::FlushAll(Proc& proc) {
  co_await jm_->CommitNow();
  co_await DrainAllDirty(proc);
}

}  // namespace mufs
