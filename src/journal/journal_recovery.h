// Offline journal recovery: run against a raw DiskImage (a crash
// snapshot or a remounted image) BEFORE the file system mounts. Scans
// the log ring from the journal superblock's horizon, replays every
// transaction whose commit record validates, discards the torn tail,
// and re-stamps the journal superblock so the next mount starts with an
// empty ring and a fresh sequence horizon.
#ifndef MUFS_SRC_JOURNAL_JOURNAL_RECOVERY_H_
#define MUFS_SRC_JOURNAL_JOURNAL_RECOVERY_H_

#include <cstdint>

#include "src/disk/disk_image.h"
#include "src/journal/journal_format.h"

namespace mufs {

struct JournalReplayReport {
  bool journal_present = false;  // Image has a journal extent.
  uint64_t txns_replayed = 0;
  uint64_t blocks_replayed = 0;     // Home-location block writes applied.
  uint64_t log_blocks_scanned = 0;  // Ring blocks examined.
  bool torn_tail = false;           // Scan ended at an incomplete txn.
};

class JournalRecovery {
 public:
  // `base` rebases every image access: a sharded machine's shard is a
  // complete filesystem (superblock at `base`, journal extent inside its
  // region) living at an offset inside the shared volume image, and its
  // recovery runs in place there. 0 = the whole image (single-disk).
  explicit JournalRecovery(DiskImage* image, uint32_t base = 0)
      : image_(image), base_(base) {}

  // Replays committed transactions into the image. Idempotent: a second
  // run finds an empty ring and replays nothing.
  JournalReplayReport Run();

 private:
  DiskImage* image_;
  uint32_t base_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_JOURNAL_JOURNAL_RECOVERY_H_
