#include "src/journal/journal_recovery.h"

#include <cstring>
#include <utility>
#include <vector>

#include "src/fs/format.h"

namespace mufs {

JournalReplayReport JournalRecovery::Run() {
  JournalReplayReport report;
  BlockData raw;
  image_->Read(base_, &raw);
  SuperBlock sb;
  std::memcpy(&sb, raw.data(), sizeof(sb));
  if (sb.magic != kFsMagic || sb.journal_blocks < 2) {
    return report;
  }
  report.journal_present = true;
  const uint32_t jsb_blkno = sb.journal_start;
  const uint32_t log_first = sb.journal_start + 1;
  const uint32_t usable = sb.journal_blocks - 1;

  image_->Read(base_ + jsb_blkno, &raw);
  JournalSuperBlock jsb;
  std::memcpy(&jsb, raw.data(), sizeof(jsb));

  uint64_t expect_seq = 1;
  uint32_t off = 0;
  uint32_t scanned = 0;
  if (jsb.magic == kJournalMagic && jsb.log_blocks == usable && jsb.start_seq >= 1) {
    expect_seq = jsb.start_seq;
    off = jsb.start_offset % usable;

    // Walk whole transactions: descriptor runs carrying `expect_seq`,
    // closed by a commit record whose count and checksum validate.
    while (scanned < usable) {
      std::vector<std::pair<uint32_t, BlockData>> txn;
      uint64_t checksum = JournalChecksumSeed(expect_seq);
      uint32_t pos = off;
      uint32_t walked = scanned;
      bool committed = false;
      bool saw_record = false;
      while (walked < usable) {
        BlockData hb;
        image_->Read(base_ + log_first + pos, &hb);
        JournalRecordHeader h;
        std::memcpy(&h, hb.data(), sizeof(h));
        ++walked;
        if (h.magic != kJournalMagic || h.seq != expect_seq) {
          break;
        }
        saw_record = true;
        if (h.kind == static_cast<uint32_t>(JournalRecordKind::kCommit)) {
          JournalCommitRecord cr;
          std::memcpy(&cr, hb.data(), sizeof(cr));
          committed = cr.h.count == txn.size() && cr.checksum == checksum;
          pos = (pos + 1) % usable;
          break;
        }
        if (h.kind != static_cast<uint32_t>(JournalRecordKind::kDescriptor) || h.count == 0 ||
            h.count > kJournalTagsPerDescriptor || walked + h.count > usable) {
          break;
        }
        uint32_t tags[kJournalTagsPerDescriptor];
        std::memcpy(tags, hb.data() + sizeof(h), h.count * sizeof(uint32_t));
        pos = (pos + 1) % usable;
        bool bad_tag = false;
        for (uint32_t i = 0; i < h.count; ++i) {
          if (tags[i] >= sb.total_blocks) {
            bad_tag = true;
            break;
          }
          BlockData pb;
          image_->Read(base_ + log_first + pos, &pb);
          checksum = JournalChecksumUpdate(checksum, pb.data(), kBlockSize);
          txn.emplace_back(tags[i], pb);
          pos = (pos + 1) % usable;
          ++walked;
        }
        if (bad_tag) {
          break;
        }
      }
      report.log_blocks_scanned = walked;
      if (!committed) {
        report.torn_tail = saw_record;
        break;
      }
      for (auto& [blkno, data] : txn) {
        image_->Write(base_ + blkno, data, image_->LastWriteTime());
      }
      ++report.txns_replayed;
      report.blocks_replayed += txn.size();
      ++expect_seq;
      off = pos;
      scanned = walked;
    }
  }

  // Re-stamp the horizon: the ring is now logically empty and the next
  // transaction ever written must carry `expect_seq`, so stale records
  // (including any torn tail just discarded) can never validate again.
  JournalSuperBlock fresh;
  fresh.log_blocks = usable;
  fresh.start_seq = expect_seq;
  fresh.start_offset = 0;
  BlockData jb{};
  std::memcpy(jb.data(), &fresh, sizeof(fresh));
  image_->Write(base_ + jsb_blkno, jb, image_->LastWriteTime());
  return report;
}

}  // namespace mufs
