// On-disk format of the mufs write-ahead metadata journal.
//
// The journal extent reserved by Mkfs (SuperBlock::journal_start /
// journal_blocks) holds one journal superblock followed by a ring of log
// blocks. A transaction is one or more descriptor runs (descriptor block
// listing home block numbers, then the full payload images) closed by a
// single commit record carrying a checksum over every payload. Recovery
// scans the ring from the journal superblock's tail, replays transactions
// whose commit record validates, and discards the torn tail.
//
// Sequence numbers strictly increase for the lifetime of an image (the
// journal superblock persists the next expected sequence), so stale ring
// content from an earlier pass can never masquerade as a live record.
#ifndef MUFS_SRC_JOURNAL_JOURNAL_FORMAT_H_
#define MUFS_SRC_JOURNAL_JOURNAL_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "src/disk/geometry.h"

namespace mufs {

constexpr uint32_t kJournalMagic = 0x4a4e4c31;  // "JNL1"

enum class JournalRecordKind : uint32_t {
  kDescriptor = 1,
  kCommit = 2,
};

// Journal superblock, stored in the first block of the journal extent.
// Rewritten at mount and at every checkpoint; start_* names the oldest
// ring position recovery must scan from.
struct JournalSuperBlock {
  uint32_t magic = kJournalMagic;
  uint32_t log_blocks = 0;  // Ring size (journal extent minus this block).
  uint64_t start_seq = 0;   // Sequence of the oldest potentially-live txn.
  uint32_t start_offset = 0;  // Ring offset of that txn's first descriptor.
  uint32_t pad = 0;
};

// Common header of descriptor and commit blocks.
struct JournalRecordHeader {
  uint32_t magic = kJournalMagic;
  uint32_t kind = 0;  // JournalRecordKind.
  uint64_t seq = 0;
  uint32_t count = 0;  // Descriptor: payloads in this run. Commit: total.
  uint32_t pad = 0;
};

// A descriptor block is a JournalRecordHeader followed by `count` 32-bit
// home block numbers, one per payload block that follows in the ring.
constexpr uint32_t kJournalTagsPerDescriptor =
    (kBlockSize - sizeof(JournalRecordHeader)) / sizeof(uint32_t);

// Commit record: closes the transaction; checksum covers every payload
// image of the transaction in ring order.
struct JournalCommitRecord {
  JournalRecordHeader h;
  uint64_t checksum = 0;
};

// FNV-1a over payload bytes - cheap, deterministic, good enough to tell
// a torn tail from a complete transaction in a simulator.
inline uint64_t JournalChecksumSeed(uint64_t seq) {
  return 1469598103934665603ull ^ seq;
}
inline uint64_t JournalChecksumUpdate(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace mufs

#endif  // MUFS_SRC_JOURNAL_JOURNAL_FORMAT_H_
