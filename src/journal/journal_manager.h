// JournalManager: write-ahead metadata journaling (the sixth ordering
// scheme, Scheme::kJournaling).
//
// Model ("logging" as positioned against soft updates by the paper):
// every metadata block mutated by an operation is CAPTURED - a point-in-
// time image copied into the open transaction - by the JournalPolicy
// hooks. A committer daemon group-commits the open transaction on the
// syncer cadence: descriptor + payload images + checksummed commit record
// appended to the on-disk log ring. Only after the commit record is
// durable do the captured images become the new "stable" versions.
//
// The in-place home locations are only ever written through the buffer
// cache's PrepareWrite substitution hook, which swaps in the block's
// stable image. Stable storage outside the log therefore always holds
// some committed state, and crash recovery is: replay committed log
// transactions over the home locations, discard the torn tail. No fsck
// repair is ever needed.
//
// Transaction atomicity is per-operation: commits close an "op gate" and
// wait until no mutating fs operation is mid-flight, so every committed
// transaction is the image delta of N *complete* operations. Freed data
// blocks stay unallocatable (BlockBusy) until the freeing transaction is
// durable - the log-side analogue of scheduler chains' freed-resource
// tracking - because file data is written in place, un-journaled.
#ifndef MUFS_SRC_JOURNAL_JOURNAL_MANAGER_H_
#define MUFS_SRC_JOURNAL_JOURNAL_MANAGER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/disk/disk_image.h"
#include "src/driver/block_device.h"
#include "src/journal/journal_format.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/stats/stats_registry.h"

namespace mufs {

class FileSystem;

struct JournalConfig {
  // Group-commit cadence (ISSUE: "driven by the syncer cadence").
  SimDuration commit_interval = Sec(1);
  // Base added to every DIRECT image access (journal superblock read,
  // stable-base capture read). A sharded machine gives each shard its own
  // journal extent inside its region of the shared volume image; the
  // driver handle already routes device I/O there, but the journal's two
  // offline image reads need the same translation. 0 = single-disk.
  uint32_t image_lba_base = 0;
};

class JournalManager {
 public:
  JournalManager(Engine* engine, BlockDevice* driver, BufferCache* cache, DiskImage* image,
                 StatsRegistry* stats, JournalConfig config);

  void AttachFs(FileSystem* fs) { fs_ = fs; }

  // Reads the journal superblock (recovery already ran offline), stamps a
  // fresh one, and spawns the committer. Call from Boot, after Mount.
  Task<void> Start();
  void Stop() { running_ = false; }

  // --- Hooks used by JournalPolicy -----------------------------------

  // Operation gate: commits happen only while no bracketed operation is
  // mid-flight, so committed transactions are operation-atomic.
  Task<void> OpBegin();
  void OpEnd();

  // Snapshots the buffer's current content into the open transaction
  // (later captures of the same block overwrite). Pins the buffer until
  // the capturing transaction commits.
  void Capture(const BufRef& buf);

  // Freed data blocks may not be reallocated until the freeing
  // transaction is durable (their new content would be written in place,
  // under a committed state in which the old file still owns them).
  void GateFreedBlocks(const std::vector<uint32_t>& blocks);
  bool BlockBusy(uint32_t blkno) const;

  // The last committed image of a managed block (null if unmanaged).
  // PrepareWrite substitutes this for every in-place write.
  std::shared_ptr<const BlockData> StableImage(uint32_t blkno) const;
  bool Managed(uint32_t blkno) const { return stable_.contains(blkno); }

  // Commits the open transaction now (fsync / unmount path).
  Task<void> CommitNow();

 private:
  Task<void> Loop();
  Task<void> CommitOnce();
  // Flushes all committed state in place (substituted writes), then
  // restarts the ring empty so `upcoming_seq` has the whole log.
  Task<void> Checkpoint(uint64_t upcoming_seq);
  Task<IoStatus> WriteJsb(uint64_t start_seq, uint32_t start_offset);
  uint32_t LogBlock(uint32_t offset) const { return log_first_ + offset; }

  Engine* engine_;
  BlockDevice* driver_;
  BufferCache* cache_;
  DiskImage* image_;
  StatsRegistry* stats_;
  FileSystem* fs_ = nullptr;
  JournalConfig config_;

  bool started_ = false;
  bool running_ = false;

  // Ring geometry/state (offsets are 0..usable_-1 within the data area).
  uint32_t jsb_blkno_ = 0;
  uint32_t log_first_ = 0;
  uint32_t usable_ = 0;
  uint32_t head_ = 0;
  uint32_t used_ = 0;
  uint64_t next_seq_ = 1;
  size_t soft_cap_ = 0;     // Open-txn size that forces an early commit.
  bool commit_requested_ = false;

  // Operation gate.
  int ops_active_ = 0;
  bool commit_waiting_ = false;
  CondVar gate_cv_;
  Mutex commit_mutex_;  // Serializes CommitOnce callers (committer, fsync).

  // Open transaction: captured images + buffer pins + freed blocks.
  std::unordered_map<uint32_t, std::shared_ptr<BlockData>> open_captures_;
  std::unordered_map<uint32_t, BufRef> open_pins_;
  std::vector<uint32_t> open_freed_;
  std::unordered_set<uint32_t> open_freed_set_;
  std::unordered_set<uint32_t> gated_freed_;  // Committed but not yet durable.

  // blkno -> last committed image. Membership == "managed".
  std::unordered_map<uint32_t, std::shared_ptr<const BlockData>> stable_;

  Counter* stat_captures_ = nullptr;
  Counter* stat_txns_ = nullptr;
  Counter* stat_blocks_logged_ = nullptr;
  Counter* stat_log_writes_ = nullptr;
  Counter* stat_checkpoints_ = nullptr;
  Counter* stat_checkpoint_stalls_ = nullptr;
  Counter* stat_forced_commits_ = nullptr;
  Counter* stat_reuse_skips_ = nullptr;
  Counter* stat_commit_failures_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_JOURNAL_JOURNAL_MANAGER_H_
