#include "src/journal/journal_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "src/fs/filesystem.h"

namespace mufs {

JournalManager::JournalManager(Engine* engine, BlockDevice* driver, BufferCache* cache,
                               DiskImage* image, StatsRegistry* stats, JournalConfig config)
    : engine_(engine),
      driver_(driver),
      cache_(cache),
      image_(image),
      stats_(stats),
      config_(config),
      gate_cv_(engine),
      commit_mutex_(engine) {
  stat_captures_ = &stats_->counter("journal.captures");
  stat_txns_ = &stats_->counter("journal.txns");
  stat_blocks_logged_ = &stats_->counter("journal.blocks_logged");
  stat_log_writes_ = &stats_->counter("journal.log_writes");
  stat_checkpoints_ = &stats_->counter("journal.checkpoints");
  stat_checkpoint_stalls_ = &stats_->counter("journal.checkpoint_stalls");
  stat_forced_commits_ = &stats_->counter("journal.forced_commits");
  stat_reuse_skips_ = &stats_->counter("journal.reuse_skips");
  stat_commit_failures_ = &stats_->counter("journal.commit_failures");
}

Task<void> JournalManager::Start() {
  assert(fs_ != nullptr);
  const SuperBlock& sb = fs_->sb();
  assert(sb.journal_blocks >= 2);
  jsb_blkno_ = sb.journal_start;
  log_first_ = sb.journal_start + 1;
  usable_ = sb.journal_blocks - 1;
  soft_cap_ = std::max<size_t>(8, usable_ / 4);

  // Adopt the persisted sequence horizon so records left in the ring by an
  // earlier life of this image can never validate as live transactions.
  BlockData raw;
  image_->Read(config_.image_lba_base + jsb_blkno_, &raw);
  JournalSuperBlock jsb;
  std::memcpy(&jsb, raw.data(), sizeof(jsb));
  if (jsb.magic == kJournalMagic && jsb.log_blocks == usable_ && jsb.start_seq >= 1) {
    next_seq_ = jsb.start_seq;
    head_ = jsb.start_offset % usable_;
  } else {
    next_seq_ = 1;
    head_ = 0;
  }
  used_ = 0;
  co_await WriteJsb(next_seq_, head_);

  started_ = true;
  running_ = true;
  engine_->Spawn(Loop(), "journal-committer");
}

Task<void> JournalManager::OpBegin() {
  while (commit_waiting_) {
    co_await gate_cv_.Await();
  }
  ++ops_active_;
}

void JournalManager::OpEnd() {
  --ops_active_;
  assert(ops_active_ >= 0);
  if (ops_active_ == 0 && commit_waiting_) {
    gate_cv_.NotifyAll();
  }
}

void JournalManager::Capture(const BufRef& buf) {
  if (!started_) {
    return;
  }
  const uint32_t blkno = buf->blkno();
  // First capture of a block establishes its pre-journal on-disk content
  // as the stable image every in-place write substitutes from then on.
  if (!stable_.contains(blkno)) {
    auto base = std::make_shared<BlockData>();
    image_->Read(config_.image_lba_base + blkno, base.get());
    stable_.emplace(blkno, std::move(base));
  }
  open_captures_[blkno] = std::make_shared<BlockData>(buf->data());
  open_pins_[blkno] = buf;
  stat_captures_->Inc();
  if (open_captures_.size() >= soft_cap_ && !commit_requested_) {
    commit_requested_ = true;
    stat_forced_commits_->Inc();
  }
}

void JournalManager::GateFreedBlocks(const std::vector<uint32_t>& blocks) {
  if (!started_) {
    return;
  }
  for (uint32_t b : blocks) {
    if (open_freed_set_.insert(b).second) {
      open_freed_.push_back(b);
    }
  }
}

bool JournalManager::BlockBusy(uint32_t blkno) const {
  if (open_freed_set_.contains(blkno) || gated_freed_.contains(blkno)) {
    stat_reuse_skips_->Inc();
    return true;
  }
  return false;
}

std::shared_ptr<const BlockData> JournalManager::StableImage(uint32_t blkno) const {
  auto it = stable_.find(blkno);
  if (it == stable_.end()) {
    return nullptr;
  }
  return it->second;
}

Task<void> JournalManager::CommitNow() { co_await CommitOnce(); }

Task<void> JournalManager::Loop() {
  SimDuration quantum = config_.commit_interval / 8;
  if (quantum < 1) {
    quantum = 1;
  }
  while (running_) {
    const SimTime deadline = engine_->Now() + config_.commit_interval;
    while (running_ && !commit_requested_ && engine_->Now() < deadline) {
      co_await engine_->Sleep(quantum);
    }
    if (!running_) {
      break;
    }
    co_await CommitOnce();
  }
}

Task<void> JournalManager::CommitOnce() {
  LockGuard guard = co_await LockGuard::Acquire(&commit_mutex_);
  if (open_captures_.empty()) {
    commit_requested_ = false;
    guard.Release();
    co_return;
  }

  // Close the op gate: wait until no mutating operation is mid-flight so
  // the transaction is a prefix of whole operations, then steal the open
  // transaction and reopen the gate before doing any log I/O.
  commit_waiting_ = true;
  while (ops_active_ > 0) {
    co_await gate_cv_.Await();
  }
  std::vector<std::pair<uint32_t, std::shared_ptr<BlockData>>> txn(open_captures_.begin(),
                                                                   open_captures_.end());
  std::sort(txn.begin(), txn.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  open_captures_.clear();
  std::unordered_map<uint32_t, BufRef> pins = std::move(open_pins_);
  open_pins_.clear();
  std::vector<uint32_t> freed = std::move(open_freed_);
  open_freed_.clear();
  for (uint32_t b : freed) {
    open_freed_set_.erase(b);
    gated_freed_.insert(b);
  }
  const uint64_t seq = next_seq_++;
  commit_waiting_ = false;
  commit_requested_ = false;
  gate_cv_.NotifyAll();

  const uint32_t payloads = static_cast<uint32_t>(txn.size());
  const uint32_t ndesc =
      (payloads + kJournalTagsPerDescriptor - 1) / kJournalTagsPerDescriptor;
  const uint32_t needed = payloads + ndesc + 1;
  assert(needed <= usable_ && "journal log too small for one transaction");
  if (needed > usable_ - used_) {
    stat_checkpoint_stalls_->Inc();
    co_await Checkpoint(seq);
  }

  // Descriptor runs + payload images, then (once all are durable) the
  // checksummed commit record that makes the transaction real.
  std::vector<uint64_t> ids;
  uint64_t checksum = JournalChecksumSeed(seq);
  size_t idx = 0;
  while (idx < txn.size()) {
    const uint32_t run = static_cast<uint32_t>(
        std::min<size_t>(kJournalTagsPerDescriptor, txn.size() - idx));
    auto desc = std::make_shared<BlockData>();
    desc->fill(0);
    JournalRecordHeader dh;
    dh.kind = static_cast<uint32_t>(JournalRecordKind::kDescriptor);
    dh.seq = seq;
    dh.count = run;
    std::memcpy(desc->data(), &dh, sizeof(dh));
    auto* tags = reinterpret_cast<uint32_t*>(desc->data() + sizeof(dh));
    for (uint32_t i = 0; i < run; ++i) {
      tags[i] = txn[idx + i].first;
    }
    ids.push_back(driver_->IssueWrite(LogBlock(head_), {desc}));
    head_ = (head_ + 1) % usable_;
    for (uint32_t i = 0; i < run; ++i) {
      const auto& img = txn[idx + i].second;
      checksum = JournalChecksumUpdate(checksum, img->data(), kBlockSize);
      ids.push_back(driver_->IssueWrite(LogBlock(head_), {img}));
      head_ = (head_ + 1) % usable_;
    }
    idx += run;
  }
  bool log_ok = true;
  for (uint64_t id : ids) {
    IoStatus ws = co_await driver_->WaitFor(id);
    if (ws != IoStatus::kOk) {
      log_ok = false;
    }
  }
  // The commit record only goes out over an intact descriptor/payload run;
  // a torn run without it is exactly what recovery discards.
  if (log_ok) {
    auto cblk = std::make_shared<BlockData>();
    cblk->fill(0);
    JournalCommitRecord cr;
    cr.h.kind = static_cast<uint32_t>(JournalRecordKind::kCommit);
    cr.h.seq = seq;
    cr.h.count = payloads;
    cr.checksum = checksum;
    std::memcpy(cblk->data(), &cr, sizeof(cr));
    const uint64_t cid = driver_->IssueWrite(LogBlock(head_), {cblk});
    head_ = (head_ + 1) % usable_;
    IoStatus cs = co_await driver_->WaitFor(cid);
    if (cs != IoStatus::kOk) {
      log_ok = false;
    }
  } else {
    head_ = (head_ + 1) % usable_;  // The reserved commit-record slot.
  }
  used_ += needed;  // Slots are consumed even by an aborted transaction.
  if (!log_ok) {
    // Aborted commit: the seq is burned (replay finds no valid commit
    // record and discards the tail), so fold everything back into the
    // open transaction for the next attempt. emplace keeps any capture
    // made after the steal (newer wins).
    stat_commit_failures_->Inc();
    if (fs_ != nullptr) {
      fs_->NoteIoError();
    }
    for (auto& [blkno, img] : txn) {
      open_captures_.emplace(blkno, std::move(img));
    }
    for (auto& [blkno, buf] : pins) {
      open_pins_.emplace(blkno, std::move(buf));
    }
    for (uint32_t b : freed) {
      gated_freed_.erase(b);
      if (open_freed_set_.insert(b).second) {
        open_freed_.push_back(b);
      }
    }
    commit_requested_ = true;  // Retry promptly.
    guard.Release();
    co_return;
  }
  stat_txns_->Inc();
  stat_blocks_logged_->Inc(payloads);
  stat_log_writes_->Inc(needed);

  // Durable: promote the captured images to stable and schedule the
  // in-place writes (substituted from stable by PrepareWrite). The pins
  // are still held here, so every block is guaranteed to be in cache.
  for (auto& [blkno, img] : txn) {
    stable_[blkno] = std::move(img);
    cache_->MarkDirty(blkno);
  }
  for (uint32_t b : freed) {
    gated_freed_.erase(b);
  }
  pins.clear();
  guard.Release();
}

Task<void> JournalManager::Checkpoint(uint64_t upcoming_seq) {
  stat_checkpoints_->Inc();
  // Push every committed image to its home location (substituted writes),
  // wait for the disk to quiesce, then declare the ring empty from here.
  co_await cache_->SyncAll();
  co_await driver_->Drain();
  IoStatus js = co_await WriteJsb(upcoming_seq, head_);
  if (js != IoStatus::kOk) {
    // The old horizon persists; the ring is NOT reclaimed (used_ keeps its
    // value) so no live record can be overwritten under a stale jsb.
    stat_commit_failures_->Inc();
    if (fs_ != nullptr) {
      fs_->NoteIoError();
    }
    co_return;
  }
  used_ = 0;
}

Task<IoStatus> JournalManager::WriteJsb(uint64_t start_seq, uint32_t start_offset) {
  auto blk = std::make_shared<BlockData>();
  blk->fill(0);
  JournalSuperBlock jsb;
  jsb.log_blocks = usable_;
  jsb.start_seq = start_seq;
  jsb.start_offset = start_offset;
  std::memcpy(blk->data(), &jsb, sizeof(jsb));
  const uint64_t id = driver_->IssueWrite(jsb_blkno_, {blk});
  IoStatus ws = co_await driver_->WaitFor(id);
  co_return ws;
}

}  // namespace mufs
