// Visibility/durability ledger for Scheme::kAsync (AsyncFS-style
// asynchronous metadata updates).
//
// Under the async scheme a metadata operation returns as soon as its
// update is visible in the buffer cache; nothing is written synchronously
// at the ordering points. The ledger is what decouples that return-time
// contract from durability:
//
//   - every completed operation is assigned a monotone sequence number,
//     its *durability horizon* (NoteVisible);
//   - a background flusher closes an epoch when the oldest visible op
//     approaches the staleness bound (or every flush_interval when one is
//     set), pushes all state dirtied up to the close to disk, and
//     advances the durable horizon past every op the epoch covers
//     (Loop/FlushEpoch);
//   - Fsync and unmount become barriers: wait until the caller's horizon
//     is durable, forcing an immediate epoch close (Barrier);
//   - admission backpressure bounds staleness: a new op stalls while the
//     oldest visible-not-durable op has been outstanding longer than the
//     staleness window, so the visible/durable gap a crash can lose never
//     grows past (window + one epoch flush) of work (AdmitOp).
//
// Everything runs on the simulation's single-threaded coroutine engine,
// so the ledger is deterministic: same seed, same horizons.
#ifndef MUFS_SRC_ASYNC_VISIBILITY_LEDGER_H_
#define MUFS_SRC_ASYNC_VISIBILITY_LEDGER_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/fs/proc.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/stats/stats_registry.h"

namespace mufs {

class FileSystem;

struct AsyncConfig {
  // Bounded staleness (--staleness-ns): an op that completed more than
  // this long before a crash is expected to be durable by the crash.
  SimDuration staleness_window = Msec(500);
  // Background commit cadence. 0 (the default) selects deadline-driven
  // flushing: an epoch closes only when the oldest visible-not-durable
  // op is halfway to the staleness bound, so an idle or short-lived
  // burst pays no flush at all. A positive value forces the classic
  // eager fixed-interval cadence.
  SimDuration flush_interval = 0;
  // First flush is delayed by this much extra (shard stagger, like
  // SyncerConfig::initial_phase).
  SimDuration initial_phase = 0;
  // Shared metrics registry; null skips all accounting (bare unit tests).
  StatsRegistry* stats = nullptr;
};

class VisibilityLedger {
 public:
  VisibilityLedger(Engine* engine, AsyncConfig config);
  VisibilityLedger(const VisibilityLedger&) = delete;
  VisibilityLedger& operator=(const VisibilityLedger&) = delete;

  // Binds the file system whose dirty state the flusher drains. Must be
  // called before Start().
  void AttachFs(FileSystem* fs) { fs_ = fs; }

  // Spawns the background flusher daemon (call inside the engine).
  void Start();
  void Stop();

  // Effective epoch cadence (resolves the flush_interval = 0 default).
  static SimDuration EffectiveFlushInterval(const AsyncConfig& config);
  SimDuration FlushInterval() const { return EffectiveFlushInterval(config_); }
  SimDuration StalenessWindow() const { return config_.staleness_window; }

  // Called at op completion: the op's updates are all visible in the
  // cache. Returns the op's sequence number - its durability horizon.
  uint64_t NoteVisible();

  // Admission backpressure, called at op start: stalls while the oldest
  // visible-not-durable op has been outstanding longer than the staleness
  // window, until a flush catches up.
  Task<void> AdmitOp(Proc& proc);

  // Durability barrier: returns once every op visible at entry is
  // durable, forcing an immediate epoch flush instead of waiting for the
  // cadence. The Fsync / cross-shard-rename / unmount path.
  Task<void> Barrier(Proc& proc);

  // An external full drain (policy FlushAll) proved everything visible up
  // to `seq` durable; advance the horizon and retire pending ops.
  void MarkDurableThrough(uint64_t seq);

  // Appends cleanup work (deferred inode releases) serviced at the next
  // epoch flush. Unlike the syncer's workitem queue this never runs on
  // the periodic syncer pass: under the async scheme the op path sheds
  // the release entirely, and a crash before the flush leaves only an
  // orphan that repair reclaims.
  void Defer(std::function<Task<void>()> work) { deferred_.push_back(std::move(work)); }
  size_t DeferredCount() const { return deferred_.size(); }
  // Runs the deferred queue to quiescence. Epoch flushes do this
  // automatically; unmount calls it directly because a barrier that finds
  // the horizon already durable skips the epoch flush entirely.
  Task<void> DrainDeferred();

  uint64_t visible_seq() const { return visible_seq_; }
  uint64_t durable_seq() const { return durable_seq_; }
  // Ops whose updates are visible but not yet known durable.
  size_t VisibleNotDurable() const { return pending_.size(); }

 private:
  struct PendingOp {
    uint64_t seq;
    SimTime completed;
  };

  Task<void> Loop();
  // Closes the open epoch at the current visible horizon, flushes every
  // dirty inode/buffer plus deferred syncer work once, and marks the
  // closed horizon durable. State dirtied by ops completing *during* the
  // flush may ride along but gets no promise until the next epoch.
  Task<void> FlushEpoch();

  Engine* engine_;
  AsyncConfig config_;
  FileSystem* fs_ = nullptr;
  bool started_ = false;
  bool running_ = false;
  bool flushing_ = false;
  uint64_t visible_seq_ = 0;
  uint64_t durable_seq_ = 0;
  std::deque<PendingOp> pending_;
  std::deque<std::function<Task<void>()>> deferred_;  // Epoch-time cleanup.
  CondVar durable_cv_;  // Notified whenever durable_seq_ advances.

  StatsRegistry* stats_;
  Counter* stat_ops_ = nullptr;
  Counter* stat_epochs_ = nullptr;
  Counter* stat_barriers_ = nullptr;
  Counter* stat_barrier_stalls_ = nullptr;
  Counter* stat_op_stalls_ = nullptr;
  Gauge* stat_depth_ = nullptr;
  LatencyHistogram* stat_lag_ = nullptr;
  LatencyHistogram* stat_barrier_wait_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_ASYNC_VISIBILITY_LEDGER_H_
