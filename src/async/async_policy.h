// Scheme::kAsync - asynchronous metadata updates with decoupled
// visibility and durability (ROADMAP item: AsyncFS-style scheme).
//
// At every ordering point the update stays a delayed write, exactly like
// NoOrder: the operation returns as soon as the change is visible in the
// buffer cache. Unlike NoOrder the scheme keeps a durability promise:
// each completed op is recorded in a VisibilityLedger, a background
// flusher makes epochs of ops durable on a bounded-staleness cadence, and
// Fsync/unmount block until the caller's horizon is durable. After a
// crash the image may need repair (like NoOrder, fsck must converge
// clean), but every op completed more than the staleness window before
// the crash has already been flushed and survives.
#ifndef MUFS_SRC_ASYNC_ASYNC_POLICY_H_
#define MUFS_SRC_ASYNC_ASYNC_POLICY_H_

#include <vector>

#include "src/async/visibility_ledger.h"
#include "src/fs/filesystem.h"
#include "src/fs/policy.h"

namespace mufs {

class AsyncPolicy final : public OrderingPolicy {
 public:
  explicit AsyncPolicy(VisibilityLedger* ledger) : ledger_(ledger) {
    sys_proc_.pid = kSystemPid;
    sys_proc_.name = "async";
  }

  std::string_view Name() const override { return "Async"; }
  bool WriteThroughInodes() const override { return false; }

  // Op bracketing carries the visibility contract: admission control on
  // entry (bounded staleness backpressure), horizon assignment on exit.
  Task<void> OpBegin(Proc& proc) override;
  void OpEnd() override;

  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  // Barrier: every op visible at entry becomes durable, then the cache is
  // drained to quiescence (the unmount contract).
  Task<void> FlushAll(Proc& proc) override;

 private:
  // Stamps the buffer with the in-flight op's horizon (visible_seq + 1:
  // the op gets its sequence number at OpEnd).
  void Stamp(const BufRef& buf);

  VisibilityLedger* ledger_;
  Proc sys_proc_;  // Owns the deferred release workitems.
};

}  // namespace mufs

#endif  // MUFS_SRC_ASYNC_ASYNC_POLICY_H_
