#include "src/async/visibility_ledger.h"

#include "src/cache/buffer_cache.h"
#include "src/cache/syncer.h"
#include "src/fs/filesystem.h"

namespace mufs {

VisibilityLedger::VisibilityLedger(Engine* engine, AsyncConfig config)
    : engine_(engine), config_(config), durable_cv_(engine), stats_(config.stats) {
  if (stats_ != nullptr) {
    stat_ops_ = &stats_->counter("async.ops_visible");
    stat_epochs_ = &stats_->counter("async.epochs");
    stat_barriers_ = &stats_->counter("async.barriers");
    stat_barrier_stalls_ = &stats_->counter("async.barrier_stalls");
    stat_op_stalls_ = &stats_->counter("async.op_stalls");
    stat_depth_ = &stats_->gauge("async.visible_not_durable");
    stat_lag_ = &stats_->histogram("async.horizon_lag_ns");
    stat_barrier_wait_ = &stats_->histogram("async.barrier_wait_ns");
  }
}

SimDuration VisibilityLedger::EffectiveFlushInterval(const AsyncConfig& config) {
  if (config.flush_interval > 0) {
    return config.flush_interval;
  }
  SimDuration derived = config.staleness_window / 4;
  return derived > 0 ? derived : Msec(1);
}

void VisibilityLedger::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  running_ = true;
  engine_->Spawn(Loop(), "async_flusher");
}

void VisibilityLedger::Stop() {
  running_ = false;
  // Release admission waiters so a stopping machine cannot strand them.
  durable_cv_.NotifyAll();
}

uint64_t VisibilityLedger::NoteVisible() {
  uint64_t seq = ++visible_seq_;
  pending_.push_back({seq, engine_->Now()});
  if (stats_ != nullptr) {
    stat_ops_->Inc();
    stat_depth_->Set(static_cast<int64_t>(pending_.size()));
  }
  return seq;
}

Task<void> VisibilityLedger::AdmitOp(Proc& proc) {
  bool stalled = false;
  SimTime t0 = engine_->Now();
  while (running_ && !pending_.empty() &&
         engine_->Now() - pending_.front().completed > config_.staleness_window) {
    stalled = true;
    co_await durable_cv_.Await();
  }
  if (stalled) {
    proc.io_wait += engine_->Now() - t0;
    if (stats_ != nullptr) {
      stat_op_stalls_->Inc();
    }
  }
}

Task<void> VisibilityLedger::Barrier(Proc& proc) {
  uint64_t horizon = visible_seq_;
  if (stats_ != nullptr) {
    stat_barriers_->Inc();
  }
  SimTime t0 = engine_->Now();
  bool waited = false;
  while (durable_seq_ < horizon) {
    waited = true;
    if (!flushing_) {
      co_await FlushEpoch();
    } else {
      co_await durable_cv_.Await();
    }
  }
  if (waited) {
    proc.io_wait += engine_->Now() - t0;
  }
  if (stats_ != nullptr) {
    stat_barrier_wait_->Record(engine_->Now() - t0);
    if (waited) {
      stat_barrier_stalls_->Inc();
    }
  }
}

void VisibilityLedger::MarkDurableThrough(uint64_t seq) {
  if (seq <= durable_seq_) {
    return;
  }
  durable_seq_ = seq;
  SimTime now = engine_->Now();
  while (!pending_.empty() && pending_.front().seq <= seq) {
    if (stats_ != nullptr) {
      stat_lag_->Record(now - pending_.front().completed);
    }
    pending_.pop_front();
  }
  if (stats_ != nullptr) {
    stat_depth_->Set(static_cast<int64_t>(pending_.size()));
  }
  durable_cv_.NotifyAll();
}

Task<void> VisibilityLedger::DrainDeferred() {
  // Deferred releases can enqueue follow-on work; loop until quiescent.
  int guard = 0;
  while (!deferred_.empty() && guard++ < 1000) {
    auto work = std::move(deferred_.front());
    deferred_.pop_front();
    co_await work();
  }
}

Task<void> VisibilityLedger::FlushEpoch() {
  if (fs_ == nullptr) {
    co_return;
  }
  // One flush at a time; late arrivals wait for the current one - their
  // caller loops re-check durable_seq_ and flush again if still behind.
  while (flushing_) {
    co_await durable_cv_.Await();
  }
  flushing_ = true;
  uint64_t close = visible_seq_;
  // Everything an op <= close dirtied is, by OpEnd, in the in-core
  // inodes, the cache, or this ledger's deferred-release queue. One pass
  // over each makes it durable; a second inode round catches inodes
  // re-dirtied by the deferred work.
  co_await DrainDeferred();
  co_await fs_->FlushDirtyInodes();
  co_await fs_->cache()->SyncVisibleThrough(close);
  co_await fs_->syncer()->DrainWork();
  if (fs_->AnyDirtyInode()) {
    co_await fs_->FlushDirtyInodes();
    co_await fs_->cache()->SyncVisibleThrough(close);
  }
  flushing_ = false;
  if (stats_ != nullptr) {
    stat_epochs_->Inc();
  }
  MarkDurableThrough(close);
}

Task<void> VisibilityLedger::Loop() {
  if (config_.initial_phase > 0) {
    co_await engine_->Sleep(config_.initial_phase);
  }
  const bool periodic = config_.flush_interval > 0;
  const SimDuration tick = FlushInterval();
  // Deadline mode: close an epoch once the oldest visible-not-durable op
  // is halfway to the staleness bound, so the flush itself has the other
  // half of the window to finish before the bound would be violated.
  const SimDuration deadline = config_.staleness_window / 2;
  while (running_) {
    if (periodic) {
      // Explicit commit interval: the classic eager cadence.
      co_await engine_->Sleep(tick);
      if (!running_) {
        break;
      }
      if (pending_.empty()) {
        continue;  // No durability debt.
      }
      co_await FlushEpoch();
      continue;
    }
    if (pending_.empty()) {
      co_await engine_->Sleep(tick);
      continue;
    }
    SimTime due = pending_.front().completed + deadline;
    SimTime now = engine_->Now();
    if (due > now) {
      co_await engine_->Sleep(due - now);
      continue;  // Re-check: a barrier may have retired the op meanwhile.
    }
    co_await FlushEpoch();
  }
}

}  // namespace mufs
