#include "src/async/async_policy.h"

namespace mufs {

void AsyncPolicy::Stamp(const BufRef& buf) {
  if (buf != nullptr) {
    fs()->cache()->StampVisibleSeq(*buf, ledger_->visible_seq() + 1);
  }
}

Task<void> AsyncPolicy::OpBegin(Proc& proc) { co_await ledger_->AdmitOp(proc); }

void AsyncPolicy::OpEnd() { ledger_->NoteVisible(); }

Task<void> AsyncPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                                        bool init_required, BlockRole role) {
  (void)init_required;  // No init ordering: recovery repairs the window.
  (void)role;
  NoteOrderingPoint("alloc", "visible");
  Stamp(data_buf);
  if (loc.kind == PtrLoc::Kind::kIndirectSlot) {
    Stamp(loc.indirect_buf);
  }
  Stamp(ip.itable_buf);
  co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
}

Task<void> AsyncPolicy::SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                                       std::vector<BufRef> updated_indirects) {
  NoteOrderingPoint("block_free", "visible");
  Stamp(ip.itable_buf);
  for (const BufRef& ibuf : updated_indirects) {
    Stamp(ibuf);
  }
  co_await fs()->FreeBlocksInBitmap(proc, blocks);
}

Task<void> AsyncPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                     Inode& target, bool new_inode) {
  (void)proc;
  (void)dir;
  (void)offset;
  (void)new_inode;
  NoteOrderingPoint("link_add", "visible");
  Stamp(dir_buf);
  Stamp(target.itable_buf);
  co_return;  // Everything stays a delayed write.
}

Task<void> AsyncPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                        DirEntry old_entry, uint32_t removed_ino,
                                        const RenameContext* rename) {
  (void)proc;
  (void)dir;
  (void)offset;
  (void)old_entry;
  NoteOrderingPoint("link_remove", "visible");
  Stamp(dir_buf);
  if (rename != nullptr) {
    Stamp(rename->new_dir_buf);
  }
  // The visible half of the op is the name removal, already in dir_buf.
  // The release (link count, truncate, block/inode frees) is bookkeeping
  // a crash can always repair, so it runs off the op path - the same
  // deferral soft updates uses for its rem workitems, but queued on the
  // ledger rather than the syncer so it only ever runs at epoch flushes,
  // never inside a foreground-visible syncer pass.
  uint32_t ino = removed_ino;
  ledger_->Defer([this, ino]() -> Task<void> {
    co_await fs()->ReleaseLink(sys_proc_, ino);
  });
  co_return;
}

Task<void> AsyncPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  NoteOrderingPoint("inode_free", "visible");
  Stamp(ip.itable_buf);
  co_await fs()->FreeInodeInBitmap(proc, ip.ino);
}

Task<void> AsyncPolicy::FlushAll(Proc& proc) {
  uint64_t horizon = ledger_->visible_seq();
  co_await ledger_->Barrier(proc);
  // A barrier that found the horizon already durable skipped the epoch
  // flush; the deferred releases still have to land before the drain
  // below can leave the image clean.
  co_await ledger_->DrainDeferred();
  co_await DrainAllDirty(proc);
  ledger_->MarkDurableThrough(horizon);
}

}  // namespace mufs
