#include "src/fault/fault_injector.h"

#include <algorithm>

namespace mufs {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kBadSector:
      return "bad_sector";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kMisdirected:
      return "misdirected";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {}

void FaultInjector::AttachStats(StatsRegistry* stats, std::string_view instance) {
  stat_injected_ = &stats->counter(InstanceMetricName(instance, "fault.injected"));
  stat_transient_ = &stats->counter(InstanceMetricName(instance, "fault.transient"));
  stat_stalls_ = &stats->counter(InstanceMetricName(instance, "fault.stalls"));
  stat_bad_sectors_ = &stats->counter(InstanceMetricName(instance, "fault.bad_sectors"));
  stat_remapped_ = &stats->counter(InstanceMetricName(instance, "fault.remapped"));
  stat_torn_ = &stats->counter(InstanceMetricName(instance, "fault.torn_writes"));
  stat_misdirected_ = &stats->counter(InstanceMetricName(instance, "fault.misdirected"));
}

uint32_t FaultInjector::MisdirectVictim(uint32_t blkno, uint32_t count,
                                        uint32_t total_blocks) {
  // Forward slip by one transfer length when the landing range fits on
  // the medium; backward slip otherwise. Never reaches block 0: a
  // backward slip is only taken for blkno near total_blocks.
  if (total_blocks == 0 || blkno + 2 * count <= total_blocks) {
    return blkno + count;
  }
  return blkno >= count ? blkno - count : blkno;
}

FaultKind FaultInjector::Decide(IoDir dir, uint32_t blkno, uint32_t count) {
  ++decisions_;
  FaultKind kind = FaultKind::kNone;
  if (!scripted_.empty()) {
    kind = scripted_.front();
    scripted_.pop_front();
    if (kind == FaultKind::kBadSector) {
      bad_.insert(blkno);
    }
  } else if (!bad_.empty() && !BadBlocksIn(blkno, count).empty()) {
    kind = FaultKind::kBadSector;
  } else if (config_.Enabled()) {
    // One draw per attempt, thresholds stacked so the draw sequence (and
    // therefore every same-seed run) is deterministic. The silent-damage
    // thresholds stack LAST: configs that leave them zero draw exactly
    // the schedules they drew before these classes existed.
    double u = rng_.UniformDouble();
    double err_rate =
        dir == IoDir::kRead ? config_.read_error_rate : config_.write_error_rate;
    double t1 = config_.stall_rate;
    double t2 = t1 + config_.bad_sector_rate;
    double t3 = t2 + err_rate;
    double t4 = t3 + config_.torn_write_rate;
    double t5 = t4 + config_.misdirect_rate;
    if (u < t1) {
      kind = FaultKind::kStall;
    } else if (u < t2) {
      bad_.insert(blkno);
      kind = FaultKind::kBadSector;
    } else if (u < t3) {
      kind = FaultKind::kTransient;
    } else if (u < t4) {
      kind = FaultKind::kTornWrite;
    } else if (u < t5) {
      kind = FaultKind::kMisdirected;
    }
  }
  // Silent damage is a write phenomenon; a read attempt passes clean.
  if ((kind == FaultKind::kTornWrite || kind == FaultKind::kMisdirected) &&
      dir != IoDir::kWrite) {
    kind = FaultKind::kNone;
  }
  if (kind == FaultKind::kTornWrite) {
    damage_.push_back({kind, blkno, count, 0});
  } else if (kind == FaultKind::kMisdirected) {
    damage_.push_back({kind, blkno, count, MisdirectVictim(blkno, count, total_blocks_)});
  }
  if (kind != FaultKind::kNone && stat_injected_ != nullptr) {
    stat_injected_->Inc();
    switch (kind) {
      case FaultKind::kTransient:
        stat_transient_->Inc();
        break;
      case FaultKind::kStall:
        stat_stalls_->Inc();
        break;
      case FaultKind::kBadSector:
        stat_bad_sectors_->Inc();
        break;
      case FaultKind::kTornWrite:
        stat_torn_->Inc();
        break;
      case FaultKind::kMisdirected:
        stat_misdirected_->Inc();
        break;
      case FaultKind::kNone:
        break;
    }
  }
  return kind;
}

void FaultInjector::Script(std::initializer_list<FaultKind> kinds) {
  scripted_.insert(scripted_.end(), kinds.begin(), kinds.end());
}

void FaultInjector::MarkBadSector(uint32_t blkno) { bad_.insert(blkno); }

std::vector<uint32_t> FaultInjector::BadBlocksIn(uint32_t blkno, uint32_t count) const {
  std::vector<uint32_t> out;
  for (uint32_t b = blkno; b < blkno + count; ++b) {
    if (bad_.contains(b)) {
      out.push_back(b);
    }
  }
  return out;
}

void FaultInjector::Remap(uint32_t blkno) {
  if (bad_.erase(blkno) > 0 && stat_remapped_ != nullptr) {
    stat_remapped_->Inc();
  }
}

}  // namespace mufs
