#include "src/fault/fault_injector.h"

#include <algorithm>

namespace mufs {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kBadSector:
      return "bad_sector";
    case FaultKind::kStall:
      return "stall";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {}

void FaultInjector::AttachStats(StatsRegistry* stats) {
  stat_injected_ = &stats->counter("fault.injected");
  stat_transient_ = &stats->counter("fault.transient");
  stat_stalls_ = &stats->counter("fault.stalls");
  stat_bad_sectors_ = &stats->counter("fault.bad_sectors");
  stat_remapped_ = &stats->counter("fault.remapped");
}

FaultKind FaultInjector::Decide(IoDir dir, uint32_t blkno, uint32_t count) {
  ++decisions_;
  FaultKind kind = FaultKind::kNone;
  if (!scripted_.empty()) {
    kind = scripted_.front();
    scripted_.pop_front();
    if (kind == FaultKind::kBadSector) {
      bad_.insert(blkno);
    }
  } else if (!bad_.empty() && !BadBlocksIn(blkno, count).empty()) {
    kind = FaultKind::kBadSector;
  } else if (config_.Enabled()) {
    // One draw per attempt, thresholds stacked so the draw sequence (and
    // therefore every same-seed run) is deterministic.
    double u = rng_.UniformDouble();
    double err_rate =
        dir == IoDir::kRead ? config_.read_error_rate : config_.write_error_rate;
    if (u < config_.stall_rate) {
      kind = FaultKind::kStall;
    } else if (u < config_.stall_rate + config_.bad_sector_rate) {
      bad_.insert(blkno);
      kind = FaultKind::kBadSector;
    } else if (u < config_.stall_rate + config_.bad_sector_rate + err_rate) {
      kind = FaultKind::kTransient;
    }
  }
  if (kind != FaultKind::kNone && stat_injected_ != nullptr) {
    stat_injected_->Inc();
    switch (kind) {
      case FaultKind::kTransient:
        stat_transient_->Inc();
        break;
      case FaultKind::kStall:
        stat_stalls_->Inc();
        break;
      case FaultKind::kBadSector:
        stat_bad_sectors_->Inc();
        break;
      case FaultKind::kNone:
        break;
    }
  }
  return kind;
}

void FaultInjector::Script(std::initializer_list<FaultKind> kinds) {
  scripted_.insert(scripted_.end(), kinds.begin(), kinds.end());
}

void FaultInjector::MarkBadSector(uint32_t blkno) { bad_.insert(blkno); }

std::vector<uint32_t> FaultInjector::BadBlocksIn(uint32_t blkno, uint32_t count) const {
  std::vector<uint32_t> out;
  for (uint32_t b = blkno; b < blkno + count; ++b) {
    if (bad_.contains(b)) {
      out.push_back(b);
    }
  }
  return out;
}

void FaultInjector::Remap(uint32_t blkno) {
  if (bad_.erase(blkno) > 0 && stat_remapped_ != nullptr) {
    stat_remapped_->Inc();
  }
}

}  // namespace mufs
