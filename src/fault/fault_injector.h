// Seeded, deterministic disk fault injection.
//
// The driver consults the injector once per service attempt (including
// retries). Five fault classes model the failure taxonomy the ordering
// schemes are ultimately defending against:
//
//   - transient read/write errors: the device spends the access time,
//     then reports a media error; a retry usually succeeds;
//   - latent bad sectors: every access to the block fails until the
//     driver remaps it into the spare pool;
//   - stalls: the command hangs at the device and never completes; the
//     driver detects this with a timeout and re-issues;
//   - torn writes: the device reports success but only a prefix of the
//     transfer's sectors persist (violating the paper's footnote-1
//     atomic-write-unit assumption) - SILENT damage, no retry;
//   - misdirected writes: the device reports success but the payload
//     lands one slip away from the intended LBA (adjacent-track
//     misdirection) - also silent.
//
// Faults come from a per-op Bernoulli draw (one uniform draw per
// attempt, so same-seed runs replay identically) or from a scripted
// FIFO that tests use to force exact schedules. Silent damage fired by
// either source is appended to a damage ledger so crash/recovery tests
// can classify what the scheme was actually up against.
#ifndef MUFS_SRC_FAULT_FAULT_INJECTOR_H_
#define MUFS_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/driver/request.h"
#include "src/sim/rng.h"
#include "src/stats/stats_registry.h"

namespace mufs {

enum class FaultKind : uint8_t {
  kNone = 0,       // Attempt succeeds.
  kTransient,      // One-shot media error; independent per attempt.
  kBadSector,      // Block joins the bad set; fails until remapped.
  kStall,          // Command hangs; driver must time out and re-issue.
  kTornWrite,      // Reported success; only a sector prefix persists.
  kMisdirected,    // Reported success; payload lands on the wrong block.
};

std::string_view FaultKindName(FaultKind kind);

// One silent-damage event (torn or misdirected write) as decided by the
// injector: which blocks the file system THINKS it wrote, and (for
// misdirection) where the payload actually landed.
struct DamageRecord {
  FaultKind kind = FaultKind::kNone;
  uint32_t blkno = 0;   // Intended first block of the transfer.
  uint32_t count = 0;   // Transfer length in blocks.
  uint32_t victim = 0;  // Misdirection landing block (0 for torn writes).
};

struct FaultConfig {
  uint64_t seed = 1;
  double read_error_rate = 0;   // P(transient error) per read attempt.
  double write_error_rate = 0;  // P(transient error) per write attempt.
  double stall_rate = 0;        // P(stall) per attempt.
  double bad_sector_rate = 0;   // P(mint a new bad sector) per attempt.
  double torn_write_rate = 0;   // P(torn persistence) per write attempt.
  double misdirect_rate = 0;    // P(wrong-LBA landing) per write attempt.

  bool Enabled() const {
    return read_error_rate > 0 || write_error_rate > 0 || stall_rate > 0 ||
           bad_sector_rate > 0 || torn_write_rate > 0 || misdirect_rate > 0;
  }

  // The bench/test knob: one headline rate, split across the classes so
  // transients dominate and terminal failures stay rare. Silent-damage
  // classes stay off: Uniform() keeps the "device is honest" model.
  static FaultConfig Uniform(double rate, uint64_t seed) {
    FaultConfig c;
    c.seed = seed;
    c.read_error_rate = rate;
    c.write_error_rate = rate;
    c.stall_rate = rate / 4;
    c.bad_sector_rate = rate / 8;
    return c;
  }

  // The adversarial knob: ONLY silent damage (the device lies), torn
  // writes at the headline rate and misdirected writes at half of it.
  // Every request still completes kOk, so whatever goes wrong is purely
  // the recovery story's problem.
  static FaultConfig Adversarial(double rate, uint64_t seed) {
    FaultConfig c;
    c.seed = seed;
    c.torn_write_rate = rate;
    c.misdirect_rate = rate / 2;
    return c;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  // Metrics go to `stats` from here on (fault.injected, fault.transient,
  // fault.stalls, fault.bad_sectors, fault.remapped, fault.torn_writes,
  // fault.misdirected). `instance` prefixes the names for multi-disk
  // machines ("" keeps the singleton names).
  void AttachStats(StatsRegistry* stats, std::string_view instance = "");

  // One decision per service attempt. Consumes the scripted FIFO first,
  // then the bad-sector set, then a single uniform draw. Silent write
  // damage (torn / misdirected) never fires on reads: a scripted or
  // drawn silent kind downgrades to kNone for a read attempt, without
  // disturbing the draw sequence.
  FaultKind Decide(IoDir dir, uint32_t blkno, uint32_t count);

  // Where a misdirected write of [blkno, blkno+count) actually lands:
  // one transfer-length slip forward (adjacent track), falling back to a
  // backward slip near the end of the disk. Deterministic, never block 0
  // (the medium's reserved LBA is out of the servo's reach).
  static uint32_t MisdirectVictim(uint32_t blkno, uint32_t count, uint32_t total_blocks);

  // Ledger of every silent-damage decision, in decision order.
  const std::vector<DamageRecord>& Damage() const { return damage_; }

  // The driver tells the injector the medium size at attach time so
  // misdirection victims stay on the medium (0 = unknown: always slip
  // forward).
  void SetTotalBlocks(uint32_t total) { total_blocks_ = total; }

  // --- scripted schedules (tests) -----------------------------------
  // Each entry feeds exactly one future Decide() call, oldest first;
  // kNone entries let an attempt through untouched.
  void Script(std::initializer_list<FaultKind> kinds);

  // --- bad-sector set ------------------------------------------------
  void MarkBadSector(uint32_t blkno);
  bool IsBad(uint32_t blkno) const { return bad_.contains(blkno); }
  // Bad blocks within [blkno, blkno + count), ascending.
  std::vector<uint32_t> BadBlocksIn(uint32_t blkno, uint32_t count) const;
  // Driver remapped `blkno` into the spare pool: accesses succeed again.
  // The model is transparent and LBA-preserving (reallocation-on-verify),
  // so the image contents are untouched.
  void Remap(uint32_t blkno);

  uint64_t DecisionCount() const { return decisions_; }

 private:
  FaultConfig config_;
  Rng rng_;
  std::deque<FaultKind> scripted_;
  std::unordered_set<uint32_t> bad_;
  std::vector<DamageRecord> damage_;
  uint64_t decisions_ = 0;
  uint32_t total_blocks_ = 0;

  Counter* stat_injected_ = nullptr;
  Counter* stat_transient_ = nullptr;
  Counter* stat_stalls_ = nullptr;
  Counter* stat_bad_sectors_ = nullptr;
  Counter* stat_remapped_ = nullptr;
  Counter* stat_torn_ = nullptr;
  Counter* stat_misdirected_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_FAULT_FAULT_INJECTOR_H_
