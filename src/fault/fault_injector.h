// Seeded, deterministic disk fault injection.
//
// The driver consults the injector once per service attempt (including
// retries). Three fault classes model the failure taxonomy the ordering
// schemes are ultimately defending against:
//
//   - transient read/write errors: the device spends the access time,
//     then reports a media error; a retry usually succeeds;
//   - latent bad sectors: every access to the block fails until the
//     driver remaps it into the spare pool;
//   - stalls: the command hangs at the device and never completes; the
//     driver detects this with a timeout and re-issues.
//
// Faults come from a per-op Bernoulli draw (one uniform draw per
// attempt, so same-seed runs replay identically) or from a scripted
// FIFO that tests use to force exact schedules.
#ifndef MUFS_SRC_FAULT_FAULT_INJECTOR_H_
#define MUFS_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/driver/request.h"
#include "src/sim/rng.h"
#include "src/stats/stats_registry.h"

namespace mufs {

enum class FaultKind : uint8_t {
  kNone = 0,       // Attempt succeeds.
  kTransient,      // One-shot media error; independent per attempt.
  kBadSector,      // Block joins the bad set; fails until remapped.
  kStall,          // Command hangs; driver must time out and re-issue.
};

std::string_view FaultKindName(FaultKind kind);

struct FaultConfig {
  uint64_t seed = 1;
  double read_error_rate = 0;   // P(transient error) per read attempt.
  double write_error_rate = 0;  // P(transient error) per write attempt.
  double stall_rate = 0;        // P(stall) per attempt.
  double bad_sector_rate = 0;   // P(mint a new bad sector) per attempt.

  bool Enabled() const {
    return read_error_rate > 0 || write_error_rate > 0 || stall_rate > 0 ||
           bad_sector_rate > 0;
  }

  // The bench/test knob: one headline rate, split across the classes so
  // transients dominate and terminal failures stay rare.
  static FaultConfig Uniform(double rate, uint64_t seed) {
    FaultConfig c;
    c.seed = seed;
    c.read_error_rate = rate;
    c.write_error_rate = rate;
    c.stall_rate = rate / 4;
    c.bad_sector_rate = rate / 8;
    return c;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  // Metrics go to `stats` from here on (fault.injected, fault.transient,
  // fault.stalls, fault.bad_sectors, fault.remapped).
  void AttachStats(StatsRegistry* stats);

  // One decision per service attempt. Consumes the scripted FIFO first,
  // then the bad-sector set, then a single uniform draw.
  FaultKind Decide(IoDir dir, uint32_t blkno, uint32_t count);

  // --- scripted schedules (tests) -----------------------------------
  // Each entry feeds exactly one future Decide() call, oldest first;
  // kNone entries let an attempt through untouched.
  void Script(std::initializer_list<FaultKind> kinds);

  // --- bad-sector set ------------------------------------------------
  void MarkBadSector(uint32_t blkno);
  bool IsBad(uint32_t blkno) const { return bad_.contains(blkno); }
  // Bad blocks within [blkno, blkno + count), ascending.
  std::vector<uint32_t> BadBlocksIn(uint32_t blkno, uint32_t count) const;
  // Driver remapped `blkno` into the spare pool: accesses succeed again.
  // The model is transparent and LBA-preserving (reallocation-on-verify),
  // so the image contents are untouched.
  void Remap(uint32_t blkno);

  uint64_t DecisionCount() const { return decisions_; }

 private:
  FaultConfig config_;
  Rng rng_;
  std::deque<FaultKind> scripted_;
  std::unordered_set<uint32_t> bad_;
  uint64_t decisions_ = 0;

  Counter* stat_injected_ = nullptr;
  Counter* stat_transient_ = nullptr;
  Counter* stat_stalls_ = nullptr;
  Counter* stat_bad_sectors_ = nullptr;
  Counter* stat_remapped_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_FAULT_FAULT_INJECTOR_H_
