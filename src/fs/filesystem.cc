#include "src/fs/filesystem.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mufs {

// Cache-level hooks: serializes dirty in-core inodes into inode-table
// buffers just before those buffers are captured for a write, then
// delegates to the policy's hooks (soft updates undo/redo).
class FsBufferHooks final : public DepHooks {
 public:
  explicit FsBufferHooks(FileSystem* fs) : fs_(fs) {}

  std::shared_ptr<const BlockData> PrepareWrite(Buf& buf) override {
    fs_->SerializeInodesInto(buf);
    DepHooks* h = fs_->policy() != nullptr ? fs_->policy()->CacheHooks() : nullptr;
    return h != nullptr ? h->PrepareWrite(buf) : nullptr;
  }
  void WriteDone(Buf& buf) override {
    DepHooks* h = fs_->policy() != nullptr ? fs_->policy()->CacheHooks() : nullptr;
    if (h != nullptr) {
      h->WriteDone(buf);
    }
  }
  void WriteAborted(Buf& buf) override {
    // The serialized inode bytes stay in the (re-dirtied) buffer; only
    // the policy's dependency state needs restoring.
    DepHooks* h = fs_->policy() != nullptr ? fs_->policy()->CacheHooks() : nullptr;
    if (h != nullptr) {
      h->WriteAborted(buf);
    }
  }
  void BufferAccessed(Buf& buf) override {
    DepHooks* h = fs_->policy() != nullptr ? fs_->policy()->CacheHooks() : nullptr;
    if (h != nullptr) {
      h->BufferAccessed(buf);
    }
  }

 private:
  FileSystem* fs_;
};

FileSystem::FileSystem(Engine* engine, Cpu* cpu, BufferCache* cache, SyncerDaemon* syncer,
                       FsConfig config)
    : engine_(engine),
      cpu_(cpu),
      cache_(cache),
      syncer_(syncer),
      config_(config),
      alloc_lock_(engine) {
  buffer_hooks_ = std::make_unique<FsBufferHooks>(this);
  cache_->SetDepHooks(buffer_hooks_.get());
  stats_ = config_.stats != nullptr ? config_.stats : cache_->stats_registry();
  stat_creates_ = &stats_->counter("fs.creates");
  stat_removes_ = &stats_->counter("fs.removes");
  stat_mkdirs_ = &stats_->counter("fs.mkdirs");
  stat_rmdirs_ = &stats_->counter("fs.rmdirs");
  stat_renames_ = &stats_->counter("fs.renames");
  stat_lookups_ = &stats_->counter("fs.lookups");
  stat_reads_ = &stats_->counter("fs.reads");
  stat_writes_ = &stats_->counter("fs.writes");
  stat_blocks_allocated_ = &stats_->counter("fs.blocks_allocated");
  stat_blocks_freed_ = &stats_->counter("fs.blocks_freed");
  stat_io_errors_ = &stats_->counter("fs.io_errors");
}

bool FileSystem::io_degraded() const {
  // Asynchronous write failures are noticed by the cache's completion
  // handler, not by any FS call site; fold them in here.
  CacheStats cs = cache_->stats();
  return io_degraded_ || cs.write_failures > 0 || cs.read_failures > 0;
}

FsOpStats FileSystem::op_stats() const {
  FsOpStats s;
  s.creates = stat_creates_->value();
  s.removes = stat_removes_->value();
  s.mkdirs = stat_mkdirs_->value();
  s.rmdirs = stat_rmdirs_->value();
  s.renames = stat_renames_->value();
  s.lookups = stat_lookups_->value();
  s.reads = stat_reads_->value();
  s.writes = stat_writes_->value();
  s.blocks_allocated = stat_blocks_allocated_->value();
  s.blocks_freed = stat_blocks_freed_->value();
  return s;
}

FileSystem::~FileSystem() = default;

void FileSystem::SetPolicy(OrderingPolicy* policy) {
  policy_ = policy;
  policy_->Attach(this);
}

Task<void> FileSystem::Charge(Proc& proc, SimDuration d) {
  if (d > 0) {
    co_await cpu_->Consume(proc.pid, d);
  }
}

uint32_t FileSystem::NowSeconds() const {
  return static_cast<uint32_t>(engine_->Now() / kSecond);
}

// ---------------------------------------------------------------------
// mkfs / mount
// ---------------------------------------------------------------------

void FileSystem::Mkfs(DiskImage* image, uint32_t total_inodes, uint32_t journal_blocks) {
  SuperBlock sb;
  sb.total_blocks = image->TotalBlocks();
  sb.total_inodes = total_inodes;
  sb.inode_bitmap_start = 1;
  sb.inode_bitmap_blocks = (total_inodes + kBitsPerBlock - 1) / kBitsPerBlock;
  sb.block_bitmap_start = sb.inode_bitmap_start + sb.inode_bitmap_blocks;
  sb.block_bitmap_blocks = (sb.total_blocks + kBitsPerBlock - 1) / kBitsPerBlock;
  sb.inode_table_start = sb.block_bitmap_start + sb.block_bitmap_blocks;
  sb.inode_table_blocks = (total_inodes + kInodesPerBlock - 1) / kInodesPerBlock;
  sb.journal_start = sb.inode_table_start + sb.inode_table_blocks;
  sb.journal_blocks = journal_blocks;
  sb.data_start = sb.journal_start + sb.journal_blocks;

  BlockData blk;
  blk.fill(0);
  memcpy(blk.data(), &sb, sizeof(sb));
  image->Write(0, blk, 0);

  // Inode bitmap: ino 0 (reserved) and ino 1 (root) in use.
  blk.fill(0);
  BitmapSet(blk.data(), 0, true);
  BitmapSet(blk.data(), kRootIno, true);
  image->Write(sb.inode_bitmap_start, blk, 0);
  for (uint32_t b = 1; b < sb.inode_bitmap_blocks; ++b) {
    BlockData z;
    z.fill(0);
    image->Write(sb.inode_bitmap_start + b, z, 0);
  }

  // Block bitmap: everything before data_start is metadata, marked used.
  for (uint32_t b = 0; b < sb.block_bitmap_blocks; ++b) {
    BlockData bm;
    bm.fill(0);
    uint32_t first = b * kBitsPerBlock;
    for (uint32_t i = 0; i < kBitsPerBlock; ++i) {
      uint32_t blkno = first + i;
      if (blkno < sb.data_start) {
        BitmapSet(bm.data(), i, true);
      }
      // Bits past total_blocks stay zero; the allocator bounds-checks.
    }
    image->Write(sb.block_bitmap_start + b, bm, 0);
  }

  // Inode table: zeroed, with the root directory in ino 1.
  {
    BlockData it;
    it.fill(0);
    DiskInode root;
    root.mode = static_cast<uint16_t>(FileType::kDirectory);
    root.nlink = 2;
    root.generation = 1;
    root.spare[0] = kRootIno;  // Parent of root is root.
    memcpy(it.data() + kRootIno * kInodeSize, &root, sizeof(root));
    image->Write(sb.inode_table_start, it, 0);
  }
  for (uint32_t b = 1; b < sb.inode_table_blocks; ++b) {
    BlockData z;
    z.fill(0);
    image->Write(sb.inode_table_start + b, z, 0);
  }
}

Task<FsStatus> FileSystem::Mount(Proc& proc) {
  assert(policy_ != nullptr && "SetPolicy must be called before Mount");
  co_await Charge(proc, config_.costs.syscall);
  BufRef buf = co_await cache_->Bread(0);
  if (buf == nullptr) {
    co_return FsStatus::kIoError;
  }
  memcpy(&sb_, buf->data().data(), sizeof(sb_));
  if (sb_.magic != kFsMagic) {
    co_return FsStatus::kInvalid;
  }
  block_rotor_ = sb_.data_start;
  inode_rotor_ = kRootIno + 1;
  mounted_ = true;
  co_return FsStatus::kOk;
}

// ---------------------------------------------------------------------
// In-core inodes
// ---------------------------------------------------------------------

void FileSystem::SerializeInodesInto(Buf& buf) {
  if (buf.blkno() < sb_.inode_table_start ||
      buf.blkno() >= sb_.inode_table_start + sb_.inode_table_blocks) {
    return;
  }
  uint32_t first_ino = (buf.blkno() - sb_.inode_table_start) * kInodesPerBlock;
  for (uint32_t i = 0; i < kInodesPerBlock; ++i) {
    auto it = inode_cache_.find(first_ino + i);
    if (it != inode_cache_.end() && it->second->dirty) {
      memcpy(buf.data().data() + i * kInodeSize, &it->second->d, sizeof(DiskInode));
      it->second->dirty = false;
    }
  }
}

Task<InodeRef> FileSystem::Iget(Proc& proc, uint32_t ino) {
  (void)proc;
  auto it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    co_return it->second;
  }
  BufRef buf = co_await cache_->Bread(sb_.ItableBlock(ino));
  // Another process may have loaded it while we waited on the read.
  it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    co_return it->second;
  }
  if (buf == nullptr) {
    co_return nullptr;  // Itable read failed; caller reports kIoError.
  }
  auto ip = std::make_shared<Inode>(engine_, ino);
  memcpy(&ip->d, buf->data().data() + sb_.ItableOffset(ino), sizeof(DiskInode));
  ip->itable_buf = buf;
  EvictInodesIfNeeded();
  inode_cache_[ino] = ip;
  co_return ip;
}

InodeRef FileSystem::IgetCached(uint32_t ino) {
  auto it = inode_cache_.find(ino);
  return it == inode_cache_.end() ? nullptr : it->second;
}

void FileSystem::DropCleanInodes() {
  for (auto it = inode_cache_.begin(); it != inode_cache_.end();) {
    const InodeRef& ip = it->second;
    if (ip.use_count() == 1 && !ip->dirty && ip->dep_pin == 0 && !ip->lock.Held()) {
      it = inode_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void FileSystem::EvictInodesIfNeeded() {
  if (inode_cache_.size() < config_.inode_cache_capacity) {
    return;
  }
  for (auto it = inode_cache_.begin(); it != inode_cache_.end();) {
    const InodeRef& ip = it->second;
    if (ip.use_count() == 1 && !ip->dirty && ip->dep_pin == 0 && !ip->lock.Held()) {
      it = inode_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

Task<void> FileSystem::FlushInodeToBuffer(Inode& ip) {
  BufRef buf = ip.itable_buf;
  co_await cache_->BeginUpdate(*buf);
  memcpy(buf->data().data() + sb_.ItableOffset(ip.ino), &ip.d, sizeof(DiskInode));
  ip.dirty = false;
  cache_->MarkDirty(*buf);
}

Task<void> FileSystem::MarkInodeDirty(Proc& proc, Inode& ip) {
  co_await Charge(proc, config_.costs.inode_update);
  ip.dirty = true;
  if (policy_->WriteThroughInodes()) {
    // Section 3.3: pushing the change into the buffer can wait on the
    // write lock of an in-flight request (unless -CB is configured).
    co_await FlushInodeToBuffer(ip);
  } else {
    // Delayed-write policies: the buffer is marked dirty now and the
    // bytes are serialized lazily in PrepareWrite.
    cache_->MarkDirty(*ip.itable_buf);
  }
  policy_->NoteInodeUpdate(proc, ip);
}

bool FileSystem::AnyDirtyInode() const {
  for (const auto& [ino, ip] : inode_cache_) {
    if (ip->dirty) {
      return true;
    }
  }
  return false;
}

Task<void> FileSystem::FlushDirtyInodes() {
  std::vector<uint32_t> dirty;
  for (const auto& [ino, ip] : inode_cache_) {
    if (ip->dirty) {
      dirty.push_back(ino);
    }
  }
  for (uint32_t ino : dirty) {
    auto it = inode_cache_.find(ino);
    if (it != inode_cache_.end() && it->second->dirty) {
      co_await FlushInodeToBuffer(*it->second);
      cache_->MarkDirty(*it->second->itable_buf);
    }
  }
}

// ---------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------

Task<Result<uint32_t>> FileSystem::AllocBlock(Proc& proc, uint32_t hint) {
  co_await Charge(proc, config_.costs.block_alloc);
  LockGuard guard = co_await LockGuard::Acquire(&alloc_lock_);
  uint32_t start = hint >= sb_.data_start && hint < sb_.total_blocks ? hint : block_rotor_;
  // Two passes: [start, end) then [data_start, start).
  for (int pass = 0; pass < 2; ++pass) {
    uint32_t lo = pass == 0 ? start : sb_.data_start;
    uint32_t hi = pass == 0 ? sb_.total_blocks : start;
    uint32_t blkno = lo;
    while (blkno < hi) {
      uint32_t bm_index = blkno / kBitsPerBlock;
      BufRef bm = co_await cache_->Bread(sb_.block_bitmap_start + bm_index);
      if (bm == nullptr) {
        co_return FsStatus::kIoError;
      }
      uint32_t limit = std::min(hi, (bm_index + 1) * kBitsPerBlock);
      for (; blkno < limit; ++blkno) {
        if (!BitmapGet(bm->data().data(), blkno % kBitsPerBlock) &&
            !policy_->BlockBusy(blkno)) {
          co_await cache_->BeginUpdate(*bm);
          BitmapSet(bm->data().data(), blkno % kBitsPerBlock, true);
          cache_->MarkDirty(*bm);
          block_rotor_ = blkno + 1 < sb_.total_blocks ? blkno + 1 : sb_.data_start;
          stat_blocks_allocated_->Inc();
          co_return blkno;
        }
      }
    }
  }
  co_return FsStatus::kNoSpace;
}

Task<Result<uint32_t>> FileSystem::AllocInode(Proc& proc, uint32_t parent_hint) {
  co_await Charge(proc, config_.costs.block_alloc);
  LockGuard guard = co_await LockGuard::Acquire(&alloc_lock_);
  uint32_t start = parent_hint > 0 && parent_hint < sb_.total_inodes ? parent_hint : inode_rotor_;
  for (int pass = 0; pass < 2; ++pass) {
    uint32_t lo = pass == 0 ? start : 1;
    uint32_t hi = pass == 0 ? sb_.total_inodes : start;
    uint32_t ino = lo;
    while (ino < hi) {
      uint32_t bm_index = ino / kBitsPerBlock;
      BufRef bm = co_await cache_->Bread(sb_.inode_bitmap_start + bm_index);
      if (bm == nullptr) {
        co_return FsStatus::kIoError;
      }
      uint32_t limit = std::min(hi, (bm_index + 1) * kBitsPerBlock);
      for (; ino < limit; ++ino) {
        if (!BitmapGet(bm->data().data(), ino % kBitsPerBlock)) {
          co_await cache_->BeginUpdate(*bm);
          BitmapSet(bm->data().data(), ino % kBitsPerBlock, true);
          cache_->MarkDirty(*bm);
          inode_rotor_ = ino + 1 < sb_.total_inodes ? ino + 1 : 1;
          co_return ino;
        }
      }
    }
  }
  co_return FsStatus::kNoSpace;
}

Task<void> FileSystem::FreeBlocksInBitmap(Proc& proc, const std::vector<uint32_t>& blocks) {
  co_await Charge(proc, config_.costs.block_free * static_cast<SimDuration>(blocks.size()));
  LockGuard guard = co_await LockGuard::Acquire(&alloc_lock_);
  for (uint32_t blkno : blocks) {
    assert(blkno >= sb_.data_start && blkno < sb_.total_blocks);
    BufRef bm = co_await cache_->Bread(sb_.block_bitmap_start + blkno / kBitsPerBlock);
    if (bm == nullptr) {
      // The block stays marked allocated: a leak, which fsck repairs.
      NoteIoError();
      continue;
    }
    co_await cache_->BeginUpdate(*bm);
    BitmapSet(bm->data().data(), blkno % kBitsPerBlock, false);
    cache_->MarkDirty(*bm);
    stat_blocks_freed_->Inc();
  }
}

Task<void> FileSystem::FreeInodeInBitmap(Proc& proc, uint32_t ino) {
  co_await Charge(proc, config_.costs.block_free);
  LockGuard guard = co_await LockGuard::Acquire(&alloc_lock_);
  BufRef bm = co_await cache_->Bread(sb_.inode_bitmap_start + ino / kBitsPerBlock);
  if (bm == nullptr) {
    // The inode stays marked allocated: a leak, which fsck repairs.
    NoteIoError();
    co_return;
  }
  co_await cache_->BeginUpdate(*bm);
  BitmapSet(bm->data().data(), ino % kBitsPerBlock, false);
  cache_->MarkDirty(*bm);
  // The in-core inode (mode 0) can leave the cache once clean.
}

// ---------------------------------------------------------------------
// Block mapping
// ---------------------------------------------------------------------

Task<Result<BufRef>> FileSystem::AllocAttachedBlock(Proc& proc, Inode& ip, PtrLoc loc,
                                                    bool init_required, BlockRole role,
                                                    uint32_t hint) {
  Result<uint32_t> blk = co_await AllocBlock(proc, hint);
  if (!blk.Ok()) {
    co_return blk.status();
  }
  BufRef data_buf = co_await cache_->Bget(blk.value());
  data_buf->data().fill(0);

  // The pointer is set in-core now; the on-disk carrier (itable buffer or
  // indirect buffer) is only updated when the policy calls
  // CommitBlockPointer, after its rule-3 ordering is in place.
  switch (loc.kind) {
    case PtrLoc::Kind::kInodeDirect:
      ip.d.direct[loc.index] = blk.value();
      break;
    case PtrLoc::Kind::kInodeIndirect:
      ip.d.indirect = blk.value();
      break;
    case PtrLoc::Kind::kInodeDouble:
      ip.d.double_indirect = blk.value();
      break;
    case PtrLoc::Kind::kIndirectSlot:
      break;
  }
  co_await policy_->SetupAllocation(proc, ip, data_buf, loc, init_required, role);
  co_return data_buf;
}

Task<void> FileSystem::CommitBlockPointer(Proc& proc, Inode& ip, const PtrLoc& loc,
                                          uint32_t blkno) {
  if (loc.kind == PtrLoc::Kind::kIndirectSlot) {
    co_await cache_->BeginUpdate(*loc.indirect_buf);
    *loc.indirect_buf->At<uint32_t>(loc.index * sizeof(uint32_t)) = blkno;
    cache_->MarkDirty(*loc.indirect_buf);
    co_return;
  }
  co_await MarkInodeDirty(proc, ip);
}

Task<Result<uint32_t>> FileSystem::BlockMap(Proc& proc, Inode& ip, uint32_t lbn, bool alloc) {
  bool force_init = ip.d.IsDir() || config_.alloc_init;
  BlockRole leaf_role = ip.d.IsDir() ? BlockRole::kDirectory : BlockRole::kFileData;
  // Direct blocks.
  if (lbn < kNumDirect) {
    uint32_t blk = ip.d.direct[lbn];
    if (blk != 0 || !alloc) {
      co_return blk;
    }
    PtrLoc loc{.kind = PtrLoc::Kind::kInodeDirect, .index = lbn};
    uint32_t hint = lbn > 0 ? ip.d.direct[lbn - 1] + 1 : 0;
    Result<BufRef> buf = co_await AllocAttachedBlock(proc, ip, loc, force_init, leaf_role, hint);
    if (!buf.Ok()) {
      co_return buf.status();
    }
    co_return ip.d.direct[lbn];
  }

  // Single indirect.
  uint32_t idx = lbn - kNumDirect;
  if (idx < kPtrsPerBlock) {
    if (ip.d.indirect == 0) {
      if (!alloc) {
        co_return 0u;
      }
      PtrLoc loc{.kind = PtrLoc::Kind::kInodeIndirect};
      // Indirect blocks are metadata: always initialization-ordered.
      Result<BufRef> buf = co_await AllocAttachedBlock(proc, ip, loc, /*init_required=*/true,
                                                       BlockRole::kIndirect,
                                                       ip.d.direct[kNumDirect - 1] + 1);
      if (!buf.Ok()) {
        co_return buf.status();
      }
    }
    BufRef ibuf = co_await cache_->Bread(ip.d.indirect);
    if (ibuf == nullptr) {
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*ibuf);
    uint32_t blk = *ibuf->At<uint32_t>(idx * sizeof(uint32_t));
    if (blk != 0 || !alloc) {
      co_return blk;
    }
    PtrLoc loc{.kind = PtrLoc::Kind::kIndirectSlot, .index = idx, .indirect_buf = ibuf};
    Result<BufRef> buf =
        co_await AllocAttachedBlock(proc, ip, loc, force_init, leaf_role, ip.d.indirect + 1);
    if (!buf.Ok()) {
      co_return buf.status();
    }
    co_return *ibuf->At<uint32_t>(idx * sizeof(uint32_t));
  }

  // Double indirect.
  idx -= kPtrsPerBlock;
  if (idx >= kPtrsPerBlock * kPtrsPerBlock) {
    co_return FsStatus::kInvalid;  // Beyond maximum file size.
  }
  if (ip.d.double_indirect == 0) {
    if (!alloc) {
      co_return 0u;
    }
    PtrLoc loc{.kind = PtrLoc::Kind::kInodeDouble};
    Result<BufRef> buf = co_await AllocAttachedBlock(proc, ip, loc, /*init_required=*/true,
                                                     BlockRole::kIndirect, ip.d.indirect + 1);
    if (!buf.Ok()) {
      co_return buf.status();
    }
  }
  BufRef dbuf = co_await cache_->Bread(ip.d.double_indirect);
  if (dbuf == nullptr) {
    co_return FsStatus::kIoError;
  }
  co_await cache_->BeginRead(*dbuf);
  uint32_t l1 = idx / kPtrsPerBlock;
  uint32_t l2 = idx % kPtrsPerBlock;
  uint32_t mid = *dbuf->At<uint32_t>(l1 * sizeof(uint32_t));
  if (mid == 0) {
    if (!alloc) {
      co_return 0u;
    }
    PtrLoc loc{.kind = PtrLoc::Kind::kIndirectSlot, .index = l1, .indirect_buf = dbuf};
    Result<BufRef> buf = co_await AllocAttachedBlock(proc, ip, loc, /*init_required=*/true,
                                                     BlockRole::kIndirect,
                                                     ip.d.double_indirect + 1);
    if (!buf.Ok()) {
      co_return buf.status();
    }
    mid = *dbuf->At<uint32_t>(l1 * sizeof(uint32_t));
  }
  BufRef mbuf = co_await cache_->Bread(mid);
  if (mbuf == nullptr) {
    co_return FsStatus::kIoError;
  }
  co_await cache_->BeginRead(*mbuf);
  uint32_t blk = *mbuf->At<uint32_t>(l2 * sizeof(uint32_t));
  if (blk != 0 || !alloc) {
    co_return blk;
  }
  PtrLoc loc{.kind = PtrLoc::Kind::kIndirectSlot, .index = l2, .indirect_buf = mbuf};
  Result<BufRef> buf = co_await AllocAttachedBlock(proc, ip, loc, force_init, leaf_role, mid + 1);
  if (!buf.Ok()) {
    co_return buf.status();
  }
  co_return *mbuf->At<uint32_t>(l2 * sizeof(uint32_t));
}

// ---------------------------------------------------------------------
// Truncation / link release
// ---------------------------------------------------------------------

Task<FsStatus> FileSystem::TruncateLocked(Proc& proc, Inode& ip, uint64_t new_size) {
  if (new_size >= ip.d.size) {
    ip.d.size = new_size;
    co_await MarkInodeDirty(proc, ip);
    co_return FsStatus::kOk;
  }
  uint32_t keep_blocks =
      static_cast<uint32_t>((new_size + kBlockSize - 1) / kBlockSize);
  std::vector<uint32_t> freed;
  std::vector<BufRef> updated_indirects;

  // Direct pointers.
  for (uint32_t i = keep_blocks < kNumDirect ? keep_blocks : kNumDirect; i < kNumDirect; ++i) {
    if (ip.d.direct[i] != 0) {
      freed.push_back(ip.d.direct[i]);
      ip.d.direct[i] = 0;
    }
  }

  // Single indirect tree.
  uint32_t indirect_limit = kNumDirect + kPtrsPerBlock;
  if (ip.d.indirect != 0 && keep_blocks < indirect_limit) {
    BufRef ibuf = co_await cache_->Bread(ip.d.indirect);
    if (ibuf == nullptr) {
      // Cannot walk the tree: leak those blocks (fsck repairs) rather
      // than free blindly. Direct pointers already reset stay reset.
      NoteIoError();
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*ibuf);
    uint32_t first = keep_blocks > kNumDirect ? keep_blocks - kNumDirect : 0;
    co_await cache_->BeginUpdate(*ibuf);
    for (uint32_t i = first; i < kPtrsPerBlock; ++i) {
      uint32_t* slot = ibuf->At<uint32_t>(i * sizeof(uint32_t));
      if (*slot != 0) {
        freed.push_back(*slot);
        *slot = 0;
      }
    }
    cache_->MarkDirty(*ibuf);
    if (first == 0) {
      freed.push_back(ip.d.indirect);
      ip.d.indirect = 0;
    } else {
      updated_indirects.push_back(ibuf);
    }
  }

  // Double indirect tree (all-or-nothing beyond the single range).
  if (ip.d.double_indirect != 0 && keep_blocks < indirect_limit + kPtrsPerBlock * kPtrsPerBlock) {
    BufRef dbuf = co_await cache_->Bread(ip.d.double_indirect);
    if (dbuf == nullptr) {
      NoteIoError();
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*dbuf);
    uint64_t keep_in_double =
        keep_blocks > indirect_limit ? keep_blocks - indirect_limit : 0;
    co_await cache_->BeginUpdate(*dbuf);
    for (uint32_t l1 = 0; l1 < kPtrsPerBlock; ++l1) {
      uint32_t* mid_slot = dbuf->At<uint32_t>(l1 * sizeof(uint32_t));
      if (*mid_slot == 0) {
        continue;
      }
      uint64_t sub_first_lbn = static_cast<uint64_t>(l1) * kPtrsPerBlock;
      BufRef mbuf = co_await cache_->Bread(*mid_slot);
      if (mbuf == nullptr) {
        // Leak this subtree; fsck repairs the leaked blocks.
        NoteIoError();
        continue;
      }
      co_await cache_->BeginRead(*mbuf);
      co_await cache_->BeginUpdate(*mbuf);
      bool sub_empty = true;
      for (uint32_t l2 = 0; l2 < kPtrsPerBlock; ++l2) {
        if (sub_first_lbn + l2 < keep_in_double) {
          sub_empty = false;
          continue;
        }
        uint32_t* slot = mbuf->At<uint32_t>(l2 * sizeof(uint32_t));
        if (*slot != 0) {
          freed.push_back(*slot);
          *slot = 0;
        }
      }
      cache_->MarkDirty(*mbuf);
      if (sub_empty) {
        freed.push_back(*mid_slot);
        *mid_slot = 0;
      } else {
        updated_indirects.push_back(mbuf);
      }
    }
    cache_->MarkDirty(*dbuf);
    if (keep_in_double == 0) {
      freed.push_back(ip.d.double_indirect);
      ip.d.double_indirect = 0;
    } else {
      updated_indirects.push_back(dbuf);
    }
  }

  ip.d.size = new_size;
  ip.d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, ip);
  if (!freed.empty()) {
    co_await policy_->SetupBlockFree(proc, ip, std::move(freed), std::move(updated_indirects));
  }
  co_return FsStatus::kOk;
}

Task<void> FileSystem::ReleaseLink(Proc& proc, uint32_t ino) {
  InodeRef ip = co_await Iget(proc, ino);
  if (ip == nullptr) {
    // Cannot load the inode: the link count stays high (fsck repairs).
    NoteIoError();
    co_return;
  }
  LockGuard guard = co_await LockGuard::Acquire(&ip->lock);
  assert(ip->d.nlink > 0);
  if (ip->d.IsDir() && ip->d.nlink == 2) {
    // Losing its parent entry takes an (empty) directory's self-link with
    // it: rmdir drops both here, after the protecting entry write.
    ip->d.nlink = 0;
  } else {
    ip->d.nlink--;
  }
  ip->d.ctime = NowSeconds();
  co_await MarkInodeDirty(proc, *ip);
  if (ip->d.nlink > 0) {
    co_return;
  }
  // Last link gone: clear the mode first so the truncation's inode write
  // carries both the reset pointers and the freed mode in one I/O.
  ip->d.mode = static_cast<uint16_t>(FileType::kFree);
  co_await TruncateLocked(proc, *ip, 0);
  co_await policy_->SetupInodeFree(proc, *ip);
}

}  // namespace mufs
