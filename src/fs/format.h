// On-disk format of the mufs file system.
//
// A deliberately FFS-shaped layout (paper section 2: the experimental ufs
// is a Berkeley FFS derivative): superblock, inode bitmap, block bitmap,
// inode table, data area. Fixed-size 64-byte directory slots stand in for
// FFS's variable-length entries; this keeps entry offsets stable, which
// both the soft-updates directory dependencies and the fsck checker key
// on. All structures are trivially copyable and are memcpy'd in and out
// of 4 KB buffers.
#ifndef MUFS_SRC_FS_FORMAT_H_
#define MUFS_SRC_FS_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/disk/geometry.h"

namespace mufs {

constexpr uint32_t kFsMagic = 0x4d554653;  // "MUFS"
constexpr uint32_t kNumDirect = 12;
constexpr uint32_t kPtrsPerBlock = kBlockSize / sizeof(uint32_t);  // 1024
constexpr uint32_t kInodeSize = 128;
constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;  // 32
constexpr uint32_t kRootIno = 1;  // Ino 0 is reserved as "no inode".

// File type stored in DiskInode::mode. kFree (0) marks an unallocated
// inode on disk.
enum class FileType : uint16_t { kFree = 0, kRegular = 1, kDirectory = 2 };

// On-disk inode. Exactly kInodeSize bytes.
struct DiskInode {
  uint16_t mode = 0;  // FileType.
  uint16_t nlink = 0;
  uint32_t generation = 0;  // Bumped on every reallocation of this inode.
  uint64_t size = 0;
  uint32_t direct[kNumDirect] = {};
  uint32_t indirect = 0;
  uint32_t double_indirect = 0;
  uint32_t atime = 0;
  uint32_t mtime = 0;
  uint32_t ctime = 0;
  uint32_t spare[11] = {};

  FileType Type() const { return static_cast<FileType>(mode); }
  bool InUse() const { return Type() != FileType::kFree; }
  bool IsDir() const { return Type() == FileType::kDirectory; }
};
static_assert(sizeof(DiskInode) == kInodeSize);
static_assert(kBlockSize % sizeof(DiskInode) == 0);

// Fixed-size directory entry: 64 bytes, 64 per block. ino == 0 marks a
// free slot (and is exactly what the soft-updates link-add undo writes).
constexpr uint32_t kDirEntrySize = 64;
constexpr uint32_t kMaxNameLen = 55;
constexpr uint32_t kDirEntriesPerBlock = kBlockSize / kDirEntrySize;  // 64

struct DirEntry {
  uint32_t ino = 0;
  uint32_t reserved = 0;
  char name[kMaxNameLen + 1] = {};

  std::string_view Name() const { return {name, strnlen(name, kMaxNameLen + 1)}; }
  void SetName(std::string_view n) {
    size_t len = n.size() < kMaxNameLen ? n.size() : kMaxNameLen;
    memcpy(name, n.data(), len);
    memset(name + len, 0, sizeof(name) - len);
  }
};
static_assert(sizeof(DirEntry) == kDirEntrySize);

// Superblock, stored in block 0.
struct SuperBlock {
  uint32_t magic = kFsMagic;
  uint32_t total_blocks = 0;
  uint32_t total_inodes = 0;
  uint32_t inode_bitmap_start = 0;
  uint32_t inode_bitmap_blocks = 0;
  uint32_t block_bitmap_start = 0;
  uint32_t block_bitmap_blocks = 0;
  uint32_t inode_table_start = 0;
  uint32_t inode_table_blocks = 0;
  // Reserved write-ahead journal extent (zero blocks for non-journaling
  // images). Lives between the inode table and the data area; fsck's
  // RebuildBitmaps already treats everything below data_start as used.
  uint32_t journal_start = 0;
  uint32_t journal_blocks = 0;
  uint32_t data_start = 0;

  // Which inode-table block holds inode `ino`, and its offset inside.
  uint32_t ItableBlock(uint32_t ino) const {
    return inode_table_start + ino / kInodesPerBlock;
  }
  uint32_t ItableOffset(uint32_t ino) const {
    return (ino % kInodesPerBlock) * kInodeSize;
  }
  bool IsDataBlock(uint32_t blkno) const {
    return blkno >= data_start && blkno < total_blocks;
  }
};
static_assert(sizeof(SuperBlock) <= kBlockSize);

// Bitmap helpers over raw block bytes.
inline bool BitmapGet(const uint8_t* base, uint32_t index) {
  return (base[index / 8] >> (index % 8)) & 1;
}
inline void BitmapSet(uint8_t* base, uint32_t index, bool value) {
  if (value) {
    base[index / 8] |= static_cast<uint8_t>(1u << (index % 8));
  } else {
    base[index / 8] &= static_cast<uint8_t>(~(1u << (index % 8)));
  }
}
constexpr uint32_t kBitsPerBlock = kBlockSize * 8;

}  // namespace mufs

#endif  // MUFS_SRC_FS_FORMAT_H_
