// Metadata-update ordering policy interface.
//
// The file system performs all structural changes on in-memory state and
// then calls one of these hooks at each of the paper's four dependency
// points (section 4.2):
//
//   1. block allocation (direct or indirect)   -> SetupAllocation
//   2. block de-allocation                     -> SetupBlockFree
//   3. link addition                           -> SetupLinkAdd
//   4. link removal                            -> SetupLinkRemove
//
// plus the rename rule-1 fence (SetupRenameFence) and inode free
// (SetupInodeFree). Each of the five schemes implements the hooks with
// its own write discipline:
//
//   NoOrder       : mark things dirty, nothing else (unsafe baseline).
//   Conventional  : synchronous writes at each point.
//   SchedulerFlag : asynchronous writes carrying the one-bit flag.
//   SchedulerChain: asynchronous writes carrying request dependencies,
//                   plus freed-resource tracking for safe re-use.
//   SoftUpdates   : delayed writes plus fine-grained dependency records
//                   with undo/redo (see src/core/softupdates/).
//
// Hooks that "eventually" free resources or drop link counts own that
// responsibility: most schemes do it inline; soft updates defers it to
// workitems that run after the protecting write completes.
#ifndef MUFS_SRC_FS_POLICY_H_
#define MUFS_SRC_FS_POLICY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/fs/format.h"
#include "src/fs/proc.h"
#include "src/sim/task.h"

namespace mufs {

class FileSystem;
struct Inode;

// What a freshly allocated block will hold. Directory and indirect
// blocks are metadata (their content is ordering-relevant); file data
// blocks are not (only their zero-init matters, and only under
// alloc-init).
enum class BlockRole : uint8_t {
  kFileData,
  kDirectory,
  kIndirect,
};

// Where a freshly set block pointer lives.
struct PtrLoc {
  enum class Kind : uint8_t {
    kInodeDirect,     // in-core inode direct[index]
    kInodeIndirect,   // in-core inode indirect
    kInodeDouble,     // in-core inode double_indirect
    kIndirectSlot,    // indirect_buf block, slot `index`
  };
  Kind kind = Kind::kInodeDirect;
  uint32_t index = 0;
  BufRef indirect_buf;  // Set for kIndirectSlot.
};

class OrderingPolicy {
 public:
  virtual ~OrderingPolicy() = default;
  virtual std::string_view Name() const = 0;

  // Called once after the policy is attached to a mounted file system.
  // Also binds the policy's metric handles to the file system's registry.
  virtual void Attach(FileSystem* fs);

  // Buffer-cache dependency hooks (only soft updates uses them).
  virtual DepHooks* CacheHooks() { return nullptr; }

  // True if in-core inode changes should be copied into the inode-table
  // buffer at modification time (waiting out write locks, section 3.3's
  // contention); false if serialization happens lazily at write time.
  virtual bool WriteThroughInodes() const { return true; }

  // (1) Block allocation. `data_buf` is the freshly allocated block
  // (zero-filled; file data arrives later via delayed writes). The block
  // pointer has already been set in the in-core inode / indirect buffer
  // per `loc`. `init_required` reflects rule 3 for this block (directory
  // or indirect block, or a data block under alloc-init). `role` says
  // what the block will hold (journaling logs metadata-block content).
  virtual Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                                     bool init_required, BlockRole role) = 0;

  // (2) Block de-allocation: `ip`'s pointers to `blocks` were just reset
  // in-core (freed indirect blocks are gathered into `blocks` too).
  // `updated_indirects` are surviving indirect blocks whose slots were
  // reset (partial truncate). The policy must get the reset pointers to
  // disk per its discipline and eventually free the blocks in the bitmap
  // (rule 2).
  virtual Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                                    std::vector<BufRef> updated_indirects) = 0;

  // (3) Link addition: directory entry at `offset` in `dir_buf` now
  // points to `target` (nlink already bumped in-core; brand-new inodes
  // are fully initialized in-core). Rule 3: the inode must reach disk
  // before the entry.
  virtual Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                  Inode& target, bool new_inode) = 0;

  // (4) Link removal: the entry at `offset` in `dir_buf` (which pointed
  // to `removed_ino`; pre-clear bytes in `old_entry`) was just cleared
  // in-memory. Rule 2: the cleared entry must reach disk before the
  // inode's link count drops / the inode is reused. The policy must
  // eventually call fs()->ReleaseLink().
  //
  // When the removal is the second half of a rename, `rename` carries
  // the new entry's location; rule 1 then additionally requires that the
  // new entry reach disk before the cleared old entry does.
  struct RenameContext {
    BufRef new_dir_buf;
    uint32_t new_offset = 0;
    uint32_t moved_ino = 0;
  };
  virtual Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                     DirEntry old_entry, uint32_t removed_ino,
                                     const RenameContext* rename) = 0;

  // Inode free: `ip` now has nlink == 0, its mode was cleared in-core and
  // its blocks already went through SetupBlockFree. The policy must get
  // the cleared inode to disk per its discipline and eventually free the
  // inode in the bitmap.
  virtual Task<void> SetupInodeFree(Proc& proc, Inode& ip) = 0;

  // SYNCIO support: block until every change made by prior calls on this
  // file is persistent (used by fsync and unmount).
  virtual Task<void> FlushAll(Proc& proc) = 0;

  // True when every metadata update is persistent before the hook that
  // made it returns (Conventional's synchronous writes). Cross-shard
  // protocols then skip their explicit durability barrier: the update
  // they depend on is already on stable storage.
  virtual bool MetadataSynchronous() const { return false; }

  // True if the directory slot at (blkno, offset) must not be reused for
  // a new entry yet (soft updates holds slots whose removal is pinned by
  // a rename's rule-1 dependency). Consulted by AddEntry.
  virtual bool DirSlotBusy(uint32_t blkno, uint32_t offset) const {
    (void)blkno;
    (void)offset;
    return false;
  }

  // True if `blkno` must not be handed out by the allocator yet
  // (journaling holds freed blocks until the freeing transaction is
  // durable, the log-side analogue of chains' freed-resource tracking).
  // Consulted by AllocBlock.
  virtual bool BlockBusy(uint32_t blkno) const {
    (void)blkno;
    return false;
  }

  // Operation bracketing: mutating fs ops (create, unlink, rename, ...)
  // call OpBegin on entry and OpEnd on every exit path. Journaling uses
  // the bracket to commit transactions only at operation boundaries so
  // every committed state is the image after N *complete* operations.
  // Other schemes ignore it.
  virtual Task<void> OpBegin(Proc& proc) {
    (void)proc;
    co_return;
  }
  virtual void OpEnd() {}

  // Called after every in-core inode modification lands in the inode
  // table buffer (MarkInodeDirty). Journaling captures the itable block
  // image here; other schemes ignore it.
  virtual void NoteInodeUpdate(Proc& proc, Inode& ip) {
    (void)proc;
    (void)ip;
  }

 protected:
  FileSystem* fs() const { return fs_; }

  // Shared FlushAll implementation: repeatedly flush dirty inodes, push
  // all dirty buffers to disk, and run deferred work until quiescent.
  Task<void> DrainAllDirty(Proc& proc);

  // Counts one ordering-point decision (counter "policy.ordering_points"
  // plus "policy.<point>") and, when tracing, records a
  // "policy.ordering_point" event {scheme, point, action}. `point` is one
  // of the paper's dependency points (alloc, block_free, link_add,
  // link_remove, inode_free, rename_fence); `action` names the discipline
  // applied (sync_write, flagged_write, chain_dep, delayed, none, ...).
  void NoteOrderingPoint(std::string_view point, std::string_view action);

 private:
  FileSystem* fs_ = nullptr;
  StatsRegistry* stats_ = nullptr;
  Counter* stat_ordering_points_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_FS_POLICY_H_
