// The mufs file system: an FFS-like file system over the buffer cache,
// with all metadata-update ordering delegated to an OrderingPolicy.
//
// Every operation is a coroutine running in some simulated process
// context (Proc). CPU work is charged to the Cpu model with per-operation
// costs from FsCpuCosts, and blocking I/O shows up as simulated time.
#ifndef MUFS_SRC_FS_FILESYSTEM_H_
#define MUFS_SRC_FS_FILESYSTEM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/cache/syncer.h"
#include "src/fs/format.h"
#include "src/fs/fs_interface.h"
#include "src/fs/policy.h"
#include "src/fs/proc.h"
#include "src/fs/result.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace mufs {

// In-core inode: the file system always manipulates this copy; the
// on-disk bytes live in the inode-table block buffer (paper appendix:
// "the inode structure manipulated by the file system is always separate
// from the corresponding source block for disk writes").
struct Inode {
  Inode(Engine* engine, uint32_t ino_num) : ino(ino_num), lock(engine) {}
  uint32_t ino;
  DiskInode d;
  bool dirty = false;   // In-core copy newer than the itable buffer.
  int dep_pin = 0;      // Soft-updates pin: keep in-core while > 0.
  Mutex lock;           // Serializes operations on this inode.
  BufRef itable_buf;    // Pinned inode-table block holding this inode.
};
using InodeRef = std::shared_ptr<Inode>;

// CPU cost model, loosely calibrated to a 33 MHz i486 so the CPU-time
// columns of Tables 1-3 come out in believable ratios.
struct FsCpuCosts {
  SimDuration syscall = Usec(80);          // Trap + vfs dispatch.
  SimDuration name_component = Usec(60);   // Per path component.
  SimDuration dir_scan_block = Usec(70);   // Per directory block scanned.
  SimDuration create = Usec(250);          // Inode alloc + init.
  SimDuration remove = Usec(200);
  SimDuration block_alloc = Usec(90);
  SimDuration block_free = Usec(40);       // Per block freed.
  SimDuration inode_update = Usec(40);
  SimDuration per_kb_io = Usec(210);       // Kernel/user copy per KB.
};

struct FsConfig {
  // Enforce allocation initialization (rule 3) for regular-file data
  // blocks. Directory and indirect blocks are always initialized (as in
  // FFS derivatives; paper section 1). The paper's "Alloc. Init." = Y/N.
  bool alloc_init = false;
  uint32_t inode_cache_capacity = 4096;
  FsCpuCosts costs;
  // Shared metrics registry; falls back to the cache's when null.
  StatsRegistry* stats = nullptr;
};

class FileSystem : public FsInterface {
 public:
  FileSystem(Engine* engine, Cpu* cpu, BufferCache* cache, SyncerDaemon* syncer,
             FsConfig config = {});
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;
  ~FileSystem() override;

  // Formats an image in place (offline; writes the superblock, bitmaps
  // and a root directory directly into the DiskImage). `journal_blocks`
  // reserves a write-ahead log extent between the inode table and the
  // data area (0 = no journal; layout identical to pre-journal images).
  static void Mkfs(DiskImage* image, uint32_t total_inodes = 32768,
                   uint32_t journal_blocks = 0);

  // Attaches the policy (required before Mount) and reads the superblock.
  void SetPolicy(OrderingPolicy* policy);
  Task<FsStatus> Mount(Proc& proc);

  // --- POSIX-like operations (paths are absolute, '/'-separated) -----
  Task<Result<uint32_t>> Create(Proc& proc, const std::string& path) override;
  Task<FsStatus> Mkdir(Proc& proc, const std::string& path) override;
  Task<FsStatus> Unlink(Proc& proc, const std::string& path) override;
  Task<FsStatus> Rmdir(Proc& proc, const std::string& path) override;
  Task<FsStatus> Rename(Proc& proc, const std::string& from, const std::string& to) override;
  Task<FsStatus> Link(Proc& proc, const std::string& existing,
                      const std::string& link_path) override;
  Task<Result<uint32_t>> Lookup(Proc& proc, const std::string& path) override;
  Task<Result<StatInfo>> Stat(Proc& proc, const std::string& path) override;
  Task<Result<StatInfo>> StatIno(Proc& proc, uint32_t ino) override;
  Task<Result<std::vector<DirEntryInfo>>> ReadDir(Proc& proc,
                                                  const std::string& path) override;
  Task<Result<uint64_t>> WriteFile(Proc& proc, uint32_t ino, uint64_t offset,
                                   std::span<const uint8_t> data) override;
  Task<Result<uint64_t>> ReadFile(Proc& proc, uint32_t ino, uint64_t offset,
                                  std::span<uint8_t> out) override;
  Task<FsStatus> Truncate(Proc& proc, uint32_t ino, uint64_t new_size) override;
  // SYNCIO: returns only when all metadata for `ino` is persistent.
  Task<FsStatus> Fsync(Proc& proc, uint32_t ino) override;
  // Full sync: flush all inodes, run deferred work, drain the device.
  Task<FsStatus> SyncEverything(Proc& proc) override;

  // --- Policy support API --------------------------------------------
  Engine* engine() const { return engine_; }
  Cpu* cpu() const { return cpu_; }
  BufferCache* cache() const { return cache_; }
  SyncerDaemon* syncer() const { return syncer_; }
  const SuperBlock& sb() const { return sb_; }
  const FsConfig& config() const { return config_; }
  OrderingPolicy* policy() const { return policy_; }

  // Copies the in-core inode into its inode-table buffer (respecting the
  // write lock) and marks the buffer dirty.
  Task<void> FlushInodeToBuffer(Inode& ip);

  // Drops one link on `ino`: nlink--, and if it reaches zero frees the
  // file (blocks via SetupBlockFree, inode via SetupInodeFree). Called
  // inline by most policies, from a workitem by soft updates.
  Task<void> ReleaseLink(Proc& proc, uint32_t ino);

  // Bitmap mutators used by policies when a free finally happens.
  Task<void> FreeBlocksInBitmap(Proc& proc, const std::vector<uint32_t>& blocks);
  Task<void> FreeInodeInBitmap(Proc& proc, uint32_t ino);

  // Pushes a just-allocated block pointer into its on-disk carrier (the
  // inode-table buffer or an indirect block buffer). Called by
  // SetupAllocation implementations once their discipline permits the
  // pointer to become writable (rule 3): after the init write for
  // synchronous schemes, immediately for asynchronous/delayed ones.
  Task<void> CommitBlockPointer(Proc& proc, Inode& ip, const PtrLoc& loc, uint32_t blkno);

  // In-core inode lookup/load. Returns nullptr if the inode-table block
  // could not be read (device failure); callers surface kIoError.
  Task<InodeRef> Iget(Proc& proc, uint32_t ino);
  // Fetches only if already in-core (used by soft-updates workitems).
  InodeRef IgetCached(uint32_t ino);

  // Flushes every dirty in-core inode into its buffer (syncer pre-pass).
  Task<void> FlushDirtyInodes();
  bool AnyDirtyInode() const override;

  // Marks the in-core inode dirty; with write-through policies also
  // pushes it into the itable buffer immediately.
  Task<void> MarkInodeDirty(Proc& proc, Inode& ip);

  FsOpStats op_stats() const override;  // Snapshot of the fs.* counters.
  StatsRegistry* stats() const { return stats_; }

  // Records an unrecoverable device I/O error noticed by a policy, the
  // journal, or an internal fire-and-forget path (e.g. a bitmap free
  // that could not read its bitmap block). Sticky: once degraded,
  // SyncEverything reports kIoError so callers know some state may
  // never have reached the disk.
  void NoteIoError() {
    io_degraded_ = true;
    stat_io_errors_->Inc();
  }
  bool io_degraded() const override;

  // Drops clean, unpinned in-core inodes (cold-cache simulation).
  void DropCleanInodes() override;

 private:
  friend class FsBufferHooks;

  // --- path / directory internals ---
  struct PathParts {
    std::vector<std::string> components;
  };
  static Result<PathParts> SplitPath(const std::string& path);

  // Resolves all but the last component; returns the parent directory
  // inode (unlocked) and the final name.
  struct ParentLookup {
    InodeRef parent;
    std::string leaf;
  };
  Task<Result<ParentLookup>> LookupParent(Proc& proc, const std::string& path);
  Task<Result<uint32_t>> LookupIn(Proc& proc, Inode& dir, std::string_view name);
  // Finds the entry for `name`; returns block lbn/offset via out params.
  struct EntryLoc {
    BufRef buf;
    uint32_t offset = 0;  // Byte offset of the DirEntry within the block.
    uint32_t ino = 0;
  };
  Task<Result<EntryLoc>> FindEntry(Proc& proc, Inode& dir, std::string_view name);
  // Finds a free slot (growing the directory if needed) and fills it.
  Task<Result<EntryLoc>> AddEntry(Proc& proc, Inode& dir, std::string_view name, uint32_t ino);
  Task<Result<bool>> DirIsEmpty(Proc& proc, Inode& dir);

  // --- allocation ---
  Task<Result<uint32_t>> AllocBlock(Proc& proc, uint32_t hint);
  Task<Result<uint32_t>> AllocInode(Proc& proc, uint32_t parent_hint);
  // Maps logical block -> physical, allocating (and wiring dependencies)
  // when `alloc` is set. Returns 0 for unmapped holes when !alloc.
  Task<Result<uint32_t>> BlockMap(Proc& proc, Inode& ip, uint32_t lbn, bool alloc);
  // Allocates one block for `ip`, zero-filled, wiring SetupAllocation.
  Task<Result<BufRef>> AllocAttachedBlock(Proc& proc, Inode& ip, PtrLoc loc, bool init_required,
                                          BlockRole role, uint32_t hint);
  // Collects every block of `ip` beyond `new_size` and resets pointers.
  Task<FsStatus> TruncateLocked(Proc& proc, Inode& ip, uint64_t new_size);

  Task<void> Charge(Proc& proc, SimDuration d);
  uint32_t NowSeconds() const;
  void SerializeInodesInto(Buf& buf);
  void EvictInodesIfNeeded();

  Engine* engine_;
  Cpu* cpu_;
  BufferCache* cache_;
  SyncerDaemon* syncer_;
  FsConfig config_;
  OrderingPolicy* policy_ = nullptr;
  SuperBlock sb_;
  bool mounted_ = false;
  bool io_degraded_ = false;  // Some metadata may never have hit disk.

  std::unordered_map<uint32_t, InodeRef> inode_cache_;
  Mutex alloc_lock_;  // Serializes bitmap allocation decisions.
  uint32_t block_rotor_ = 0;
  uint32_t inode_rotor_ = 1;

  std::unique_ptr<DepHooks> buffer_hooks_;

  // Metric handles into stats_ (the Machine's registry or the cache's
  // private fallback; never null after construction).
  StatsRegistry* stats_ = nullptr;
  Counter* stat_creates_ = nullptr;
  Counter* stat_removes_ = nullptr;
  Counter* stat_mkdirs_ = nullptr;
  Counter* stat_rmdirs_ = nullptr;
  Counter* stat_renames_ = nullptr;
  Counter* stat_lookups_ = nullptr;
  Counter* stat_reads_ = nullptr;
  Counter* stat_writes_ = nullptr;
  Counter* stat_blocks_allocated_ = nullptr;
  Counter* stat_blocks_freed_ = nullptr;
  Counter* stat_io_errors_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_FS_FILESYSTEM_H_
