// Simulated process context threaded through file-system calls.
//
// Plays the role of `curproc`: identifies who to charge CPU time to and
// accumulates the per-"user" statistics the paper reports (elapsed time
// is measured by the workload; CPU time by the Cpu model; I/O wait here).
#ifndef MUFS_SRC_FS_PROC_H_
#define MUFS_SRC_FS_PROC_H_

#include <string>

#include "src/sim/cpu.h"
#include "src/sim/time.h"

namespace mufs {

struct Proc {
  Pid pid = kSystemPid;
  std::string name = "proc";

  // Accumulated time this process spent blocked on disk I/O (directly:
  // synchronous writes, read misses, write-lock waits).
  SimDuration io_wait = 0;
  // Counters for analysis.
  uint64_t fs_calls = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_FS_PROC_H_
