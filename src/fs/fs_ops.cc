// Path resolution, directory manipulation and file I/O for FileSystem.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/fs/filesystem.h"

namespace mufs {

namespace {

// Pairs OrderingPolicy::OpBegin with OpEnd on every exit path of a
// mutating operation (ops have many early co_returns).
struct OpGuard {
  explicit OpGuard(OrderingPolicy* p) : policy(p) {}
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;
  ~OpGuard() { policy->OpEnd(); }
  OrderingPolicy* policy;
};

}  // namespace

// ---------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------

Result<FileSystem::PathParts> FileSystem::SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return FsStatus::kInvalid;
  }
  PathParts parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j > i) {
      std::string comp = path.substr(i, j - i);
      if (comp == "." || comp == "..") {
        return FsStatus::kInvalid;  // Handled logically via parent links.
      }
      if (comp.size() > kMaxNameLen) {
        return FsStatus::kNameTooLong;
      }
      parts.components.push_back(std::move(comp));
    }
    i = j + 1;
  }
  return parts;
}

Task<Result<FileSystem::ParentLookup>> FileSystem::LookupParent(Proc& proc,
                                                                const std::string& path) {
  Result<PathParts> parts = SplitPath(path);
  if (!parts.Ok()) {
    co_return parts.status();
  }
  if (parts.value().components.empty()) {
    co_return FsStatus::kInvalid;  // Root has no parent entry.
  }
  InodeRef dir = co_await Iget(proc, kRootIno);
  if (dir == nullptr) {
    co_return FsStatus::kIoError;
  }
  auto& comps = parts.value().components;
  for (size_t i = 0; i + 1 < comps.size(); ++i) {
    co_await Charge(proc, config_.costs.name_component);
    if (!dir->d.IsDir()) {
      co_return FsStatus::kNotDirectory;
    }
    Result<uint32_t> next = co_await LookupIn(proc, *dir, comps[i]);
    if (!next.Ok()) {
      co_return next.status();
    }
    dir = co_await Iget(proc, next.value());
    if (dir == nullptr) {
      co_return FsStatus::kIoError;
    }
  }
  if (!dir->d.IsDir()) {
    co_return FsStatus::kNotDirectory;
  }
  co_return ParentLookup{std::move(dir), comps.back()};
}

Task<Result<uint32_t>> FileSystem::LookupIn(Proc& proc, Inode& dir, std::string_view name) {
  Result<EntryLoc> loc = co_await FindEntry(proc, dir, name);
  if (!loc.Ok()) {
    co_return loc.status();
  }
  co_return loc.value().ino;
}

Task<Result<FileSystem::EntryLoc>> FileSystem::FindEntry(Proc& proc, Inode& dir,
                                                         std::string_view name) {
  uint32_t nblocks = static_cast<uint32_t>((dir.d.size + kBlockSize - 1) / kBlockSize);
  for (uint32_t lbn = 0; lbn < nblocks; ++lbn) {
    co_await Charge(proc, config_.costs.dir_scan_block);
    Result<uint32_t> blk = co_await BlockMap(proc, dir, lbn, /*alloc=*/false);
    if (!blk.Ok() || blk.value() == 0) {
      continue;
    }
    BufRef buf = co_await cache_->Bread(blk.value());
    if (buf == nullptr) {
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*buf);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      const DirEntry* de = buf->At<DirEntry>(e * kDirEntrySize);
      if (de->ino != 0 && de->Name() == name) {
        co_return EntryLoc{buf, e * kDirEntrySize, de->ino};
      }
    }
  }
  co_return FsStatus::kNotFound;
}

Task<Result<FileSystem::EntryLoc>> FileSystem::AddEntry(Proc& proc, Inode& dir,
                                                        std::string_view name, uint32_t ino) {
  // Scan for a free slot.
  uint32_t nblocks = static_cast<uint32_t>((dir.d.size + kBlockSize - 1) / kBlockSize);
  for (uint32_t lbn = 0; lbn < nblocks; ++lbn) {
    co_await Charge(proc, config_.costs.dir_scan_block);
    Result<uint32_t> blk = co_await BlockMap(proc, dir, lbn, /*alloc=*/false);
    if (!blk.Ok() || blk.value() == 0) {
      continue;
    }
    BufRef buf = co_await cache_->Bread(blk.value());
    if (buf == nullptr) {
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*buf);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      if (buf->At<DirEntry>(e * kDirEntrySize)->ino == 0 &&
          !policy_->DirSlotBusy(buf->blkno(), e * kDirEntrySize)) {
        co_await cache_->BeginUpdate(*buf);
        DirEntry* de = buf->At<DirEntry>(e * kDirEntrySize);
        de->ino = ino;
        de->SetName(name);
        cache_->MarkDirty(*buf);
        co_return EntryLoc{buf, e * kDirEntrySize, ino};
      }
    }
  }
  // Grow the directory by one block (rule 3: directory blocks are always
  // initialization-ordered; BlockMap handles that via the policy).
  Result<uint32_t> blk = co_await BlockMap(proc, dir, nblocks, /*alloc=*/true);
  if (!blk.Ok()) {
    co_return blk.status();
  }
  dir.d.size = static_cast<uint64_t>(nblocks + 1) * kBlockSize;
  dir.d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, dir);
  BufRef buf = co_await cache_->Bread(blk.value());
  if (buf == nullptr) {
    co_return FsStatus::kIoError;
  }
  co_await cache_->BeginUpdate(*buf);
  DirEntry* de = buf->At<DirEntry>(0);
  de->ino = ino;
  de->SetName(name);
  cache_->MarkDirty(*buf);
  co_return EntryLoc{buf, 0, ino};
}

Task<Result<bool>> FileSystem::DirIsEmpty(Proc& proc, Inode& dir) {
  uint32_t nblocks = static_cast<uint32_t>((dir.d.size + kBlockSize - 1) / kBlockSize);
  for (uint32_t lbn = 0; lbn < nblocks; ++lbn) {
    co_await Charge(proc, config_.costs.dir_scan_block);
    Result<uint32_t> blk = co_await BlockMap(proc, dir, lbn, /*alloc=*/false);
    if (!blk.Ok() || blk.value() == 0) {
      continue;
    }
    BufRef buf = co_await cache_->Bread(blk.value());
    if (buf == nullptr) {
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*buf);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      if (buf->At<DirEntry>(e * kDirEntrySize)->ino != 0) {
        co_return false;
      }
    }
  }
  co_return true;
}

// ---------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------

Task<Result<uint32_t>> FileSystem::Create(Proc& proc, const std::string& path) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall + config_.costs.create);
  Result<ParentLookup> pl = co_await LookupParent(proc, path);
  if (!pl.Ok()) {
    co_return pl.status();
  }
  InodeRef parent = pl.value().parent;
  LockGuard guard = co_await LockGuard::Acquire(&parent->lock);

  Result<EntryLoc> existing = co_await FindEntry(proc, *parent, pl.value().leaf);
  if (existing.Ok()) {
    co_return FsStatus::kExists;
  }
  Result<uint32_t> ino = co_await AllocInode(proc, parent->ino);
  if (!ino.Ok()) {
    co_return ino.status();
  }

  // Build the new in-core inode over the on-disk slot (generation bumps).
  BufRef itable = co_await cache_->Bread(sb_.ItableBlock(ino.value()));
  if (itable == nullptr) {
    co_return FsStatus::kIoError;
  }
  auto ip = std::make_shared<Inode>(engine_, ino.value());
  const DiskInode* old = itable->At<DiskInode>(sb_.ItableOffset(ino.value()));
  ip->d.generation = old->generation + 1;
  ip->d.mode = static_cast<uint16_t>(FileType::kRegular);
  ip->d.nlink = 1;
  ip->d.size = 0;
  ip->d.atime = ip->d.mtime = ip->d.ctime = NowSeconds();
  ip->itable_buf = itable;
  inode_cache_[ino.value()] = ip;
  co_await MarkInodeDirty(proc, *ip);

  Result<EntryLoc> entry = co_await AddEntry(proc, *parent, pl.value().leaf, ino.value());
  if (!entry.Ok()) {
    co_return entry.status();
  }
  parent->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *parent);

  co_await policy_->SetupLinkAdd(proc, *parent, entry.value().buf, entry.value().offset, *ip,
                                 /*new_inode=*/true);
  stat_creates_->Inc();
  co_return ino.value();
}

Task<FsStatus> FileSystem::Mkdir(Proc& proc, const std::string& path) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall + config_.costs.create);
  Result<ParentLookup> pl = co_await LookupParent(proc, path);
  if (!pl.Ok()) {
    co_return pl.status();
  }
  InodeRef parent = pl.value().parent;
  LockGuard guard = co_await LockGuard::Acquire(&parent->lock);

  Result<EntryLoc> existing = co_await FindEntry(proc, *parent, pl.value().leaf);
  if (existing.Ok()) {
    co_return FsStatus::kExists;
  }
  Result<uint32_t> ino = co_await AllocInode(proc, parent->ino);
  if (!ino.Ok()) {
    co_return ino.status();
  }

  BufRef itable = co_await cache_->Bread(sb_.ItableBlock(ino.value()));
  if (itable == nullptr) {
    co_return FsStatus::kIoError;
  }
  auto ip = std::make_shared<Inode>(engine_, ino.value());
  const DiskInode* old = itable->At<DiskInode>(sb_.ItableOffset(ino.value()));
  ip->d.generation = old->generation + 1;
  ip->d.mode = static_cast<uint16_t>(FileType::kDirectory);
  ip->d.nlink = 2;  // Itself ("."), plus the parent entry.
  ip->d.size = 0;
  ip->d.spare[0] = parent->ino;  // ".." kept in the inode.
  ip->d.atime = ip->d.mtime = ip->d.ctime = NowSeconds();
  ip->itable_buf = itable;
  inode_cache_[ino.value()] = ip;
  co_await MarkInodeDirty(proc, *ip);

  parent->d.nlink++;  // New subdirectory's "..".
  parent->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *parent);

  Result<EntryLoc> entry = co_await AddEntry(proc, *parent, pl.value().leaf, ino.value());
  if (!entry.Ok()) {
    co_return entry.status();
  }
  co_await policy_->SetupLinkAdd(proc, *parent, entry.value().buf, entry.value().offset, *ip,
                                 /*new_inode=*/true);
  stat_mkdirs_->Inc();
  co_return FsStatus::kOk;
}

Task<FsStatus> FileSystem::Link(Proc& proc, const std::string& existing,
                                const std::string& link_path) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall + config_.costs.create);
  Result<uint32_t> target = co_await Lookup(proc, existing);
  if (!target.Ok()) {
    co_return target.status();
  }
  Result<ParentLookup> pl = co_await LookupParent(proc, link_path);
  if (!pl.Ok()) {
    co_return pl.status();
  }
  InodeRef parent = pl.value().parent;
  LockGuard guard = co_await LockGuard::Acquire(&parent->lock);
  Result<EntryLoc> dup = co_await FindEntry(proc, *parent, pl.value().leaf);
  if (dup.Ok()) {
    co_return FsStatus::kExists;
  }
  InodeRef ip = co_await Iget(proc, target.value());
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  if (ip->d.IsDir()) {
    co_return FsStatus::kIsDirectory;
  }
  ip->d.nlink++;
  ip->d.ctime = NowSeconds();
  co_await MarkInodeDirty(proc, *ip);
  Result<EntryLoc> entry = co_await AddEntry(proc, *parent, pl.value().leaf, ip->ino);
  if (!entry.Ok()) {
    co_return entry.status();
  }
  parent->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *parent);
  co_await policy_->SetupLinkAdd(proc, *parent, entry.value().buf, entry.value().offset, *ip,
                                 /*new_inode=*/false);
  co_return FsStatus::kOk;
}

Task<FsStatus> FileSystem::Unlink(Proc& proc, const std::string& path) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall + config_.costs.remove);
  Result<ParentLookup> pl = co_await LookupParent(proc, path);
  if (!pl.Ok()) {
    co_return pl.status();
  }
  InodeRef parent = pl.value().parent;
  LockGuard guard = co_await LockGuard::Acquire(&parent->lock);

  Result<EntryLoc> loc = co_await FindEntry(proc, *parent, pl.value().leaf);
  if (!loc.Ok()) {
    co_return loc.status();
  }
  InodeRef ip = co_await Iget(proc, loc.value().ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  if (ip->d.IsDir()) {
    co_return FsStatus::kIsDirectory;
  }

  BufRef buf = loc.value().buf;
  co_await cache_->BeginUpdate(*buf);
  DirEntry old_entry = *buf->At<DirEntry>(loc.value().offset);
  memset(buf->At<DirEntry>(loc.value().offset), 0, kDirEntrySize);
  cache_->MarkDirty(*buf);
  parent->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *parent);

  co_await policy_->SetupLinkRemove(proc, *parent, buf, loc.value().offset, old_entry,
                                    loc.value().ino, /*rename=*/nullptr);
  stat_removes_->Inc();
  co_return FsStatus::kOk;
}

Task<FsStatus> FileSystem::Rmdir(Proc& proc, const std::string& path) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall + config_.costs.remove);
  Result<ParentLookup> pl = co_await LookupParent(proc, path);
  if (!pl.Ok()) {
    co_return pl.status();
  }
  InodeRef parent = pl.value().parent;
  LockGuard guard = co_await LockGuard::Acquire(&parent->lock);

  Result<EntryLoc> loc = co_await FindEntry(proc, *parent, pl.value().leaf);
  if (!loc.Ok()) {
    co_return loc.status();
  }
  InodeRef child = co_await Iget(proc, loc.value().ino);
  if (child == nullptr) {
    co_return FsStatus::kIoError;
  }
  if (!child->d.IsDir()) {
    co_return FsStatus::kNotDirectory;
  }
  LockGuard child_guard = co_await LockGuard::Acquire(&child->lock);
  Result<bool> empty = co_await DirIsEmpty(proc, *child);
  if (!empty.Ok()) {
    co_return empty.status();
  }
  if (!empty.value()) {
    co_return FsStatus::kNotEmpty;
  }

  BufRef buf = loc.value().buf;
  co_await cache_->BeginUpdate(*buf);
  DirEntry old_entry = *buf->At<DirEntry>(loc.value().offset);
  memset(buf->At<DirEntry>(loc.value().offset), 0, kDirEntrySize);
  cache_->MarkDirty(*buf);

  parent->d.nlink--;  // The removed child's "..".
  parent->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *parent);
  // The child's own links (self + parent entry) are both dropped by
  // ReleaseLink whenever the policy allows it; decrementing here would
  // let a low link count reach disk before the cleared entry does.
  child_guard.Release();

  co_await policy_->SetupLinkRemove(proc, *parent, buf, loc.value().offset, old_entry,
                                    loc.value().ino, /*rename=*/nullptr);
  stat_rmdirs_->Inc();
  co_return FsStatus::kOk;
}

Task<FsStatus> FileSystem::Rename(Proc& proc, const std::string& from, const std::string& to) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall + config_.costs.create);
  Result<ParentLookup> from_pl = co_await LookupParent(proc, from);
  if (!from_pl.Ok()) {
    co_return from_pl.status();
  }
  Result<ParentLookup> to_pl = co_await LookupParent(proc, to);
  if (!to_pl.Ok()) {
    co_return to_pl.status();
  }
  InodeRef from_dir = from_pl.value().parent;
  InodeRef to_dir = to_pl.value().parent;

  // Lock parents in ino order to avoid deadlock.
  LockGuard g1;
  LockGuard g2;
  if (from_dir->ino == to_dir->ino) {
    g1 = co_await LockGuard::Acquire(&from_dir->lock);
  } else if (from_dir->ino < to_dir->ino) {
    g1 = co_await LockGuard::Acquire(&from_dir->lock);
    g2 = co_await LockGuard::Acquire(&to_dir->lock);
  } else {
    g2 = co_await LockGuard::Acquire(&to_dir->lock);
    g1 = co_await LockGuard::Acquire(&from_dir->lock);
  }

  Result<EntryLoc> src = co_await FindEntry(proc, *from_dir, from_pl.value().leaf);
  if (!src.Ok()) {
    co_return src.status();
  }
  Result<EntryLoc> dst = co_await FindEntry(proc, *to_dir, to_pl.value().leaf);
  if (dst.Ok()) {
    co_return FsStatus::kExists;  // Replacement is not supported.
  }
  InodeRef ip = co_await Iget(proc, src.value().ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }

  // Rule 1 discipline, mirroring BSD: bump nlink so a crash between the
  // two entry writes leaves the count >= the number of on-disk entries.
  ip->d.nlink++;
  ip->d.ctime = NowSeconds();
  co_await MarkInodeDirty(proc, *ip);

  Result<EntryLoc> added = co_await AddEntry(proc, *to_dir, to_pl.value().leaf, ip->ino);
  if (!added.Ok()) {
    ip->d.nlink--;
    co_await MarkInodeDirty(proc, *ip);
    co_return added.status();
  }
  to_dir->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *to_dir);
  co_await policy_->SetupLinkAdd(proc, *to_dir, added.value().buf, added.value().offset, *ip,
                                 /*new_inode=*/false);

  // Remove the old name. AddEntry never relocates existing entries, so
  // the location found above is still valid.
  BufRef old_buf = src.value().buf;
  co_await cache_->BeginUpdate(*old_buf);
  DirEntry old_entry = *old_buf->At<DirEntry>(src.value().offset);
  memset(old_buf->At<DirEntry>(src.value().offset), 0, kDirEntrySize);
  cache_->MarkDirty(*old_buf);
  from_dir->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *from_dir);

  // Directory moves update the parent back-pointer and link counts.
  if (ip->d.IsDir() && from_dir->ino != to_dir->ino) {
    ip->d.spare[0] = to_dir->ino;
    co_await MarkInodeDirty(proc, *ip);
    from_dir->d.nlink--;
    to_dir->d.nlink++;
    co_await MarkInodeDirty(proc, *from_dir);
    co_await MarkInodeDirty(proc, *to_dir);
  }

  OrderingPolicy::RenameContext rctx{added.value().buf, added.value().offset, ip->ino};
  co_await policy_->SetupLinkRemove(proc, *from_dir, old_buf, src.value().offset, old_entry,
                                    ip->ino, &rctx);
  stat_renames_->Inc();
  co_return FsStatus::kOk;
}

Task<Result<uint32_t>> FileSystem::Lookup(Proc& proc, const std::string& path) {
  ++proc.fs_calls;
  stat_lookups_->Inc();
  co_await Charge(proc, config_.costs.syscall);
  Result<PathParts> parts = SplitPath(path);
  if (!parts.Ok()) {
    co_return parts.status();
  }
  if (parts.value().components.empty()) {
    co_return static_cast<uint32_t>(kRootIno);
  }
  Result<ParentLookup> pl = co_await LookupParent(proc, path);
  if (!pl.Ok()) {
    co_return pl.status();
  }
  co_await Charge(proc, config_.costs.name_component);
  co_return co_await LookupIn(proc, *pl.value().parent, pl.value().leaf);
}

Task<Result<StatInfo>> FileSystem::Stat(Proc& proc, const std::string& path) {
  Result<uint32_t> ino = co_await Lookup(proc, path);
  if (!ino.Ok()) {
    co_return ino.status();
  }
  co_return co_await StatIno(proc, ino.value());
}

Task<Result<StatInfo>> FileSystem::StatIno(Proc& proc, uint32_t ino) {
  InodeRef ip = co_await Iget(proc, ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  co_return StatInfo{ip->ino, ip->d.Type(), ip->d.nlink, ip->d.size, ip->d.generation};
}

Task<Result<std::vector<DirEntryInfo>>> FileSystem::ReadDir(Proc& proc,
                                                            const std::string& path) {
  ++proc.fs_calls;
  co_await Charge(proc, config_.costs.syscall);
  Result<uint32_t> ino = co_await Lookup(proc, path);
  if (!ino.Ok()) {
    co_return ino.status();
  }
  InodeRef dir = co_await Iget(proc, ino.value());
  if (dir == nullptr) {
    co_return FsStatus::kIoError;
  }
  if (!dir->d.IsDir()) {
    co_return FsStatus::kNotDirectory;
  }
  std::vector<DirEntryInfo> out;
  uint32_t nblocks = static_cast<uint32_t>((dir->d.size + kBlockSize - 1) / kBlockSize);
  for (uint32_t lbn = 0; lbn < nblocks; ++lbn) {
    co_await Charge(proc, config_.costs.dir_scan_block);
    Result<uint32_t> blk = co_await BlockMap(proc, *dir, lbn, /*alloc=*/false);
    if (!blk.Ok() || blk.value() == 0) {
      continue;
    }
    BufRef buf = co_await cache_->Bread(blk.value());
    if (buf == nullptr) {
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginRead(*buf);
    for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
      const DirEntry* de = buf->At<DirEntry>(e * kDirEntrySize);
      if (de->ino != 0) {
        out.push_back(DirEntryInfo{de->ino, std::string(de->Name())});
      }
    }
  }
  co_return out;
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

Task<Result<uint64_t>> FileSystem::WriteFile(Proc& proc, uint32_t ino, uint64_t offset,
                                             std::span<const uint8_t> data) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  stat_writes_->Inc();
  co_await Charge(proc, config_.costs.syscall +
                            config_.costs.per_kb_io *
                                static_cast<SimDuration>((data.size() + 1023) / 1024));
  InodeRef ip = co_await Iget(proc, ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  LockGuard guard = co_await LockGuard::Acquire(&ip->lock);
  if (ip->d.IsDir()) {
    co_return FsStatus::kIsDirectory;
  }

  uint64_t written = 0;
  while (written < data.size()) {
    uint64_t pos = offset + written;
    uint32_t lbn = static_cast<uint32_t>(pos / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, data.size() - written);

    Result<uint32_t> blk = co_await BlockMap(proc, *ip, lbn, /*alloc=*/true);
    if (!blk.Ok()) {
      co_return blk.status();
    }
    bool whole_block = in_block == 0 && chunk == kBlockSize;
    bool past_eof = pos >= ip->d.size;
    // NOTE: co_await must not appear inside a conditional expression -
    // GCC 12 double-destroys the awaited temporary (toolchain bug); use
    // statement form everywhere.
    BufRef buf;
    if (whole_block || past_eof) {
      buf = co_await cache_->Bget(blk.value());
    } else {
      buf = co_await cache_->Bread(blk.value());
    }
    if (buf == nullptr) {
      co_return FsStatus::kIoError;
    }
    co_await cache_->BeginUpdate(*buf);
    memcpy(buf->data().data() + in_block, data.data() + written, chunk);
    cache_->MarkDirty(*buf);
    written += chunk;
  }
  if (offset + written > ip->d.size) {
    ip->d.size = offset + written;
  }
  ip->d.mtime = NowSeconds();
  co_await MarkInodeDirty(proc, *ip);
  co_return written;
}

Task<Result<uint64_t>> FileSystem::ReadFile(Proc& proc, uint32_t ino, uint64_t offset,
                                            std::span<uint8_t> out) {
  ++proc.fs_calls;
  stat_reads_->Inc();
  InodeRef ip = co_await Iget(proc, ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  if (ip->d.IsDir()) {
    co_return FsStatus::kIsDirectory;
  }
  if (offset >= ip->d.size) {
    co_return static_cast<uint64_t>(0);
  }
  uint64_t want = std::min<uint64_t>(out.size(), ip->d.size - offset);
  co_await Charge(proc, config_.costs.syscall +
                            config_.costs.per_kb_io *
                                static_cast<SimDuration>((want + 1023) / 1024));
  uint64_t done = 0;
  while (done < want) {
    uint64_t pos = offset + done;
    uint32_t lbn = static_cast<uint32_t>(pos / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, want - done);
    Result<uint32_t> blk = co_await BlockMap(proc, *ip, lbn, /*alloc=*/false);
    if (!blk.Ok()) {
      co_return blk.status();
    }
    if (blk.value() == 0) {
      memset(out.data() + done, 0, chunk);  // Hole.
    } else {
      BufRef buf = co_await cache_->Bread(blk.value());
      if (buf == nullptr) {
        co_return FsStatus::kIoError;
      }
      co_await cache_->BeginRead(*buf);
      memcpy(out.data() + done, buf->data().data() + in_block, chunk);
    }
    done += chunk;
  }
  co_return done;
}

Task<FsStatus> FileSystem::Truncate(Proc& proc, uint32_t ino, uint64_t new_size) {
  ++proc.fs_calls;
  co_await policy_->OpBegin(proc);
  OpGuard op(policy_);
  co_await Charge(proc, config_.costs.syscall);
  InodeRef ip = co_await Iget(proc, ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  LockGuard guard = co_await LockGuard::Acquire(&ip->lock);
  co_return co_await TruncateLocked(proc, *ip, new_size);
}

// ---------------------------------------------------------------------
// Sync
// ---------------------------------------------------------------------

Task<FsStatus> FileSystem::Fsync(Proc& proc, uint32_t ino) {
  ++proc.fs_calls;
  co_await Charge(proc, config_.costs.syscall);
  InodeRef ip = co_await Iget(proc, ino);
  if (ip == nullptr) {
    co_return FsStatus::kIoError;
  }
  co_await FlushInodeToBuffer(*ip);
  cache_->MarkDirty(*ip->itable_buf);
  co_await policy_->FlushAll(proc);
  co_return FsStatus::kOk;
}

Task<FsStatus> FileSystem::SyncEverything(Proc& proc) {
  ++proc.fs_calls;
  co_await policy_->FlushAll(proc);
  // Buffers whose final write failed terminally stay in the cache (dirty,
  // write_failed) and are excluded from flush passes; report them here so
  // callers learn the image is degraded rather than silently "clean".
  co_return io_degraded() ? FsStatus::kIoError : FsStatus::kOk;
}

}  // namespace mufs
