// Error handling for file-system operations: a status enum and a small
// Result<T> (C++23 std::expected is not yet available on our toolchain).
#ifndef MUFS_SRC_FS_RESULT_H_
#define MUFS_SRC_FS_RESULT_H_

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace mufs {

enum class FsStatus {
  kOk = 0,
  kNotFound,       // Path component does not exist.
  kExists,         // Create/mkdir target already exists.
  kNotDirectory,   // Path component is not a directory.
  kIsDirectory,    // File operation on a directory.
  kNotEmpty,       // Rmdir of a non-empty directory.
  kNoSpace,        // Out of blocks or inodes.
  kNameTooLong,    // Component longer than kMaxNameLen.
  kInvalid,        // Bad argument (offset, empty name, "." / ".." misuse).
  kBusy,           // Removing an in-use resource (e.g. rename dir into itself).
  kIoError,        // Device I/O failed terminally (retries exhausted).
};

inline std::string_view ToString(FsStatus s) {
  switch (s) {
    case FsStatus::kOk:
      return "ok";
    case FsStatus::kNotFound:
      return "not found";
    case FsStatus::kExists:
      return "already exists";
    case FsStatus::kNotDirectory:
      return "not a directory";
    case FsStatus::kIsDirectory:
      return "is a directory";
    case FsStatus::kNotEmpty:
      return "directory not empty";
    case FsStatus::kNoSpace:
      return "no space";
    case FsStatus::kNameTooLong:
      return "name too long";
    case FsStatus::kInvalid:
      return "invalid argument";
    case FsStatus::kBusy:
      return "resource busy";
    case FsStatus::kIoError:
      return "I/O error";
  }
  return "unknown";
}

// Either a value or an error status. `Ok()` must be checked before value().
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                    // NOLINT(runtime/explicit)
  Result(FsStatus status) : v_(status) { assert(status != FsStatus::kOk); }  // NOLINT

  bool Ok() const { return std::holds_alternative<T>(v_); }
  FsStatus status() const { return Ok() ? FsStatus::kOk : std::get<FsStatus>(v_); }
  T& value() {
    assert(Ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(Ok());
    return std::get<T>(v_);
  }
  T ValueOr(T fallback) const { return Ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, FsStatus> v_;
};

}  // namespace mufs

#endif  // MUFS_SRC_FS_RESULT_H_
