// Abstract file-system operation surface.
//
// Workloads and benches program against this interface so one machine
// can serve them either a single FileSystem (the paper's machine) or a
// ShardedFs (src/volume/): S per-shard FileSystems behind leaf-name
// routing on a striped multi-disk volume. Virtual dispatch costs only
// host time - simulated time is charged inside the operations - so the
// single-disk stats surface is unchanged.
#ifndef MUFS_SRC_FS_FS_INTERFACE_H_
#define MUFS_SRC_FS_FS_INTERFACE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/fs/format.h"
#include "src/fs/proc.h"
#include "src/fs/result.h"
#include "src/sim/task.h"

namespace mufs {

struct StatInfo {
  uint32_t ino = 0;
  FileType type = FileType::kFree;
  uint16_t nlink = 0;
  uint64_t size = 0;
  uint32_t generation = 0;
};

struct DirEntryInfo {
  uint32_t ino = 0;
  std::string name;
};

// Snapshot of the fs.* registry counters.
struct FsOpStats {
  uint64_t creates = 0;
  uint64_t removes = 0;
  uint64_t mkdirs = 0;
  uint64_t rmdirs = 0;
  uint64_t renames = 0;
  uint64_t lookups = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t blocks_allocated = 0;
  uint64_t blocks_freed = 0;
};

class FsInterface {
 public:
  virtual ~FsInterface() = default;

  // --- POSIX-like operations (paths are absolute, '/'-separated) -----
  // Inode numbers returned/accepted here are the machine's GLOBAL inode
  // namespace: identical to on-disk numbers for a single FileSystem,
  // shard-encoded (shard * stride + local) for a ShardedFs.
  virtual Task<Result<uint32_t>> Create(Proc& proc, const std::string& path) = 0;
  virtual Task<FsStatus> Mkdir(Proc& proc, const std::string& path) = 0;
  virtual Task<FsStatus> Unlink(Proc& proc, const std::string& path) = 0;
  virtual Task<FsStatus> Rmdir(Proc& proc, const std::string& path) = 0;
  virtual Task<FsStatus> Rename(Proc& proc, const std::string& from,
                                const std::string& to) = 0;
  virtual Task<FsStatus> Link(Proc& proc, const std::string& existing,
                              const std::string& link_path) = 0;
  virtual Task<Result<uint32_t>> Lookup(Proc& proc, const std::string& path) = 0;
  virtual Task<Result<StatInfo>> Stat(Proc& proc, const std::string& path) = 0;
  virtual Task<Result<StatInfo>> StatIno(Proc& proc, uint32_t ino) = 0;
  virtual Task<Result<std::vector<DirEntryInfo>>> ReadDir(Proc& proc,
                                                          const std::string& path) = 0;
  virtual Task<Result<uint64_t>> WriteFile(Proc& proc, uint32_t ino, uint64_t offset,
                                           std::span<const uint8_t> data) = 0;
  virtual Task<Result<uint64_t>> ReadFile(Proc& proc, uint32_t ino, uint64_t offset,
                                          std::span<uint8_t> out) = 0;
  virtual Task<FsStatus> Truncate(Proc& proc, uint32_t ino, uint64_t new_size) = 0;
  // SYNCIO: returns only when all metadata for `ino` is persistent.
  virtual Task<FsStatus> Fsync(Proc& proc, uint32_t ino) = 0;
  // Full sync: flush all inodes, run deferred work, drain the device(s).
  virtual Task<FsStatus> SyncEverything(Proc& proc) = 0;

  // --- introspection --------------------------------------------------
  virtual FsOpStats op_stats() const = 0;  // Snapshot of the fs.* counters.
  virtual bool io_degraded() const = 0;
  virtual bool AnyDirtyInode() const = 0;
  // Drops clean, unpinned in-core inodes (cold-cache simulation).
  virtual void DropCleanInodes() = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_FS_FS_INTERFACE_H_
