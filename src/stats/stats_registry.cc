#include "src/stats/stats_registry.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace mufs {

LatencyHistogram::LatencyHistogram(std::vector<SimDuration> upper_edges)
    : edges_(std::move(upper_edges)) {
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  buckets_.assign(edges_.size() + 1, 0);  // +1: overflow bucket.
}

void LatencyHistogram::Record(SimDuration d) {
  auto it = std::lower_bound(edges_.begin(), edges_.end(), d);
  ++buckets_[static_cast<size_t>(it - edges_.begin())];
  if (count_ == 0 || d < min_) {
    min_ = d;
  }
  if (count_ == 0 || d > max_) {
    max_ = d;
  }
  ++count_;
  sum_ += d;
}

const std::vector<SimDuration>& LatencyHistogram::DefaultLatencyEdges() {
  static const std::vector<SimDuration> kEdges = {
      Usec(250), Usec(500), Msec(1),   Msec(2),   Msec(4),   Msec(8),
      Msec(16),  Msec(32),  Msec(64),  Msec(128), Msec(256), Msec(512),
      Sec(1),    Sec(2),    Sec(4)};
  return kEdges;
}

Counter& StatsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& StatsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& StatsRegistry::histogram(std::string_view name,
                                           std::vector<SimDuration> edges) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (edges.empty()) {
      edges = LatencyHistogram::DefaultLatencyEdges();
    }
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>(std::move(edges)))
             .first;
  }
  return *it->second;
}

void JsonEscape(std::string_view in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonDouble(double v) {
  char buf[40];
  snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void StatsRegistry::Trace(std::string_view event, std::initializer_list<TraceField> fields) {
  if (!tracing_) {
    return;
  }
  if (trace_lines_.size() >= trace_cap_) {
    ++trace_dropped_;
    return;
  }
  std::string line = "{\"event\":\"";
  JsonEscape(event, &line);
  line += "\",\"t\":";
  line += std::to_string(clock_ ? clock_() : 0);
  for (const TraceField& f : fields) {
    line += ",\"";
    JsonEscape(f.key, &line);
    line += "\":";
    if (f.is_string) {
      line += '"';
      JsonEscape(f.str, &line);
      line += '"';
    } else {
      line += std::to_string(f.num);
    }
  }
  line += '}';
  trace_lines_.push_back(std::move(line));
}

std::string StatsRegistry::DumpJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    JsonEscape(name, &out);
    out += "\":";
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    JsonEscape(name, &out);
    out += "\":{\"value\":";
    out += std::to_string(g->value());
    out += ",\"max\":";
    out += std::to_string(g->max());
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    JsonEscape(name, &out);
    out += "\":{\"count\":";
    out += std::to_string(h->count());
    out += ",\"sum\":";
    out += std::to_string(h->sum());
    out += ",\"min\":";
    out += std::to_string(h->min());
    out += ",\"max\":";
    out += std::to_string(h->max());
    out += ",\"le\":[";
    for (size_t i = 0; i < h->edges().size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(h->edges()[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h->buckets().size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(h->buckets()[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace mufs
