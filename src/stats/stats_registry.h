// Unified observability layer: named counters, gauges, fixed-bucket
// latency histograms and an optional JSONL event trace.
//
// Every measured quantity in the paper's evaluation (synchronous-write
// counts, disk utilization, per-request response times, cache behaviour,
// soft-updates rollback activity) flows through one StatsRegistry owned
// by the Machine, instead of scattered ad-hoc Stats structs. Everything
// is deterministic: metric iteration order is lexicographic, timestamps
// come from the simulation clock (never the wall clock), and DumpJson()
// of two same-seed runs is byte-identical.
#ifndef MUFS_SRC_STATS_STATS_REGISTRY_H_
#define MUFS_SRC_STATS_STATS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace mufs {

// Monotonic event counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (queue depth, outstanding copies, ...). Also keeps
// the high-water mark, which is what most reports want.
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > max_) {
      max_ = v;
    }
  }
  void Add(int64_t d) { Set(value_ + d); }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

// Fixed-bucket latency histogram over simulated durations. A sample d
// lands in the first bucket with d <= edge; samples above the last edge
// land in the implicit overflow bucket.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<SimDuration> upper_edges);

  void Record(SimDuration d);

  uint64_t count() const { return count_; }
  SimDuration sum() const { return sum_; }
  SimDuration min() const { return min_; }
  SimDuration max() const { return max_; }
  const std::vector<SimDuration>& edges() const { return edges_; }
  // buckets()[i] counts samples <= edges()[i]; buckets().back() is the
  // overflow bucket (one more entry than edges()).
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // The default edge set used for disk latencies: roughly exponential
  // from 250 us to 4 s.
  static const std::vector<SimDuration>& DefaultLatencyEdges();

 private:
  std::vector<SimDuration> edges_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  SimDuration sum_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
};

// One key/value field of a trace record. Values are either integers
// (counts, block numbers, simulated times in ns) or short strings
// (scheme/op names).
struct TraceField {
  TraceField(std::string_view k, int64_t v) : key(k), num(v), is_string(false) {}
  TraceField(std::string_view k, uint64_t v)
      : key(k), num(static_cast<int64_t>(v)), is_string(false) {}
  TraceField(std::string_view k, uint32_t v)
      : key(k), num(static_cast<int64_t>(v)), is_string(false) {}
  TraceField(std::string_view k, int v) : key(k), num(v), is_string(false) {}
  TraceField(std::string_view k, bool v) : key(k), num(v ? 1 : 0), is_string(false) {}
  TraceField(std::string_view k, std::string_view v) : key(k), str(v), is_string(true) {}
  TraceField(std::string_view k, const char* v) : key(k), str(v), is_string(true) {}

  std::string_view key;
  int64_t num = 0;
  std::string_view str;
  bool is_string;
};

class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  // Simulation clock used to stamp trace records ("t" field). Defaults to
  // a clock that always reads 0 (standalone component tests).
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  // Named metric accessors: create-on-first-use, stable references.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Creates with the given edges on first use (DefaultLatencyEdges() if
  // empty); later calls return the existing histogram regardless of edges.
  LatencyHistogram& histogram(std::string_view name, std::vector<SimDuration> edges = {});

  // --- JSONL event trace --------------------------------------------
  // Off by default; every record costs host time and memory, so hot
  // paths guard with `if (tracing())`.
  void EnableTrace(size_t max_records = 1 << 20) {
    tracing_ = true;
    trace_cap_ = max_records;
  }
  bool tracing() const { return tracing_; }
  // Appends one JSONL record: {"event":<event>,"t":<clock()>,<fields...>}.
  void Trace(std::string_view event, std::initializer_list<TraceField> fields);
  const std::vector<std::string>& trace_lines() const { return trace_lines_; }
  uint64_t trace_records_dropped() const { return trace_dropped_; }

  // All metrics as one deterministic JSON object (keys sorted):
  // {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string DumpJson() const;

  // Number of registered metrics (tests).
  size_t MetricCount() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: deterministic lexicographic iteration for DumpJson.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
  std::function<SimTime()> clock_;
  bool tracing_ = false;
  size_t trace_cap_ = 0;
  uint64_t trace_dropped_ = 0;
  std::vector<std::string> trace_lines_;
};

// Names a metric for one instance of a replicated component. The empty
// instance is the singleton case and yields `base` unchanged, so every
// pre-multi-disk metric name stays byte-identical. A non-empty instance
// (e.g. "disk0") replaces the leading "disk." component of device
// metrics ("disk.busy_ns" -> "disk0.busy_ns") and prefixes everything
// else ("driver.retries" -> "disk0.driver.retries").
inline std::string InstanceMetricName(std::string_view instance, std::string_view base) {
  if (instance.empty()) {
    return std::string(base);
  }
  std::string out(instance);
  if (base.rfind("disk.", 0) == 0) {
    out += base.substr(4);  // Keep the ".rest" after "disk".
  } else {
    out += '.';
    out += base;
  }
  return out;
}

// Escapes a string for inclusion in a JSON value (quotes not included).
void JsonEscape(std::string_view in, std::string* out);

// Formats a double deterministically for JSON ("%.9g").
std::string JsonDouble(double v);

}  // namespace mufs

#endif  // MUFS_SRC_STATS_STATS_REGISTRY_H_
