#include "src/workload/tree_gen.h"

#include <algorithm>
#include <cassert>

namespace mufs {

TreeSpec GenerateTree(const TreeGenOptions& options) {
  Rng rng(options.seed);
  TreeSpec tree;

  // Directory skeleton: a root-level spread with nested clusters, like a
  // home directory full of projects.
  std::vector<std::string> dir_paths;
  std::vector<uint32_t> dir_depths;
  for (uint32_t d = 0; d < options.dir_count; ++d) {
    if (d < 6 || dir_paths.empty()) {
      dir_paths.push_back("dir" + std::to_string(d));
      dir_depths.push_back(1);
    } else {
      // Attach under a random existing directory not too deep.
      for (int tries = 0; tries < 8; ++tries) {
        size_t parent = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                                  dir_paths.size()) - 1));
        if (dir_depths[parent] < options.max_depth) {
          dir_paths.push_back(dir_paths[parent] + "/sub" + std::to_string(d));
          dir_depths.push_back(dir_depths[parent] + 1);
          break;
        }
      }
    }
  }
  tree.directories = dir_paths;

  // File sizes: source trees are mostly small files with a long tail.
  // Draw from a discrete mixture, then rescale to hit total_bytes exactly.
  std::vector<uint64_t> sizes(options.file_count);
  uint64_t sum = 0;
  for (auto& s : sizes) {
    double r = rng.UniformDouble();
    if (r < 0.55) {
      s = 200 + rng.Next() % 3800;  // Small sources: 0.2-4 KB.
    } else if (r < 0.85) {
      s = 4096 + rng.Next() % 28672;  // Medium: 4-32 KB.
    } else if (r < 0.97) {
      s = 32768 + rng.Next() % 98304;  // Large: 32-128 KB.
    } else {
      s = 131072 + rng.Next() % 262144;  // Tail: 128-384 KB.
    }
    sum += s;
  }
  // Rescale proportionally, then distribute the rounding remainder.
  uint64_t scaled_sum = 0;
  for (auto& s : sizes) {
    s = std::max<uint64_t>(1, s * options.total_bytes / sum);
    scaled_sum += s;
  }
  if (scaled_sum < options.total_bytes) {
    sizes[0] += options.total_bytes - scaled_sum;
  } else if (scaled_sum > options.total_bytes) {
    uint64_t excess = scaled_sum - options.total_bytes;
    for (auto& s : sizes) {
      uint64_t cut = std::min(excess, s > 1 ? s - 1 : 0);
      s -= cut;
      excess -= cut;
      if (excess == 0) {
        break;
      }
    }
  }

  // Scatter files over directories (and a few at the top level).
  tree.files.reserve(options.file_count);
  for (uint32_t i = 0; i < options.file_count; ++i) {
    std::string dir;
    if (rng.UniformDouble() < 0.08 || dir_paths.empty()) {
      dir = "";
    } else {
      dir = dir_paths[static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(dir_paths.size()) - 1))] +
            "/";
    }
    tree.files.push_back({dir + "file" + std::to_string(i), sizes[i]});
  }
  assert(tree.TotalBytes() == options.total_bytes);
  return tree;
}

}  // namespace mufs
