// The paper's workloads, reusable by benchmarks, examples and tests:
//
//   - N-user copy / remove of the 535-file source tree (section 2);
//   - 1 KB file create / remove / create+remove throughput (figure 5);
//   - the Andrew benchmark's five phases (table 3);
//   - an Sdet-like software-development script mix (figure 6).
//
// All file data is written with fsck-verifiable tags (TagDataBlock), so
// any of these workloads can double as a crash-consistency workload.
#ifndef MUFS_SRC_WORKLOAD_WORKLOADS_H_
#define MUFS_SRC_WORKLOAD_WORKLOADS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/workload/tree_gen.h"

namespace mufs {

// Writes `bytes` of tagged data to an (already created) file. Every 4 KB
// block begins with a DataBlockTag{ino, generation} header.
Task<FsStatus> WriteTagged(Machine& m, Proc& proc, uint32_t ino, uint64_t bytes);

// Creates the tree (directories + files with tagged data) under
// `root` (e.g. "/src"). Creates `root` itself.
Task<FsStatus> PopulateTree(Machine& m, Proc& proc, const TreeSpec& tree,
                            const std::string& root);

// Recursive copy: reads every file under src_root, creates and writes the
// equivalent under dst_root (the N-user copy benchmark body).
Task<FsStatus> CopyTree(Machine& m, Proc& proc, const TreeSpec& tree,
                        const std::string& src_root, const std::string& dst_root);

// Return-latency accounting for metadata MUTATIONS (create, unlink,
// mkdir, rmdir, rename): the time from op issue to op return, which is
// the contract the ordering schemes actually differ on (a scheme with
// decoupled visibility/durability returns at cache speed; a synchronous
// or commit-gated scheme blocks the caller). Reads and data writes are
// not counted.
struct MetaOpLatency {
  uint64_t ops = 0;
  SimDuration total = 0;
  double AvgMs() const {
    return ops > 0 ? ToSeconds(total) * 1000.0 / static_cast<double>(ops) : 0;
  }
};

// Recursive remove of a populated tree (the N-user remove benchmark body).
// `lat`, when set, accumulates the return latency of each Unlink/Rmdir.
Task<FsStatus> RemoveTree(Machine& m, Proc& proc, const TreeSpec& tree,
                          const std::string& root, MetaOpLatency* lat = nullptr);

// Figure 5 bodies: `count` 1 KB files in `dir` (which must exist).
Task<FsStatus> CreateFiles(Machine& m, Proc& proc, const std::string& dir, int count,
                           uint64_t file_bytes = 1024);
Task<FsStatus> RemoveFiles(Machine& m, Proc& proc, const std::string& dir, int count);
Task<FsStatus> CreateRemoveFiles(Machine& m, Proc& proc, const std::string& dir, int count,
                                 uint64_t file_bytes = 1024);

// Andrew benchmark (table 3). Phases operate on a pre-populated source
// tree; phase timings are returned in seconds of simulated time.
struct AndrewTimes {
  double make_dir = 0;   // (1) create directory tree
  double copy = 0;       // (2) copy files
  double scan_dir = 0;   // (3) stat every file
  double read_all = 0;   // (4) read every byte
  double compile = 0;    // (5) compile
  double Total() const { return make_dir + copy + scan_dir + read_all + compile; }
};
Task<AndrewTimes> AndrewBenchmark(Machine& m, Proc& proc, const TreeSpec& tree,
                                  const std::string& src_root, const std::string& work_root);

// One Sdet-like script: a randomized mix of software-development
// operations in the script's private directory. `lat`, when set,
// accumulates the return latency of the metadata mutations in the mix.
Task<FsStatus> SdetScript(Machine& m, Proc& proc, const std::string& dir, uint64_t seed,
                          int operations = 200, MetaOpLatency* lat = nullptr);

// ---------------------------------------------------------------------
// Workload personalities (adversarial fault / crash matrix)
// ---------------------------------------------------------------------
//
// Self-contained "personalities" concentrating on the metadata shapes
// the ordering schemes disagree about. Each creates its own `root`,
// performs a seeded op mix, and (optionally) reports the exact mix it
// executed. The mix is a pure function of the seed - two runs with the
// same seed perform the identical op sequence, so tests can pin
// determinism and benchmarks can report per-op rates. Individual op
// failures (e.g. under fault injection) are tolerated and skipped, like
// SdetScript; only a failed setup aborts the personality.

struct PersonalityOpMix {
  uint64_t creates = 0;  // Create calls that succeeded.
  uint64_t appends = 0;  // Data writes into already-existing files.
  uint64_t unlinks = 0;
  uint64_t stats = 0;    // Stat + ReadDir scans.
  uint64_t renames = 0;
  uint64_t mkdirs = 0;
  uint64_t rmdirs = 0;
  uint64_t reads = 0;    // Whole-file data reads.
  uint64_t Total() const {
    return creates + appends + unlinks + stats + renames + mkdirs + rmdirs + reads;
  }
  bool operator==(const PersonalityOpMix&) const = default;
};

// Mail server (maildir): deliveries create small messages in tmp/ and
// rename them into new/; readers move them to cur/ and re-read them;
// expunges unlink; deliveries also append to a growing log file. Small-
// file create/append/rename/unlink churn.
Task<FsStatus> MailServerWorkload(Machine& m, Proc& proc, const std::string& root,
                                  uint64_t seed, int operations = 200,
                                  PersonalityOpMix* mix = nullptr);

// Build farm: a deep source tree scanned by make-style dependency
// checks (stat storms down deep paths), with bursts of compiles
// (object creates), incremental edits and clean passes.
Task<FsStatus> BuildFarmWorkload(Machine& m, Proc& proc, const std::string& root,
                                 uint64_t seed, int operations = 200,
                                 PersonalityOpMix* mix = nullptr);

// Web-asset swap: a live asset directory updated by staging the new
// version of an asset and swapping it in. Rename does not replace, so
// a swap is unlink(live) + rename(staged, live) - rename-heavy, with
// reader traffic interleaved.
Task<FsStatus> WebAssetSwapWorkload(Machine& m, Proc& proc, const std::string& root,
                                    uint64_t seed, int operations = 200,
                                    PersonalityOpMix* mix = nullptr);

// Cache-backing cleanup, modeled on mcachefs's cleanup-backing loop:
// fill a backing tree with cached files, then walk it collecting sizes,
// sort victims deterministically (largest first) and unlink until a
// byte budget is freed, removing directories that emptied. Fill and
// cleanup passes alternate until the op budget is spent.
Task<FsStatus> CacheCleanupWorkload(Machine& m, Proc& proc, const std::string& root,
                                    uint64_t seed, int operations = 200,
                                    PersonalityOpMix* mix = nullptr);

// ---------------------------------------------------------------------
// Multi-user runner + measurement
// ---------------------------------------------------------------------

struct UserStats {
  SimDuration elapsed = 0;
  SimDuration cpu = 0;
  SimDuration io_wait = 0;
};

struct RunMeasurement {
  std::vector<UserStats> users;
  SimDuration wall = 0;            // Setup-to-last-finisher.
  uint64_t disk_requests = 0;      // Device requests during the timed phase.
  double avg_response_ms = 0;      // Driver response (queue + access).
  double avg_access_ms = 0;        // Disk access time only.
  double cpu_seconds_total = 0;    // All users, timed phase.
  std::string stats_json;          // Machine::DumpStatsJson() at run end.

  double ElapsedAvgSeconds() const {
    if (users.empty()) {
      return 0;
    }
    double sum = 0;
    for (const auto& u : users) {
      sum += ToSeconds(u.elapsed);
    }
    return sum / static_cast<double>(users.size());
  }
};

// Runs `setup` (untimed), optionally drops clean caches, then runs
// `user_body` for each of `num_users` concurrently (timed) and collects
// the paper's statistics.
using SetupFn = std::function<Task<void>(Machine&, Proc&)>;
using UserFn = std::function<Task<void>(Machine&, Proc&, int)>;
RunMeasurement RunMultiUser(Machine& m, int num_users, const SetupFn& setup,
                            const UserFn& user_body, bool drop_caches_after_setup = true);

}  // namespace mufs

#endif  // MUFS_SRC_WORKLOAD_WORKLOADS_H_
