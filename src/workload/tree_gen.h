// Synthetic source-tree generator.
//
// The paper's copy/remove benchmarks operate on a snapshot of the first
// author's home directory: 535 files totalling 14.3 MB. We cannot have
// that tree, so we generate a deterministic synthetic one with the same
// file count, total size and a plausible source-tree shape (nested
// directories, mostly-small files with a long tail). Benchmarks depend
// only on these aggregates.
#ifndef MUFS_SRC_WORKLOAD_TREE_GEN_H_
#define MUFS_SRC_WORKLOAD_TREE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.h"

namespace mufs {

struct TreeSpec {
  // Directories, in creation order (parents before children). Paths are
  // relative, '/'-separated, without leading slash.
  std::vector<std::string> directories;
  struct File {
    std::string path;  // Relative path.
    uint64_t size;
  };
  std::vector<File> files;

  uint64_t TotalBytes() const {
    uint64_t t = 0;
    for (const auto& f : files) {
      t += f.size;
    }
    return t;
  }
};

struct TreeGenOptions {
  uint32_t file_count = 535;
  uint64_t total_bytes = 14'300'000;  // 14.3 MB.
  uint32_t dir_count = 36;
  uint32_t max_depth = 4;
  uint64_t seed = 1994;
};

// Generates a deterministic tree matching the options: exactly
// `file_count` files whose sizes sum to exactly `total_bytes`.
TreeSpec GenerateTree(const TreeGenOptions& options = {});

}  // namespace mufs

#endif  // MUFS_SRC_WORKLOAD_TREE_GEN_H_
