#include "src/workload/workloads.h"

#include <algorithm>

#include "src/fsck/fsck.h"

namespace mufs {

namespace {

// Builds `bytes` of data where every 4 KB block starts with the fsck tag.
std::vector<uint8_t> MakeTaggedData(uint32_t ino, uint32_t generation, uint64_t bytes) {
  std::vector<uint8_t> data(bytes, 0x6d);
  for (uint64_t off = 0; off < bytes; off += kBlockSize) {
    if (bytes - off >= sizeof(DataBlockTag)) {
      TagDataBlock(data.data() + off, ino, generation);
    }
  }
  return data;
}

std::string JoinPath(const std::string& root, const std::string& rel) {
  return rel.empty() ? root : root + "/" + rel;
}

}  // namespace

Task<FsStatus> WriteTagged(Machine& m, Proc& proc, uint32_t ino, uint64_t bytes) {
  Result<StatInfo> st = co_await m.fs().StatIno(proc, ino);
  if (!st.Ok()) {
    co_return st.status();
  }
  std::vector<uint8_t> data = MakeTaggedData(ino, st.value().generation, bytes);
  Result<uint64_t> w = co_await m.fs().WriteFile(proc, ino, 0, data);
  co_return w.Ok() ? FsStatus::kOk : w.status();
}

Task<FsStatus> PopulateTree(Machine& m, Proc& proc, const TreeSpec& tree,
                            const std::string& root) {
  FsStatus s = co_await m.fs().Mkdir(proc, root);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  for (const auto& dir : tree.directories) {
    s = co_await m.fs().Mkdir(proc, JoinPath(root, dir));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  for (const auto& f : tree.files) {
    Result<uint32_t> ino = co_await m.fs().Create(proc, JoinPath(root, f.path));
    if (!ino.Ok()) {
      co_return ino.status();
    }
    s = co_await WriteTagged(m, proc, ino.value(), f.size);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> CopyTree(Machine& m, Proc& proc, const TreeSpec& tree,
                        const std::string& src_root, const std::string& dst_root) {
  FsStatus s = co_await m.fs().Mkdir(proc, dst_root);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  for (const auto& dir : tree.directories) {
    s = co_await m.fs().Mkdir(proc, JoinPath(dst_root, dir));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  std::vector<uint8_t> buffer;
  for (const auto& f : tree.files) {
    // Read the source file in full (cold reads hit the disk).
    Result<uint32_t> src = co_await m.fs().Lookup(proc, JoinPath(src_root, f.path));
    if (!src.Ok()) {
      co_return src.status();
    }
    buffer.resize(f.size);
    Result<uint64_t> r = co_await m.fs().ReadFile(proc, src.value(), 0, buffer);
    if (!r.Ok()) {
      co_return r.status();
    }
    Result<uint32_t> dst = co_await m.fs().Create(proc, JoinPath(dst_root, f.path));
    if (!dst.Ok()) {
      co_return dst.status();
    }
    s = co_await WriteTagged(m, proc, dst.value(), f.size);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> RemoveTree(Machine& m, Proc& proc, const TreeSpec& tree,
                          const std::string& root) {
  for (const auto& f : tree.files) {
    FsStatus s = co_await m.fs().Unlink(proc, JoinPath(root, f.path));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  // Children were appended after parents; remove in reverse order.
  for (auto it = tree.directories.rbegin(); it != tree.directories.rend(); ++it) {
    FsStatus s = co_await m.fs().Rmdir(proc, JoinPath(root, *it));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return co_await m.fs().Rmdir(proc, root);
}

Task<FsStatus> CreateFiles(Machine& m, Proc& proc, const std::string& dir, int count,
                           uint64_t file_bytes) {
  for (int i = 0; i < count; ++i) {
    Result<uint32_t> ino = co_await m.fs().Create(proc, dir + "/c" + std::to_string(i));
    if (!ino.Ok()) {
      co_return ino.status();
    }
    FsStatus s = co_await WriteTagged(m, proc, ino.value(), file_bytes);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> RemoveFiles(Machine& m, Proc& proc, const std::string& dir, int count) {
  for (int i = 0; i < count; ++i) {
    FsStatus s = co_await m.fs().Unlink(proc, dir + "/c" + std::to_string(i));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> CreateRemoveFiles(Machine& m, Proc& proc, const std::string& dir, int count,
                                 uint64_t file_bytes) {
  for (int i = 0; i < count; ++i) {
    std::string path = dir + "/cr" + std::to_string(i);
    Result<uint32_t> ino = co_await m.fs().Create(proc, path);
    if (!ino.Ok()) {
      co_return ino.status();
    }
    FsStatus s = co_await WriteTagged(m, proc, ino.value(), file_bytes);
    if (s != FsStatus::kOk) {
      co_return s;
    }
    s = co_await m.fs().Unlink(proc, path);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

// ---------------------------------------------------------------------
// Andrew
// ---------------------------------------------------------------------

Task<AndrewTimes> AndrewBenchmark(Machine& m, Proc& proc, const TreeSpec& tree,
                                  const std::string& src_root, const std::string& work_root) {
  AndrewTimes times;
  SimTime t0 = m.engine().Now();

  // Phase 1: make the directory tree.
  FsStatus s = co_await m.fs().Mkdir(proc, work_root);
  (void)s;
  for (const auto& dir : tree.directories) {
    co_await m.fs().Mkdir(proc, JoinPath(work_root, dir));
  }
  SimTime t1 = m.engine().Now();
  times.make_dir = ToSeconds(t1 - t0);

  // Phase 2: copy the data files.
  std::vector<uint8_t> buffer;
  for (const auto& f : tree.files) {
    Result<uint32_t> src = co_await m.fs().Lookup(proc, JoinPath(src_root, f.path));
    if (!src.Ok()) {
      continue;
    }
    buffer.resize(f.size);
    (void)co_await m.fs().ReadFile(proc, src.value(), 0, buffer);
    Result<uint32_t> dst = co_await m.fs().Create(proc, JoinPath(work_root, f.path));
    if (dst.Ok()) {
      co_await WriteTagged(m, proc, dst.value(), f.size);
    }
  }
  SimTime t2 = m.engine().Now();
  times.copy = ToSeconds(t2 - t1);

  // Phase 3: examine the status of every file.
  for (const auto& f : tree.files) {
    (void)co_await m.fs().Stat(proc, JoinPath(work_root, f.path));
  }
  SimTime t3 = m.engine().Now();
  times.scan_dir = ToSeconds(t3 - t2);

  // Phase 4: read every byte of every file.
  for (const auto& f : tree.files) {
    Result<uint32_t> ino = co_await m.fs().Lookup(proc, JoinPath(work_root, f.path));
    if (!ino.Ok()) {
      continue;
    }
    buffer.resize(f.size);
    (void)co_await m.fs().ReadFile(proc, ino.value(), 0, buffer);
  }
  SimTime t4 = m.engine().Now();
  times.read_all = ToSeconds(t4 - t3);

  // Phase 5: compile. CPU-dominated on a 33 MHz i486 ("aggressive,
  // time-consuming compilation techniques and a slow CPU"): each source
  // is read, crunched, and an object is written; a final link writes one
  // large output.
  uint64_t linked_bytes = 0;
  size_t compile_count = 0;
  for (const auto& f : tree.files) {
    if (compile_count >= tree.files.size() / 2) {
      break;
    }
    ++compile_count;
    Result<uint32_t> ino = co_await m.fs().Lookup(proc, JoinPath(work_root, f.path));
    if (!ino.Ok()) {
      continue;
    }
    buffer.resize(f.size);
    (void)co_await m.fs().ReadFile(proc, ino.value(), 0, buffer);
    co_await m.cpu().Consume(proc.pid, Sec(7));  // The compiler itself.
    Result<uint32_t> obj =
        co_await m.fs().Create(proc, JoinPath(work_root, f.path) + ".o");
    if (obj.Ok()) {
      co_await WriteTagged(m, proc, obj.value(), f.size);
      linked_bytes += f.size;
    }
  }
  co_await m.cpu().Consume(proc.pid, Sec(5));  // Link.
  Result<uint32_t> out = co_await m.fs().Create(proc, work_root + "/a.out");
  if (out.Ok()) {
    co_await WriteTagged(m, proc, out.value(), std::max<uint64_t>(linked_bytes / 2, kBlockSize));
  }
  times.compile = ToSeconds(m.engine().Now() - t4);
  co_return times;
}

// ---------------------------------------------------------------------
// Sdet
// ---------------------------------------------------------------------

Task<FsStatus> SdetScript(Machine& m, Proc& proc, const std::string& dir, uint64_t seed,
                          int operations) {
  Rng rng(seed);
  FsStatus s = co_await m.fs().Mkdir(proc, dir);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  std::vector<std::string> files;
  std::vector<std::string> subdirs;
  int name_counter = 0;

  for (int op = 0; op < operations; ++op) {
    double r = rng.UniformDouble();
    if (r < 0.18 || files.empty()) {
      // Create a small file (an "edit session" output).
      std::string path = dir + "/f" + std::to_string(name_counter++);
      Result<uint32_t> ino = co_await m.fs().Create(proc, path);
      if (ino.Ok()) {
        co_await WriteTagged(m, proc, ino.value(), 512 + rng.Next() % 8192);
        files.push_back(path);
      }
    } else if (r < 0.38) {
      // Read a file.
      const std::string& path = files[rng.Next() % files.size()];
      Result<uint32_t> ino = co_await m.fs().Lookup(proc, path);
      if (ino.Ok()) {
        std::vector<uint8_t> buf(8192);
        (void)co_await m.fs().ReadFile(proc, ino.value(), 0, buf);
      }
    } else if (r < 0.53) {
      // Edit: read then rewrite.
      const std::string& path = files[rng.Next() % files.size()];
      Result<uint32_t> ino = co_await m.fs().Lookup(proc, path);
      if (ino.Ok()) {
        co_await m.cpu().Consume(proc.pid, Msec(15));  // The editor.
        co_await WriteTagged(m, proc, ino.value(), 512 + rng.Next() % 8192);
      }
    } else if (r < 0.63) {
      // Delete.
      size_t idx = rng.Next() % files.size();
      if ((co_await m.fs().Unlink(proc, files[idx])) == FsStatus::kOk) {
        files.erase(files.begin() + static_cast<ptrdiff_t>(idx));
      }
    } else if (r < 0.71) {
      // Stat / ls.
      (void)co_await m.fs().ReadDir(proc, dir);
    } else if (r < 0.76) {
      // Mkdir.
      std::string sub = dir + "/sub" + std::to_string(name_counter++);
      if ((co_await m.fs().Mkdir(proc, sub)) == FsStatus::kOk) {
        subdirs.push_back(sub);
      }
    } else if (r < 0.80 && !subdirs.empty()) {
      // Rmdir (may fail if non-empty; that is fine).
      size_t idx = rng.Next() % subdirs.size();
      if ((co_await m.fs().Rmdir(proc, subdirs[idx])) == FsStatus::kOk) {
        subdirs.erase(subdirs.begin() + static_cast<ptrdiff_t>(idx));
      }
    } else if (r < 0.86) {
      // Rename.
      size_t idx = rng.Next() % files.size();
      std::string to = dir + "/r" + std::to_string(name_counter++);
      if ((co_await m.fs().Rename(proc, files[idx], to)) == FsStatus::kOk) {
        files[idx] = to;
      }
    } else {
      // Compile: read a file, crunch, write an object.
      const std::string& path = files[rng.Next() % files.size()];
      Result<uint32_t> ino = co_await m.fs().Lookup(proc, path);
      if (ino.Ok()) {
        std::vector<uint8_t> buf(8192);
        (void)co_await m.fs().ReadFile(proc, ino.value(), 0, buf);
        co_await m.cpu().Consume(proc.pid, Msec(80));
        std::string obj = dir + "/o" + std::to_string(name_counter++);
        Result<uint32_t> oino = co_await m.fs().Create(proc, obj);
        if (oino.Ok()) {
          co_await WriteTagged(m, proc, oino.value(), 2048 + rng.Next() % 16384);
          files.push_back(obj);
        }
      }
    }
  }
  co_return FsStatus::kOk;
}

// ---------------------------------------------------------------------
// Multi-user runner
// ---------------------------------------------------------------------

namespace {

struct RunnerState {
  bool setup_done = false;
  int users_finished = 0;
  std::vector<SimTime> user_start;
  std::vector<SimTime> user_end;
};

Task<void> SetupRoot(Machine* m, Proc* proc, const SetupFn* setup, RunnerState* st) {
  co_await m->Boot(*proc);
  if (*setup) {
    co_await (*setup)(*m, *proc);
  }
  // Flush the setup's dirt so the timed phase starts from a stable disk.
  co_await m->fs().SyncEverything(*proc);
  st->setup_done = true;
}

Task<void> UserRoot(Machine* m, Proc* proc, const UserFn* body, int index, RunnerState* st) {
  st->user_start[static_cast<size_t>(index)] = m->engine().Now();
  co_await (*body)(*m, *proc, index);
  st->user_end[static_cast<size_t>(index)] = m->engine().Now();
  st->users_finished++;
}

}  // namespace

RunMeasurement RunMultiUser(Machine& m, int num_users, const SetupFn& setup,
                            const UserFn& user_body, bool drop_caches_after_setup) {
  RunnerState st;
  st.user_start.resize(static_cast<size_t>(num_users));
  st.user_end.resize(static_cast<size_t>(num_users));

  Proc setup_proc = m.MakeProc("setup");
  m.engine().Spawn(SetupRoot(&m, &setup_proc, &setup, &st), "setup");
  m.engine().RunUntil([&] { return st.setup_done; });

  if (drop_caches_after_setup) {
    m.fs().DropCleanInodes();
    m.cache().DropClean();
  }

  std::vector<Proc> procs;
  procs.reserve(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    procs.push_back(m.MakeProc("user" + std::to_string(u)));
  }
  std::vector<SimDuration> cpu0(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    cpu0[static_cast<size_t>(u)] = m.cpu().Charged(procs[static_cast<size_t>(u)].pid);
  }
  uint64_t req0 = m.driver().TotalRequests();
  size_t trace0 = m.driver().Traces().size();
  SimTime t0 = m.engine().Now();

  for (int u = 0; u < num_users; ++u) {
    m.engine().Spawn(UserRoot(&m, &procs[static_cast<size_t>(u)], &user_body, u, &st),
                     procs[static_cast<size_t>(u)].name);
  }
  m.engine().RunUntil([&] { return st.users_finished == num_users; });
  SimTime t_users_done = m.engine().Now();

  // Let background flushing quiesce (bounded) so system-wide I/O counts
  // cover the whole benchmark, like the paper's system-wide statistics.
  SimTime deadline = t_users_done + Sec(90);
  m.engine().RunUntil([&] {
    bool quiet = m.driver().PendingCount() == 0 && m.cache().DirtyCount() == 0 &&
                 !m.fs().AnyDirtyInode() && m.syncer().PendingWork() == 0;
    return quiet || m.engine().Now() >= deadline;
  });

  RunMeasurement out;
  out.users.resize(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    auto& us = out.users[static_cast<size_t>(u)];
    us.elapsed = st.user_end[static_cast<size_t>(u)] - st.user_start[static_cast<size_t>(u)];
    us.cpu = m.cpu().Charged(procs[static_cast<size_t>(u)].pid) - cpu0[static_cast<size_t>(u)];
    us.io_wait = procs[static_cast<size_t>(u)].io_wait;
    out.cpu_seconds_total += ToSeconds(us.cpu);
  }
  out.wall = t_users_done - t0;
  out.disk_requests = m.driver().TotalRequests() - req0;
  const auto& traces = m.driver().Traces();
  double resp = 0;
  double access = 0;
  size_t n = 0;
  for (size_t i = trace0; i < traces.size(); ++i) {
    resp += ToMs(traces[i].ResponseTime());
    access += ToMs(traces[i].AccessTime());
    ++n;
  }
  if (n > 0) {
    out.avg_response_ms = resp / static_cast<double>(n);
    out.avg_access_ms = access / static_cast<double>(n);
  }
  out.stats_json = m.DumpStatsJson();
  return out;
}

}  // namespace mufs
