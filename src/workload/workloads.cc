#include "src/workload/workloads.h"

#include <algorithm>

#include "src/fsck/fsck.h"

namespace mufs {

namespace {

// Builds `bytes` of data where every 4 KB block starts with the fsck tag.
std::vector<uint8_t> MakeTaggedData(uint32_t ino, uint32_t generation, uint64_t bytes) {
  std::vector<uint8_t> data(bytes, 0x6d);
  for (uint64_t off = 0; off < bytes; off += kBlockSize) {
    if (bytes - off >= sizeof(DataBlockTag)) {
      TagDataBlock(data.data() + off, ino, generation);
    }
  }
  return data;
}

std::string JoinPath(const std::string& root, const std::string& rel) {
  return rel.empty() ? root : root + "/" + rel;
}

}  // namespace

Task<FsStatus> WriteTagged(Machine& m, Proc& proc, uint32_t ino, uint64_t bytes) {
  Result<StatInfo> st = co_await m.vfs().StatIno(proc, ino);
  if (!st.Ok()) {
    co_return st.status();
  }
  std::vector<uint8_t> data = MakeTaggedData(ino, st.value().generation, bytes);
  Result<uint64_t> w = co_await m.vfs().WriteFile(proc, ino, 0, data);
  co_return w.Ok() ? FsStatus::kOk : w.status();
}

Task<FsStatus> PopulateTree(Machine& m, Proc& proc, const TreeSpec& tree,
                            const std::string& root) {
  FsStatus s = co_await m.vfs().Mkdir(proc, root);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  for (const auto& dir : tree.directories) {
    s = co_await m.vfs().Mkdir(proc, JoinPath(root, dir));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  for (const auto& f : tree.files) {
    Result<uint32_t> ino = co_await m.vfs().Create(proc, JoinPath(root, f.path));
    if (!ino.Ok()) {
      co_return ino.status();
    }
    s = co_await WriteTagged(m, proc, ino.value(), f.size);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> CopyTree(Machine& m, Proc& proc, const TreeSpec& tree,
                        const std::string& src_root, const std::string& dst_root) {
  FsStatus s = co_await m.vfs().Mkdir(proc, dst_root);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  for (const auto& dir : tree.directories) {
    s = co_await m.vfs().Mkdir(proc, JoinPath(dst_root, dir));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  std::vector<uint8_t> buffer;
  for (const auto& f : tree.files) {
    // Read the source file in full (cold reads hit the disk).
    Result<uint32_t> src = co_await m.vfs().Lookup(proc, JoinPath(src_root, f.path));
    if (!src.Ok()) {
      co_return src.status();
    }
    buffer.resize(f.size);
    Result<uint64_t> r = co_await m.vfs().ReadFile(proc, src.value(), 0, buffer);
    if (!r.Ok()) {
      co_return r.status();
    }
    Result<uint32_t> dst = co_await m.vfs().Create(proc, JoinPath(dst_root, f.path));
    if (!dst.Ok()) {
      co_return dst.status();
    }
    s = co_await WriteTagged(m, proc, dst.value(), f.size);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> RemoveTree(Machine& m, Proc& proc, const TreeSpec& tree,
                          const std::string& root, MetaOpLatency* lat) {
  for (const auto& f : tree.files) {
    SimTime t0 = m.engine().Now();
    FsStatus s = co_await m.vfs().Unlink(proc, JoinPath(root, f.path));
    if (lat != nullptr) {
      ++lat->ops;
      lat->total += m.engine().Now() - t0;
    }
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  // Children were appended after parents; remove in reverse order.
  for (auto it = tree.directories.rbegin(); it != tree.directories.rend(); ++it) {
    SimTime t0 = m.engine().Now();
    FsStatus s = co_await m.vfs().Rmdir(proc, JoinPath(root, *it));
    if (lat != nullptr) {
      ++lat->ops;
      lat->total += m.engine().Now() - t0;
    }
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return co_await m.vfs().Rmdir(proc, root);
}

Task<FsStatus> CreateFiles(Machine& m, Proc& proc, const std::string& dir, int count,
                           uint64_t file_bytes) {
  for (int i = 0; i < count; ++i) {
    Result<uint32_t> ino = co_await m.vfs().Create(proc, dir + "/c" + std::to_string(i));
    if (!ino.Ok()) {
      co_return ino.status();
    }
    FsStatus s = co_await WriteTagged(m, proc, ino.value(), file_bytes);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> RemoveFiles(Machine& m, Proc& proc, const std::string& dir, int count) {
  for (int i = 0; i < count; ++i) {
    FsStatus s = co_await m.vfs().Unlink(proc, dir + "/c" + std::to_string(i));
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> CreateRemoveFiles(Machine& m, Proc& proc, const std::string& dir, int count,
                                 uint64_t file_bytes) {
  for (int i = 0; i < count; ++i) {
    std::string path = dir + "/cr" + std::to_string(i);
    Result<uint32_t> ino = co_await m.vfs().Create(proc, path);
    if (!ino.Ok()) {
      co_return ino.status();
    }
    FsStatus s = co_await WriteTagged(m, proc, ino.value(), file_bytes);
    if (s != FsStatus::kOk) {
      co_return s;
    }
    s = co_await m.vfs().Unlink(proc, path);
    if (s != FsStatus::kOk) {
      co_return s;
    }
  }
  co_return FsStatus::kOk;
}

// ---------------------------------------------------------------------
// Andrew
// ---------------------------------------------------------------------

Task<AndrewTimes> AndrewBenchmark(Machine& m, Proc& proc, const TreeSpec& tree,
                                  const std::string& src_root, const std::string& work_root) {
  AndrewTimes times;
  SimTime t0 = m.engine().Now();

  // Phase 1: make the directory tree.
  FsStatus s = co_await m.vfs().Mkdir(proc, work_root);
  (void)s;
  for (const auto& dir : tree.directories) {
    co_await m.vfs().Mkdir(proc, JoinPath(work_root, dir));
  }
  SimTime t1 = m.engine().Now();
  times.make_dir = ToSeconds(t1 - t0);

  // Phase 2: copy the data files.
  std::vector<uint8_t> buffer;
  for (const auto& f : tree.files) {
    Result<uint32_t> src = co_await m.vfs().Lookup(proc, JoinPath(src_root, f.path));
    if (!src.Ok()) {
      continue;
    }
    buffer.resize(f.size);
    (void)co_await m.vfs().ReadFile(proc, src.value(), 0, buffer);
    Result<uint32_t> dst = co_await m.vfs().Create(proc, JoinPath(work_root, f.path));
    if (dst.Ok()) {
      co_await WriteTagged(m, proc, dst.value(), f.size);
    }
  }
  SimTime t2 = m.engine().Now();
  times.copy = ToSeconds(t2 - t1);

  // Phase 3: examine the status of every file.
  for (const auto& f : tree.files) {
    (void)co_await m.vfs().Stat(proc, JoinPath(work_root, f.path));
  }
  SimTime t3 = m.engine().Now();
  times.scan_dir = ToSeconds(t3 - t2);

  // Phase 4: read every byte of every file.
  for (const auto& f : tree.files) {
    Result<uint32_t> ino = co_await m.vfs().Lookup(proc, JoinPath(work_root, f.path));
    if (!ino.Ok()) {
      continue;
    }
    buffer.resize(f.size);
    (void)co_await m.vfs().ReadFile(proc, ino.value(), 0, buffer);
  }
  SimTime t4 = m.engine().Now();
  times.read_all = ToSeconds(t4 - t3);

  // Phase 5: compile. CPU-dominated on a 33 MHz i486 ("aggressive,
  // time-consuming compilation techniques and a slow CPU"): each source
  // is read, crunched, and an object is written; a final link writes one
  // large output.
  uint64_t linked_bytes = 0;
  size_t compile_count = 0;
  for (const auto& f : tree.files) {
    if (compile_count >= tree.files.size() / 2) {
      break;
    }
    ++compile_count;
    Result<uint32_t> ino = co_await m.vfs().Lookup(proc, JoinPath(work_root, f.path));
    if (!ino.Ok()) {
      continue;
    }
    buffer.resize(f.size);
    (void)co_await m.vfs().ReadFile(proc, ino.value(), 0, buffer);
    co_await m.cpu().Consume(proc.pid, Sec(7));  // The compiler itself.
    Result<uint32_t> obj =
        co_await m.vfs().Create(proc, JoinPath(work_root, f.path) + ".o");
    if (obj.Ok()) {
      co_await WriteTagged(m, proc, obj.value(), f.size);
      linked_bytes += f.size;
    }
  }
  co_await m.cpu().Consume(proc.pid, Sec(5));  // Link.
  Result<uint32_t> out = co_await m.vfs().Create(proc, work_root + "/a.out");
  if (out.Ok()) {
    co_await WriteTagged(m, proc, out.value(), std::max<uint64_t>(linked_bytes / 2, kBlockSize));
  }
  times.compile = ToSeconds(m.engine().Now() - t4);
  co_return times;
}

// ---------------------------------------------------------------------
// Sdet
// ---------------------------------------------------------------------

Task<FsStatus> SdetScript(Machine& m, Proc& proc, const std::string& dir, uint64_t seed,
                          int operations, MetaOpLatency* lat) {
  Rng rng(seed);
  FsStatus s = co_await m.vfs().Mkdir(proc, dir);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  std::vector<std::string> files;
  std::vector<std::string> subdirs;
  int name_counter = 0;

  for (int op = 0; op < operations; ++op) {
    double r = rng.UniformDouble();
    if (r < 0.18 || files.empty()) {
      // Create a small file (an "edit session" output).
      std::string path = dir + "/f" + std::to_string(name_counter++);
      SimTime t0 = m.engine().Now();
      Result<uint32_t> ino = co_await m.vfs().Create(proc, path);
      if (lat != nullptr) {
        ++lat->ops;
        lat->total += m.engine().Now() - t0;
      }
      if (ino.Ok()) {
        co_await WriteTagged(m, proc, ino.value(), 512 + rng.Next() % 8192);
        files.push_back(path);
      }
    } else if (r < 0.38) {
      // Read a file.
      const std::string& path = files[rng.Next() % files.size()];
      Result<uint32_t> ino = co_await m.vfs().Lookup(proc, path);
      if (ino.Ok()) {
        std::vector<uint8_t> buf(8192);
        (void)co_await m.vfs().ReadFile(proc, ino.value(), 0, buf);
      }
    } else if (r < 0.53) {
      // Edit: read then rewrite.
      const std::string& path = files[rng.Next() % files.size()];
      Result<uint32_t> ino = co_await m.vfs().Lookup(proc, path);
      if (ino.Ok()) {
        co_await m.cpu().Consume(proc.pid, Msec(15));  // The editor.
        co_await WriteTagged(m, proc, ino.value(), 512 + rng.Next() % 8192);
      }
    } else if (r < 0.63) {
      // Delete.
      size_t idx = rng.Next() % files.size();
      SimTime t0 = m.engine().Now();
      FsStatus st = co_await m.vfs().Unlink(proc, files[idx]);
      if (lat != nullptr) {
        ++lat->ops;
        lat->total += m.engine().Now() - t0;
      }
      if (st == FsStatus::kOk) {
        files.erase(files.begin() + static_cast<ptrdiff_t>(idx));
      }
    } else if (r < 0.71) {
      // Stat / ls.
      (void)co_await m.vfs().ReadDir(proc, dir);
    } else if (r < 0.76) {
      // Mkdir.
      std::string sub = dir + "/sub" + std::to_string(name_counter++);
      SimTime t0 = m.engine().Now();
      FsStatus st = co_await m.vfs().Mkdir(proc, sub);
      if (lat != nullptr) {
        ++lat->ops;
        lat->total += m.engine().Now() - t0;
      }
      if (st == FsStatus::kOk) {
        subdirs.push_back(sub);
      }
    } else if (r < 0.80 && !subdirs.empty()) {
      // Rmdir (may fail if non-empty; that is fine).
      size_t idx = rng.Next() % subdirs.size();
      SimTime t0 = m.engine().Now();
      FsStatus st = co_await m.vfs().Rmdir(proc, subdirs[idx]);
      if (lat != nullptr) {
        ++lat->ops;
        lat->total += m.engine().Now() - t0;
      }
      if (st == FsStatus::kOk) {
        subdirs.erase(subdirs.begin() + static_cast<ptrdiff_t>(idx));
      }
    } else if (r < 0.86) {
      // Rename.
      size_t idx = rng.Next() % files.size();
      std::string to = dir + "/r" + std::to_string(name_counter++);
      SimTime t0 = m.engine().Now();
      FsStatus st = co_await m.vfs().Rename(proc, files[idx], to);
      if (lat != nullptr) {
        ++lat->ops;
        lat->total += m.engine().Now() - t0;
      }
      if (st == FsStatus::kOk) {
        files[idx] = to;
      }
    } else {
      // Compile: read a file, crunch, write an object.
      const std::string& path = files[rng.Next() % files.size()];
      Result<uint32_t> ino = co_await m.vfs().Lookup(proc, path);
      if (ino.Ok()) {
        std::vector<uint8_t> buf(8192);
        (void)co_await m.vfs().ReadFile(proc, ino.value(), 0, buf);
        co_await m.cpu().Consume(proc.pid, Msec(80));
        std::string obj = dir + "/o" + std::to_string(name_counter++);
        SimTime t0 = m.engine().Now();
        Result<uint32_t> oino = co_await m.vfs().Create(proc, obj);
        if (lat != nullptr) {
          ++lat->ops;
          lat->total += m.engine().Now() - t0;
        }
        if (oino.Ok()) {
          co_await WriteTagged(m, proc, oino.value(), 2048 + rng.Next() % 16384);
          files.push_back(obj);
        }
      }
    }
  }
  co_return FsStatus::kOk;
}

// ---------------------------------------------------------------------
// Personalities
// ---------------------------------------------------------------------

namespace {

// Create + initial tagged write; returns the new ino (or the failure).
Task<Result<uint32_t>> CreateTagged(Machine& m, Proc& proc, const std::string& path,
                                    uint64_t bytes) {
  Result<uint32_t> ino = co_await m.vfs().Create(proc, path);
  if (!ino.Ok()) {
    co_return ino;
  }
  FsStatus s = co_await WriteTagged(m, proc, ino.value(), bytes);
  if (s != FsStatus::kOk) {
    co_return s;
  }
  co_return ino;
}

// Block-aligned append of `bytes` of tagged data (tags are per-block, so
// appends keep the file fsck-verifiable).
Task<FsStatus> AppendTagged(Machine& m, Proc& proc, uint32_t ino, uint64_t bytes) {
  Result<StatInfo> st = co_await m.vfs().StatIno(proc, ino);
  if (!st.Ok()) {
    co_return st.status();
  }
  uint64_t off = (st.value().size + kBlockSize - 1) / kBlockSize * kBlockSize;
  std::vector<uint8_t> data = MakeTaggedData(ino, st.value().generation, bytes);
  Result<uint64_t> w = co_await m.vfs().WriteFile(proc, ino, off, data);
  co_return w.Ok() ? FsStatus::kOk : w.status();
}

// Whole-file read through Lookup (cold reads hit the disk).
Task<bool> ReadWhole(Machine& m, Proc& proc, const std::string& path) {
  Result<uint32_t> ino = co_await m.vfs().Lookup(proc, path);
  if (!ino.Ok()) {
    co_return false;
  }
  Result<StatInfo> st = co_await m.vfs().StatIno(proc, ino.value());
  if (!st.Ok()) {
    co_return false;
  }
  std::vector<uint8_t> buf(std::max<uint64_t>(st.value().size, 1));
  Result<uint64_t> r = co_await m.vfs().ReadFile(proc, ino.value(), 0, buf);
  co_return r.Ok();
}

}  // namespace

Task<FsStatus> MailServerWorkload(Machine& m, Proc& proc, const std::string& root,
                                  uint64_t seed, int operations, PersonalityOpMix* mix) {
  Rng rng(seed);
  PersonalityOpMix mx;
  for (const std::string& d : {root, root + "/tmp", root + "/new", root + "/cur"}) {
    FsStatus s = co_await m.vfs().Mkdir(proc, d);
    if (s != FsStatus::kOk && s != FsStatus::kExists) {
      co_return s;
    }
    ++mx.mkdirs;
  }
  Result<uint32_t> log = co_await CreateTagged(m, proc, root + "/log", kBlockSize);
  if (!log.Ok()) {
    co_return log.status();
  }
  ++mx.creates;

  std::vector<std::string> fresh;  // Message names sitting in new/.
  std::vector<std::string> seen;   // Message names sitting in cur/.
  int name_counter = 0;
  for (int op = 0; op < operations; ++op) {
    double r = rng.UniformDouble();
    if (r < 0.35 || (fresh.empty() && seen.empty())) {
      // Delivery: write the message under tmp/, then rename it into
      // new/ (the maildir atomic-publish idiom).
      std::string name = "m" + std::to_string(name_counter++);
      uint64_t bytes = 512 + rng.Next() % 4096;
      Result<uint32_t> ino = co_await CreateTagged(m, proc, root + "/tmp/" + name, bytes);
      if (!ino.Ok()) {
        continue;
      }
      ++mx.creates;
      if ((co_await m.vfs().Rename(proc, root + "/tmp/" + name, root + "/new/" + name)) ==
          FsStatus::kOk) {
        ++mx.renames;
        fresh.push_back(name);
      }
    } else if (r < 0.55 && !fresh.empty()) {
      // A reader notices the message: move new/ -> cur/.
      size_t idx = rng.Next() % fresh.size();
      std::string name = fresh[idx];
      if ((co_await m.vfs().Rename(proc, root + "/new/" + name, root + "/cur/" + name)) ==
          FsStatus::kOk) {
        ++mx.renames;
        seen.push_back(name);
        fresh.erase(fresh.begin() + static_cast<ptrdiff_t>(idx));
      }
    } else if (r < 0.70 && !seen.empty()) {
      // Re-read a seen message.
      std::string path = root + "/cur/" + seen[rng.Next() % seen.size()];
      Result<StatInfo> st = co_await m.vfs().Stat(proc, path);
      if (st.Ok()) {
        ++mx.stats;
      }
      if (co_await ReadWhole(m, proc, path)) {
        ++mx.reads;
      }
    } else if (r < 0.85) {
      // Append a delivery record to the log.
      if ((co_await AppendTagged(m, proc, log.value(), kBlockSize)) == FsStatus::kOk) {
        ++mx.appends;
      }
    } else if (!seen.empty()) {
      // Expunge.
      size_t idx = rng.Next() % seen.size();
      if ((co_await m.vfs().Unlink(proc, root + "/cur/" + seen[idx])) == FsStatus::kOk) {
        ++mx.unlinks;
        seen.erase(seen.begin() + static_cast<ptrdiff_t>(idx));
      }
    }
  }
  if (mix != nullptr) {
    *mix = mx;
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> BuildFarmWorkload(Machine& m, Proc& proc, const std::string& root,
                                 uint64_t seed, int operations, PersonalityOpMix* mix) {
  Rng rng(seed);
  PersonalityOpMix mx;
  FsStatus s = co_await m.vfs().Mkdir(proc, root);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  ++mx.mkdirs;
  // A deep module chain: root/d0/d1/.../d5, four sources per level.
  std::vector<std::string> dirs;
  std::string path = root;
  for (int d = 0; d < 6; ++d) {
    path += "/d" + std::to_string(d);
    s = co_await m.vfs().Mkdir(proc, path);
    if (s != FsStatus::kOk) {
      co_return s;
    }
    ++mx.mkdirs;
    dirs.push_back(path);
  }
  std::vector<std::string> sources;
  for (const std::string& dir : dirs) {
    for (int i = 0; i < 4; ++i) {
      std::string src = dir + "/s" + std::to_string(i) + ".c";
      Result<uint32_t> ino = co_await CreateTagged(m, proc, src, 2048 + rng.Next() % 6144);
      if (ino.Ok()) {
        ++mx.creates;
        sources.push_back(src);
      }
    }
  }

  std::vector<std::string> objects;
  int name_counter = 0;
  for (int op = 0; op < operations; ++op) {
    double r = rng.UniformDouble();
    if (r < 0.55) {
      // Dependency scan: make stats every node along every deep path.
      for (const std::string& dir : dirs) {
        if ((co_await m.vfs().Stat(proc, dir)).Ok()) {
          ++mx.stats;
        }
      }
      for (const std::string& src : sources) {
        if ((co_await m.vfs().Stat(proc, src)).Ok()) {
          ++mx.stats;
        }
      }
    } else if (r < 0.75) {
      // Compile one translation unit.
      const std::string& src = sources[rng.Next() % sources.size()];
      if (co_await ReadWhole(m, proc, src)) {
        ++mx.reads;
      }
      co_await m.cpu().Consume(proc.pid, Msec(60));
      std::string obj = src + "." + std::to_string(name_counter++) + ".o";
      Result<uint32_t> ino = co_await CreateTagged(m, proc, obj, 4096 + rng.Next() % 8192);
      if (ino.Ok()) {
        ++mx.creates;
        objects.push_back(obj);
      }
    } else if (r < 0.90) {
      // Incremental edit: rewrite a source in place.
      const std::string& src = sources[rng.Next() % sources.size()];
      Result<uint32_t> ino = co_await m.vfs().Lookup(proc, src);
      if (ino.Ok() &&
          (co_await WriteTagged(m, proc, ino.value(), 2048 + rng.Next() % 6144)) ==
              FsStatus::kOk) {
        ++mx.appends;
      }
    } else {
      // Clean pass: remove every object.
      for (const std::string& obj : objects) {
        if ((co_await m.vfs().Unlink(proc, obj)) == FsStatus::kOk) {
          ++mx.unlinks;
        }
      }
      objects.clear();
    }
  }
  if (mix != nullptr) {
    *mix = mx;
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> WebAssetSwapWorkload(Machine& m, Proc& proc, const std::string& root,
                                    uint64_t seed, int operations, PersonalityOpMix* mix) {
  Rng rng(seed);
  PersonalityOpMix mx;
  for (const std::string& d : {root, root + "/stage"}) {
    FsStatus s = co_await m.vfs().Mkdir(proc, d);
    if (s != FsStatus::kOk && s != FsStatus::kExists) {
      co_return s;
    }
    ++mx.mkdirs;
  }
  constexpr int kAssets = 12;
  for (int i = 0; i < kAssets; ++i) {
    Result<uint32_t> ino = co_await CreateTagged(m, proc, root + "/a" + std::to_string(i),
                                                 1024 + rng.Next() % 16384);
    if (!ino.Ok()) {
      co_return ino.status();
    }
    ++mx.creates;
  }

  int version = 0;
  for (int op = 0; op < operations; ++op) {
    double r = rng.UniformDouble();
    std::string live = root + "/a" + std::to_string(rng.Next() % kAssets);
    if (r < 0.70) {
      // Deploy: stage the new version, then swap it in. Rename does not
      // replace, so the swap is unlink(live) + rename(staged, live) -
      // exactly the window the ordering schemes must keep safe.
      std::string staged = root + "/stage/v" + std::to_string(version++);
      Result<uint32_t> ino = co_await CreateTagged(m, proc, staged, 1024 + rng.Next() % 16384);
      if (!ino.Ok()) {
        continue;
      }
      ++mx.creates;
      if ((co_await m.vfs().Unlink(proc, live)) == FsStatus::kOk) {
        ++mx.unlinks;
      }
      if ((co_await m.vfs().Rename(proc, staged, live)) == FsStatus::kOk) {
        ++mx.renames;
      }
    } else if (r < 0.90) {
      // Serve: stat (cache validation) + read.
      if ((co_await m.vfs().Stat(proc, live)).Ok()) {
        ++mx.stats;
      }
      if (co_await ReadWhole(m, proc, live)) {
        ++mx.reads;
      }
    } else {
      // Directory listing (health check / index page).
      if ((co_await m.vfs().ReadDir(proc, root)).Ok()) {
        ++mx.stats;
      }
    }
  }
  if (mix != nullptr) {
    *mix = mx;
  }
  co_return FsStatus::kOk;
}

Task<FsStatus> CacheCleanupWorkload(Machine& m, Proc& proc, const std::string& root,
                                    uint64_t seed, int operations, PersonalityOpMix* mix) {
  Rng rng(seed);
  PersonalityOpMix mx;
  FsStatus s = co_await m.vfs().Mkdir(proc, root);
  if (s != FsStatus::kOk && s != FsStatus::kExists) {
    co_return s;
  }
  ++mx.mkdirs;
  constexpr int kBuckets = 4;
  int name_counter = 0;

  // Alternate fill and cleanup passes until the op budget is spent.
  // Bounded rounds guard against a pathological all-ops-fail run.
  for (int round = 0; round < 64 && mx.Total() < static_cast<uint64_t>(operations);
       ++round) {
    // Fill: cache some files into hash buckets (mcachefs backs the
    // cached tree with a mirror of the source hierarchy).
    int fill = 8 + static_cast<int>(rng.Next() % 8);
    for (int i = 0; i < fill; ++i) {
      std::string bucket = root + "/b" + std::to_string(rng.Next() % kBuckets);
      FsStatus bs = co_await m.vfs().Mkdir(proc, bucket);
      if (bs == FsStatus::kOk) {
        ++mx.mkdirs;
      } else if (bs != FsStatus::kExists) {
        continue;
      }
      Result<uint32_t> ino = co_await CreateTagged(
          m, proc, bucket + "/c" + std::to_string(name_counter++), 1024 + rng.Next() % 32768);
      if (ino.Ok()) {
        ++mx.creates;
      }
    }

    // Cleanup-backing pass: walk the backing tree collecting sizes...
    struct Victim {
      std::string path;
      uint64_t size;
    };
    std::vector<Victim> victims;
    uint64_t total_bytes = 0;
    for (int b = 0; b < kBuckets; ++b) {
      std::string bucket = root + "/b" + std::to_string(b);
      Result<std::vector<DirEntryInfo>> entries = co_await m.vfs().ReadDir(proc, bucket);
      if (!entries.Ok()) {
        continue;
      }
      ++mx.stats;
      for (const DirEntryInfo& e : entries.value()) {
        std::string path = bucket + "/" + e.name;
        Result<StatInfo> st = co_await m.vfs().Stat(proc, path);
        if (!st.Ok()) {
          continue;
        }
        ++mx.stats;
        victims.push_back({path, st.value().size});
        total_bytes += st.value().size;
      }
    }
    // ...pick victims deterministically (largest first, path as the
    // tiebreak) and unlink until 40% of the bytes are freed...
    std::sort(victims.begin(), victims.end(), [](const Victim& a, const Victim& b) {
      return a.size != b.size ? a.size > b.size : a.path < b.path;
    });
    uint64_t budget = total_bytes * 2 / 5;
    uint64_t freed = 0;
    for (const Victim& v : victims) {
      if (freed >= budget) {
        break;
      }
      if ((co_await m.vfs().Unlink(proc, v.path)) == FsStatus::kOk) {
        ++mx.unlinks;
        freed += v.size;
      }
    }
    // ...then expire one bucket outright (its source subtree vanished:
    // purge every backing file and drop the directory), and drop any
    // other bucket the byte-budget eviction happened to empty.
    std::string expired = root + "/b" + std::to_string(round % kBuckets);
    Result<std::vector<DirEntryInfo>> left = co_await m.vfs().ReadDir(proc, expired);
    if (left.Ok()) {
      for (const DirEntryInfo& e : left.value()) {
        if ((co_await m.vfs().Unlink(proc, expired + "/" + e.name)) == FsStatus::kOk) {
          ++mx.unlinks;
        }
      }
    }
    for (int b = 0; b < kBuckets; ++b) {
      if ((co_await m.vfs().Rmdir(proc, root + "/b" + std::to_string(b))) == FsStatus::kOk) {
        ++mx.rmdirs;
      }
    }
  }
  if (mix != nullptr) {
    *mix = mx;
  }
  co_return FsStatus::kOk;
}

// ---------------------------------------------------------------------
// Multi-user runner
// ---------------------------------------------------------------------

namespace {

struct RunnerState {
  bool setup_done = false;
  int users_finished = 0;
  std::vector<SimTime> user_start;
  std::vector<SimTime> user_end;
};

Task<void> SetupRoot(Machine* m, Proc* proc, const SetupFn* setup, RunnerState* st) {
  co_await m->Boot(*proc);
  if (*setup) {
    co_await (*setup)(*m, *proc);
  }
  // Flush the setup's dirt so the timed phase starts from a stable disk.
  co_await m->vfs().SyncEverything(*proc);
  st->setup_done = true;
}

Task<void> UserRoot(Machine* m, Proc* proc, const UserFn* body, int index, RunnerState* st) {
  st->user_start[static_cast<size_t>(index)] = m->engine().Now();
  co_await (*body)(*m, *proc, index);
  st->user_end[static_cast<size_t>(index)] = m->engine().Now();
  st->users_finished++;
}

}  // namespace

RunMeasurement RunMultiUser(Machine& m, int num_users, const SetupFn& setup,
                            const UserFn& user_body, bool drop_caches_after_setup) {
  RunnerState st;
  st.user_start.resize(static_cast<size_t>(num_users));
  st.user_end.resize(static_cast<size_t>(num_users));

  Proc setup_proc = m.MakeProc("setup");
  m.engine().Spawn(SetupRoot(&m, &setup_proc, &setup, &st), "setup");
  m.engine().RunUntil([&] { return st.setup_done; });

  if (drop_caches_after_setup) {
    m.vfs().DropCleanInodes();
    for (size_t s = 0; s < m.NumShards(); ++s) {
      m.cache(s).DropClean();
    }
  }

  std::vector<Proc> procs;
  procs.reserve(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    procs.push_back(m.MakeProc("user" + std::to_string(u)));
  }
  std::vector<SimDuration> cpu0(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    cpu0[static_cast<size_t>(u)] = m.cpu().Charged(procs[static_cast<size_t>(u)].pid);
  }
  std::vector<uint64_t> req0(m.NumDisks());
  std::vector<size_t> trace0(m.NumDisks());
  for (size_t d = 0; d < m.NumDisks(); ++d) {
    req0[d] = m.driver(d).TotalRequests();
    trace0[d] = m.driver(d).Traces().size();
  }
  SimTime t0 = m.engine().Now();

  for (int u = 0; u < num_users; ++u) {
    m.engine().Spawn(UserRoot(&m, &procs[static_cast<size_t>(u)], &user_body, u, &st),
                     procs[static_cast<size_t>(u)].name);
  }
  m.engine().RunUntil([&] { return st.users_finished == num_users; });
  SimTime t_users_done = m.engine().Now();

  // Let background flushing quiesce (bounded) so system-wide I/O counts
  // cover the whole benchmark, like the paper's system-wide statistics.
  SimTime deadline = t_users_done + Sec(90);
  m.engine().RunUntil([&] {
    bool quiet = !m.vfs().AnyDirtyInode();
    for (size_t d = 0; quiet && d < m.NumDisks(); ++d) {
      quiet = m.driver(d).PendingCount() == 0;
    }
    for (size_t s = 0; quiet && s < m.NumShards(); ++s) {
      quiet = m.cache(s).DirtyCount() == 0 && m.syncer(s).PendingWork() == 0;
    }
    return quiet || m.engine().Now() >= deadline;
  });

  RunMeasurement out;
  out.users.resize(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    auto& us = out.users[static_cast<size_t>(u)];
    us.elapsed = st.user_end[static_cast<size_t>(u)] - st.user_start[static_cast<size_t>(u)];
    us.cpu = m.cpu().Charged(procs[static_cast<size_t>(u)].pid) - cpu0[static_cast<size_t>(u)];
    us.io_wait = procs[static_cast<size_t>(u)].io_wait;
    out.cpu_seconds_total += ToSeconds(us.cpu);
  }
  out.wall = t_users_done - t0;
  double resp = 0;
  double access = 0;
  size_t n = 0;
  for (size_t d = 0; d < m.NumDisks(); ++d) {
    out.disk_requests += m.driver(d).TotalRequests() - req0[d];
    const auto& traces = m.driver(d).Traces();
    for (size_t i = trace0[d]; i < traces.size(); ++i) {
      resp += ToMs(traces[i].ResponseTime());
      access += ToMs(traces[i].AccessTime());
      ++n;
    }
  }
  if (n > 0) {
    out.avg_response_ms = resp / static_cast<double>(n);
    out.avg_access_ms = access / static_cast<double>(n);
  }
  out.stats_json = m.DumpStatsJson();
  return out;
}

}  // namespace mufs
