#include "src/fsck/fsck.h"

#include <cctype>
#include <cstring>
#include <deque>
#include <unordered_set>

namespace mufs {

std::string_view ToString(FsckViolationType t) {
  switch (t) {
    case FsckViolationType::kBadSuperblock:
      return "bad superblock";
    case FsckViolationType::kDanglingDirEntry:
      return "dangling directory entry";
    case FsckViolationType::kLinkCountTooLow:
      return "link count below reference count";
    case FsckViolationType::kDuplicateBlockClaim:
      return "block claimed twice";
    case FsckViolationType::kBadBlockPointer:
      return "bad block pointer";
    case FsckViolationType::kGarbageDirectory:
      return "garbage directory block";
    case FsckViolationType::kStaleDataExposed:
      return "stale data exposed through new pointer";
  }
  return "?";
}

void TagDataBlock(uint8_t* block_start, uint32_t ino, uint32_t generation) {
  DataBlockTag tag;
  tag.magic = kDataTagMagic;
  tag.ino = ino;
  tag.generation = generation;
  memcpy(block_start, &tag, sizeof(tag));
}

DiskInode FsckChecker::ReadInode(uint32_t ino) const {
  BlockData blk;
  image_->Read(sb_.ItableBlock(ino), &blk);
  DiskInode di;
  memcpy(&di, blk.data() + sb_.ItableOffset(ino), sizeof(di));
  return di;
}

bool FsckChecker::ClaimBlock(uint32_t ino, uint32_t blkno, FsckReport* report) {
  if (blkno < sb_.data_start || blkno >= sb_.total_blocks) {
    report->violations.push_back(
        {FsckViolationType::kBadBlockPointer,
         "ino " + std::to_string(ino) + " -> block " + std::to_string(blkno)});
    return false;
  }
  auto [it, inserted] = block_owner_.try_emplace(blkno, ino);
  if (!inserted) {
    report->violations.push_back({FsckViolationType::kDuplicateBlockClaim,
                                  "block " + std::to_string(blkno) + " claimed by ino " +
                                      std::to_string(it->second) + " and ino " +
                                      std::to_string(ino)});
    return false;
  }
  ++report->blocks_claimed;
  return true;
}

std::vector<uint32_t> FsckChecker::CollectBlocks(uint32_t ino, const DiskInode& di,
                                                 FsckReport* report) {
  std::vector<uint32_t> data_blocks;
  auto add_data = [&](uint32_t blkno) {
    if (blkno != 0 && ClaimBlock(ino, blkno, report)) {
      data_blocks.push_back(blkno);
    }
  };
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    add_data(di.direct[i]);
  }
  auto walk_indirect = [&](uint32_t iblk, auto&& leaf_fn) {
    if (iblk == 0) {
      return;
    }
    if (!ClaimBlock(ino, iblk, report)) {
      return;
    }
    BlockData blk;
    image_->Read(iblk, &blk);
    const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      leaf_fn(ptrs[i]);
    }
  };
  walk_indirect(di.indirect, add_data);
  walk_indirect(di.double_indirect,
                [&](uint32_t mid) { walk_indirect(mid, add_data); });
  return data_blocks;
}

void FsckChecker::CheckInode(uint32_t ino, const DiskInode& di, FsckReport* report) {
  ++report->inodes_in_use;
  if (di.IsDir()) {
    ++report->dirs_seen;
  } else {
    ++report->files_seen;
  }
  std::vector<uint32_t> blocks = CollectBlocks(ino, di, report);
  if (options_.check_stale_data && !di.IsDir()) {
    for (uint32_t blkno : blocks) {
      if (!image_->EverWritten(blkno)) {
        continue;  // Reads as zeroes: no exposure.
      }
      BlockData blk;
      image_->Read(blkno, &blk);
      DataBlockTag tag;
      memcpy(&tag, blk.data(), sizeof(tag));
      bool all_zero = true;
      for (size_t i = 0; i < sizeof(tag); ++i) {
        if (blk[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) {
        continue;  // Initialized but unwritten.
      }
      if (tag.magic != kDataTagMagic || tag.ino != options_.tag_ino_base + ino ||
          tag.generation != di.generation) {
        report->violations.push_back(
            {FsckViolationType::kStaleDataExposed,
             "ino " + std::to_string(ino) + " gen " + std::to_string(di.generation) +
                 " block " + std::to_string(blkno) + " holds foreign data (tag ino " +
                 std::to_string(tag.ino) + " gen " + std::to_string(tag.generation) + ")"});
      }
    }
  }
}

void FsckChecker::CheckDirBlock(uint32_t dir_ino, uint32_t blkno, FsckReport* report,
                                std::vector<uint32_t>* children) {
  BlockData blk;
  image_->Read(blkno, &blk);
  for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
    DirEntry de;
    memcpy(&de, blk.data() + e * kDirEntrySize, sizeof(de));
    if (de.ino == 0) {
      continue;
    }
    // Structural sanity: an uninitialized (stale-data) block shows up as
    // unparseable entries.
    bool name_ok = de.name[0] != '\0';
    for (size_t i = 0; name_ok && i < kMaxNameLen && de.name[i] != '\0'; ++i) {
      if (!isprint(static_cast<unsigned char>(de.name[i]))) {
        name_ok = false;
      }
    }
    if (de.ino >= sb_.total_inodes || !name_ok || de.reserved != 0) {
      report->violations.push_back({FsckViolationType::kGarbageDirectory,
                                    "dir ino " + std::to_string(dir_ino) + " block " +
                                        std::to_string(blkno) + " entry " + std::to_string(e)});
      continue;
    }
    DiskInode target = ReadInode(de.ino);
    if (!target.InUse()) {
      report->violations.push_back(
          {FsckViolationType::kDanglingDirEntry,
           "dir ino " + std::to_string(dir_ino) + " entry '" + std::string(de.Name()) +
               "' -> free ino " + std::to_string(de.ino)});
      continue;
    }
    ++ref_counts_[de.ino];
    if (target.IsDir()) {
      children->push_back(de.ino);
    }
  }
}

void FsckChecker::WalkDirectories(FsckReport* report) {
  std::deque<uint32_t> queue;
  std::vector<bool> visited(sb_.total_inodes, false);
  queue.push_back(kRootIno);
  visited[kRootIno] = true;
  while (!queue.empty()) {
    uint32_t dir_ino = queue.front();
    queue.pop_front();
    DiskInode di = ReadInode(dir_ino);
    if (!di.IsDir()) {
      continue;
    }
    // Gather the directory's blocks (already claimed in the inode pass;
    // re-walk pointers here without claiming).
    std::vector<uint32_t> blocks;
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      if (di.direct[i] != 0) {
        blocks.push_back(di.direct[i]);
      }
    }
    if (di.indirect != 0) {
      BlockData blk;
      image_->Read(di.indirect, &blk);
      const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        if (ptrs[i] != 0) {
          blocks.push_back(ptrs[i]);
        }
      }
    }
    std::vector<uint32_t> children;
    for (uint32_t blkno : blocks) {
      if (blkno >= sb_.data_start && blkno < sb_.total_blocks) {
        CheckDirBlock(dir_ino, blkno, report, &children);
      }
    }
    child_dir_counts_[dir_ino] = static_cast<uint32_t>(children.size());
    for (uint32_t child : children) {
      if (child < sb_.total_inodes && !visited[child]) {
        visited[child] = true;
        queue.push_back(child);
      }
    }
  }
}

FsckReport FsckChecker::Check() {
  FsckReport report;
  block_owner_.clear();
  ref_counts_.clear();

  BlockData blk;
  image_->Read(0, &blk);
  memcpy(&sb_, blk.data(), sizeof(sb_));
  if (sb_.magic != kFsMagic || sb_.total_blocks == 0 || sb_.total_inodes == 0) {
    report.violations.push_back({FsckViolationType::kBadSuperblock, "magic/geometry"});
    return report;
  }

  // Pass 1: inodes and block claims.
  for (uint32_t ino = kRootIno; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (di.InUse()) {
      CheckInode(ino, di, &report);
    }
  }

  // Pass 2: directory tree, reference counts.
  WalkDirectories(&report);

  // Pass 3: link-count audit.
  for (uint32_t ino = kRootIno + 1; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (!di.InUse()) {
      continue;
    }
    uint32_t refs = 0;
    auto it = ref_counts_.find(ino);
    if (it != ref_counts_.end()) {
      refs = it->second;
    }
    // Directory link counts in this format: 1 for the parent entry, 1 for
    // the directory itself, plus one per child directory (their "..").
    uint32_t minimum = refs;
    uint32_t expected = refs;
    if (di.IsDir()) {
      uint32_t children = 0;
      auto cit = child_dir_counts_.find(ino);
      if (cit != child_dir_counts_.end()) {
        children = cit->second;
      }
      if (refs > 0) {
        minimum = refs + 1;
        expected = refs + 1 + children;
      }
    }
    if (di.nlink < minimum) {
      report.violations.push_back(
          {FsckViolationType::kLinkCountTooLow,
           "ino " + std::to_string(ino) + " nlink " + std::to_string(di.nlink) + " refs " +
               std::to_string(refs)});
    } else if (refs == 0) {
      report.fixables.push_back({"orphaned ino " + std::to_string(ino)});
    } else if (di.nlink != expected) {
      report.fixables.push_back({"miscounted nlink on ino " + std::to_string(ino) +
                                 " nlink " + std::to_string(di.nlink) + " expected " +
                                 std::to_string(expected)});
    }
  }

  // Pass 4: bitmap audit (always fixable: fsck rebuilds bitmaps).
  for (uint32_t ino = kRootIno; ino < sb_.total_inodes; ++ino) {
    BlockData bm;
    image_->Read(sb_.inode_bitmap_start + ino / kBitsPerBlock, &bm);
    bool marked = BitmapGet(bm.data(), ino % kBitsPerBlock);
    bool in_use = ReadInode(ino).InUse();
    if (in_use && !marked) {
      report.fixables.push_back({"ino " + std::to_string(ino) + " in use but free in bitmap"});
    }
  }
  for (const auto& [blkno, owner] : block_owner_) {
    BlockData bm;
    image_->Read(sb_.block_bitmap_start + blkno / kBitsPerBlock, &bm);
    if (!BitmapGet(bm.data(), blkno % kBitsPerBlock)) {
      report.fixables.push_back(
          {"block " + std::to_string(blkno) + " in use but free in bitmap"});
    }
  }
  return report;
}

// ---------------------------------------------------------------------
// Repair
// ---------------------------------------------------------------------

DiskInode FsckRepairer::ReadInode(uint32_t ino) const {
  BlockData blk;
  image_->Read(sb_.ItableBlock(ino), &blk);
  DiskInode di;
  memcpy(&di, blk.data() + sb_.ItableOffset(ino), sizeof(di));
  return di;
}

void FsckRepairer::WriteInode(uint32_t ino, const DiskInode& di) {
  BlockData blk;
  image_->Read(sb_.ItableBlock(ino), &blk);
  memcpy(blk.data() + sb_.ItableOffset(ino), &di, sizeof(di));
  WriteBlock(sb_.ItableBlock(ino), blk);
}

void FsckRepairer::WriteBlock(uint32_t blkno, const BlockData& data) {
  // Repair happens "offline": keep the image's stable-storage timestamp.
  image_->Write(blkno, data, image_->LastWriteTime());
}

bool FsckRepairer::LoadSuper() {
  BlockData blk;
  image_->Read(0, &blk);
  memcpy(&sb_, blk.data(), sizeof(sb_));
  return sb_.magic == kFsMagic && sb_.total_blocks != 0 && sb_.total_inodes != 0;
}

void FsckRepairer::ScrubInodePointers(FsckRepairReport* report) {
  auto claim = [&](uint32_t ino, uint32_t blkno) {
    if (!sb_.IsDataBlock(blkno)) {
      return false;
    }
    return block_owner_.try_emplace(blkno, ino).second;
  };
  for (uint32_t ino = kRootIno; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (!di.InUse()) {
      continue;
    }
    bool inode_dirty = false;
    std::vector<uint32_t> data_blocks;
    auto scrub_ptr = [&](uint32_t* ptr) {
      if (*ptr == 0) {
        return;
      }
      if (!claim(ino, *ptr)) {
        *ptr = 0;
        ++report->pointers_cleared;
        return;
      }
      data_blocks.push_back(*ptr);
    };
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      uint32_t before = di.direct[i];
      scrub_ptr(&di.direct[i]);
      inode_dirty |= di.direct[i] != before;
    }
    // An indirect block is itself a claim; if it survives, scrub the
    // pointers it holds (writing the block back on any change).
    auto scrub_indirect = [&](uint32_t* iblk, auto&& leaf_fn) {
      if (*iblk == 0) {
        return;
      }
      if (!claim(ino, *iblk)) {
        *iblk = 0;
        ++report->pointers_cleared;
        return;
      }
      BlockData blk;
      image_->Read(*iblk, &blk);
      uint32_t* ptrs = reinterpret_cast<uint32_t*>(blk.data());
      bool blk_dirty = false;
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        uint32_t before = ptrs[i];
        leaf_fn(&ptrs[i]);
        blk_dirty |= ptrs[i] != before;
      }
      if (blk_dirty) {
        WriteBlock(*iblk, blk);
      }
    };
    {
      uint32_t before = di.indirect;
      scrub_indirect(&di.indirect, scrub_ptr);
      inode_dirty |= di.indirect != before;
    }
    {
      uint32_t before = di.double_indirect;
      scrub_indirect(&di.double_indirect,
                     [&](uint32_t* mid) { scrub_indirect(mid, scrub_ptr); });
      inode_dirty |= di.double_indirect != before;
    }
    if (inode_dirty) {
      WriteInode(ino, di);
    }
    if (options_.check_stale_data && !di.IsDir()) {
      for (uint32_t blkno : data_blocks) {
        if (!image_->EverWritten(blkno)) {
          continue;
        }
        BlockData blk;
        image_->Read(blkno, &blk);
        DataBlockTag tag;
        memcpy(&tag, blk.data(), sizeof(tag));
        bool all_zero = true;
        for (size_t i = 0; i < sizeof(tag); ++i) {
          if (blk[i] != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero) {
          continue;
        }
        if (tag.magic != kDataTagMagic || tag.ino != options_.tag_ino_base + ino ||
            tag.generation != di.generation) {
          blk.fill(0);
          WriteBlock(blkno, blk);
          ++report->data_blocks_scrubbed;
        }
      }
    }
  }
}

void FsckRepairer::ScrubDirectories(FsckRepairReport* report) {
  std::deque<uint32_t> queue;
  std::vector<bool> visited(sb_.total_inodes, false);
  queue.push_back(kRootIno);
  visited[kRootIno] = true;
  while (!queue.empty()) {
    uint32_t dir_ino = queue.front();
    queue.pop_front();
    DiskInode di = ReadInode(dir_ino);
    if (!di.IsDir()) {
      continue;
    }
    std::vector<uint32_t> blocks;
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      if (di.direct[i] != 0) {
        blocks.push_back(di.direct[i]);
      }
    }
    if (di.indirect != 0) {
      BlockData blk;
      image_->Read(di.indirect, &blk);
      const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        if (ptrs[i] != 0) {
          blocks.push_back(ptrs[i]);
        }
      }
    }
    std::vector<uint32_t> children;
    for (uint32_t blkno : blocks) {
      if (!sb_.IsDataBlock(blkno)) {
        continue;  // Already zeroed by the pointer scrub.
      }
      BlockData blk;
      image_->Read(blkno, &blk);
      bool blk_dirty = false;
      for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
        DirEntry de;
        memcpy(&de, blk.data() + e * kDirEntrySize, sizeof(de));
        if (de.ino == 0) {
          continue;
        }
        bool name_ok = de.name[0] != '\0';
        for (size_t i = 0; name_ok && i < kMaxNameLen && de.name[i] != '\0'; ++i) {
          if (!isprint(static_cast<unsigned char>(de.name[i]))) {
            name_ok = false;
          }
        }
        bool garbage = de.ino >= sb_.total_inodes || !name_ok || de.reserved != 0;
        bool dangling = !garbage && !ReadInode(de.ino).InUse();
        if (garbage || dangling) {
          memset(blk.data() + e * kDirEntrySize, 0, kDirEntrySize);
          blk_dirty = true;
          ++report->dir_entries_cleared;
          continue;
        }
        ++ref_counts_[de.ino];
        if (ReadInode(de.ino).IsDir()) {
          children.push_back(de.ino);
        }
      }
      if (blk_dirty) {
        WriteBlock(blkno, blk);
      }
    }
    child_dir_counts_[dir_ino] = static_cast<uint32_t>(children.size());
    for (uint32_t child : children) {
      if (child < sb_.total_inodes && !visited[child]) {
        visited[child] = true;
        queue.push_back(child);
      }
    }
  }
}

void FsckRepairer::FixLinkCountsAndOrphans(FsckRepairReport* report) {
  for (uint32_t ino = kRootIno + 1; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (!di.InUse()) {
      continue;
    }
    uint32_t refs = 0;
    if (auto it = ref_counts_.find(ino); it != ref_counts_.end()) {
      refs = it->second;
    }
    if (refs == 0) {
      // Unreferenced: free the inode but keep its generation so any later
      // reuse still invalidates stale data tags. Its blocks return to the
      // free pool when the bitmaps are rebuilt; a directory's children
      // become orphans themselves and fall out in the next pass.
      DiskInode freed;
      freed.generation = di.generation + 1;
      WriteInode(ino, freed);
      ++report->inodes_cleared;
      continue;
    }
    uint32_t expected = refs;
    if (di.IsDir()) {
      uint32_t children = 0;
      if (auto cit = child_dir_counts_.find(ino); cit != child_dir_counts_.end()) {
        children = cit->second;
      }
      expected = refs + 1 + children;
    }
    if (di.nlink != expected) {
      di.nlink = static_cast<uint16_t>(expected);
      WriteInode(ino, di);
      ++report->link_counts_fixed;
    }
  }
}

void FsckRepairer::RebuildBitmaps(FsckRepairReport* report) {
  // Recompute claims from the surviving inode table (pointers are all
  // valid and unique after the scrub; orphans have been freed).
  std::unordered_set<uint32_t> claimed;
  auto walk_indirect = [&](uint32_t iblk, auto&& leaf_fn) {
    if (iblk == 0) {
      return;
    }
    claimed.insert(iblk);
    BlockData blk;
    image_->Read(iblk, &blk);
    const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      leaf_fn(ptrs[i]);
    }
  };
  auto add_leaf = [&](uint32_t blkno) {
    if (blkno != 0) {
      claimed.insert(blkno);
    }
  };
  for (uint32_t ino = kRootIno; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (!di.InUse()) {
      continue;
    }
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      add_leaf(di.direct[i]);
    }
    walk_indirect(di.indirect, add_leaf);
    walk_indirect(di.double_indirect, [&](uint32_t mid) { walk_indirect(mid, add_leaf); });
  }

  auto rewrite = [&](uint32_t bitmap_start, uint32_t bitmap_blocks, uint32_t total,
                     auto&& desired_fn) {
    for (uint32_t b = 0; b < bitmap_blocks; ++b) {
      BlockData bm;
      image_->Read(bitmap_start + b, &bm);
      bool dirty = false;
      uint32_t base = b * kBitsPerBlock;
      for (uint32_t i = 0; i < kBitsPerBlock && base + i < total; ++i) {
        bool want = desired_fn(base + i);
        if (BitmapGet(bm.data(), i) != want) {
          BitmapSet(bm.data(), i, want);
          dirty = true;
          ++report->bitmap_bits_fixed;
        }
      }
      if (dirty) {
        WriteBlock(bitmap_start + b, bm);
      }
    }
  };
  rewrite(sb_.inode_bitmap_start, sb_.inode_bitmap_blocks, sb_.total_inodes,
          [&](uint32_t ino) { return ino < kRootIno || ReadInode(ino).InUse(); });
  rewrite(sb_.block_bitmap_start, sb_.block_bitmap_blocks, sb_.total_blocks,
          [&](uint32_t blkno) { return blkno < sb_.data_start || claimed.contains(blkno); });
}

void FsckRepairer::RepairPass(FsckRepairReport* report) {
  block_owner_.clear();
  ref_counts_.clear();
  child_dir_counts_.clear();
  ScrubInodePointers(report);
  ScrubDirectories(report);
  FixLinkCountsAndOrphans(report);
  RebuildBitmaps(report);
}

FsckRepairReport FsckRepairer::Repair() {
  FsckRepairReport report;
  if (!LoadSuper()) {
    return report;  // A bad superblock is beyond repair here.
  }
  for (int pass = 0; pass < kMaxFsckRepairPasses; ++pass) {
    ++report.passes;
    RepairPass(&report);
    FsckReport check = FsckChecker(image_, options_).Check();
    if (check.violations.empty() && check.fixables.empty()) {
      report.clean_after = true;
      break;
    }
  }
  return report;
}

}  // namespace mufs
