#include "src/fsck/fsck.h"

#include <cctype>
#include <cstring>
#include <deque>

namespace mufs {

std::string_view ToString(FsckViolationType t) {
  switch (t) {
    case FsckViolationType::kBadSuperblock:
      return "bad superblock";
    case FsckViolationType::kDanglingDirEntry:
      return "dangling directory entry";
    case FsckViolationType::kLinkCountTooLow:
      return "link count below reference count";
    case FsckViolationType::kDuplicateBlockClaim:
      return "block claimed twice";
    case FsckViolationType::kBadBlockPointer:
      return "bad block pointer";
    case FsckViolationType::kGarbageDirectory:
      return "garbage directory block";
    case FsckViolationType::kStaleDataExposed:
      return "stale data exposed through new pointer";
  }
  return "?";
}

void TagDataBlock(uint8_t* block_start, uint32_t ino, uint32_t generation) {
  DataBlockTag tag;
  tag.magic = kDataTagMagic;
  tag.ino = ino;
  tag.generation = generation;
  memcpy(block_start, &tag, sizeof(tag));
}

DiskInode FsckChecker::ReadInode(uint32_t ino) const {
  BlockData blk;
  image_->Read(sb_.ItableBlock(ino), &blk);
  DiskInode di;
  memcpy(&di, blk.data() + sb_.ItableOffset(ino), sizeof(di));
  return di;
}

bool FsckChecker::ClaimBlock(uint32_t ino, uint32_t blkno, FsckReport* report) {
  if (blkno < sb_.data_start || blkno >= sb_.total_blocks) {
    report->violations.push_back(
        {FsckViolationType::kBadBlockPointer,
         "ino " + std::to_string(ino) + " -> block " + std::to_string(blkno)});
    return false;
  }
  auto [it, inserted] = block_owner_.try_emplace(blkno, ino);
  if (!inserted) {
    report->violations.push_back({FsckViolationType::kDuplicateBlockClaim,
                                  "block " + std::to_string(blkno) + " claimed by ino " +
                                      std::to_string(it->second) + " and ino " +
                                      std::to_string(ino)});
    return false;
  }
  ++report->blocks_claimed;
  return true;
}

std::vector<uint32_t> FsckChecker::CollectBlocks(uint32_t ino, const DiskInode& di,
                                                 FsckReport* report) {
  std::vector<uint32_t> data_blocks;
  auto add_data = [&](uint32_t blkno) {
    if (blkno != 0 && ClaimBlock(ino, blkno, report)) {
      data_blocks.push_back(blkno);
    }
  };
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    add_data(di.direct[i]);
  }
  auto walk_indirect = [&](uint32_t iblk, auto&& leaf_fn) {
    if (iblk == 0) {
      return;
    }
    if (!ClaimBlock(ino, iblk, report)) {
      return;
    }
    BlockData blk;
    image_->Read(iblk, &blk);
    const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      leaf_fn(ptrs[i]);
    }
  };
  walk_indirect(di.indirect, add_data);
  walk_indirect(di.double_indirect,
                [&](uint32_t mid) { walk_indirect(mid, add_data); });
  return data_blocks;
}

void FsckChecker::CheckInode(uint32_t ino, const DiskInode& di, FsckReport* report) {
  ++report->inodes_in_use;
  if (di.IsDir()) {
    ++report->dirs_seen;
  } else {
    ++report->files_seen;
  }
  std::vector<uint32_t> blocks = CollectBlocks(ino, di, report);
  if (options_.check_stale_data && !di.IsDir()) {
    for (uint32_t blkno : blocks) {
      if (!image_->EverWritten(blkno)) {
        continue;  // Reads as zeroes: no exposure.
      }
      BlockData blk;
      image_->Read(blkno, &blk);
      DataBlockTag tag;
      memcpy(&tag, blk.data(), sizeof(tag));
      bool all_zero = true;
      for (size_t i = 0; i < sizeof(tag); ++i) {
        if (blk[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) {
        continue;  // Initialized but unwritten.
      }
      if (tag.magic != kDataTagMagic || tag.ino != ino || tag.generation != di.generation) {
        report->violations.push_back(
            {FsckViolationType::kStaleDataExposed,
             "ino " + std::to_string(ino) + " gen " + std::to_string(di.generation) +
                 " block " + std::to_string(blkno) + " holds foreign data (tag ino " +
                 std::to_string(tag.ino) + " gen " + std::to_string(tag.generation) + ")"});
      }
    }
  }
}

void FsckChecker::CheckDirBlock(uint32_t dir_ino, uint32_t blkno, FsckReport* report,
                                std::vector<uint32_t>* children) {
  BlockData blk;
  image_->Read(blkno, &blk);
  for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
    DirEntry de;
    memcpy(&de, blk.data() + e * kDirEntrySize, sizeof(de));
    if (de.ino == 0) {
      continue;
    }
    // Structural sanity: an uninitialized (stale-data) block shows up as
    // unparseable entries.
    bool name_ok = de.name[0] != '\0';
    for (size_t i = 0; name_ok && i < kMaxNameLen && de.name[i] != '\0'; ++i) {
      if (!isprint(static_cast<unsigned char>(de.name[i]))) {
        name_ok = false;
      }
    }
    if (de.ino >= sb_.total_inodes || !name_ok || de.reserved != 0) {
      report->violations.push_back({FsckViolationType::kGarbageDirectory,
                                    "dir ino " + std::to_string(dir_ino) + " block " +
                                        std::to_string(blkno) + " entry " + std::to_string(e)});
      continue;
    }
    DiskInode target = ReadInode(de.ino);
    if (!target.InUse()) {
      report->violations.push_back(
          {FsckViolationType::kDanglingDirEntry,
           "dir ino " + std::to_string(dir_ino) + " entry '" + std::string(de.Name()) +
               "' -> free ino " + std::to_string(de.ino)});
      continue;
    }
    ++ref_counts_[de.ino];
    if (target.IsDir()) {
      children->push_back(de.ino);
    }
  }
}

void FsckChecker::WalkDirectories(FsckReport* report) {
  std::deque<uint32_t> queue;
  std::vector<bool> visited(sb_.total_inodes, false);
  queue.push_back(kRootIno);
  visited[kRootIno] = true;
  while (!queue.empty()) {
    uint32_t dir_ino = queue.front();
    queue.pop_front();
    DiskInode di = ReadInode(dir_ino);
    if (!di.IsDir()) {
      continue;
    }
    // Gather the directory's blocks (already claimed in the inode pass;
    // re-walk pointers here without claiming).
    std::vector<uint32_t> blocks;
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      if (di.direct[i] != 0) {
        blocks.push_back(di.direct[i]);
      }
    }
    if (di.indirect != 0) {
      BlockData blk;
      image_->Read(di.indirect, &blk);
      const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        if (ptrs[i] != 0) {
          blocks.push_back(ptrs[i]);
        }
      }
    }
    std::vector<uint32_t> children;
    for (uint32_t blkno : blocks) {
      if (blkno >= sb_.data_start && blkno < sb_.total_blocks) {
        CheckDirBlock(dir_ino, blkno, report, &children);
      }
    }
    child_dir_counts_[dir_ino] = static_cast<uint32_t>(children.size());
    for (uint32_t child : children) {
      if (child < sb_.total_inodes && !visited[child]) {
        visited[child] = true;
        queue.push_back(child);
      }
    }
  }
}

FsckReport FsckChecker::Check() {
  FsckReport report;
  block_owner_.clear();
  ref_counts_.clear();

  BlockData blk;
  image_->Read(0, &blk);
  memcpy(&sb_, blk.data(), sizeof(sb_));
  if (sb_.magic != kFsMagic || sb_.total_blocks == 0 || sb_.total_inodes == 0) {
    report.violations.push_back({FsckViolationType::kBadSuperblock, "magic/geometry"});
    return report;
  }

  // Pass 1: inodes and block claims.
  for (uint32_t ino = kRootIno; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (di.InUse()) {
      CheckInode(ino, di, &report);
    }
  }

  // Pass 2: directory tree, reference counts.
  WalkDirectories(&report);

  // Pass 3: link-count audit.
  for (uint32_t ino = kRootIno + 1; ino < sb_.total_inodes; ++ino) {
    DiskInode di = ReadInode(ino);
    if (!di.InUse()) {
      continue;
    }
    uint32_t refs = 0;
    auto it = ref_counts_.find(ino);
    if (it != ref_counts_.end()) {
      refs = it->second;
    }
    // Directory link counts in this format: 1 for the parent entry, 1 for
    // the directory itself, plus one per child directory (their "..").
    uint32_t minimum = refs;
    uint32_t expected = refs;
    if (di.IsDir()) {
      uint32_t children = 0;
      auto cit = child_dir_counts_.find(ino);
      if (cit != child_dir_counts_.end()) {
        children = cit->second;
      }
      if (refs > 0) {
        minimum = refs + 1;
        expected = refs + 1 + children;
      }
    }
    if (di.nlink < minimum) {
      report.violations.push_back(
          {FsckViolationType::kLinkCountTooLow,
           "ino " + std::to_string(ino) + " nlink " + std::to_string(di.nlink) + " refs " +
               std::to_string(refs)});
    } else if (refs == 0) {
      report.fixables.push_back({"orphaned ino " + std::to_string(ino)});
    } else if (di.nlink != expected) {
      report.fixables.push_back({"miscounted nlink on ino " + std::to_string(ino) +
                                 " nlink " + std::to_string(di.nlink) + " expected " +
                                 std::to_string(expected)});
    }
  }

  // Pass 4: bitmap audit (always fixable: fsck rebuilds bitmaps).
  for (uint32_t ino = kRootIno; ino < sb_.total_inodes; ++ino) {
    BlockData bm;
    image_->Read(sb_.inode_bitmap_start + ino / kBitsPerBlock, &bm);
    bool marked = BitmapGet(bm.data(), ino % kBitsPerBlock);
    bool in_use = ReadInode(ino).InUse();
    if (in_use && !marked) {
      report.fixables.push_back({"ino " + std::to_string(ino) + " in use but free in bitmap"});
    }
  }
  for (const auto& [blkno, owner] : block_owner_) {
    BlockData bm;
    image_->Read(sb_.block_bitmap_start + blkno / kBitsPerBlock, &bm);
    if (!BitmapGet(bm.data(), blkno % kBitsPerBlock)) {
      report.fixables.push_back(
          {"block " + std::to_string(blkno) + " in use but free in bitmap"});
    }
  }
  return report;
}

}  // namespace mufs
