#include "src/fsck/crash_harness.h"

namespace mufs {

namespace {

struct RunState {
  bool done = false;
};

Task<void> WorkloadRoot(Machine* m, Proc* proc, const CrashHarness::Workload* workload,
                        RunState* state) {
  co_await m->Boot(*proc);
  co_await (*workload)(*m, *proc);
  state->done = true;
}

// Shared crash tail: snapshot stable storage, run the scheme's recovery
// (journal replay for kJournaling), and audit with fsck. A sharded
// machine recovers and checks each shard's file system independently in
// its own region of the volume image; the reports are merged.
CrashResult CrashAndCheck(Machine* m, const RunState& state, Scheme scheme,
                          FsckOptions fsck_options) {
  CrashResult result;
  result.workload_finished = state.done;
  result.events_run = m->engine().EventsProcessed();
  result.crash_time = m->engine().Now();
  result.torn_writes = m->image().TornWriteCount();
  DiskImage snapshot = m->CrashNow();
  // Only the >1-thread path touches stats: the serial path must leave
  // golden stats dumps byte-identical.
  PfsckStats* stats = fsck_options.threads > 1 ? &result.fsck_stats : nullptr;
  if (m->NumShards() <= 1) {
    if (scheme == Scheme::kJournaling) {
      result.replay = JournalRecovery(&snapshot).Run();
    }
    result.report = PfsckCheck(&snapshot, fsck_options, stats);
  } else {
    // Journal replay stays serial, in shard order: it mutates the shared
    // volume snapshot, and its report fields accumulate in shard order.
    if (scheme == Scheme::kJournaling) {
      for (size_t s = 0; s < m->NumShards(); ++s) {
        JournalReplayReport r = JournalRecovery(&snapshot, m->ShardBase(s)).Run();
        result.replay.journal_present = result.replay.journal_present || r.journal_present;
        result.replay.txns_replayed += r.txns_replayed;
        result.replay.blocks_replayed += r.blocks_replayed;
        result.replay.log_blocks_scanned += r.log_blocks_scanned;
        result.replay.torn_tail = result.replay.torn_tail || r.torn_tail;
      }
    }
    ShardLayout layout;
    layout.num_shards = static_cast<uint32_t>(m->NumShards());
    layout.shard_blocks = m->ShardBlocks();
    layout.ino_stride = m->InoStride();
    result.report = PfsckCheckSharded(snapshot, layout, fsck_options, stats);
  }
  if (stats != nullptr) {
    RegisterPfsckStats(&m->stats(), *stats);
  }
  return result;
}

}  // namespace

CrashResult CrashHarness::RunAndCrash(const Workload& workload, uint64_t crash_after_events,
                                      FsckOptions fsck_options) {
  Machine m(config_);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");

  // Run until the crash point. If the workload finishes first, keep the
  // world running (syncer flushing) until the event budget is spent or
  // the system goes quiet.
  m.engine().RunUntil([&] { return m.engine().EventsProcessed() >= crash_after_events; });
  return CrashAndCheck(&m, state, config_.scheme, fsck_options);
}

CrashResult CrashHarness::RunAndCrashAtWrite(const Workload& workload, uint64_t write_count,
                                             FsckOptions fsck_options) {
  Machine m(config_);
  // Write #1 is the first write of the RUN: format writes (done at
  // machine construction, before any crash point is reachable) are not
  // part of the sweepable space.
  const uint64_t target = m.image().WriteCount() + write_count;
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  m.engine().RunUntil([&] { return m.image().WriteCount() >= target; });
  return CrashAndCheck(&m, state, config_.scheme, fsck_options);
}

CrashResult CrashHarness::RunAndCrashAtWriteTorn(const Workload& workload,
                                                 uint64_t write_count,
                                                 FsckOptions fsck_options) {
  Machine m(config_);
  const uint64_t target = m.image().WriteCount() + write_count;
  m.image().ArmTornWrite(target);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  m.engine().RunUntil([&] { return m.image().WriteCount() >= target; });
  return CrashAndCheck(&m, state, config_.scheme, fsck_options);
}

DiskImage CrashHarness::CrashImageAtWrite(const Workload& workload, uint64_t write_count) {
  Machine m(config_);
  const uint64_t target = m.image().WriteCount() + write_count;
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  m.engine().RunUntil([&] { return m.image().WriteCount() >= target; });
  return m.CrashNow();
}

DiskImage CrashHarness::CrashImageAtWriteTorn(const Workload& workload,
                                              uint64_t write_count) {
  Machine m(config_);
  const uint64_t target = m.image().WriteCount() + write_count;
  m.image().ArmTornWrite(target);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  m.engine().RunUntil([&] { return m.image().WriteCount() >= target; });
  return m.CrashNow();
}

CrashResult CrashHarness::RunAndCrashAtCounter(const Workload& workload,
                                               const std::string& counter,
                                               uint64_t threshold, uint64_t extra_writes,
                                               FsckOptions fsck_options,
                                               SimDuration deadline) {
  Machine m(config_);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  Counter& c = m.stats().counter(counter);
  const SimTime give_up = m.engine().Now() + deadline;
  m.engine().RunUntil(
      [&] { return c.value() >= threshold || m.engine().Now() >= give_up; });
  // Walk `extra_writes` device writes into the window the counter marks
  // the start of (still bounded by the deadline: the window may be
  // shorter than the requested walk).
  const uint64_t stop_at = m.image().WriteCount() + extra_writes;
  m.engine().RunUntil(
      [&] { return m.image().WriteCount() >= stop_at || m.engine().Now() >= give_up; });
  return CrashAndCheck(&m, state, config_.scheme, fsck_options);
}

DiskImage CrashHarness::CrashImageAtCounter(const Workload& workload,
                                            const std::string& counter,
                                            uint64_t threshold, uint64_t extra_writes,
                                            SimDuration deadline) {
  Machine m(config_);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  Counter& c = m.stats().counter(counter);
  const SimTime give_up = m.engine().Now() + deadline;
  m.engine().RunUntil(
      [&] { return c.value() >= threshold || m.engine().Now() >= give_up; });
  const uint64_t stop_at = m.image().WriteCount() + extra_writes;
  m.engine().RunUntil(
      [&] { return m.image().WriteCount() >= stop_at || m.engine().Now() >= give_up; });
  return m.CrashNow();
}

CrashResult CrashHarness::RunAndCrashAtCheckpoint(const Workload& workload,
                                                  uint64_t checkpoint_number,
                                                  uint64_t extra_writes,
                                                  FsckOptions fsck_options) {
  return RunAndCrashAtCounter(workload, "journal.checkpoints", checkpoint_number,
                              extra_writes, fsck_options);
}

uint64_t CrashHarness::MeasureWrites(const Workload& workload, SimDuration settle) {
  Machine m(config_);
  const uint64_t base = m.image().WriteCount();  // Format writes: not sweepable.
  Proc proc = m.MakeProc("measure-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "measure-workload");
  m.engine().RunUntil([&] { return state.done; });
  SimTime end = m.engine().Now() + settle;
  m.engine().RunUntil([&] { return m.engine().Now() >= end; });
  return m.image().WriteCount() - base;
}

uint64_t CrashHarness::MeasureCounter(const Workload& workload, const std::string& counter,
                                      SimDuration settle) {
  Machine m(config_);
  Proc proc = m.MakeProc("measure-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "measure-workload");
  m.engine().RunUntil([&] { return state.done; });
  SimTime end = m.engine().Now() + settle;
  m.engine().RunUntil([&] { return m.engine().Now() >= end; });
  return m.stats().counter(counter).value();
}

uint64_t CrashHarness::MeasureEvents(const Workload& workload, SimDuration settle) {
  Machine m(config_);
  Proc proc = m.MakeProc("measure-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "measure-workload");
  m.engine().RunUntil([&] { return state.done; });
  // Let the syncer settle deferred work so the sweep covers post-workload
  // flushing windows too.
  SimTime end = m.engine().Now() + settle;
  m.engine().RunUntil([&] { return m.engine().Now() >= end; });
  return m.engine().EventsProcessed();
}

}  // namespace mufs
