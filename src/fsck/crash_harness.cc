#include "src/fsck/crash_harness.h"

namespace mufs {

namespace {

struct RunState {
  bool done = false;
};

Task<void> WorkloadRoot(Machine* m, Proc* proc, const CrashHarness::Workload* workload,
                        RunState* state) {
  co_await m->Boot(*proc);
  co_await (*workload)(*m, *proc);
  state->done = true;
}

}  // namespace

CrashResult CrashHarness::RunAndCrash(const Workload& workload, uint64_t crash_after_events,
                                      FsckOptions fsck_options) {
  Machine m(config_);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");

  // Run until the crash point. If the workload finishes first, keep the
  // world running (syncer flushing) until the event budget is spent or
  // the system goes quiet.
  m.engine().RunUntil([&] { return m.engine().EventsProcessed() >= crash_after_events; });

  CrashResult result;
  result.workload_finished = state.done;
  result.events_run = m.engine().EventsProcessed();
  result.crash_time = m.engine().Now();
  DiskImage snapshot = m.CrashNow();
  if (config_.scheme == Scheme::kJournaling) {
    result.replay = JournalRecovery(&snapshot).Run();
  }
  FsckChecker checker(&snapshot, fsck_options);
  result.report = checker.Check();
  return result;
}

CrashResult CrashHarness::RunAndCrashAtWrite(const Workload& workload, uint64_t write_count,
                                             FsckOptions fsck_options) {
  Machine m(config_);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  m.engine().RunUntil([&] { return m.image().WriteCount() >= write_count; });

  CrashResult result;
  result.workload_finished = state.done;
  result.events_run = m.engine().EventsProcessed();
  result.crash_time = m.engine().Now();
  DiskImage snapshot = m.CrashNow();
  if (config_.scheme == Scheme::kJournaling) {
    result.replay = JournalRecovery(&snapshot).Run();
  }
  FsckChecker checker(&snapshot, fsck_options);
  result.report = checker.Check();
  return result;
}

DiskImage CrashHarness::CrashImageAtWrite(const Workload& workload, uint64_t write_count) {
  Machine m(config_);
  Proc proc = m.MakeProc("crash-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "crash-workload");
  m.engine().RunUntil([&] { return m.image().WriteCount() >= write_count; });
  return m.CrashNow();
}

uint64_t CrashHarness::MeasureWrites(const Workload& workload, SimDuration settle) {
  Machine m(config_);
  Proc proc = m.MakeProc("measure-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "measure-workload");
  m.engine().RunUntil([&] { return state.done; });
  SimTime end = m.engine().Now() + settle;
  m.engine().RunUntil([&] { return m.engine().Now() >= end; });
  return m.image().WriteCount();
}

uint64_t CrashHarness::MeasureEvents(const Workload& workload, SimDuration settle) {
  Machine m(config_);
  Proc proc = m.MakeProc("measure-user");
  RunState state;
  m.engine().Spawn(WorkloadRoot(&m, &proc, &workload, &state), "measure-workload");
  m.engine().RunUntil([&] { return state.done; });
  // Let the syncer settle deferred work so the sweep covers post-workload
  // flushing windows too.
  SimTime end = m.engine().Now() + settle;
  m.engine().RunUntil([&] { return m.engine().Now() >= end; });
  return m.engine().EventsProcessed();
}

}  // namespace mufs
