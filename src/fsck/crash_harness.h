// Crash harness: run a workload on a Machine, pull the (virtual) power
// cord at a chosen moment, and fsck the resulting stable-storage image.
//
// Because the simulation is deterministic, "crash points" are expressed
// as event counts: the same workload crashed at event N always yields the
// same image, so property tests can sweep N and pin down exactly which
// windows violate integrity under which scheme.
#ifndef MUFS_SRC_FSCK_CRASH_HARNESS_H_
#define MUFS_SRC_FSCK_CRASH_HARNESS_H_

#include <functional>
#include <string>

#include "src/core/machine.h"
#include "src/fsck/fsck.h"
#include "src/fsck/pfsck.h"
#include "src/journal/journal_recovery.h"

namespace mufs {

struct CrashResult {
  bool workload_finished = false;  // Workload completed before the crash.
  uint64_t events_run = 0;
  SimTime crash_time = 0;
  uint64_t torn_writes = 0;  // Torn device writes on the crash image.
  // For journaling machines the harness replays the log into the crash
  // image before fsck (that IS the scheme's recovery path); `replay`
  // reports what the replay did. Zeros for every other scheme.
  JournalReplayReport replay;
  FsckReport report;
  // Phase accounting when fsck_options.threads > 1 routed the check
  // through the parallel checker; all-zero on the serial path.
  PfsckStats fsck_stats;
};

class CrashHarness {
 public:
  // The workload receives the machine and a proc; it must co_return when
  // logically complete (the harness handles Boot).
  using Workload = std::function<Task<void>(Machine&, Proc&)>;

  explicit CrashHarness(MachineConfig config) : config_(config) {}

  // Runs the workload and crashes after `crash_after_events` engine
  // events (or when the workload and all background activity finish,
  // whichever comes first), then checks the image.
  CrashResult RunAndCrash(const Workload& workload, uint64_t crash_after_events,
                          FsckOptions fsck_options = {});

  // Stable storage only changes when a device write commits, so the set
  // of distinct crash images is indexed by write count. Crashing right
  // after the Nth write (for every N) covers EVERY reachable on-disk
  // state of the run. Write #1 is the first write of the RUN: the format
  // writes done at machine construction are not sweepable crash states
  // (no workload has started), so they are excluded from the index — and
  // MeasureWrites() returns the matching run-relative upper bound.
  CrashResult RunAndCrashAtWrite(const Workload& workload, uint64_t write_count,
                                 FsckOptions fsck_options = {});

  // Mid-write crash: the power cut lands DURING the Nth device write, so
  // that block persists torn (sector prefix only - DiskImage::WriteTorn)
  // and the crash image is taken right there. Sweeping N explores the
  // torn twin of every write-boundary crash state.
  CrashResult RunAndCrashAtWriteTorn(const Workload& workload, uint64_t write_count,
                                     FsckOptions fsck_options = {});

  // Like RunAndCrashAtWrite but hands back the crash image itself instead
  // of checking it - for tests that mutate the image (fsck repair).
  DiskImage CrashImageAtWrite(const Workload& workload, uint64_t write_count);

  // Torn twin of CrashImageAtWrite: the final (Nth) write lands torn.
  DiskImage CrashImageAtWriteTorn(const Workload& workload, uint64_t write_count);

  // Protocol-edge crash: run until a named counter (e.g.
  // "journal.checkpoints" or "syncer.passes") reaches `threshold`, let
  // `extra_writes` more device writes commit, then pull the cord.
  // Sweeping extra_writes walks crash points THROUGH the protocol window
  // that the counter marks the start of (a checkpoint's flush + horizon
  // restamp; a syncer flush burst). Gives up at `deadline` of simulated
  // time if the counter never gets there (workload too small).
  CrashResult RunAndCrashAtCounter(const Workload& workload, const std::string& counter,
                                   uint64_t threshold, uint64_t extra_writes,
                                   FsckOptions fsck_options = {},
                                   SimDuration deadline = Sec(300));

  // Power cut during a journal checkpoint: counter sugar over
  // RunAndCrashAtCounter("journal.checkpoints", n, extra).
  CrashResult RunAndCrashAtCheckpoint(const Workload& workload, uint64_t checkpoint_number,
                                      uint64_t extra_writes, FsckOptions fsck_options = {});

  // Like RunAndCrashAtCounter but hands back the crash image itself -
  // for tests that replay / repair the image themselves.
  DiskImage CrashImageAtCounter(const Workload& workload, const std::string& counter,
                                uint64_t threshold, uint64_t extra_writes,
                                SimDuration deadline = Sec(300));

  // Runs the workload to completion (plus `settle` of idle syncer time),
  // returning the total number of events - the sweep upper bound.
  uint64_t MeasureEvents(const Workload& workload, SimDuration settle = Sec(3));

  // Total device writes committed over the full run (+settle): the
  // write-sweep upper bound.
  uint64_t MeasureWrites(const Workload& workload, SimDuration settle = Sec(3));

  // Final value of a named counter over the full run (+settle): the
  // sweep upper bound for RunAndCrashAtCounter thresholds.
  uint64_t MeasureCounter(const Workload& workload, const std::string& counter,
                          SimDuration settle = Sec(3));

 private:
  MachineConfig config_;
};

}  // namespace mufs

#endif  // MUFS_SRC_FSCK_CRASH_HARNESS_H_
