// Crash harness: run a workload on a Machine, pull the (virtual) power
// cord at a chosen moment, and fsck the resulting stable-storage image.
//
// Because the simulation is deterministic, "crash points" are expressed
// as event counts: the same workload crashed at event N always yields the
// same image, so property tests can sweep N and pin down exactly which
// windows violate integrity under which scheme.
#ifndef MUFS_SRC_FSCK_CRASH_HARNESS_H_
#define MUFS_SRC_FSCK_CRASH_HARNESS_H_

#include <functional>
#include <string>

#include "src/core/machine.h"
#include "src/fsck/fsck.h"
#include "src/journal/journal_recovery.h"

namespace mufs {

struct CrashResult {
  bool workload_finished = false;  // Workload completed before the crash.
  uint64_t events_run = 0;
  SimTime crash_time = 0;
  // For journaling machines the harness replays the log into the crash
  // image before fsck (that IS the scheme's recovery path); `replay`
  // reports what the replay did. Zeros for every other scheme.
  JournalReplayReport replay;
  FsckReport report;
};

class CrashHarness {
 public:
  // The workload receives the machine and a proc; it must co_return when
  // logically complete (the harness handles Boot).
  using Workload = std::function<Task<void>(Machine&, Proc&)>;

  explicit CrashHarness(MachineConfig config) : config_(config) {}

  // Runs the workload and crashes after `crash_after_events` engine
  // events (or when the workload and all background activity finish,
  // whichever comes first), then checks the image.
  CrashResult RunAndCrash(const Workload& workload, uint64_t crash_after_events,
                          FsckOptions fsck_options = {});

  // Stable storage only changes when a device write commits, so the set
  // of distinct crash images is indexed by write count. Crashing right
  // after the Nth write (for every N) covers EVERY reachable on-disk
  // state of the run.
  CrashResult RunAndCrashAtWrite(const Workload& workload, uint64_t write_count,
                                 FsckOptions fsck_options = {});

  // Like RunAndCrashAtWrite but hands back the crash image itself instead
  // of checking it - for tests that mutate the image (fsck repair).
  DiskImage CrashImageAtWrite(const Workload& workload, uint64_t write_count);

  // Runs the workload to completion (plus `settle` of idle syncer time),
  // returning the total number of events - the sweep upper bound.
  uint64_t MeasureEvents(const Workload& workload, SimDuration settle = Sec(3));

  // Total device writes committed over the full run (+settle): the
  // write-sweep upper bound.
  uint64_t MeasureWrites(const Workload& workload, SimDuration settle = Sec(3));

 private:
  MachineConfig config_;
};

}  // namespace mufs

#endif  // MUFS_SRC_FSCK_CRASH_HARNESS_H_
