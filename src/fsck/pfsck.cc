#include "src/fsck/pfsck.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mufs {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

DiskInode ReadInodeAt(const DiskImage* image, const SuperBlock& sb, uint32_t ino) {
  BlockData blk;
  image->Read(sb.ItableBlock(ino), &blk);
  DiskInode di;
  memcpy(&di, blk.data() + sb.ItableOffset(ino), sizeof(di));
  return di;
}

// Mirrors the serial checker's directory-entry sanity test exactly.
bool DirNameOk(const DirEntry& de) {
  bool name_ok = de.name[0] != '\0';
  for (size_t i = 0; name_ok && i < kMaxNameLen && de.name[i] != '\0'; ++i) {
    if (!isprint(static_cast<unsigned char>(de.name[i]))) {
      name_ok = false;
    }
  }
  return name_ok;
}

// ---------------------------------------------------------------------
// Phase 1: optimistic claim collection
// ---------------------------------------------------------------------

// One ClaimBlock call the serial checker would make, in its exact order.
// `subtree` is the number of following attempts inside this attempt's
// indirect subtree: when the claim fails at merge time, the replay skips
// them, exactly as the serial walk never descends an unclaimed indirect
// block. Out-of-range attempts are emitted with an empty subtree (the
// serial walk never reads them either).
struct ClaimAttempt {
  uint32_t blkno = 0;
  uint32_t subtree = 0;
  bool leaf = false;  // Data block: stale-check candidate if claimed.
  bool bad = false;   // Outside the data area: kBadBlockPointer.
};

struct InodeScan {
  uint32_t ino = 0;
  uint32_t generation = 0;
  bool is_dir = false;
  std::vector<ClaimAttempt> attempts;
};

void EmitLeaf(const SuperBlock& sb, uint32_t blkno, InodeScan* out) {
  if (blkno == 0) {
    return;
  }
  ClaimAttempt a;
  a.blkno = blkno;
  a.leaf = true;
  a.bad = blkno < sb.data_start || blkno >= sb.total_blocks;
  out->attempts.push_back(a);
}

void EmitIndirect(const DiskImage* image, const SuperBlock& sb, uint32_t iblk, int depth,
                  InodeScan* out) {
  if (iblk == 0) {
    return;
  }
  ClaimAttempt a;
  a.blkno = iblk;
  a.bad = iblk < sb.data_start || iblk >= sb.total_blocks;
  size_t slot = out->attempts.size();
  out->attempts.push_back(a);
  if (a.bad) {
    return;
  }
  BlockData blk;
  image->Read(iblk, &blk);
  const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
  for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
    if (depth == 1) {
      EmitLeaf(sb, ptrs[i], out);
    } else if (ptrs[i] != 0) {
      EmitIndirect(image, sb, ptrs[i], depth - 1, out);
    }
  }
  out->attempts[slot].subtree = static_cast<uint32_t>(out->attempts.size() - slot - 1);
}

void ScanInode(const DiskImage* image, const SuperBlock& sb, uint32_t ino,
               const DiskInode& di, std::vector<InodeScan>* out) {
  InodeScan scan;
  scan.ino = ino;
  scan.generation = di.generation;
  scan.is_dir = di.IsDir();
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    EmitLeaf(sb, di.direct[i], &scan);
  }
  EmitIndirect(image, sb, di.indirect, /*depth=*/1, &scan);
  EmitIndirect(image, sb, di.double_indirect, /*depth=*/2, &scan);
  out->push_back(std::move(scan));
}

// ---------------------------------------------------------------------
// Phase 2: work-stealing directory walk
// ---------------------------------------------------------------------

// Everything the serial per-directory processing produces, computed
// independently of walk order (the image is immutable during a check).
struct DirScan {
  bool is_dir = false;
  std::vector<FsckViolation> violations;  // Garbage/dangling, entry order.
  std::vector<uint32_t> children;         // Subdirectory inos, entry order.
};

struct DirWalk {
  const DiskImage* image = nullptr;
  SuperBlock sb;
  std::vector<std::atomic<uint8_t>> visited;
  std::vector<DirScan> results;
  std::vector<std::deque<uint32_t>> queues;
  std::vector<std::mutex> queue_mu;
  std::atomic<int64_t> pending{0};
  std::atomic<uint64_t> steals{0};

  DirWalk(const DiskImage* img, const SuperBlock& super, uint32_t workers)
      : image(img),
        sb(super),
        visited(super.total_inodes),
        results(super.total_inodes),
        queues(workers),
        queue_mu(workers) {}

  void Seed() {
    visited[kRootIno].store(1, std::memory_order_relaxed);
    queues[0].push_back(kRootIno);
    pending.store(1);
  }

  std::optional<uint32_t> TakeJob(uint32_t worker, uint64_t* local_steals) {
    {
      std::lock_guard<std::mutex> lock(queue_mu[worker]);
      if (!queues[worker].empty()) {
        uint32_t job = queues[worker].front();
        queues[worker].pop_front();
        return job;
      }
    }
    for (size_t i = 1; i < queues.size(); ++i) {
      size_t victim = (worker + i) % queues.size();
      std::lock_guard<std::mutex> lock(queue_mu[victim]);
      if (!queues[victim].empty()) {
        uint32_t job = queues[victim].back();
        queues[victim].pop_back();
        ++*local_steals;
        ++steals;
        return job;
      }
    }
    return std::nullopt;
  }

  // Parses one directory exactly as FsckChecker::WalkDirectories +
  // CheckDirBlock do, into results[dir_ino]; newly discovered
  // subdirectories go onto this worker's deque.
  void Process(uint32_t worker, uint32_t dir_ino,
               std::unordered_map<uint32_t, uint32_t>* ref_counts) {
    DirScan& out = results[dir_ino];
    DiskInode di = ReadInodeAt(image, sb, dir_ino);
    out.is_dir = di.IsDir();
    if (out.is_dir) {
      std::vector<uint32_t> blocks;
      for (uint32_t i = 0; i < kNumDirect; ++i) {
        if (di.direct[i] != 0) {
          blocks.push_back(di.direct[i]);
        }
      }
      if (di.indirect != 0) {
        BlockData blk;
        image->Read(di.indirect, &blk);
        const uint32_t* ptrs = reinterpret_cast<const uint32_t*>(blk.data());
        for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
          if (ptrs[i] != 0) {
            blocks.push_back(ptrs[i]);
          }
        }
      }
      for (uint32_t blkno : blocks) {
        if (blkno < sb.data_start || blkno >= sb.total_blocks) {
          continue;
        }
        BlockData blk;
        image->Read(blkno, &blk);
        for (uint32_t e = 0; e < kDirEntriesPerBlock; ++e) {
          DirEntry de;
          memcpy(&de, blk.data() + e * kDirEntrySize, sizeof(de));
          if (de.ino == 0) {
            continue;
          }
          if (de.ino >= sb.total_inodes || !DirNameOk(de) || de.reserved != 0) {
            out.violations.push_back(
                {FsckViolationType::kGarbageDirectory,
                 "dir ino " + std::to_string(dir_ino) + " block " + std::to_string(blkno) +
                     " entry " + std::to_string(e)});
            continue;
          }
          DiskInode target = ReadInodeAt(image, sb, de.ino);
          if (!target.InUse()) {
            out.violations.push_back(
                {FsckViolationType::kDanglingDirEntry,
                 "dir ino " + std::to_string(dir_ino) + " entry '" + std::string(de.Name()) +
                     "' -> free ino " + std::to_string(de.ino)});
            continue;
          }
          ++(*ref_counts)[de.ino];
          if (target.IsDir()) {
            out.children.push_back(de.ino);
          }
        }
      }
      for (uint32_t child : out.children) {
        if (child >= sb.total_inodes) {
          continue;
        }
        uint8_t expected = 0;
        if (visited[child].compare_exchange_strong(expected, 1)) {
          pending.fetch_add(1);
          std::lock_guard<std::mutex> lock(queue_mu[worker]);
          queues[worker].push_back(child);
        }
      }
    }
    pending.fetch_sub(1);
  }
};

// ---------------------------------------------------------------------
// The parallel checker
// ---------------------------------------------------------------------

struct ScanChunks {
  uint32_t first_ino = 0;
  uint32_t total_inodes = 0;
  uint32_t chunk_inodes = 1;
  size_t count = 0;

  ScanChunks(uint32_t first, uint32_t total, uint32_t threads) {
    first_ino = first;
    total_inodes = total;
    uint32_t span = total > first ? total - first : 0;
    size_t want = static_cast<size_t>(threads) * 4;
    chunk_inodes = span == 0 ? 1 : std::max<uint32_t>(1, (span + want - 1) / want);
    count = span == 0 ? 0 : (span + chunk_inodes - 1) / chunk_inodes;
  }

  uint32_t Begin(size_t c) const {
    return first_ino + static_cast<uint32_t>(c) * chunk_inodes;
  }
  uint32_t End(size_t c) const {
    return std::min(total_inodes, Begin(c) + chunk_inodes);
  }
  // Which chunk scanned `ino` - the "partition" for conflict accounting.
  size_t Of(uint32_t ino) const { return (ino - first_ino) / chunk_inodes; }
};

// Runs fn(chunk_index) over [0, nchunks) on `threads` workers pulling
// from a shared atomic index.
template <typename Fn>
void ParallelChunks(uint32_t threads, size_t nchunks, Fn&& fn) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  uint32_t workers = std::min<uint32_t>(threads, nchunks == 0 ? 1 : nchunks);
  pool.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      while (true) {
        size_t c = next.fetch_add(1);
        if (c >= nchunks) {
          break;
        }
        fn(c);
      }
    });
  }
  for (auto& th : pool) {
    th.join();
  }
}

FsckReport ParallelCheck(const DiskImage* image, const FsckOptions& options,
                         PfsckStats* stats) {
  const uint32_t threads = options.threads;
  FsckReport report;
  if (stats != nullptr) {
    stats->threads = threads;
  }

  BlockData blk0;
  image->Read(0, &blk0);
  SuperBlock sb;
  memcpy(&sb, blk0.data(), sizeof(sb));
  if (sb.magic != kFsMagic || sb.total_blocks == 0 || sb.total_inodes == 0) {
    report.violations.push_back({FsckViolationType::kBadSuperblock, "magic/geometry"});
    return report;
  }

  // --- pipelined phases 1+2: inode scan chunks + dir-walk deques ------
  ScanChunks chunks(kRootIno, sb.total_inodes, threads);
  std::vector<std::vector<InodeScan>> chunk_scans(chunks.count);
  std::atomic<size_t> next_chunk{0};
  DirWalk walk(image, sb, threads);
  walk.Seed();
  std::vector<std::unordered_map<uint32_t, uint32_t>> worker_refs(threads);
  std::atomic<uint64_t> scan_ns{0};
  std::atomic<uint64_t> walk_ns{0};

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      uint64_t local_steals = 0;
      uint64_t my_scan_ns = 0;
      uint64_t my_walk_ns = 0;
      while (true) {
        // Directory frontier first: dir jobs are the scarce, dynamically
        // discovered resource; scan chunks are the abundant backfill.
        if (std::optional<uint32_t> job = walk.TakeJob(w, &local_steals)) {
          uint64_t t0 = NowNs();
          walk.Process(w, *job, &worker_refs[w]);
          my_walk_ns += NowNs() - t0;
          continue;
        }
        if (next_chunk.load() < chunks.count) {
          size_t c = next_chunk.fetch_add(1);
          if (c < chunks.count) {
            uint64_t t0 = NowNs();
            for (uint32_t ino = chunks.Begin(c); ino < chunks.End(c); ++ino) {
              DiskInode di = ReadInodeAt(image, sb, ino);
              if (di.InUse()) {
                ScanInode(image, sb, ino, di, &chunk_scans[c]);
              }
            }
            my_scan_ns += NowNs() - t0;
            continue;
          }
        }
        if (walk.pending.load() == 0 && next_chunk.load() >= chunks.count) {
          break;
        }
        std::this_thread::yield();
      }
      scan_ns.fetch_add(my_scan_ns);
      walk_ns.fetch_add(my_walk_ns);
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  if (stats != nullptr) {
    stats->inode_scan_ns += scan_ns.load();
    stats->dir_walk_ns += walk_ns.load();
    stats->work_steals += walk.steals.load();
  }

  // --- serial merge: claim replay in exact (ino, pointer) order -------
  uint64_t merge_t0 = NowNs();
  std::unordered_map<uint32_t, uint32_t> block_owner;
  // Per scanned inode: its claim violations and (for regular files) the
  // successfully claimed data blocks, both in serial order.
  struct InodePass1 {
    const InodeScan* scan = nullptr;
    std::vector<FsckViolation> claim_violations;
    std::vector<uint32_t> stale_candidates;
    std::vector<FsckViolation> stale_violations;
  };
  std::vector<InodePass1> pass1;
  for (const auto& scans : chunk_scans) {
    pass1.reserve(pass1.size() + scans.size());
    for (const auto& scan : scans) {
      pass1.push_back({&scan, {}, {}, {}});
    }
  }
  for (auto& p : pass1) {
    const InodeScan& scan = *p.scan;
    ++report.inodes_in_use;
    if (scan.is_dir) {
      ++report.dirs_seen;
    } else {
      ++report.files_seen;
    }
    const auto& attempts = scan.attempts;
    size_t k = 0;
    while (k < attempts.size()) {
      const ClaimAttempt& a = attempts[k];
      if (a.bad) {
        p.claim_violations.push_back(
            {FsckViolationType::kBadBlockPointer,
             "ino " + std::to_string(scan.ino) + " -> block " + std::to_string(a.blkno)});
        ++k;
        continue;
      }
      auto [it, inserted] = block_owner.try_emplace(a.blkno, scan.ino);
      if (!inserted) {
        p.claim_violations.push_back(
            {FsckViolationType::kDuplicateBlockClaim,
             "block " + std::to_string(a.blkno) + " claimed by ino " +
                 std::to_string(it->second) + " and ino " + std::to_string(scan.ino)});
        if (stats != nullptr && chunks.Of(it->second) != chunks.Of(scan.ino)) {
          ++stats->merge_conflicts;
        }
        k += 1 + a.subtree;  // Serial never walks under a lost claim.
        continue;
      }
      ++report.blocks_claimed;
      if (a.leaf && options.check_stale_data && !scan.is_dir) {
        p.stale_candidates.push_back(a.blkno);
      }
      ++k;
    }
  }

  // Stitch directory results into the serial BFS order (no I/O: the
  // recorded children lists fully determine the serial queue).
  std::vector<FsckViolation> dir_violations;
  std::unordered_map<uint32_t, uint32_t> child_dir_counts;
  {
    std::deque<uint32_t> queue;
    std::vector<bool> visited(sb.total_inodes, false);
    queue.push_back(kRootIno);
    visited[kRootIno] = true;
    while (!queue.empty()) {
      uint32_t dir_ino = queue.front();
      queue.pop_front();
      const DirScan& r = walk.results[dir_ino];
      if (!r.is_dir) {
        continue;
      }
      dir_violations.insert(dir_violations.end(), r.violations.begin(), r.violations.end());
      child_dir_counts[dir_ino] = static_cast<uint32_t>(r.children.size());
      for (uint32_t child : r.children) {
        if (child < sb.total_inodes && !visited[child]) {
          visited[child] = true;
          queue.push_back(child);
        }
      }
    }
  }
  std::unordered_map<uint32_t, uint32_t> ref_counts;
  for (const auto& local : worker_refs) {
    for (const auto& [ino, n] : local) {
      ref_counts[ino] += n;
    }
  }
  if (stats != nullptr) {
    stats->merge_ns += NowNs() - merge_t0;
  }

  // --- stale-data checks on the resolved data blocks (parallel) -------
  if (options.check_stale_data) {
    uint64_t t0 = NowNs();
    ParallelChunks(threads, pass1.size(), [&](size_t i) {
      InodePass1& p = pass1[i];
      const InodeScan& scan = *p.scan;
      for (uint32_t blkno : p.stale_candidates) {
        if (!image->EverWritten(blkno)) {
          continue;
        }
        BlockData blk;
        image->Read(blkno, &blk);
        DataBlockTag tag;
        memcpy(&tag, blk.data(), sizeof(tag));
        bool all_zero = true;
        for (size_t b = 0; b < sizeof(tag); ++b) {
          if (blk[b] != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero) {
          continue;
        }
        if (tag.magic != kDataTagMagic || tag.ino != options.tag_ino_base + scan.ino ||
            tag.generation != scan.generation) {
          p.stale_violations.push_back(
              {FsckViolationType::kStaleDataExposed,
               "ino " + std::to_string(scan.ino) + " gen " + std::to_string(scan.generation) +
                   " block " + std::to_string(blkno) + " holds foreign data (tag ino " +
                   std::to_string(tag.ino) + " gen " + std::to_string(tag.generation) + ")"});
        }
      }
    });
    if (stats != nullptr) {
      stats->inode_scan_ns += NowNs() - t0;
    }
  }

  // Assemble pass-1 + pass-2 violations in serial order.
  for (const auto& p : pass1) {
    report.violations.insert(report.violations.end(), p.claim_violations.begin(),
                             p.claim_violations.end());
    report.violations.insert(report.violations.end(), p.stale_violations.begin(),
                             p.stale_violations.end());
  }
  report.violations.insert(report.violations.end(), dir_violations.begin(),
                           dir_violations.end());

  // --- phase 3: link-count audit (parallel ranges, ordered concat) ----
  uint64_t audit_t0 = NowNs();
  ScanChunks audit_chunks(kRootIno + 1, sb.total_inodes, threads);
  struct AuditOut {
    std::vector<FsckViolation> violations;
    std::vector<FsckFixable> fixables;
  };
  std::vector<AuditOut> audit(audit_chunks.count);
  ParallelChunks(threads, audit_chunks.count, [&](size_t c) {
    AuditOut& out = audit[c];
    for (uint32_t ino = audit_chunks.Begin(c); ino < audit_chunks.End(c); ++ino) {
      DiskInode di = ReadInodeAt(image, sb, ino);
      if (!di.InUse()) {
        continue;
      }
      uint32_t refs = 0;
      if (auto it = ref_counts.find(ino); it != ref_counts.end()) {
        refs = it->second;
      }
      uint32_t minimum = refs;
      uint32_t expected = refs;
      if (di.IsDir()) {
        uint32_t children = 0;
        if (auto cit = child_dir_counts.find(ino); cit != child_dir_counts.end()) {
          children = cit->second;
        }
        if (refs > 0) {
          minimum = refs + 1;
          expected = refs + 1 + children;
        }
      }
      if (di.nlink < minimum) {
        out.violations.push_back(
            {FsckViolationType::kLinkCountTooLow,
             "ino " + std::to_string(ino) + " nlink " + std::to_string(di.nlink) + " refs " +
                 std::to_string(refs)});
      } else if (refs == 0) {
        out.fixables.push_back({"orphaned ino " + std::to_string(ino)});
      } else if (di.nlink != expected) {
        out.fixables.push_back({"miscounted nlink on ino " + std::to_string(ino) + " nlink " +
                                std::to_string(di.nlink) + " expected " +
                                std::to_string(expected)});
      }
    }
  });
  for (const auto& out : audit) {
    report.violations.insert(report.violations.end(), out.violations.begin(),
                             out.violations.end());
    report.fixables.insert(report.fixables.end(), out.fixables.begin(), out.fixables.end());
  }

  // --- phase 4: bitmap audit ------------------------------------------
  ScanChunks bm_chunks(kRootIno, sb.total_inodes, threads);
  std::vector<std::vector<FsckFixable>> bm_fixables(bm_chunks.count);
  ParallelChunks(threads, bm_chunks.count, [&](size_t c) {
    for (uint32_t ino = bm_chunks.Begin(c); ino < bm_chunks.End(c); ++ino) {
      BlockData bm;
      image->Read(sb.inode_bitmap_start + ino / kBitsPerBlock, &bm);
      bool marked = BitmapGet(bm.data(), ino % kBitsPerBlock);
      bool in_use = ReadInodeAt(image, sb, ino).InUse();
      if (in_use && !marked) {
        bm_fixables[c].push_back(
            {"ino " + std::to_string(ino) + " in use but free in bitmap"});
      }
    }
  });
  for (const auto& fx : bm_fixables) {
    report.fixables.insert(report.fixables.end(), fx.begin(), fx.end());
  }
  // Block-bitmap part: iterate the merged owner map. Its iteration order
  // matches the serial checker's map because both received the identical
  // try_emplace sequence. Bitmap blocks are prefetched once; the serial
  // checker re-reads per entry but sees the same bytes.
  std::vector<BlockData> block_bitmap(sb.block_bitmap_blocks);
  for (uint32_t b = 0; b < sb.block_bitmap_blocks; ++b) {
    image->Read(sb.block_bitmap_start + b, &block_bitmap[b]);
  }
  for (const auto& [blkno, owner] : block_owner) {
    (void)owner;
    const BlockData& bm = block_bitmap[blkno / kBitsPerBlock];
    if (!BitmapGet(bm.data(), blkno % kBitsPerBlock)) {
      report.fixables.push_back(
          {"block " + std::to_string(blkno) + " in use but free in bitmap"});
    }
  }
  if (stats != nullptr) {
    stats->audit_ns += NowNs() - audit_t0;
  }
  return report;
}

}  // namespace

void RegisterPfsckStats(StatsRegistry* registry, const PfsckStats& stats) {
  registry->counter("fsck.phase_inode_scan_ns").Inc(stats.inode_scan_ns);
  registry->counter("fsck.phase_dir_walk_ns").Inc(stats.dir_walk_ns);
  registry->counter("fsck.phase_merge_ns").Inc(stats.merge_ns);
  registry->counter("fsck.phase_audit_ns").Inc(stats.audit_ns);
  registry->counter("fsck.repair_merge_ns").Inc(stats.repair_merge_ns);
  registry->counter("fsck.work_steals").Inc(stats.work_steals);
  registry->counter("fsck.merge_conflicts").Inc(stats.merge_conflicts);
  registry->counter("fsck.shard_checks").Inc(stats.shard_checks);
  registry->gauge("fsck.threads").Set(stats.threads);
}

FsckReport PfsckCheck(const DiskImage* image, const FsckOptions& options,
                      PfsckStats* stats) {
  if (options.threads <= 1) {
    // The guaranteed-identical baseline (also taken for threads == 1:
    // one worker would only add scheduling overhead).
    FsckChecker checker(image, options);
    return checker.Check();
  }
  return ParallelCheck(image, options, stats);
}

FsckRepairReport PfsckRepair(DiskImage* image, const FsckOptions& options,
                             PfsckStats* stats) {
  if (options.threads <= 1) {
    return FsckRepairer(image, options).Repair();
  }
  // Serial repair passes (identical mutations), parallel convergence
  // re-checks. The re-check report is byte-identical to the serial one,
  // so the pass count and the final image are too.
  FsckRepairReport report;
  FsckRepairer repairer(image, options);
  if (!repairer.LoadSuper()) {
    return report;
  }
  for (int pass = 0; pass < kMaxFsckRepairPasses; ++pass) {
    ++report.passes;
    repairer.RunPass(&report);
    FsckReport check = PfsckCheck(image, options, stats);
    if (check.violations.empty() && check.fixables.empty()) {
      report.clean_after = true;
      break;
    }
  }
  return report;
}

namespace {

FsckOptions ShardOptions(const FsckOptions& base, const ShardLayout& layout, uint32_t s,
                         uint32_t inner_threads) {
  FsckOptions opts = base;
  // Shard data blocks are tagged with GLOBAL inode numbers.
  opts.tag_ino_base = s * layout.ino_stride;
  opts.threads = inner_threads;
  return opts;
}

// Thread budget left for inside-shard parallelism once shards run
// concurrently.
uint32_t InnerThreads(uint32_t threads, uint32_t num_shards) {
  if (num_shards == 0 || threads <= num_shards) {
    return 0;
  }
  return threads / num_shards;
}

void MergeShardReport(const FsckReport& shard, FsckReport* total) {
  total->violations.insert(total->violations.end(), shard.violations.begin(),
                           shard.violations.end());
  total->fixables.insert(total->fixables.end(), shard.fixables.begin(),
                         shard.fixables.end());
  total->inodes_in_use += shard.inodes_in_use;
  total->dirs_seen += shard.dirs_seen;
  total->files_seen += shard.files_seen;
  total->blocks_claimed += shard.blocks_claimed;
}

}  // namespace

FsckReport PfsckCheckSharded(const DiskImage& volume, const ShardLayout& layout,
                             const FsckOptions& options, PfsckStats* stats) {
  const uint32_t shards = layout.num_shards;
  if (shards <= 1) {
    return PfsckCheck(&volume, options, stats);
  }
  std::vector<FsckReport> reports(shards);
  std::vector<PfsckStats> shard_stats(shards);
  const uint32_t inner = InnerThreads(options.threads, shards);
  auto check_shard = [&](uint32_t s) {
    DiskImage region = volume.ExtractRegion(s * layout.shard_blocks, layout.shard_blocks);
    reports[s] = PfsckCheck(&region, ShardOptions(options, layout, s, inner),
                            &shard_stats[s]);
  };
  if (options.threads <= 1) {
    for (uint32_t s = 0; s < shards; ++s) {
      check_shard(s);
    }
  } else {
    ParallelChunks(std::min(options.threads, shards), shards,
                   [&](size_t s) { check_shard(static_cast<uint32_t>(s)); });
  }
  FsckReport total;
  for (uint32_t s = 0; s < shards; ++s) {
    MergeShardReport(reports[s], &total);
    if (stats != nullptr) {
      stats->Add(shard_stats[s]);
      ++stats->shard_checks;
    }
  }
  if (stats != nullptr) {
    stats->threads = options.threads;
  }
  return total;
}

std::vector<FsckRepairReport> PfsckRepairSharded(DiskImage* volume,
                                                 const ShardLayout& layout,
                                                 const FsckOptions& options,
                                                 FsckRepairReport* merged,
                                                 PfsckStats* stats) {
  const uint32_t shards = layout.num_shards == 0 ? 1 : layout.num_shards;
  std::vector<FsckRepairReport> reports(shards);
  std::vector<std::optional<DiskImage>> regions(shards);
  std::vector<PfsckStats> shard_stats(shards);
  const uint32_t inner = InnerThreads(options.threads, shards);
  auto repair_shard = [&](uint32_t s) {
    regions[s] = volume->ExtractRegion(s * layout.shard_blocks, layout.shard_blocks);
    reports[s] = PfsckRepair(&*regions[s], ShardOptions(options, layout, s, inner),
                             &shard_stats[s]);
  };
  if (options.threads <= 1 || shards == 1) {
    for (uint32_t s = 0; s < shards; ++s) {
      repair_shard(s);
    }
  } else {
    ParallelChunks(std::min(options.threads, shards), shards,
                   [&](size_t s) { repair_shard(static_cast<uint32_t>(s)); });
  }
  // Serial merge: write changed blocks back into the volume in shard
  // order. Shards are disjoint regions, so the result is byte-identical
  // to repairing them in place sequentially.
  uint64_t merge_t0 = NowNs();
  for (uint32_t s = 0; s < shards; ++s) {
    const DiskImage& region = *regions[s];
    const uint32_t base = s * layout.shard_blocks;
    for (uint32_t blkno : region.WrittenBlocks()) {
      BlockData repaired;
      region.Read(blkno, &repaired);
      BlockData current;
      volume->Read(base + blkno, &current);
      if (memcmp(repaired.data(), current.data(), repaired.size()) != 0) {
        volume->Write(base + blkno, repaired, volume->LastWriteTime());
      }
    }
  }
  if (stats != nullptr) {
    stats->repair_merge_ns += NowNs() - merge_t0;
    for (uint32_t s = 0; s < shards; ++s) {
      stats->Add(shard_stats[s]);
      ++stats->shard_checks;
    }
    stats->threads = options.threads;
  }
  if (merged != nullptr) {
    *merged = {};
    for (const auto& r : reports) {
      merged->passes = std::max(merged->passes, r.passes);
      merged->dir_entries_cleared += r.dir_entries_cleared;
      merged->link_counts_fixed += r.link_counts_fixed;
      merged->inodes_cleared += r.inodes_cleared;
      merged->pointers_cleared += r.pointers_cleared;
      merged->data_blocks_scrubbed += r.data_blocks_scrubbed;
      merged->bitmap_bits_fixed += r.bitmap_bits_fixed;
    }
    merged->clean_after = true;
    for (const auto& r : reports) {
      merged->clean_after = merged->clean_after && r.clean_after;
    }
  }
  return reports;
}

}  // namespace mufs
