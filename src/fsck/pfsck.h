// Parallel fsck (pFSCK-style): threaded check/repair over the static
// crash image, running real std::thread workers OUTSIDE the sim clock.
//
// The contract is observational equivalence, not just speed: for any
// image and any FsckOptions::threads value, PfsckCheck returns an
// FsckReport byte-identical to FsckChecker::Check() - same violations
// and fixables in the same order with the same detail strings, same
// counters - and PfsckRepair leaves the image byte-identical to
// FsckRepairer::Repair(). The Borrill crash-consistency framing demands
// this: a recovery tool that is only "mostly" the serial one silently
// changes which crash states count as recoverable.
//
// How equivalence is kept while still scanning in parallel:
//
//   Phase 1 (parallel)  inode-table ranges are scanned by a worker pool;
//                       each worker optimistically walks every pointer
//                       tree and records ordered CLAIM ATTEMPTS (with
//                       subtree extents) instead of mutating a shared
//                       claim map.
//   Phase 2 (parallel)  the directory tree is walked through per-worker
//                       work-stealing deques seeded with the root; each
//                       discovered directory is parsed exactly once
//                       (atomic visit flags) into an order-independent
//                       per-directory result. Phases 1 and 2 are
//                       pipelined: every worker drains directory work
//                       first and falls back to inode-scan chunks, so
//                       dir discovery overlaps the table scan.
//   Merge (serial)      claim attempts are replayed in the serial
//                       checker's exact (ino, pointer) order against one
//                       owner map - duplicate winners are therefore
//                       deterministic (lowest ino, first pointer), and
//                       cross-partition duplicates surface here as
//                       merge conflicts. Directory results are stitched
//                       into the serial BFS order by replaying the BFS
//                       over the recorded children lists (no I/O).
//   Phase 3/4 (parallel) link-count audit and bitmap audit run over
//                       inode ranges; per-range findings concatenate in
//                       range order. The block-bitmap audit iterates the
//                       merged owner map, whose iteration order matches
//                       the serial checker's because it received the
//                       identical insertion sequence.
//
// Repair parallelism comes from two places: the convergence re-check
// after every repair pass uses the parallel checker, and sharded volume
// images repair all shard regions concurrently (each shard is an
// independent filesystem in its own region) with a serial merge-back.
// The mutating repair pass itself stays the serial FsckRepairer pass,
// which is what makes repaired-image byte-identity trivial to prove.
#ifndef MUFS_SRC_FSCK_PFSCK_H_
#define MUFS_SRC_FSCK_PFSCK_H_

#include <cstdint>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/fsck/fsck.h"
#include "src/stats/stats_registry.h"

namespace mufs {

// Wall-clock phase accounting for a parallel check/repair run. Scan and
// walk times are cumulative worker-busy nanoseconds (the two phases are
// pipelined, so per-phase wall time is not well defined); merge and
// audit are wall-clock. Work-steal counts are scheduling-dependent and
// therefore NOT deterministic; everything in FsckReport is.
struct PfsckStats {
  uint32_t threads = 0;          // Worker threads requested.
  uint64_t inode_scan_ns = 0;    // Phase 1: inode scan + claim collection.
  uint64_t dir_walk_ns = 0;      // Phase 2: directory walking.
  uint64_t merge_ns = 0;         // Serial claim replay + BFS stitch.
  uint64_t audit_ns = 0;         // Phases 3+4: link-count + bitmap audit.
  uint64_t repair_merge_ns = 0;  // Sharded repair: region write-back.
  uint64_t work_steals = 0;      // Dir jobs taken from another worker's deque.
  uint64_t merge_conflicts = 0;  // Duplicate claims spanning scan partitions.
  uint64_t shard_checks = 0;     // Shard regions checked/repaired.

  void Add(const PfsckStats& o) {
    inode_scan_ns += o.inode_scan_ns;
    dir_walk_ns += o.dir_walk_ns;
    merge_ns += o.merge_ns;
    audit_ns += o.audit_ns;
    repair_merge_ns += o.repair_merge_ns;
    work_steals += o.work_steals;
    merge_conflicts += o.merge_conflicts;
    shard_checks += o.shard_checks;
  }
};

// Publishes a run's stats as fsck.* metrics (fsck.phase_*_ns counters,
// fsck.work_steals, fsck.merge_conflicts, fsck.threads gauge). Only
// called for threads > 1 runs, so the serial path registers nothing and
// golden stats dumps stay byte-identical.
void RegisterPfsckStats(StatsRegistry* registry, const PfsckStats& stats);

// Parallel equivalent of FsckChecker(image, options).Check().
// options.threads <= 1 runs the serial checker directly (the guaranteed
// byte-identical baseline); >= 2 spawns that many workers.
FsckReport PfsckCheck(const DiskImage* image, const FsckOptions& options,
                      PfsckStats* stats = nullptr);

// Parallel equivalent of FsckRepairer(image, options).Repair(): serial
// repair passes with the convergence re-check run by PfsckCheck.
FsckRepairReport PfsckRepair(DiskImage* image, const FsckOptions& options,
                             PfsckStats* stats = nullptr);

// Geometry of a sharded volume image: num_shards complete filesystems,
// shard s occupying blocks [s * shard_blocks, (s+1) * shard_blocks) and
// tagging data with global inode numbers s * ino_stride + local.
struct ShardLayout {
  uint32_t num_shards = 1;
  uint32_t shard_blocks = 0;
  uint32_t ino_stride = 0;
};

// Checks every shard region of a volume image (extract, per-shard
// tag_ino_base, check) and merges the per-shard reports in shard order -
// exactly what the crash harness does serially. threads <= 1 is that
// serial loop; otherwise shards are checked concurrently, with leftover
// thread budget (threads / num_shards) parallelizing inside each shard.
FsckReport PfsckCheckSharded(const DiskImage& volume, const ShardLayout& layout,
                             const FsckOptions& options, PfsckStats* stats = nullptr);

// Repairs every shard region concurrently: extract region, repair it as
// an independent image, then serially write changed blocks back into the
// volume in shard order (the merge step). Returns per-shard reports;
// `merged` (if non-null) gets summed counts, max passes and AND-ed
// clean_after. threads <= 1 runs the same extract/repair/write-back
// sequence serially - byte-identical volume bytes either way.
std::vector<FsckRepairReport> PfsckRepairSharded(DiskImage* volume,
                                                 const ShardLayout& layout,
                                                 const FsckOptions& options,
                                                 FsckRepairReport* merged = nullptr,
                                                 PfsckStats* stats = nullptr);

}  // namespace mufs

#endif  // MUFS_SRC_FSCK_PFSCK_H_
