// File-system integrity checker over a raw disk image.
//
// Plays the role of fsck in the paper: after a (simulated) crash, the
// on-disk state must contain no *integrity* violations for every scheme
// except No Order / Ignore. Recoverable inconsistencies - leaked blocks,
// over-counted links, stale bitmaps, orphaned inodes - are reported as
// fixable findings, not violations, exactly as fsck would repair them.
//
// Violations (unrecoverable without data loss / security exposure):
//   - directory entry naming a free or out-of-range inode (rule 3);
//   - link count lower than the number of on-disk references (rule 2:
//     removing one name would free a still-referenced inode);
//   - a block claimed by two files (rule 2);
//   - invalid block pointer (outside the data area);
//   - garbage directory block (rule 3: pointed to before initialized);
//   - stale data visible through a new pointer (the allocation-
//     initialization security check; needs cooperating workloads that
//     tag their data blocks via TagDataBlock).
#ifndef MUFS_SRC_FSCK_FSCK_H_
#define MUFS_SRC_FSCK_FSCK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/fs/format.h"

namespace mufs {

enum class FsckViolationType {
  kBadSuperblock,
  kDanglingDirEntry,     // Entry -> free/out-of-range inode.
  kLinkCountTooLow,      // More on-disk references than nlink.
  kDuplicateBlockClaim,  // Block owned by two files.
  kBadBlockPointer,      // Pointer outside the data area.
  kGarbageDirectory,     // Unparseable directory block.
  kStaleDataExposed,     // Alloc-init security violation.
};

std::string_view ToString(FsckViolationType t);

struct FsckViolation {
  FsckViolationType type;
  std::string detail;
};

struct FsckFixable {
  std::string detail;  // Orphaned inode, leaked block, bitmap mismatch...
};

struct FsckReport {
  std::vector<FsckViolation> violations;
  std::vector<FsckFixable> fixables;
  uint32_t inodes_in_use = 0;
  uint32_t dirs_seen = 0;
  uint32_t files_seen = 0;
  uint64_t blocks_claimed = 0;

  bool Clean() const { return violations.empty(); }
};

// Cooperating workloads stamp each data block so the checker can detect
// stale-data exposure: 16-byte header {kDataTagMagic, ino, generation,
// lbn}.
struct DataBlockTag {
  uint64_t magic = 0;
  uint32_t ino = 0;
  uint32_t generation = 0;
};
constexpr uint64_t kDataTagMagic = 0x5441474d55465321ull;  // "TAGMUFS!"

// Writes the tag into the first bytes of a caller-provided data buffer.
void TagDataBlock(uint8_t* block_start, uint32_t ino, uint32_t generation);

struct FsckOptions {
  // Verify data-block tags (requires TagDataBlock-cooperating workloads
  // and allocation-initialization guarantees).
  bool check_stale_data = false;
  // Added to local inode numbers before comparing against data-block
  // tags. Sharded machines tag data with GLOBAL inode numbers
  // (shard * stride + local); checking one extracted shard region means
  // tag.ino == tag_ino_base + local ino. 0 for unsharded images.
  uint32_t tag_ino_base = 0;
  // Worker threads for the parallel checker/repairer (src/fsck/pfsck.h).
  // 0 (and 1) take the serial path - byte-identical reports guaranteed;
  // >= 2 spawns that many std::thread workers outside the sim clock.
  // FsckChecker/FsckRepairer themselves ignore this; PfsckCheck /
  // PfsckRepair and the crash harness honor it.
  uint32_t threads = 0;
};

class FsckChecker {
 public:
  explicit FsckChecker(const DiskImage* image, FsckOptions options = {})
      : image_(image), options_(options) {}

  FsckReport Check();

 private:
  void CheckInode(uint32_t ino, const DiskInode& di, FsckReport* report);
  void WalkDirectories(FsckReport* report);
  void CheckDirBlock(uint32_t dir_ino, uint32_t blkno, FsckReport* report,
                     std::vector<uint32_t>* children);
  // Collects all block pointers of an inode (direct + indirect trees),
  // recording violations for bad pointers and duplicate claims.
  std::vector<uint32_t> CollectBlocks(uint32_t ino, const DiskInode& di, FsckReport* report);
  bool ClaimBlock(uint32_t ino, uint32_t blkno, FsckReport* report);
  DiskInode ReadInode(uint32_t ino) const;

  const DiskImage* image_;
  FsckOptions options_;
  SuperBlock sb_;
  std::unordered_map<uint32_t, uint32_t> block_owner_;  // blkno -> ino.
  std::unordered_map<uint32_t, uint32_t> ref_counts_;   // ino -> #entries.
  std::unordered_map<uint32_t, uint32_t> child_dir_counts_;  // dir ino -> #subdirs.
};

// What a repair run did to the image. Counts are cumulative over all
// repair passes (clearing a dangling entry can orphan an inode, which a
// later pass then clears).
struct FsckRepairReport {
  int passes = 0;
  uint32_t dir_entries_cleared = 0;   // Garbage / dangling entries zeroed.
  uint32_t link_counts_fixed = 0;     // nlink rewritten to reference count.
  uint32_t inodes_cleared = 0;        // Orphaned inodes freed.
  uint32_t pointers_cleared = 0;      // Bad / duplicate block pointers zeroed.
  uint32_t data_blocks_scrubbed = 0;  // Stale-data exposures zeroed.
  uint32_t bitmap_bits_fixed = 0;     // Bitmap bits rewritten.
  bool clean_after = false;           // Post-repair Check() has no findings.

  uint32_t TotalFixes() const {
    return dir_entries_cleared + link_counts_fixed + inodes_cleared + pointers_cleared +
           data_blocks_scrubbed + bitmap_bits_fixed;
  }
};

// Repairs cascade (cleared entry -> orphan -> orphaned children); each
// pass handles one level, so the cap bounds the orphan-tree depth.
inline constexpr int kMaxFsckRepairPasses = 16;

// Repairs a crashed image the way fsck would: drop directory entries that
// cannot be trusted (garbage / dangling), zero invalid and duplicate
// block pointers, free unreferenced inodes, rewrite link counts to the
// observed reference counts, scrub stale-data exposures (when checking
// them), and rebuild both bitmaps from the surviving metadata. Repairs
// iterate until a re-check is clean (one fix can expose the next: a
// cleared entry orphans an inode, whose children then orphan in turn).
class FsckRepairer {
 public:
  explicit FsckRepairer(DiskImage* image, FsckOptions options = {})
      : image_(image), options_(options) {}

  FsckRepairReport Repair();

  // The two building blocks of Repair(), exposed so the parallel
  // repairer (pfsck) can drive the identical serial mutation sequence
  // with its own convergence re-check. LoadSuper must succeed before
  // RunPass is called.
  bool LoadSuper();
  void RunPass(FsckRepairReport* report) { RepairPass(report); }

 private:
  void RepairPass(FsckRepairReport* report);
  // Zeroes out-of-range and duplicate block pointers; scrubs foreign data
  // (when options_.check_stale_data). Fills block_owner_. Duplicate-block
  // resolution is DETERMINISTIC: the table is scanned in ascending inode
  // order and within an inode in pointer order, so the winner of a
  // duplicate claim is always the lowest (ino, pointer-position)
  // claimant - never an artifact of map iteration order. The parallel
  // repairer preserves this by replaying claims in the same serial
  // order; fsck_test pins it.
  void ScrubInodePointers(FsckRepairReport* report);
  // Walks the tree from the root, zeroing garbage / dangling entries.
  // Fills ref_counts_ and child_dir_counts_.
  void ScrubDirectories(FsckRepairReport* report);
  // Frees unreferenced inodes, rewrites mismatched link counts.
  void FixLinkCountsAndOrphans(FsckRepairReport* report);
  // Rebuilds both bitmaps from the surviving inode table.
  void RebuildBitmaps(FsckRepairReport* report);
  DiskInode ReadInode(uint32_t ino) const;
  void WriteInode(uint32_t ino, const DiskInode& di);
  void WriteBlock(uint32_t blkno, const BlockData& data);

  DiskImage* image_;
  FsckOptions options_;
  SuperBlock sb_;
  std::unordered_map<uint32_t, uint32_t> block_owner_;       // blkno -> ino.
  std::unordered_map<uint32_t, uint32_t> ref_counts_;        // ino -> #entries.
  std::unordered_map<uint32_t, uint32_t> child_dir_counts_;  // dir ino -> #subdirs.
};

}  // namespace mufs

#endif  // MUFS_SRC_FSCK_FSCK_H_
