// Disk request types shared by the driver and its clients.
#ifndef MUFS_SRC_DRIVER_REQUEST_H_
#define MUFS_SRC_DRIVER_REQUEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/sim/time.h"

namespace mufs {

enum class IoDir : uint8_t { kRead, kWrite };

// Per-request completion status. Requests terminate with kOk or kFailed;
// the intermediate codes describe individual service attempts (surfaced
// in traces and driver statistics, never to clients).
enum class IoStatus : uint8_t {
  kOk = 0,      // Completed successfully.
  kMediaError,  // One attempt hit a transient error or a bad sector.
  kTimeout,     // One attempt stalled past the driver's timeout.
  kFailed,      // Terminal: retries and the spare pool are exhausted.
};

inline const char* IoStatusName(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kMediaError:
      return "media_error";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kFailed:
      return "failed";
  }
  return "?";
}

// Completion callback (ISR): receives the request's terminal status.
// Callbacks must check it — completion does not imply success.
using IoCallback = std::function<void(IoStatus)>;

// Ordering information a file system attaches to a write request.
struct OrderingTag {
  // One-bit ordering flag (scheduler-flag schemes, paper section 3.1).
  bool flag = false;
  // Explicit request dependencies (scheduler-chain scheme, section 3.2):
  // ids of previously issued requests that must complete first.
  std::vector<uint64_t> deps;
  // Device-queueing delegation: with --queue-depth > 1 this request is an
  // ordering boundary the scheme wants enforced by an ORDERED command tag
  // at the device instead of by holding the request back in the driver.
  // The driver also infers ordered tags from `flag`/`deps`, so this is an
  // explicit annotation at the scheme's ordering points, not a separate
  // correctness mechanism. Ignored at queue depth 1.
  bool device_ordered = false;
};

// Completion record for one request, used for the paper's I/O statistics
// (figures 1b-4b, response-time columns of tables 1-2).
struct RequestTrace {
  uint64_t id = 0;
  IoDir dir = IoDir::kRead;
  uint32_t blkno = 0;
  uint32_t count = 0;
  bool flagged = false;
  SimTime issue_time = 0;
  SimTime service_start = 0;
  SimTime complete_time = 0;
  IoStatus status = IoStatus::kOk;
  uint32_t retries = 0;  // Failed service attempts before completion.

  SimDuration QueueDelay() const { return service_start - issue_time; }
  SimDuration AccessTime() const { return complete_time - service_start; }
  SimDuration ResponseTime() const { return complete_time - issue_time; }
};

}  // namespace mufs

#endif  // MUFS_SRC_DRIVER_REQUEST_H_
