// Abstract async block device: the request-issuing surface that the
// buffer cache, the journal and the ordering policies program against.
//
// Two implementations exist: DiskDriver (one spindle, the paper's
// machine) and StripedVolume / ShardDevice (src/volume/): N spindles
// behind block-address striping. Everything above the driver layer holds
// a BlockDevice*, so the single-disk and multi-disk machines share the
// whole cache / journal / policy stack unchanged.
#ifndef MUFS_SRC_DRIVER_BLOCK_DEVICE_H_
#define MUFS_SRC_DRIVER_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/driver/request.h"
#include "src/sim/task.h"

namespace mufs {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Issues an asynchronous write of `data.size()` consecutive blocks
  // starting at `blkno`. Returns the request id. `isr` (optional) runs at
  // completion, interrupt-level: it must not block, and it receives the
  // request's terminal IoStatus (completion does not imply success).
  virtual uint64_t IssueWrite(uint32_t blkno,
                              std::vector<std::shared_ptr<const BlockData>> data,
                              OrderingTag tag = {}, IoCallback isr = nullptr) = 0;

  // Issues an asynchronous single-block read into `out` (caller keeps the
  // destination alive and unread until completion). On failure `out` is
  // left untouched.
  virtual uint64_t IssueRead(uint32_t blkno, BlockData* out, IoCallback isr = nullptr) = 0;

  // Suspends until request `id` completes (returns immediately if done)
  // and yields its terminal status.
  virtual Task<IoStatus> WaitFor(uint64_t id) = 0;

  virtual bool IsComplete(uint64_t id) const = 0;
  // Terminal status of a completed request (kOk if `id` is unknown).
  virtual IoStatus CompletionStatus(uint64_t id) const = 0;

  // Requests issued to this device and not yet completed.
  virtual size_t PendingCount() const = 0;
  virtual Task<void> Drain() = 0;  // Waits until PendingCount() == 0.

  // True if any pending write overlaps [blkno, blkno+count).
  virtual bool HasPendingWrite(uint32_t blkno, uint32_t count = 1) const = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_DRIVER_BLOCK_DEVICE_H_
