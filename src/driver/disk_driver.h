// Device driver: request queue, scheduling and ordering enforcement.
//
// This is the "disk scheduler" of the paper's section 3. The file system
// (or buffer cache) issues asynchronous requests; the driver decides
// which pending request to service next, subject to:
//
//   - C-LOOK positional scheduling over block number among *eligible*
//     requests (one request outstanding at the disk; the paper disables
//     command queueing);
//   - sequential request concatenation at enqueue (section 2);
//   - the configured ordering discipline:
//       kNone    - no constraints (Conventional relies on synchronous
//                  waiting; No Order / Ignore simply don't care);
//       kFlag    - one-bit ordering flag with Full/Back/Part semantics,
//                  optionally letting non-conflicting reads bypass (-NR);
//       kChains  - explicit per-request dependency lists.
//
// Flag semantics (section 3.1), where "earlier" is issue order:
//   Full: a flagged request F may start only when every earlier request
//         has completed, and no later request may start before F.
//   Back: a request R may start only if, for every flagged F issued
//         before R, every request issued at or before F has completed.
//         (F itself reorders freely with earlier non-flagged requests.)
//   Part: R may start only when every flagged request issued before R
//         has completed. (Earlier non-flagged requests are free.)
//   -NR:  a read may bypass any of the above provided it does not
//         conflict (overlap) with a pending earlier write.
//
// Command queueing (queue_depth > 1): the driver dispatches requests to
// the device IN ISSUE ORDER until the device queue is full, and the
// device picks what to execute next by rotational position (DeviceQueue).
// Ordering moves into command tags: the Flag and Chains schemes' ordering
// boundaries become ORDERED tags (device-enforced barriers over
// acceptance order); everything else is a SIMPLE tag the device may
// reorder. Completions therefore leave the device out of submission
// order. Depth 1 (the default) runs the exact non-queueing code path
// above, byte-identical in stats and timing to the pre-queueing driver.
#ifndef MUFS_SRC_DRIVER_DISK_DRIVER_H_
#define MUFS_SRC_DRIVER_DISK_DRIVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/disk/device_queue.h"
#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/block_device.h"
#include "src/driver/request.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/stats/stats_registry.h"

namespace mufs {

class FaultInjector;

enum class OrderingMode : uint8_t { kNone, kFlag, kChains };
enum class FlagSemantics : uint8_t { kFull, kBack, kPart };

struct DriverConfig {
  OrderingMode mode = OrderingMode::kNone;
  FlagSemantics semantics = FlagSemantics::kPart;
  bool reads_bypass = false;  // -NR
  // Device command-queue depth. 1 (default) reproduces the paper's
  // substrate: no command queueing, one request outstanding at the disk,
  // byte-identical stats to the pre-queueing driver. Depths > 1 enable
  // tagged queueing: dispatch-until-full, device-side RPO picks, ordered
  // tags at scheme ordering boundaries.
  uint32_t queue_depth = 1;
  bool collect_traces = true;
  // Shared metrics registry (the Machine's). When null the driver owns a
  // private registry, so standalone construction needs no guards.
  StatsRegistry* stats = nullptr;

  // --- error path ----------------------------------------------------
  // Optional fault source, consulted once per service attempt. With no
  // injector the service path is identical to the fault-free driver.
  FaultInjector* faults = nullptr;
  // Failed attempts are retried up to `max_retries` times with
  // exponential backoff in simulated time (base doubles per retry, up to
  // the cap) before the request completes with IoStatus::kFailed.
  int max_retries = 8;
  SimDuration retry_backoff = Msec(2);
  SimDuration retry_backoff_cap = Msec(64);
  // A stalled command is abandoned after this long and re-issued (counts
  // as one retry).
  SimDuration request_timeout = Msec(500);
  // Spare pool for remapping latent bad sectors (reallocation-on-verify:
  // after two bad-sector failures of one request the driver remaps the
  // offending blocks if spares remain).
  uint32_t spare_blocks = 64;

  // --- multi-disk (src/volume/) --------------------------------------
  // Instance name for metric/trace prefixes ("disk0", "disk1", ...).
  // Empty = the singleton driver: every metric keeps its historical name.
  std::string instance;
  // Translates this disk's local LBA to the address used against the
  // shared DiskImage. A striped volume backs all member disks with ONE
  // volume-addressed image so crash snapshots and the write-count crash
  // index stay volume-wide; each member driver maps its local block
  // numbers through this before touching stable storage. Null = identity
  // (the image belongs to this disk alone).
  std::function<uint32_t(uint32_t)> image_map;
};

class DiskDriver : public BlockDevice {
 public:
  DiskDriver(Engine* engine, DiskModel* model, DiskImage* image, DriverConfig config);
  DiskDriver(const DiskDriver&) = delete;
  DiskDriver& operator=(const DiskDriver&) = delete;
  ~DiskDriver() override;

  // Issues an asynchronous write of `data.size()` consecutive blocks
  // starting at `blkno`. Returns the request id. `isr` (optional) runs at
  // completion, interrupt-level: it must not block, and it receives the
  // request's terminal IoStatus (completion does not imply success).
  uint64_t IssueWrite(uint32_t blkno, std::vector<std::shared_ptr<const BlockData>> data,
                      OrderingTag tag = {}, IoCallback isr = nullptr) override;

  // Issues an asynchronous single-block read into `out` (caller keeps the
  // destination alive and unread until completion). On failure `out` is
  // left untouched.
  uint64_t IssueRead(uint32_t blkno, BlockData* out, IoCallback isr = nullptr) override;

  // Suspends until request `id` completes (returns immediately if done)
  // and yields its terminal status.
  Task<IoStatus> WaitFor(uint64_t id) override;

  bool IsComplete(uint64_t id) const override { return completed_.contains(id); }
  // Terminal status of a completed request (kOk if `id` is unknown).
  IoStatus CompletionStatus(uint64_t id) const override {
    auto it = completed_.find(id);
    return it == completed_.end() ? IoStatus::kOk : it->second;
  }
  // Spare-pool sectors consumed by bad-sector remapping so far.
  uint32_t SparesUsed() const { return spares_used_; }

  // Queue introspection (used by tests and by the FS for SYNCIO fences).
  // Counts driver-queued, device-accepted and in-service requests.
  size_t PendingCount() const override;
  // Commands currently accepted into the device queue (0 at depth 1).
  size_t DeviceQueueSize() const { return device_queue_ ? device_queue_->Size() : 0; }
  Task<void> Drain() override;  // Waits until the queue is empty.

  // True if any pending write overlaps [blkno, blkno+count).
  bool HasPendingWrite(uint32_t blkno, uint32_t count = 1) const override;

  const std::vector<RequestTrace>& Traces() const { return traces_; }
  uint64_t TotalRequests() const { return total_requests_; }
  // Requests that were merged into another request (still counted in
  // TotalRequests? No: merged issues do not create a new device request).
  uint64_t MergedRequests() const { return merged_requests_; }

  const DriverConfig& config() const { return config_; }
  StatsRegistry* stats() const { return stats_; }

 private:
  struct Request {
    std::vector<uint64_t> ids;  // All ids merged into this device request.
    IoDir dir;
    uint32_t blkno;
    uint32_t count;
    bool flag = false;
    bool device_ordered = false;  // Scheme asked for an ordered device tag.
    uint64_t issue_index;  // Position in issue order (max over merged).
    uint64_t device_seq = 0;  // Device acceptance number (queueing mode).
    // Silent damage decided for this (write) request: the device reports
    // success but the media transfer is torn or misdirected. Set by
    // ServiceOne, consumed by Complete. kNone = honest transfer.
    uint8_t silent_damage = 0;  // FaultKind, as uint8_t to avoid the include.
    SimTime issue_time;
    std::vector<uint64_t> deps;
    std::vector<std::shared_ptr<const BlockData>> data;  // Writes.
    BlockData* read_out = nullptr;                       // Reads.
    std::vector<IoCallback> isrs;
  };

  uint64_t Enqueue(std::unique_ptr<Request> req, IoCallback isr);
  bool TryMerge(Request* incoming);
  void IndexRequest(const Request& r);
  void UnindexRequest(const Request& r);
  void Kick();
  Task<void> ServiceLoop();
  // queue_depth > 1 service loop: dispatch-until-full, device RPO picks,
  // out-of-submission-order completion.
  Task<void> QueueingServiceLoop();
  // Moves requests from the driver queue into the device queue, in issue
  // order, until the device queue is full or the driver queue is empty.
  void DispatchToDevice();
  // Command tag for a request under the configured ordering mode.
  TagKind DeviceTagFor(const Request& r) const;
  // Services `r` (already detached, in_service_) including the fault /
  // retry / remap path; returns the terminal status.
  Task<IoStatus> ServiceOne(Request* r, SimTime service_start, uint32_t origin,
                            uint32_t* attempts_out);
  Request* PickNext();
  bool Eligible(const Request& r) const;
  bool ConflictsWithEarlierWrite(const Request& r) const;
  void Complete(Request* req, IoStatus status);
  void PruneFlaggedIndices();

  // Local LBA -> shared-image address (identity without an image_map).
  uint32_t MapLba(uint32_t blkno) const {
    return config_.image_map ? config_.image_map(blkno) : blkno;
  }

  Engine* engine_;
  DiskModel* model_;
  DiskImage* image_;
  DriverConfig config_;
  // This disk's own media size. Equals image_->TotalBlocks() for a
  // private image; with an image_map (shared volume image) it is the
  // disk's geometry, so fault addressing stays in local LBA space.
  uint32_t media_blocks_ = 0;

  // Trace event names, instance-prefixed once at construction so the hot
  // path never concatenates strings.
  struct TraceNames {
    std::string issue, concat, accept, service, complete, fault, remap, gave_up;
  };
  TraceNames trace_names_;

  // Metrics (either the Machine's registry or owned_stats_).
  std::unique_ptr<StatsRegistry> owned_stats_;
  StatsRegistry* stats_ = nullptr;
  Counter* stat_reads_ = nullptr;
  Counter* stat_writes_ = nullptr;
  Counter* stat_blocks_read_ = nullptr;
  Counter* stat_blocks_written_ = nullptr;
  Counter* stat_merges_ = nullptr;
  Counter* stat_clook_wraps_ = nullptr;
  Counter* stat_busy_ns_ = nullptr;
  Counter* stat_retries_ = nullptr;
  Counter* stat_timeouts_ = nullptr;
  Counter* stat_remaps_ = nullptr;
  Counter* stat_gave_up_ = nullptr;
  // Queueing metrics, registered only at queue_depth > 1 so the depth-1
  // stats surface stays byte-identical to the pre-queueing driver.
  Counter* stat_tag_simple_ = nullptr;
  Counter* stat_tag_ordered_ = nullptr;
  Counter* stat_rpo_picks_ = nullptr;
  Gauge* stat_device_queue_ = nullptr;
  Gauge* stat_queue_depth_ = nullptr;
  LatencyHistogram* stat_response_ = nullptr;
  LatencyHistogram* stat_access_ = nullptr;
  LatencyHistogram* stat_queue_delay_ = nullptr;

  uint64_t next_id_ = 1;
  uint64_t next_issue_index_ = 1;
  uint32_t scan_from_ = 0;
  // Issue indices of every flagged request still relevant for Back
  // semantics, ascending (pruned as the queue drains).
  std::vector<uint64_t> flagged_indices_;
  // Eligibility indexes, maintained incrementally so checks are O(log n)
  // instead of O(queue) (large queues are a *feature* of this paper's
  // workloads - seconds of queued ordered writes - so the naive scans
  // were quadratic).
  std::set<uint64_t> pending_indices_;          // All pending + in-service.
  std::set<uint64_t> pending_flagged_indices_;  // Flagged subset.
  // Per-block pending WRITE issue indices (overlap checks).
  std::unordered_map<uint32_t, std::set<uint64_t>> pending_writes_by_block_;
  std::list<std::unique_ptr<Request>> queue_;  // Issue order (undispatched).
  // Queueing mode only: requests accepted into the device queue, in
  // acceptance (= issue) order. The in-service request stays here until
  // completion; at depth 1 this list is always empty.
  std::list<std::unique_ptr<Request>> accepted_;
  std::unique_ptr<DeviceQueue> device_queue_;  // Null at depth 1.
  Request* in_service_ = nullptr;
  uint32_t spares_used_ = 0;
  std::unordered_map<uint64_t, IoStatus> completed_;
  std::unordered_map<uint64_t, std::unique_ptr<OneShotEvent>> waiters_;
  CondVar work_available_;
  CondVar queue_empty_;
  bool stopping_ = false;
  ProcessRef service_proc_;

  std::vector<RequestTrace> traces_;
  uint64_t total_requests_ = 0;
  uint64_t merged_requests_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_DRIVER_DISK_DRIVER_H_
