#include "src/driver/disk_driver.h"

#include <algorithm>
#include <cassert>

#include "src/fault/fault_injector.h"

namespace mufs {

namespace {

constexpr uint32_t kMaxMergedBlocks = 16;  // 64 KB max device transfer.

}  // namespace

DiskDriver::DiskDriver(Engine* engine, DiskModel* model, DiskImage* image, DriverConfig config)
    : engine_(engine),
      model_(model),
      image_(image),
      config_(config),
      work_available_(engine),
      queue_empty_(engine) {
  // With an image_map the image is the whole volume; this disk's media
  // (and with it the fault injector's victim space) is its own geometry.
  media_blocks_ =
      config_.image_map ? model_->geometry().total_blocks : image_->TotalBlocks();
  if (config_.faults != nullptr) {
    // Lets the injector's damage ledger name the same misdirection
    // victims the media transfer will use.
    config_.faults->SetTotalBlocks(media_blocks_);
  }
  if (config_.stats != nullptr) {
    stats_ = config_.stats;
  } else {
    owned_stats_ = std::make_unique<StatsRegistry>();
    owned_stats_->SetClock([engine] { return engine->Now(); });
    stats_ = owned_stats_.get();
  }
  const std::string& inst = config_.instance;
  stat_reads_ = &stats_->counter(InstanceMetricName(inst, "disk.reads"));
  stat_writes_ = &stats_->counter(InstanceMetricName(inst, "disk.writes"));
  stat_blocks_read_ = &stats_->counter(InstanceMetricName(inst, "disk.blocks_read"));
  stat_blocks_written_ = &stats_->counter(InstanceMetricName(inst, "disk.blocks_written"));
  stat_merges_ = &stats_->counter(InstanceMetricName(inst, "disk.merged_requests"));
  stat_clook_wraps_ = &stats_->counter(InstanceMetricName(inst, "disk.clook_wraps"));
  stat_busy_ns_ = &stats_->counter(InstanceMetricName(inst, "disk.busy_ns"));
  stat_retries_ = &stats_->counter(InstanceMetricName(inst, "driver.retries"));
  stat_timeouts_ = &stats_->counter(InstanceMetricName(inst, "driver.timeouts"));
  stat_remaps_ = &stats_->counter(InstanceMetricName(inst, "driver.remaps"));
  stat_gave_up_ = &stats_->counter(InstanceMetricName(inst, "driver.gave_up"));
  stat_queue_depth_ = &stats_->gauge(InstanceMetricName(inst, "disk.queue_depth"));
  stat_response_ = &stats_->histogram(InstanceMetricName(inst, "disk.response_ns"));
  stat_access_ = &stats_->histogram(InstanceMetricName(inst, "disk.access_ns"));
  stat_queue_delay_ = &stats_->histogram(InstanceMetricName(inst, "disk.queue_ns"));
  if (config_.queue_depth > 1) {
    // Registered only in queueing mode: the depth-1 stats surface (and
    // with it every golden sidecar) must stay byte-identical.
    device_queue_ = std::make_unique<DeviceQueue>(config_.queue_depth);
    stat_tag_simple_ = &stats_->counter(InstanceMetricName(inst, "disk.tag_simple"));
    stat_tag_ordered_ = &stats_->counter(InstanceMetricName(inst, "disk.tag_ordered"));
    stat_rpo_picks_ = &stats_->counter(InstanceMetricName(inst, "disk.rpo_picks"));
    stat_device_queue_ = &stats_->gauge(InstanceMetricName(inst, "disk.device_queue"));
  }
  trace_names_.issue = InstanceMetricName(inst, "disk.issue");
  trace_names_.concat = InstanceMetricName(inst, "disk.concat");
  trace_names_.accept = InstanceMetricName(inst, "disk.accept");
  trace_names_.service = InstanceMetricName(inst, "disk.service");
  trace_names_.complete = InstanceMetricName(inst, "disk.complete");
  trace_names_.fault = InstanceMetricName(inst, "disk.fault");
  trace_names_.remap = InstanceMetricName(inst, "disk.remap");
  trace_names_.gave_up = InstanceMetricName(inst, "disk.gave_up");
  service_proc_ =
      engine_->Spawn(ServiceLoop(), inst.empty() ? "disk-driver" : inst + "-driver");
}

DiskDriver::~DiskDriver() { stopping_ = true; }

uint64_t DiskDriver::IssueWrite(uint32_t blkno, std::vector<std::shared_ptr<const BlockData>> data,
                                OrderingTag tag, IoCallback isr) {
  assert(!data.empty());
  auto req = std::make_unique<Request>();
  req->dir = IoDir::kWrite;
  req->blkno = blkno;
  req->count = static_cast<uint32_t>(data.size());
  req->flag = tag.flag;
  req->device_ordered = tag.device_ordered;
  req->deps = std::move(tag.deps);
  req->data = std::move(data);
  return Enqueue(std::move(req), std::move(isr));
}

uint64_t DiskDriver::IssueRead(uint32_t blkno, BlockData* out, IoCallback isr) {
  auto req = std::make_unique<Request>();
  req->dir = IoDir::kRead;
  req->blkno = blkno;
  req->count = 1;
  req->read_out = out;
  return Enqueue(std::move(req), std::move(isr));
}

uint64_t DiskDriver::Enqueue(std::unique_ptr<Request> req, IoCallback isr) {
  uint64_t id = next_id_++;
  req->ids.push_back(id);
  req->issue_index = next_issue_index_++;
  req->issue_time = engine_->Now();
  if (isr) {
    req->isrs.push_back(std::move(isr));
  }
  if (req->flag) {
    flagged_indices_.push_back(req->issue_index);
  }
  ++total_requests_;
  if (req->dir == IoDir::kWrite) {
    stat_writes_->Inc();
    stat_blocks_written_->Inc(req->count);
  } else {
    stat_reads_->Inc();
    stat_blocks_read_->Inc(req->count);
  }
  if (stats_->tracing()) {
    stats_->Trace(trace_names_.issue, {{"id", id},
                                 {"dir", req->dir == IoDir::kWrite ? "w" : "r"},
                                 {"blkno", req->blkno},
                                 {"count", req->count},
                                 {"flag", req->flag},
                                 {"ndeps", req->deps.size()},
                                 {"qdepth", PendingCount()}});
  }

  if (req->dir == IoDir::kWrite && TryMerge(req.get())) {
    ++merged_requests_;
    stat_merges_->Inc();
    if (stats_->tracing()) {
      stats_->Trace(trace_names_.concat, {{"id", id}, {"blkno", queue_.back()->blkno},
                                    {"count", queue_.back()->count}});
    }
  } else {
    IndexRequest(*req);
    queue_.push_back(std::move(req));
  }
  stat_queue_depth_->Set(static_cast<int64_t>(PendingCount()));
  Kick();
  return id;
}

void DiskDriver::IndexRequest(const Request& r) {
  pending_indices_.insert(r.issue_index);
  if (r.flag) {
    pending_flagged_indices_.insert(r.issue_index);
  }
  if (r.dir == IoDir::kWrite) {
    for (uint32_t b = r.blkno; b < r.blkno + r.count; ++b) {
      pending_writes_by_block_[b].insert(r.issue_index);
    }
  }
}

void DiskDriver::UnindexRequest(const Request& r) {
  pending_indices_.erase(r.issue_index);
  pending_flagged_indices_.erase(r.issue_index);
  if (r.dir == IoDir::kWrite) {
    for (uint32_t b = r.blkno; b < r.blkno + r.count; ++b) {
      auto it = pending_writes_by_block_.find(b);
      if (it != pending_writes_by_block_.end()) {
        it->second.erase(r.issue_index);
        if (it->second.empty()) {
          pending_writes_by_block_.erase(it);
        }
      }
    }
  }
}

bool DiskDriver::TryMerge(Request* incoming) {
  // Sequential concatenation (paper section 2): only with the most
  // recently issued pending request, so no request is reordered past a
  // request issued between the two, which keeps every flag semantics and
  // chain dependency intact.
  if (queue_.empty() || incoming->flag) {
    return false;
  }
  Request* tail = queue_.back().get();
  if (tail == in_service_ || tail->dir != IoDir::kWrite || tail->flag) {
    return false;
  }
  if (tail->count + incoming->count > kMaxMergedBlocks) {
    return false;
  }
  // A dependency on a request merged into the same device transfer would
  // deadlock; keep them separate.
  for (uint64_t dep : incoming->deps) {
    if (std::find(tail->ids.begin(), tail->ids.end(), dep) != tail->ids.end()) {
      return false;
    }
  }
  if (tail->blkno + tail->count == incoming->blkno) {
    // Append.
    UnindexRequest(*tail);
    tail->data.insert(tail->data.end(), incoming->data.begin(), incoming->data.end());
  } else if (incoming->blkno + incoming->count == tail->blkno) {
    // Prepend.
    UnindexRequest(*tail);
    tail->data.insert(tail->data.begin(), incoming->data.begin(), incoming->data.end());
    tail->blkno = incoming->blkno;
  } else {
    return false;
  }
  tail->count += incoming->count;
  tail->device_ordered = tail->device_ordered || incoming->device_ordered;
  tail->ids.insert(tail->ids.end(), incoming->ids.begin(), incoming->ids.end());
  tail->deps.insert(tail->deps.end(), incoming->deps.begin(), incoming->deps.end());
  tail->isrs.insert(tail->isrs.end(), std::make_move_iterator(incoming->isrs.begin()),
                    std::make_move_iterator(incoming->isrs.end()));
  // Adopt the newer issue index: eligibility constraints only grow, which
  // is always safe (delaying a write never violates ordering).
  tail->issue_index = incoming->issue_index;
  IndexRequest(*tail);
  return true;
}

bool DiskDriver::ConflictsWithEarlierWrite(const Request& r) const {
  // A pending (or in-service) write of any overlapping block with an
  // earlier issue index. Per-block index keeps this O(count * log n).
  for (uint32_t b = r.blkno; b < r.blkno + r.count; ++b) {
    auto it = pending_writes_by_block_.find(b);
    if (it != pending_writes_by_block_.end() && !it->second.empty() &&
        *it->second.begin() < r.issue_index) {
      return true;
    }
  }
  return false;
}

bool DiskDriver::Eligible(const Request& r) const {
  // Device-level invariant independent of the ordering scheme: two writes
  // of overlapping ranges must complete in issue order, or stale data
  // could land last.
  if (r.dir == IoDir::kWrite && ConflictsWithEarlierWrite(r)) {
    return false;
  }
  switch (config_.mode) {
    case OrderingMode::kNone:
      return true;

    case OrderingMode::kChains: {
      for (uint64_t dep : r.deps) {
        if (!completed_.contains(dep)) {
          return false;
        }
      }
      return true;
    }

    case OrderingMode::kFlag: {
      if (r.dir == IoDir::kRead && config_.reads_bypass) {
        return !ConflictsWithEarlierWrite(r);
      }
      // O(log n) checks against the incrementally maintained index sets.
      // A request's own index never trips a strict `< r.issue_index`
      // comparison, so no self-exclusion is needed.
      auto flagged_before_me = [&] {
        return !pending_flagged_indices_.empty() &&
               *pending_flagged_indices_.begin() < r.issue_index;
      };
      switch (config_.semantics) {
        case FlagSemantics::kPart:
          // Wait only for pending flagged requests issued before us.
          return !flagged_before_me();
        case FlagSemantics::kBack: {
          // Wait for everything issued at or before the last flagged
          // request that was issued before us (even if that flagged
          // request itself already completed).
          auto it = std::lower_bound(flagged_indices_.begin(), flagged_indices_.end(),
                                     r.issue_index);
          if (it == flagged_indices_.begin()) {
            return true;
          }
          uint64_t m = *std::prev(it);
          return pending_indices_.empty() || *pending_indices_.begin() > m;
        }
        case FlagSemantics::kFull: {
          if (flagged_before_me()) {
            return false;
          }
          if (r.flag && !pending_indices_.empty() &&
              *pending_indices_.begin() < r.issue_index) {
            return false;
          }
          return true;
        }
      }
      return true;
    }
  }
  return true;
}

DiskDriver::Request* DiskDriver::PickNext() {
  // C-LOOK: smallest eligible block number at or beyond the scan origin;
  // wrap to the smallest eligible otherwise.
  Request* best_forward = nullptr;
  Request* best_wrap = nullptr;
  for (const auto& q : queue_) {
    if (!Eligible(*q)) {
      continue;
    }
    if (q->blkno >= scan_from_) {
      if (best_forward == nullptr || q->blkno < best_forward->blkno) {
        best_forward = q.get();
      }
    } else if (best_wrap == nullptr || q->blkno < best_wrap->blkno) {
      best_wrap = q.get();
    }
  }
  if (best_forward != nullptr) {
    return best_forward;
  }
  if (best_wrap != nullptr) {
    stat_clook_wraps_->Inc();
  }
  return best_wrap;
}

Task<void> DiskDriver::ServiceLoop() {
  if (device_queue_ != nullptr) {
    co_await QueueingServiceLoop();
    co_return;
  }
  while (!stopping_) {
    Request* r = PickNext();
    if (r == nullptr) {
      if (queue_.empty()) {
        queue_empty_.NotifyAll();
      }
      co_await work_available_.Await();
      continue;
    }
    // Detach from the queue and service.
    std::unique_ptr<Request> owned;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == r) {
        owned = std::move(*it);
        queue_.erase(it);
        break;
      }
    }
    in_service_ = r;
    SimTime service_start = engine_->Now();
    uint32_t origin = scan_from_;
    uint32_t attempts = 0;
    IoStatus status = co_await ServiceOne(r, service_start, origin, &attempts);
    scan_from_ = r->blkno + r->count;
    if (config_.collect_traces) {
      RequestTrace t;
      t.id = r->ids.front();
      t.dir = r->dir;
      t.blkno = r->blkno;
      t.count = r->count;
      t.flagged = r->flag;
      t.issue_time = r->issue_time;
      t.service_start = service_start;
      t.complete_time = engine_->Now();
      t.status = status;
      t.retries = attempts;
      traces_.push_back(t);
    }
    Complete(r, status);
    in_service_ = nullptr;
    stat_queue_depth_->Set(static_cast<int64_t>(PendingCount()));
  }
}

TagKind DiskDriver::DeviceTagFor(const Request& r) const {
  // kNone covers Conventional (orders by waiting), No Order, soft updates
  // (orders in the cache), journaling (orders via the log) AND the
  // "Ignore" datapoint - all simple tags, the device runs free. For the
  // scheduler schemes, every ordering boundary (flag, dependency list, or
  // the policy's explicit annotation) becomes an ordered tag.
  if (config_.mode == OrderingMode::kNone) {
    return TagKind::kSimple;
  }
  if (r.device_ordered || r.flag || !r.deps.empty()) {
    return TagKind::kOrdered;
  }
  return TagKind::kSimple;
}

void DiskDriver::DispatchToDevice() {
  // Strict issue-order dispatch: ordered-tag semantics are defined over
  // acceptance order, so dispatching in issue order makes the device's
  // barriers coincide with the schemes' issue-order constraints. A
  // chain dependency always names an earlier-issued request, which is
  // therefore either complete or accepted earlier - an ordered tag on the
  // dependent request subsumes it.
  while (!queue_.empty() && !device_queue_->Full()) {
    std::unique_ptr<Request> req = std::move(queue_.front());
    queue_.pop_front();
    Request* r = req.get();
    TagKind tag = DeviceTagFor(*r);
    r->device_seq = device_queue_->Accept(tag, r->dir == IoDir::kWrite, r->blkno, r->count, r);
    (tag == TagKind::kOrdered ? stat_tag_ordered_ : stat_tag_simple_)->Inc();
    if (stats_->tracing()) {
      stats_->Trace(trace_names_.accept, {{"id", r->ids.front()},
                                    {"seq", r->device_seq},
                                    {"tag", TagKindName(tag)},
                                    {"blkno", r->blkno},
                                    {"count", r->count},
                                    {"dq", device_queue_->Size()}});
    }
    accepted_.push_back(std::move(req));
  }
  stat_device_queue_->Set(static_cast<int64_t>(device_queue_->Size()));
}

Task<void> DiskDriver::QueueingServiceLoop() {
  while (!stopping_) {
    DispatchToDevice();
    const DeviceCommand* cmd = device_queue_->PickNext(*model_, engine_->Now());
    if (cmd == nullptr) {
      if (queue_.empty() && accepted_.empty()) {
        queue_empty_.NotifyAll();
      }
      co_await work_available_.Await();
      continue;
    }
    if (cmd->seq != device_queue_->OldestSeq()) {
      stat_rpo_picks_->Inc();  // A true reordering, not just FIFO.
    }
    Request* r = static_cast<Request*>(cmd->cookie);
    uint64_t seq = cmd->seq;
    in_service_ = r;
    SimTime service_start = engine_->Now();
    uint32_t origin = scan_from_;
    uint32_t attempts = 0;
    // The entire fault/retry/remap path is shared with the depth-1 loop.
    // The command stays in the device queue across retries, so its tag
    // keeps constraining (and being constrained by) its queue siblings,
    // and no sibling can be reordered past a barrier by a retry.
    IoStatus status = co_await ServiceOne(r, service_start, origin, &attempts);
    scan_from_ = r->blkno + r->count;
    if (config_.collect_traces) {
      RequestTrace t;
      t.id = r->ids.front();
      t.dir = r->dir;
      t.blkno = r->blkno;
      t.count = r->count;
      t.flagged = r->flag;
      t.issue_time = r->issue_time;
      t.service_start = service_start;
      t.complete_time = engine_->Now();
      t.status = status;
      t.retries = attempts;
      traces_.push_back(t);
    }
    std::unique_ptr<Request> owned;
    for (auto it = accepted_.begin(); it != accepted_.end(); ++it) {
      if (it->get() == r) {
        owned = std::move(*it);
        accepted_.erase(it);
        break;
      }
    }
    device_queue_->Remove(seq);
    Complete(r, status);
    in_service_ = nullptr;
    stat_queue_depth_->Set(static_cast<int64_t>(PendingCount()));
    stat_device_queue_->Set(static_cast<int64_t>(device_queue_->Size()));
  }
}

Task<IoStatus> DiskDriver::ServiceOne(Request* r, SimTime service_start, uint32_t origin,
                                      uint32_t* attempts_out) {
  // One device command per iteration; a faulted attempt either backs off
  // and retries (the request stays in_service_, so its id, issue index
  // and every eligibility/dependency structure are untouched) or gives
  // up and completes with kFailed.
  uint32_t attempts = 0;       // Failed attempts so far.
  uint32_t bad_hits = 0;       // Consecutive bad-sector failures.
  SimDuration backoff = config_.retry_backoff;
  IoStatus status = IoStatus::kOk;
  for (;;) {
    FaultKind fault = config_.faults == nullptr
                          ? FaultKind::kNone
                          : config_.faults->Decide(r->dir, r->blkno, r->count);
    if (fault == FaultKind::kTornWrite || fault == FaultKind::kMisdirected) {
      // Silent damage: the device reports success, so from here on this
      // attempt IS the success path (access time, no retry). The damaged
      // media transfer itself happens at Complete().
      r->silent_damage = static_cast<uint8_t>(fault);
      if (stats_->tracing()) {
        stats_->Trace(trace_names_.fault, {{"id", r->ids.front()},
                                     {"blkno", r->blkno},
                                     {"count", r->count},
                                     {"kind", FaultKindName(fault)},
                                     {"attempt", attempts}});
      }
      fault = FaultKind::kNone;
    }
    if (fault == FaultKind::kNone) {
      uint32_t from_cyl = model_->CurrentCylinder();
      SimDuration dur =
          model_->Access(r->dir == IoDir::kWrite, r->blkno, r->count, engine_->Now());
      stat_busy_ns_->Inc(static_cast<uint64_t>(dur));
      stat_access_->Record(dur);
      if (attempts == 0) {
        stat_queue_delay_->Record(service_start - r->issue_time);
      }
      if (stats_->tracing()) {
        uint32_t to_cyl = model_->CylinderOf(r->blkno);
        uint32_t seek_cyls = to_cyl > from_cyl ? to_cyl - from_cyl : from_cyl - to_cyl;
        stats_->Trace(trace_names_.service,
                      {{"id", r->ids.front()},
                       {"dir", r->dir == IoDir::kWrite ? "w" : "r"},
                       {"blkno", r->blkno},
                       {"count", r->count},
                       {"origin", origin},
                       {"seek_cyls", seek_cyls},
                       {"qdepth", PendingCount()}});
      }
      co_await engine_->Sleep(dur);
      break;
    }
    if (stats_->tracing()) {
      stats_->Trace(trace_names_.fault, {{"id", r->ids.front()},
                                   {"blkno", r->blkno},
                                   {"count", r->count},
                                   {"kind", FaultKindName(fault)},
                                   {"attempt", attempts}});
    }
    if (fault == FaultKind::kStall) {
      // The command hangs at the device; the driver detects it with a
      // timeout, aborts, and re-issues.
      stat_timeouts_->Inc();
      stat_busy_ns_->Inc(static_cast<uint64_t>(config_.request_timeout));
      co_await engine_->Sleep(config_.request_timeout);
    } else {
      // Media error: the device spends the access time before reporting
      // the failure.
      SimDuration dur =
          model_->Access(r->dir == IoDir::kWrite, r->blkno, r->count, engine_->Now());
      stat_busy_ns_->Inc(static_cast<uint64_t>(dur));
      co_await engine_->Sleep(dur);
      if (fault == FaultKind::kBadSector) {
        ++bad_hits;
        if (bad_hits >= 2) {
          // The same sectors failed verification twice: reallocate them
          // into the spare pool if spares remain. The remap is
          // transparent and LBA-preserving, so the next attempt both
          // succeeds and sees the original contents.
          std::vector<uint32_t> bad = config_.faults->BadBlocksIn(r->blkno, r->count);
          if (!bad.empty() &&
              spares_used_ + bad.size() <= static_cast<size_t>(config_.spare_blocks)) {
            for (uint32_t b : bad) {
              config_.faults->Remap(b);
              ++spares_used_;
              stat_remaps_->Inc();
              if (stats_->tracing()) {
                stats_->Trace(trace_names_.remap, {{"id", r->ids.front()}, {"blkno", b}});
              }
            }
            bad_hits = 0;
          }
        }
      }
    }
    if (attempts >= static_cast<uint32_t>(config_.max_retries)) {
      stat_gave_up_->Inc();
      if (stats_->tracing()) {
        stats_->Trace(trace_names_.gave_up, {{"id", r->ids.front()},
                                       {"blkno", r->blkno},
                                       {"count", r->count},
                                       {"attempts", attempts + 1}});
      }
      status = IoStatus::kFailed;
      break;
    }
    ++attempts;
    stat_retries_->Inc();
    // Exponential backoff in simulated time before the re-issue.
    co_await engine_->Sleep(backoff);
    backoff = std::min<SimDuration>(backoff * 2, config_.retry_backoff_cap);
  }
  *attempts_out = attempts;
  co_return status;
}

void DiskDriver::Complete(Request* req, IoStatus status) {
  SimTime now = engine_->Now();
  if (status == IoStatus::kOk) {
    stat_response_->Record(now - req->issue_time);
    if (stats_->tracing()) {
      stats_->Trace(trace_names_.complete, {{"id", req->ids.front()},
                                      {"blkno", req->blkno},
                                      {"count", req->count},
                                      {"response_ns", now - req->issue_time}});
    }
    // Media transfer happens only on success: a failed write leaves the
    // image untouched, a failed read leaves the destination untouched.
    if (req->dir == IoDir::kWrite) {
      switch (static_cast<FaultKind>(req->silent_damage)) {
        case FaultKind::kTornWrite: {
          // A prefix of the transfer persists in full, the in-flight
          // block persists torn, the tail never reaches the medium.
          uint32_t torn_at = req->count / 2;
          for (uint32_t i = 0; i < torn_at; ++i) {
            image_->Write(MapLba(req->blkno + i), *req->data[i], engine_->Now());
          }
          image_->WriteTorn(MapLba(req->blkno + torn_at), *req->data[torn_at],
                            engine_->Now());
          break;
        }
        case FaultKind::kMisdirected: {
          // The whole payload lands one slip away; the intended range
          // keeps its stale content. The victim is picked in this disk's
          // own LBA space (a misdirection never jumps spindles).
          uint32_t victim =
              FaultInjector::MisdirectVictim(req->blkno, req->count, media_blocks_);
          for (uint32_t i = 0; i < req->count; ++i) {
            image_->Write(MapLba(victim + i), *req->data[i], engine_->Now());
          }
          break;
        }
        default:
          for (uint32_t i = 0; i < req->count; ++i) {
            image_->Write(MapLba(req->blkno + i), *req->data[i], engine_->Now());
          }
          break;
      }
    } else {
      image_->Read(MapLba(req->blkno), req->read_out);
    }
  } else if (stats_->tracing()) {
    stats_->Trace(trace_names_.complete, {{"id", req->ids.front()},
                                    {"blkno", req->blkno},
                                    {"count", req->count},
                                    {"response_ns", now - req->issue_time},
                                    {"status", IoStatusName(status)}});
  }
  UnindexRequest(*req);
  for (uint64_t id : req->ids) {
    completed_.emplace(id, status);
    auto it = waiters_.find(id);
    if (it != waiters_.end()) {
      it->second->Set();
      waiters_.erase(it);
    }
  }
  // Interrupt-level completion processing (must not block). Every ISR
  // receives the terminal status and must handle failure.
  for (auto& isr : req->isrs) {
    isr(status);
  }
  PruneFlaggedIndices();
}

void DiskDriver::PruneFlaggedIndices() {
  // Flagged indices only matter while some request issued at or after
  // them is still pending; drop entries below the oldest pending index.
  uint64_t oldest = pending_indices_.empty() ? next_issue_index_ : *pending_indices_.begin();
  auto it = std::lower_bound(flagged_indices_.begin(), flagged_indices_.end(), oldest);
  flagged_indices_.erase(flagged_indices_.begin(), it);
}

void DiskDriver::Kick() { work_available_.NotifyAll(); }

Task<IoStatus> DiskDriver::WaitFor(uint64_t id) {
  auto done = completed_.find(id);
  if (done != completed_.end()) {
    co_return done->second;
  }
  auto it = waiters_.find(id);
  if (it == waiters_.end()) {
    it = waiters_.emplace(id, std::make_unique<OneShotEvent>(engine_)).first;
  }
  co_await it->second->Wait();
  co_return completed_.at(id);
}

size_t DiskDriver::PendingCount() const {
  size_t n = queue_.size() + accepted_.size();
  if (in_service_ != nullptr && device_queue_ == nullptr) {
    ++n;  // Depth 1: the in-service request is detached from the queue.
  }
  return n;
}

Task<void> DiskDriver::Drain() {
  while (PendingCount() != 0) {
    co_await queue_empty_.Await();
  }
}

bool DiskDriver::HasPendingWrite(uint32_t blkno, uint32_t count) const {
  for (uint32_t b = blkno; b < blkno + count; ++b) {
    if (pending_writes_by_block_.contains(b)) {
      return true;
    }
  }
  return false;
}

}  // namespace mufs
