// Striped multi-disk volume: N independent disk stacks (DiskModel +
// FaultInjector + DiskDriver, each with its own device queue) behind one
// BlockDevice surface, with block-address striping mapping volume LBAs
// onto (disk, local lba) pairs.
//
// Ordering: the member drivers run OrderingMode::kNone; the volume owns
// the scheme's ordering discipline instead, because flag semantics and
// chain dependencies constrain VOLUME issue order, which per-disk queues
// cannot see. The volume holds back requests until they are eligible
// under the exact same rules the single-disk driver enforces (the rules
// are monotone - a request once eligible stays eligible - so forwarding
// eligible requests early is always safe), then lets each disk schedule
// its own C-LOOK / tagged-queueing locally. The device-level invariant
// (overlapping writes complete in issue order) is preserved because
// identical block ranges always map to the same disk and the volume
// forwards in issue order.
//
// Stable storage is ONE volume-addressed DiskImage shared by all member
// drivers (each translating local LBAs through DriverConfig::image_map),
// so crash snapshots, the write-count crash index and torn-write arming
// stay volume-wide - the whole crash harness works unchanged.
#ifndef MUFS_SRC_VOLUME_VOLUME_H_
#define MUFS_SRC_VOLUME_VOLUME_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/driver/disk_driver.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/stats/stats_registry.h"

namespace mufs {

// Striping math: volume LBA v lives in stripe chunk v / stripe_unit;
// chunks rotate round-robin over the disks.
struct VolumeLayout {
  uint32_t disks = 1;
  uint32_t stripe_unit = 16;  // Blocks per stripe chunk (64 KB default).
  uint32_t blocks_per_disk = 0;

  uint32_t TotalBlocks() const { return disks * blocks_per_disk; }

  void Map(uint32_t volume_lba, uint32_t* disk, uint32_t* local_lba) const {
    const uint32_t stripe = volume_lba / stripe_unit;
    *disk = stripe % disks;
    *local_lba = (stripe / disks) * stripe_unit + volume_lba % stripe_unit;
  }

  uint32_t ToVolume(uint32_t disk, uint32_t local_lba) const {
    const uint32_t stripe = local_lba / stripe_unit;
    return (stripe * disks + disk) * stripe_unit + local_lba % stripe_unit;
  }

  // Blocks remaining in volume_lba's chunk, counting volume_lba itself:
  // a transfer larger than this spans disks and must be split.
  uint32_t RunLength(uint32_t volume_lba) const {
    return stripe_unit - volume_lba % stripe_unit;
  }
};

struct VolumeConfig {
  VolumeLayout layout;
  // The scheme's ordering discipline, enforced at the volume gate (the
  // member drivers all run OrderingMode::kNone).
  OrderingMode mode = OrderingMode::kNone;
  FlagSemantics semantics = FlagSemantics::kPart;
  bool reads_bypass = false;  // -NR
  StatsRegistry* stats = nullptr;  // Required: the Machine's registry.
};

class StripedVolume : public BlockDevice {
 public:
  // `disks` are borrowed (the Machine owns them); one per layout disk.
  StripedVolume(Engine* engine, std::vector<DiskDriver*> disks, VolumeConfig config);
  StripedVolume(const StripedVolume&) = delete;
  StripedVolume& operator=(const StripedVolume&) = delete;
  ~StripedVolume() override = default;

  uint64_t IssueWrite(uint32_t blkno, std::vector<std::shared_ptr<const BlockData>> data,
                      OrderingTag tag = {}, IoCallback isr = nullptr) override;
  uint64_t IssueRead(uint32_t blkno, BlockData* out, IoCallback isr = nullptr) override;
  Task<IoStatus> WaitFor(uint64_t id) override;
  bool IsComplete(uint64_t id) const override { return completed_.contains(id); }
  IoStatus CompletionStatus(uint64_t id) const override {
    auto it = completed_.find(id);
    return it == completed_.end() ? IoStatus::kOk : it->second;
  }
  size_t PendingCount() const override { return pending_indices_.size(); }
  Task<void> Drain() override;
  bool HasPendingWrite(uint32_t blkno, uint32_t count = 1) const override;

  const VolumeLayout& layout() const { return config_.layout; }
  size_t HeldCount() const { return held_.size(); }  // Gated, not yet forwarded.

 private:
  struct VReq {
    uint64_t id = 0;
    IoDir dir = IoDir::kRead;
    uint32_t blkno = 0;
    uint32_t count = 0;
    bool flag = false;
    std::vector<uint64_t> deps;
    uint64_t issue_index = 0;
    uint32_t subs_outstanding = 0;
    IoStatus status = IoStatus::kOk;  // Worst sub-request status.
    std::vector<std::shared_ptr<const BlockData>> data;  // Writes.
    BlockData* read_out = nullptr;                       // Reads.
    IoCallback isr;
  };

  uint64_t Issue(std::unique_ptr<VReq> req);
  // Mirrors DiskDriver::Eligible over incomplete volume requests.
  bool Eligible(const VReq& r) const;
  bool ConflictsWithEarlierWrite(const VReq& r) const;
  // Forwards every eligible held request, in issue order, to the disks.
  void TryDispatch();
  void Forward(VReq* r);
  void OnSubComplete(VReq* r, IoStatus status);
  void IndexRequest(const VReq& r);
  void UnindexRequest(const VReq& r);
  void PruneFlaggedIndices();

  Engine* engine_;
  std::vector<DiskDriver*> disks_;
  VolumeConfig config_;

  uint64_t next_id_ = 1;
  uint64_t next_issue_index_ = 1;
  // Requests held at the ordering gate, issue order.
  std::list<std::unique_ptr<VReq>> held_;
  // Forwarded but incomplete requests (keyed by id; kept indexed so they
  // still constrain later requests, exactly like in-service driver
  // requests).
  std::unordered_map<uint64_t, std::unique_ptr<VReq>> in_flight_;

  // Eligibility indexes over ALL incomplete requests (held + in-flight),
  // mirroring the driver's.
  std::set<uint64_t> pending_indices_;
  std::set<uint64_t> pending_flagged_indices_;
  std::unordered_map<uint32_t, std::set<uint64_t>> pending_writes_by_block_;
  std::vector<uint64_t> flagged_indices_;  // Ascending; pruned as queue drains.

  std::unordered_map<uint64_t, IoStatus> completed_;
  std::unordered_map<uint64_t, std::unique_ptr<OneShotEvent>> waiters_;
  CondVar all_done_;

  Counter* stat_reads_ = nullptr;
  Counter* stat_writes_ = nullptr;
  Counter* stat_splits_ = nullptr;  // Extra per-disk sub-requests created.
  Counter* stat_held_ = nullptr;    // Requests gated at least once.
};

// One shard's view of the volume: the same device, offset by the shard's
// base LBA, with shard-local outstanding accounting so a shard's Drain()
// (fsync, sync-everything) waits only for its own requests instead of
// coupling every shard's quiesce points together.
class ShardDevice : public BlockDevice {
 public:
  ShardDevice(Engine* engine, BlockDevice* volume, uint32_t base_lba)
      : engine_(engine), volume_(volume), base_(base_lba), idle_(engine) {}
  ShardDevice(const ShardDevice&) = delete;
  ShardDevice& operator=(const ShardDevice&) = delete;
  ~ShardDevice() override = default;

  uint64_t IssueWrite(uint32_t blkno, std::vector<std::shared_ptr<const BlockData>> data,
                      OrderingTag tag = {}, IoCallback isr = nullptr) override;
  uint64_t IssueRead(uint32_t blkno, BlockData* out, IoCallback isr = nullptr) override;
  Task<IoStatus> WaitFor(uint64_t id) override { return volume_->WaitFor(id); }
  bool IsComplete(uint64_t id) const override { return volume_->IsComplete(id); }
  IoStatus CompletionStatus(uint64_t id) const override {
    return volume_->CompletionStatus(id);
  }
  size_t PendingCount() const override { return outstanding_; }
  Task<void> Drain() override;
  bool HasPendingWrite(uint32_t blkno, uint32_t count = 1) const override {
    // Shard regions are disjoint, so the volume-wide check is exact.
    return volume_->HasPendingWrite(base_ + blkno, count);
  }

  uint32_t base() const { return base_; }

 private:
  IoCallback WrapIsr(IoCallback isr);

  Engine* engine_;
  BlockDevice* volume_;
  uint32_t base_;
  size_t outstanding_ = 0;
  CondVar idle_;
};

}  // namespace mufs

#endif  // MUFS_SRC_VOLUME_VOLUME_H_
