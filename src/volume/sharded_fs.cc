#include "src/volume/sharded_fs.h"

#include <cassert>
#include <cstring>
#include <set>
#include <utility>

#include "src/fsck/fsck.h"

namespace mufs {

ShardedFs::ShardedFs(Engine* engine, std::vector<FileSystem*> shards,
                     uint32_t ino_stride)
    : engine_(engine),
      shards_(std::move(shards)),
      ino_stride_(ino_stride),
      ns_mu_(engine) {
  assert(!shards_.empty());
  assert(ino_stride_ > 0);
}

uint32_t ShardedFs::HashLeaf(std::string_view leaf) {
  // FNV-1a, 32-bit.
  uint32_t h = 2166136261u;
  for (char c : leaf) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

std::string_view ShardedFs::Leaf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return path;
  }
  return std::string_view(path).substr(slash + 1);
}

Task<void> ShardedFs::MirrorBranch(FileSystem* fs, Proc* proc, DirOp op,
                                   const std::string* a, const std::string* b,
                                   FanState* fan) {
  FsStatus st = FsStatus::kOk;
  switch (op) {
    case DirOp::kMkdir:
      st = co_await fs->Mkdir(*proc, *a);
      break;
    case DirOp::kRmdir:
      st = co_await fs->Rmdir(*proc, *a);
      break;
    case DirOp::kRename:
      st = co_await fs->Rename(*proc, *a, *b);
      break;
  }
  if (fan->worst == FsStatus::kOk) {
    fan->worst = st;
  }
  if (--fan->remaining == 0) {
    fan->cv.NotifyAll();
  }
}

Task<FsStatus> ShardedFs::Broadcast(Proc& proc, DirOp op, const std::string& a,
                                    const std::string& b, size_t first) {
  // The mirrors are independent file systems on (with striping) different
  // spindle sets: run the branches concurrently and join. The caller's
  // frame outlives the join, so the branches may borrow its strings.
  FanState fan(engine_);
  fan.remaining = static_cast<int>(shards_.size() - first);
  if (fan.remaining == 0) {
    co_return FsStatus::kOk;
  }
  for (size_t s = first; s < shards_.size(); ++s) {
    engine_->Spawn(MirrorBranch(shards_[s], &proc, op, &a, &b, &fan), "shard-mirror");
  }
  while (fan.remaining > 0) {
    co_await fan.cv.Await();
  }
  co_return fan.worst;
}

Task<Result<uint32_t>> ShardedFs::Create(Proc& proc, const std::string& path) {
  size_t s = ShardOfPath(path);
  Result<uint32_t> r = co_await shards_[s]->Create(proc, path);
  if (!r.Ok()) {
    co_return r.status();
  }
  co_return EncodeIno(s, r.value());
}

Task<FsStatus> ShardedFs::Mkdir(Proc& proc, const std::string& path) {
  // Directories are mirrored: create the directory in every shard so any
  // shard can resolve paths through it. Shard 0 is the gatekeeper - its
  // result decides existence/validity before the mirrors are touched.
  LockGuard g = co_await LockGuard::Acquire(&ns_mu_);
  FsStatus s0 = co_await shards_[0]->Mkdir(proc, path);
  if (s0 != FsStatus::kOk) {
    co_return s0;
  }
  co_return co_await Broadcast(proc, DirOp::kMkdir, path, path, /*first=*/1);
}

Task<FsStatus> ShardedFs::Unlink(Proc& proc, const std::string& path) {
  co_return co_await shards_[ShardOfPath(path)]->Unlink(proc, path);
}

Task<FsStatus> ShardedFs::Rmdir(Proc& proc, const std::string& path) {
  // A mirrored directory is removable only when EVERY shard's mirror is
  // empty (each shard holds its own files); pre-check all shards before
  // mutating any, so a kNotEmpty cannot strand a half-removed mirror.
  LockGuard g = co_await LockGuard::Acquire(&ns_mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<std::vector<DirEntryInfo>> rd = co_await shards_[s]->ReadDir(proc, path);
    if (!rd.Ok()) {
      co_return rd.status();
    }
    if (!rd.value().empty()) {
      co_return FsStatus::kNotEmpty;
    }
  }
  co_return co_await Broadcast(proc, DirOp::kRmdir, path, path, /*first=*/0);
}

Task<FsStatus> ShardedFs::Rename(Proc& proc, const std::string& from,
                                 const std::string& to) {
  size_t s_from = ShardOfPath(from);
  size_t s_to = ShardOfPath(to);
  // Directories are mirrored in every shard (including s_from), so the
  // source shard's view is authoritative for the source's type.
  Result<StatInfo> src = co_await shards_[s_from]->Stat(proc, from);
  if (!src.Ok()) {
    co_return src.status();
  }
  if (src.value().type == FileType::kDirectory) {
    // Directory rename: broadcast to keep the mirrors identical. Reject
    // if the destination name is taken by a regular file in its shard
    // (the other shards cannot see it, but the rename must).
    LockGuard g = co_await LockGuard::Acquire(&ns_mu_);
    Result<StatInfo> dst = co_await shards_[s_to]->Stat(proc, to);
    if (dst.Ok() && dst.value().type == FileType::kRegular) {
      co_return FsStatus::kExists;
    }
    co_return co_await Broadcast(proc, DirOp::kRename, from, to, /*first=*/0);
  }
  if (s_from == s_to) {
    co_return co_await shards_[s_from]->Rename(proc, from, to);
  }
  // Regular-file migration touches no directory structure, so it runs
  // outside the namespace lock: its per-shard operations are internally
  // consistent, and a concurrent rmdir of the destination's parent just
  // fails the Create (source intact - the unlink comes last).
  co_return co_await CrossShardRename(proc, from, to, s_from, s_to);
}

Task<FsStatus> ShardedFs::CrossShardRename(Proc& proc, const std::string& from,
                                           const std::string& to, size_t s_from,
                                           size_t s_to) {
  // Two-shard ordered protocol, non-replacing like FileSystem::Rename:
  //   1. copy the file into the destination shard under the new name,
  //   2. force the destination shard's copy durable (barrier),
  //   3. unlink the source name in the source shard.
  // The barrier orders "new name durable" before "old name removed", so
  // a crash at ANY point leaves the file reachable under at least one of
  // the two names, and each shard's own ordering scheme keeps that
  // shard's metadata fsck-consistent.
  Result<StatInfo> src = co_await shards_[s_from]->Stat(proc, from);
  if (!src.Ok()) {
    co_return src.status();
  }
  if (src.value().type != FileType::kRegular) {
    co_return FsStatus::kIsDirectory;
  }
  Result<StatInfo> dst = co_await shards_[s_to]->Stat(proc, to);
  if (dst.Ok()) {
    co_return FsStatus::kExists;
  }
  if (dst.status() != FsStatus::kNotFound) {
    co_return dst.status();
  }
  std::vector<uint8_t> data(src.value().size);
  if (!data.empty()) {
    Result<uint64_t> rd =
        co_await shards_[s_from]->ReadFile(proc, src.value().ino, 0, data);
    if (!rd.Ok()) {
      co_return rd.status();
    }
    data.resize(rd.value());
  }
  Result<uint32_t> created = co_await shards_[s_to]->Create(proc, to);
  if (!created.Ok()) {
    co_return created.status();
  }
  Result<StatInfo> created_st = co_await shards_[s_to]->StatIno(proc, created.value());
  if (!created_st.Ok()) {
    co_return created_st.status();
  }
  // The file is now owned by a new inode in a new shard: restamp any
  // workload data-block tags with the destination's GLOBAL inode number
  // and generation, so fsck's stale-data check accepts the migrated
  // blocks. Untagged blocks pass through byte-identical.
  for (uint64_t off = 0; off + sizeof(DataBlockTag) <= data.size(); off += kBlockSize) {
    DataBlockTag tag;
    std::memcpy(&tag, data.data() + off, sizeof(tag));
    if (tag.magic == kDataTagMagic) {
      tag.ino = EncodeIno(s_to, created.value());
      tag.generation = created_st.value().generation;
      std::memcpy(data.data() + off, &tag, sizeof(tag));
    }
  }
  if (!data.empty()) {
    Result<uint64_t> wr =
        co_await shards_[s_to]->WriteFile(proc, created.value(), 0, data);
    if (!wr.Ok()) {
      co_return wr.status();
    }
  }
  // Barrier: force the destination durable (Fsync drains the shard's
  // dirty state through its ordering policy) before the source name can
  // be removed. The two shards have independent ordering domains -
  // without this, the source's unlink could reach stable storage first
  // and a crash would lose the file. Schemes whose metadata updates are
  // synchronous (Conventional) already persisted the destination entry
  // inside Create, so the explicit barrier is elided.
  if (!shards_[s_to]->policy()->MetadataSynchronous()) {
    FsStatus barrier = co_await shards_[s_to]->Fsync(proc, created.value());
    if (barrier != FsStatus::kOk) {
      co_return barrier;
    }
  }
  ++cross_shard_renames_;
  co_return co_await shards_[s_from]->Unlink(proc, from);
}

Task<FsStatus> ShardedFs::Link(Proc& proc, const std::string& existing,
                               const std::string& link_path) {
  size_t s_from = ShardOfPath(existing);
  size_t s_to = ShardOfPath(link_path);
  if (s_from != s_to) {
    // A hard link cannot span shards (one inode, two ordering domains).
    co_return FsStatus::kBusy;
  }
  co_return co_await shards_[s_from]->Link(proc, existing, link_path);
}

Task<Result<uint32_t>> ShardedFs::Lookup(Proc& proc, const std::string& path) {
  Result<StatInfo> st = co_await Stat(proc, path);
  if (!st.Ok()) {
    co_return st.status();
  }
  co_return st.value().ino;
}

Task<Result<StatInfo>> ShardedFs::Stat(Proc& proc, const std::string& path) {
  size_t s = ShardOfPath(path);
  Result<StatInfo> st = co_await shards_[s]->Stat(proc, path);
  if (!st.Ok()) {
    co_return st.status();
  }
  if (st.value().type == FileType::kDirectory && s != 0) {
    // Directory inode numbers are canonically shard 0's mirror.
    co_return co_await shards_[0]->Stat(proc, path);
  }
  StatInfo info = st.value();
  info.ino = EncodeIno(s, info.ino);
  co_return info;
}

Task<Result<StatInfo>> ShardedFs::StatIno(Proc& proc, uint32_t ino) {
  size_t s = ShardOfIno(ino);
  if (s >= shards_.size()) {
    co_return FsStatus::kInvalid;
  }
  Result<StatInfo> st = co_await shards_[s]->StatIno(proc, LocalIno(ino));
  if (!st.Ok()) {
    co_return st.status();
  }
  StatInfo info = st.value();
  info.ino = ino;
  co_return info;
}

Task<Result<std::vector<DirEntryInfo>>> ShardedFs::ReadDir(Proc& proc,
                                                           const std::string& path) {
  // Union of all shards' listings. Directory entries are mirrored and
  // appear in every shard - shard 0 (visited first) wins the dedupe, so
  // mirrored directories report their canonical shard-0 inode numbers.
  std::vector<DirEntryInfo> out;
  std::set<std::string> seen;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<std::vector<DirEntryInfo>> rd = co_await shards_[s]->ReadDir(proc, path);
    if (!rd.Ok()) {
      co_return rd.status();
    }
    for (DirEntryInfo& e : rd.value()) {
      if (seen.insert(e.name).second) {
        out.push_back({EncodeIno(s, e.ino), std::move(e.name)});
      }
    }
  }
  co_return out;
}

Task<Result<uint64_t>> ShardedFs::WriteFile(Proc& proc, uint32_t ino, uint64_t offset,
                                            std::span<const uint8_t> data) {
  size_t s = ShardOfIno(ino);
  if (s >= shards_.size()) {
    co_return FsStatus::kInvalid;
  }
  co_return co_await shards_[s]->WriteFile(proc, LocalIno(ino), offset, data);
}

Task<Result<uint64_t>> ShardedFs::ReadFile(Proc& proc, uint32_t ino, uint64_t offset,
                                           std::span<uint8_t> out) {
  size_t s = ShardOfIno(ino);
  if (s >= shards_.size()) {
    co_return FsStatus::kInvalid;
  }
  co_return co_await shards_[s]->ReadFile(proc, LocalIno(ino), offset, out);
}

Task<FsStatus> ShardedFs::Truncate(Proc& proc, uint32_t ino, uint64_t new_size) {
  size_t s = ShardOfIno(ino);
  if (s >= shards_.size()) {
    co_return FsStatus::kInvalid;
  }
  co_return co_await shards_[s]->Truncate(proc, LocalIno(ino), new_size);
}

Task<FsStatus> ShardedFs::Fsync(Proc& proc, uint32_t ino) {
  size_t s = ShardOfIno(ino);
  if (s >= shards_.size()) {
    co_return FsStatus::kInvalid;
  }
  co_return co_await shards_[s]->Fsync(proc, LocalIno(ino));
}

Task<FsStatus> ShardedFs::SyncEverything(Proc& proc) {
  FsStatus worst = FsStatus::kOk;
  for (FileSystem* fs : shards_) {
    FsStatus st = co_await fs->SyncEverything(proc);
    if (worst == FsStatus::kOk) {
      worst = st;
    }
  }
  co_return worst;
}

FsOpStats ShardedFs::op_stats() const {
  // All shards share the machine's registry, so any shard's snapshot of
  // the fs.* counters already covers the whole machine.
  return shards_[0]->op_stats();
}

bool ShardedFs::io_degraded() const {
  for (FileSystem* fs : shards_) {
    if (fs->io_degraded()) {
      return true;
    }
  }
  return false;
}

bool ShardedFs::AnyDirtyInode() const {
  for (FileSystem* fs : shards_) {
    if (fs->AnyDirtyInode()) {
      return true;
    }
  }
  return false;
}

void ShardedFs::DropCleanInodes() {
  for (FileSystem* fs : shards_) {
    fs->DropCleanInodes();
  }
}

}  // namespace mufs
