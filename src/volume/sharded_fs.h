// Sharded metadata machine: S independent FileSystem instances (each
// with its own buffer cache, syncer cadence, ordering policy and journal
// extent) behind one FsInterface, each owning a contiguous region of a
// striped volume.
//
// Routing: regular files live in exactly one shard, chosen by hashing
// the final path component (FNV-1a), so a file's entire metadata chain
// (dirent, inode, bitmaps, data) stays inside one shard's ordering
// domain. Directories are MIRRORED into every shard - each shard holds
// the full directory skeleton - so any shard can resolve any file path
// locally; structural namespace operations (mkdir, rmdir, directory
// rename) broadcast to all shards under the namespace mutex.
//
// Inode numbers exposed upward are global: shard * stride + local, with
// stride = per-shard total_inodes. Shard 0's numbers are unchanged, and
// directory inode numbers are canonically shard 0's mirror.
//
// Cross-shard rename is a two-shard ordered protocol (create-copy in the
// destination shard, sync it durable, then unlink in the source shard);
// a crash at any ordering point leaves the file reachable at the old or
// the new name, and every shard individually fsck-clean.
#ifndef MUFS_SRC_VOLUME_SHARDED_FS_H_
#define MUFS_SRC_VOLUME_SHARDED_FS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/fs/filesystem.h"
#include "src/fs/fs_interface.h"
#include "src/sim/sync.h"

namespace mufs {

class ShardedFs : public FsInterface {
 public:
  // `shards` are borrowed (the Machine owns them); `ino_stride` is the
  // per-shard inode-space size (every shard is formatted identically).
  ShardedFs(Engine* engine, std::vector<FileSystem*> shards, uint32_t ino_stride);
  ShardedFs(const ShardedFs&) = delete;
  ShardedFs& operator=(const ShardedFs&) = delete;
  ~ShardedFs() override = default;

  Task<Result<uint32_t>> Create(Proc& proc, const std::string& path) override;
  Task<FsStatus> Mkdir(Proc& proc, const std::string& path) override;
  Task<FsStatus> Unlink(Proc& proc, const std::string& path) override;
  Task<FsStatus> Rmdir(Proc& proc, const std::string& path) override;
  Task<FsStatus> Rename(Proc& proc, const std::string& from,
                        const std::string& to) override;
  Task<FsStatus> Link(Proc& proc, const std::string& existing,
                      const std::string& link_path) override;
  Task<Result<uint32_t>> Lookup(Proc& proc, const std::string& path) override;
  Task<Result<StatInfo>> Stat(Proc& proc, const std::string& path) override;
  Task<Result<StatInfo>> StatIno(Proc& proc, uint32_t ino) override;
  Task<Result<std::vector<DirEntryInfo>>> ReadDir(Proc& proc,
                                                  const std::string& path) override;
  Task<Result<uint64_t>> WriteFile(Proc& proc, uint32_t ino, uint64_t offset,
                                   std::span<const uint8_t> data) override;
  Task<Result<uint64_t>> ReadFile(Proc& proc, uint32_t ino, uint64_t offset,
                                  std::span<uint8_t> out) override;
  Task<FsStatus> Truncate(Proc& proc, uint32_t ino, uint64_t new_size) override;
  Task<FsStatus> Fsync(Proc& proc, uint32_t ino) override;
  Task<FsStatus> SyncEverything(Proc& proc) override;

  FsOpStats op_stats() const override;
  bool io_degraded() const override;
  bool AnyDirtyInode() const override;
  void DropCleanInodes() override;

  // --- shard-addressing helpers (also used by tests) -----------------
  size_t num_shards() const { return shards_.size(); }
  uint32_t ino_stride() const { return ino_stride_; }
  FileSystem* shard(size_t s) const { return shards_[s]; }
  static uint32_t HashLeaf(std::string_view leaf);
  size_t ShardOfLeaf(std::string_view leaf) const {
    return HashLeaf(leaf) % shards_.size();
  }
  size_t ShardOfPath(const std::string& path) const { return ShardOfLeaf(Leaf(path)); }
  uint32_t EncodeIno(size_t shard, uint32_t local) const {
    return static_cast<uint32_t>(shard) * ino_stride_ + local;
  }
  size_t ShardOfIno(uint32_t global) const { return global / ino_stride_; }
  uint32_t LocalIno(uint32_t global) const { return global % ino_stride_; }

  uint64_t CrossShardRenames() const { return cross_shard_renames_; }

 private:
  // Join state for a parallel broadcast: each branch records its status
  // and the last one to finish wakes the waiter.
  struct FanState {
    explicit FanState(Engine* engine) : cv(engine) {}
    int remaining = 0;
    FsStatus worst = FsStatus::kOk;
    CondVar cv;
  };
  enum class DirOp { kMkdir, kRmdir, kRename };

  static std::string_view Leaf(const std::string& path);
  // One branch of a directory broadcast, spawned per shard.
  Task<void> MirrorBranch(FileSystem* fs, Proc* proc, DirOp op, const std::string* a,
                          const std::string* b, FanState* fan);
  // Runs `op` on shards [first, size) concurrently and returns the first
  // non-kOk status (mirrors are disjoint file systems, so order between
  // them does not matter - only the join does).
  Task<FsStatus> Broadcast(Proc& proc, DirOp op, const std::string& a,
                           const std::string& b, size_t first);
  // The two-shard migration protocol (no namespace lock: it touches only
  // regular-file names, which the workload never races).
  Task<FsStatus> CrossShardRename(Proc& proc, const std::string& from,
                                  const std::string& to, size_t s_from, size_t s_to);

  Engine* engine_;
  std::vector<FileSystem*> shards_;
  uint32_t ino_stride_;
  // Serializes multi-shard structural operations (mkdir/rmdir broadcast,
  // directory rename, cross-shard file rename) so mirrors never diverge.
  Mutex ns_mu_;
  uint64_t cross_shard_renames_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_VOLUME_SHARDED_FS_H_
