#include "src/volume/volume.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mufs {

StripedVolume::StripedVolume(Engine* engine, std::vector<DiskDriver*> disks,
                             VolumeConfig config)
    : engine_(engine),
      disks_(std::move(disks)),
      config_(config),
      all_done_(engine) {
  assert(!disks_.empty());
  assert(config_.layout.disks == disks_.size());
  assert(config_.layout.stripe_unit > 0);
  assert(config_.stats != nullptr);
  stat_reads_ = &config_.stats->counter("volume.reads");
  stat_writes_ = &config_.stats->counter("volume.writes");
  stat_splits_ = &config_.stats->counter("volume.splits");
  stat_held_ = &config_.stats->counter("volume.held");
}

uint64_t StripedVolume::IssueWrite(uint32_t blkno,
                                   std::vector<std::shared_ptr<const BlockData>> data,
                                   OrderingTag tag, IoCallback isr) {
  assert(!data.empty());
  auto req = std::make_unique<VReq>();
  req->dir = IoDir::kWrite;
  req->blkno = blkno;
  req->count = static_cast<uint32_t>(data.size());
  req->flag = tag.flag;
  req->deps = std::move(tag.deps);
  req->data = std::move(data);
  req->isr = std::move(isr);
  stat_writes_->Inc();
  return Issue(std::move(req));
}

uint64_t StripedVolume::IssueRead(uint32_t blkno, BlockData* out, IoCallback isr) {
  auto req = std::make_unique<VReq>();
  req->dir = IoDir::kRead;
  req->blkno = blkno;
  req->count = 1;
  req->read_out = out;
  req->isr = std::move(isr);
  stat_reads_->Inc();
  return Issue(std::move(req));
}

uint64_t StripedVolume::Issue(std::unique_ptr<VReq> req) {
  req->id = next_id_++;
  req->issue_index = next_issue_index_++;
  if (req->flag) {
    flagged_indices_.push_back(req->issue_index);
  }
  IndexRequest(*req);
  uint64_t id = req->id;
  if (Eligible(*req)) {
    VReq* r = req.get();
    in_flight_.emplace(id, std::move(req));
    Forward(r);
  } else {
    stat_held_->Inc();
    held_.push_back(std::move(req));
  }
  return id;
}

void StripedVolume::IndexRequest(const VReq& r) {
  pending_indices_.insert(r.issue_index);
  if (r.flag) {
    pending_flagged_indices_.insert(r.issue_index);
  }
  if (r.dir == IoDir::kWrite) {
    for (uint32_t b = r.blkno; b < r.blkno + r.count; ++b) {
      pending_writes_by_block_[b].insert(r.issue_index);
    }
  }
}

void StripedVolume::UnindexRequest(const VReq& r) {
  pending_indices_.erase(r.issue_index);
  pending_flagged_indices_.erase(r.issue_index);
  if (r.dir == IoDir::kWrite) {
    for (uint32_t b = r.blkno; b < r.blkno + r.count; ++b) {
      auto it = pending_writes_by_block_.find(b);
      if (it != pending_writes_by_block_.end()) {
        it->second.erase(r.issue_index);
        if (it->second.empty()) {
          pending_writes_by_block_.erase(it);
        }
      }
    }
  }
}

void StripedVolume::PruneFlaggedIndices() {
  uint64_t oldest =
      pending_indices_.empty() ? next_issue_index_ : *pending_indices_.begin();
  auto it = std::lower_bound(flagged_indices_.begin(), flagged_indices_.end(), oldest);
  flagged_indices_.erase(flagged_indices_.begin(), it);
}

bool StripedVolume::ConflictsWithEarlierWrite(const VReq& r) const {
  for (uint32_t b = r.blkno; b < r.blkno + r.count; ++b) {
    auto it = pending_writes_by_block_.find(b);
    if (it != pending_writes_by_block_.end() && !it->second.empty() &&
        *it->second.begin() < r.issue_index) {
      return true;
    }
  }
  return false;
}

bool StripedVolume::Eligible(const VReq& r) const {
  // The exact single-disk DiskDriver::Eligible logic, evaluated over
  // volume requests. "Pending" covers requests forwarded to a disk but
  // not yet complete, matching the driver's in-service requests staying
  // indexed until Complete(). Same-range writes map to the same disk
  // (identical volume LBAs), so forwarding conflicting writes in issue
  // order lets the member driver uphold the overlap invariant; holding
  // them here additionally keeps volume-level forwarding conservative.
  if (r.dir == IoDir::kWrite && ConflictsWithEarlierWrite(r)) {
    return false;
  }
  switch (config_.mode) {
    case OrderingMode::kNone:
      return true;

    case OrderingMode::kChains: {
      for (uint64_t dep : r.deps) {
        if (!completed_.contains(dep)) {
          return false;
        }
      }
      return true;
    }

    case OrderingMode::kFlag: {
      if (r.dir == IoDir::kRead && config_.reads_bypass) {
        return !ConflictsWithEarlierWrite(r);
      }
      auto flagged_before_me = [&] {
        return !pending_flagged_indices_.empty() &&
               *pending_flagged_indices_.begin() < r.issue_index;
      };
      switch (config_.semantics) {
        case FlagSemantics::kPart:
          return !flagged_before_me();
        case FlagSemantics::kBack: {
          auto it = std::lower_bound(flagged_indices_.begin(), flagged_indices_.end(),
                                     r.issue_index);
          if (it == flagged_indices_.begin()) {
            return true;
          }
          uint64_t m = *std::prev(it);
          return pending_indices_.empty() || *pending_indices_.begin() > m;
        }
        case FlagSemantics::kFull: {
          if (flagged_before_me()) {
            return false;
          }
          if (r.flag && !pending_indices_.empty() &&
              *pending_indices_.begin() < r.issue_index) {
            return false;
          }
          return true;
        }
      }
      return true;
    }
  }
  return true;
}

void StripedVolume::TryDispatch() {
  // Forward every held request that became eligible, in issue order.
  // Eligibility under every mode is monotone in completions, so one pass
  // suffices per completion event; requests forwarded here cannot make an
  // EARLIER held request eligible (only completions can).
  for (auto it = held_.begin(); it != held_.end();) {
    if (Eligible(**it)) {
      VReq* r = it->get();
      in_flight_.emplace(r->id, std::move(*it));
      it = held_.erase(it);
      Forward(r);
    } else {
      ++it;
    }
  }
}

void StripedVolume::Forward(VReq* r) {
  const VolumeLayout& lay = config_.layout;
  if (r->dir == IoDir::kRead) {
    uint32_t disk = 0, local = 0;
    lay.Map(r->blkno, &disk, &local);
    r->subs_outstanding = 1;
    disks_[disk]->IssueRead(local, r->read_out,
                            [this, r](IoStatus s) { OnSubComplete(r, s); });
    return;
  }
  // Count stripe-chunk runs first so a sub completing while later subs
  // are still being issued cannot retire the request early.
  uint32_t subs = 0;
  for (uint32_t v = r->blkno; v < r->blkno + r->count;) {
    uint32_t run = std::min(lay.RunLength(v), r->blkno + r->count - v);
    v += run;
    ++subs;
  }
  r->subs_outstanding = subs;
  if (subs > 1) {
    stat_splits_->Inc(subs - 1);
  }
  for (uint32_t v = r->blkno; v < r->blkno + r->count;) {
    uint32_t run = std::min(lay.RunLength(v), r->blkno + r->count - v);
    uint32_t disk = 0, local = 0;
    lay.Map(v, &disk, &local);
    std::vector<std::shared_ptr<const BlockData>> slice(
        r->data.begin() + (v - r->blkno), r->data.begin() + (v - r->blkno) + run);
    disks_[disk]->IssueWrite(local, std::move(slice), {},
                             [this, r](IoStatus s) { OnSubComplete(r, s); });
    v += run;
  }
}

void StripedVolume::OnSubComplete(VReq* r, IoStatus status) {
  // Interrupt level: must not block. Notifications only schedule wakeups.
  if (r->status == IoStatus::kOk) {
    r->status = status;
  }
  assert(r->subs_outstanding > 0);
  if (--r->subs_outstanding > 0) {
    return;
  }
  auto node = in_flight_.extract(r->id);
  assert(!node.empty());
  UnindexRequest(*r);
  completed_.emplace(r->id, r->status);
  auto w = waiters_.find(r->id);
  if (w != waiters_.end()) {
    w->second->Set();
    waiters_.erase(w);
  }
  if (r->isr) {
    r->isr(r->status);
  }
  PruneFlaggedIndices();
  if (pending_indices_.empty()) {
    all_done_.NotifyAll();
  }
  // `node` keeps the request alive through its own completion; dispatch
  // newly eligible requests after the dead index is gone.
  TryDispatch();
}

Task<IoStatus> StripedVolume::WaitFor(uint64_t id) {
  auto done = completed_.find(id);
  if (done != completed_.end()) {
    co_return done->second;
  }
  auto it = waiters_.find(id);
  if (it == waiters_.end()) {
    it = waiters_.emplace(id, std::make_unique<OneShotEvent>(engine_)).first;
  }
  co_await it->second->Wait();
  co_return completed_.at(id);
}

Task<void> StripedVolume::Drain() {
  while (!pending_indices_.empty()) {
    co_await all_done_.Await();
  }
}

bool StripedVolume::HasPendingWrite(uint32_t blkno, uint32_t count) const {
  for (uint32_t b = blkno; b < blkno + count; ++b) {
    if (pending_writes_by_block_.contains(b)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------

IoCallback ShardDevice::WrapIsr(IoCallback isr) {
  ++outstanding_;
  return [this, isr = std::move(isr)](IoStatus status) {
    --outstanding_;
    if (outstanding_ == 0) {
      idle_.NotifyAll();
    }
    if (isr) {
      isr(status);
    }
  };
}

uint64_t ShardDevice::IssueWrite(uint32_t blkno,
                                 std::vector<std::shared_ptr<const BlockData>> data,
                                 OrderingTag tag, IoCallback isr) {
  return volume_->IssueWrite(base_ + blkno, std::move(data), std::move(tag),
                             WrapIsr(std::move(isr)));
}

uint64_t ShardDevice::IssueRead(uint32_t blkno, BlockData* out, IoCallback isr) {
  return volume_->IssueRead(base_ + blkno, out, WrapIsr(std::move(isr)));
}

Task<void> ShardDevice::Drain() {
  while (outstanding_ != 0) {
    co_await idle_.Await();
  }
}

}  // namespace mufs
