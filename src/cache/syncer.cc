#include "src/cache/syncer.h"

namespace mufs {

SyncerDaemon::SyncerDaemon(Engine* engine, BufferCache* cache, SyncerConfig config)
    : engine_(engine), cache_(cache), config_(config) {
  stats_ = config_.stats != nullptr ? config_.stats : cache_->stats_registry();
  stat_passes_ = &stats_->counter("syncer.passes");
  stat_workitems_ = &stats_->counter("syncer.workitems");
}

void SyncerDaemon::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  running_ = true;
  engine_->Spawn(Loop(), "syncer");
}

void SyncerDaemon::EnqueueWork(std::function<Task<void>()> work) {
  work_queue_.push_back(std::move(work));
}

Task<void> SyncerDaemon::RunWorkQueue() {
  while (!work_queue_.empty()) {
    auto work = std::move(work_queue_.front());
    work_queue_.pop_front();
    stat_workitems_->Inc();
    co_await work();
  }
}

Task<void> SyncerDaemon::DrainWork() {
  // Workitems can enqueue follow-on work (e.g. freeing an inode enqueues
  // block de-allocation); loop until quiescent.
  int guard = 0;
  while (!work_queue_.empty() && guard++ < 1000) {
    co_await RunWorkQueue();
  }
}

Task<void> SyncerDaemon::Loop() {
  if (config_.initial_phase > 0) {
    co_await engine_->Sleep(config_.initial_phase);
  }
  while (running_) {
    co_await engine_->Sleep(config_.interval);
    if (!running_) {
      break;
    }
    co_await RunWorkQueue();
    stat_passes_->Inc();
    if (stats_->tracing()) {
      stats_->Trace("syncer.pass", {{"pass", stat_passes_->value()},
                                    {"dirty", cache_->DirtyCount()},
                                    {"pending_work", work_queue_.size()}});
    }
    cache_->SyncerPass(1.0 / config_.sweep_seconds);
  }
}

}  // namespace mufs
