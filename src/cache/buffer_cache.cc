#include "src/cache/buffer_cache.h"

#include <algorithm>
#include <cassert>

namespace mufs {

BufferCache::BufferCache(Engine* engine, BlockDevice* driver, CacheConfig config)
    : engine_(engine),
      driver_(driver),
      config_(config),
      zero_block_(std::make_shared<BlockData>()),
      capacity_cv_(engine) {
  zero_block_->fill(0);
  hooks_ = &default_hooks_;
  if (config_.stats != nullptr) {
    stats_ = config_.stats;
  } else {
    owned_stats_ = std::make_unique<StatsRegistry>();
    owned_stats_->SetClock([engine] { return engine->Now(); });
    stats_ = owned_stats_.get();
  }
  stat_hits_ = &stats_->counter("cache.hits");
  stat_misses_ = &stats_->counter("cache.misses");
  stat_delayed_writes_ = &stats_->counter("cache.delayed_writes");
  stat_write_issues_ = &stats_->counter("cache.write_issues");
  stat_sync_writes_ = &stats_->counter("cache.sync_writes");
  stat_write_lock_waits_ = &stats_->counter("cache.write_lock_waits");
  stat_block_copies_ = &stats_->counter("cache.block_copies");
  stat_copy_budget_waits_ = &stats_->counter("cache.copy_budget_waits");
  stat_evictions_ = &stats_->counter("cache.evictions");
  stat_read_failures_ = &stats_->counter("cache.read_failures");
  stat_write_failures_ = &stats_->counter("cache.write_failures");
  stat_dirty_ = &stats_->gauge("cache.dirty_blocks");
  stat_copies_out_ = &stats_->gauge("cache.outstanding_copies");
}

CacheStats BufferCache::stats() const {
  CacheStats s;
  s.hits = stat_hits_->value();
  s.misses = stat_misses_->value();
  s.delayed_writes = stat_delayed_writes_->value();
  s.write_issues = stat_write_issues_->value();
  s.sync_writes = stat_sync_writes_->value();
  s.write_lock_waits = stat_write_lock_waits_->value();
  s.block_copies = stat_block_copies_->value();
  s.copy_budget_waits = stat_copy_budget_waits_->value();
  s.evictions = stat_evictions_->value();
  s.read_failures = stat_read_failures_->value();
  s.write_failures = stat_write_failures_->value();
  return s;
}

void BufferCache::Touch(Buf& buf) {
  if (buf.lru_tick_ != 0) {
    lru_.erase(buf.lru_tick_);
  }
  buf.lru_tick_ = next_tick_++;
  lru_[buf.lru_tick_] = &buf;
}

Task<BufRef> BufferCache::GetBuf(uint32_t blkno, bool read_fill) {
  auto it = buffers_.find(blkno);
  if (it != buffers_.end()) {
    BufRef buf = it->second;
    stat_hits_->Inc();
    if (stats_->tracing()) {
      stats_->Trace("cache.hit", {{"blkno", blkno}});
    }
    Touch(*buf);
    // Wait out an in-progress fill by another process.
    while (!buf->valid_) {
      co_await buf->io_cv_.Await();
      if (buf->read_failed_) {
        // The filler's read failed and dropped the placeholder.
        co_return nullptr;
      }
    }
    hooks_->BufferAccessed(*buf);
    co_return buf;
  }

  stat_misses_->Inc();
  if (stats_->tracing()) {
    stats_->Trace("cache.miss", {{"blkno", blkno}, {"read_fill", read_fill}});
  }
  // Insert before any suspension: a second miss for the same block while
  // we wait must find this buffer (and block on valid_), never create a
  // duplicate.
  auto buf = std::make_shared<Buf>(engine_, blkno);
  buffers_[blkno] = buf;
  Touch(*buf);
  co_await EnsureCapacity();
  if (read_fill) {
    uint64_t id = driver_->IssueRead(blkno, buf->data_.get());
    IoStatus rs = co_await driver_->WaitFor(id);
    if (rs != IoStatus::kOk) {
      stat_read_failures_->Inc();
      if (stats_->tracing()) {
        stats_->Trace("cache.read_failed", {{"blkno", blkno}});
      }
      // Drop the placeholder so a later Bread retries from scratch, and
      // wake concurrent waiters (they see read_failed_ and bail out).
      buf->read_failed_ = true;
      buf->io_cv_.NotifyAll();
      auto bit = buffers_.find(blkno);
      if (bit != buffers_.end() && bit->second == buf) {
        lru_.erase(buf->lru_tick_);
        buffers_.erase(bit);
      }
      co_return nullptr;
    }
  } else {
    buf->data_->fill(0);
  }
  buf->valid_ = true;
  buf->io_cv_.NotifyAll();
  hooks_->BufferAccessed(*buf);
  co_return buf;
}

Task<BufRef> BufferCache::Bread(uint32_t blkno) { return GetBuf(blkno, /*read_fill=*/true); }

Task<BufRef> BufferCache::Bget(uint32_t blkno) { return GetBuf(blkno, /*read_fill=*/false); }

Task<void> BufferCache::EnsureCapacity() {
  while (buffers_.size() >= config_.capacity_blocks) {
    // Scan from coldest: drop a clean, unreferenced, unlocked buffer.
    Buf* victim = nullptr;
    std::vector<Buf*> dirty_cold;
    for (auto& [tick, buf] : lru_) {
      auto it = buffers_.find(buf->blkno_);
      assert(it != buffers_.end());
      if (it->second.use_count() > 1 || buf->io_locked_ || buf->writes_in_flight_ > 0 ||
          !buf->valid_) {
        continue;
      }
      if (!buf->dirty_) {
        victim = buf;
        break;
      }
      if (dirty_cold.size() < 32) {
        dirty_cold.push_back(buf);
      }
    }
    if (victim != nullptr) {
      stat_evictions_->Inc();
      if (stats_->tracing()) {
        stats_->Trace("cache.evict", {{"blkno", victim->blkno_}});
      }
      lru_.erase(victim->lru_tick_);
      buffers_.erase(victim->blkno_);
      co_return;
    }
    // No clean buffer: push a batch of the coldest dirty ones to disk
    // asynchronously (overlapping their service) and retry once one of
    // them completes and becomes clean.
    for (Buf* b : dirty_cold) {
      if (b->dirty_ && !b->write_failed_ && !b->io_locked_ && b->writes_in_flight_ == 0) {
        IssueWrite(buffers_.at(b->blkno_), OrderingTag{}, /*from_syncer=*/false);
      }
    }
    co_await engine_->Sleep(Msec(1));
  }
}

Task<void> BufferCache::BeginUpdate(Buf& buf) {
  if (buf.io_locked_ && config_.collect_stats) {
    stat_write_lock_waits_->Inc();
  }
  while (buf.io_locked_) {
    co_await buf.io_cv_.Await();
  }
}

Task<void> BufferCache::BeginRead(Buf& buf) {
  while (buf.rolled_back_) {
    co_await buf.io_cv_.Await();
  }
}

void BufferCache::MarkDirty(Buf& buf) {
  assert(buf.valid_);
  if (!buf.dirty_) {
    buf.dirty_ = true;
    stat_delayed_writes_->Inc();
    stat_dirty_->Add(1);
  }
}

void BufferCache::MarkDirty(uint32_t blkno) {
  auto it = buffers_.find(blkno);
  if (it != buffers_.end() && it->second->valid_) {
    MarkDirty(*it->second);
  }
}

uint64_t BufferCache::IssueWrite(BufRef buf, OrderingTag tag, bool from_syncer) {
  assert(buf->valid_);
  assert(config_.copy_blocks || buf->writes_in_flight_ == 0);
  buf->writes_in_flight_++;
  if (buf->dirty_) {
    stat_dirty_->Add(-1);
  }
  buf->dirty_ = false;
  buf->syncer_mark_ = false;
  // The write captures the buffer's current content (safe copy or io
  // lock), so the visibility stamps it carries are on their way out; any
  // later stamp re-marks the buffer for a future epoch. A failed write
  // leaves the stamps cleared, which flush paths treat conservatively.
  buf->visible_seq_ = 0;
  buf->first_visible_seq_ = 0;
  stat_write_issues_->Inc();
  if (stats_->tracing()) {
    stats_->Trace("cache.flush",
                  {{"blkno", buf->blkno_}, {"from_syncer", from_syncer}, {"flag", tag.flag}});
  }
  if (!buf->pending_write_deps_.empty()) {
    tag.deps.insert(tag.deps.end(), buf->pending_write_deps_.begin(),
                    buf->pending_write_deps_.end());
    buf->pending_write_deps_.clear();
  }

  // Dependency hook: may roll back updates in place (setting rolled_back_
  // via its own bookkeeping is our job below) or supply a substitute
  // source (indirect blocks' safe copy).
  std::shared_ptr<const BlockData> source = hooks_->PrepareWrite(*buf);
  bool used_substitute = source != nullptr;

  std::shared_ptr<const BlockData> io_src;
  bool made_copy = false;
  if (used_substitute) {
    io_src = std::move(source);  // Owned safe copy: no lock needed.
  } else if (config_.copy_blocks) {
    // -CB: clone now; the buffer stays modifiable during the I/O.
    io_src = std::make_shared<BlockData>(*buf->data_);
    stat_block_copies_->Inc();
    ++outstanding_copies_;
    stat_copies_out_->Set(static_cast<int64_t>(outstanding_copies_));
    made_copy = true;
  } else {
    io_src = buf->data_;
    buf->io_locked_ = true;
  }

  // Keep the buffer alive until the interrupt handler runs. The handler
  // must check the status: completion does not imply the bytes reached
  // the disk.
  uint64_t id = driver_->IssueWrite(
      buf->blkno_, {std::move(io_src)}, std::move(tag), [this, buf, made_copy](IoStatus status) {
        buf->io_locked_ = false;
        buf->writes_in_flight_--;
        if (made_copy) {
          --outstanding_copies_;
          stat_copies_out_->Set(static_cast<int64_t>(outstanding_copies_));
          capacity_cv_.NotifyAll();
        }
        if (status == IoStatus::kOk) {
          buf->write_failed_ = false;
          hooks_->WriteDone(*buf);
        } else {
          // Nothing reached the disk: keep the bytes dirty, but flag the
          // buffer so flush paths skip it (a permanently bad sector must
          // not livelock SyncAll / the syncer). Dependency state is
          // restored without retiring anything.
          stat_write_failures_->Inc();
          if (stats_->tracing()) {
            stats_->Trace("cache.write_failed", {{"blkno", buf->blkno_}});
          }
          buf->write_failed_ = true;
          if (!buf->dirty_) {
            buf->dirty_ = true;
            stat_dirty_->Add(1);
          }
          hooks_->WriteAborted(*buf);
        }
        buf->rolled_back_ = false;
        buf->io_cv_.NotifyAll();
      });
  buf->last_write_req_ = id;
  return id;
}

Task<IoStatus> BufferCache::Bwrite(BufRef buf, OrderingTag tag) {
  stat_sync_writes_->Inc();
  while (!config_.copy_blocks && buf->writes_in_flight_ > 0) {
    co_await buf->io_cv_.Await();
  }
  co_await WaitForCopyBudget();
  uint64_t id = IssueWrite(buf, std::move(tag), false);
  IoStatus status = co_await driver_->WaitFor(id);
  co_return status;
}

Task<uint64_t> BufferCache::Bawrite(BufRef buf, OrderingTag tag) {
  // Without -CB, only one outstanding write per buffer: a second writer
  // sleeps until the first completes ("buffer busy", section 3.3). With
  // -CB each write gets its own copy, so several may be in flight - but
  // the copies consume memory, bounded by the copy budget.
  if (!config_.copy_blocks) {
    if (buf->writes_in_flight_ > 0 && config_.collect_stats) {
      stat_write_lock_waits_->Inc();
    }
    while (buf->writes_in_flight_ > 0) {
      co_await buf->io_cv_.Await();
    }
  }
  co_await WaitForCopyBudget();
  co_return IssueWrite(buf, std::move(tag), false);
}

Task<void> BufferCache::WaitForCopyBudget() {
  if (!config_.copy_blocks) {
    co_return;
  }
  if (outstanding_copies_ >= config_.copy_budget_blocks && config_.collect_stats) {
    stat_copy_budget_waits_->Inc();
  }
  while (outstanding_copies_ >= config_.copy_budget_blocks) {
    co_await capacity_cv_.Await();
  }
}

Task<void> BufferCache::SyncAll() {
  // Repeat until stable: completion processing (soft updates) can re-dirty
  // buffers or create new dirty ones (deferred frees).
  for (int round = 0; round < 200; ++round) {
    std::vector<BufRef> dirty;
    for (auto& [blkno, buf] : buffers_) {
      if (buf->dirty_ && !buf->write_failed_ && !buf->io_locked_ &&
          buf->writes_in_flight_ == 0) {
        dirty.push_back(buf);
      }
    }
    if (dirty.empty() && driver_->PendingCount() == 0) {
      co_return;
    }
    for (auto& buf : dirty) {
      if (buf->dirty_ && !buf->write_failed_ && !buf->io_locked_ &&
          buf->writes_in_flight_ == 0) {
        IssueWrite(buf, OrderingTag{}, false);
      }
    }
    co_await driver_->Drain();
  }
}

Task<void> BufferCache::SyncVisibleThrough(uint64_t seq) {
  // Same stable-loop as SyncAll; deferred releases run between rounds can
  // dirty more epoch-covered buffers.
  for (int round = 0; round < 200; ++round) {
    std::vector<BufRef> dirty;
    for (auto& [blkno, buf] : buffers_) {
      if (buf->dirty_ && !buf->write_failed_ && !buf->io_locked_ &&
          buf->writes_in_flight_ == 0 && buf->first_visible_seq_ <= seq) {
        dirty.push_back(buf);
      }
    }
    if (dirty.empty() && driver_->PendingCount() == 0) {
      co_return;
    }
    for (auto& buf : dirty) {
      if (buf->dirty_ && !buf->write_failed_ && !buf->io_locked_ &&
          buf->writes_in_flight_ == 0) {
        IssueWrite(buf, OrderingTag{}, false);
      }
    }
    co_await driver_->Drain();
  }
}

void BufferCache::DropClean() {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    Buf* buf = it->second.get();
    if (it->second.use_count() == 1 && buf->valid_ && !buf->dirty_ && !buf->io_locked_) {
      lru_.erase(buf->lru_tick_);
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t BufferCache::DirtyCount() const {
  size_t n = 0;
  for (const auto& [blkno, buf] : buffers_) {
    if (buf->dirty_ && !buf->write_failed_) {
      ++n;
    }
  }
  return n;
}

size_t BufferCache::FailedCount() const {
  size_t n = 0;
  for (const auto& [blkno, buf] : buffers_) {
    if (buf->dirty_ && buf->write_failed_) {
      ++n;
    }
  }
  return n;
}

void BufferCache::SyncerPass(double fraction) {
  // Phase 1: write out buffers marked on the previous pass.
  std::vector<BufRef> to_write;
  for (auto& [blkno, buf] : buffers_) {
    if (buf->syncer_mark_ && buf->dirty_ && !buf->write_failed_ && !buf->io_locked_ &&
        buf->writes_in_flight_ == 0) {
      to_write.push_back(buf);
    }
  }
  // Issued in sweep (hash-table) order, NOT disk order: sorting is the
  // disk scheduler's job, and pre-sorting here would hide the cost of
  // restrictive ordering semantics (the paper's figure 1b effect).
  for (auto& buf : to_write) {
    if (buf->writes_in_flight_ == 0) {
      IssueWrite(buf, OrderingTag{}, /*from_syncer=*/true);
    }
  }

  // Phase 2: mark the dirty buffers in this pass's window. The window is
  // a slice of the block-number space, advanced each pass so the whole
  // cache is covered every 1/fraction passes.
  std::vector<uint32_t> dirty_blocks;
  dirty_blocks.reserve(buffers_.size());
  for (auto& [blkno, buf] : buffers_) {
    if (buf->dirty_ && !buf->write_failed_ && !buf->syncer_mark_) {
      dirty_blocks.push_back(blkno);
    }
  }
  std::sort(dirty_blocks.begin(), dirty_blocks.end());
  size_t want = static_cast<size_t>(
      static_cast<double>(config_.capacity_blocks) * fraction + 0.5);
  // Start after the cursor, wrapping, to emulate the rotating sweep.
  auto start = std::upper_bound(dirty_blocks.begin(), dirty_blocks.end(), syncer_cursor_);
  size_t marked = 0;
  for (size_t i = 0; i < dirty_blocks.size() && marked < want; ++i) {
    size_t idx = (static_cast<size_t>(start - dirty_blocks.begin()) + i) % dirty_blocks.size();
    uint32_t blkno = dirty_blocks[idx];
    buffers_.at(blkno)->syncer_mark_ = true;
    syncer_cursor_ = blkno;
    ++marked;
  }
}

}  // namespace mufs
