// The syncer daemon (paper section 2).
//
// A background process that wakes once per interval (1 s), first services
// the workitem queue (section 4.2: deferred soft-updates tasks that may
// block, so they cannot run at interrupt level), then performs one
// incremental buffer-cache pass: write out what was marked last pass, mark
// this pass's window. This smooths write-back compared to the
// conventional bursty "30 second sync".
#ifndef MUFS_SRC_CACHE_SYNCER_H_
#define MUFS_SRC_CACHE_SYNCER_H_

#include <deque>
#include <functional>

#include "src/cache/buffer_cache.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace mufs {

struct SyncerConfig {
  SimDuration interval = Sec(1);
  // Full cache coverage every `sweep_seconds` worth of passes.
  int sweep_seconds = 30;
  // Extra delay before the FIRST wakeup only. Sharded machines stagger
  // their shards' syncers across the interval (shard s sleeps an extra
  // interval*s/S) so S write-back bursts do not land on the volume at
  // the same instant. 0 (the default) is the exact historical cadence.
  SimDuration initial_phase = 0;
  // Shared metrics registry; falls back to the cache's when null.
  StatsRegistry* stats = nullptr;
};

class SyncerDaemon {
 public:
  SyncerDaemon(Engine* engine, BufferCache* cache, SyncerConfig config = {});
  SyncerDaemon(const SyncerDaemon&) = delete;
  SyncerDaemon& operator=(const SyncerDaemon&) = delete;

  void Start();
  void Stop() { running_ = false; }
  bool Running() const { return running_; }

  // Appends a deferred task; serviced (awaited one at a time, FIFO) at the
  // next wakeup, before the cache pass.
  void EnqueueWork(std::function<Task<void>()> work);
  size_t PendingWork() const { return work_queue_.size(); }

  // Runs queued workitems and one cache pass immediately (used by fsync
  // paths and shutdown). Repeats while work remains, since workitems can
  // enqueue more work.
  Task<void> DrainWork();

  uint64_t PassesRun() const { return stat_passes_->value(); }
  uint64_t WorkitemsRun() const { return stat_workitems_->value(); }

 private:
  Task<void> Loop();
  Task<void> RunWorkQueue();

  Engine* engine_;
  BufferCache* cache_;
  SyncerConfig config_;
  StatsRegistry* stats_ = nullptr;
  Counter* stat_passes_ = nullptr;
  Counter* stat_workitems_ = nullptr;
  bool running_ = false;
  bool started_ = false;
  std::deque<std::function<Task<void>()>> work_queue_;
};

}  // namespace mufs

#endif  // MUFS_SRC_CACHE_SYNCER_H_
