// Buffer cache: the in-memory block layer between the file system and
// the disk driver.
//
// Mirrors the three UNIX write disciplines the paper builds on
// (footnote 2):
//   - Bwrite   : synchronous - issue now, wait for completion;
//   - Bawrite  : asynchronous - issue now, do not wait;
//   - MarkDirty: delayed - leave dirty for the syncer daemon.
//
// Write locking (paper section 3.3): while a write request sourced from a
// buffer is outstanding, the buffer is write-locked; a process wanting to
// modify it must wait (BeginUpdate). With the block-copy option (-CB) the
// cache clones the bytes at issue time and hands the clone to the driver,
// so the buffer is never locked.
//
// Dependency hooks: soft updates plugs in a DepHooks implementation. The
// cache calls PrepareWrite just before capturing a buffer's bytes for a
// write (so undone updates can be rolled back / an alternate "safe" source
// substituted), WriteDone at completion (interrupt level), and
// BufferAccessed when a block enters the cache or is re-referenced (so
// lazily undone updates can be re-applied).
#ifndef MUFS_SRC_CACHE_BUFFER_CACHE_H_
#define MUFS_SRC_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/driver/block_device.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/stats/stats_registry.h"

namespace mufs {

class BufferCache;

// One cached disk block.
class Buf {
 public:
  Buf(Engine* engine, uint32_t blkno)
      : blkno_(blkno), data_(std::make_shared<BlockData>()), io_cv_(engine) {}
  Buf(const Buf&) = delete;
  Buf& operator=(const Buf&) = delete;

  uint32_t blkno() const { return blkno_; }
  BlockData& data() { return *data_; }
  const BlockData& data() const { return *data_; }

  bool dirty() const { return dirty_; }
  bool io_locked() const { return io_locked_; }
  bool write_pending() const { return writes_in_flight_ > 0; }
  bool rolled_back() const { return rolled_back_; }
  bool valid() const { return valid_; }
  // The last write of this buffer failed terminally (retries and spare
  // pool exhausted). The buffer stays dirty but flush paths skip it, so
  // a permanently bad sector cannot livelock SyncAll/the syncer. Cleared
  // if a later explicit write succeeds.
  bool write_failed() const { return write_failed_; }

  // Visibility state (Scheme::kAsync): sequence number of the newest
  // async metadata operation whose update is visible in this buffer.
  // The buffer's content is only guaranteed stable once the ledger's
  // durable horizon reaches this stamp. 0 under every other scheme.
  uint64_t visible_seq() const { return visible_seq_; }
  // Oldest stamp since the buffer was last written out: the epoch whose
  // close first needs this buffer. 0 = dirtied outside any async op (or
  // not dirty), which flush paths treat conservatively as "needed now".
  uint64_t first_visible_seq() const { return first_visible_seq_; }

  // Set by DepHooks::PrepareWrite when it undoes updates in the buffer for
  // the duration of the write: readers block until the I/O completes and
  // the updates are restored.
  void MarkRolledBack() { rolled_back_ = true; }

  // Typed accessors for structures stored at an offset in the block.
  template <typename T>
  T* At(size_t offset) {
    return reinterpret_cast<T*>(data_->data() + offset);
  }
  template <typename T>
  const T* At(size_t offset) const {
    return reinterpret_cast<const T*>(data_->data() + offset);
  }

 private:
  friend class BufferCache;
  uint32_t blkno_;
  std::shared_ptr<BlockData> data_;
  bool valid_ = false;        // Contents populated (read done or new block).
  bool dirty_ = false;        // Needs writeback (delayed write pending).
  bool io_locked_ = false;    // Outstanding write sourced from data_.
  int writes_in_flight_ = 0;  // Outstanding writes of this buffer. At
                              // most one without -CB (a second writer
                              // sleeps, "buffer busy"); -CB permits
                              // several, each sourced from its own copy.
  bool rolled_back_ = false;  // In-flight write undid some updates: block
                              // reads until it completes.
  bool write_failed_ = false;  // Last write failed terminally; see above.
  bool read_failed_ = false;   // Fill read failed; buffer is being dropped
                               // and concurrent waiters must bail out.
  bool syncer_mark_ = false;  // Marked on the previous syncer pass.
  uint64_t last_write_req_ = 0;  // Driver id of the newest write of this buf.
  uint64_t visible_seq_ = 0;     // Async-scheme visibility stamp; see above.
  uint64_t first_visible_seq_ = 0;  // Oldest stamp since last write-out.
  std::vector<uint64_t> pending_write_deps_;  // Chain deps for the next write.
  uint64_t lru_tick_ = 0;
  CondVar io_cv_;  // Signalled when io_locked_/valid_ changes.
};

using BufRef = std::shared_ptr<Buf>;

// Dependency hook points (implemented by soft updates; default: no-ops).
class DepHooks {
 public:
  virtual ~DepHooks() = default;
  // Called before a write of `buf` is issued. May roll back updates inside
  // buf.data() or return an alternate source block (e.g. an indirect
  // block's "safe copy"). Returning nullptr means "use buf's own data".
  virtual std::shared_ptr<const BlockData> PrepareWrite(Buf& buf) {
    (void)buf;
    return nullptr;
  }
  // Interrupt-level completion processing. Must not block. Only called
  // when the write succeeded.
  virtual void WriteDone(Buf& buf) { (void)buf; }
  // Interrupt-level failure processing: the write completed with an
  // error, so nothing reached the disk. Implementations must restore any
  // updates PrepareWrite undid and clear capture state WITHOUT retiring
  // dependencies. Must not block.
  virtual void WriteAborted(Buf& buf) { (void)buf; }
  // Called when a block is (re)accessed through Bread/Bget, after a read
  // fill if one was needed. Lets undone updates be re-applied.
  virtual void BufferAccessed(Buf& buf) { (void)buf; }
};

struct CacheConfig {
  size_t capacity_blocks = 8192;  // 32 MB of 4 KB buffers.
  bool copy_blocks = false;       // -CB: copy at issue instead of locking.
  // Memory budget for outstanding -CB copies. Queued ordered writes hold
  // their copies until serviced; when activity exceeds this budget,
  // writers stall (the paper's "system activity exceeds the available
  // memory" regime, section 3.1/3.3).
  size_t copy_budget_blocks = 2048;
  bool collect_stats = true;
  // Shared metrics registry (the Machine's). When null the cache owns a
  // private registry, so standalone construction needs no guards.
  StatsRegistry* stats = nullptr;
};

// Snapshot of the cache.* registry counters (kept as a struct so call
// sites read fields instead of metric names).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t delayed_writes = 0;   // MarkDirty calls.
  uint64_t write_issues = 0;     // Device writes issued (sync+async+syncer).
  uint64_t sync_writes = 0;
  uint64_t write_lock_waits = 0;  // Times BeginUpdate had to wait.
  uint64_t block_copies = 0;      // -CB clones made.
  uint64_t copy_budget_waits = 0;  // Times Bawrite stalled on copy memory.
  uint64_t evictions = 0;
  uint64_t read_failures = 0;   // Fill reads that failed terminally.
  uint64_t write_failures = 0;  // Writes that failed terminally.
};

class BufferCache {
 public:
  BufferCache(Engine* engine, BlockDevice* driver, CacheConfig config);
  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  void SetDepHooks(DepHooks* hooks) { hooks_ = hooks; }
  Engine* engine() const { return engine_; }
  BlockDevice* driver() const { return driver_; }
  const CacheConfig& config() const { return config_; }
  CacheStats stats() const;  // Snapshot of the cache.* counters.
  StatsRegistry* stats_registry() const { return stats_; }

  // Returns the block, reading it from disk on a miss. Returns nullptr
  // if the device read failed terminally (the placeholder is dropped, so
  // a later Bread retries from scratch).
  Task<BufRef> Bread(uint32_t blkno);

  // Returns the block without reading: contents start zeroed. For newly
  // allocated blocks whose prior content is irrelevant.
  Task<BufRef> Bget(uint32_t blkno);

  // Waits until the buffer may be modified (write lock released). With
  // -CB this never waits.
  Task<void> BeginUpdate(Buf& buf);

  // Waits until the buffer's contents are readable (not mid-write with
  // rolled-back updates).
  Task<void> BeginRead(Buf& buf);

  // Delayed write: mark dirty; the syncer daemon writes it later.
  void MarkDirty(Buf& buf);
  void MarkDirty(uint32_t blkno);  // No-op if the block is not cached.

  // Synchronous write: issue and wait for completion, returning the
  // device status. Waits first if a previous write of this buffer is
  // still outstanding.
  Task<IoStatus> Bwrite(BufRef buf, OrderingTag tag = {});

  // Asynchronous write: issue with ordering tag, return the request id.
  // Like UNIX bawrite, sleeps while a previous write of the same buffer
  // is outstanding (one write per buffer at a time).
  Task<uint64_t> Bawrite(BufRef buf, OrderingTag tag = {});

  // Driver request id of the most recent write issued for this buffer
  // (0 if never written). Used by the chains policy to build dependency
  // lists.
  uint64_t LastWriteRequest(const Buf& buf) const { return buf.last_write_req_; }

  // Records that the *next* write of `buf` (whoever issues it: policy,
  // syncer, eviction) must carry a scheduler-chain dependency on request
  // `req_id`. Accumulates until consumed by the next write issue.
  void AddWriteDep(Buf& buf, uint64_t req_id) { buf.pending_write_deps_.push_back(req_id); }

  // Raises the buffer's async visibility stamp (monotone) and pins the
  // first stamp since the last write-out. Called by the async policy at
  // its ordering points; see Buf::visible_seq().
  void StampVisibleSeq(Buf& buf, uint64_t seq) {
    if (seq > buf.visible_seq_) {
      buf.visible_seq_ = seq;
    }
    if (buf.first_visible_seq_ == 0) {
      buf.first_visible_seq_ = seq;
    }
  }

  // Writes every dirty buffer (async) and waits for the device queue to
  // drain. Used by unmount/fsync-like paths and test shutdown.
  Task<void> SyncAll();

  // Epoch-scoped flush (Scheme::kAsync): like SyncAll, but skips dirty
  // buffers whose first visibility stamp is newer than `seq` - those were
  // dirtied exclusively by ops after the epoch close and belong to a
  // later epoch. Unstamped dirty buffers (inode-table spill, bitmaps,
  // data rewrites) are written conservatively. Keeping post-close hot
  // buffers out of the epoch both shortens the flush and avoids writing
  // the same block once per epoch while it is under active mutation.
  Task<void> SyncVisibleThrough(uint64_t seq);

  // Evicts every clean, unlocked, unreferenced buffer (simulates a cold
  // cache after reboot, used between benchmark setup and timed phases).
  void DropClean();

  // Number of dirty buffers (tests / syncer accounting). Excludes
  // write-failed buffers: they are permanently unflushable and must not
  // keep drain loops spinning.
  size_t DirtyCount() const;
  // Dirty buffers whose last write failed terminally.
  size_t FailedCount() const;
  size_t CachedCount() const { return buffers_.size(); }
  bool Cached(uint32_t blkno) const { return buffers_.contains(blkno); }

  // A permanently zero-filled block, reserved at "boot" exactly like the
  // paper's allocation-initialization source (section 3.3): initializing
  // writes can use it as the I/O source with no locking and no copy.
  std::shared_ptr<const BlockData> ZeroBlock() const { return zero_block_; }

  // --- Syncer daemon interface -------------------------------------
  // One incremental pass (SVR4 MP style): issue async writes for buffers
  // marked on the previous pass that are still dirty; then mark the dirty
  // buffers in the current window. `fraction` of the cache is examined.
  void SyncerPass(double fraction);

 private:
  friend class SyncerDaemon;

  Task<BufRef> GetBuf(uint32_t blkno, bool read_fill);
  Task<void> EnsureCapacity();
  Task<void> WaitForCopyBudget();
  uint64_t IssueWrite(BufRef buf, OrderingTag tag, bool from_syncer);
  void Touch(Buf& buf);

  Engine* engine_;
  BlockDevice* driver_;
  CacheConfig config_;
  DepHooks* hooks_ = nullptr;

  // Metrics (either the Machine's registry or owned_stats_).
  std::unique_ptr<StatsRegistry> owned_stats_;
  StatsRegistry* stats_ = nullptr;
  Counter* stat_hits_ = nullptr;
  Counter* stat_misses_ = nullptr;
  Counter* stat_delayed_writes_ = nullptr;
  Counter* stat_write_issues_ = nullptr;
  Counter* stat_sync_writes_ = nullptr;
  Counter* stat_write_lock_waits_ = nullptr;
  Counter* stat_block_copies_ = nullptr;
  Counter* stat_copy_budget_waits_ = nullptr;
  Counter* stat_evictions_ = nullptr;
  Counter* stat_read_failures_ = nullptr;
  Counter* stat_write_failures_ = nullptr;
  Gauge* stat_dirty_ = nullptr;
  Gauge* stat_copies_out_ = nullptr;

  std::unordered_map<uint32_t, BufRef> buffers_;
  std::map<uint64_t, Buf*> lru_;  // tick -> buffer, oldest first.
  uint64_t next_tick_ = 1;
  uint32_t syncer_cursor_ = 0;  // Block-number window cursor for passes.
  std::vector<uint32_t> syncer_window_;
  std::shared_ptr<BlockData> zero_block_;
  size_t outstanding_copies_ = 0;
  CondVar capacity_cv_;

  DepHooks default_hooks_;
};

}  // namespace mufs

#endif  // MUFS_SRC_CACHE_BUFFER_CACHE_H_
