#include "src/disk/device_queue.h"

namespace mufs {

namespace {

bool Overlaps(const DeviceCommand& a, const DeviceCommand& b) {
  return a.blkno < b.blkno + b.count && b.blkno < a.blkno + a.count;
}

}  // namespace

uint64_t DeviceQueue::Accept(TagKind tag, bool is_write, uint32_t blkno, uint32_t count,
                             void* cookie) {
  DeviceCommand cmd;
  cmd.seq = next_seq_++;
  cmd.tag = tag;
  cmd.is_write = is_write;
  cmd.blkno = blkno;
  cmd.count = count;
  cmd.cookie = cookie;
  cmds_.push_back(cmd);
  return cmd.seq;
}

bool DeviceQueue::Eligible(const DeviceCommand& c) const {
  // Every constraint is against EARLIER-accepted pending commands, so the
  // oldest command is always eligible. The queue is at most `depth` long;
  // a quadratic scan is cheaper than maintaining indices at this size.
  for (const DeviceCommand& e : cmds_) {
    if (e.seq >= c.seq) {
      break;  // Acceptance order: everything after is later.
    }
    // An ordered tag is a barrier in both directions: it waits for every
    // earlier command, and nothing later may pass it.
    if (e.tag == TagKind::kOrdered || c.tag == TagKind::kOrdered) {
      return false;
    }
    // Overlapping writes execute in acceptance order regardless of tags.
    if (c.is_write && e.is_write && Overlaps(c, e)) {
      return false;
    }
  }
  return true;
}

const DeviceCommand* DeviceQueue::PickNext(const DiskModel& model, SimTime now) const {
  const DeviceCommand* best = nullptr;
  SimDuration best_cost = 0;
  for (const DeviceCommand& c : cmds_) {
    if (!Eligible(c)) {
      continue;
    }
    SimDuration cost = model.PositioningCost(c.is_write, c.blkno, c.count, now);
    // Strict < keeps the earliest-accepted of equal-cost commands
    // (iteration is in acceptance order), so picks are deterministic.
    if (best == nullptr || cost < best_cost) {
      best = &c;
      best_cost = cost;
    }
  }
  return best;
}

void DeviceQueue::Remove(uint64_t seq) {
  for (auto it = cmds_.begin(); it != cmds_.end(); ++it) {
    if (it->seq == seq) {
      cmds_.erase(it);
      return;
    }
  }
}

}  // namespace mufs
