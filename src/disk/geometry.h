// Disk geometry and timing parameters.
//
// Defaults approximate the HP C2447 used in the paper: a 1 GB, 3.5-inch,
// 5400 RPM SCSI drive (HP part 5960-8346 technical reference). The model
// is parametric so tests and ablation benches can explore other disks.
#ifndef MUFS_SRC_DISK_GEOMETRY_H_
#define MUFS_SRC_DISK_GEOMETRY_H_

#include <cstdint>

#include "src/sim/time.h"

namespace mufs {

// The device is addressed in file-system-sized blocks (4 KB). All geometry
// is expressed in those units.
constexpr uint32_t kBlockSize = 4096;

struct DiskGeometry {
  // Capacity: 262144 x 4 KB = 1 GB.
  uint32_t total_blocks = 262144;
  // 8 blocks (32 KB) per track, 16 tracks per cylinder -> 128 blocks
  // (512 KB) per cylinder, 2048 cylinders.
  uint32_t blocks_per_track = 8;
  uint32_t tracks_per_cylinder = 16;

  // 5400 RPM -> 11.11 ms per revolution.
  SimDuration rotation_time = UsecF(11111.1);

  // Seek model: fixed + sqrt + linear terms, in milliseconds over cylinder
  // distance. Tuned so single-cylinder ~2.4 ms, average (1/3 stroke)
  // ~10.9 ms, full stroke ~20 ms, matching the C2447's published figures.
  double seek_fixed_ms = 2.2;
  double seek_sqrt_ms = 0.24;
  double seek_linear_ms = 0.0035;

  // Fixed per-command controller/SCSI overhead.
  SimDuration command_overhead = UsecF(700.0);

  // On-board cache: sequential prefetch depth in blocks (two tracks), and
  // the SCSI bus transfer time per block on a cache hit (10 MB/s bus).
  uint32_t prefetch_blocks = 16;
  SimDuration cache_hit_per_block = UsecF(410.0);

  uint32_t blocks_per_cylinder() const { return blocks_per_track * tracks_per_cylinder; }
  uint32_t cylinders() const { return total_blocks / blocks_per_cylinder(); }
  // Media-rate transfer time for one block: one track passes under the head
  // per revolution.
  SimDuration transfer_per_block() const {
    return rotation_time / static_cast<SimDuration>(blocks_per_track);
  }
};

}  // namespace mufs

#endif  // MUFS_SRC_DISK_GEOMETRY_H_
