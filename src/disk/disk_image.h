// Byte-accurate backing store for the simulated disk.
//
// The image holds the real content of every block ever written, which is
// what lets the fsck checker audit crash states: "stable storage" at any
// instant is exactly this map. Blocks never written read back as zeroes.
#ifndef MUFS_SRC_DISK_DISK_IMAGE_H_
#define MUFS_SRC_DISK_DISK_IMAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/disk/geometry.h"
#include "src/sim/time.h"

namespace mufs {

using BlockData = std::array<uint8_t, kBlockSize>;

class DiskImage {
 public:
  explicit DiskImage(uint32_t total_blocks) : total_blocks_(total_blocks) {}

  uint32_t TotalBlocks() const { return total_blocks_; }

  // Copies a block's stable content into `out`. Unwritten blocks are zero.
  void Read(uint32_t blkno, BlockData* out) const {
    auto it = blocks_.find(blkno);
    if (it == blocks_.end()) {
      out->fill(0);
    } else {
      *out = it->second;
    }
  }

  // Atomically replaces a block's stable content (per the paper's
  // footnote 1, each critical structure fits in an atomic write unit).
  void Write(uint32_t blkno, const BlockData& data, SimTime when) {
    blocks_[blkno] = data;
    ++write_count_;
    last_write_time_ = when;
  }

  bool EverWritten(uint32_t blkno) const { return blocks_.contains(blkno); }
  uint64_t WriteCount() const { return write_count_; }
  SimTime LastWriteTime() const { return last_write_time_; }

  // Snapshot for crash analysis: a deep copy of stable storage.
  DiskImage Snapshot() const { return *this; }

 private:
  uint32_t total_blocks_;
  std::unordered_map<uint32_t, BlockData> blocks_;
  uint64_t write_count_ = 0;
  SimTime last_write_time_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_DISK_DISK_IMAGE_H_
