// Byte-accurate backing store for the simulated disk.
//
// The image holds the real content of every block ever written, which is
// what lets the fsck checker audit crash states: "stable storage" at any
// instant is exactly this map. Blocks never written read back as zeroes.
#ifndef MUFS_SRC_DISK_DISK_IMAGE_H_
#define MUFS_SRC_DISK_DISK_IMAGE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/disk/geometry.h"
#include "src/sim/time.h"

namespace mufs {

using BlockData = std::array<uint8_t, kBlockSize>;

// A torn write persists this prefix of the block (half its sectors);
// the rest of the block keeps its previous stable content.
constexpr size_t kTornPersistBytes = kBlockSize / 2;

class DiskImage {
 public:
  explicit DiskImage(uint32_t total_blocks) : total_blocks_(total_blocks) {}

  uint32_t TotalBlocks() const { return total_blocks_; }

  // Copies a block's stable content into `out`. Unwritten blocks are zero.
  void Read(uint32_t blkno, BlockData* out) const {
    auto it = blocks_.find(blkno);
    if (it == blocks_.end()) {
      out->fill(0);
    } else {
      *out = it->second;
    }
  }

  // Atomically replaces a block's stable content (per the paper's
  // footnote 1, each critical structure fits in an atomic write unit).
  // When a torn write has been armed for this write index, only the
  // sector prefix persists instead - see ArmTornWrite().
  void Write(uint32_t blkno, const BlockData& data, SimTime when) {
    if (torn_arm_ != 0 && write_count_ + 1 == torn_arm_) {
      WriteTorn(blkno, data, when);
      return;
    }
    blocks_[blkno] = data;
    ++write_count_;
    last_write_time_ = when;
  }

  // Torn persistence: only the first kTornPersistBytes (half the block,
  // i.e. a prefix of its sectors) take the new content; the tail keeps
  // whatever was stable before. This deliberately violates the atomic-
  // write-unit assumption - it is how torn-write faults and mid-write
  // ("pulled the cord during the transfer") crash images are modelled.
  void WriteTorn(uint32_t blkno, const BlockData& data, SimTime when) {
    BlockData& cur = blocks_[blkno];  // Value-initialized (zero) if new.
    std::memcpy(cur.data(), data.data(), kTornPersistBytes);
    ++write_count_;
    ++torn_write_count_;
    last_write_time_ = when;
  }

  // Arms the harness-side mid-write crash model: the `nth_write`-th
  // device write (1-based, counted by WriteCount()) lands torn. Every
  // write boundary of a run can thereby also be explored as a torn
  // (mid-write) crash state. 0 disarms.
  void ArmTornWrite(uint64_t nth_write) { torn_arm_ = nth_write; }

  bool EverWritten(uint32_t blkno) const { return blocks_.contains(blkno); }
  uint64_t WriteCount() const { return write_count_; }
  uint64_t TornWriteCount() const { return torn_write_count_; }
  SimTime LastWriteTime() const { return last_write_time_; }

  // Snapshot for crash analysis: a deep copy of stable storage.
  DiskImage Snapshot() const { return *this; }

  // Rebases a contiguous region [base, base+count) into a standalone
  // image whose block 0 is `base`. Used by sharded machines: each shard
  // is a complete filesystem inside its region of the volume, so fsck
  // and journal replay run on the extracted region exactly as they
  // would on a single-disk image.
  DiskImage ExtractRegion(uint32_t base, uint32_t count) const {
    DiskImage out(count);
    for (const auto& [blkno, data] : blocks_) {
      if (blkno >= base && blkno < base + count) {
        out.blocks_[blkno - base] = data;
      }
    }
    out.last_write_time_ = last_write_time_;
    return out;
  }

  // The set of blocks ever written, in ascending order. Used to scatter
  // a freshly formatted shard image into its volume region.
  std::vector<uint32_t> WrittenBlocks() const {
    std::vector<uint32_t> out;
    out.reserve(blocks_.size());
    for (const auto& [blkno, data] : blocks_) {
      out.push_back(blkno);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  uint32_t total_blocks_;
  std::unordered_map<uint32_t, BlockData> blocks_;
  uint64_t write_count_ = 0;
  uint64_t torn_write_count_ = 0;
  uint64_t torn_arm_ = 0;  // 1-based write index to tear; 0 = disarmed.
  SimTime last_write_time_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_DISK_DISK_IMAGE_H_
