// Mechanical timing model of the simulated disk.
//
// The model is a pure service-time calculator plus a little mutable state
// (head position, platter phase reference, prefetch cache window). The
// driver owns the request queue and concurrency; it asks the model how
// long an access takes, sleeps that long, then commits data to the image.
//
// Modelled effects, each of which the paper's results depend on:
//   - seek time as a function of cylinder distance (scheduler reordering
//     pays off because shorter seeks are cheaper);
//   - rotational latency from continuous platter rotation (a deterministic
//     function of absolute time, so runs are reproducible);
//   - media-rate transfer;
//   - on-board sequential read prefetch (the paper's "disk prefetches
//     sequentially into its on-board cache"): sequential reads hit the
//     cache and cost only bus transfer time.
// Command queueing at the disk is modelled one layer up (DeviceQueue +
// the driver's dispatch loop); this model contributes the const
// PositioningCost() estimate that the device's RPO pick policy ranks
// queued commands by. The paper's substrate (queueing disabled) is the
// queue-depth-1 configuration.
#ifndef MUFS_SRC_DISK_DISK_MODEL_H_
#define MUFS_SRC_DISK_DISK_MODEL_H_

#include <cstdint>

#include "src/disk/geometry.h"
#include "src/sim/time.h"
#include "src/stats/stats_registry.h"

namespace mufs {

class DiskModel {
 public:
  explicit DiskModel(const DiskGeometry& geometry) : geom_(geometry) {}

  const DiskGeometry& geometry() const { return geom_; }

  // Registers the model's mechanical-time breakdown (seek/rotation/
  // transfer accumulators, prefetch hits) with `stats`. Optional: an
  // unattached model simply keeps no metrics. `instance` prefixes the
  // metric names for multi-disk machines ("" keeps the singleton names).
  void AttachStats(StatsRegistry* stats, std::string_view instance = "");

  // Computes the service time for an access beginning at `start`, updates
  // head position and cache state. `count` blocks starting at `blkno`.
  SimDuration Access(bool is_write, uint32_t blkno, uint32_t count, SimTime start);

  // Estimated positioning cost (command overhead + seek + rotational
  // latency; bus-only for prefetch-cache read hits) for an access
  // starting at `start`, WITHOUT mutating head or cache state. This is
  // the quantity a queueing drive's RPO scheduler minimizes when it picks
  // the next queued command.
  SimDuration PositioningCost(bool is_write, uint32_t blkno, uint32_t count,
                              SimTime start) const;

  // Pure helpers, exposed for tests.
  SimDuration SeekTime(uint32_t from_cyl, uint32_t to_cyl) const;
  uint32_t CylinderOf(uint32_t blkno) const { return blkno / geom_.blocks_per_cylinder(); }
  uint32_t CurrentCylinder() const { return head_cylinder_; }

  // True if a read of [blkno, blkno+count) would be wholly served from the
  // prefetch cache.
  bool CacheHit(uint32_t blkno, uint32_t count) const {
    return blkno >= cache_lo_ && blkno + count <= cache_hi_;
  }

 private:
  // Rotational delay until the platter phase reaches block `blkno`'s
  // angular start position, from absolute time `t`.
  SimDuration RotationalDelay(uint32_t blkno, SimTime t) const;

  DiskGeometry geom_;
  // Metric handles; all null until AttachStats.
  Counter* stat_prefetch_hits_ = nullptr;
  Counter* stat_seek_ns_ = nullptr;
  Counter* stat_rotation_ns_ = nullptr;
  Counter* stat_transfer_ns_ = nullptr;
  Counter* stat_cylinders_moved_ = nullptr;
  uint32_t head_cylinder_ = 0;
  // Prefetch cache window [cache_lo_, cache_hi_). Loaded by reads; any
  // write invalidates it (write-through, no write cache, as on drives of
  // that era with caching disabled for safety).
  uint32_t cache_lo_ = 0;
  uint32_t cache_hi_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_DISK_DISK_MODEL_H_
