// In-device command queue with SCSI-style tagged queueing.
//
// The paper's substrate explicitly disables command queueing (section 2)
// and its discussion notes that a queueing drive would move ordering
// enforcement into the device. This class models exactly that regime:
//
//   - the driver ACCEPTS up to `depth` commands into the device (in
//     submission order - acceptance order is the order tag semantics are
//     defined over, as in SCSI-2);
//   - the device picks the next command to execute itself, by
//     rotational-position ordering (RPO): minimum estimated positioning
//     cost (seek + rotational latency) from the current head position,
//     instead of the host driver's C-LOOK over block numbers;
//   - a SIMPLE tag may be reordered freely against other simple tags;
//   - an ORDERED tag executes after every earlier-accepted command and
//     before every later-accepted command (a barrier), which lets the
//     Flag and Chains schemes delegate their ordering points to the
//     device and keep the queue full;
//   - independent of tags, two overlapping writes always execute in
//     acceptance order (the device-level write-after-write invariant;
//     without it stale data could land last).
//
// The queue is a pure data structure + pick policy: the driver still owns
// request servicing (timing, faults, retries, media commit), so the
// entire error path is shared between the queueing and non-queueing
// configurations.
#ifndef MUFS_SRC_DISK_DEVICE_QUEUE_H_
#define MUFS_SRC_DISK_DEVICE_QUEUE_H_

#include <cstdint>
#include <list>

#include "src/disk/disk_model.h"
#include "src/sim/time.h"

namespace mufs {

enum class TagKind : uint8_t { kSimple, kOrdered };

inline const char* TagKindName(TagKind t) {
  return t == TagKind::kOrdered ? "ordered" : "simple";
}

// One accepted command. `cookie` is opaque to the device (the driver
// stores its request pointer there).
struct DeviceCommand {
  uint64_t seq = 0;  // Acceptance order, assigned by Accept().
  TagKind tag = TagKind::kSimple;
  bool is_write = false;
  uint32_t blkno = 0;
  uint32_t count = 0;
  void* cookie = nullptr;
};

class DeviceQueue {
 public:
  explicit DeviceQueue(uint32_t depth) : depth_(depth) {}
  DeviceQueue(const DeviceQueue&) = delete;
  DeviceQueue& operator=(const DeviceQueue&) = delete;

  uint32_t depth() const { return depth_; }
  size_t Size() const { return cmds_.size(); }
  bool Empty() const { return cmds_.empty(); }
  bool Full() const { return cmds_.size() >= depth_; }

  // Accepts a command into the queue (caller must check !Full()) and
  // returns its acceptance sequence number.
  uint64_t Accept(TagKind tag, bool is_write, uint32_t blkno, uint32_t count, void* cookie);

  // Device scheduling decision: among commands eligible under the tag and
  // overlap rules, the one with the minimum estimated positioning cost
  // (ties broken by acceptance order, so runs are deterministic).
  // Returns nullptr only when the queue is empty: the oldest pending
  // command is always eligible, since every constraint references only
  // earlier-accepted commands.
  const DeviceCommand* PickNext(const DiskModel& model, SimTime now) const;

  // Oldest pending acceptance number (0 if empty). A pick with
  // seq != OldestSeq() is a true RPO reordering.
  uint64_t OldestSeq() const { return cmds_.empty() ? 0 : cmds_.front().seq; }

  // Removes a command at service completion.
  void Remove(uint64_t seq);

 private:
  bool Eligible(const DeviceCommand& c) const;

  uint32_t depth_;
  uint64_t next_seq_ = 1;
  std::list<DeviceCommand> cmds_;  // Acceptance order.
};

}  // namespace mufs

#endif  // MUFS_SRC_DISK_DEVICE_QUEUE_H_
