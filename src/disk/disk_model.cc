#include "src/disk/disk_model.h"

#include <algorithm>
#include <cmath>

namespace mufs {

void DiskModel::AttachStats(StatsRegistry* stats, std::string_view instance) {
  stat_prefetch_hits_ = &stats->counter(InstanceMetricName(instance, "disk.model.prefetch_hits"));
  stat_seek_ns_ = &stats->counter(InstanceMetricName(instance, "disk.model.seek_ns"));
  stat_rotation_ns_ = &stats->counter(InstanceMetricName(instance, "disk.model.rotation_ns"));
  stat_transfer_ns_ = &stats->counter(InstanceMetricName(instance, "disk.model.transfer_ns"));
  stat_cylinders_moved_ =
      &stats->counter(InstanceMetricName(instance, "disk.model.cylinders_moved"));
}

SimDuration DiskModel::SeekTime(uint32_t from_cyl, uint32_t to_cyl) const {
  if (from_cyl == to_cyl) {
    return 0;
  }
  double d = std::abs(static_cast<double>(from_cyl) - static_cast<double>(to_cyl));
  double ms = geom_.seek_fixed_ms + geom_.seek_sqrt_ms * std::sqrt(d) + geom_.seek_linear_ms * d;
  return MsecF(ms);
}

SimDuration DiskModel::RotationalDelay(uint32_t blkno, SimTime t) const {
  // Platter phase in block-angle units: which block-start angle is under
  // the head at absolute time t. The platter has been spinning since t=0.
  SimDuration per_block = geom_.transfer_per_block();
  SimDuration rev = geom_.rotation_time;
  SimTime into_rev = t % rev;
  uint32_t target_angle = blkno % geom_.blocks_per_track;
  SimTime target_offset = static_cast<SimTime>(target_angle) * per_block;
  SimTime delay = target_offset - into_rev;
  if (delay < 0) {
    delay += rev;
  }
  return delay;
}

SimDuration DiskModel::PositioningCost(bool is_write, uint32_t blkno, uint32_t count,
                                       SimTime start) const {
  count = std::max(count, 1u);
  if (!is_write && CacheHit(blkno, count)) {
    return geom_.command_overhead;  // Served from the prefetch cache.
  }
  SimTime t = start + geom_.command_overhead;
  SimDuration seek = SeekTime(head_cylinder_, CylinderOf(blkno));
  t += seek;
  return geom_.command_overhead + seek + RotationalDelay(blkno, t);
}

SimDuration DiskModel::Access(bool is_write, uint32_t blkno, uint32_t count, SimTime start) {
  count = std::max(count, 1u);
  // Reads wholly inside the prefetch window: bus transfer only.
  if (!is_write && CacheHit(blkno, count)) {
    SimDuration t = geom_.command_overhead +
                    geom_.cache_hit_per_block * static_cast<SimDuration>(count);
    // The drive keeps prefetching ahead of a sequential reader.
    cache_hi_ = std::min<uint64_t>(static_cast<uint64_t>(geom_.total_blocks),
                                   static_cast<uint64_t>(blkno + count) + geom_.prefetch_blocks);
    if (stat_prefetch_hits_ != nullptr) {
      stat_prefetch_hits_->Inc();
    }
    return t;
  }

  SimTime t = start + geom_.command_overhead;
  uint32_t target_cyl = CylinderOf(blkno);
  SimDuration seek = SeekTime(head_cylinder_, target_cyl);
  t += seek;
  SimDuration rotation = RotationalDelay(blkno, t);
  t += rotation;
  // Media transfer; crossing a track boundary costs a head/track switch we
  // fold into the per-block rate (blocks on a cylinder are consecutive).
  SimDuration transfer = geom_.transfer_per_block() * static_cast<SimDuration>(count);
  // Crossing into further cylinders adds single-cylinder seeks.
  uint32_t end_cyl = CylinderOf(blkno + count - 1);
  if (end_cyl > target_cyl) {
    transfer += SeekTime(0, 1) * static_cast<SimDuration>(end_cyl - target_cyl);
  }
  t += transfer;
  if (stat_seek_ns_ != nullptr) {
    stat_seek_ns_->Inc(static_cast<uint64_t>(seek));
    stat_rotation_ns_->Inc(static_cast<uint64_t>(rotation));
    stat_transfer_ns_->Inc(static_cast<uint64_t>(transfer));
    uint32_t moved =
        target_cyl > head_cylinder_ ? target_cyl - head_cylinder_ : head_cylinder_ - target_cyl;
    stat_cylinders_moved_->Inc(moved + (end_cyl - target_cyl));
  }
  head_cylinder_ = end_cyl;

  if (is_write) {
    // Write-through drives invalidate overlapping cache content; keeping
    // it simple, any write drops the read-ahead window.
    cache_lo_ = cache_hi_ = 0;
  } else {
    cache_lo_ = blkno;
    cache_hi_ = std::min<uint64_t>(static_cast<uint64_t>(geom_.total_blocks),
                                   static_cast<uint64_t>(blkno + count) + geom_.prefetch_blocks);
  }
  return t - start;
}

}  // namespace mufs
