// Machine: assembles the full simulated system - engine, CPU, disk(s),
// driver(s), buffer cache(s), syncer daemon(s), file system(s) and
// ordering policy - from one config. This is the library's main entry
// point.
//
//   MachineConfig cfg;
//   cfg.scheme = Scheme::kSoftUpdates;
//   Machine m(cfg);
//   Proc user = m.MakeProc("user1");
//   m.engine().Spawn(MyWorkload(&m, &user), "user1");
//   m.engine().RunUntil([&] { return done; });
//
// With config.disks > 1 (or config.shards > 1) the machine becomes a
// striped multi-disk volume (src/volume/): N full disk stacks behind a
// StripedVolume, the block space partitioned into S shard regions, each
// running its own FileSystem + cache + syncer (+ journal), all glued
// together by a ShardedFs that routes operations by leaf-name hash.
// disks == 1 (the default) is the EXACT single-disk machine: no volume
// is constructed and no volume/per-disk metrics are registered.
#ifndef MUFS_SRC_CORE_MACHINE_H_
#define MUFS_SRC_CORE_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/async/visibility_ledger.h"
#include "src/cache/buffer_cache.h"
#include "src/cache/syncer.h"
#include "src/core/policies.h"
#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/fault/fault_injector.h"
#include "src/fs/filesystem.h"
#include "src/fs/fs_interface.h"
#include "src/journal/journal_manager.h"
#include "src/journal/journal_recovery.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/volume/sharded_fs.h"
#include "src/volume/volume.h"

namespace mufs {

enum class Scheme {
  kNoOrder,
  kConventional,
  kSchedulerFlag,
  kSchedulerChains,
  kSoftUpdates,
  kJournaling,
  kAsync,
};

// Display name with spaces ("Soft Updates"), used in figures and logs.
std::string_view ToString(Scheme s);
// Compact identifier-safe name ("SoftUpdates"), used in stats sidecars,
// bench tables and gtest parameter names. The one place scheme names are
// stringified - everything else calls one of these two.
std::string_view SchemeName(Scheme s);

// Every scheme, in bench-table order (the unsafe NoOrder baseline last).
// Sweep tests and bench tables enumerate this array instead of keeping
// their own lists, so a new scheme propagates everywhere by being added
// here (next to its SchemeName entry above).
inline constexpr Scheme kAllSchemes[] = {
    Scheme::kConventional, Scheme::kSchedulerFlag, Scheme::kSchedulerChains,
    Scheme::kSoftUpdates,  Scheme::kJournaling,    Scheme::kAsync,
    Scheme::kNoOrder,
};

struct MachineConfig {
  Scheme scheme = Scheme::kConventional;

  // Scheduler-flag options (paper section 3.1/3.3).
  FlagSemantics flag_semantics = FlagSemantics::kPart;
  bool reads_bypass = true;  // -NR
  bool copy_blocks = true;   // -CB

  // Scheduler-chain variant (section 3.2): track freed resources (true)
  // or fall back to barrier behaviour (false).
  bool chains_track_freed = true;

  // The paper's "Ignore" datapoint: the file system issues flagged
  // asynchronous writes but the driver disregards the flags (figure 1/2
  // comparison only; NOT crash safe).
  bool ignore_flags = false;

  // Enforce allocation initialization for file data blocks (tables 1).
  bool alloc_init = false;

  // Device command-queue depth (--queue-depth). 1 = the paper's substrate
  // (no command queueing, byte-identical stats to the pre-queueing
  // driver); >1 enables SCSI-style tagged queueing: the driver dispatches
  // until the device queue is full and the device picks by rotational
  // position, with ordered tags at the Flag/Chains ordering boundaries.
  uint32_t queue_depth = 1;

  // Journaling options (Scheme::kJournaling only): size of the on-disk
  // log extent (journal superblock + ring) and the group-commit cadence.
  uint32_t journal_log_blocks = 1024;
  SimDuration journal_commit_interval = Sec(1);

  // Async-scheme options (Scheme::kAsync only): the bounded staleness
  // window (--staleness-ns) - an op that completed more than this long
  // before a crash must be durable by the crash - and the background
  // epoch-flush cadence (0 = staleness_window / 4). See src/async/.
  SimDuration async_staleness_window = Msec(500);
  SimDuration async_flush_interval = 0;

  // Disk fault injection (off by default: all rates zero). When enabled
  // the driver consults the injector on every service attempt and runs
  // its retry/remap/timeout recovery path. Multi-disk machines give disk
  // d an independent injector seeded fault.seed + d.
  FaultConfig fault;

  // Striped multi-disk volume (--disks / --stripe-unit): each member
  // disk gets its own `geometry`-sized model, fault injector and driver;
  // volume LBAs stripe over them in stripe_unit-block chunks. 1 = the
  // exact single-disk machine (no volume layer at all).
  //
  // stripe_unit 0 (the default) is shard-aligned placement: the unit is
  // sized so each shard's region lands contiguously on one member disk
  // (shards then scale with spindles - each arm stays inside its own
  // metadata zone). An explicit unit interleaves finely instead; that
  // buys intra-file parallelism but every arm then serves every shard's
  // hot metadata zones, and the seek cost usually dominates.
  uint32_t disks = 1;
  uint32_t stripe_unit = 0;
  // Metadata shards on the volume; 0 = one per disk. Each shard is a
  // complete file system owning volume region [s*SB, (s+1)*SB). Only
  // meaningful when the machine is multi (disks > 1 or shards > 1).
  uint32_t shards = 0;
  // CPU cores; 0 = one per disk (the scale-out node adds a core with
  // every spindle, so a multi-disk machine is N of the paper's machines
  // behind one namespace). Single-disk machines stay the paper's 1-CPU
  // i486 either way.
  uint32_t cpus = 0;

  // Worker threads for boot-time crash recovery (per-shard journal
  // replay) and for harness-side fsck when plumbed through (see
  // FsckOptions::threads). 0/1 = the serial path, byte-identical
  // recovered images and stats guaranteed. >= 2 replays shard regions
  // concurrently on real std::threads (outside the sim clock - recovery
  // happens "before" simulated time resumes) with a serial merge-back.
  uint32_t recovery_threads = 0;

  DiskGeometry geometry;
  size_t cache_capacity_blocks = 8192;
  SyncerConfig syncer;
  FsCpuCosts cpu_costs;
  uint32_t total_inodes = 32768;
  uint64_t seed = 42;
  bool collect_traces = true;
  // Stream per-event JSONL trace records into the stats registry
  // (disk issue/service/complete, cache hit/miss/flush, syncer sweeps,
  // policy ordering points, soft-updates rollback/redo).
  bool collect_stats_trace = false;
  size_t stats_trace_cap = 1 << 20;
  // Format a fresh file system in the image at construction.
  bool format = true;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  const MachineConfig& config() const { return config_; }
  Engine& engine() { return *engine_; }
  Cpu& cpu() { return *cpu_; }
  // The stable-storage image. Multi-disk machines share ONE
  // volume-addressed image across all member drivers, so WriteCount(),
  // ArmTornWrite() and CrashNow() keep their machine-wide meaning.
  DiskImage& image() { return *image_; }
  DiskModel& disk() { return *models_[0]; }
  DiskModel& disk(size_t d) { return *models_[d]; }
  DiskDriver& driver() { return *drivers_[0]; }
  DiskDriver& driver(size_t d) { return *drivers_[d]; }
  BufferCache& cache() { return *caches_[0]; }
  BufferCache& cache(size_t s) { return *caches_[s]; }
  SyncerDaemon& syncer() { return *syncers_[0]; }
  SyncerDaemon& syncer(size_t s) { return *syncers_[s]; }
  // Null unless config.fault has a non-zero rate or scripted entries.
  FaultInjector* faults() { return faults_.empty() ? nullptr : faults_[0].get(); }
  FaultInjector* faults(size_t d) { return faults_[d].get(); }
  // Shard 0's file system (the only one on a single-disk machine).
  FileSystem& fs() { return *fss_[0]; }
  FileSystem& fs(size_t s) { return *fss_[s]; }
  // The operation surface workloads should use: the ShardedFs router on
  // a multi machine, the plain FileSystem otherwise.
  FsInterface& vfs() {
    return sharded_ != nullptr ? static_cast<FsInterface&>(*sharded_) : *fss_[0];
  }
  OrderingPolicy& policy() { return *policies_[0]; }
  // Null unless the scheme is kJournaling (shard 0's journal on multi).
  JournalManager* journal() { return journals_.empty() ? nullptr : journals_[0].get(); }
  JournalManager* journal(size_t s) { return journals_[s].get(); }
  // Null unless the scheme is kAsync (shard 0's ledger on multi).
  VisibilityLedger* ledger() { return ledgers_.empty() ? nullptr : ledgers_[0].get(); }
  VisibilityLedger* ledger(size_t s) { return ledgers_[s].get(); }
  // Null unless the machine is multi.
  StripedVolume* volume() { return volume_.get(); }
  ShardedFs* sharded() { return sharded_.get(); }
  // Result of the crash-recovery replay run by the last Boot (all zeros
  // for non-journaling schemes and fresh images; summed over shards).
  const JournalReplayReport& last_replay() const { return last_replay_; }
  StatsRegistry& stats() { return *stats_; }
  const StatsRegistry& stats() const { return *stats_; }

  // --- multi-disk topology -------------------------------------------
  size_t NumDisks() const { return drivers_.size(); }
  size_t NumShards() const { return fss_.size(); }
  bool IsMulti() const { return volume_ != nullptr; }
  uint32_t ShardBlocks() const { return shard_blocks_; }
  uint32_t ShardBase(size_t s) const { return static_cast<uint32_t>(s) * shard_blocks_; }
  // Global inode number stride between shards (= per-shard inode count).
  uint32_t InoStride() const { return config_.total_inodes; }

  // All metrics plus derived figures (disk utilization, cache hit rate)
  // and run identity (scheme, seed, simulated time) as one deterministic
  // JSON object - the machine-readable sidecar every bench emits.
  std::string DumpStatsJson() const;

  Proc MakeProc(std::string name);

  // Mounts the file system(s) and starts the syncer daemon(s). Run
  // inside the engine (spawn or as part of a workload) before any FS
  // operation.
  Task<void> Boot(Proc& proc);

  // Replaces the disk image contents (remounting a previously saved
  // image). Call before Boot, with config.format = false.
  void LoadImage(const DiskImage& saved) { *image_ = saved; }

  // "Power failure": a snapshot of stable storage exactly as it is now.
  // In-flight requests have not landed (the driver commits at service
  // completion); nothing in memory survives.
  DiskImage CrashNow() const { return image_->Snapshot(); }

  // Orderly shutdown: flush everything, stop the syncers.
  Task<void> Shutdown(Proc& proc);

 private:
  MachineConfig config_;
  uint32_t shard_blocks_ = 0;
  std::unique_ptr<StatsRegistry> stats_;
  std::unique_ptr<DiskImage> image_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Cpu> cpu_;
  std::vector<std::unique_ptr<DiskModel>> models_;
  std::vector<std::unique_ptr<FaultInjector>> faults_;  // Before drivers: outlive them.
  std::vector<std::unique_ptr<DiskDriver>> drivers_;
  std::unique_ptr<StripedVolume> volume_;              // Multi only.
  std::vector<std::unique_ptr<ShardDevice>> shard_devs_;  // Multi only.
  std::vector<std::unique_ptr<BufferCache>> caches_;
  std::vector<std::unique_ptr<SyncerDaemon>> syncers_;
  std::vector<std::unique_ptr<FileSystem>> fss_;
  std::vector<std::unique_ptr<JournalManager>> journals_;  // Empty unless journaling.
  std::vector<std::unique_ptr<VisibilityLedger>> ledgers_;  // Empty unless async.
  std::vector<std::unique_ptr<OrderingPolicy>> policies_;
  std::unique_ptr<ShardedFs> sharded_;                 // Multi only.
  JournalReplayReport last_replay_;
  Pid next_pid_ = 1;
};

}  // namespace mufs

#endif  // MUFS_SRC_CORE_MACHINE_H_
