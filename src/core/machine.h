// Machine: assembles the full simulated system - engine, CPU, disk,
// driver, buffer cache, syncer daemon, file system and ordering policy -
// from one config. This is the library's main entry point.
//
//   MachineConfig cfg;
//   cfg.scheme = Scheme::kSoftUpdates;
//   Machine m(cfg);
//   Proc user = m.MakeProc("user1");
//   m.engine().Spawn(MyWorkload(&m, &user), "user1");
//   m.engine().RunUntil([&] { return done; });
#ifndef MUFS_SRC_CORE_MACHINE_H_
#define MUFS_SRC_CORE_MACHINE_H_

#include <memory>
#include <string>

#include "src/cache/buffer_cache.h"
#include "src/cache/syncer.h"
#include "src/core/policies.h"
#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/driver/disk_driver.h"
#include "src/fault/fault_injector.h"
#include "src/fs/filesystem.h"
#include "src/journal/journal_manager.h"
#include "src/journal/journal_recovery.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"

namespace mufs {

enum class Scheme {
  kNoOrder,
  kConventional,
  kSchedulerFlag,
  kSchedulerChains,
  kSoftUpdates,
  kJournaling,
};

// Display name with spaces ("Soft Updates"), used in figures and logs.
std::string_view ToString(Scheme s);
// Compact identifier-safe name ("SoftUpdates"), used in stats sidecars,
// bench tables and gtest parameter names. The one place scheme names are
// stringified - everything else calls one of these two.
std::string_view SchemeName(Scheme s);

struct MachineConfig {
  Scheme scheme = Scheme::kConventional;

  // Scheduler-flag options (paper section 3.1/3.3).
  FlagSemantics flag_semantics = FlagSemantics::kPart;
  bool reads_bypass = true;  // -NR
  bool copy_blocks = true;   // -CB

  // Scheduler-chain variant (section 3.2): track freed resources (true)
  // or fall back to barrier behaviour (false).
  bool chains_track_freed = true;

  // The paper's "Ignore" datapoint: the file system issues flagged
  // asynchronous writes but the driver disregards the flags (figure 1/2
  // comparison only; NOT crash safe).
  bool ignore_flags = false;

  // Enforce allocation initialization for file data blocks (tables 1).
  bool alloc_init = false;

  // Device command-queue depth (--queue-depth). 1 = the paper's substrate
  // (no command queueing, byte-identical stats to the pre-queueing
  // driver); >1 enables SCSI-style tagged queueing: the driver dispatches
  // until the device queue is full and the device picks by rotational
  // position, with ordered tags at the Flag/Chains ordering boundaries.
  uint32_t queue_depth = 1;

  // Journaling options (Scheme::kJournaling only): size of the on-disk
  // log extent (journal superblock + ring) and the group-commit cadence.
  uint32_t journal_log_blocks = 1024;
  SimDuration journal_commit_interval = Sec(1);

  // Disk fault injection (off by default: all rates zero). When enabled
  // the driver consults the injector on every service attempt and runs
  // its retry/remap/timeout recovery path.
  FaultConfig fault;

  DiskGeometry geometry;
  size_t cache_capacity_blocks = 8192;
  SyncerConfig syncer;
  FsCpuCosts cpu_costs;
  uint32_t total_inodes = 32768;
  uint64_t seed = 42;
  bool collect_traces = true;
  // Stream per-event JSONL trace records into the stats registry
  // (disk issue/service/complete, cache hit/miss/flush, syncer sweeps,
  // policy ordering points, soft-updates rollback/redo).
  bool collect_stats_trace = false;
  size_t stats_trace_cap = 1 << 20;
  // Format a fresh file system in the image at construction.
  bool format = true;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  const MachineConfig& config() const { return config_; }
  Engine& engine() { return *engine_; }
  Cpu& cpu() { return *cpu_; }
  DiskImage& image() { return *image_; }
  DiskModel& disk() { return *model_; }
  DiskDriver& driver() { return *driver_; }
  BufferCache& cache() { return *cache_; }
  SyncerDaemon& syncer() { return *syncer_; }
  // Null unless config.fault has a non-zero rate or scripted entries.
  FaultInjector* faults() { return faults_.get(); }
  FileSystem& fs() { return *fs_; }
  OrderingPolicy& policy() { return *policy_; }
  // Null unless the scheme is kJournaling.
  JournalManager* journal() { return journal_.get(); }
  // Result of the crash-recovery replay run by the last Boot (all zeros
  // for non-journaling schemes and fresh images).
  const JournalReplayReport& last_replay() const { return last_replay_; }
  StatsRegistry& stats() { return *stats_; }
  const StatsRegistry& stats() const { return *stats_; }

  // All metrics plus derived figures (disk utilization, cache hit rate)
  // and run identity (scheme, seed, simulated time) as one deterministic
  // JSON object - the machine-readable sidecar every bench emits.
  std::string DumpStatsJson() const;

  Proc MakeProc(std::string name);

  // Mounts the file system and starts the syncer daemon. Run inside the
  // engine (spawn or as part of a workload) before any FS operation.
  Task<void> Boot(Proc& proc);

  // Replaces the disk image contents (remounting a previously saved
  // image). Call before Boot, with config.format = false.
  void LoadImage(const DiskImage& saved) { *image_ = saved; }

  // "Power failure": a snapshot of stable storage exactly as it is now.
  // In-flight requests have not landed (the driver commits at service
  // completion); nothing in memory survives.
  DiskImage CrashNow() const { return image_->Snapshot(); }

  // Orderly shutdown: flush everything, stop the syncer.
  Task<void> Shutdown(Proc& proc);

 private:
  MachineConfig config_;
  std::unique_ptr<StatsRegistry> stats_;
  std::unique_ptr<DiskImage> image_;
  std::unique_ptr<DiskModel> model_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Cpu> cpu_;
  std::unique_ptr<FaultInjector> faults_;  // Before driver_: outlives it.
  std::unique_ptr<DiskDriver> driver_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<SyncerDaemon> syncer_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<JournalManager> journal_;
  std::unique_ptr<OrderingPolicy> policy_;
  JournalReplayReport last_replay_;
  Pid next_pid_ = 1;
};

}  // namespace mufs

#endif  // MUFS_SRC_CORE_MACHINE_H_
