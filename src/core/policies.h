// The four non-soft-updates ordering schemes of the paper's evaluation.
// Soft updates itself lives in src/core/softupdates/.
#ifndef MUFS_SRC_CORE_POLICIES_H_
#define MUFS_SRC_CORE_POLICIES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/fs/filesystem.h"
#include "src/fs/policy.h"

namespace mufs {

// "No Order": delayed writes everywhere, no ordering. Matches the paper's
// baseline (and the delay-mount / memory-file-system bound). NOT crash
// safe - it exists to define the performance ceiling.
class NoOrderPolicy final : public OrderingPolicy {
 public:
  std::string_view Name() const override { return "NoOrder"; }
  bool WriteThroughInodes() const override { return false; }
  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  Task<void> FlushAll(Proc& proc) override;
};

// "Conventional": synchronous writes at every ordering point, as in the
// original UNIX FS and FFS.
class ConventionalPolicy final : public OrderingPolicy {
 public:
  std::string_view Name() const override { return "Conventional"; }
  bool MetadataSynchronous() const override { return true; }
  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  Task<void> FlushAll(Proc& proc) override;
};

// "Scheduler Flag" (section 3.1): ordering-critical writes become
// asynchronous with the one-bit flag set; the driver (configured with
// OrderingMode::kFlag and some FlagSemantics) enforces sequencing. The
// -NR and -CB options are DriverConfig/CacheConfig knobs.
class SchedulerFlagPolicy final : public OrderingPolicy {
 public:
  std::string_view Name() const override { return "SchedulerFlag"; }
  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  Task<void> FlushAll(Proc& proc) override;
};

// "Scheduler Chains" (section 3.2): asynchronous writes carrying explicit
// request-dependency lists. Two variants for the de-allocation/re-use
// rule: tracking freed resources until the reset pointer lands (the
// better one, default), or falling back to barrier-like behaviour by
// making every subsequent ordered write depend on outstanding
// de-allocation writes.
class SchedulerChainPolicy final : public OrderingPolicy {
 public:
  explicit SchedulerChainPolicy(bool track_freed_resources = true)
      : track_freed_(track_freed_resources) {}

  std::string_view Name() const override { return "SchedulerChains"; }
  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  Task<void> FlushAll(Proc& proc) override;

 private:
  // Deps a fresh use of the resource must wait on, pruned lazily.
  std::vector<uint64_t> ReuseDeps(uint32_t blkno);
  std::vector<uint64_t> BarrierDeps();

  bool track_freed_;
  std::unordered_map<uint32_t, std::vector<uint64_t>> block_reuse_deps_;
  std::unordered_map<uint32_t, uint64_t> inode_remove_write_;  // ino -> dir reset write.
  std::vector<uint64_t> barrier_reqs_;  // Fallback variant only.
};

}  // namespace mufs

#endif  // MUFS_SRC_CORE_POLICIES_H_
