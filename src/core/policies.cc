#include "src/core/policies.h"

#include <algorithm>
#include <string>

namespace mufs {

// ---------------------------------------------------------------------
// Base plumbing
// ---------------------------------------------------------------------

void OrderingPolicy::Attach(FileSystem* fs) {
  fs_ = fs;
  stats_ = fs->stats();
  stat_ordering_points_ = &stats_->counter("policy.ordering_points");
}

void OrderingPolicy::NoteOrderingPoint(std::string_view point, std::string_view action) {
  if (stats_ == nullptr) {
    return;  // Never attached (unit tests poking a bare policy).
  }
  stat_ordering_points_->Inc();
  std::string name = "policy.";
  name += point;
  stats_->counter(name).Inc();
  if (stats_->tracing()) {
    stats_->Trace("policy.ordering_point",
                  {{"scheme", Name()}, {"point", point}, {"action", action}});
  }
}

// ---------------------------------------------------------------------
// Shared drain loop
// ---------------------------------------------------------------------

Task<void> OrderingPolicy::DrainAllDirty(Proc& proc) {
  (void)proc;
  // Completion processing and workitems can generate new dirty state
  // (deferred frees dirty the bitmaps, redo re-dirties buffers), so
  // iterate to quiescence.
  for (int round = 0; round < 100; ++round) {
    co_await fs()->FlushDirtyInodes();
    co_await fs()->cache()->SyncAll();
    co_await fs()->syncer()->DrainWork();
    bool quiet = !fs()->AnyDirtyInode() && fs()->cache()->DirtyCount() == 0 &&
                 fs()->syncer()->PendingWork() == 0 &&
                 fs()->cache()->driver()->PendingCount() == 0;
    if (quiet) {
      co_return;
    }
  }
}

// ---------------------------------------------------------------------
// NoOrder
// ---------------------------------------------------------------------

Task<void> NoOrderPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                                          bool init_required, BlockRole role) {
  (void)init_required;  // Ignored: that is the point of this baseline.
  (void)role;
  NoteOrderingPoint("alloc", "delayed");
  co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
}

Task<void> NoOrderPolicy::SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                                         std::vector<BufRef> updated_indirects) {
  (void)ip;
  (void)updated_indirects;  // Already marked dirty; syncer handles them.
  NoteOrderingPoint("block_free", "delayed");
  co_await fs()->FreeBlocksInBitmap(proc, blocks);
}

Task<void> NoOrderPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                       Inode& target, bool new_inode) {
  (void)proc;
  (void)dir;
  (void)dir_buf;
  (void)offset;
  (void)target;
  (void)new_inode;
  NoteOrderingPoint("link_add", "delayed");
  co_return;  // Everything is already a delayed write.
}

Task<void> NoOrderPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                                          DirEntry old_entry, uint32_t removed_ino,
                                          const RenameContext* rename) {
  (void)dir;
  (void)dir_buf;
  (void)offset;
  (void)old_entry;
  (void)rename;
  NoteOrderingPoint("link_remove", "delayed");
  co_await fs()->ReleaseLink(proc, removed_ino);
}

Task<void> NoOrderPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  NoteOrderingPoint("inode_free", "delayed");
  co_await fs()->FreeInodeInBitmap(proc, ip.ino);
}

Task<void> NoOrderPolicy::FlushAll(Proc& proc) { co_await DrainAllDirty(proc); }

// ---------------------------------------------------------------------
// Conventional (synchronous writes)
// ---------------------------------------------------------------------

Task<void> ConventionalPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf,
                                               PtrLoc loc, bool init_required, BlockRole role) {
  (void)role;
  NoteOrderingPoint("alloc", init_required ? "sync_write" : "delayed");
  if (init_required) {
    // Synchronously write zeroes to the new block before the pointer can
    // reach its carrier. The reserved zero block is the I/O source
    // (section 3.3), so the data buffer itself is never locked.
    BlockDevice* driver = fs()->cache()->driver();
    uint64_t id = driver->IssueWrite(data_buf->blkno(), {fs()->cache()->ZeroBlock()});
    SimTime t0 = fs()->engine()->Now();
    IoStatus init_status = co_await driver->WaitFor(id);
    proc.io_wait += fs()->engine()->Now() - t0;
    if (init_status != IoStatus::kOk) {
      // The block may hold stale data from its previous life; committing
      // the pointer anyway matches a disk that dropped the init write.
      // Record the degradation so sync callers report it.
      fs()->NoteIoError();
    }
  }
  co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
}

Task<void> ConventionalPolicy::SetupBlockFree(Proc& proc, Inode& ip,
                                              std::vector<uint32_t> blocks,
                                              std::vector<BufRef> updated_indirects) {
  // The reset pointers must be on disk before the blocks may be reused:
  // synchronous writes of the inode and any surviving indirect blocks,
  // then the bitmaps are updated (delayed) and reuse is immediate.
  NoteOrderingPoint("block_free", "sync_write");
  co_await fs()->FlushInodeToBuffer(ip);
  SimTime t0 = fs()->engine()->Now();
  IoStatus ws = co_await fs()->cache()->Bwrite(ip.itable_buf);
  if (ws != IoStatus::kOk) {
    fs()->NoteIoError();
  }
  for (BufRef& ibuf : updated_indirects) {
    ws = co_await fs()->cache()->Bwrite(ibuf);
    if (ws != IoStatus::kOk) {
      fs()->NoteIoError();
    }
  }
  proc.io_wait += fs()->engine()->Now() - t0;
  // Even on a failed reset write the blocks are released: the buffer
  // stays dirty (write_failed) so a later successful flush restores the
  // ordering invariant, and fsck can repair the transient window.
  co_await fs()->FreeBlocksInBitmap(proc, blocks);
}

Task<void> ConventionalPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf,
                                            uint32_t offset, Inode& target, bool new_inode) {
  (void)dir;
  (void)dir_buf;
  (void)offset;
  (void)new_inode;
  // The (possibly new) inode must be on disk before the entry; the
  // directory block itself stays a delayed write ("the last write in a
  // series of metadata updates is asynchronous or delayed").
  NoteOrderingPoint("link_add", "sync_write");
  co_await fs()->FlushInodeToBuffer(target);
  SimTime t0 = fs()->engine()->Now();
  IoStatus ws = co_await fs()->cache()->Bwrite(target.itable_buf);
  proc.io_wait += fs()->engine()->Now() - t0;
  if (ws != IoStatus::kOk) {
    fs()->NoteIoError();
  }
}

Task<void> ConventionalPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf,
                                               uint32_t offset, DirEntry old_entry,
                                               uint32_t removed_ino,
                                               const RenameContext* rename) {
  (void)dir;
  (void)offset;
  (void)old_entry;
  NoteOrderingPoint("link_remove", "sync_write");
  SimTime t0 = fs()->engine()->Now();
  if (rename != nullptr && rename->new_dir_buf->blkno() != dir_buf->blkno()) {
    // Rule 1: the new name reaches disk before the old one is cleared.
    NoteOrderingPoint("rename_fence", "sync_write");
    IoStatus fence = co_await fs()->cache()->Bwrite(rename->new_dir_buf);
    if (fence != IoStatus::kOk) {
      fs()->NoteIoError();
    }
  }
  // Rule 2: the cleared entry reaches disk before the link count drops.
  IoStatus ws = co_await fs()->cache()->Bwrite(dir_buf);
  if (ws != IoStatus::kOk) {
    fs()->NoteIoError();
  }
  proc.io_wait += fs()->engine()->Now() - t0;
  co_await fs()->ReleaseLink(proc, removed_ino);
}

Task<void> ConventionalPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  NoteOrderingPoint("inode_free", "sync_write");
  // The truncation usually wrote the reset inode (mode already 0) a
  // moment ago; only write again if something changed since.
  if (ip.dirty || ip.itable_buf->dirty()) {
    co_await fs()->FlushInodeToBuffer(ip);
    SimTime t0 = fs()->engine()->Now();
    IoStatus ws = co_await fs()->cache()->Bwrite(ip.itable_buf);
    proc.io_wait += fs()->engine()->Now() - t0;
    if (ws != IoStatus::kOk) {
      fs()->NoteIoError();
    }
  }
  co_await fs()->FreeInodeInBitmap(proc, ip.ino);
}

Task<void> ConventionalPolicy::FlushAll(Proc& proc) { co_await DrainAllDirty(proc); }

// ---------------------------------------------------------------------
// Scheduler flag
//
// Fault-tolerance contract: retries happen inside the device service
// loop while the request stays in service, so flagged ordering (and
// chain dependencies below) hold across re-issued attempts with no
// bookkeeping here. A request that exhausts its retries completes with
// a failure status; its buffer is re-dirtied by the cache (sticky
// write_failed) and dependents are released - equivalent to relaxing
// that one ordering edge to a delayed write, which fsck can repair.
// ---------------------------------------------------------------------

Task<void> SchedulerFlagPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf,
                                                PtrLoc loc, bool init_required, BlockRole role) {
  (void)role;
  NoteOrderingPoint("alloc", init_required ? "flagged_write" : "delayed");
  if (init_required) {
    // Asynchronous flagged init write from the zero block; the pointer
    // carrier's write is issued later, hence ordered after it.
    fs()->cache()->driver()->IssueWrite(data_buf->blkno(), {fs()->cache()->ZeroBlock()},
                                        {.flag = true, .device_ordered = true});
  }
  co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
}

Task<void> SchedulerFlagPolicy::SetupBlockFree(Proc& proc, Inode& ip,
                                               std::vector<uint32_t> blocks,
                                               std::vector<BufRef> updated_indirects) {
  // Section 3.2's flag-based de-allocation: the pointer-reset writes go
  // out as flagged asynchronous writes; reuse is immediate because any
  // later write (e.g. re-initialization of a reused block) is issued
  // after the flagged request and therefore ordered behind it.
  NoteOrderingPoint("block_free", "flagged_write");
  co_await fs()->FlushInodeToBuffer(ip);
  OrderingTag flagged;
  flagged.flag = true;
  flagged.device_ordered = true;
  (void)co_await fs()->cache()->Bawrite(ip.itable_buf, flagged);
  for (BufRef& ibuf : updated_indirects) {
    (void)co_await fs()->cache()->Bawrite(ibuf, flagged);
  }
  co_await fs()->FreeBlocksInBitmap(proc, blocks);
}

Task<void> SchedulerFlagPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf,
                                             uint32_t offset, Inode& target, bool new_inode) {
  (void)dir;
  (void)dir_buf;
  (void)offset;
  (void)new_inode;
  (void)proc;
  NoteOrderingPoint("link_add", "flagged_write");
  co_await fs()->FlushInodeToBuffer(target);
  OrderingTag flagged;
  flagged.flag = true;
  flagged.device_ordered = true;
  (void)co_await fs()->cache()->Bawrite(target.itable_buf, flagged);
}

Task<void> SchedulerFlagPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf,
                                                uint32_t offset, DirEntry old_entry,
                                                uint32_t removed_ino,
                                                const RenameContext* rename) {
  (void)dir;
  (void)offset;
  (void)old_entry;
  NoteOrderingPoint("link_remove", "flagged_write");
  OrderingTag flagged;
  flagged.flag = true;
  flagged.device_ordered = true;
  if (rename != nullptr && rename->new_dir_buf->blkno() != dir_buf->blkno()) {
    NoteOrderingPoint("rename_fence", "flagged_write");
    (void)co_await fs()->cache()->Bawrite(rename->new_dir_buf, flagged);
  }
  (void)co_await fs()->cache()->Bawrite(dir_buf, flagged);
  co_await fs()->ReleaseLink(proc, removed_ino);
}

Task<void> SchedulerFlagPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  NoteOrderingPoint("inode_free", "flagged_write");
  if (ip.dirty || ip.itable_buf->dirty()) {
    co_await fs()->FlushInodeToBuffer(ip);
    OrderingTag free_tag;
    free_tag.flag = true;
    free_tag.device_ordered = true;
    (void)co_await fs()->cache()->Bawrite(ip.itable_buf, free_tag);
  }
  co_await fs()->FreeInodeInBitmap(proc, ip.ino);
}

Task<void> SchedulerFlagPolicy::FlushAll(Proc& proc) { co_await DrainAllDirty(proc); }

// ---------------------------------------------------------------------
// Scheduler chains
// ---------------------------------------------------------------------

std::vector<uint64_t> SchedulerChainPolicy::ReuseDeps(uint32_t blkno) {
  auto it = block_reuse_deps_.find(blkno);
  if (it == block_reuse_deps_.end()) {
    return {};
  }
  std::vector<uint64_t> deps = std::move(it->second);
  block_reuse_deps_.erase(it);
  // Drop already-completed requests.
  BlockDevice* driver = fs()->cache()->driver();
  std::erase_if(deps, [&](uint64_t id) { return driver->IsComplete(id); });
  return deps;
}

std::vector<uint64_t> SchedulerChainPolicy::BarrierDeps() {
  BlockDevice* driver = fs()->cache()->driver();
  std::erase_if(barrier_reqs_, [&](uint64_t id) { return driver->IsComplete(id); });
  return barrier_reqs_;
}

Task<void> SchedulerChainPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf,
                                                 PtrLoc loc, bool init_required, BlockRole role) {
  (void)role;
  NoteOrderingPoint("alloc", init_required ? "chain_dep" : "delayed");
  std::vector<uint64_t> reuse =
      track_freed_ ? ReuseDeps(data_buf->blkno()) : BarrierDeps();
  if (init_required) {
    uint64_t init_id = fs()->cache()->driver()->IssueWrite(
        data_buf->blkno(), {fs()->cache()->ZeroBlock()}, {.deps = reuse});
    co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
    // The pointer write (whenever the carrier goes to disk) must follow
    // the initialization.
    BufRef carrier = loc.kind == PtrLoc::Kind::kIndirectSlot ? loc.indirect_buf : ip.itable_buf;
    fs()->cache()->AddWriteDep(*carrier, init_id);
  } else {
    co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
    if (!reuse.empty()) {
      // Re-used block without initialization ordering: the new owner (and
      // the block's own data) must still follow the old owner's reset.
      BufRef carrier =
          loc.kind == PtrLoc::Kind::kIndirectSlot ? loc.indirect_buf : ip.itable_buf;
      for (uint64_t id : reuse) {
        fs()->cache()->AddWriteDep(*carrier, id);
        fs()->cache()->AddWriteDep(*data_buf, id);
      }
    }
  }
}

Task<void> SchedulerChainPolicy::SetupBlockFree(Proc& proc, Inode& ip,
                                                std::vector<uint32_t> blocks,
                                                std::vector<BufRef> updated_indirects) {
  NoteOrderingPoint("block_free", "chain_dep");
  co_await fs()->FlushInodeToBuffer(ip);
  std::vector<uint64_t> reset_writes;
  reset_writes.push_back(co_await fs()->cache()->Bawrite(ip.itable_buf));
  for (BufRef& ibuf : updated_indirects) {
    reset_writes.push_back(co_await fs()->cache()->Bawrite(ibuf));
  }
  if (track_freed_) {
    for (uint32_t blk : blocks) {
      block_reuse_deps_[blk] = reset_writes;
    }
  } else {
    barrier_reqs_.insert(barrier_reqs_.end(), reset_writes.begin(), reset_writes.end());
  }
  co_await fs()->FreeBlocksInBitmap(proc, blocks);
}

Task<void> SchedulerChainPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf,
                                              uint32_t offset, Inode& target, bool new_inode) {
  (void)dir;
  (void)offset;
  (void)new_inode;
  (void)proc;
  NoteOrderingPoint("link_add", "chain_dep");
  co_await fs()->FlushInodeToBuffer(target);
  // NOTE: no non-trivial temporaries in co_await argument lists (GCC 12
  // double-destroys them); build the tag as a local and move it.
  OrderingTag add_tag;
  if (!track_freed_) {
    add_tag.deps = BarrierDeps();
    add_tag.device_ordered = !add_tag.deps.empty();
  }
  uint64_t id = co_await fs()->cache()->Bawrite(target.itable_buf, std::move(add_tag));
  // The directory entry (whenever its block is written) follows the inode.
  fs()->cache()->AddWriteDep(*dir_buf, id);
}

Task<void> SchedulerChainPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf,
                                                 uint32_t offset, DirEntry old_entry,
                                                 uint32_t removed_ino,
                                                 const RenameContext* rename) {
  (void)dir;
  (void)offset;
  (void)old_entry;
  NoteOrderingPoint("link_remove", "chain_dep");
  if (rename != nullptr && rename->new_dir_buf->blkno() != dir_buf->blkno()) {
    NoteOrderingPoint("rename_fence", "chain_dep");
    uint64_t new_id = co_await fs()->cache()->Bawrite(rename->new_dir_buf);
    fs()->cache()->AddWriteDep(*dir_buf, new_id);
  }
  uint64_t reset_id = co_await fs()->cache()->Bawrite(dir_buf);
  inode_remove_write_[removed_ino] = reset_id;
  if (!track_freed_) {
    barrier_reqs_.push_back(reset_id);
  }
  // Rule 2 for surviving inodes (nlink stays > 0, e.g. renames and
  // multi-link files): the write carrying the decremented link count must
  // follow the directory reset. Registering the dependency on the inode's
  // table block before the decrement is sufficient - any later write of
  // that block is ordered behind the reset directly or transitively
  // (same-block writes complete in issue order).
  InodeRef removed = co_await fs()->Iget(proc, removed_ino);
  if (removed == nullptr) {
    fs()->NoteIoError();  // Itable read failed; fsck repairs the count.
    co_return;
  }
  fs()->cache()->AddWriteDep(*removed->itable_buf, reset_id);
  co_await fs()->ReleaseLink(proc, removed_ino);
}

Task<void> SchedulerChainPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  NoteOrderingPoint("inode_free", "chain_dep");
  OrderingTag tag;
  auto it = inode_remove_write_.find(ip.ino);
  if (it != inode_remove_write_.end()) {
    // The zeroed inode follows the directory-entry reset; any later
    // reincarnation of this inode lands in the same block and is ordered
    // behind this write by the device's write-after-write rule.
    tag.deps.push_back(it->second);
    inode_remove_write_.erase(it);
  }
  if (!track_freed_) {
    auto barrier = BarrierDeps();
    tag.deps.insert(tag.deps.end(), barrier.begin(), barrier.end());
  }
  if (ip.dirty || ip.itable_buf->dirty() || !tag.deps.empty()) {
    tag.device_ordered = !tag.deps.empty();
    co_await fs()->FlushInodeToBuffer(ip);
    uint64_t id = co_await fs()->cache()->Bawrite(ip.itable_buf, std::move(tag));
    if (!track_freed_) {
      barrier_reqs_.push_back(id);
    }
  }
  co_await fs()->FreeInodeInBitmap(proc, ip.ino);
}

Task<void> SchedulerChainPolicy::FlushAll(Proc& proc) { co_await DrainAllDirty(proc); }

}  // namespace mufs
