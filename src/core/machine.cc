#include "src/core/machine.h"

#include "src/core/softupdates/soft_updates_policy.h"
#include "src/journal/journal_policy.h"

namespace mufs {

std::string_view ToString(Scheme s) {
  switch (s) {
    case Scheme::kNoOrder:
      return "No Order";
    case Scheme::kConventional:
      return "Conventional";
    case Scheme::kSchedulerFlag:
      return "Scheduler Flag";
    case Scheme::kSchedulerChains:
      return "Scheduler Chains";
    case Scheme::kSoftUpdates:
      return "Soft Updates";
    case Scheme::kJournaling:
      return "Journaling";
  }
  return "?";
}

std::string_view SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kNoOrder:
      return "NoOrder";
    case Scheme::kConventional:
      return "Conventional";
    case Scheme::kSchedulerFlag:
      return "SchedulerFlag";
    case Scheme::kSchedulerChains:
      return "SchedulerChains";
    case Scheme::kSoftUpdates:
      return "SoftUpdates";
    case Scheme::kJournaling:
      return "Journaling";
  }
  return "?";
}

namespace {

DriverConfig MakeDriverConfig(const MachineConfig& cfg, StatsRegistry* stats,
                              FaultInjector* faults) {
  DriverConfig d;
  d.collect_traces = cfg.collect_traces;
  d.stats = stats;
  d.faults = faults;
  d.queue_depth = cfg.queue_depth;
  switch (cfg.scheme) {
    case Scheme::kSchedulerFlag:
      d.mode = cfg.ignore_flags ? OrderingMode::kNone : OrderingMode::kFlag;
      d.semantics = cfg.flag_semantics;
      d.reads_bypass = cfg.reads_bypass;
      break;
    case Scheme::kSchedulerChains:
      d.mode = OrderingMode::kChains;
      break;
    default:
      // Conventional orders by waiting; NoOrder doesn't order; soft
      // updates orders in the cache layer. The driver runs free.
      d.mode = OrderingMode::kNone;
      break;
  }
  return d;
}

CacheConfig MakeCacheConfig(const MachineConfig& cfg, StatsRegistry* stats) {
  CacheConfig c;
  c.capacity_blocks = cfg.cache_capacity_blocks;
  c.stats = stats;
  // -CB only matters for schemes that issue ordered async writes while
  // processes keep updating the metadata.
  c.copy_blocks = cfg.copy_blocks && (cfg.scheme == Scheme::kSchedulerFlag ||
                                      cfg.scheme == Scheme::kSchedulerChains);
  return c;
}

std::unique_ptr<OrderingPolicy> MakePolicy(const MachineConfig& cfg, JournalManager* journal) {
  switch (cfg.scheme) {
    case Scheme::kNoOrder:
      return std::make_unique<NoOrderPolicy>();
    case Scheme::kConventional:
      return std::make_unique<ConventionalPolicy>();
    case Scheme::kSchedulerFlag:
      return std::make_unique<SchedulerFlagPolicy>();
    case Scheme::kSchedulerChains:
      return std::make_unique<SchedulerChainPolicy>(cfg.chains_track_freed);
    case Scheme::kSoftUpdates:
      return std::make_unique<SoftUpdatesPolicy>();
    case Scheme::kJournaling:
      return std::make_unique<JournalPolicy>(journal);
  }
  return nullptr;
}

}  // namespace

Machine::Machine(MachineConfig config) : config_(config) {
  image_ = std::make_unique<DiskImage>(config_.geometry.total_blocks);
  model_ = std::make_unique<DiskModel>(config_.geometry);
  engine_ = std::make_unique<Engine>();
  stats_ = std::make_unique<StatsRegistry>();
  stats_->SetClock([e = engine_.get()] { return e->Now(); });
  if (config_.collect_stats_trace) {
    stats_->EnableTrace(config_.stats_trace_cap);
  }
  model_->AttachStats(stats_.get());
  cpu_ = std::make_unique<Cpu>(engine_.get());
  if (config_.fault.Enabled()) {
    faults_ = std::make_unique<FaultInjector>(config_.fault);
    faults_->AttachStats(stats_.get());
  }
  driver_ = std::make_unique<DiskDriver>(engine_.get(), model_.get(), image_.get(),
                                         MakeDriverConfig(config_, stats_.get(), faults_.get()));
  cache_ = std::make_unique<BufferCache>(engine_.get(), driver_.get(),
                                         MakeCacheConfig(config_, stats_.get()));
  SyncerConfig syncer_cfg = config_.syncer;
  syncer_cfg.stats = stats_.get();
  syncer_ = std::make_unique<SyncerDaemon>(engine_.get(), cache_.get(), syncer_cfg);

  FsConfig fs_cfg;
  // The paper's "Alloc. Init." toggle applies to regular file data for
  // every scheme (Table 1 has N/Y rows even for soft updates; enforcing
  // it there costs only 3.8%).
  fs_cfg.alloc_init = config_.alloc_init;
  fs_cfg.costs = config_.cpu_costs;
  fs_cfg.stats = stats_.get();
  fs_ = std::make_unique<FileSystem>(engine_.get(), cpu_.get(), cache_.get(), syncer_.get(),
                                     fs_cfg);
  if (config_.format) {
    FileSystem::Mkfs(image_.get(), config_.total_inodes,
                     config_.scheme == Scheme::kJournaling ? config_.journal_log_blocks : 0);
  }
  if (config_.scheme == Scheme::kJournaling) {
    JournalConfig jcfg;
    jcfg.commit_interval = config_.journal_commit_interval;
    journal_ = std::make_unique<JournalManager>(engine_.get(), driver_.get(), cache_.get(),
                                                image_.get(), stats_.get(), jcfg);
    journal_->AttachFs(fs_.get());
  }
  policy_ = MakePolicy(config_, journal_.get());
  fs_->SetPolicy(policy_.get());
}

Machine::~Machine() {
  // Destroy the engine first: it unwinds every suspended coroutine frame
  // while the components those frames reference are still alive.
  engine_.reset();
}

Proc Machine::MakeProc(std::string name) {
  Proc p;
  p.pid = next_pid_++;
  p.name = std::move(name);
  return p;
}

Task<void> Machine::Boot(Proc& proc) {
  if (config_.scheme == Scheme::kJournaling) {
    // Crash recovery: replay committed log transactions into the image
    // before the file system reads anything from it.
    last_replay_ = JournalRecovery(image_.get()).Run();
    stats_->counter("journal.replay_txns").Inc(last_replay_.txns_replayed);
    stats_->counter("journal.replay_blocks").Inc(last_replay_.blocks_replayed);
    if (last_replay_.torn_tail) {
      stats_->counter("journal.replay_torn_tails").Inc();
    }
  }
  FsStatus s = co_await fs_->Mount(proc);
  (void)s;
  assert(s == FsStatus::kOk);
  syncer_->Start();
  if (journal_ != nullptr) {
    co_await journal_->Start();
  }
}

Task<void> Machine::Shutdown(Proc& proc) {
  co_await fs_->SyncEverything(proc);
  if (journal_ != nullptr) {
    journal_->Stop();
  }
  syncer_->Stop();
}

std::string Machine::DumpStatsJson() const {
  // Identity + derived figures first, then the raw registry dump. All
  // deterministic: sorted keys, sim-clock timestamps, %.9g doubles.
  uint64_t busy = stats_->counter("disk.busy_ns").value();
  uint64_t hits = stats_->counter("cache.hits").value();
  uint64_t misses = stats_->counter("cache.misses").value();
  SimTime now = engine_->Now();
  double utilization = now > 0 ? static_cast<double>(busy) / static_cast<double>(now) : 0.0;
  double hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;

  std::string out = "{\"scheme\":\"";
  JsonEscape(SchemeName(config_.scheme), &out);
  out += "\",\"seed\":";
  out += std::to_string(config_.seed);
  out += ",\"sim_time_ns\":";
  out += std::to_string(now);
  out += ",\"derived\":{\"cache.hit_rate\":";
  out += JsonDouble(hit_rate);
  out += ",\"disk.utilization\":";
  out += JsonDouble(utilization);
  out += "},\"metrics\":";
  out += stats_->DumpJson();
  out += "}";
  return out;
}

}  // namespace mufs
