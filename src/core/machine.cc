#include "src/core/machine.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "src/async/async_policy.h"
#include "src/core/softupdates/soft_updates_policy.h"
#include "src/journal/journal_policy.h"

namespace mufs {

std::string_view ToString(Scheme s) {
  switch (s) {
    case Scheme::kNoOrder:
      return "No Order";
    case Scheme::kConventional:
      return "Conventional";
    case Scheme::kSchedulerFlag:
      return "Scheduler Flag";
    case Scheme::kSchedulerChains:
      return "Scheduler Chains";
    case Scheme::kSoftUpdates:
      return "Soft Updates";
    case Scheme::kJournaling:
      return "Journaling";
    case Scheme::kAsync:
      return "Async";
  }
  return "?";
}

std::string_view SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kNoOrder:
      return "NoOrder";
    case Scheme::kConventional:
      return "Conventional";
    case Scheme::kSchedulerFlag:
      return "SchedulerFlag";
    case Scheme::kSchedulerChains:
      return "SchedulerChains";
    case Scheme::kSoftUpdates:
      return "SoftUpdates";
    case Scheme::kJournaling:
      return "Journaling";
    case Scheme::kAsync:
      return "Async";
  }
  return "?";
}

namespace {

// The scheme's driver-level ordering discipline. On a single disk it
// lives in the one DiskDriver; on a multi-disk machine it moves up into
// the StripedVolume gate and the member drivers run kNone.
struct OrderingSpec {
  OrderingMode mode = OrderingMode::kNone;
  FlagSemantics semantics = FlagSemantics::kPart;
  bool reads_bypass = false;
};

OrderingSpec MakeOrderingSpec(const MachineConfig& cfg) {
  OrderingSpec spec;
  switch (cfg.scheme) {
    case Scheme::kSchedulerFlag:
      spec.mode = cfg.ignore_flags ? OrderingMode::kNone : OrderingMode::kFlag;
      spec.semantics = cfg.flag_semantics;
      spec.reads_bypass = cfg.reads_bypass;
      break;
    case Scheme::kSchedulerChains:
      spec.mode = OrderingMode::kChains;
      break;
    default:
      // Conventional orders by waiting; NoOrder doesn't order; soft
      // updates orders in the cache layer. The driver runs free.
      break;
  }
  return spec;
}

DriverConfig MakeDriverConfig(const MachineConfig& cfg, StatsRegistry* stats,
                              FaultInjector* faults) {
  DriverConfig d;
  d.collect_traces = cfg.collect_traces;
  d.stats = stats;
  d.faults = faults;
  d.queue_depth = cfg.queue_depth;
  OrderingSpec spec = MakeOrderingSpec(cfg);
  d.mode = spec.mode;
  d.semantics = spec.semantics;
  d.reads_bypass = spec.reads_bypass;
  return d;
}

CacheConfig MakeCacheConfig(const MachineConfig& cfg, StatsRegistry* stats) {
  CacheConfig c;
  c.capacity_blocks = cfg.cache_capacity_blocks;
  c.stats = stats;
  // -CB only matters for schemes that issue ordered async writes while
  // processes keep updating the metadata. The async scheme's epoch
  // flusher writes hot buffers on a sub-second cadence, so it copies at
  // issue too: op-return latency must never wait on a flush write lock.
  c.copy_blocks = cfg.copy_blocks && (cfg.scheme == Scheme::kSchedulerFlag ||
                                      cfg.scheme == Scheme::kSchedulerChains ||
                                      cfg.scheme == Scheme::kAsync);
  return c;
}

std::unique_ptr<OrderingPolicy> MakePolicy(const MachineConfig& cfg, JournalManager* journal,
                                           VisibilityLedger* ledger) {
  switch (cfg.scheme) {
    case Scheme::kNoOrder:
      return std::make_unique<NoOrderPolicy>();
    case Scheme::kConventional:
      return std::make_unique<ConventionalPolicy>();
    case Scheme::kSchedulerFlag:
      return std::make_unique<SchedulerFlagPolicy>();
    case Scheme::kSchedulerChains:
      return std::make_unique<SchedulerChainPolicy>(cfg.chains_track_freed);
    case Scheme::kSoftUpdates:
      return std::make_unique<SoftUpdatesPolicy>();
    case Scheme::kJournaling:
      return std::make_unique<JournalPolicy>(journal);
    case Scheme::kAsync:
      return std::make_unique<AsyncPolicy>(ledger);
  }
  return nullptr;
}

}  // namespace

Machine::Machine(MachineConfig config) : config_(config) {
  const bool multi = config_.disks > 1 || config_.shards > 1;
  const size_t ndisks = config_.disks == 0 ? 1 : config_.disks;
  const size_t nshards = multi ? (config_.shards == 0 ? ndisks : config_.shards) : 1;
  const uint32_t volume_blocks =
      static_cast<uint32_t>(ndisks) * config_.geometry.total_blocks;
  assert(volume_blocks % nshards == 0);
  shard_blocks_ = volume_blocks / static_cast<uint32_t>(nshards);

  image_ = std::make_unique<DiskImage>(volume_blocks);
  engine_ = std::make_unique<Engine>();
  stats_ = std::make_unique<StatsRegistry>();
  stats_->SetClock([e = engine_.get()] { return e->Now(); });
  if (config_.collect_stats_trace) {
    stats_->EnableTrace(config_.stats_trace_cap);
  }
  const uint32_t ncpus =
      config_.cpus > 0 ? config_.cpus : static_cast<uint32_t>(ndisks);
  cpu_ = std::make_unique<Cpu>(engine_.get(), Msec(1), ncpus);

  VolumeLayout layout;
  layout.disks = static_cast<uint32_t>(ndisks);
  // Auto (0): shard-aligned striping. With S >= N shards the unit is one
  // shard region (shard s -> disk s % N, fully contiguous); with fewer
  // shards it is one disk's worth, which still concatenates cleanly.
  layout.stripe_unit = config_.stripe_unit > 0
                           ? config_.stripe_unit
                           : std::min(shard_blocks_, config_.geometry.total_blocks);
  layout.blocks_per_disk = config_.geometry.total_blocks;

  // --- per-disk stacks: model + fault injector + driver ---------------
  for (size_t d = 0; d < ndisks; ++d) {
    std::string instance = multi ? "disk" + std::to_string(d) : "";
    auto model = std::make_unique<DiskModel>(config_.geometry);
    model->AttachStats(stats_.get(), instance);
    FaultInjector* fi = nullptr;
    if (config_.fault.Enabled()) {
      FaultConfig fc = config_.fault;
      fc.seed += d;  // Independent fault streams per spindle.
      faults_.push_back(std::make_unique<FaultInjector>(fc));
      faults_.back()->AttachStats(stats_.get(), instance);
      fi = faults_.back().get();
    }
    DriverConfig dcfg = MakeDriverConfig(config_, stats_.get(), fi);
    if (multi) {
      dcfg.instance = instance;
      // The volume gate owns the scheme's ordering; member disks run free.
      dcfg.mode = OrderingMode::kNone;
      // Member drivers address their own disk; the shared image is
      // volume-addressed.
      dcfg.image_map = [layout, d](uint32_t local) {
        return layout.ToVolume(static_cast<uint32_t>(d), local);
      };
    }
    drivers_.push_back(std::make_unique<DiskDriver>(engine_.get(), model.get(),
                                                    image_.get(), dcfg));
    models_.push_back(std::move(model));
  }

  if (multi) {
    VolumeConfig vcfg;
    vcfg.layout = layout;
    OrderingSpec spec = MakeOrderingSpec(config_);
    vcfg.mode = spec.mode;
    vcfg.semantics = spec.semantics;
    vcfg.reads_bypass = spec.reads_bypass;
    vcfg.stats = stats_.get();
    std::vector<DiskDriver*> members;
    for (auto& drv : drivers_) {
      members.push_back(drv.get());
    }
    volume_ = std::make_unique<StripedVolume>(engine_.get(), std::move(members), vcfg);
  }

  // --- per-shard stacks: device view + cache + syncer + fs (+ journal) -
  const uint32_t journal_blocks =
      config_.scheme == Scheme::kJournaling ? config_.journal_log_blocks : 0;
  FsConfig fs_cfg;
  // The paper's "Alloc. Init." toggle applies to regular file data for
  // every scheme (Table 1 has N/Y rows even for soft updates; enforcing
  // it there costs only 3.8%).
  fs_cfg.alloc_init = config_.alloc_init;
  fs_cfg.costs = config_.cpu_costs;
  fs_cfg.stats = stats_.get();

  for (size_t s = 0; s < nshards; ++s) {
    BlockDevice* dev;
    if (multi) {
      shard_devs_.push_back(
          std::make_unique<ShardDevice>(engine_.get(), volume_.get(), ShardBase(s)));
      dev = shard_devs_.back().get();
    } else {
      dev = drivers_[0].get();
    }
    caches_.push_back(std::make_unique<BufferCache>(engine_.get(), dev,
                                                    MakeCacheConfig(config_, stats_.get())));
    SyncerConfig syncer_cfg = config_.syncer;
    syncer_cfg.stats = stats_.get();
    // Stagger the shards' syncer cadences across the interval so S
    // write-back bursts do not land on the volume at the same instant.
    syncer_cfg.initial_phase =
        syncer_cfg.interval * static_cast<SimDuration>(s) / static_cast<SimDuration>(nshards);
    syncers_.push_back(
        std::make_unique<SyncerDaemon>(engine_.get(), caches_.back().get(), syncer_cfg));
    fss_.push_back(std::make_unique<FileSystem>(engine_.get(), cpu_.get(),
                                                caches_.back().get(), syncers_.back().get(),
                                                fs_cfg));
    if (config_.format) {
      if (multi) {
        // Each shard is a complete file system formatted into its own
        // region of the volume image.
        DiskImage fresh(shard_blocks_);
        FileSystem::Mkfs(&fresh, config_.total_inodes, journal_blocks);
        BlockData blk;
        for (uint32_t blkno : fresh.WrittenBlocks()) {
          fresh.Read(blkno, &blk);
          image_->Write(ShardBase(s) + blkno, blk, 0);
        }
      } else {
        FileSystem::Mkfs(image_.get(), config_.total_inodes, journal_blocks);
      }
    }
    if (config_.scheme == Scheme::kJournaling) {
      JournalConfig jcfg;
      jcfg.commit_interval = config_.journal_commit_interval;
      jcfg.image_lba_base = ShardBase(s);
      journals_.push_back(std::make_unique<JournalManager>(engine_.get(), dev,
                                                           caches_.back().get(), image_.get(),
                                                           stats_.get(), jcfg));
      journals_.back()->AttachFs(fss_.back().get());
    }
    if (config_.scheme == Scheme::kAsync) {
      AsyncConfig acfg;
      acfg.staleness_window = config_.async_staleness_window;
      acfg.flush_interval = config_.async_flush_interval;
      acfg.stats = stats_.get();
      // Stagger the shards' epoch flushes across the cadence, like the
      // syncers, so S flush bursts do not land on the volume at once.
      acfg.initial_phase = VisibilityLedger::EffectiveFlushInterval(acfg) *
                           static_cast<SimDuration>(s) / static_cast<SimDuration>(nshards);
      ledgers_.push_back(std::make_unique<VisibilityLedger>(engine_.get(), acfg));
      ledgers_.back()->AttachFs(fss_.back().get());
    }
    policies_.push_back(
        MakePolicy(config_, journals_.empty() ? nullptr : journals_.back().get(),
                   ledgers_.empty() ? nullptr : ledgers_.back().get()));
    fss_.back()->SetPolicy(policies_.back().get());
  }

  if (multi) {
    std::vector<FileSystem*> shards;
    for (auto& fs : fss_) {
      shards.push_back(fs.get());
    }
    sharded_ = std::make_unique<ShardedFs>(engine_.get(), std::move(shards),
                                           config_.total_inodes);
  }
}

Machine::~Machine() {
  // Destroy the engine first: it unwinds every suspended coroutine frame
  // while the components those frames reference are still alive.
  engine_.reset();
}

Proc Machine::MakeProc(std::string name) {
  Proc p;
  p.pid = next_pid_++;
  p.name = std::move(name);
  return p;
}

Task<void> Machine::Boot(Proc& proc) {
  if (config_.scheme == Scheme::kJournaling) {
    // Crash recovery: replay committed log transactions into the image
    // before the file systems read anything from it - each shard's
    // journal in place in its own region.
    last_replay_ = {};
    std::vector<JournalReplayReport> reports(fss_.size());
    if (config_.recovery_threads > 1 && fss_.size() > 1) {
      // Parallel recovery: replay each shard's log against an extracted
      // copy of its region (shards are disjoint), then merge changed
      // blocks back serially in shard order. Replay of identical content
      // is skipped by the diff, which is unobservable: fsck treats
      // never-written and written-all-zero blocks identically, and every
      // content-changing replay write is reproduced.
      std::vector<DiskImage> regions;
      regions.reserve(fss_.size());
      for (size_t s = 0; s < fss_.size(); ++s) {
        regions.push_back(image_->ExtractRegion(ShardBase(s), ShardBlocks()));
      }
      std::atomic<size_t> next{0};
      std::vector<std::thread> pool;
      size_t workers = std::min<size_t>(config_.recovery_threads, fss_.size());
      for (size_t t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
          while (true) {
            size_t s = next.fetch_add(1);
            if (s >= reports.size()) {
              break;
            }
            reports[s] = JournalRecovery(&regions[s], 0).Run();
          }
        });
      }
      for (auto& th : pool) {
        th.join();
      }
      for (size_t s = 0; s < fss_.size(); ++s) {
        const uint32_t base = ShardBase(s);
        for (uint32_t blkno : regions[s].WrittenBlocks()) {
          BlockData replayed;
          regions[s].Read(blkno, &replayed);
          BlockData current;
          image_->Read(base + blkno, &current);
          if (memcmp(replayed.data(), current.data(), replayed.size()) != 0) {
            image_->Write(base + blkno, replayed, image_->LastWriteTime());
          }
        }
      }
    } else {
      for (size_t s = 0; s < fss_.size(); ++s) {
        reports[s] = JournalRecovery(image_.get(), ShardBase(s)).Run();
      }
    }
    for (const JournalReplayReport& r : reports) {
      last_replay_.journal_present = last_replay_.journal_present || r.journal_present;
      last_replay_.txns_replayed += r.txns_replayed;
      last_replay_.blocks_replayed += r.blocks_replayed;
      last_replay_.log_blocks_scanned += r.log_blocks_scanned;
      last_replay_.torn_tail = last_replay_.torn_tail || r.torn_tail;
      if (r.torn_tail) {
        stats_->counter("journal.replay_torn_tails").Inc();
      }
    }
    stats_->counter("journal.replay_txns").Inc(last_replay_.txns_replayed);
    stats_->counter("journal.replay_blocks").Inc(last_replay_.blocks_replayed);
  }
  for (auto& fs : fss_) {
    FsStatus s = co_await fs->Mount(proc);
    (void)s;
    assert(s == FsStatus::kOk);
  }
  for (auto& syncer : syncers_) {
    syncer->Start();
  }
  for (auto& journal : journals_) {
    co_await journal->Start();
  }
  for (auto& ledger : ledgers_) {
    ledger->Start();
  }
}

Task<void> Machine::Shutdown(Proc& proc) {
  co_await vfs().SyncEverything(proc);
  for (auto& ledger : ledgers_) {
    ledger->Stop();
  }
  for (auto& journal : journals_) {
    journal->Stop();
  }
  for (auto& syncer : syncers_) {
    syncer->Stop();
  }
}

std::string Machine::DumpStatsJson() const {
  // Identity + derived figures first, then the raw registry dump. All
  // deterministic: sorted keys, sim-clock timestamps, %.9g doubles.
  uint64_t hits = stats_->counter("cache.hits").value();
  uint64_t misses = stats_->counter("cache.misses").value();
  SimTime now = engine_->Now();
  double hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;

  std::string out = "{\"scheme\":\"";
  JsonEscape(SchemeName(config_.scheme), &out);
  out += "\",\"seed\":";
  out += std::to_string(config_.seed);
  out += ",\"sim_time_ns\":";
  out += std::to_string(now);
  out += ",\"derived\":{\"cache.hit_rate\":";
  out += JsonDouble(hit_rate);
  if (volume_ == nullptr) {
    uint64_t busy = stats_->counter("disk.busy_ns").value();
    double utilization = now > 0 ? static_cast<double>(busy) / static_cast<double>(now) : 0.0;
    out += ",\"disk.utilization\":";
    out += JsonDouble(utilization);
  } else {
    // Aggregate utilization (busy spindle-time over total spindle-time),
    // then each member disk's own figure. Key order stays lexicographic:
    // "disk." sorts before "disk0".
    uint64_t busy_total = 0;
    std::vector<uint64_t> busy(drivers_.size(), 0);
    for (size_t d = 0; d < drivers_.size(); ++d) {
      busy[d] = stats_->counter("disk" + std::to_string(d) + ".busy_ns").value();
      busy_total += busy[d];
    }
    double aggregate = now > 0 ? static_cast<double>(busy_total) /
                                     (static_cast<double>(now) *
                                      static_cast<double>(drivers_.size()))
                               : 0.0;
    out += ",\"disk.utilization\":";
    out += JsonDouble(aggregate);
    for (size_t d = 0; d < drivers_.size(); ++d) {
      double u = now > 0 ? static_cast<double>(busy[d]) / static_cast<double>(now) : 0.0;
      out += ",\"disk" + std::to_string(d) + ".utilization\":";
      out += JsonDouble(u);
    }
  }
  out += "},\"metrics\":";
  out += stats_->DumpJson();
  out += "}";
  return out;
}

}  // namespace mufs
