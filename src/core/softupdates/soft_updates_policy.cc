#include "src/core/softupdates/soft_updates_policy.h"

#include <cassert>
#include <cstddef>
#include <cstring>

namespace mufs {

// Adapter so the policy itself stays an OrderingPolicy while also serving
// the cache's DepHooks interface.
class SoftDepHooks final : public DepHooks {
 public:
  explicit SoftDepHooks(SoftUpdatesPolicy* p) : p_(p) {}
  std::shared_ptr<const BlockData> PrepareWrite(Buf& buf) override {
    return p_->PrepareWrite(buf);
  }
  void WriteDone(Buf& buf) override { p_->WriteDone(buf); }
  void WriteAborted(Buf& buf) override { p_->WriteAborted(buf); }
  void BufferAccessed(Buf& buf) override { p_->BufferAccessed(buf); }

 private:
  SoftUpdatesPolicy* p_;
};

SoftUpdatesPolicy::SoftUpdatesPolicy() {
  hooks_ = std::make_unique<SoftDepHooks>(this);
  sys_proc_.pid = kSystemPid;
  sys_proc_.name = "softdep";
  owned_stats_ = std::make_unique<StatsRegistry>();
  BindStats(owned_stats_.get());
}

SoftUpdatesPolicy::~SoftUpdatesPolicy() = default;

DepHooks* SoftUpdatesPolicy::CacheHooks() { return hooks_.get(); }

void SoftUpdatesPolicy::Attach(FileSystem* fs) {
  OrderingPolicy::Attach(fs);
  BindStats(fs->stats());
}

void SoftUpdatesPolicy::BindStats(StatsRegistry* stats) {
  su_stats_ = stats;
  stat_alloc_deps_ = &stats->counter("su.alloc_deps");
  stat_dir_adds_ = &stats->counter("su.dir_adds");
  stat_dir_rems_ = &stats->counter("su.dir_rems");
  stat_cancelled_pairs_ = &stats->counter("su.cancelled_pairs");
  stat_undos_ = &stats->counter("su.undos");
  stat_redos_ = &stats->counter("su.redos");
  stat_deferred_frees_ = &stats->counter("su.deferred_frees");
  stat_workitems_ = &stats->counter("su.workitems");
}

SoftUpdatesPolicy::Stats SoftUpdatesPolicy::stats() const {
  Stats s;
  s.alloc_deps = stat_alloc_deps_->value();
  s.dir_adds = stat_dir_adds_->value();
  s.dir_rems = stat_dir_rems_->value();
  s.cancelled_pairs = stat_cancelled_pairs_->value();
  s.undos = stat_undos_->value();
  s.redos = stat_redos_->value();
  s.deferred_frees = stat_deferred_frees_->value();
  s.workitems = stat_workitems_->value();
  return s;
}

SoftUpdatesPolicy::BlockDeps* SoftUpdatesPolicy::FindDeps(uint32_t blkno) {
  auto it = deps_.find(blkno);
  return it == deps_.end() ? nullptr : &it->second;
}

void SoftUpdatesPolicy::MaybeErase(uint32_t blkno) {
  auto it = deps_.find(blkno);
  if (it != deps_.end() && it->second.Empty() && !it->second.write_in_flight) {
    deps_.erase(it);
  }
}

void SoftUpdatesPolicy::PinInode(uint32_t ino) {
  InodeRef ip = fs()->IgetCached(ino);
  assert(ip != nullptr);
  ip->dep_pin++;
}

void SoftUpdatesPolicy::UnpinInode(uint32_t ino) {
  InodeRef ip = fs()->IgetCached(ino);
  if (ip != nullptr) {
    assert(ip->dep_pin > 0);
    ip->dep_pin--;
  }
}

bool SoftUpdatesPolicy::HasPendingDeps() const {
  if (!newblk_.empty()) {
    return true;
  }
  for (const auto& [blkno, bd] : deps_) {
    if (!bd.Empty()) {
      return true;
    }
  }
  return false;
}

bool SoftUpdatesPolicy::DirSlotBusy(uint32_t blkno, uint32_t offset) const {
  auto it = deps_.find(blkno);
  if (it == deps_.end()) {
    return false;
  }
  for (const auto& rm : it->second.rems) {
    if (rm->offset == offset && rm->wait_add != nullptr) {
      return true;  // Rename hold: the slot's old entry may be restored.
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Setup hooks (the four structural changes)
// ---------------------------------------------------------------------

namespace {

// Byte offset of the block pointer within its carrier block.
uint32_t PointerOffset(const SuperBlock& sb, const Inode& ip, const PtrLoc& loc) {
  switch (loc.kind) {
    case PtrLoc::Kind::kInodeDirect:
      return sb.ItableOffset(ip.ino) +
             static_cast<uint32_t>(offsetof(DiskInode, direct)) + loc.index * 4;
    case PtrLoc::Kind::kInodeIndirect:
      return sb.ItableOffset(ip.ino) + static_cast<uint32_t>(offsetof(DiskInode, indirect));
    case PtrLoc::Kind::kInodeDouble:
      return sb.ItableOffset(ip.ino) +
             static_cast<uint32_t>(offsetof(DiskInode, double_indirect));
    case PtrLoc::Kind::kIndirectSlot:
      return loc.index * 4;
  }
  return 0;
}

}  // namespace

Task<void> SoftUpdatesPolicy::SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                                              bool init_required,
                                              BlockRole role) {
  (void)role;
  NoteOrderingPoint("alloc", init_required ? "dep_record" : "delayed");
  if (!init_required) {
    // Alloc-init disabled for plain file data (the paper's "N" rows):
    // the pointer may reach disk before the data block does.
    co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
    co_return;
  }
  auto dep = std::make_unique<AllocDep>();
  dep->kind = loc.kind;
  dep->owner_ino = ip.ino;
  dep->new_blkno = data_buf->blkno();
  dep->old_blkno = 0;
  dep->old_size = ip.d.size;
  dep->data_pin = data_buf;
  dep->ptr_offset = PointerOffset(fs()->sb(), ip, loc);
  uint32_t carrier;
  if (loc.kind == PtrLoc::Kind::kIndirectSlot) {
    carrier = loc.indirect_buf->blkno();
    BlockDeps& cbd = DepsFor(carrier);
    if (cbd.safe_copy == nullptr) {
      // indirdep: snapshot the on-disk-consistent contents before the new
      // pointer lands in the live buffer; keep the block resident.
      cbd.safe_copy = std::make_shared<BlockData>(loc.indirect_buf->data());
      cbd.pinned = loc.indirect_buf;
    }
  } else {
    carrier = fs()->sb().ItableBlock(ip.ino);
  }
  dep->carrier_blkno = carrier;
  newblk_[data_buf->blkno()] = dep.get();
  PinInode(ip.ino);
  DepsFor(carrier).allocs.push_back(std::move(dep));
  stat_alloc_deps_->Inc();
  // Now the pointer may enter the live carrier (undo protects it).
  co_await fs()->CommitBlockPointer(proc, ip, loc, data_buf->blkno());
}

Task<void> SoftUpdatesPolicy::SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                                             std::vector<BufRef> updated_indirects) {
  (void)proc;
  NoteOrderingPoint("block_free", "dep_record");
  // Cancel outstanding allocation dependencies for blocks being freed
  // (paper: "outstanding alloc and allocsafe dependencies for
  // de-allocated blocks are freed at this point").
  for (uint32_t blk : blocks) {
    auto it = newblk_.find(blk);
    if (it == newblk_.end()) {
      continue;
    }
    AllocDep* dep = it->second;
    BlockDeps* cbd = FindDeps(dep->carrier_blkno);
    if (cbd != nullptr) {
      UnpinInode(dep->owner_ino);
      std::erase_if(cbd->allocs,
                    [dep](const std::unique_ptr<AllocDep>& d) { return d.get() == dep; });
      MaybeErase(dep->carrier_blkno);
    }
    newblk_.erase(it);
  }

  // freeblocks: defer the bitmap frees until every carrier holding reset
  // pointers has been written.
  auto f = std::make_shared<PendingFree>();
  f->blocks = std::move(blocks);
  std::vector<uint32_t> carriers;
  carriers.push_back(fs()->sb().ItableBlock(ip.ino));
  for (const BufRef& ibuf : updated_indirects) {
    carriers.push_back(ibuf->blkno());
  }
  f->remaining_carriers = static_cast<int>(carriers.size());
  for (uint32_t c : carriers) {
    DepsFor(c).frees.push_back(FreeRef{f});
  }
  stat_deferred_frees_->Inc();
  if (su_stats_->tracing()) {
    su_stats_->Trace("su.deferred_free",
                     {{"kind", "blocks"}, {"n", f->blocks.size()},
                      {"carriers", carriers.size()}});
  }
  co_return;
}

Task<void> SoftUpdatesPolicy::SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf,
                                           uint32_t offset, Inode& target, bool new_inode) {
  (void)proc;
  (void)dir;
  (void)new_inode;
  NoteOrderingPoint("link_add", "dep_record");
  auto add = std::make_unique<DirAddDep>();
  add->dir_blkno = dir_buf->blkno();
  add->offset = offset;
  add->new_ino = target.ino;
  add->itable_blkno = fs()->sb().ItableBlock(target.ino);
  inode_waiters_[add->itable_blkno].push_back(add.get());
  PinInode(target.ino);
  DepsFor(add->dir_blkno).adds.push_back(std::move(add));
  stat_dir_adds_->Inc();
  co_return;
}

Task<void> SoftUpdatesPolicy::SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf,
                                              uint32_t offset, DirEntry old_entry,
                                              uint32_t removed_ino,
                                              const RenameContext* rename) {
  (void)dir;
  NoteOrderingPoint("link_remove", rename != nullptr ? "dep_record_rename" : "dep_record");
  BlockDeps* bd = FindDeps(dir_buf->blkno());
  if (bd != nullptr) {
    // Cancellation: removing an entry whose addition never reached disk.
    // Both dependencies disappear and the removal completes with no disk
    // writes at all (the create/remove fast path of figure 5c).
    for (auto it = bd->adds.begin(); it != bd->adds.end(); ++it) {
      if ((*it)->offset == offset && (*it)->new_ino == removed_ino) {
        FinishAdd(it->get());
        bd->adds.erase(it);
        MaybeErase(dir_buf->blkno());
        stat_cancelled_pairs_->Inc();
        co_await fs()->ReleaseLink(proc, removed_ino);
        co_return;
      }
    }
  }

  auto rem = std::make_unique<DirRemDep>();
  rem->dir_blkno = dir_buf->blkno();
  rem->offset = offset;
  rem->removed_ino = removed_ino;
  rem->old_entry = old_entry;
  if (rename != nullptr) {
    // Rule 1: hold the removal until the new entry is on disk.
    BlockDeps* nbd = FindDeps(rename->new_dir_buf->blkno());
    if (nbd != nullptr) {
      for (auto& add : nbd->adds) {
        if (add->offset == rename->new_offset && add->new_ino == rename->moved_ino) {
          rem->wait_add = add.get();
          add->rename_waiter = rem.get();
          break;
        }
      }
    }
  }
  DepsFor(rem->dir_blkno).rems.push_back(std::move(rem));
  stat_dir_rems_->Inc();
  co_return;  // ReleaseLink runs from the workitem queue later.
}

Task<void> SoftUpdatesPolicy::SetupInodeFree(Proc& proc, Inode& ip) {
  (void)proc;
  NoteOrderingPoint("inode_free", "dep_record");
  // freefile: the inode bitmap bit clears only after the reset inode
  // (mode 0) reaches stable storage.
  auto f = std::make_shared<PendingFree>();
  f->is_inode = true;
  f->ino = ip.ino;
  f->remaining_carriers = 1;
  DepsFor(fs()->sb().ItableBlock(ip.ino)).frees.push_back(FreeRef{f});
  stat_deferred_frees_->Inc();
  if (su_stats_->tracing()) {
    su_stats_->Trace("su.deferred_free", {{"kind", "inode"}, {"ino", ip.ino}});
  }
  co_return;
}

// ---------------------------------------------------------------------
// Write-time undo / completion-time redo
// ---------------------------------------------------------------------

std::shared_ptr<const BlockData> SoftUpdatesPolicy::PrepareWrite(Buf& buf) {
  // addsafe capture is independent of whether the block itself carries
  // dependency records: any write of an inode-table block captures the
  // (serialized) inodes that directory adds are waiting on.
  auto wit_capture = inode_waiters_.find(buf.blkno());
  if (wit_capture != inode_waiters_.end()) {
    for (DirAddDep* ad : wit_capture->second) {
      ad->inode_captured = true;
    }
  }
  auto it = deps_.find(buf.blkno());
  if (it == deps_.end()) {
    return nullptr;
  }
  BlockDeps& bd = it->second;
  bd.write_in_flight = true;

  if (bd.safe_copy != nullptr) {
    // indirdep: the safe copy (old-consistent pointers) is the source.
    return bd.safe_copy;
  }

  // Inode-table carriers: undo pointers whose blocks are uninitialized.
  for (auto& ad : bd.allocs) {
    if (!ad->init_done) {
      memcpy(buf.data().data() + ad->ptr_offset, &ad->old_blkno, sizeof(uint32_t));
      if (ad->kind == PtrLoc::Kind::kInodeDirect) {
        uint32_t size_off = fs()->sb().ItableOffset(ad->owner_ino) +
                            static_cast<uint32_t>(offsetof(DiskInode, size));
        uint64_t* szp = buf.At<uint64_t>(size_off);
        if (*szp > ad->old_size) {
          *szp = ad->old_size;
        }
      }
      ad->undone_in_flight = true;
      stat_undos_->Inc();
      if (su_stats_->tracing()) {
        su_stats_->Trace("su.rollback", {{"kind", "alloc"}, {"blkno", buf.blkno()}});
      }
    } else {
      ad->captured = true;
    }
  }
  for (FreeRef& fr : bd.frees) {
    if (!fr.done) {
      fr.captured = true;
    }
  }
  // Directory blocks: undo entries whose inodes are not yet on disk, and
  // removals held by a rename.
  for (auto& ad : bd.adds) {
    if (!ad->inode_written) {
      *buf.At<uint32_t>(ad->offset) = 0;  // Entry "unused".
      ad->undone_in_flight = true;
      buf.MarkRolledBack();
      stat_undos_->Inc();
      if (su_stats_->tracing()) {
        su_stats_->Trace("su.rollback", {{"kind", "dir_add"}, {"blkno", buf.blkno()}});
      }
    } else {
      ad->captured = true;
    }
  }
  for (auto& rm : bd.rems) {
    if (rm->wait_add != nullptr) {
      memcpy(buf.data().data() + rm->offset, &rm->old_entry, sizeof(DirEntry));
      rm->undone_in_flight = true;
      buf.MarkRolledBack();
      stat_undos_->Inc();
      if (su_stats_->tracing()) {
        su_stats_->Trace("su.rollback", {{"kind", "dir_rem"}, {"blkno", buf.blkno()}});
      }
    } else {
      rm->captured = true;
    }
  }
  return nullptr;
}

void SoftUpdatesPolicy::CompleteNewBlock(Buf& buf) {
  auto it = newblk_.find(buf.blkno());
  if (it == newblk_.end() || it->second->data_pin.get() != &buf) {
    return;  // Not a pending new block (or a stale same-number buffer).
  }
  AllocDep* ad = it->second;
  ad->init_done = true;
  ad->data_pin.reset();  // The block may be evicted from now on.
  newblk_.erase(it);
  if (ad->kind == PtrLoc::Kind::kIndirectSlot) {
    // allocindirect: fold the now-safe pointer into the safe copy and
    // retire the dependency immediately (paper appendix).
    BlockDeps* cbd = FindDeps(ad->carrier_blkno);
    if (cbd != nullptr && cbd->safe_copy != nullptr) {
      memcpy(cbd->safe_copy->data() + ad->ptr_offset, &ad->new_blkno, sizeof(uint32_t));
    }
    uint32_t carrier = ad->carrier_blkno;
    UnpinInode(ad->owner_ino);
    if (cbd != nullptr) {
      std::erase_if(cbd->allocs,
                    [ad](const std::unique_ptr<AllocDep>& d) { return d.get() == ad; });
    }
    fs()->cache()->MarkDirty(carrier);
  } else {
    // allocdirect: the carrier must be written (again) with the pointer.
    fs()->cache()->MarkDirty(ad->carrier_blkno);
  }
}

void SoftUpdatesPolicy::FinishAdd(DirAddDep* add) {
  UnpinInode(add->new_ino);
  RemoveInodeWaiter(add);
  if (add->rename_waiter != nullptr) {
    add->rename_waiter->wait_add = nullptr;
    fs()->cache()->MarkDirty(add->rename_waiter->dir_blkno);
    add->rename_waiter = nullptr;
  }
}

void SoftUpdatesPolicy::RemoveInodeWaiter(DirAddDep* add) {
  auto it = inode_waiters_.find(add->itable_blkno);
  if (it != inode_waiters_.end()) {
    std::erase(it->second, add);
    if (it->second.empty()) {
      inode_waiters_.erase(it);
    }
  }
}

void SoftUpdatesPolicy::QueueRemWorkitem(DirRemDep* rem) {
  uint32_t ino = rem->removed_ino;
  stat_workitems_->Inc();
  fs()->syncer()->EnqueueWork([this, ino]() -> Task<void> {
    co_await fs()->ReleaseLink(sys_proc_, ino);
  });
}

void SoftUpdatesPolicy::QueueFreeWorkitem(const std::shared_ptr<PendingFree>& f) {
  stat_workitems_->Inc();
  fs()->syncer()->EnqueueWork([this, f]() -> Task<void> {
    if (f->is_inode) {
      co_await fs()->FreeInodeInBitmap(sys_proc_, f->ino);
    } else {
      // Deps owned by the de-allocated blocks complete now (paper: "this
      // applies only to directory blocks").
      for (uint32_t blk : f->blocks) {
        co_await CompleteDepsOwnedBy(blk);
      }
      co_await fs()->FreeBlocksInBitmap(sys_proc_, f->blocks);
    }
  });
}

Task<void> SoftUpdatesPolicy::CompleteDepsOwnedBy(uint32_t blkno) {
  BlockDeps* bd = FindDeps(blkno);
  if (bd == nullptr) {
    co_return;
  }
  std::vector<std::unique_ptr<DirAddDep>> adds = std::move(bd->adds);
  std::vector<std::unique_ptr<DirRemDep>> rems = std::move(bd->rems);
  bd->adds.clear();
  bd->rems.clear();
  for (auto& add : adds) {
    FinishAdd(add.get());
  }
  for (auto& rm : rems) {
    if (rm->wait_add != nullptr) {
      rm->wait_add->rename_waiter = nullptr;
    }
    co_await fs()->ReleaseLink(sys_proc_, rm->removed_ino);
  }
  MaybeErase(blkno);
}

void SoftUpdatesPolicy::WriteDone(Buf& buf) {
  CompleteNewBlock(buf);

  // addsafe: inodes in this block reached disk (independent of deps_).
  auto wit = inode_waiters_.find(buf.blkno());
  if (wit != inode_waiters_.end()) {
    auto& waiters = wit->second;
    for (auto w_it = waiters.begin(); w_it != waiters.end();) {
      DirAddDep* ad = *w_it;
      if (ad->inode_captured) {
        ad->inode_written = true;
        fs()->cache()->MarkDirty(ad->dir_blkno);
        w_it = waiters.erase(w_it);
      } else {
        ++w_it;
      }
    }
    if (waiters.empty()) {
      inode_waiters_.erase(wit);
    }
  }

  auto it = deps_.find(buf.blkno());
  if (it == deps_.end()) {
    return;
  }
  BlockDeps& bd = it->second;
  bd.write_in_flight = false;

  // allocdirect completion / redo.
  for (auto ad_it = bd.allocs.begin(); ad_it != bd.allocs.end();) {
    AllocDep* ad = ad_it->get();
    if (ad->undone_in_flight) {
      // Redo: refresh the buffer from the pinned in-core inode.
      InodeRef ip = fs()->IgetCached(ad->owner_ino);
      if (ip != nullptr && ad->kind != PtrLoc::Kind::kIndirectSlot) {
        memcpy(buf.data().data() + fs()->sb().ItableOffset(ad->owner_ino), &ip->d,
               sizeof(DiskInode));
      }
      ad->undone_in_flight = false;
      stat_redos_->Inc();
      if (su_stats_->tracing()) {
        su_stats_->Trace("su.redo", {{"kind", "alloc"}, {"blkno", buf.blkno()}});
      }
      ++ad_it;
    } else if (ad->captured && ad->init_done) {
      UnpinInode(ad->owner_ino);
      ad_it = bd.allocs.erase(ad_it);
    } else {
      ad->captured = false;
      ++ad_it;
    }
  }

  // freeblocks / freefile.
  for (auto fr_it = bd.frees.begin(); fr_it != bd.frees.end();) {
    if (fr_it->captured && !fr_it->done) {
      fr_it->done = true;
      if (--fr_it->free->remaining_carriers == 0) {
        QueueFreeWorkitem(fr_it->free);
      }
      fr_it = bd.frees.erase(fr_it);
    } else {
      ++fr_it;
    }
  }

  // Directory adds: redo undone entries; retire entries now on disk.
  for (auto ad_it = bd.adds.begin(); ad_it != bd.adds.end();) {
    DirAddDep* ad = ad_it->get();
    if (ad->undone_in_flight) {
      *buf.At<uint32_t>(ad->offset) = ad->new_ino;
      ad->undone_in_flight = false;
      stat_redos_->Inc();
      if (su_stats_->tracing()) {
        su_stats_->Trace("su.redo", {{"kind", "dir_add"}, {"blkno", buf.blkno()}});
      }
      ++ad_it;
    } else if (ad->captured) {
      FinishAdd(ad);
      ad_it = bd.adds.erase(ad_it);
    } else {
      ++ad_it;
    }
  }

  // Directory removals: redo held ones; queue link-count work for the
  // ones whose cleared entry is now on stable storage.
  for (auto rm_it = bd.rems.begin(); rm_it != bd.rems.end();) {
    DirRemDep* rm = rm_it->get();
    if (rm->undone_in_flight) {
      memset(buf.data().data() + rm->offset, 0, sizeof(DirEntry));
      rm->undone_in_flight = false;
      stat_redos_->Inc();
      if (su_stats_->tracing()) {
        su_stats_->Trace("su.redo", {{"kind", "dir_rem"}, {"blkno", buf.blkno()}});
      }
      ++rm_it;
    } else if (rm->captured) {
      QueueRemWorkitem(rm);
      rm_it = bd.rems.erase(rm_it);
    } else {
      ++rm_it;
    }
  }

  // indirdep retirement: no pending allocindirects -> drop the safe copy.
  if (bd.safe_copy != nullptr && bd.allocs.empty()) {
    bd.safe_copy.reset();
    bd.pinned.reset();
  }
  MaybeErase(buf.blkno());
}

void SoftUpdatesPolicy::WriteAborted(Buf& buf) {
  // The write never reached stable storage: undo the undos (restore the
  // in-memory truth in the re-dirtied buffer) and reset capture state, but
  // retire NOTHING - every dependency waits for the next, successful write.
  auto wit = inode_waiters_.find(buf.blkno());
  if (wit != inode_waiters_.end()) {
    for (DirAddDep* ad : wit->second) {
      ad->inode_captured = false;
    }
  }
  auto it = deps_.find(buf.blkno());
  if (it == deps_.end()) {
    return;
  }
  BlockDeps& bd = it->second;
  bd.write_in_flight = false;
  for (auto& ad : bd.allocs) {
    if (ad->undone_in_flight) {
      InodeRef ip = fs()->IgetCached(ad->owner_ino);
      if (ip != nullptr && ad->kind != PtrLoc::Kind::kIndirectSlot) {
        memcpy(buf.data().data() + fs()->sb().ItableOffset(ad->owner_ino), &ip->d,
               sizeof(DiskInode));
      }
      ad->undone_in_flight = false;
      stat_redos_->Inc();
    }
    ad->captured = false;
  }
  for (FreeRef& fr : bd.frees) {
    if (!fr.done) {
      fr.captured = false;
    }
  }
  for (auto& ad : bd.adds) {
    if (ad->undone_in_flight) {
      *buf.At<uint32_t>(ad->offset) = ad->new_ino;
      ad->undone_in_flight = false;
      stat_redos_->Inc();
    }
    ad->captured = false;
  }
  for (auto& rm : bd.rems) {
    if (rm->undone_in_flight) {
      memset(buf.data().data() + rm->offset, 0, sizeof(DirEntry));
      rm->undone_in_flight = false;
      stat_redos_->Inc();
    }
    rm->captured = false;
  }
}

void SoftUpdatesPolicy::BufferAccessed(Buf& buf) {
  BlockDeps* bd = FindDeps(buf.blkno());
  if (bd == nullptr || bd->write_in_flight) {
    return;
  }
  // The block may have been evicted and re-read while dependencies were
  // pending: re-apply the in-memory truth. (Entry names persist even for
  // undone adds - only the inode number field is zeroed on disk.)
  for (auto& ad : bd->adds) {
    uint32_t* inop = buf.At<uint32_t>(ad->offset);
    if (*inop != ad->new_ino) {
      *inop = ad->new_ino;
      if (ad->inode_written) {
        fs()->cache()->MarkDirty(buf);
      }
    }
  }
  for (auto& rm : bd->rems) {
    uint32_t* inop = buf.At<uint32_t>(rm->offset);
    if (*inop != 0) {
      *inop = 0;  // The removal is the in-memory truth.
    }
  }
}

Task<void> SoftUpdatesPolicy::FlushAll(Proc& proc) {
  for (int round = 0; round < 200; ++round) {
    co_await DrainAllDirty(proc);
    if (!HasPendingDeps()) {
      co_return;
    }
    // Dependencies outstanding: give completions a beat and retry.
    co_await fs()->engine()->Sleep(Msec(1));
  }
}

}  // namespace mufs
