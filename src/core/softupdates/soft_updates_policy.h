// Soft updates (paper section 4.2 and appendix).
//
// All metadata updates are delayed writes. Fine-grained dependency
// records are kept per update; a block with pending dependencies can be
// written at any time because the unsafe updates inside it are rolled
// back ("undone") for the duration of the write and re-applied
// ("redone") at completion, so every block image that reaches the disk
// is consistent with the current on-disk state.
//
// Dependency records (names follow the paper):
//   AllocDep   - allocdirect / allocindirect: a new block pointer that
//                must not reach disk before the block's contents do. The
//                companion "allocsafe"/newblk is the newblk_ index entry
//                that flips init_done when the block's first write
//                completes.
//   IndirDep   - per-indirect-block "safe copy" used as the write source
//                while allocindirect dependencies are pending.
//   DirAddDep  - "add" + "addsafe": a new directory entry that must not
//                reach disk before the target inode (initialized, link
//                count bumped) does. Undone by zeroing the entry's inode
//                number during the write.
//   DirRemDep  - "remove": the link count must not drop (and the inode
//                must not be reused) before the cleared entry reaches
//                disk. For renames it additionally waits for the new
//                entry to be on disk (rule 1) by undoing the removal.
//   PendingFree- "freeblocks"/"freefile": bitmap frees deferred until the
//                reset pointers reach stable storage.
//
// Deferred work that may block (link-count decrements, bitmap frees)
// runs on the syncer daemon's workitem queue, exactly as in the paper.
#ifndef MUFS_SRC_CORE_SOFTUPDATES_SOFT_UPDATES_POLICY_H_
#define MUFS_SRC_CORE_SOFTUPDATES_SOFT_UPDATES_POLICY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/fs/filesystem.h"
#include "src/fs/policy.h"

namespace mufs {

class SoftUpdatesPolicy final : public OrderingPolicy {
 public:
  SoftUpdatesPolicy();
  ~SoftUpdatesPolicy() override;

  std::string_view Name() const override { return "SoftUpdates"; }
  bool WriteThroughInodes() const override { return false; }
  DepHooks* CacheHooks() override;
  void Attach(FileSystem* fs) override;

  Task<void> SetupAllocation(Proc& proc, Inode& ip, BufRef data_buf, PtrLoc loc,
                             bool init_required, BlockRole role) override;
  Task<void> SetupBlockFree(Proc& proc, Inode& ip, std::vector<uint32_t> blocks,
                            std::vector<BufRef> updated_indirects) override;
  Task<void> SetupLinkAdd(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset, Inode& target,
                          bool new_inode) override;
  Task<void> SetupLinkRemove(Proc& proc, Inode& dir, BufRef dir_buf, uint32_t offset,
                             DirEntry old_entry, uint32_t removed_ino,
                             const RenameContext* rename) override;
  Task<void> SetupInodeFree(Proc& proc, Inode& ip) override;
  Task<void> FlushAll(Proc& proc) override;
  bool DirSlotBusy(uint32_t blkno, uint32_t offset) const override;

  // Introspection for tests and stats: snapshot of the su.* counters.
  struct Stats {
    uint64_t alloc_deps = 0;
    uint64_t dir_adds = 0;
    uint64_t dir_rems = 0;
    uint64_t cancelled_pairs = 0;  // add+remove serviced with no disk writes.
    uint64_t undos = 0;            // Updates rolled back during a write.
    uint64_t redos = 0;
    uint64_t deferred_frees = 0;
    uint64_t workitems = 0;
  };
  Stats stats() const;
  bool HasPendingDeps() const;

 private:
  friend class SoftDepHooks;

  struct DirRemDep;

  // Every dependency has a `captured` notion: a completing write may only
  // satisfy a dependency if the dependency existed when the write's
  // contents were captured (PrepareWrite). Dependencies registered while
  // a write is in flight wait for the next one.
  struct AllocDep {
    PtrLoc::Kind kind;
    uint32_t owner_ino = 0;
    uint32_t carrier_blkno = 0;   // itable block or indirect block.
    uint32_t ptr_offset = 0;      // Byte offset of the pointer in the carrier.
    uint32_t new_blkno = 0;
    uint32_t old_blkno = 0;
    uint64_t old_size = 0;        // Inode size before this allocation.
    bool init_done = false;       // New block's contents reached disk.
    bool undone_in_flight = false;
    bool captured = false;        // Pointer intact in the in-flight write.
    BufRef data_pin;              // The new block's buffer: identity anchor
                                  // for init completion and eviction pin.
  };

  struct DirAddDep {
    uint32_t dir_blkno = 0;
    uint32_t offset = 0;          // Entry byte offset in the block.
    uint32_t new_ino = 0;
    uint32_t itable_blkno = 0;    // Where the target inode lives.
    bool inode_captured = false;  // In-flight itable write carries the inode.
    bool inode_written = false;   // addsafe satisfied.
    bool undone_in_flight = false;
    bool captured = false;        // Entry intact in the in-flight dir write.
    DirRemDep* rename_waiter = nullptr;
  };

  struct DirRemDep {
    uint32_t dir_blkno = 0;
    uint32_t offset = 0;
    uint32_t removed_ino = 0;
    DirEntry old_entry{};         // For rename undo.
    DirAddDep* wait_add = nullptr;  // Rule-1 hold (rename only).
    bool undone_in_flight = false;
    bool captured = false;        // Cleared entry in the in-flight write.
  };

  struct PendingFree {
    bool is_inode = false;
    uint32_t ino = 0;                  // Inode to free (is_inode).
    std::vector<uint32_t> blocks;      // Blocks to free (!is_inode).
    int remaining_carriers = 0;        // Carrier writes still outstanding.
  };

  struct FreeRef {
    std::shared_ptr<PendingFree> free;
    bool captured = false;  // Reset pointers in the in-flight write.
    bool done = false;      // This carrier's write completed post-capture.
  };

  struct BlockDeps {
    std::vector<std::unique_ptr<AllocDep>> allocs;       // Carrier = this block.
    std::vector<std::unique_ptr<DirAddDep>> adds;        // This directory block.
    std::vector<std::unique_ptr<DirRemDep>> rems;        // This directory block.
    std::vector<FreeRef> frees;                          // Carrier = this block.
    std::shared_ptr<BlockData> safe_copy;                // indirdep.
    BufRef pinned;                                       // Keeps indirect blocks resident.
    bool write_in_flight = false;

    bool Empty() const {
      return allocs.empty() && adds.empty() && rems.empty() && frees.empty() &&
             safe_copy == nullptr;
    }
  };

  BlockDeps& DepsFor(uint32_t blkno) { return deps_[blkno]; }
  BlockDeps* FindDeps(uint32_t blkno);
  void MaybeErase(uint32_t blkno);
  void PinInode(uint32_t ino);
  void UnpinInode(uint32_t ino);

  // Hook bodies (called by SoftDepHooks).
  std::shared_ptr<const BlockData> PrepareWrite(Buf& buf);
  void WriteDone(Buf& buf);
  void WriteAborted(Buf& buf);
  void BufferAccessed(Buf& buf);

  void CompleteNewBlock(Buf& buf);
  void FinishAdd(DirAddDep* add);  // Unpin, drop waiter, release rename hold.
  void RemoveInodeWaiter(DirAddDep* add);
  void QueueRemWorkitem(DirRemDep* rem);
  void QueueFreeWorkitem(const std::shared_ptr<PendingFree>& f);
  // Paper: deps owned by de-allocated (directory) blocks are considered
  // complete when the block is finally freed.
  Task<void> CompleteDepsOwnedBy(uint32_t blkno);

  // Binds the su.* metric handles to `stats` (the owned fallback at
  // construction, the file system's registry at Attach).
  void BindStats(StatsRegistry* stats);

  std::unordered_map<uint32_t, BlockDeps> deps_;
  std::unordered_map<uint32_t, AllocDep*> newblk_;  // data blkno -> dep.
  std::unordered_map<uint32_t, std::vector<DirAddDep*>> inode_waiters_;  // itable blk.
  std::unique_ptr<DepHooks> hooks_;
  Proc sys_proc_;

  // Metric handles (su_stats_ is never null after construction).
  std::unique_ptr<StatsRegistry> owned_stats_;
  StatsRegistry* su_stats_ = nullptr;
  Counter* stat_alloc_deps_ = nullptr;
  Counter* stat_dir_adds_ = nullptr;
  Counter* stat_dir_rems_ = nullptr;
  Counter* stat_cancelled_pairs_ = nullptr;
  Counter* stat_undos_ = nullptr;
  Counter* stat_redos_ = nullptr;
  Counter* stat_deferred_frees_ = nullptr;
  Counter* stat_workitems_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_CORE_SOFTUPDATES_SOFT_UPDATES_POLICY_H_
