#include "src/sim/sync.h"

#include <utility>

namespace mufs {

void CondVar::NotifyAll() {
  while (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_->Schedule(0, [h] { h.resume(); });
  }
}

void CondVar::NotifyOne() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_->Schedule(0, [h] { h.resume(); });
  }
}

void OneShotEvent::Set() {
  if (set_) {
    return;
  }
  set_ = true;
  while (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_->Schedule(0, [h] { h.resume(); });
  }
}

void Mutex::Unlock() {
  assert(held_);
  if (waiters_.empty()) {
    held_ = false;
    return;
  }
  // Direct handoff: the mutex stays held and ownership passes to the
  // oldest waiter, preventing barging and giving FIFO fairness.
  auto h = waiters_.front();
  waiters_.pop_front();
  engine_->Schedule(0, [h] { h.resume(); });
}

void Semaphore::Release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_->Schedule(0, [h] { h.resume(); });
    return;
  }
  ++count_;
}

Task<LockGuard> LockGuard::Acquire(Mutex* m) {
  co_await m->Lock();
  co_return LockGuard(m);
}

}  // namespace mufs
