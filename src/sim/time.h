// Simulated-time types for the mufs discrete-event simulation kernel.
//
// All simulation time is kept in integer nanoseconds. The paper's tracing
// apparatus had ~840 ns resolution; nanoseconds comfortably cover that and
// avoid any floating-point drift in event ordering.
#ifndef MUFS_SRC_SIM_TIME_H_
#define MUFS_SRC_SIM_TIME_H_

#include <cstdint>

namespace mufs {

// Absolute simulated time and durations, in nanoseconds.
using SimTime = int64_t;
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

// Convenience constructors so call sites read as units, not magnitudes.
constexpr SimDuration Nsec(int64_t n) { return n * kNanosecond; }
constexpr SimDuration Usec(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Msec(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Sec(int64_t n) { return n * kSecond; }

// Fractional helpers used by the disk model, which naturally computes in
// milliseconds. Rounds to the nearest nanosecond.
constexpr SimDuration MsecF(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond) + 0.5);
}
constexpr SimDuration UsecF(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond) + 0.5);
}

// Converts a duration to floating-point units for reporting.
constexpr double ToMs(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

}  // namespace mufs

#endif  // MUFS_SRC_SIM_TIME_H_
