#include "src/sim/engine.h"

#include <cassert>
#include <utility>

namespace mufs {

bool ProcessRef::Awaiter::await_ready() const noexcept { return !state || state->done; }

void ProcessRef::Awaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  state->joiners.push_back(h);
}

Engine::~Engine() {
  // Destroy still-running processes before the queue: their frames may hold
  // awaiters referencing scheduled events, and destroying a suspended
  // coroutine chain is safe while pending events are simply dropped.
  processes_.clear();
}

uint64_t Engine::Schedule(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0);
  uint64_t id = next_seq_++;
  queue_.push(Event{now_ + delay, id, std::move(fn)});
  return id;
}

void Engine::Cancel(uint64_t id) { cancelled_.insert(id); }

namespace {

// Takes a raw ProcessState pointer: the state owns this frame (via root),
// so a shared_ptr here would form a reference cycle. The state is kept
// alive by the engine's process list until the frame reaches final
// suspend, and destroying the state destroys this (suspended) frame.
Task<void> RootWrapper(Task<void> task, ProcessState* state) {
  co_await std::move(task);
  state->done = true;
  // Resume joiners through the event queue so completion ordering stays
  // deterministic and we never resume into a half-destroyed frame.
  for (auto h : state->joiners) {
    state->engine->Schedule(0, [h] { h.resume(); });
  }
  state->joiners.clear();
}

}  // namespace

ProcessRef Engine::Spawn(Task<void> task, std::string name) {
  auto state = std::make_shared<ProcessState>();
  state->name = std::move(name);
  state->engine = this;
  state->root = RootWrapper(std::move(task), state.get());
  processes_.push_back(state);
  Schedule(0, [state] {
    if (!state->done && state->root.Valid() && !state->root.Done()) {
      state->root.StartDetached();
    }
  });
  return ProcessRef(state);
}

bool Engine::PopAndRun() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq) > 0) {
      continue;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Engine::ReapFinished() {
  std::erase_if(processes_, [](const std::shared_ptr<ProcessState>& p) { return p->done; });
}

SimTime Engine::Run(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    PopAndRun();
  }
  ReapFinished();
  if (queue_.empty()) {
    return now_;
  }
  now_ = until;
  return now_;
}

SimTime Engine::RunUntil(const std::function<bool()>& pred) {
  while (!pred() && PopAndRun()) {
  }
  ReapFinished();
  return now_;
}

}  // namespace mufs
