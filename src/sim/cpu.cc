#include "src/sim/cpu.h"

namespace mufs {

Task<void> Cpu::Consume(Pid pid, SimDuration amount) {
  while (amount > 0) {
    co_await sem_.Acquire();
    SimDuration slice = std::min(quantum_, amount);
    co_await engine_->Sleep(slice);
    charged_[pid] += slice;
    total_charged_ += slice;
    amount -= slice;
    // FIFO handoff gives any waiter the next quantum on this core.
    sem_.Release();
  }
}

}  // namespace mufs
