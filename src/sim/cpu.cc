#include "src/sim/cpu.h"

namespace mufs {

Task<void> Cpu::Consume(Pid pid, SimDuration amount) {
  while (amount > 0) {
    LockGuard guard = co_await LockGuard::Acquire(&mutex_);
    SimDuration slice = std::min(quantum_, amount);
    co_await engine_->Sleep(slice);
    charged_[pid] += slice;
    total_charged_ += slice;
    amount -= slice;
    // Guard releases here; FIFO handoff gives any waiter the next quantum.
  }
}

}  // namespace mufs
