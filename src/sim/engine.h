// Discrete-event simulation engine.
//
// Single-threaded, deterministic. Events are (time, sequence) ordered;
// ties break in scheduling order so repeated runs are bit-identical.
// Coroutine processes are spawned with Spawn() and communicate through
// the primitives in sync.h; they advance time only via Sleep()/awaits.
#ifndef MUFS_SRC_SIM_ENGINE_H_
#define MUFS_SRC_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/sim/task.h"
#include "src/sim/time.h"

namespace mufs {

class Engine;

struct ProcessState {
  std::string name;
  bool done = false;
  Task<void> root;  // Keeps the whole coroutine chain alive.
  std::vector<std::coroutine_handle<>> joiners;
  Engine* engine = nullptr;
};

// Handle to a spawned process; lets the parent await completion.
class ProcessRef {
 public:
  ProcessRef() = default;

  bool Done() const { return !state_ || state_->done; }
  const std::string& Name() const { return state_->name; }

  // Awaitable: suspends until the process finishes. Ready immediately if
  // it already has.
  struct Awaiter {
    std::shared_ptr<ProcessState> state;
    bool await_ready() const noexcept;
    void await_suspend(std::coroutine_handle<> h) noexcept;
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() const noexcept { return Awaiter{state_}; }

 private:
  friend class Engine;
  explicit ProcessRef(std::shared_ptr<ProcessState> s) : state_(std::move(s)) {}
  std::shared_ptr<ProcessState> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SimTime Now() const { return now_; }

  // Schedules a callback to run at Now() + delay. Returns an id usable
  // with Cancel().
  uint64_t Schedule(SimDuration delay, std::function<void()> fn);
  void Cancel(uint64_t id);

  // Awaitable: suspend the current coroutine for `delay`.
  auto Sleep(SimDuration delay) {
    struct Awaiter {
      Engine* engine;
      SimDuration delay;
      bool await_ready() const noexcept { return delay <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->Schedule(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  // Awaitable: reschedule the current coroutine at the current time, after
  // already-pending events. Lets other ready processes run.
  auto Yield() { return Sleep(0); }

  // Starts a coroutine as an independent process. The engine owns it until
  // completion (or engine destruction).
  ProcessRef Spawn(Task<void> task, std::string name = "proc");

  // Runs until the event queue empties or Now() would exceed `until`
  // (default: run to completion). Returns the final simulated time.
  SimTime Run(SimTime until = INT64_MAX);

  // Runs until `pred()` is true, checking after each event. Used by the
  // crash harness to stop the world mid-flight.
  SimTime RunUntil(const std::function<bool()>& pred);

  bool Idle() const { return queue_.empty(); }
  uint64_t EventsProcessed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  bool PopAndRun();
  void ReapFinished();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<uint64_t> cancelled_;
  std::vector<std::shared_ptr<ProcessState>> processes_;
};

}  // namespace mufs

#endif  // MUFS_SRC_SIM_ENGINE_H_
