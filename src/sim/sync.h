// Synchronization primitives for simulation coroutines.
//
// All primitives are single-threaded (simulation is deterministic and
// serial); "blocking" means suspending the coroutine until another process
// signals through the engine's event queue. Wakeups always round-trip
// through the queue so that a Notify inside an event handler never resumes
// a waiter re-entrantly.
#ifndef MUFS_SRC_SIM_SYNC_H_
#define MUFS_SRC_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace mufs {

// Broadcast condition: Await() suspends until the next NotifyAll(). There
// is no predicate; callers loop on their own condition (mesa semantics).
class CondVar {
 public:
  explicit CondVar(Engine* engine) : engine_(engine) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  struct Awaiter {
    CondVar* cv;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { cv->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter Await() { return Awaiter{this}; }

  void NotifyAll();
  void NotifyOne();
  size_t WaiterCount() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// One-shot completion event: waiters before Set() suspend; waiters after
// pass through. Used for I/O completion.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine* engine) : engine_(engine) {}
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  bool IsSet() const { return set_; }
  void Set();

  struct Awaiter {
    OneShotEvent* ev;
    bool await_ready() const noexcept { return ev->set_; }
    void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{this}; }

 private:
  Engine* engine_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// FIFO mutex. Lock() suspends if held; Unlock() hands off to the oldest
// waiter (still via the event queue). FIFO handoff gives round-robin
// behaviour for resources like the CPU model.
class Mutex {
 public:
  explicit Mutex(Engine* engine) : engine_(engine) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  bool Held() const { return held_; }
  bool TryLock() {
    if (held_) {
      return false;
    }
    held_ = true;
    return true;
  }

  struct Awaiter {
    Mutex* m;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (!m->held_) {
        m->held_ = true;
        return false;  // Acquired without suspending.
      }
      m->waiters_.push_back(h);
      return true;
    }
    void await_resume() const noexcept {}
  };
  Awaiter Lock() { return Awaiter{this}; }
  void Unlock();

 private:
  Engine* engine_;
  bool held_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Engine* engine, int64_t initial) : engine_(engine), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  int64_t Count() const { return count_; }

  struct Awaiter {
    Semaphore* s;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (s->count_ > 0) {
        --s->count_;
        return false;
      }
      s->waiters_.push_back(h);
      return true;
    }
    void await_resume() const noexcept {}
  };
  Awaiter Acquire() { return Awaiter{this}; }
  void Release();

 private:
  Engine* engine_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII lock guard for coroutine code:
//   LockGuard g = co_await LockGuard::Acquire(mutex);
class LockGuard {
 public:
  LockGuard() = default;
  explicit LockGuard(Mutex* m) : mutex_(m) {}
  LockGuard(LockGuard&& o) noexcept : mutex_(o.mutex_) { o.mutex_ = nullptr; }
  LockGuard& operator=(LockGuard&& o) noexcept {
    Release();
    mutex_ = o.mutex_;
    o.mutex_ = nullptr;
    return *this;
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() { Release(); }

  static Task<LockGuard> Acquire(Mutex* m);
  void Release() {
    if (mutex_ != nullptr) {
      mutex_->Unlock();
      mutex_ = nullptr;
    }
  }

 private:
  Mutex* mutex_ = nullptr;
};

}  // namespace mufs

#endif  // MUFS_SRC_SIM_SYNC_H_
