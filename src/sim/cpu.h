// CPU execution model with round-robin slicing and per-process
// accounting.
//
// The reproduction target machine is a 33 MHz i486 with one CPU; every
// in-kernel or user computation is modelled as a duration consumed on
// this resource. Consumption is sliced into quanta handed off through a
// FIFO semaphore, which interleaves concurrent "users" the way a
// time-sharing kernel would, and total charged time per process feeds
// the CPU-time columns of Tables 1-3.
//
// `cores` generalizes the model for scale-out machines: up to `cores`
// quanta proceed concurrently (the multi-disk machine pairs one core
// with each spindle). cores=1 is event-for-event the paper's machine.
#ifndef MUFS_SRC_SIM_CPU_H_
#define MUFS_SRC_SIM_CPU_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace mufs {

// Identifies a simulated process for accounting. Pid 0 is "system"
// (syncer daemon, interrupt-level work).
using Pid = int32_t;
constexpr Pid kSystemPid = 0;

class Cpu {
 public:
  Cpu(Engine* engine, SimDuration quantum = Msec(1), uint32_t cores = 1)
      : engine_(engine),
        quantum_(quantum),
        cores_(cores == 0 ? 1 : cores),
        sem_(engine, static_cast<int64_t>(cores_)) {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Consumes `amount` of CPU on behalf of `pid`, interleaving with other
  // consumers in round-robin quanta.
  Task<void> Consume(Pid pid, SimDuration amount);

  // CPU time charged to one process so far.
  SimDuration Charged(Pid pid) const {
    auto it = charged_.find(pid);
    return it == charged_.end() ? 0 : it->second;
  }

  SimDuration TotalCharged() const { return total_charged_; }

  uint32_t Cores() const { return cores_; }

 private:
  Engine* engine_;
  SimDuration quantum_;
  uint32_t cores_;
  Semaphore sem_;
  std::unordered_map<Pid, SimDuration> charged_;
  SimDuration total_charged_ = 0;
};

}  // namespace mufs

#endif  // MUFS_SRC_SIM_CPU_H_
