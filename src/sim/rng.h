// Deterministic pseudo-random number generator (splitmix64-seeded
// xoshiro256**). Self-contained so results are reproducible across
// standard library implementations (std::mt19937 distributions are not
// portable across vendors).
#ifndef MUFS_SRC_SIM_RNG_H_
#define MUFS_SRC_SIM_RNG_H_

#include <cstdint>

namespace mufs {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) {  // Full 64-bit range.
      return static_cast<int64_t>(Next());
    }
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Picks an index in [0, weights_size) proportionally to weights.
  template <typename Container>
  size_t WeightedIndex(const Container& weights) {
    double total = 0;
    for (double w : weights) {
      total += w;
    }
    double r = UniformDouble() * total;
    size_t i = 0;
    for (double w : weights) {
      if (r < w || i + 1 == static_cast<size_t>(weights.size())) {
        return i;
      }
      r -= w;
      ++i;
    }
    return weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace mufs

#endif  // MUFS_SRC_SIM_RNG_H_
