// Coroutine task type for the mufs simulation kernel.
//
// Task<T> is a lazy coroutine: nothing runs until it is co_awaited (or
// resumed by Engine::Spawn through a root wrapper). Completion transfers
// control back to the awaiter via symmetric transfer, so arbitrarily deep
// call chains run without growing the native stack and without involving
// the event queue.
//
// Ownership: the Task object owns the coroutine frame. Awaiting a Task
// leaves ownership with the Task object (which typically lives in the
// awaiting coroutine's frame), so destroying a root task unwinds every
// nested frame correctly.
#ifndef MUFS_SRC_SIM_TASK_H_
#define MUFS_SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mufs {

template <typename T>
class Task;

namespace internal {

class TaskPromiseBase {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }

  // On completion, resume whoever awaited us; if nobody did (detached root
  // wrapper), just suspend and let the owner destroy the frame.
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation_;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> c) noexcept { continuation_ = c; }

 protected:
  void RethrowIfFailed() {
    if (exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::coroutine_handle<> continuation_;
  std::exception_ptr exception_;
};

template <typename T>
class TaskPromise final : public TaskPromiseBase {
 public:
  Task<T> get_return_object() noexcept;

  template <typename U>
  void return_value(U&& v) {
    value_.emplace(std::forward<U>(v));
  }

  T&& Result() {
    RethrowIfFailed();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;  // optional: T need not be default-constructible.
};

template <>
class TaskPromise<void> final : public TaskPromiseBase {
 public:
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void Result() { RethrowIfFailed(); }
};

}  // namespace internal

// A lazily-started coroutine returning T. Move-only.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool Valid() const noexcept { return handle_ != nullptr; }
  bool Done() const noexcept { return handle_ && handle_.done(); }

  // Starts the coroutine without an awaiter. Used only by root wrappers
  // that manage their own lifetime signalling.
  void StartDetached() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().set_continuation(awaiting);
        return handle;  // Symmetric transfer: start the child now.
      }
      T await_resume() { return handle.promise().Result(); }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

namespace internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace mufs

#endif  // MUFS_SRC_SIM_TASK_H_
