# Empty compiler generated dependencies file for mufs_fsck.
# This may be replaced when dependencies are built.
