file(REMOVE_RECURSE
  "libmufs_fsck.a"
)
