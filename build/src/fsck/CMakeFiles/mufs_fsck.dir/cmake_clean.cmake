file(REMOVE_RECURSE
  "CMakeFiles/mufs_fsck.dir/crash_harness.cc.o"
  "CMakeFiles/mufs_fsck.dir/crash_harness.cc.o.d"
  "CMakeFiles/mufs_fsck.dir/fsck.cc.o"
  "CMakeFiles/mufs_fsck.dir/fsck.cc.o.d"
  "libmufs_fsck.a"
  "libmufs_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
