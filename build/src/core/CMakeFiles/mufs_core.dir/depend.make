# Empty dependencies file for mufs_core.
# This may be replaced when dependencies are built.
