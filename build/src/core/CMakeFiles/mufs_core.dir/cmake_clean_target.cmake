file(REMOVE_RECURSE
  "libmufs_core.a"
)
