file(REMOVE_RECURSE
  "CMakeFiles/mufs_core.dir/machine.cc.o"
  "CMakeFiles/mufs_core.dir/machine.cc.o.d"
  "CMakeFiles/mufs_core.dir/policies.cc.o"
  "CMakeFiles/mufs_core.dir/policies.cc.o.d"
  "CMakeFiles/mufs_core.dir/softupdates/soft_updates_policy.cc.o"
  "CMakeFiles/mufs_core.dir/softupdates/soft_updates_policy.cc.o.d"
  "libmufs_core.a"
  "libmufs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
