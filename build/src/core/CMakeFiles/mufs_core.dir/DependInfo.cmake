
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/machine.cc" "src/core/CMakeFiles/mufs_core.dir/machine.cc.o" "gcc" "src/core/CMakeFiles/mufs_core.dir/machine.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/mufs_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/mufs_core.dir/policies.cc.o.d"
  "/root/repo/src/core/softupdates/soft_updates_policy.cc" "src/core/CMakeFiles/mufs_core.dir/softupdates/soft_updates_policy.cc.o" "gcc" "src/core/CMakeFiles/mufs_core.dir/softupdates/soft_updates_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/CMakeFiles/mufs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mufs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mufs_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/mufs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mufs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
