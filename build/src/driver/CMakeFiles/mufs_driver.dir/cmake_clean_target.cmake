file(REMOVE_RECURSE
  "libmufs_driver.a"
)
