file(REMOVE_RECURSE
  "CMakeFiles/mufs_driver.dir/disk_driver.cc.o"
  "CMakeFiles/mufs_driver.dir/disk_driver.cc.o.d"
  "libmufs_driver.a"
  "libmufs_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
