# Empty compiler generated dependencies file for mufs_driver.
# This may be replaced when dependencies are built.
