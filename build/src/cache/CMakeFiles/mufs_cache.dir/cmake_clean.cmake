file(REMOVE_RECURSE
  "CMakeFiles/mufs_cache.dir/buffer_cache.cc.o"
  "CMakeFiles/mufs_cache.dir/buffer_cache.cc.o.d"
  "CMakeFiles/mufs_cache.dir/syncer.cc.o"
  "CMakeFiles/mufs_cache.dir/syncer.cc.o.d"
  "libmufs_cache.a"
  "libmufs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
