# Empty dependencies file for mufs_cache.
# This may be replaced when dependencies are built.
