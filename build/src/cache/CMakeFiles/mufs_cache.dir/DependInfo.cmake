
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/buffer_cache.cc" "src/cache/CMakeFiles/mufs_cache.dir/buffer_cache.cc.o" "gcc" "src/cache/CMakeFiles/mufs_cache.dir/buffer_cache.cc.o.d"
  "/root/repo/src/cache/syncer.cc" "src/cache/CMakeFiles/mufs_cache.dir/syncer.cc.o" "gcc" "src/cache/CMakeFiles/mufs_cache.dir/syncer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mufs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/mufs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mufs_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
