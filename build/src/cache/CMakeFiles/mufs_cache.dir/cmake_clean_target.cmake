file(REMOVE_RECURSE
  "libmufs_cache.a"
)
