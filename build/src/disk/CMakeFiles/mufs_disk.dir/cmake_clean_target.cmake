file(REMOVE_RECURSE
  "libmufs_disk.a"
)
