# Empty compiler generated dependencies file for mufs_disk.
# This may be replaced when dependencies are built.
