file(REMOVE_RECURSE
  "CMakeFiles/mufs_disk.dir/disk_model.cc.o"
  "CMakeFiles/mufs_disk.dir/disk_model.cc.o.d"
  "libmufs_disk.a"
  "libmufs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
