# Empty dependencies file for mufs_sim.
# This may be replaced when dependencies are built.
