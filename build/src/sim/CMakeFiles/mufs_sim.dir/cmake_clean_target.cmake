file(REMOVE_RECURSE
  "libmufs_sim.a"
)
