file(REMOVE_RECURSE
  "CMakeFiles/mufs_sim.dir/cpu.cc.o"
  "CMakeFiles/mufs_sim.dir/cpu.cc.o.d"
  "CMakeFiles/mufs_sim.dir/engine.cc.o"
  "CMakeFiles/mufs_sim.dir/engine.cc.o.d"
  "CMakeFiles/mufs_sim.dir/sync.cc.o"
  "CMakeFiles/mufs_sim.dir/sync.cc.o.d"
  "libmufs_sim.a"
  "libmufs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
