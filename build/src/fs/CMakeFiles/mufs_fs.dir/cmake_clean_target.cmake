file(REMOVE_RECURSE
  "libmufs_fs.a"
)
