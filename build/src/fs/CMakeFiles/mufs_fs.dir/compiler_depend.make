# Empty compiler generated dependencies file for mufs_fs.
# This may be replaced when dependencies are built.
