file(REMOVE_RECURSE
  "CMakeFiles/mufs_fs.dir/filesystem.cc.o"
  "CMakeFiles/mufs_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/mufs_fs.dir/fs_ops.cc.o"
  "CMakeFiles/mufs_fs.dir/fs_ops.cc.o.d"
  "libmufs_fs.a"
  "libmufs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
