file(REMOVE_RECURSE
  "libmufs_workload.a"
)
