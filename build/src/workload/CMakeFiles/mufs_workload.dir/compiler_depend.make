# Empty compiler generated dependencies file for mufs_workload.
# This may be replaced when dependencies are built.
