file(REMOVE_RECURSE
  "CMakeFiles/mufs_workload.dir/tree_gen.cc.o"
  "CMakeFiles/mufs_workload.dir/tree_gen.cc.o.d"
  "CMakeFiles/mufs_workload.dir/workloads.cc.o"
  "CMakeFiles/mufs_workload.dir/workloads.cc.o.d"
  "libmufs_workload.a"
  "libmufs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mufs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
