file(REMOVE_RECURSE
  "CMakeFiles/softupdates_test.dir/softupdates_test.cc.o"
  "CMakeFiles/softupdates_test.dir/softupdates_test.cc.o.d"
  "softupdates_test"
  "softupdates_test.pdb"
  "softupdates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softupdates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
