# Empty dependencies file for softupdates_test.
# This may be replaced when dependencies are built.
