file(REMOVE_RECURSE
  "CMakeFiles/disk_driver_test.dir/disk_driver_test.cc.o"
  "CMakeFiles/disk_driver_test.dir/disk_driver_test.cc.o.d"
  "disk_driver_test"
  "disk_driver_test.pdb"
  "disk_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
