# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/disk_model_test[1]_include.cmake")
include("/root/repo/build/tests/disk_driver_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_cache_test[1]_include.cmake")
include("/root/repo/build/tests/filesystem_test[1]_include.cmake")
include("/root/repo/build/tests/crash_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/fsck_test[1]_include.cmake")
include("/root/repo/build/tests/softupdates_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
