# Empty compiler generated dependencies file for bench_ablation_blockcopy.
# This may be replaced when dependencies are built.
