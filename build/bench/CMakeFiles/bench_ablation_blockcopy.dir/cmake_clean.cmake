file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blockcopy.dir/bench_ablation_blockcopy.cc.o"
  "CMakeFiles/bench_ablation_blockcopy.dir/bench_ablation_blockcopy.cc.o.d"
  "bench_ablation_blockcopy"
  "bench_ablation_blockcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blockcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
