file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_remove.dir/bench_table2_remove.cc.o"
  "CMakeFiles/bench_table2_remove.dir/bench_table2_remove.cc.o.d"
  "bench_table2_remove"
  "bench_table2_remove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_remove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
