# Empty dependencies file for bench_table2_remove.
# This may be replaced when dependencies are built.
