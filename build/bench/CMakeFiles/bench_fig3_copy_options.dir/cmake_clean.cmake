file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_copy_options.dir/bench_fig3_copy_options.cc.o"
  "CMakeFiles/bench_fig3_copy_options.dir/bench_fig3_copy_options.cc.o.d"
  "bench_fig3_copy_options"
  "bench_fig3_copy_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_copy_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
