# Empty dependencies file for bench_fig3_copy_options.
# This may be replaced when dependencies are built.
