file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sdet.dir/bench_fig6_sdet.cc.o"
  "CMakeFiles/bench_fig6_sdet.dir/bench_fig6_sdet.cc.o.d"
  "bench_fig6_sdet"
  "bench_fig6_sdet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sdet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
