# Empty compiler generated dependencies file for bench_fig2_remove_semantics.
# This may be replaced when dependencies are built.
