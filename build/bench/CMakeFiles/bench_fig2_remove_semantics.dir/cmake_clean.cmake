file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_remove_semantics.dir/bench_fig2_remove_semantics.cc.o"
  "CMakeFiles/bench_fig2_remove_semantics.dir/bench_fig2_remove_semantics.cc.o.d"
  "bench_fig2_remove_semantics"
  "bench_fig2_remove_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_remove_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
