file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_flag_semantics.dir/bench_fig1_flag_semantics.cc.o"
  "CMakeFiles/bench_fig1_flag_semantics.dir/bench_fig1_flag_semantics.cc.o.d"
  "bench_fig1_flag_semantics"
  "bench_fig1_flag_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_flag_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
