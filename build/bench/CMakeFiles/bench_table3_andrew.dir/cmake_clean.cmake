file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_andrew.dir/bench_table3_andrew.cc.o"
  "CMakeFiles/bench_table3_andrew.dir/bench_table3_andrew.cc.o.d"
  "bench_table3_andrew"
  "bench_table3_andrew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_andrew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
