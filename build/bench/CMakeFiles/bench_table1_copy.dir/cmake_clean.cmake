file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_copy.dir/bench_table1_copy.cc.o"
  "CMakeFiles/bench_table1_copy.dir/bench_table1_copy.cc.o.d"
  "bench_table1_copy"
  "bench_table1_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
