file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chains.dir/bench_ablation_chains.cc.o"
  "CMakeFiles/bench_ablation_chains.dir/bench_ablation_chains.cc.o.d"
  "bench_ablation_chains"
  "bench_ablation_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
