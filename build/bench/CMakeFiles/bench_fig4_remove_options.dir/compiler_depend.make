# Empty compiler generated dependencies file for bench_fig4_remove_options.
# This may be replaced when dependencies are built.
