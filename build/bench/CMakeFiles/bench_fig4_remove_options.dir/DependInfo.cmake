
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_remove_options.cc" "bench/CMakeFiles/bench_fig4_remove_options.dir/bench_fig4_remove_options.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_remove_options.dir/bench_fig4_remove_options.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mufs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fsck/CMakeFiles/mufs_fsck.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mufs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/mufs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mufs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mufs_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/mufs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mufs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
