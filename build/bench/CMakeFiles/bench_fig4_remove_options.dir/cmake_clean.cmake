file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_remove_options.dir/bench_fig4_remove_options.cc.o"
  "CMakeFiles/bench_fig4_remove_options.dir/bench_fig4_remove_options.cc.o.d"
  "bench_fig4_remove_options"
  "bench_fig4_remove_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_remove_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
