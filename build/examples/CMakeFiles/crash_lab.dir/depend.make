# Empty dependencies file for crash_lab.
# This may be replaced when dependencies are built.
