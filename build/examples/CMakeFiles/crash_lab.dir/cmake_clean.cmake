file(REMOVE_RECURSE
  "CMakeFiles/crash_lab.dir/crash_lab.cc.o"
  "CMakeFiles/crash_lab.dir/crash_lab.cc.o.d"
  "crash_lab"
  "crash_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
